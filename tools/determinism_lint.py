#!/usr/bin/env python3
"""Lint src/ for sources of nondeterminism.

The repo's core contract is bit-stable output: the same netlist must
produce the same report, the same JSON, and the same content keys on
every run, every thread count, every platform.  Two things break that
in practice, and this lint bans both:

1. Wall-clock and entropy primitives -- ``rand()``/``srand``,
   ``std::random_device``, ``system_clock``, ``std::time`` and friends.
   Seeded ``mt19937`` generators are fine (deterministic by
   construction); ``steady_clock`` is fine (it feeds wall-time metrics
   and deadlines, never analysis results).  src/obs/ and src/serve/ are
   exempt: timestamps and timeouts are their business.

2. Iteration over unordered containers.  ``std::unordered_map``/``set``
   are welcome as lookup structures (that is why the hot paths use
   them), but ranging over one feeds hash-order into whatever is built
   from the loop -- reports, keys, diagnostics -- and hash order is not
   part of any contract.  The lint flags every range-for whose range
   expression names a variable declared ``unordered_`` in the same
   file.

Suppression: append ``// determinism: ok -- <reason>`` to the flagged
line.  The reason is mandatory culture, not syntax; a bare marker still
suppresses, but review should reject it.

Usage:
  python3 tools/determinism_lint.py [--source-dir DIR]

Exit status: 0 clean, 1 findings.
"""

import argparse
import pathlib
import re
import sys

ALLOW_MARKER = "determinism: ok"

# Directories whose job is wall-clock time (tracing timestamps, RPC
# deadlines, overload shedding).  Entropy is still banned there -- only
# the clock patterns are forgiven.
CLOCK_EXEMPT_DIRS = {"obs", "serve"}

CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "system_clock (wall clock)"),
    (re.compile(r"\bstd::time\s*\("), "std::time"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time(NULL)"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\blocaltime\b"), "localtime"),
]

ENTROPY_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\brandom_device\b"), "random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bdrand48\b|\blrand48\b"), "drand48/lrand48"),
]

# Variable or member declared as an unordered container:
#   std::unordered_map<K, V> name;   std::unordered_set<T> name{...};
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*(\w+)\s*[;{=(]")

# Range-for: capture the range expression after the colon.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")


def lint_file(path: pathlib.Path, rel: pathlib.Path):
    findings = []
    layer = rel.parts[1] if len(rel.parts) > 1 else ""
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    unordered_names = set()
    for line in lines:
        m = UNORDERED_DECL_RE.search(line)
        if m:
            unordered_names.add(m.group(1))

    patterns = list(ENTROPY_PATTERNS)
    if layer not in CLOCK_EXEMPT_DIRS:
        patterns += CLOCK_PATTERNS

    for lineno, line in enumerate(lines, start=1):
        if ALLOW_MARKER in line:
            continue
        stripped = line.lstrip()
        if stripped.startswith("//"):
            continue
        for pat, label in patterns:
            if pat.search(line):
                findings.append(f"{rel}:{lineno}: banned primitive "
                                f"{label}; results must be reproducible")
        m = RANGE_FOR_RE.search(line)
        if m and unordered_names:
            range_expr = m.group(1).strip()
            # The identifier actually being ranged over: the last
            # name in a possibly qualified a.b->c chain.
            tail = re.split(r"[.\s]|->", range_expr)[-1]
            tail = tail.split("(")[0].strip("&* ")
            if tail in unordered_names:
                findings.append(
                    f"{rel}:{lineno}: iteration over unordered "
                    f"container '{tail}' -- hash order must never feed "
                    f"reports or keys; use an ordered container or "
                    f"sort first")
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--source-dir", default=".", type=pathlib.Path)
    args = ap.parse_args()

    findings = []
    src = args.source_dir / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in (".h", ".cpp"):
            findings.extend(lint_file(path, path.relative_to(args.source_dir)))

    for f in findings:
        print(f)
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("determinism_lint: src/ is free of entropy, wall-clock, and "
          "hash-order leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
