#!/usr/bin/env python3
"""Docs drift gate: every user-facing surface must be documented.

Two surfaces are checked against README.md, DESIGN.md, and
EXPERIMENTS.md (an item passes if it appears in at least one of them):

  1. every `--flag` accepted by an `awesim_*` CLI binary.  The CLIs are
     discovered from the checked-in CMakeLists (`add_executable(awesim_*
     <main>.cpp)`), and the flags are harvested from string literals in
     each main source, so no build is needed for this half;
  2. every bench case name registered with the unified runner, taken
     from a built `awesim_bench --list` (pass --bench-bin; the CI leg
     builds the runner first).

Rationale: the repo's docs are contracts, not prose -- EXPERIMENTS.md
promises one protocol entry per bench family and README promises a
troubleshooting row per diagnostic surface.  A new flag or bench case
that lands without a docs mention is exactly the drift this gate turns
into a red CI leg.

Usage:
    docs_check.py --source-dir . --bench-bin build/bench/awesim_bench

Exit codes: 0 all surfaces documented, 1 something missing, 2 usage or
environment error.  Stdlib only.
"""

import argparse
import os
import re
import subprocess
import sys

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]

# A user-facing flag literal in a CLI main: --word, possibly with
# hyphens, as it appears inside usage strings and the arg parser.
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")

# add_executable(awesim_<name> <main>.cpp) -- only single-source CLI
# binaries; libraries and test targets never match.
ADD_EXE_RE = re.compile(
    r"add_executable\(\s*(awesim_[A-Za-z0-9_]+)\s+([A-Za-z0-9_./]+\.cpp)\s*\)")


def discover_clis(source_dir):
    """Map CLI target name -> absolute path of its main source."""
    clis = {}
    for root, dirs, files in os.walk(source_dir):
        dirs[:] = [d for d in dirs
                   if not d.startswith(".") and d != "build"
                   and not d.startswith("build-")]
        if "CMakeLists.txt" not in files:
            continue
        path = os.path.join(root, "CMakeLists.txt")
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for target, main in ADD_EXE_RE.findall(text):
            main_path = os.path.join(root, main)
            if os.path.exists(main_path):
                clis[target] = main_path
    return clis


def harvest_flags(main_path):
    """Every distinct --flag literal in the CLI's main source."""
    with open(main_path, encoding="utf-8") as fh:
        text = fh.read()
    return sorted(set(FLAG_RE.findall(text)))


def bench_names(bench_bin):
    """First token of each `awesim_bench --list` line."""
    proc = subprocess.run([bench_bin, "--list"], stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, check=False)
    if proc.returncode != 0:
        print(f"docs_check: {bench_bin} --list failed:\n{proc.stderr}",
              file=sys.stderr)
        sys.exit(2)
    names = []
    for line in proc.stdout.splitlines():
        parts = line.split()
        if parts:
            names.append(parts[0])
    if not names:
        print(f"docs_check: {bench_bin} --list printed no cases",
              file=sys.stderr)
        sys.exit(2)
    return names


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--source-dir", default=".")
    ap.add_argument("--bench-bin", default=None,
                    help="built awesim_bench; omit to skip the bench-name "
                    "half (the CI leg always passes it)")
    args = ap.parse_args()

    docs = {}
    for name in DOC_FILES:
        path = os.path.join(args.source_dir, name)
        if not os.path.exists(path):
            print(f"docs_check: missing doc file {name}", file=sys.stderr)
            return 2
        with open(path, encoding="utf-8") as fh:
            docs[name] = fh.read()
    corpus = "\n".join(docs.values())

    clis = discover_clis(args.source_dir)
    if not clis:
        print("docs_check: no awesim_* CLI targets discovered",
              file=sys.stderr)
        return 2

    missing = []
    checked = 0
    for target in sorted(clis):
        for flag in harvest_flags(clis[target]):
            checked += 1
            if flag not in corpus:
                missing.append(f"{target} flag {flag}")

    if args.bench_bin:
        for name in bench_names(args.bench_bin):
            checked += 1
            if name not in corpus:
                missing.append(f"bench case {name}")
    else:
        print("docs_check: note -- no --bench-bin, bench names unchecked")

    print(f"docs_check: {checked} surfaces checked against "
          f"{'/'.join(DOC_FILES)} "
          f"({len(clis)} CLIs: {', '.join(sorted(clis))})")
    if missing:
        for item in missing:
            print(f"docs_check: UNDOCUMENTED -- {item}", file=sys.stderr)
        print(f"docs_check: FAIL -- {len(missing)} undocumented "
              "surface(s); mention each in README.md, DESIGN.md, or "
              "EXPERIMENTS.md", file=sys.stderr)
        return 1
    print("docs_check: OK -- every surface documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
