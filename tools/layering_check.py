#!/usr/bin/env python3
"""Enforce the src/ dependency DAG by scanning #include edges.

Every directory under src/ is a layer with an explicit rank; an
``#include "dir/header.h"`` from layer A into layer B is legal only when
rank(B) < rank(A) -- strictly below, so same-rank layers stay mutually
independent and no cycle can ever form.  Two vocabulary headers
(``core/diagnostic.h`` and ``core/fault.h``) are declared leaf headers:
they define the diagnostic/fault value types the whole stack speaks, so
any layer may include them even though the rest of core/ sits high in
the DAG (the Engine orchestrates mna/check and must stay above them).

A new src/ directory must be added to RANKS here before it can include
or be included -- the check fails loudly on unknown layers, so the DAG
is always a conscious decision rather than drift.

Usage:
  python3 tools/layering_check.py [--source-dir DIR] [--list]

Exit status: 0 clean, 1 violations (or unknown layers) found.
"""

import argparse
import pathlib
import re
import sys

# Rank 0 is the foundation; higher ranks may include strictly lower ones.
RANKS = {
    # Foundation: pure value types and side-effect-free utilities.
    "obs": 0,       # tracing/metrics vocabulary
    "circuit": 0,   # netlist-independent circuit IR
    "waveform": 0,  # waveform containers
    # Leaf math / parsing over the IR.
    "la": 1,        # dense linear algebra kernels
    "netlist": 1,   # SPICE-dialect parser -> circuit IR
    "circuits": 1,  # the paper's example circuits, built on the IR
    # Structural analysis and assembly.
    "mna": 2,       # modified nodal analysis assembly
    "check": 2,     # topology lint + conditioning oracle (pre-matrix)
    "rctree": 2,    # RC-tree specific moment machinery
    "treelink": 2,  # tree-link decomposition
    # The AWE engine and the flat simulator.
    "sim": 3,       # reference transient simulator
    "core": 3,      # Engine, diagnostics plumbing, stats, caching
    # Whole-design layers.
    "timing": 4,    # Design/Session STA over many nets
    "reduce": 5,    # hierarchical reduction on top of timing
    "audit": 6,     # whole-design static analysis (uses reduce keys)
    "serve": 7,     # the daemon: everything below, plus sockets
}

# Vocabulary headers any layer may include regardless of rank: the typed
# diagnostic/fault currency of the whole stack.  Keep this list short --
# every entry is a hole in the DAG.
LEAF_HEADERS = {
    "core/diagnostic.h",
    "core/fault.h",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def scan(source_dir: pathlib.Path):
    violations = []
    src = source_dir / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.relative_to(src)
        layer = rel.parts[0]
        if layer not in RANKS:
            violations.append(
                f"{path.relative_to(source_dir)}: directory 'src/{layer}' "
                f"has no rank in tools/layering_check.py; add it to RANKS")
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if "/" not in target:
                continue  # same-directory or system-style include
            tdir = target.split("/", 1)[0]
            if tdir not in RANKS:
                continue  # not a src/ layer (e.g. generated headers)
            if tdir == layer or target in LEAF_HEADERS:
                continue
            if RANKS[tdir] >= RANKS[layer]:
                violations.append(
                    f"{path.relative_to(source_dir)}:{lineno}: "
                    f"'{layer}' (rank {RANKS[layer]}) must not include "
                    f"'{target}' ('{tdir}' is rank {RANKS[tdir]}; only "
                    f"strictly lower ranks are allowed)")
    return violations


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--source-dir", default=".", type=pathlib.Path)
    ap.add_argument("--list", action="store_true",
                    help="print the layer ranks and exit")
    args = ap.parse_args()

    if args.list:
        for layer, rank in sorted(RANKS.items(), key=lambda kv: (kv[1], kv[0])):
            print(f"{rank}  {layer}")
        return 0

    violations = scan(args.source_dir)
    for v in violations:
        print(v)
    if violations:
        print(f"layering_check: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("layering_check: src/ dependency DAG holds "
          f"({len(RANKS)} layers, {len(LEAF_HEADERS)} leaf headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
