#!/usr/bin/env python3
"""Line-coverage rollup and floor gate for the CI coverage leg.

Runs gcov over every .gcda the instrumented test suite produced, rolls
line coverage up per top-level source directory, writes a JSON report,
and exits nonzero if the combined line coverage of the gated
directories (default: src/la + src/timing, the numeric warm path) falls
below the floor recorded in the CI workflow.

Usage:
    coverage_gate.py --build-dir build-cov --source-dir . \
        --gate src/la --gate src/timing --floor 85.0 \
        --report coverage_report.json

Only gcov is required (it ships with gcc); lcov/gcovr are not needed.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir):
    out = []
    # Absolute paths: gcov runs from a scratch directory, so relative
    # .gcda paths would not resolve there.
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        for f in files:
            if f.endswith(".gcda"):
                out.append(os.path.join(root, f))
    return out


def run_gcov(gcda_files, build_dir, scratch):
    """Invoke gcov in JSON-intermediate mode; return parsed file records."""
    records = []
    # Batch to keep command lines bounded.
    for i in range(0, len(gcda_files), 64):
        batch = gcda_files[i : i + 64]
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout"] + batch,
            cwd=scratch,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        # --stdout emits one JSON document per input file, newline-separated.
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            records.extend(doc.get("files", []))
    if records:
        return records
    # Older gcov: fall back to per-file .gcov.json.gz outputs.
    import glob
    import gzip

    for i in range(0, len(gcda_files), 64):
        batch = gcda_files[i : i + 64]
        subprocess.run(
            ["gcov", "--json-format"] + batch,
            cwd=scratch,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,
        )
    for gz in glob.glob(os.path.join(scratch, "*.gcov.json.gz")):
        try:
            with gzip.open(gz, "rt") as fh:
                doc = json.load(fh)
            records.extend(doc.get("files", []))
        except (OSError, json.JSONDecodeError):
            continue
    return records


def rollup(records, source_dir):
    """Merge per-compilation-unit line records into per-source-file sets.

    The same header or source file appears once per object that includes
    it; a line counts as covered if ANY unit executed it.
    """
    source_dir = os.path.abspath(source_dir)
    covered = defaultdict(set)
    instrumented = defaultdict(set)
    for rec in records:
        path = rec.get("file", "")
        apath = os.path.abspath(os.path.join(source_dir, path))
        if not apath.startswith(source_dir + os.sep):
            continue  # system headers, gtest, etc.
        rel = os.path.relpath(apath, source_dir)
        for ln in rec.get("lines", []):
            n = ln.get("line_number")
            if n is None:
                continue
            instrumented[rel].add(n)
            if ln.get("count", 0) > 0:
                covered[rel].add(n)
    return covered, instrumented


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--source-dir", default=".")
    ap.add_argument(
        "--gate",
        action="append",
        default=[],
        help="source directory prefix included in the floor check "
        "(repeatable); default src/la + src/timing",
    )
    ap.add_argument("--floor", type=float, default=0.0,
                    help="minimum combined line coverage %% of the gated dirs")
    ap.add_argument("--report", default="coverage_report.json")
    args = ap.parse_args()
    gates = args.gate or ["src/la", "src/timing"]

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"coverage_gate: no .gcda files under {args.build_dir} -- "
              "was the build configured with -DAWESIM_COVERAGE=ON and the "
              "suite run?", file=sys.stderr)
        return 2

    scratch = os.path.join(args.build_dir, "gcov-scratch")
    os.makedirs(scratch, exist_ok=True)
    records = run_gcov(gcda, args.build_dir, scratch)
    if not records:
        print("coverage_gate: gcov produced no parsable records",
              file=sys.stderr)
        return 2

    covered, instrumented = rollup(records, args.source_dir)

    per_dir = defaultdict(lambda: [0, 0])  # dir -> [covered, instrumented]
    per_file = {}
    for rel, lines in sorted(instrumented.items()):
        hit = len(covered.get(rel, set()))
        total = len(lines)
        per_file[rel] = {
            "covered": hit,
            "instrumented": total,
            "percent": round(100.0 * hit / total, 2) if total else 100.0,
        }
        parts = rel.split(os.sep)
        key = os.sep.join(parts[:2]) if len(parts) >= 2 else parts[0]
        per_dir[key][0] += hit
        per_dir[key][1] += total

    gate_hit = gate_total = 0
    for rel, stats in per_file.items():
        if any(rel == g or rel.startswith(g + os.sep) for g in gates):
            gate_hit += stats["covered"]
            gate_total += stats["instrumented"]
    gate_pct = 100.0 * gate_hit / gate_total if gate_total else 0.0

    report = {
        "schema": "awesim-coverage-report",
        "schema_version": 1,
        "gate_dirs": gates,
        "gate_percent": round(gate_pct, 2),
        "floor_percent": args.floor,
        "directories": {
            d: {
                "covered": v[0],
                "instrumented": v[1],
                "percent": round(100.0 * v[0] / v[1], 2) if v[1] else 100.0,
            }
            for d, v in sorted(per_dir.items())
        },
        "files": per_file,
    }
    with open(args.report, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    print(f"coverage_gate: wrote {args.report}")
    for d, v in sorted(per_dir.items()):
        pct = 100.0 * v[0] / v[1] if v[1] else 100.0
        print(f"  {d:<16} {v[0]:>6}/{v[1]:<6} {pct:6.2f}%")
    print(f"  gate ({' + '.join(gates)}): "
          f"{gate_hit}/{gate_total} = {gate_pct:.2f}% "
          f"(floor {args.floor:.2f}%)")

    if gate_total == 0:
        print("coverage_gate: gated directories have no instrumented lines",
              file=sys.stderr)
        return 2
    if gate_pct < args.floor:
        print(f"coverage_gate: FAIL -- {gate_pct:.2f}% < floor "
              f"{args.floor:.2f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
