// Malformed-netlist corpus: every file under netlists/bad/ must be
// rejected with precise, structured diagnostics -- never a crash, never a
// silently-parsed circuit -- and the collecting parser must report ALL
// the errors in a file, not just the first.  Registered under the ctest
// label "malformed" so CI can run the corpus as its own leg.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "netlist/parser.h"

namespace awesim::netlist {

namespace {

std::string bad_path(const std::string& name) {
  return std::string(AWESIM_NETLIST_DIR) + "/bad/" + name;
}

}  // namespace

TEST(NetlistMalformed, EveryCorpusFileIsRejectedWithLocatedDiagnostics) {
  const std::filesystem::path dir =
      std::filesystem::path(AWESIM_NETLIST_DIR) / "bad";
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sp") continue;
    ++files;
    const std::string path = entry.path().string();
    const ParseResult result = parse_file_collect(path);
    EXPECT_FALSE(result.ok()) << path;
    ASSERT_FALSE(result.diagnostics.empty()) << path;
    for (const auto& d : result.diagnostics) {
      EXPECT_GE(d.severity, core::Severity::Error) << path;
      EXPECT_EQ(d.file, path);
      EXPECT_FALSE(d.message.empty()) << path;
      if (d.code == core::DiagCode::ParseError) {
        EXPECT_GT(d.line, 0u) << path << ": " << d.message;
        EXPECT_GT(d.column, 0u) << path << ": " << d.message;
      }
    }
    // The deprecated throwing shim must agree that the file is bad.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EXPECT_ANY_THROW(parse_file(path)) << path;
#pragma GCC diagnostic pop
  }
  EXPECT_GE(files, 8u) << "corpus shrank unexpectedly";
}

TEST(NetlistMalformed, AllErrorsInOneFileAreReported) {
  const ParseResult result = parse_file_collect(bad_path("many_errors.sp"));
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.diagnostics.size(), 5u);
  const std::vector<std::size_t> lines = {2, 3, 4, 6, 7};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(result.diagnostics[i].line, lines[i]) << i;
    EXPECT_EQ(result.diagnostics[i].code, core::DiagCode::ParseError) << i;
  }
  // Spot-check columns and offending tokens.
  EXPECT_EQ(result.diagnostics[1].column, 8u);   // "10zz" on C1
  EXPECT_EQ(result.diagnostics[1].element, "10zz");
  EXPECT_EQ(result.diagnostics[2].column, 8u);   // "WIGGLE" on V1
  EXPECT_EQ(result.diagnostics[2].element, "WIGGLE");
  EXPECT_EQ(result.diagnostics[3].column, 1u);   // ".option"
  EXPECT_EQ(result.diagnostics[4].element, "nosuch");
}

// Deliberately exercises the deprecated throwing shim: first-error
// mapping is stable API until out-of-tree callers migrate.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(NetlistMalformed, ThrowingParsePreservesFirstErrorLocation) {
  try {
    parse_file(bad_path("many_errors.sp"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    // what() renders "netlist line L:C: message".
    EXPECT_NE(std::string(e.what()).find("netlist line 2"),
              std::string::npos);
  }
}
#pragma GCC diagnostic pop

TEST(NetlistMalformed, ValidationErrorsCarryTheStructuralMessage) {
  for (const std::string name :
       {"duplicate_elements.sp", "zero_value.sp", "dangling_node.sp"}) {
    const ParseResult result = parse_file_collect(bad_path(name));
    EXPECT_FALSE(result.ok()) << name;
    bool saw_validation = false;
    for (const auto& d : result.diagnostics) {
      if (d.code == core::DiagCode::ValidationError) saw_validation = true;
    }
    EXPECT_TRUE(saw_validation) << name;
  }
}

TEST(NetlistMalformed, RecoverySkipsBadCardsButKeepsParsingGoodOnes) {
  // A bad card in the middle must not hide later errors *or* derail the
  // line numbering of subsequent cards.
  const ParseResult result = parse_collect(
      "V1 a 0 DC 1\n"
      "Rbroken a b\n"
      "R2 a b 1k\n"
      "Calso b 0 nope\n",
      "inline.sp");
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(result.diagnostics[0].line, 2u);
  EXPECT_EQ(result.diagnostics[1].line, 4u);
  EXPECT_EQ(result.diagnostics[1].element, "nope");
  EXPECT_EQ(result.diagnostics[1].file, "inline.sp");
}

TEST(NetlistMalformed, CleanFilesStillParseThroughCollect) {
  const ParseResult result = parse_collect(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".end\n");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.circuit->elements().size(), 3u);
}

}  // namespace awesim::netlist
