// The live daemon (src/serve/server.h) over real sockets: happy paths on
// TCP and Unix listeners, connection survival after malformed lines,
// cancellation that leaves the shared cache valid, overload shedding,
// connection refusal, idle-client reaping, the fault matrix under
// concurrent load (the ISSUE's acceptance criterion), and the installed
// `awesim_serve` binary in --stdio mode.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "obs/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "timing/snapshot.h"

namespace awesim {
namespace {

namespace json = obs::json;
using core::FaultRule;
using core::ScopedFaultInjection;

timing::AnalysisOptions serial_options() {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  return opt;
}

/// Blocking NDJSON client speaking to a listener over TCP or Unix.
class Client {
 public:
  static Client tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    EXPECT_EQ(rc, 0) << "tcp connect to 127.0.0.1:" << port;
    return Client(fd);
  }

  static Client unix_socket(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    EXPECT_EQ(rc, 0) << "unix connect to " << path;
    return Client(fd);
  }

  ~Client() { close(); }
  Client(Client&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send_line(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next response line; empty string on EOF/error.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string roundtrip(const std::string& line) {
    EXPECT_TRUE(send_line(line));
    return recv_line();
  }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;
};

/// Asserts the response is one well-formed schema line; returns it parsed.
json::Value require_response(const std::string& line) {
  EXPECT_FALSE(line.empty()) << "connection dropped instead of responding";
  json::Value doc = json::parse(line);
  EXPECT_TRUE(doc.is_object());
  const json::Value* ok = doc.find("ok");
  EXPECT_NE(ok, nullptr);
  EXPECT_TRUE(ok != nullptr && ok->is_bool());
  if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
    const json::Value* error = doc.find("error");
    EXPECT_NE(error, nullptr);
    if (error != nullptr) {
      EXPECT_TRUE(error->is_object());
      EXPECT_NE(error->find("code"), nullptr);
    }
  }
  return doc;
}

bool response_ok(const json::Value& doc) {
  const json::Value* ok = doc.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

/// An analyze result minus its `stats` cost counters (which reflect work
/// actually performed and naturally differ warm vs. cold); everything
/// else is the bit-identity contract.
std::string timing_fingerprint(const json::Value& response) {
  const json::Value* result = response.find("result");
  if (result == nullptr || !result->is_object()) return "";
  json::Value stripped = json::Value::object();
  for (const auto& [key, value] : result->items()) {
    if (key != "stats") stripped.set(key, value);
  }
  return stripped.dump();
}

std::string error_code(const json::Value& doc) {
  const json::Value* error = doc.find("error");
  if (error == nullptr) return "";
  const json::Value* code = error->find("code");
  return code != nullptr && code->is_string() ? code->as_string() : "";
}

serve::ServeOptions tcp_options() {
  serve::ServeOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.workers = 2;
  return opts;
}

TEST(ServeDaemon, TcpHappyPath) {
  serve::Server server(serve::builtin_design("chain4"), serial_options(),
                       tcp_options());
  server.start();
  Client client = Client::tcp(server.tcp_port());
  EXPECT_TRUE(response_ok(
      require_response(client.roundtrip(R"({"id":1,"method":"ping"})"))));
  EXPECT_TRUE(response_ok(require_response(
      client.roundtrip(R"({"id":2,"method":"analyze"})"))));
  const json::Value stats =
      require_response(client.roundtrip(R"({"id":3,"method":"stats"})"));
  EXPECT_TRUE(response_ok(stats));
  const json::Value* result = stats.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_NE(result->find("server"), nullptr)
      << "daemon stats must carry the server counters";
  server.stop();
}

TEST(ServeDaemon, UnixSocketHappyPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("awesim_serve_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  serve::ServeOptions opts;
  opts.unix_path = path;
  opts.workers = 1;
  serve::Server server(serve::builtin_design("chain4"), serial_options(),
                       opts);
  server.start();
  {
    Client client = Client::unix_socket(path);
    EXPECT_TRUE(response_ok(
        require_response(client.roundtrip(R"({"id":1,"method":"ping"})"))));
  }
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path))
      << "stop() must unlink the unix socket";
}

TEST(ServeDaemon, MalformedLineKeepsConnectionUsable) {
  serve::Server server(serve::builtin_design("chain4"), serial_options(),
                       tcp_options());
  server.start();
  Client client = Client::tcp(server.tcp_port());
  const json::Value bad =
      require_response(client.roundtrip(R"({"id": 1, "method": )"));
  EXPECT_FALSE(response_ok(bad));
  EXPECT_EQ(error_code(bad), "invalid-request");
  // The same connection keeps working -- one bad line costs one error
  // response, never the session.
  EXPECT_TRUE(response_ok(
      require_response(client.roundtrip(R"({"id":2,"method":"ping"})"))));
  server.stop();
}

TEST(ServeDaemon, CancelledRequestLeavesCacheValid) {
  serve::Server server(serve::builtin_design("chain12"), serial_options(),
                       tcp_options());
  server.start();
  Client client = Client::tcp(server.tcp_port());
  const json::Value shed = require_response(client.roundtrip(
      R"({"id":1,"method":"analyze","params":{"stage_budget":2}})"));
  EXPECT_FALSE(response_ok(shed));
  EXPECT_EQ(error_code(shed), "budget-exceeded");
  // Follow-up warm query must succeed and match a cold daemon on the
  // same design bit-for-bit (the acceptance criterion: cancellation
  // never corrupts the stage cache).
  const json::Value warm = require_response(
      client.roundtrip(R"({"id":2,"method":"analyze"})"));
  ASSERT_TRUE(response_ok(warm));
  server.stop();

  serve::Server cold_server(serve::builtin_design("chain12"),
                            serial_options(), tcp_options());
  cold_server.start();
  Client cold_client = Client::tcp(cold_server.tcp_port());
  const json::Value cold = require_response(
      cold_client.roundtrip(R"({"id":2,"method":"analyze"})"));
  ASSERT_TRUE(response_ok(cold));
  cold_server.stop();
  const std::string warm_print = timing_fingerprint(warm);
  ASSERT_FALSE(warm_print.empty());
  EXPECT_EQ(warm_print, timing_fingerprint(cold));
}

TEST(ServeDaemon, ShedsUnderTinyQueueWithRetryAfter) {
  serve::ServeOptions opts = tcp_options();
  opts.workers = 1;
  opts.max_queue = 1;
  opts.max_inflight_per_client = 2;
  serve::Server server(serve::builtin_design("chain12"), serial_options(),
                       opts);
  server.start();
  Client client = Client::tcp(server.tcp_port());
  constexpr int kBurst = 24;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.send_line(
        R"({"id":)" + std::to_string(i) + R"(,"method":"analyze"})"));
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const json::Value doc = require_response(client.recv_line());
    if (response_ok(doc)) {
      ++ok;
    } else {
      EXPECT_EQ(error_code(doc), "server-overloaded");
      const json::Value* retry = doc.find("retry_after_ms");
      EXPECT_NE(retry, nullptr)
          << "shed responses must carry the retry hint";
      if (retry != nullptr) {
        EXPECT_GT(retry->as_number(), 0.0);
      }
      ++shed;
    }
  }
  EXPECT_GT(ok, 0) << "admission must not starve entirely";
  EXPECT_GT(shed, 0) << "a 24-deep burst against queue=1/inflight=2 "
                        "must shed";
  const serve::ServeCounters c = server.counters();
  EXPECT_EQ(c.shed_queue + c.shed_inflight,
            static_cast<std::uint64_t>(shed));
  // The connection survives shedding.
  EXPECT_TRUE(response_ok(
      require_response(client.roundtrip(R"({"id":99,"method":"ping"})"))));
  server.stop();
}

TEST(ServeDaemon, RefusesConnectionsOverClientLimit) {
  serve::ServeOptions opts = tcp_options();
  opts.max_clients = 1;
  serve::Server server(serve::builtin_design("chain4"), serial_options(),
                       opts);
  server.start();
  Client first = Client::tcp(server.tcp_port());
  EXPECT_TRUE(response_ok(
      require_response(first.roundtrip(R"({"id":1,"method":"ping"})"))));
  Client second = Client::tcp(server.tcp_port());
  const json::Value refused = require_response(second.recv_line());
  EXPECT_FALSE(response_ok(refused));
  EXPECT_EQ(error_code(refused), "server-overloaded");
  EXPECT_NE(refused.find("retry_after_ms"), nullptr);
  // The admitted client is unaffected.
  EXPECT_TRUE(response_ok(
      require_response(first.roundtrip(R"({"id":2,"method":"ping"})"))));
  server.stop();
}

TEST(ServeDaemon, IdleClientIsDisconnected) {
  serve::ServeOptions opts = tcp_options();
  opts.idle_timeout_s = 0.3;
  serve::Server server(serve::builtin_design("chain4"), serial_options(),
                       opts);
  server.start();
  Client client = Client::tcp(server.tcp_port());
  EXPECT_TRUE(response_ok(
      require_response(client.roundtrip(R"({"id":1,"method":"ping"})"))));
  // Send nothing; the reader's SO_RCVTIMEO reaps us.  recv_line returns
  // empty on the resulting EOF.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.recv_line(), "");
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 10.0) << "idle reap must not hang";
  EXPECT_GE(server.counters().idle_closed, 1u);
  server.stop();
}

// The acceptance criterion: every fault probe in the serve and engine
// layers, fired under >= 8 concurrent clients, yields only well-formed
// JSON error responses -- and the daemon still serves afterwards.
TEST(ServeDaemon, FaultMatrixUnderConcurrentLoad) {
  struct Site {
    const char* site;
    const char* key;
  };
  const Site sites[] = {
      {"serve.parse", "*"},    {"serve.dispatch", "analyze"},
      {"timing.stage", "*"},   {"parallel.job", "*"},
      {"session.cache", "*"},  {"engine.unstable", "*"},
      {"engine.moments", "*"}, {"mna.factor", "*"},
      {"pade.hankel", "*"},
  };
  serve::ServeOptions opts = tcp_options();
  opts.workers = 4;
  opts.max_queue = 256;
  opts.max_clients = 16;
  serve::Server server(serve::builtin_design("chain8"), serial_options(),
                       opts);
  server.start();
  const int port = server.tcp_port();

  for (const Site& site : sites) {
    ScopedFaultInjection scoped({{site.site, site.key, -1}});
    constexpr int kClients = 8;
    constexpr int kRequests = 4;
    std::atomic<int> malformed{0};
    std::atomic<int> dropped{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([port, &malformed, &dropped, t] {
        Client client = Client::tcp(port);
        const char* lines[] = {
            R"({"id":1,"method":"analyze"})",
            R"({"id":2,"method":"worst_paths","params":{"k":2}})",
            R"({"id":3,"method":"stats"})",
            R"({"id":4,"method":"sweep","params":{
                "kind":"drive_resistance","name":"g0",
                "values":[100.0,200.0]}})",
        };
        for (int i = 0; i < kRequests; ++i) {
          const std::string response =
              client.roundtrip(lines[(t + i) % 4]);
          if (response.empty()) {
            ++dropped;
            return;
          }
          try {
            const json::Value doc = json::parse(response);
            if (!doc.is_object() || doc.find("ok") == nullptr) ++malformed;
          } catch (const json::ParseError&) {
            ++malformed;
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(malformed.load(), 0)
        << site.site << ": a fault leaked a malformed response line";
    EXPECT_EQ(dropped.load(), 0)
        << site.site << ": a fault dropped a connection mid-request";
  }

  // serve.accept is special: the connection is refused, but with a
  // structured response -- and other clients keep being admitted.
  {
    ScopedFaultInjection scoped({{"serve.accept", "*", 1}});
    Client victim = Client::tcp(port);
    const json::Value refused = require_response(victim.recv_line());
    EXPECT_FALSE(response_ok(refused));
    EXPECT_EQ(error_code(refused), "server-overloaded");
    Client survivor = Client::tcp(port);
    EXPECT_TRUE(response_ok(require_response(
        survivor.roundtrip(R"({"id":1,"method":"ping"})"))));
  }
  EXPECT_GE(server.counters().accept_faults, 1u);

  // All probes disarmed: the daemon is healthy, not merely alive.
  Client after = Client::tcp(port);
  EXPECT_TRUE(response_ok(
      require_response(after.roundtrip(R"({"id":1,"method":"analyze"})"))));
  server.stop();
}

TEST(ServeDaemon, ShutdownMethodStopsTheServer) {
  serve::Server server(serve::builtin_design("chain4"), serial_options(),
                       tcp_options());
  server.start();
  std::thread waiter([&server] { server.wait(); });
  Client client = Client::tcp(server.tcp_port());
  const json::Value doc = require_response(
      client.roundtrip(R"({"id":1,"method":"shutdown"})"));
  EXPECT_TRUE(response_ok(doc));
  waiter.join();  // wait() returns because the client asked
  server.stop();
}

// The installed binary end to end: --stdio mode feeds stdin lines
// through the identical handle_line path and exits on shutdown.
TEST(ServeBinary, StdioModeRoundTrip) {
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::string in_path =
      (dir / ("awesim_serve_in_" + std::to_string(::getpid()))).string();
  const std::string out_path =
      (dir / ("awesim_serve_out_" + std::to_string(::getpid()))).string();
  {
    std::ofstream in(in_path);
    in << R"({"id":1,"method":"ping"})" << "\n"
       << R"({"id": 2, "method": )" << "\n"  // malformed mid-stream
       << R"({"id":3,"method":"analyze"})" << "\n"
       << R"({"id":4,"method":"shutdown"})" << "\n";
  }
  const std::string cmd = std::string(AWESIM_SERVE_BIN) +
                          " --stdio --design chain4 < " + in_path + " > " +
                          out_path;
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;
  std::ifstream out(out_path);
  ASSERT_TRUE(out.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(out, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_TRUE(response_ok(require_response(lines[0])));
  EXPECT_EQ(error_code(require_response(lines[1])), "invalid-request");
  EXPECT_TRUE(response_ok(require_response(lines[2])));
  EXPECT_TRUE(response_ok(require_response(lines[3])));
  std::filesystem::remove(in_path);
  std::filesystem::remove(out_path);
}

}  // namespace
}  // namespace awesim
