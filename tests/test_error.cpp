// The Section 3.4 accuracy machinery: closed-form exponential integrals,
// the exact eq. 39 evaluation, and the Cauchy-inequality bound.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"

namespace awesim::core {

namespace {

using la::Complex;

PoleResidueTerm term(double pr, double pi, double kr, double ki,
                     int power = 1) {
  return {Complex(pr, pi), Complex(kr, ki), power};
}

// Numerical quadrature cross-check for int f*g over [0, T].
double quad_inner(const std::vector<PoleResidueTerm>& f,
                  const std::vector<PoleResidueTerm>& g, double t_end,
                  int n = 200000) {
  double acc = 0.0;
  double prev = evaluate_terms(f, 0.0) * evaluate_terms(g, 0.0);
  const double h = t_end / n;
  for (int i = 1; i <= n; ++i) {
    const double t = h * i;
    const double cur = evaluate_terms(f, t) * evaluate_terms(g, t);
    acc += 0.5 * (prev + cur) * h;
    prev = cur;
  }
  return acc;
}

}  // namespace

TEST(ErrorEstimate, SingleExponentialNorm) {
  // int (k e^{pt})^2 = k^2 / (-2p).
  std::vector<PoleResidueTerm> f{term(-2.0, 0.0, 3.0, 0.0)};
  EXPECT_NEAR(inner_product(f, f), 9.0 / 4.0, 1e-12);
}

TEST(ErrorEstimate, CrossTermAgainstQuadrature) {
  std::vector<PoleResidueTerm> f{term(-1.0, 0.0, 2.0, 0.0),
                                 term(-5.0, 0.0, -1.0, 0.0)};
  std::vector<PoleResidueTerm> g{term(-3.0, 0.0, 0.7, 0.0)};
  EXPECT_NEAR(inner_product(f, g), quad_inner(f, g, 30.0), 1e-6);
}

TEST(ErrorEstimate, ComplexPairIsRealValued) {
  std::vector<PoleResidueTerm> f{term(-1.0, 4.0, 0.5, 0.3),
                                 term(-1.0, -4.0, 0.5, -0.3)};
  const double ip = inner_product(f, f);
  EXPECT_NEAR(ip, quad_inner(f, f, 25.0), 1e-6);
  EXPECT_GT(ip, 0.0);
}

TEST(ErrorEstimate, RepeatedPoleIntegral) {
  // f = k t e^{pt} (power 2): int f^2 = k^2 * 2! / (-2p)^3.
  std::vector<PoleResidueTerm> f{term(-2.0, 0.0, 3.0, 0.0, 2)};
  EXPECT_NEAR(inner_product(f, f), 9.0 * 2.0 / 64.0, 1e-12);
  EXPECT_NEAR(inner_product(f, f), quad_inner(f, f, 20.0), 1e-8);
}

TEST(ErrorEstimate, DivergentIntegralIsInfinite) {
  std::vector<PoleResidueTerm> f{term(1.0, 0.0, 1.0, 0.0)};
  EXPECT_TRUE(std::isinf(inner_product(f, f)));
  EXPECT_TRUE(std::isinf(l2_distance(f, {})));
}

TEST(ErrorEstimate, L2DistanceOfIdenticalSetsIsZero) {
  std::vector<PoleResidueTerm> f{term(-1.0, 2.0, 1.0, 0.5),
                                 term(-1.0, -2.0, 1.0, -0.5),
                                 term(-7.0, 0.0, -2.0, 0.0)};
  EXPECT_NEAR(l2_distance(f, f), 0.0, 1e-9);
  EXPECT_NEAR(exact_relative_error(f, f), 0.0, 1e-9);
}

TEST(ErrorEstimate, RelativeErrorScaleInvariant) {
  std::vector<PoleResidueTerm> ref{term(-1.0, 0.0, 1.0, 0.0),
                                   term(-4.0, 0.0, -0.3, 0.0)};
  std::vector<PoleResidueTerm> approx{term(-1.05, 0.0, 0.98, 0.0)};
  const double e1 = exact_relative_error(ref, approx);
  // Scale all residues by 100: relative error unchanged.
  auto ref2 = ref;
  auto approx2 = approx;
  for (auto& t : ref2) t.residue *= 100.0;
  for (auto& t : approx2) t.residue *= 100.0;
  EXPECT_NEAR(exact_relative_error(ref2, approx2), e1, 1e-10);
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e1, 0.5);
}

TEST(ErrorEstimate, CauchyBoundIsUpperBoundOnExact) {
  // The paper's bound (eq. 40) can never undercut the exact eq. 39 value.
  std::vector<PoleResidueTerm> ref{term(-1.0, 0.0, 1.0, 0.0),
                                   term(-3.0, 0.0, -0.4, 0.0),
                                   term(-9.0, 0.0, 0.1, 0.0)};
  std::vector<PoleResidueTerm> approx{term(-1.02, 0.0, 0.97, 0.0),
                                      term(-3.3, 0.0, -0.35, 0.0)};
  const double exact = exact_relative_error(ref, approx);
  const double bound = cauchy_relative_error(ref, approx);
  EXPECT_GE(bound, exact * 0.999);
  EXPECT_LT(bound, exact * 50.0);  // and not uselessly loose here
}

TEST(ErrorEstimate, CauchyBoundComplexPairs) {
  std::vector<PoleResidueTerm> ref{term(-1.0, 5.0, 0.5, 0.2),
                                   term(-1.0, -5.0, 0.5, -0.2),
                                   term(-8.0, 0.0, -0.2, 0.0)};
  std::vector<PoleResidueTerm> approx{term(-1.1, 4.9, 0.48, 0.22),
                                      term(-1.1, -4.9, 0.48, -0.22)};
  const double exact = exact_relative_error(ref, approx);
  const double bound = cauchy_relative_error(ref, approx);
  EXPECT_TRUE(std::isfinite(bound));
  EXPECT_GE(bound, exact * 0.999);
}

TEST(ErrorEstimate, CauchyFallsBackToExactForRepeatedPoles) {
  std::vector<PoleResidueTerm> ref{term(-2.0, 0.0, 1.0, 0.0, 2),
                                   term(-2.0, 0.0, 0.5, 0.0, 1)};
  std::vector<PoleResidueTerm> approx{term(-2.1, 0.0, 1.4, 0.0, 1)};
  EXPECT_NEAR(cauchy_relative_error(ref, approx),
              exact_relative_error(ref, approx), 1e-12);
}

TEST(ErrorEstimate, EmptyReference) {
  EXPECT_NEAR(exact_relative_error({}, {}), 0.0, 1e-15);
  std::vector<PoleResidueTerm> approx{term(-1.0, 0.0, 1.0, 0.0)};
  EXPECT_TRUE(std::isinf(exact_relative_error({}, approx)));
}

}  // namespace awesim::core
