// Cross-validation sweeps tying the numeric substrates to each other on
// randomized inputs: the eigenvalue solver vs the polynomial rootfinder,
// AWE's full-order matches vs the exact eigen-poles, and the simulator vs
// AWE on random damped RLC ladders.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuit/circuit.h"
#include "core/engine.h"
#include "la/eig.h"
#include "la/poly.h"
#include "sim/transient.h"

namespace awesim {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

class RandomRlcLadder : public ::testing::TestWithParam<unsigned> {
 protected:
  // 2-3 section RLC ladder with randomized (but well-damped) values.
  Circuit make() {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<double> u(0.0, 1.0);
    Circuit ckt;
    auto prev = ckt.node("in");
    ckt.add_vsource("V1", prev, kGround, Stimulus::step(0.0, 1.0));
    const auto a = ckt.node("a");
    ckt.add_resistor("Rs", prev, a, 20.0 + 60.0 * u(rng));
    prev = a;
    const int sections = 2 + (GetParam() % 2);
    for (int k = 0; k < sections; ++k) {
      const auto b = ckt.node("b" + std::to_string(k));
      const auto n = ckt.node("n" + std::to_string(k));
      ckt.add_inductor("L" + std::to_string(k), prev, b,
                       2e-9 * std::pow(10.0, u(rng)));
      ckt.add_resistor("Rw" + std::to_string(k), b, n, 2.0 + 6.0 * u(rng));
      ckt.add_capacitor("C" + std::to_string(k), n, kGround,
                        0.5e-12 * std::pow(10.0, u(rng)));
      prev = n;
    }
    out_name_ = "n" + std::to_string(sections - 1);
    return ckt;
  }

  std::string out_name_;
};

TEST_P(RandomRlcLadder, FullOrderAweRecoversEigenPoles) {
  Circuit ckt = make();
  core::Engine engine(ckt);
  const auto actual = engine.actual_poles();
  core::EngineOptions opt;
  opt.order = static_cast<int>(actual.size());
  const auto result = engine.approximate(ckt.find_node(out_name_), opt);
  // Every matched pole must sit on an actual pole.
  for (const auto& term : result.approximation.atoms()[1].terms) {
    double best = 1e300;
    for (const auto& p : actual) {
      best = std::min(best, std::abs(term.pole - p) / std::abs(p));
    }
    EXPECT_LT(best, 1e-5) << "pole (" << term.pole.real() << ","
                          << term.pole.imag() << ")";
  }
}

TEST_P(RandomRlcLadder, AweMatchesSimulatorAtModestOrder) {
  Circuit ckt = make();
  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 4;
  const auto result = engine.approximate(ckt.find_node(out_name_), opt);
  sim::TransientSimulator sim(ckt);
  const double tau = result.approximation.dominant_time_constant();
  const double horizon = 12.0 * tau;
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-6;
  const auto ref = sim.run_adaptive({ckt.find_node(out_name_)}, horizon,
                                    aopt);
  const double err = result.approximation.sample(0.0, horizon, 1201)
                         .relative_error_vs(ref);
  EXPECT_LT(err, 0.30) << "seed " << GetParam();
  // Final value exact regardless of order.
  EXPECT_NEAR(result.approximation.final_value(), 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRlcLadder,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

TEST(CrossValidation, CompanionRootsEqualEigenvalues) {
  // polyroots (companion + polish) vs direct eigenvalues of the same
  // companion matrix, random monic polynomials with roots in the left
  // half plane.
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    la::ComplexVector roots;
    const int pairs = 1 + trial % 3;
    for (int p = 0; p < pairs; ++p) {
      const double re = -0.2 - std::abs(u(rng));
      const double im = 0.5 + std::abs(u(rng));
      roots.emplace_back(re, im);
      roots.emplace_back(re, -im);
    }
    roots.emplace_back(-0.1 - std::abs(u(rng)), 0.0);
    const auto coeffs = la::poly_from_roots(roots);
    const auto found = la::polyroots(coeffs);
    ASSERT_EQ(found.size(), roots.size());
    for (const auto& want : roots) {
      double best = 1e300;
      for (const auto& got : found) {
        best = std::min(best, std::abs(got - want));
      }
      EXPECT_LT(best, 1e-7 * std::max(1.0, std::abs(want)))
          << "trial " << trial;
    }
  }
}

TEST(CrossValidation, MomentsOfMatchedModelIntegrateCorrectly) {
  // For any stable matched model, mu_0 equals the closed-form integral of
  // the transient -- checked by quadrature on a random RLC ladder.
  Circuit ckt;
  auto in = ckt.node("in");
  auto a = ckt.node("a");
  auto b = ckt.node("b");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 2.0));
  ckt.add_resistor("R1", in, a, 50.0);
  ckt.add_inductor("L1", a, b, 5e-9);
  ckt.add_capacitor("C1", b, kGround, 1e-12);
  ckt.add_resistor("R2", b, kGround, 400.0);
  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(b, opt);
  const auto& terms = result.approximation.atoms()[1].terms;
  const double mu0 = core::implied_moment(terms, 0);
  // Quadrature of the transient (v - v_final).
  const double v_final = result.approximation.final_value();
  double acc = 0.0;
  const double horizon = 50e-9;
  const int n = 200000;
  double prev = result.approximation.value(0.0) - v_final;
  for (int i = 1; i <= n; ++i) {
    const double t = horizon * i / n;
    const double cur = result.approximation.value(t) - v_final;
    acc += 0.5 * (prev + cur) * (horizon / n);
    prev = cur;
  }
  EXPECT_NEAR(mu0, acc, 1e-3 * std::abs(acc) + 1e-15);
  EXPECT_NEAR(result.approximation.settling_area(), acc,
              1e-3 * std::abs(acc) + 1e-15);
}

}  // namespace awesim
