// Moment generation (Section 3.2): recursion against hand-computed values,
// consistency with the exact transfer function, actual-pole extraction,
// and the sigma-limit initial value/slope machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "core/moments.h"
#include "mna/system.h"

namespace awesim::core {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

namespace {

// V -- R -- out -- C: transfer H(s) = 1/(1+sRC);
// step V0: xh0(out) = -V0, mu_{-1} = V0, mu_j = -V0 * (-RC)^(j+1)... more
// precisely X_h(s) = -V0/(1+sRC) = -V0 sum (-RC s)^j, so
// mu_j = -V0 (-RC)^j for j >= 0.
struct RcFixture {
  Circuit ckt;
  mna::MnaSystem mna;
  std::size_t out;

  explicit RcFixture(double r, double c, double v)
      : ckt(make(r, c, v)), mna(ckt), out(mna.node_index(ckt.find_node("out"))) {}

  static Circuit make(double r, double c, double v) {
    Circuit k;
    const auto in = k.node("in");
    const auto out = k.node("out");
    k.add_vsource("V1", in, kGround, Stimulus::step(0.0, v));
    k.add_resistor("R1", in, out, r);
    k.add_capacitor("C1", out, kGround, c);
    return k;
  }

  la::RealVector xh0() const {
    // Steady state 5 everywhere, start 0: xh0 = -x_ss.
    la::RealVector x(mna.dim(), 0.0);
    const la::RealVector ss = mna.solve(mna.rhs_at(1.0));
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = -ss[i];
    return x;
  }
};

}  // namespace

TEST(Moments, SingleRcRecursion) {
  const double r = 2.0;
  const double c = 0.5;  // tau = 1
  const double v = 5.0;
  RcFixture f(r, c, v);
  MomentSequence seq(f.mna, f.xh0());
  EXPECT_NEAR(seq.mu(-1, f.out), v, 1e-12);
  const double tau = r * c;
  for (int j = 0; j <= 5; ++j) {
    const double expected = -v * std::pow(-tau, j);
    EXPECT_NEAR(seq.mu(j, f.out), expected, 1e-10) << "j=" << j;
  }
}

TEST(Moments, LadderElmoreFromMu0) {
  // Two-section ladder: Elmore at far end = R1*(C1+C2) + R2*C2.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, a, 100.0);
  ckt.add_resistor("R2", a, b, 200.0);
  ckt.add_capacitor("C1", a, kGround, 1e-12);
  ckt.add_capacitor("C2", b, kGround, 2e-12);
  mna::MnaSystem mna(ckt);
  const auto out = mna.node_index(b);
  la::RealVector xh0(mna.dim(), 0.0);
  const auto ss = mna.solve(mna.rhs_at(1.0));
  for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = -ss[i];
  MomentSequence seq(mna, xh0);
  const double elmore = 100.0 * 3e-12 + 200.0 * 2e-12;
  // mu_0 = -T_D * V (V = 1).
  EXPECT_NEAR(seq.mu(0, out), -elmore, 1e-20);
}

TEST(Moments, ActualPolesOfRcLadder) {
  // Symmetric 2-section RC ladder, R=1, C=1: poles at -(3 +- sqrt(5))/2.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, a, 1.0);
  ckt.add_resistor("R2", a, b, 1.0);
  ckt.add_capacitor("C1", a, kGround, 1.0);
  ckt.add_capacitor("C2", b, kGround, 1.0);
  mna::MnaSystem mna(ckt);
  const auto poles = actual_poles(mna);
  ASSERT_EQ(poles.size(), 2u);
  const double p1 = -(3.0 - std::sqrt(5.0)) / 2.0;
  const double p2 = -(3.0 + std::sqrt(5.0)) / 2.0;
  EXPECT_NEAR(poles[0].real(), p1, 1e-9);
  EXPECT_NEAR(poles[1].real(), p2, 1e-9);
}

TEST(Moments, ActualPolesSkipInfinite) {
  // The V-source branch contributes no finite pole; count must equal the
  // number of state variables (2 caps here), not the MNA dimension (4).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, a, 1.0);
  ckt.add_resistor("R2", a, b, 2.0);
  ckt.add_capacitor("C1", a, kGround, 3.0);
  ckt.add_capacitor("C2", b, kGround, 4.0);
  mna::MnaSystem mna(ckt);
  EXPECT_EQ(actual_poles(mna).size(), 2u);
}

TEST(Moments, ConsistentInitialValueNoJump) {
  RcFixture f(1e3, 1e-9, 5.0);
  MomentSequence seq(f.mna, f.xh0());
  EXPECT_FALSE(seq.has_jump(f.out));
  EXPECT_NEAR(seq.consistent_initial_value()[f.out], -5.0, 1e-5);
}

TEST(Moments, CapacitiveDividerJumpDetected) {
  // V -- C1 -- out -- C2 -- gnd, plus a large R to ground for a DC path:
  // a step on V jumps out instantaneously to V*C1/(C1+C2).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 4.0));
  ckt.add_capacitor("C1", in, out, 1e-12);
  ckt.add_capacitor("C2", out, kGround, 3e-12);
  ckt.add_resistor("R1", out, kGround, 1e9);
  mna::MnaSystem mna(ckt);
  const auto idx = mna.node_index(out);
  // Steady state: out = 0 (C blocks DC).  xh0 = x0 - x_p = 0 - 0 = 0 at
  // out, but the transient initial value is the divider jump 1 V, so the
  // homogeneous part starts at +1 V (jump) and decays.
  la::RealVector xh0(mna.dim(), 0.0);
  const auto ss = mna.solve(mna.rhs_at(1.0));
  for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = -ss[i];
  MomentSequence seq(mna, xh0);
  EXPECT_TRUE(seq.has_jump(idx));
  EXPECT_NEAR(seq.consistent_initial_value()[idx], 1.0, 1e-4);
}

TEST(Moments, SlopeLimitMatchesAnalytic) {
  // Single RC, step 0->5: x_h(t) = -5 e^{-t/tau};
  // slope at 0+ is +5/tau.
  const double tau = 1e-6;
  RcFixture f(1e3, 1e-9, 5.0);
  MomentSequence seq(f.mna, f.xh0());
  const double slope = -seq.mu(-2, f.out);  // mu_{-2} = -x_h'(0+)
  EXPECT_NEAR(slope, 5.0 / tau, 1e-2 * 5.0 / tau);
}

TEST(Moments, GammaEstimateNearDominantPole) {
  RcFixture f(1e3, 1e-9, 5.0);  // single pole at -1e6
  MomentSequence seq(f.mna, f.xh0());
  const double gamma = seq.gamma_estimate(f.out);
  EXPECT_NEAR(gamma, 1e6, 10.0);
}

TEST(Moments, DimensionMismatchThrows) {
  RcFixture f(1.0, 1.0, 1.0);
  EXPECT_THROW(MomentSequence(f.mna, la::RealVector(2, 0.0)),
               std::invalid_argument);
}

}  // namespace awesim::core
