// Reference transient simulator: verified against closed-form solutions
// (it plays the role of SPICE in every figure reproduction, so its own
// correctness is load-bearing).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "circuits/paper_circuits.h"
#include "sim/transient.h"

namespace awesim {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;
using sim::Method;
using sim::Probe;
using sim::TransientOptions;
using sim::TransientSimulator;

namespace {

Circuit single_rc(double r, double c, Stimulus input) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, std::move(input));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  return ckt;
}

}  // namespace

TEST(TransientSim, RcStepMatchesAnalytic) {
  const double tau = 1e-6;
  Circuit ckt = single_rc(1e3, 1e-9, Stimulus::step(0.0, 5.0));
  TransientSimulator sim(ckt);
  TransientOptions opt;
  opt.timestep = tau / 200.0;
  const auto wave = sim.run({ckt.find_node("out")}, 5.0 * tau, opt);
  for (double t : {0.3 * tau, tau, 3.0 * tau}) {
    const double exact = 5.0 * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(wave.value_at(t), exact, 5e-3) << "t=" << t;
  }
}

TEST(TransientSim, BackwardEulerAlsoConverges) {
  const double tau = 1e-6;
  Circuit ckt = single_rc(1e3, 1e-9, Stimulus::step(0.0, 5.0));
  TransientSimulator sim(ckt);
  TransientOptions opt;
  opt.method = Method::BackwardEuler;
  opt.timestep = tau / 500.0;
  const auto wave = sim.run({ckt.find_node("out")}, 5.0 * tau, opt);
  EXPECT_NEAR(wave.value_at(tau), 5.0 * (1.0 - std::exp(-1.0)), 2e-2);
}

TEST(TransientSim, TrapezoidalIsSecondOrderAccurate) {
  // Error at fixed time must drop ~4x when the step halves.
  const double tau = 1e-6;
  Circuit ckt = single_rc(1e3, 1e-9, Stimulus::step(0.0, 1.0));
  TransientSimulator sim(ckt);
  const double t_obs = 2.0 * tau;
  const double exact = 1.0 - std::exp(-t_obs / tau);
  double errors[2];
  int i = 0;
  for (double steps : {100.0, 200.0}) {
    TransientOptions opt;
    opt.timestep = 5.0 * tau / steps;
    opt.be_startup_steps = 1;
    const auto wave = sim.run({ckt.find_node("out")}, 5.0 * tau, opt);
    errors[i++] = std::abs(wave.value_at(t_obs) - exact);
  }
  EXPECT_LT(errors[1], errors[0] / 2.5);
}

TEST(TransientSim, RampInputFollowsParticularSolution) {
  // Slow ramp (rise >> tau): output tracks input minus slope*tau.
  const double tau = 1e-6;
  Circuit ckt = single_rc(1e3, 1e-9, Stimulus::ramp_step(0.0, 5.0, 100.0 * tau));
  TransientSimulator sim(ckt);
  TransientOptions opt;
  opt.timestep = tau / 10.0;
  const auto wave = sim.run({ckt.find_node("out")}, 50.0 * tau, opt);
  const double slope = 5.0 / (100.0 * tau);
  const double t_obs = 30.0 * tau;  // transient fully decayed
  EXPECT_NEAR(wave.value_at(t_obs), slope * (t_obs - tau), 1e-2);
}

TEST(TransientSim, InitialConditionDecay) {
  // No source drive; capacitor starts at 3 V and discharges through R.
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add_resistor("R1", out, kGround, 1e3);
  ckt.add_capacitor("C1", out, kGround, 1e-9, 3.0);
  // A dummy grounded source reference is unnecessary; G is nonsingular.
  TransientSimulator sim(ckt);
  const double tau = 1e-6;
  TransientOptions opt;
  opt.timestep = tau / 200.0;
  const auto wave = sim.run({out}, 5.0 * tau, opt);
  EXPECT_NEAR(wave.values().front(), 3.0, 1e-12);
  EXPECT_NEAR(wave.value_at(tau), 3.0 * std::exp(-1.0), 5e-3);
}

TEST(TransientSim, LcOscillatorFrequencyAndAmplitude) {
  // Underdamped series RLC: check ring frequency and decay envelope.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, mid, 0.2);
  ckt.add_inductor("L1", mid, out, 1e-6);
  ckt.add_capacitor("C1", out, kGround, 1e-9);
  TransientSimulator sim(ckt);
  const double w0 = 1.0 / std::sqrt(1e-6 * 1e-9);  // 3.16e7
  const double alpha = 0.2 / (2.0 * 1e-6);         // 1e5
  const double wd = std::sqrt(w0 * w0 - alpha * alpha);
  TransientOptions opt;
  opt.timestep = (2.0 * M_PI / w0) / 400.0;
  const auto wave = sim.run({out}, 6.0 * 2.0 * M_PI / wd, opt);
  // Analytic: v = 1 - e^{-alpha t} (cos wd t + alpha/wd sin wd t).
  for (double frac : {0.25, 0.5, 1.0, 2.0}) {
    const double t = frac * 2.0 * M_PI / wd;
    const double exact =
        1.0 - std::exp(-alpha * t) *
                  (std::cos(wd * t) + alpha / wd * std::sin(wd * t));
    EXPECT_NEAR(wave.value_at(t), exact, 2e-2) << "t=" << t;
  }
}

TEST(TransientSim, InductorInitialCurrent) {
  // L with I0 into an R: i(t) = I0 e^{-R t/L}; v_R = R i.
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_inductor("L1", a, kGround, 1e-3, 2.0);
  ckt.add_resistor("R1", a, kGround, 10.0);
  TransientSimulator sim(ckt);
  const double tau = 1e-3 / 10.0;
  TransientOptions opt;
  opt.timestep = tau / 500.0;
  const auto wave = sim.run({a}, 3.0 * tau, opt);
  // Current flows pos->neg through L (a -> gnd), so it pushes a out of
  // the resistor: v_a = -R*I0*exp(-t/tau) with these orientations.
  EXPECT_NEAR(wave.value_at(tau), -20.0 * std::exp(-1.0), 0.15);
}

TEST(TransientSim, AdaptiveRefinementConverges) {
  auto ckt = circuits::fig25_rlc_ladder();
  TransientSimulator sim(ckt);
  sim::AdaptiveOptions opt;
  opt.tolerance = 1e-6;
  const auto wave = sim.run_adaptive({ckt.find_node("n3")}, 20e-9, opt);
  // Final value settles to the source level.
  EXPECT_NEAR(wave.values().back(), 5.0, 0.05);
  // Underdamped: must overshoot 5 V substantially at some point.
  EXPECT_GT(wave.max_value(), 5.5);
}

TEST(TransientSim, VccsAmplifier) {
  // VCCS driving a load resistor: v_out = -gm * R_load * v_in (inverting
  // with current pushed out of node when v_in > 0).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_vccs("G1", out, kGround, in, kGround, 2e-3);
  ckt.add_resistor("RL", out, kGround, 1e3);
  ckt.add_capacitor("CL", out, kGround, 1e-12);
  TransientSimulator sim(ckt);
  TransientOptions opt;
  opt.timestep = 1e-11;
  const auto wave = sim.run({out}, 1e-8, opt);
  EXPECT_NEAR(wave.values().back(), -2.0, 1e-3);
}

TEST(TransientSim, StimulusBreakpointLandsOnGrid) {
  // A mid-simulation step: the jump must not be smeared more than a step.
  Circuit ckt = single_rc(1e3, 1e-9, Stimulus::step(0.0, 5.0, 2.5e-7));
  TransientSimulator sim(ckt);
  TransientOptions opt;
  opt.timestep = 1e-7;  // breakpoint 2.5e-7 is NOT a multiple of the step
  const auto wave = sim.run({ckt.find_node("out")}, 2e-6, opt);
  EXPECT_NEAR(wave.value_at(2.4e-7), 0.0, 1e-6);  // still quiet before
  const double tau = 1e-6;
  const double t = 1.5e-6;
  const double exact = 5.0 * (1.0 - std::exp(-(t - 2.5e-7) / tau));
  EXPECT_NEAR(wave.value_at(t), exact, 5e-2);
}

TEST(TransientSim, RejectsBadArguments) {
  Circuit ckt = single_rc(1.0, 1.0, Stimulus::dc(1.0));
  TransientSimulator sim(ckt);
  EXPECT_THROW(sim.run({ckt.find_node("out")}, 0.0), std::invalid_argument);
  EXPECT_THROW(sim.run({kGround}, 1.0), std::invalid_argument);
}

}  // namespace awesim
