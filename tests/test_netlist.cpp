// SPICE-like netlist parsing: cards, units, stimuli, ICs, errors,
// round-tripping.
#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "netlist/parser.h"

namespace awesim::netlist {

using circuit::ElementKind;

namespace {

/// Happy-path parse through the error-collecting API (the throwing
/// parse() shim is deprecated; its mapping is covered by ParserCompat).
circuit::Circuit parse_ok(std::string_view text) {
  ParseResult result = parse_collect(text);
  EXPECT_TRUE(result.ok()) << core::to_string(result.diagnostics);
  return std::move(result.circuit.value());
}

/// Expects the text to be rejected and returns its first Error record.
core::Diagnostic first_error(std::string_view text) {
  ParseResult result = parse_collect(text);
  EXPECT_FALSE(result.ok()) << "unexpectedly parsed:\n" << text;
  for (const auto& d : result.diagnostics) {
    if (d.severity >= core::Severity::Error) return d;
  }
  ADD_FAILURE() << "rejected with no Error diagnostic:\n" << text;
  return {};
}

bool rejected(std::string_view text) {
  return !parse_collect(text).ok();
}

}  // namespace

TEST(ParseValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("4.7"), 4.7);
  EXPECT_DOUBLE_EQ(parse_value("2k"), 2e3);
  EXPECT_DOUBLE_EQ(parse_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_value("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parse_value("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_value("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(parse_value("5u"), 5e-6);
  EXPECT_DOUBLE_EQ(parse_value("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(parse_value("2f"), 2e-15);
  EXPECT_DOUBLE_EQ(parse_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_value("-3.3k"), -3300.0);
  // Trailing unit letters after the scale are ignored (pF, kOhm).
  EXPECT_DOUBLE_EQ(parse_value("10pF"), 10e-12);
  EXPECT_THROW(parse_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_value(""), std::invalid_argument);
  EXPECT_THROW(parse_value("1x"), std::invalid_argument);
}

TEST(Parser, BasicRcNetlist) {
  const auto ckt = parse_ok(R"(
* simple rc
V1 in 0 STEP(0 5)
R1 in out 1k
C1 out 0 1p
.end
)");
  EXPECT_EQ(ckt.elements().size(), 3u);
  EXPECT_EQ(ckt.find_element("R1")->value, 1e3);
  EXPECT_EQ(ckt.find_element("C1")->value, 1e-12);
  EXPECT_EQ(ckt.find_element("V1")->stimulus.value(1.0), 5.0);
}

TEST(Parser, CommentsAndContinuation) {
  const auto ckt = parse_ok(
      "V1 a 0 DC 1 ; inline comment\n"
      "* full comment\n"
      "R1 a\n"
      "+ 0 2k\n");
  EXPECT_EQ(ckt.elements().size(), 2u);
  EXPECT_EQ(ckt.find_element("R1")->value, 2e3);
}

TEST(Parser, BareValueIsDc) {
  const auto ckt = parse_ok("V1 a 0 3.3\nR1 a 0 1k\n");
  EXPECT_EQ(ckt.find_element("V1")->stimulus.value(0.0), 3.3);
}

TEST(Parser, StepWithDelayAndRise) {
  const auto ckt = parse_ok("V1 a 0 STEP(0 5 1n 2n)\nR1 a 0 1k\n");
  const auto& s = ckt.find_element("V1")->stimulus;
  EXPECT_NEAR(s.value(0.5e-9), 0.0, 1e-12);
  EXPECT_NEAR(s.value(2e-9), 2.5, 1e-9);
  EXPECT_NEAR(s.value(5e-9), 5.0, 1e-12);
}

TEST(Parser, Pwl) {
  const auto ckt = parse_ok("I1 0 a PWL(0 0 1u 1m 2u 0)\nR1 a 0 1k\n");
  const auto& s = ckt.find_element("I1")->stimulus;
  EXPECT_NEAR(s.value(0.5e-6), 0.5e-3, 1e-15);
  EXPECT_NEAR(s.value(3e-6), 0.0, 1e-15);
}

TEST(Parser, CapacitorIc) {
  const auto ckt = parse_ok("C1 a 0 1p IC=2.5\nR1 a 0 1k\n");
  ASSERT_TRUE(ckt.find_element("C1")->initial_condition.has_value());
  EXPECT_EQ(*ckt.find_element("C1")->initial_condition, 2.5);
}

TEST(Parser, InductorAndControlledSources) {
  const auto ckt = parse_ok(R"(
V1 in 0 DC 1
L1 in a 10n IC=1m
E1 b 0 a 0 2.0
G1 c 0 b 0 1m
F1 d 0 V1 3
H1 e 0 V1 50
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
R5 e 0 1k
)");
  EXPECT_EQ(ckt.find_element("L1")->kind, ElementKind::Inductor);
  EXPECT_EQ(*ckt.find_element("L1")->initial_condition, 1e-3);
  EXPECT_EQ(ckt.find_element("E1")->kind, ElementKind::Vcvs);
  EXPECT_EQ(ckt.find_element("G1")->kind, ElementKind::Vccs);
  EXPECT_EQ(ckt.find_element("F1")->ctrl_source, "V1");
  EXPECT_EQ(ckt.find_element("H1")->value, 50.0);
}

TEST(Parser, IcDirective) {
  const auto ckt = parse_ok(
      "V1 in 0 DC 0\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".ic V(out)=1.5\n");
  EXPECT_EQ(ckt.initial_node_voltages().at(ckt.find_node("out")), 1.5);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  // missing value on line 2
  EXPECT_EQ(first_error("V1 a 0 DC 1\nR1 a 0\n").line, 2u);
}

TEST(Parser, UnknownElementRejected) {
  EXPECT_TRUE(rejected("X1 a b c\n"));
  EXPECT_TRUE(rejected("V1 a 0 WIGGLE(1 2)\nR1 a 0 1\n"));
  EXPECT_TRUE(rejected(".option foo\n"));
  EXPECT_TRUE(rejected("+ continuation first\n"));
}

TEST(Parser, DuplicateNamesRejectedByValidate) {
  EXPECT_EQ(first_error("R1 a 0 1k\nR1 a 0 2k\n").code,
            core::DiagCode::ValidationError);
}

TEST(Parser, FileNotFound) {
  const ParseResult result = parse_file_collect("/nonexistent/foo.sp");
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].code, core::DiagCode::ParseError);
}

TEST(Writer, RoundTripPreservesBehaviour) {
  const auto original = parse_ok(R"(
V1 in 0 STEP(0 5 0 1n)
R1 in a 1k
C1 a 0 1p IC=0.5
L1 a out 10n
R2 out 0 50
.ic V(a)=0.25
)");
  const std::string text = write(original);
  const auto reparsed = parse_ok(text);
  ASSERT_EQ(reparsed.elements().size(), original.elements().size());
  // Stimulus behaviour preserved at sample times.
  const auto& s1 = original.find_element("V1")->stimulus;
  const auto& s2 = reparsed.find_element("V1")->stimulus;
  for (double t : {0.0, 0.5e-9, 1e-9, 5e-9}) {
    EXPECT_NEAR(s1.value(t), s2.value(t), 1e-9) << "t=" << t;
  }
  EXPECT_EQ(*reparsed.find_element("C1")->initial_condition, 0.5);
  EXPECT_EQ(reparsed.initial_node_voltages().at(reparsed.find_node("a")),
            0.25);
}


TEST(Subckt, BasicExpansion) {
  const auto ckt = parse_ok(R"(
.subckt rcseg in out
Rseg in out 1k
Cseg out 0 1p
.ends
V1 a 0 STEP(0 5)
X1 a b rcseg
X2 b c rcseg
)");
  // 2 instances x 2 elements + the source.
  EXPECT_EQ(ckt.elements().size(), 5u);
  ASSERT_NE(ckt.find_element("X1.Rseg"), nullptr);
  ASSERT_NE(ckt.find_element("X2.Cseg"), nullptr);
  // Shared node b connects X1's out to X2's in.
  EXPECT_EQ(ckt.find_element("X1.Rseg")->neg, ckt.find_node("b"));
  EXPECT_EQ(ckt.find_element("X2.Rseg")->pos, ckt.find_node("b"));
  // X1's internal cap hangs on b too (out port), X2's on c.
  EXPECT_EQ(ckt.find_element("X2.Cseg")->pos, ckt.find_node("c"));
}

TEST(Subckt, LocalNodesArePrefixedAndIsolated) {
  const auto ckt = parse_ok(R"(
.subckt pi a b
R1 a mid 500
R2 mid b 500
Cm mid 0 2p
.ends
V1 in 0 DC 1
X1 in out pi
X2 out far pi
)");
  // Each instance has its own private "mid" node.
  EXPECT_NE(ckt.find_node("X1.mid"), ckt.find_node("X2.mid"));
  EXPECT_EQ(ckt.find_element("X1.Cm")->pos, ckt.find_node("X1.mid"));
}

TEST(Subckt, NestedInstances) {
  const auto ckt = parse_ok(R"(
.subckt seg a b
Rs a b 100
Cs b 0 1p
.ends
.subckt chain2 a b
X1 a m seg
X2 m b seg
.ends
V1 p 0 DC 1
Xc p q chain2
)");
  EXPECT_EQ(ckt.elements().size(), 5u);
  ASSERT_NE(ckt.find_element("Xc.X1.Rs"), nullptr);
  ASSERT_NE(ckt.find_element("Xc.X2.Cs"), nullptr);
  // The chain's internal m is private to Xc.
  EXPECT_NO_THROW(ckt.find_node("Xc.m"));
}

TEST(Subckt, GroundPassesThrough) {
  const auto ckt = parse_ok(R"(
.subckt shunt a
Rsh a 0 1k
.ends
V1 n 0 DC 1
X1 n shunt
)");
  EXPECT_EQ(ckt.find_element("X1.Rsh")->neg, circuit::kGround);
}

TEST(Subckt, IcInsideSubcircuit) {
  const auto ckt = parse_ok(R"(
.subckt cell in
Rc in s 1k
Cc s 0 1p
.ic V(s)=2.5
.ends
V1 top 0 DC 0
X1 top cell
)");
  EXPECT_EQ(ckt.initial_node_voltages().at(ckt.find_node("X1.s")), 2.5);
}

TEST(Subckt, Errors) {
  EXPECT_TRUE(rejected(".subckt foo\n.ends\n"));          // no port
  EXPECT_TRUE(rejected(".subckt foo a\nR1 a 0 1k\n"));    // open
  EXPECT_TRUE(rejected("V1 a 0 DC 1\nX1 a nosuch\n"));
  EXPECT_TRUE(rejected(R"(
.subckt s a
R1 a 0 1k
.ends
V1 n 0 DC 1
X1 n q s
)"));  // wrong port count
  EXPECT_TRUE(rejected(R"(
.subckt loop a
X1 a loop
.ends
V1 n 0 DC 1
X1 n loop
)"));  // self-recursion
}

// The deprecated throwing shims stay covered until out-of-tree callers
// finish migrating: exception types and the line() context are stable API.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ParserCompat, ThrowingShimsPreserveExceptionMapping) {
  EXPECT_EQ(parse("V1 a 0 DC 1\nR1 a 0 1k\n").elements().size(), 2u);
  try {
    parse("V1 a 0 DC 1\nR1 a 0\n");  // missing value on line 2
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  // Structurally invalid circuits keep the historical exception type.
  EXPECT_THROW(parse("R1 a 0 1k\nR1 a 0 2k\n"), std::invalid_argument);
  EXPECT_THROW(parse_file("/nonexistent/foo.sp"), std::runtime_error);
}
#pragma GCC diagnostic pop

}  // namespace awesim::netlist
