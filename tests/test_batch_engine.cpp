// Determinism and equivalence of the batch multi-output engine and the
// parallel timing wavefront:
//
//   * Engine::approximate_all must return results bitwise identical to
//     per-output Engine::approximate calls (the batch path shares the
//     LU, particular solutions, and moment vectors but runs the exact
//     same per-output arithmetic);
//   * Design::analyze must produce the exact same report for every
//     thread count (levelized wavefronts + fixed reduction order).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "timing/analyzer.h"

namespace awesim {

namespace {

// Exact (bitwise) equality of two results, NaN == NaN allowed for the
// error estimate.
void expect_identical(const core::Result& a, const core::Result& b) {
  EXPECT_EQ(a.order_used, b.order_used);
  EXPECT_EQ(a.stable, b.stable);
  if (std::isnan(a.error_estimate)) {
    EXPECT_TRUE(std::isnan(b.error_estimate));
  } else {
    EXPECT_EQ(a.error_estimate, b.error_estimate);
  }
  EXPECT_EQ(a.output_moments, b.output_moments);
  ASSERT_EQ(a.approximation.atoms().size(), b.approximation.atoms().size());
  for (std::size_t i = 0; i < a.approximation.atoms().size(); ++i) {
    const auto& atom_a = a.approximation.atoms()[i];
    const auto& atom_b = b.approximation.atoms()[i];
    EXPECT_EQ(atom_a.start_time, atom_b.start_time);
    EXPECT_EQ(atom_a.affine_offset, atom_b.affine_offset);
    EXPECT_EQ(atom_a.affine_slope, atom_b.affine_slope);
    ASSERT_EQ(atom_a.terms.size(), atom_b.terms.size());
    for (std::size_t k = 0; k < atom_a.terms.size(); ++k) {
      EXPECT_EQ(atom_a.terms[k].pole, atom_b.terms[k].pole);
      EXPECT_EQ(atom_a.terms[k].residue, atom_b.terms[k].residue);
      EXPECT_EQ(atom_a.terms[k].power, atom_b.terms[k].power);
    }
  }
}

// A multi-sink tree: spine with taps, outputs at each tap.
circuit::Circuit tap_tree(std::vector<circuit::NodeId>& outs,
                          std::size_t taps) {
  circuit::Circuit ckt;
  const auto vin = ckt.node("in");
  ckt.add_vsource("Vin", vin, circuit::kGround,
                  circuit::Stimulus::ramp_step(0.0, 5.0, 0.2e-9));
  auto spine = ckt.node("s0");
  ckt.add_resistor("R0", vin, spine, 150.0);
  for (std::size_t i = 0; i < taps; ++i) {
    const std::string tag = std::to_string(i);
    const auto next = ckt.node("s" + std::to_string(i + 1));
    ckt.add_resistor("Rs" + tag, spine, next, 60.0);
    ckt.add_capacitor("Cs" + tag, next, circuit::kGround, 10e-15);
    const auto tap = ckt.node("t" + tag);
    ckt.add_resistor("Rt" + tag, next, tap, 200.0);
    ckt.add_capacitor("Ct" + tag, tap, circuit::kGround, 15e-15);
    outs.push_back(tap);
    spine = next;
  }
  return ckt;
}

// A design with fan-out, reconvergence, and multiple levels so the
// wavefront scheduler has real work: root fans out to `width` chains of
// `depth` gates, all reconverging into one tail gate.
timing::Design lattice_design(std::size_t width, int depth) {
  timing::Design d;
  using K = timing::NetElement::Kind;
  d.add_gate({"root", 400.0, 4e-15, 0.0});
  d.set_primary_input("root");
  d.add_gate({"tail", 900.0, 6e-15, 0.0});
  timing::Net fan;
  fan.name = "fan";
  fan.parasitics = {{K::Resistor, "DRV", "h", 120.0},
                    {K::Capacitor, "h", "0", 15e-15}};
  timing::Net join;
  join.name = "join";
  join.parasitics = {{K::Resistor, "DRV", "j", 250.0},
                     {K::Capacitor, "j", "0", 25e-15}};
  for (std::size_t w = 0; w < width; ++w) {
    std::string prev;
    for (int s = 0; s < depth; ++s) {
      const std::string name =
          "g" + std::to_string(w) + "_" + std::to_string(s);
      d.add_gate({name, 600.0 + 100.0 * static_cast<double>(w), 5e-15,
                  2e-12});
      if (s == 0) {
        fan.sink_node[name] = "h";
      } else {
        timing::Net net;
        net.name = name + "_in";
        net.parasitics = {
            {K::Resistor, "DRV", "w", 200.0 + 30.0 * s},
            {K::Capacitor, "w", "0", 20e-15}};
        net.sink_node[name] = "w";
        d.add_net(prev, net);
      }
      prev = name;
    }
    timing::Net last;
    last.name = "last" + std::to_string(w);
    last.parasitics = {{K::Resistor, "DRV", "v", 180.0},
                       {K::Capacitor, "v", "0", 18e-15}};
    last.sink_node["tail"] = "v";
    d.add_net(prev, last);
  }
  d.add_net("root", fan);
  // Design output from the tail gate.
  timing::Net out;
  out.name = "out";
  out.parasitics = {{K::Resistor, "DRV", "o", 100.0},
                    {K::Capacitor, "o", "0", 30e-15}};
  out.sink_node["OUT"] = "o";
  d.add_net("tail", out);
  return d;
}

void expect_same_report(const timing::TimingReport& a,
                        const timing::TimingReport& b) {
  EXPECT_EQ(a.critical_delay, b.critical_delay);
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.gate_arrival, b.gate_arrival);
  EXPECT_EQ(a.levels, b.levels);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    const auto& sa = a.stages[i];
    const auto& sb = b.stages[i];
    EXPECT_EQ(sa.driver_gate, sb.driver_gate);
    EXPECT_EQ(sa.net, sb.net);
    EXPECT_EQ(sa.input_arrival, sb.input_arrival);
    EXPECT_EQ(sa.awe_order_used, sb.awe_order_used);
    ASSERT_EQ(sa.sinks.size(), sb.sinks.size());
    for (std::size_t k = 0; k < sa.sinks.size(); ++k) {
      EXPECT_EQ(sa.sinks[k].gate, sb.sinks[k].gate);
      EXPECT_EQ(sa.sinks[k].stage_delay, sb.sinks[k].stage_delay);
      EXPECT_EQ(sa.sinks[k].slew, sb.sinks[k].slew);
      EXPECT_EQ(sa.sinks[k].arrival, sb.sinks[k].arrival);
    }
  }
  // Integer work counters are part of the determinism contract; phase
  // wall times legitimately differ run to run.
  EXPECT_EQ(a.awe_stats.factorizations, b.awe_stats.factorizations);
  EXPECT_EQ(a.awe_stats.substitutions, b.awe_stats.substitutions);
  EXPECT_EQ(a.awe_stats.matches, b.awe_stats.matches);
  EXPECT_EQ(a.awe_stats.outputs, b.awe_stats.outputs);
  EXPECT_EQ(a.awe_stats.stages, b.awe_stats.stages);
}

}  // namespace

TEST(BatchEngine, MatchesPerOutputApproximateBitwise) {
  std::vector<circuit::NodeId> outs;
  auto ckt = tap_tree(outs, 12);

  core::EngineOptions options;
  options.order = 3;

  core::Engine batch_engine(ckt);
  const auto batch = batch_engine.approximate_all(outs, options);
  ASSERT_EQ(batch.results.size(), outs.size());

  // Reference: a completely independent engine, one approximate() per
  // output.
  core::Engine ref_engine(ckt);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const auto ref = ref_engine.approximate(outs[i], options);
    expect_identical(batch.results[i], ref);
  }
}

TEST(BatchEngine, MatchesPerOutputWithAutoOrderAndSlope) {
  std::vector<circuit::NodeId> outs;
  auto ckt = tap_tree(outs, 6);

  core::EngineOptions options;
  options.order = 2;
  options.auto_order = true;
  options.error_tolerance = 0.005;
  options.match_initial_slope = true;

  core::Engine batch_engine(ckt);
  const auto batch = batch_engine.approximate_all(outs, options);
  core::Engine ref_engine(ckt);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    expect_identical(batch.results[i],
                     ref_engine.approximate(outs[i], options));
  }
}

TEST(BatchEngine, SharesCircuitLevelWork) {
  std::vector<circuit::NodeId> outs;
  auto ckt = tap_tree(outs, 16);
  core::EngineOptions options;
  options.order = 3;

  core::Engine engine(ckt);
  const auto batch = engine.approximate_all(outs, options);
  // The circuit-level factorizations (one LU of G plus a handful of
  // sigma-limit shifts for the jump check) are independent of the output
  // count: far fewer than one per sink.
  EXPECT_GE(batch.stats.factorizations, 1u);
  EXPECT_LT(batch.stats.factorizations, outs.size());
  EXPECT_EQ(batch.stats.outputs, outs.size());
  EXPECT_GE(batch.stats.matches, 2 * outs.size());

  // A second batch on the same engine reuses everything: no new
  // factorizations or substitutions, only matches.
  const auto again = engine.approximate_all(outs, options);
  EXPECT_EQ(again.stats.factorizations, 0u);
  EXPECT_EQ(again.stats.substitutions, 0u);
  EXPECT_EQ(again.stats.outputs, outs.size());
}

TEST(BatchEngine, EmptyOutputsAndErrors) {
  std::vector<circuit::NodeId> outs;
  auto ckt = tap_tree(outs, 2);
  core::Engine engine(ckt);
  core::EngineOptions options;

  const auto batch =
      engine.approximate_all(std::span<const circuit::NodeId>{}, options);
  EXPECT_TRUE(batch.results.empty());

  options.order = 0;
  EXPECT_THROW(engine.approximate_all(outs, options),
               std::invalid_argument);
  options.order = 2;
  const circuit::NodeId ground[] = {circuit::kGround};
  EXPECT_THROW(engine.approximate_all(ground, options),
               std::invalid_argument);
}

TEST(ParallelAnalyzer, ReportIdenticalAcrossThreadCounts) {
  timing::Design design = lattice_design(5, 3);
  timing::AnalysisOptions base;
  base.threads = 1;
  const auto serial = design.analyze(base);

  // The lattice levelizes into root / chain stages / tail / output.
  EXPECT_GE(serial.levels, 4u);
  EXPECT_GT(serial.critical_delay, 0.0);
  ASSERT_FALSE(serial.critical_path.empty());
  EXPECT_EQ(serial.critical_path.front(), "root");
  EXPECT_EQ(serial.critical_path.back(), "OUT");

  for (int threads : {2, 8}) {
    timing::AnalysisOptions opt = base;
    opt.threads = threads;
    const auto parallel = design.analyze(opt);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_report(serial, parallel);
  }
}

TEST(ParallelAnalyzer, MultiSinkNetUsesOneBatch) {
  timing::Design d;
  using K = timing::NetElement::Kind;
  d.add_gate({"drv", 1e3, 4e-15, 0.0});
  timing::Net net;
  net.name = "fork";
  net.parasitics = {{K::Resistor, "DRV", "a", 200.0},
                    {K::Capacitor, "a", "0", 20e-15},
                    {K::Resistor, "a", "b", 1e3},
                    {K::Capacitor, "b", "0", 60e-15}};
  net.sink_node["near"] = "a";
  net.sink_node["far"] = "b";
  d.add_gate({"near", 1e3, 5e-15, 0.0});
  d.add_gate({"far", 1e3, 5e-15, 0.0});
  d.add_net("drv", net);
  d.set_primary_input("drv");

  const auto report = d.analyze();
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(report.awe_stats.stages, 1u);
  EXPECT_EQ(report.awe_stats.outputs, 2u);
  // The whole two-sink stage runs on one factored system (the sigma
  // shifts for jump detection add a few, but nothing scales per sink).
  EXPECT_LE(report.awe_stats.factorizations, 12u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(ParallelAnalyzer, CycleStillDetectedAndErrorsPropagate) {
  timing::Design d;
  using K = timing::NetElement::Kind;
  d.add_gate({"a", 1e3, 1e-15, 0.0});
  d.add_gate({"b", 1e3, 1e-15, 0.0});
  timing::Net ab;
  ab.name = "ab";
  ab.parasitics = {{K::Resistor, "DRV", "w", 100.0},
                   {K::Capacitor, "w", "0", 1e-15}};
  ab.sink_node["b"] = "w";
  d.add_net("a", ab);
  timing::Net ba = ab;
  ba.name = "ba";
  ba.sink_node.clear();
  ba.sink_node["a"] = "w";
  d.add_net("b", ba);
  for (int threads : {1, 4}) {
    timing::AnalysisOptions opt;
    opt.threads = threads;
    // The default pre-flight audit throws a typed record with the loop
    // path; preflight_audit = false restores the legacy untyped throw.
    EXPECT_THROW(d.analyze(opt), core::DiagnosticError);
    opt.preflight_audit = false;
    EXPECT_THROW(d.analyze(opt), std::invalid_argument);
  }
}

}  // namespace awesim
