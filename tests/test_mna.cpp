// MNA formulation: stamps, DC solves, events, initial state, floating
// nodes, controlled sources.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "mna/system.h"

namespace awesim::mna {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

TEST(Mna, VoltageDividerDc) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", in, kGround, Stimulus::dc(10.0));
  ckt.add_resistor("R1", in, mid, 1e3);
  ckt.add_resistor("R2", mid, kGround, 3e3);
  MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  EXPECT_NEAR(x[mna.node_index(mid)], 7.5, 1e-12);
  // Source branch current: 10V across 4k, flowing out of the + terminal.
  EXPECT_NEAR(x[*mna.branch_index("V1")], -10.0 / 4e3, 1e-15);
}

TEST(Mna, CurrentSourceIntoResistor) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_isource("I1", kGround, a, Stimulus::dc(2e-3));
  ckt.add_resistor("R1", a, kGround, 1e3);
  MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  // 2 mA pushed into node a through 1k: +2 V.
  EXPECT_NEAR(x[mna.node_index(a)], 2.0, 1e-12);
}

TEST(Mna, DimensionCounting) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::dc(1.0));
  ckt.add_inductor("L1", a, b, 1e-9);
  ckt.add_resistor("R1", b, kGround, 50.0);
  ckt.add_capacitor("C1", b, kGround, 1e-12);
  MnaSystem mna(ckt);
  // 2 nodes + V branch + L branch.
  EXPECT_EQ(mna.dim(), 4u);
  EXPECT_TRUE(mna.branch_index("L1").has_value());
  EXPECT_FALSE(mna.branch_index("R1").has_value());
  EXPECT_FALSE(mna.branch_index("missing").has_value());
}

TEST(Mna, InductorIsDcShort) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::dc(3.0));
  ckt.add_inductor("L1", a, b, 1e-6);
  ckt.add_resistor("R1", b, kGround, 10.0);
  MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  EXPECT_NEAR(x[mna.node_index(b)], 3.0, 1e-12);
  EXPECT_NEAR(x[*mna.branch_index("L1")], 0.3, 1e-12);
}

TEST(Mna, VcvsGain) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::dc(2.0));
  ckt.add_vcvs("E1", out, kGround, in, kGround, 7.0);
  ckt.add_resistor("RL", out, kGround, 1e3);
  MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  EXPECT_NEAR(x[mna.node_index(out)], 14.0, 1e-12);
}

TEST(Mna, CccsMirrorsControlCurrent) {
  // V1 drives 1 mA through R1; F1 mirrors 3x of it into R2.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::dc(1.0));
  ckt.add_resistor("R1", a, kGround, 1e3);
  ckt.add_cccs("F1", kGround, b, "V1", 3.0);
  ckt.add_resistor("R2", b, kGround, 1e3);
  MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  // i(V1) = -1 mA (out of + terminal); F current = 3*i from gnd to b,
  // so i into b = -3*i(V1)... sign convention: current gain * branch
  // current flows pos->neg through F (gnd -> b), pulling b negative when
  // i(V1) positive.  With i(V1) = -1e-3, F pushes +3 mA into b? Verify
  // magnitude and linearity instead of sign convention minutiae:
  EXPECT_NEAR(std::abs(x[mna.node_index(b)]), 3.0, 1e-9);
}

TEST(Mna, CcvsTransresistance) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::dc(1.0));
  ckt.add_resistor("R1", a, kGround, 1e3);  // i(V1) = -1 mA
  ckt.add_ccvs("H1", b, kGround, "V1", 2e3);
  ckt.add_resistor("RL", b, kGround, 1e3);
  MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  EXPECT_NEAR(std::abs(x[mna.node_index(b)]), 2.0, 1e-9);
}

TEST(Mna, EventsMergeAcrossSources) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_isource("I1", kGround, b, Stimulus::step(0.0, 1e-3));
  ckt.add_resistor("R1", a, b, 1.0);
  ckt.add_resistor("R2", b, kGround, 1.0);
  MnaSystem mna(ckt);
  // Both steps land at t=0: exactly one merged event.
  ASSERT_EQ(mna.events().size(), 1u);
  EXPECT_EQ(mna.events()[0].time, 0.0);
}

TEST(Mna, RhsAtTracksPwl) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround,
                  Stimulus::pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}}));
  ckt.add_resistor("R1", a, kGround, 1.0);
  MnaSystem mna(ckt);
  const auto br = *mna.branch_index("V1");
  EXPECT_NEAR(mna.rhs_at(0.5)[br], 1.0, 1e-12);
  EXPECT_NEAR(mna.rhs_at(1.0)[br], 2.0, 1e-12);
  EXPECT_NEAR(mna.rhs_at(5.0)[br], 2.0, 1e-12);
}

TEST(Mna, InitialStateIsEquilibriumPlusOverrides) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto far = ckt.node("far");
  // Source sits at 2 V before stepping to 5 V.
  ckt.add_vsource("V1", in, kGround, Stimulus::step(2.0, 5.0));
  ckt.add_resistor("R1", in, mid, 1e3);
  ckt.add_resistor("R2", mid, far, 1e3);
  ckt.add_capacitor("C1", mid, kGround, 1e-12);
  ckt.add_capacitor("C2", far, kGround, 1e-12, 0.5);  // explicit IC wins
  MnaSystem mna(ckt);
  const auto& x0 = mna.initial_state();
  EXPECT_NEAR(x0[mna.node_index(mid)], 2.0, 1e-12);  // equilibrium at 2 V
  EXPECT_NEAR(x0[mna.node_index(far)], 0.5, 1e-12);  // overridden
}

TEST(Mna, FloatingNodeUsesGmin) {
  // Node reachable only through a capacitor: G singular, gmin retried.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto fl = ckt.node("float");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_capacitor("C1", in, fl, 1e-12);
  ckt.add_capacitor("C2", fl, kGround, 1e-12);
  MnaSystem mna(ckt);
  EXPECT_TRUE(mna.used_gmin());
}

TEST(Mna, FloatingNodeThrowsWhenGminDisabled) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto fl = ckt.node("float");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_capacitor("C1", in, fl, 1e-12);
  ckt.add_capacitor("C2", fl, kGround, 1e-12);
  Options opt;
  opt.gmin = 0.0;
  MnaSystem mna(ckt, opt);
  EXPECT_THROW(mna.solve(la::RealVector(mna.dim(), 0.0)),
               la::SingularMatrixError);
}

TEST(Mna, ApplyCMatchesMatrix) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::dc(1.0));
  ckt.add_capacitor("C1", a, b, 2e-12);  // floating cap stamps 4 entries
  ckt.add_capacitor("C2", b, kGround, 3e-12);
  ckt.add_resistor("R1", a, b, 1.0);
  ckt.add_resistor("R2", b, kGround, 1.0);
  MnaSystem mna(ckt);
  la::RealVector x(mna.dim(), 0.0);
  x[mna.node_index(a)] = 2.0;
  x[mna.node_index(b)] = -1.0;
  const auto y = mna.apply_C(x);
  // Row a: C1*(va - vb) = 2e-12*3 = 6e-12.
  EXPECT_NEAR(y[mna.node_index(a)], 6e-12, 1e-24);
  // Row b: -C1*(va - vb) + C2*vb = -6e-12 - 3e-12.
  EXPECT_NEAR(y[mna.node_index(b)], -9e-12, 1e-24);
}

TEST(Mna, GroundProbeThrows) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1.0);
  MnaSystem mna(ckt);
  EXPECT_THROW(mna.node_index(kGround), std::invalid_argument);
}

TEST(Mna, ValidationRejectsBadCircuits) {
  {
    Circuit ckt;
    ckt.add_resistor("R1", ckt.node("a"), kGround, -5.0);
    EXPECT_THROW(MnaSystem{ckt}, std::invalid_argument);
  }
  {
    Circuit ckt;
    const auto a = ckt.node("a");
    ckt.add_resistor("R1", a, kGround, 1.0);
    ckt.add_resistor("R1", a, kGround, 2.0);  // duplicate name
    EXPECT_THROW(MnaSystem{ckt}, std::invalid_argument);
  }
  {
    Circuit ckt;
    ckt.add_cccs("F1", ckt.node("a"), kGround, "nosuch", 1.0);
    EXPECT_THROW(MnaSystem{ckt}, std::invalid_argument);
  }
}

}  // namespace awesim::mna
