// Integration: AWE approximations against the reference transient
// simulator on the paper's circuits -- the repository-level statement of
// every figure's qualitative claim, enforced as assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "sim/transient.h"
#include "waveform/waveform.h"

namespace awesim {

using core::Engine;
using core::EngineOptions;
using sim::TransientSimulator;

namespace {

// Sampled relative L2 error of the AWE approximation against the adaptive
// reference simulation over [0, t_end].
double awe_vs_sim_error(circuit::Circuit& ckt, const std::string& node,
                        int order, double t_end,
                        bool match_slope = false) {
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = order;
  opt.match_initial_slope = match_slope;
  const auto result = engine.approximate(ckt.find_node(node), opt);
  TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const auto ref = sim.run_adaptive({ckt.find_node(node)}, t_end, aopt);
  const auto awe = result.approximation.sample(0.0, t_end, 2001);
  return awe.relative_error_vs(ref);
}

}  // namespace

TEST(Integration, Fig7FirstOrderStepIsElmoreQuality) {
  // Fig. 7: first-order AWE on the fig4 tree is a coarse but usable
  // single-exponential fit (the paper reports 36% transient error).
  auto ckt = circuits::fig4_rc_tree();
  const double err = awe_vs_sim_error(ckt, "n4", 1, 4e-3);
  EXPECT_LT(err, 0.40);
  EXPECT_GT(err, 0.02);  // visibly imperfect, as in the figure
}

TEST(Integration, Fig15SecondOrderStepIsTight) {
  // Fig. 15: the second-order approximation is plot-indistinguishable
  // (paper error term: 1.6%).
  auto ckt = circuits::fig4_rc_tree();
  const double err = awe_vs_sim_error(ckt, "n4", 2, 4e-3);
  EXPECT_LT(err, 0.03);
}

TEST(Integration, Fig12GroundedResistorFirstOrder) {
  // Fig. 12: grounded resistor scales the steady state; first-order AWE
  // still lands on the right final value and decent shape.
  auto ckt = circuits::fig9_grounded_resistor();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  TransientSimulator sim(ckt);
  const auto ref = sim.run_adaptive({ckt.find_node("n4")}, 3e-3);
  EXPECT_NEAR(result.approximation.final_value(), ref.values().back(),
              0.01);
  const double err = awe_vs_sim_error(ckt, "n4", 1, 3e-3);
  EXPECT_LT(err, 0.4);
}

TEST(Integration, Fig14RampResponseSuperposition) {
  // Fig. 14: 1 ms-rise input on the fig4 tree, first order.  The ramp
  // superposition must track the simulator well despite q=1.
  circuits::Drive drive;
  drive.rise_time = 1e-3;
  auto ckt = circuits::fig4_rc_tree(drive);
  const double err = awe_vs_sim_error(ckt, "n4", 1, 5e-3);
  EXPECT_LT(err, 0.15);  // much better than the step case at q=1
}

TEST(Integration, Fig14SlopeMatchingRemovesInitialGlitch) {
  // Section 4.3: without m_{-2} matching the q=1 ramp response starts
  // with a wrong-signed slope; with it the start is clean.
  circuits::Drive drive;
  drive.rise_time = 1e-3;
  auto ckt = circuits::fig4_rc_tree(drive);

  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  opt.match_initial_slope = true;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  // Initial slope of the true response is zero (equilibrium + ramp from
  // zero); sample shortly after 0.
  const double v_early = result.approximation.value(1e-5);
  EXPECT_NEAR(result.approximation.value(0.0), 0.0, 1e-9);
  EXPECT_GT(v_early, -1e-3);  // no negative-going glitch
}

TEST(Integration, Fig17Fig18MosInterconnectRamp) {
  // Figs. 17/18: stiff tree with 1 ns input slope; first order a few
  // percent off, second order indistinguishable (4.4% -> 0.15%).
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig16_mos_interconnect(drive);
  const double err1 = awe_vs_sim_error(ckt, "n7", 1, 8e-9);
  const double err2 = awe_vs_sim_error(ckt, "n7", 2, 8e-9);
  EXPECT_LT(err2, err1);
  EXPECT_LT(err2, 0.02);
  EXPECT_LT(err1, 0.25);
}

TEST(Integration, Fig20Fig21NonequilibriumNonmonotone) {
  // Figs. 20/21: v_C6(0) = 5 V makes the n7 response nonmonotone (the
  // charge-sharing hump dips before the input catches up); one pole
  // cannot represent that shape (150% error in the paper), two poles can
  // (0.65%).  The drive is the same 1 ns-slope input as Figs. 17/18.
  // The observed node is the pre-charged one (C6): its voltage starts at
  // 5 V, collapses as the stored charge drains into the uncharged tree,
  // then recovers as the input arrives -- strongly nonmonotone.
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig16_mos_interconnect(drive, 5.0);
  TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-6;
  const auto ref = sim.run_adaptive({ckt.find_node("n6")}, 8e-9, aopt);
  // Nonmonotone reference: some earlier sample exceeds a later one by a
  // clear margin (the dip).
  double running_max = -1e300;
  double dip = 0.0;
  const auto coarse = waveform::Waveform::sample(
      [&](double t) { return ref.value_at(t); }, 0.0, 8e-9, 2001);
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    running_max = std::max(running_max, coarse.values()[i]);
    dip = std::max(dip, running_max - coarse.values()[i]);
  }
  EXPECT_GT(dip, 1.0);

  const double err1 = awe_vs_sim_error(ckt, "n6", 1, 8e-9);
  const double err2 = awe_vs_sim_error(ckt, "n6", 2, 8e-9);
  const double err3 = awe_vs_sim_error(ckt, "n6", 3, 8e-9);
  EXPECT_GT(err1, 0.15);  // first order is qualitatively wrong
  EXPECT_LT(err2, 0.05);  // second order captures the dip
  EXPECT_LT(err3, 0.01);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto r2 = engine.approximate(ckt.find_node("n6"), opt);
  EXPECT_TRUE(r2.stable);
}

TEST(Integration, Fig23FloatingCapAggressorDelay) {
  // Fig. 23: coupling through C11 slows the n7 transition; the paper sees
  // the 4.0 V threshold delay grow ~6% (1.6 -> 1.7 ns).
  auto base = circuits::fig16_mos_interconnect();
  auto coupled = circuits::fig22_floating_cap();
  TransientSimulator sim_base(base);
  TransientSimulator sim_coupled(coupled);
  const auto w_base = sim_base.run_adaptive({base.find_node("n7")}, 10e-9);
  const auto w_coupled =
      sim_coupled.run_adaptive({coupled.find_node("n7")}, 10e-9);
  const auto d_base = w_base.first_crossing(4.0);
  const auto d_coupled = w_coupled.first_crossing(4.0);
  ASSERT_TRUE(d_base.has_value());
  ASSERT_TRUE(d_coupled.has_value());
  EXPECT_GT(*d_coupled, *d_base * 1.01);

  // AWE (order 3, as the paper escalates to) reproduces the coupled delay.
  Engine engine(coupled);
  EngineOptions opt;
  opt.order = 3;
  const auto result = engine.approximate(coupled.find_node("n7"), opt);
  const auto awe_delay =
      result.approximation.first_crossing(4.0, 0.0, 10e-9);
  ASSERT_TRUE(awe_delay.has_value());
  EXPECT_NEAR(*awe_delay, *d_coupled, 0.05 * *d_coupled);
}

TEST(Integration, Fig24VictimChargeAreaIsExact) {
  // Fig. 24: "since we match the m0 term ... the charge transferred is
  // always exact."  The victim-node voltage integral of the AWE model
  // must equal the simulator's within numerical tolerance.
  auto ckt = circuits::fig22_floating_cap();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 3;
  const auto result = engine.approximate(ckt.find_node("n12"), opt);
  TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-8;
  const double t_end = 100e-9;  // victim bump fully decayed
  const auto ref = sim.run_adaptive({ckt.find_node("n12")}, t_end, aopt);
  const auto awe = result.approximation.sample(0.0, t_end, 20001);
  const double area_ref = ref.integral();
  const double area_awe = awe.integral();
  ASSERT_GT(std::abs(area_ref), 0.0);
  EXPECT_NEAR(area_awe, area_ref, 0.02 * std::abs(area_ref));
}

TEST(Integration, Fig26RlcStepNeedsFourthOrder) {
  // Fig. 26: the ringing RLC step response: q=1 useless, q=2 catches the
  // overshoot, q=4 coincides with the simulation (74% / 22% / <1%).
  auto ckt = circuits::fig25_rlc_ladder();
  const double err1 = awe_vs_sim_error(ckt, "n3", 1, 8e-9);
  const double err2 = awe_vs_sim_error(ckt, "n3", 2, 8e-9);
  const double err4 = awe_vs_sim_error(ckt, "n3", 4, 8e-9);
  EXPECT_GT(err1, 0.3);
  EXPECT_LT(err2, err1);
  EXPECT_LT(err4, 0.05);
}

TEST(Integration, Fig27RlcRampIsEasierThanStep) {
  // Fig. 27: with a 1 ns rise the residues shift toward one pole pair and
  // the second-order model already fits well.
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig25_rlc_ladder(drive);
  const double err2_ramp = awe_vs_sim_error(ckt, "n3", 2, 9e-9);

  auto step_ckt = circuits::fig25_rlc_ladder();
  const double err2_step = awe_vs_sim_error(step_ckt, "n3", 2, 8e-9);
  EXPECT_LT(err2_ramp, err2_step);
  EXPECT_LT(err2_ramp, 0.15);
}

TEST(Integration, ErrorEstimateTracksTrueError) {
  // Section 3.4: the q-vs-(q+1) estimate must stay within an order of
  // magnitude of the true (vs simulator) error.
  auto ckt = circuits::fig16_mos_interconnect();
  Engine engine(ckt);
  for (int q : {1, 2, 3}) {
    EngineOptions opt;
    opt.order = q;
    const auto result = engine.approximate(ckt.find_node("n7"), opt);
    auto ckt2 = circuits::fig16_mos_interconnect();
    const double truth = awe_vs_sim_error(ckt2, "n7", q, 8e-9);
    if (truth > 1e-4) {
      EXPECT_LT(result.error_estimate, truth * 10.0) << "q=" << q;
      EXPECT_GT(result.error_estimate, truth / 10.0) << "q=" << q;
    }
  }
}

}  // namespace awesim
