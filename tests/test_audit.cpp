// The design-scope static audit (src/audit): the seeded-defect corpus
// under netlists/bad/audit/ must each trip exactly its rule at the
// exact file:line:column; every shipping netlist must audit with zero
// Errors (the false-positive sweep); the conditioning oracle must flag
// the paper's Fig. 20/21 raw-instability setup (nonequilibrium ICs on
// the stiff fig16 tree) and recommend the order window the paper
// found; the graph tier, repetition tier, eligibility precheck, engine
// pre-flight, and the awesim_audit CLI all round-trip.  Registered
// under the ctest label "audit".
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/design_netlist.h"
#include "audit/report_json.h"
#include "check/oracle.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "netlist/parser.h"
#include "obs/json.h"
#include "reduce/hier.h"
#include "reduce/reduce.h"
#include "timing/analyzer.h"
#include "timing/design_graph.h"
#include "util/random_circuits.h"

namespace awesim::audit {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(AWESIM_NETLIST_DIR) + "/bad/audit/" + name;
}

std::string netlist_dir() { return std::string(AWESIM_NETLIST_DIR); }

const core::Diagnostic* find_code(const AuditReport& report,
                                  core::DiagCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

/// Parse a corpus design netlist and audit it; the parse must succeed
/// (corpus files are well-formed, only semantically defective).
AuditReport audit_corpus(const std::string& name,
                         const AuditOptions& options = {}) {
  const DesignParse parse = parse_design_file(corpus_path(name));
  EXPECT_TRUE(parse.design.has_value())
      << name << ": " << core::to_string(parse.diagnostics);
  if (!parse.design) return {};
  return audit_design(*parse.design, options, &parse.sources);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A minimal connectivity-only net: R from the driver hookup to node
/// `pin`, C to ground, every listed sink attached at `pin`.
timing::Net tiny_net(std::string name, const std::vector<std::string>& sinks,
                     const std::string& pin = "a") {
  timing::Net net;
  net.name = std::move(name);
  net.parasitics.push_back(
      {timing::NetElement::Kind::Resistor, "DRV", pin, 100.0});
  net.parasitics.push_back(
      {timing::NetElement::Kind::Capacitor, pin, "0", 10e-15});
  for (const auto& sink : sinks) net.sink_node[sink] = pin;
  return net;
}

// ---------------------------------------------------------------------
// Corpus: each file trips exactly its seeded defect, at the exact card.

TEST(AuditCorpus, CombinationalCycleIsErrorWithFullLoopPath) {
  const AuditReport report = audit_corpus("comb_cycle.sp");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.errors, 1u);
  const auto* d = find_code(report, core::DiagCode::CombinationalCycle);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Error);
  EXPECT_NE(d->message.find("g1 -> g2 -> g3 -> g1"), std::string::npos)
      << d->message;
  EXPECT_EQ(d->element, "g1");
  EXPECT_EQ(d->file, corpus_path("comb_cycle.sp"));
  EXPECT_EQ(d->line, 3u);  // the .gate g1 card
  EXPECT_EQ(d->column, 7u);
  ASSERT_EQ(report.graph.cycles.size(), 1u);
  EXPECT_EQ(report.graph.cycles[0].gates,
            (std::vector<std::string>{"g1", "g2", "g3"}));
}

TEST(AuditCorpus, UndrivenEndpointWarnsAtTheGateCard) {
  const AuditReport report = audit_corpus("undriven_endpoint.sp");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings, 1u);
  const auto* d = find_code(report, core::DiagCode::UndrivenEndpoint);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_EQ(d->element, "u1");
  EXPECT_EQ(d->line, 3u);  // the .gate u1 card
  EXPECT_EQ(d->column, 7u);
}

TEST(AuditCorpus, FanoutBombWarnsAtTheNetCard) {
  const AuditReport report = audit_corpus("fanout_bomb.sp");
  EXPECT_TRUE(report.ok());
  const auto* d = find_code(report, core::DiagCode::FanoutExplosion);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_EQ(d->element, "n_bomb");
  EXPECT_EQ(d->line, 4u);  // the .net card
  EXPECT_EQ(d->column, 10u);
  ASSERT_EQ(report.graph.fanout_explosions.size(), 1u);
  EXPECT_EQ(report.graph.fanout_explosions[0].fanout, 40u);
  // A higher threshold silences the rule.
  AuditOptions relaxed;
  relaxed.graph.fanout_threshold = 64;
  const AuditReport quiet = audit_corpus("fanout_bomb.sp", relaxed);
  EXPECT_EQ(find_code(quiet, core::DiagCode::FanoutExplosion), nullptr);
}

TEST(AuditCorpus, IllConditionedLadderTripsTheOracle) {
  const AuditReport report = audit_corpus("ill_conditioned_ladder.sp");
  EXPECT_TRUE(report.ok());
  const auto* d = find_code(report, core::DiagCode::ConditioningHazard);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_EQ(d->element, "n_stiff");
  EXPECT_EQ(d->line, 5u);  // the .net card
  EXPECT_EQ(d->column, 10u);
  EXPECT_GT(d->condition_estimate, 1e30);
  const NetAssessment* stiff = nullptr;
  for (const auto& net : report.nets) {
    if (net.net == "n_stiff") stiff = &net;
  }
  ASSERT_NE(stiff, nullptr);
  EXPECT_TRUE(stiff->estimate.rc_tree);
  EXPECT_GT(stiff->estimate.spread, 1e7);  // ~8 decades of tau spread
  EXPECT_TRUE(stiff->estimate.hazard);
  EXPECT_EQ(stiff->estimate.min_safe_order, 1);
  EXPECT_EQ(stiff->estimate.max_safe_order, 1);
}

TEST(AuditCorpus, IsomorphicPairCollapsesToOneRepetitionGroup) {
  const AuditReport report = audit_corpus("iso_pair.sp");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings, 0u);
  const auto* d = find_code(report, core::DiagCode::RepeatedStructure);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Info);
  EXPECT_EQ(d->element, "n_a");
  EXPECT_EQ(d->line, 9u);  // the representative's .net card
  EXPECT_EQ(d->column, 9u);
  ASSERT_EQ(report.repeated.size(), 1u);
  EXPECT_EQ(report.repeated[0].representative, "n_a");
  EXPECT_EQ(report.repeated[0].members,
            (std::vector<std::string>{"n_a", "n_b"}));
  EXPECT_TRUE(report.near_misses.empty());
}

TEST(AuditCorpus, NearMissPairPointsAtTheDifferingCard) {
  const AuditReport report = audit_corpus("near_miss_pair.sp");
  EXPECT_TRUE(report.ok());
  const auto* d = find_code(report, core::DiagCode::NearDuplicate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_EQ(d->element, "n_d");
  EXPECT_EQ(d->line, 20u);  // n_d's C2 card -- the one value that differs
  EXPECT_EQ(d->column, 1u);
  ASSERT_EQ(report.near_misses.size(), 1u);
  const NearMiss& miss = report.near_misses[0];
  EXPECT_EQ(miss.net_a, "n_c");
  EXPECT_EQ(miss.net_b, "n_d");
  EXPECT_EQ(miss.element_index, 3u);
  EXPECT_DOUBLE_EQ(miss.value_a, 1.2e-14);
  EXPECT_DOUBLE_EQ(miss.value_b, 1.3e-14);
  EXPECT_TRUE(report.repeated.empty());  // not an exact group
}

// ---------------------------------------------------------------------
// False-positive sweep: every shipping netlist audits with zero Errors.

TEST(AuditSweep, ShippingNetlistsAuditWithZeroErrors) {
  std::size_t swept = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(netlist_dir())) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".sp") continue;
    const std::string path = entry.path().string();
    const std::string text = read_file(path);
    AuditReport report;
    if (looks_like_design(text)) {
      const DesignParse parse = parse_design(text, path);
      ASSERT_TRUE(parse.design.has_value()) << path;
      report = audit_design(*parse.design, {}, &parse.sources);
    } else {
      const netlist::ParseResult parse = netlist::parse_collect(text, path);
      ASSERT_TRUE(parse.ok()) << path;
      report = audit_circuit(*parse.circuit, {}, path);
    }
    EXPECT_EQ(report.errors, 0u)
        << path << ":\n" << core::to_string(report.diagnostics);
    ++swept;
  }
  EXPECT_GE(swept, 3u);  // fig4, fig25, coupled_bus at minimum
}

TEST(AuditSweep, PaperCircuitsAuditWithZeroErrors) {
  const circuit::Circuit circuits[] = {
      circuits::fig4_rc_tree(), circuits::fig9_grounded_resistor(),
      circuits::fig16_mos_interconnect(), circuits::fig25_rlc_ladder()};
  for (const auto& c : circuits) {
    const AuditReport report = audit_circuit(c);
    EXPECT_EQ(report.errors, 0u) << core::to_string(report.diagnostics);
  }
}

// ---------------------------------------------------------------------
// The conditioning oracle vs the paper: Figs. 20/21 drive fig16's stiff
// tree from a 5 V nonequilibrium initial condition on C6; the q=1
// (Elmore) answer is ~150% off while q=2 lands at 0.65%.  The oracle
// must demand order >= 2 exactly when the ICs are nonequilibrium.

TEST(Oracle, Fig20NonequilibriumIcDemandsSecondOrder) {
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  const circuit::Circuit hot = circuits::fig16_mos_interconnect(drive, 5.0);
  check::OracleOptions order1;
  order1.target_order = 1;
  const check::ConditioningEstimate est = check::assess_circuit(hot, order1);
  EXPECT_TRUE(est.nonequilibrium_ic);
  EXPECT_GE(est.min_safe_order, 2);
  EXPECT_TRUE(est.hazard);  // q=1 sits below the safe window
  // The same tree at equilibrium is happy with first order.
  const circuit::Circuit cold = circuits::fig16_mos_interconnect(drive, 0.0);
  const check::ConditioningEstimate calm =
      check::assess_circuit(cold, order1);
  EXPECT_FALSE(calm.nonequilibrium_ic);
  EXPECT_EQ(calm.min_safe_order, 1);
}

TEST(Oracle, SinglePoleCircuitIsPerfectlyConditioned) {
  const char* kRc = "V1 in 0 5\nR1 in out 1k\nC1 out 0 1p\n";
  const netlist::ParseResult parse = netlist::parse_collect(kRc);
  ASSERT_TRUE(parse.ok());
  const check::ConditioningEstimate est =
      check::assess_circuit(*parse.circuit);
  EXPECT_TRUE(est.rc_tree);
  EXPECT_EQ(est.tau_count, 1u);
  EXPECT_DOUBLE_EQ(est.spread, 1.0);
  EXPECT_NEAR(est.elmore_delay, 1e-9, 1e-12);
  EXPECT_NEAR(est.moment_ratio, 1.0, 1e-9);
  EXPECT_FALSE(est.hazard);
}

TEST(Oracle, HankelConditionGrowsAsSpreadToTheTwoQMinusTwo) {
  EXPECT_DOUBLE_EQ(check::hankel_condition(1.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(check::hankel_condition(10.0, 2), 100.0);
  EXPECT_DOUBLE_EQ(check::hankel_condition(10.0, 3), 1e4);
  EXPECT_GT(check::hankel_condition(1e8, 3), 1e30);
  // Clamped, never infinite.
  EXPECT_LT(check::hankel_condition(1e200, 6), 1e301);
}

// ---------------------------------------------------------------------
// Graph tier on hand-built designs.

TEST(DesignGraph, IsolatedCycleIsBothCycleAndDeadLogic) {
  timing::Design d;
  d.add_gate({"in"});
  d.add_gate({"g1"});
  d.add_gate({"g2"});
  d.set_primary_input("in");
  d.add_net("in", tiny_net("n_in", {"out"}));
  d.add_net("g1", tiny_net("n1", {"g2"}));
  d.add_net("g2", tiny_net("n2", {"g1"}));
  const timing::GraphFindings f = timing::audit_graph(d);
  ASSERT_EQ(f.cycles.size(), 1u);
  EXPECT_EQ(f.cycles[0].gates, (std::vector<std::string>{"g1", "g2"}));
  // Neither cycle member has zero fan-in, so neither is "undriven" --
  // they are unreachable from every source instead.
  EXPECT_TRUE(f.undriven.empty());
  EXPECT_EQ(f.unreachable, (std::vector<std::string>{"g1", "g2"}));
}

TEST(DesignGraph, SinklessNetIsDroppedWork) {
  timing::Design d;
  d.add_gate({"in"});
  d.set_primary_input("in");
  d.add_net("in", tiny_net("n_dangling", {}));
  const timing::GraphFindings f = timing::audit_graph(d);
  EXPECT_EQ(f.sinkless_nets, (std::vector<std::string>{"n_dangling"}));
}

TEST(DesignGraph, ReconvergentDiamondCountsPaths) {
  // in -> {b, c} -> d: two source-to-pin paths into d.
  timing::Design d;
  d.add_gate({"in"});
  d.add_gate({"b"});
  d.add_gate({"c"});
  d.add_gate({"d"});
  d.set_primary_input("in");
  d.add_net("in", tiny_net("n0", {"b", "c"}));
  d.add_net("b", tiny_net("n1", {"d"}));
  d.add_net("c", tiny_net("n2", {"d"}));
  d.add_net("d", tiny_net("n3", {"out"}));
  timing::DesignGraphOptions options;
  options.reconvergence_paths = 2;
  const timing::GraphFindings f = timing::audit_graph(d, options);
  ASSERT_EQ(f.reconvergences.size(), 1u);
  EXPECT_EQ(f.reconvergences[0].gate, "d");
  EXPECT_EQ(f.reconvergences[0].paths, 2u);
  EXPECT_EQ(f.reconvergences[0].depth, 2u);
  // Default threshold (1024) stays quiet on a diamond.
  EXPECT_TRUE(timing::audit_graph(d).reconvergences.empty());
}

// ---------------------------------------------------------------------
// The analyzer pre-flight: a cyclic design now throws the typed record
// with the loop path; the escape hatch restores the legacy behavior.

TEST(Preflight, CyclicDesignThrowsTypedDiagnosticWithLoopPath) {
  timing::Design d;
  d.add_gate({"a"});
  d.add_gate({"b"});
  d.add_net("a", tiny_net("nab", {"b"}));
  d.add_net("b", tiny_net("nba", {"a"}));
  try {
    d.analyze({});
    FAIL() << "expected DiagnosticError";
  } catch (const core::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().code, core::DiagCode::CombinationalCycle);
    EXPECT_NE(e.diagnostic().message.find("a -> b -> a"),
              std::string::npos)
        << e.diagnostic().message;
  }
  timing::AnalysisOptions legacy;
  legacy.preflight_audit = false;
  EXPECT_THROW(d.analyze(legacy), std::invalid_argument);
}

// ---------------------------------------------------------------------
// The engine pre-flight oracle (EngineOptions::preflight_audit):
// advisory, memoized, off by default.

constexpr const char* kStiffLadder =
    "V1 in 0 5\n"
    "R1 in a 1\n"
    "C1 a 0 1p\n"
    "R2 a b 100k\n"
    "C2 b 0 10n\n";

const core::Diagnostic* find_hazard(const core::Diagnostics& diags) {
  for (const auto& d : diags) {
    if (d.code == core::DiagCode::ConditioningHazard) return &d;
  }
  return nullptr;
}

TEST(EnginePreflight, AuditAnnotatesResultsWithoutChangingThem) {
  const netlist::ParseResult parse = netlist::parse_collect(kStiffLadder);
  ASSERT_TRUE(parse.ok());
  const circuit::NodeId out = parse.circuit->find_node("b");

  core::Engine plain(*parse.circuit);
  core::EngineOptions defaults;
  const core::Result base = plain.approximate(out, defaults);
  EXPECT_EQ(find_hazard(base.diagnostics), nullptr);  // off by default
  EXPECT_EQ(plain.stats().conditioning_hazards, 0u);

  core::Engine audited(*parse.circuit);
  core::EngineOptions with_audit;
  with_audit.preflight_audit = true;
  const core::Result r = audited.approximate(out, with_audit);
  const auto* hazard = find_hazard(r.diagnostics);
  ASSERT_NE(hazard, nullptr);
  EXPECT_EQ(hazard->severity, core::Severity::Warning);
  EXPECT_GT(hazard->condition_estimate, 1e14);
  EXPECT_EQ(audited.stats().conditioning_hazards, 1u);
  // Advisory only: the numbers are identical with and without.
  EXPECT_EQ(r.order_used, base.order_used);
  EXPECT_DOUBLE_EQ(r.approximation.value(1e-3),
                   base.approximation.value(1e-3));
  // Memoized: a second approximation re-annotates but re-counts nothing.
  const core::Result again = audited.approximate(out, with_audit);
  EXPECT_NE(find_hazard(again.diagnostics), nullptr);
  EXPECT_EQ(audited.stats().conditioning_hazards, 1u);
}

// ---------------------------------------------------------------------
// Eligibility precheck (tier-2 input, and the HierSession fast path).

TEST(Eligibility, ClassifiesTheRefusalLadder) {
  using reduce::Eligibility;
  const auto stage = timing::testutil::rc_line_design(11, 240);
  const timing::Net& big = stage.design.net_at(0);
  EXPECT_EQ(reduce::net_eligibility(big), Eligibility::Eligible);

  const auto small = timing::testutil::rc_line_design(7, 4);
  EXPECT_EQ(reduce::net_eligibility(small.design.net_at(0)),
            Eligibility::InteriorTooSmall);

  timing::Net rlc = big;
  rlc.parasitics.push_back(
      {timing::NetElement::Kind::Inductor, "DRV", "0", 1e-9});
  EXPECT_EQ(reduce::net_eligibility(rlc), Eligibility::NonRc);

  EXPECT_STREQ(reduce::to_string(Eligibility::Eligible), "eligible");
  EXPECT_STREQ(reduce::to_string(Eligibility::InteriorTooSmall),
               "interior-too-small");
  EXPECT_STREQ(reduce::to_string(Eligibility::NonRc), "non-rc");
}

TEST(Eligibility, HierSessionSkipsIneligibleNetsWithoutStoreTraffic) {
  const auto stage = timing::testutil::rc_line_design(7, 4);
  reduce::HierSession hier(stage.design);
  hier.analyze();
  const reduce::HierSession::Stats stats = hier.stats();
  EXPECT_EQ(stats.eligibility_skips, 1u);
  EXPECT_EQ(stats.reductions_performed, 0u);
  EXPECT_EQ(stats.nets_reduced, 0u);
}

// ---------------------------------------------------------------------
// The design-netlist parser: all-errors discipline with locations.

TEST(DesignNetlist, ParseErrorsCarryExactLocations) {
  const char* kBroken =
      ".gate g1 rdrive=1k cin=5f\n"
      ".input g1\n"
      ".net g1\n"           // missing net name
      "R1 DRV a nonsense\n"  // bad value
      ".endnet\n";
  const DesignParse parse = parse_design(kBroken, "broken.sp");
  EXPECT_FALSE(parse.design.has_value());
  ASSERT_GE(parse.diagnostics.size(), 2u);
  for (const auto& d : parse.diagnostics) {
    EXPECT_EQ(d.code, core::DiagCode::ParseError);
    EXPECT_EQ(d.file, "broken.sp");
    EXPECT_GT(d.line, 0u);
    EXPECT_GT(d.column, 0u);
  }
  EXPECT_EQ(parse.diagnostics[0].line, 3u);
  EXPECT_EQ(parse.diagnostics[1].line, 4u);
}

TEST(DesignNetlist, FlatSpiceIsNotADesign) {
  EXPECT_FALSE(looks_like_design("V1 in 0 5\nR1 in out 1k\n"));
  EXPECT_TRUE(looks_like_design("* header\n.GATE g1 rdrive=1k\n"));
}

// ---------------------------------------------------------------------
// The standalone CLI: exit codes and --json round-trip.

TEST(AuditCli, ExitCodesFollowTheSeverityContract) {
  const struct {
    const char* file;
    int exit_code;
  } cases[] = {
      {"comb_cycle.sp", 2},        // errors
      {"undriven_endpoint.sp", 1}, // warnings only
      {"iso_pair.sp", 0},          // infos only
  };
  for (const auto& c : cases) {
    const std::string cmd = std::string(AWESIM_AUDIT_BIN) + " " +
                            corpus_path(c.file) + " > /dev/null";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(WEXITSTATUS(rc), c.exit_code) << c.file;
  }
}

TEST(AuditCli, JsonOutputRoundTripsThroughObsParser) {
  const std::string out_path =
      testing::TempDir() + "awesim_audit_roundtrip.json";
  const std::string cmd = std::string(AWESIM_AUDIT_BIN) + " --json=" +
                          out_path + " " + corpus_path("near_miss_pair.sp");
  const int rc = std::system(cmd.c_str());
  ASSERT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 1);

  const obs::json::Value doc = obs::json::parse(read_file(out_path));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema_version")->as_number(),
            double(kAuditSchemaVersion));
  EXPECT_EQ(doc.find("tool")->as_string(), "awesim_audit");
  const obs::json::Value* files = doc.find("files");
  ASSERT_NE(files, nullptr);
  ASSERT_EQ(files->size(), 1u);
  const obs::json::Value& file = files->at(0);
  EXPECT_TRUE(file.find("ok")->as_bool());
  EXPECT_EQ(file.find("errors")->as_number(), 0.0);
  EXPECT_EQ(file.find("warnings")->as_number(), 1.0);
  const obs::json::Value* misses = file.find("near_misses");
  ASSERT_NE(misses, nullptr);
  ASSERT_EQ(misses->size(), 1u);
  const obs::json::Value& miss = misses->at(0);
  EXPECT_EQ(miss.find("net_a")->as_string(), "n_c");
  EXPECT_EQ(miss.find("net_b")->as_string(), "n_d");
  EXPECT_EQ(miss.find("element_index")->as_number(), 3.0);
  bool found = false;
  const obs::json::Value* diags = file.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  for (std::size_t i = 0; i < diags->size(); ++i) {
    const obs::json::Value& d = diags->at(i);
    if (d.find("code")->as_string() != "near-duplicate") continue;
    found = true;
    EXPECT_EQ(d.find("severity")->as_string(), "warning");
    EXPECT_EQ(d.find("line")->as_number(), 20.0);
    EXPECT_EQ(d.find("column")->as_number(), 1.0);
  }
  EXPECT_TRUE(found);
  std::remove(out_path.c_str());
}

TEST(AuditCli, CleanFlatNetlistExitsZero) {
  const std::string cmd = std::string(AWESIM_AUDIT_BIN) + " " +
                          netlist_dir() + "/fig4_rc_tree.sp > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 0);
}

}  // namespace
}  // namespace awesim::audit
