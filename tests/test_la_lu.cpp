// LU factorization: solves, determinants, transposed solves, singular
// detection, conditioning diagnostics -- for both real and complex scalars.
#include <gtest/gtest.h>

#include <random>

#include "la/lu.h"
#include "la/matrix.h"

namespace la = awesim::la;

namespace {

la::RealMatrix random_matrix(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  la::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = dist(rng);
    m(i, i) += 2.0;  // keep comfortably nonsingular
  }
  return m;
}

}  // namespace

TEST(Lu, SolvesIdentity) {
  const auto eye = la::RealMatrix::identity(4);
  la::RealVector b{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(la::solve(eye, b), b);
}

TEST(Lu, SolvesKnownSystem) {
  la::RealMatrix a{{2.0, 1.0}, {1.0, 3.0}};
  // x = (1, 2): b = (4, 7).
  const auto x = la::solve(a, {4.0, 7.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, PivotsOnZeroDiagonal) {
  la::RealMatrix a{{0.0, 1.0}, {1.0, 0.0}};  // needs a row swap
  const auto x = la::solve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, ResidualSmallOnRandomSystems) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const std::size_t n = 3 + seed * 7;
    const auto a = random_matrix(n, seed);
    la::RealVector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 1.5;
    const auto x = la::Lu<double>(a).solve(b);
    const auto ax = a * x;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ax[i], b[i], 1e-9) << "seed " << seed << " row " << i;
    }
  }
}

TEST(Lu, SolveTransposedMatchesExplicitTranspose) {
  const auto a = random_matrix(9, 42);
  la::RealVector b(9);
  for (std::size_t i = 0; i < 9; ++i) b[i] = std::sin(static_cast<double>(i));
  const auto xt = la::Lu<double>(a).solve_transposed(b);
  const auto x2 = la::solve(a.transpose(), b);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(xt[i], x2[i], 1e-9);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  la::RealMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(la::Lu<double>(a).determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantTracksPermutationSign) {
  la::RealMatrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(la::Lu<double>(a).determinant(), -1.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  la::RealMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(la::Lu<double>{a}, la::SingularMatrixError);
}

TEST(Lu, SingularErrorReportsPivotIndex) {
  la::RealMatrix a{{1.0, 0.0}, {0.0, 0.0}};
  try {
    la::Lu<double> lu(a);
    FAIL() << "expected SingularMatrixError";
  } catch (const la::SingularMatrixError& e) {
    EXPECT_EQ(e.pivot_index(), 1u);
  }
}

TEST(Lu, ThrowsOnNonSquare) {
  la::RealMatrix a(2, 3);
  EXPECT_THROW(la::Lu<double>{a}, std::invalid_argument);
}

TEST(Lu, ThrowsOnRhsSizeMismatch) {
  la::RealMatrix a{{1.0, 0.0}, {0.0, 1.0}};
  la::Lu<double> lu(a);
  EXPECT_THROW(lu.solve({1.0}), std::invalid_argument);
}

TEST(Lu, ComplexSolve) {
  using la::Complex;
  la::ComplexMatrix a{{Complex{1.0, 1.0}, Complex{0.0, 0.0}},
                      {Complex{0.0, 0.0}, Complex{0.0, 2.0}}};
  const auto x = la::solve(a, {Complex{2.0, 0.0}, Complex{4.0, 0.0}});
  // (1+i) x0 = 2 -> x0 = 1 - i;  2i x1 = 4 -> x1 = -2i.
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 0.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), -2.0, 1e-12);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  const auto a = random_matrix(6, 7);
  const auto inv = la::inverse(a);
  const auto prod = a * inv;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Lu, ConditionEstimateOrdersWellAndIllConditioned) {
  const auto good = la::RealMatrix::identity(5);
  la::RealMatrix bad = la::RealMatrix::identity(5);
  bad(4, 4) = 1e-10;
  const double cond_good =
      la::Lu<double>(good).condition_estimate(good.norm_inf());
  const double cond_bad =
      la::Lu<double>(bad).condition_estimate(bad.norm_inf());
  EXPECT_LT(cond_good, 10.0);
  EXPECT_GT(cond_bad, 1e8);
}

TEST(Lu, PivotGrowthDetectsScaleSpread) {
  la::RealMatrix m = la::RealMatrix::identity(3);
  m(2, 2) = 1e-12;
  EXPECT_GT(la::Lu<double>(m).pivot_growth(), 1e11);
}
