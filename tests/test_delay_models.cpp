// DelayModel conformance: the four stage kernels (AWE, Elmore bound,
// two-pole, table lookup) behind one interface.
//
// Every model must produce a structurally identical report (same stages,
// same sinks, same gate/arc sets -- only the numbers differ), stay
// bit-identical across thread counts and warm/cold Session runs, and
// coexist in one Session without cache cross-talk (the model kind is
// part of the stage-result key).  Model-specific physics contracts ride
// along: the Elmore bound upper-bounds AWE on distributed RC trees, the
// Elmore *model* computes exactly the arithmetic of the failure
// fallback, and the table model tracks the single-pole closed form to
// interpolation accuracy.  Golden slack values for the paper's
// interconnect tree (the Fig. 16 MOS net, the circuit behind the
// Fig. 19 timing-analysis argument) are locked down under tests/golden/.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault.h"
#include "obs/json.h"
#include "timing/delay_model.h"
#include "timing/session.h"

#ifndef AWESIM_GOLDEN_DIR
#define AWESIM_GOLDEN_DIR "."
#endif

namespace awesim::timing {

namespace {

NetElement r(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Resistor, a, b, v};
}
NetElement c(const std::string& a, double v) {
  return {NetElement::Kind::Capacitor, a, "0", v};
}

// The paper's Fig. 16 MOS interconnect tree as a timing stage: the
// driver's R1 = 150 ohm becomes the gate drive resistance, the trunk
// n1..n7 plus the n8/n9 and n10 branches become the net, and loads hang
// off n7/n9/n10.  A second wave of small nets gives the design ports.
Design paper_tree_design() {
  Design d;
  d.add_gate({"drv", 150.0, 4e-15, 10e-12});
  d.set_primary_input("drv");
  d.add_gate({"load7", 1e3, 8e-15, 5e-12});
  d.add_gate({"load9", 1.2e3, 6e-15, 5e-12});
  d.add_gate({"load10", 900.0, 7e-15, 5e-12});
  Net tree;
  tree.name = "fig16";
  tree.parasitics = {
      c("DRV", 60e-15),        r("DRV", "n2", 300.0), c("n2", 120e-15),
      r("n2", "n3", 200.0),    c("n3", 30e-15),       r("n3", "n4", 400.0),
      c("n4", 250e-15),        r("n4", "n5", 150.0),  c("n5", 50e-15),
      r("n5", "n6", 500.0),    c("n6", 180e-15),      r("n6", "n7", 300.0),
      c("n7", 120e-15),        r("n3", "n8", 50.0),   c("n8", 5e-15),
      r("n8", "n9", 1.5e3),    c("n9", 25e-15),       r("n5", "n10", 2.5e3),
      c("n10", 90e-15)};
  tree.sink_node["load7"] = "n7";
  tree.sink_node["load9"] = "n9";
  tree.sink_node["load10"] = "n10";
  d.add_net("drv", tree);
  for (const char* load : {"load7", "load9", "load10"}) {
    Net out;
    out.name = std::string(load) + "_out";
    out.parasitics = {r("DRV", "w", 250.0), c("w", 40e-15)};
    out.sink_node[std::string("PO_") + load] = "w";
    d.add_net(load, out);
  }
  return d;
}

// One multi-section fork net: distributed RC, two sinks.
Design fork_design() {
  Design d;
  d.add_gate({"g1", 1e3, 4e-15, 0.0});
  d.add_gate({"near", 1e3, 5e-15, 0.0});
  d.add_gate({"far", 1e3, 5e-15, 0.0});
  Net net;
  net.name = "fork";
  net.parasitics = {r("DRV", "a", 200.0), c("a", 20e-15),
                    r("a", "b", 1e3),     c("b", 60e-15)};
  net.sink_node["near"] = "a";
  net.sink_node["far"] = "b";
  d.add_net("g1", net);
  d.set_primary_input("g1");
  return d;
}

void expect_same_payload(const TimingReport& a, const TimingReport& b) {
  EXPECT_EQ(a.gate_arrival, b.gate_arrival);
  EXPECT_EQ(a.gate_slack, b.gate_slack);
  EXPECT_EQ(a.critical_delay, b.critical_delay);
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.worst_slack, b.worst_slack);
  EXPECT_EQ(a.worst_slack_endpoint, b.worst_slack_endpoint);
  EXPECT_EQ(a.source_gates, b.source_gates);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].driver_gate, b.stages[s].driver_gate);
    EXPECT_EQ(a.stages[s].net, b.stages[s].net);
    EXPECT_EQ(a.stages[s].degraded, b.stages[s].degraded);
    EXPECT_EQ(a.stages[s].failed, b.stages[s].failed);
    ASSERT_EQ(a.stages[s].sinks.size(), b.stages[s].sinks.size());
    for (std::size_t k = 0; k < a.stages[s].sinks.size(); ++k) {
      EXPECT_EQ(a.stages[s].sinks[k].gate, b.stages[s].sinks[k].gate);
      EXPECT_EQ(a.stages[s].sinks[k].stage_delay,
                b.stages[s].sinks[k].stage_delay);
      EXPECT_EQ(a.stages[s].sinks[k].slew, b.stages[s].sinks[k].slew);
      EXPECT_EQ(a.stages[s].sinks[k].arrival,
                b.stages[s].sinks[k].arrival);
    }
  }
}

}  // namespace

class DelayModelConformance
    : public ::testing::TestWithParam<DelayModelKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllModels, DelayModelConformance,
    ::testing::Values(DelayModelKind::Awe, DelayModelKind::ElmoreBound,
                      DelayModelKind::TwoPole,
                      DelayModelKind::TableLookup),
    [](const ::testing::TestParamInfo<DelayModelKind>& info) {
      switch (info.param) {
        case DelayModelKind::Awe: return "Awe";
        case DelayModelKind::ElmoreBound: return "Elmore";
        case DelayModelKind::TwoPole: return "TwoPole";
        case DelayModelKind::TableLookup: return "Table";
      }
      return "Unknown";
    });

TEST_P(DelayModelConformance, ReportStructureIsModelInvariant) {
  const Design d = paper_tree_design();
  AnalysisOptions awe_opt;
  const TimingReport ref = d.analyze(awe_opt);
  AnalysisOptions opt;
  opt.delay_model = GetParam();
  const TimingReport report = d.analyze(opt);

  EXPECT_EQ(report.levels, ref.levels);
  EXPECT_EQ(report.source_gates, ref.source_gates);
  EXPECT_EQ(report.failed_stages, 0u);
  ASSERT_EQ(report.stages.size(), ref.stages.size());
  for (std::size_t s = 0; s < ref.stages.size(); ++s) {
    EXPECT_EQ(report.stages[s].driver_gate, ref.stages[s].driver_gate);
    EXPECT_EQ(report.stages[s].net, ref.stages[s].net);
    ASSERT_EQ(report.stages[s].sinks.size(), ref.stages[s].sinks.size());
    for (std::size_t k = 0; k < ref.stages[s].sinks.size(); ++k) {
      EXPECT_EQ(report.stages[s].sinks[k].gate,
                ref.stages[s].sinks[k].gate);
      EXPECT_GT(report.stages[s].sinks[k].stage_delay, 0.0);
      EXPECT_TRUE(std::isfinite(report.stages[s].sinks[k].stage_delay));
      EXPECT_TRUE(std::isfinite(report.stages[s].sinks[k].slew));
    }
  }
  // Same key sets in the maps; same slack bookkeeping shape.
  ASSERT_EQ(report.gate_arrival.size(), ref.gate_arrival.size());
  for (const auto& [gate, t] : ref.gate_arrival) {
    EXPECT_EQ(report.gate_arrival.count(gate), 1u) << gate;
    EXPECT_EQ(report.gate_slack.count(gate), 1u) << gate;
  }
  EXPECT_FALSE(report.worst_slack_endpoint.empty());
}

TEST_P(DelayModelConformance, BitIdenticalAcrossThreadCounts) {
  const Design d = paper_tree_design();
  AnalysisOptions opt1;
  opt1.delay_model = GetParam();
  opt1.threads = 1;
  AnalysisOptions opt8 = opt1;
  opt8.threads = 8;
  expect_same_payload(d.analyze(opt1), d.analyze(opt8));
}

TEST_P(DelayModelConformance, WarmSessionIsBitIdenticalToCold) {
  AnalysisOptions opt;
  opt.delay_model = GetParam();
  opt.required_time = 2.5e-9;
  Session session(paper_tree_design(), opt);
  const TimingReport cold = session.analyze();
  const TimingReport warm = session.analyze();
  expect_same_payload(cold, warm);
  EXPECT_EQ(warm.awe_stats.stages_reused, warm.stages.size());
  EXPECT_EQ(warm.awe_stats.stages_recomputed, 0u);
}

TEST(DelayModels, SessionInterleavesModelsWithoutCacheCrossTalk) {
  AnalysisOptions awe_opt;
  awe_opt.threads = 1;
  Session session(paper_tree_design(), awe_opt);
  const TimingReport awe1 = session.analyze();

  AnalysisOptions elmore_opt = awe_opt;
  elmore_opt.delay_model = DelayModelKind::ElmoreBound;
  const TimingReport elmore = session.analyze(elmore_opt);
  // Different physics, different numbers: the bound is pessimistic.
  EXPECT_GT(elmore.critical_delay, awe1.critical_delay);

  // Back to AWE: the cache serves the AWE entries, not the Elmore ones
  // -- the model kind is part of the key, so no aliasing is possible.
  const TimingReport awe2 = session.analyze(awe_opt);
  expect_same_payload(awe1, awe2);
  EXPECT_EQ(awe2.awe_stats.stages_reused, awe2.stages.size());

  // And the Elmore entries were cached under their own keys.
  const TimingReport elmore2 = session.analyze(elmore_opt);
  expect_same_payload(elmore, elmore2);
  EXPECT_EQ(elmore2.awe_stats.stages_reused, elmore2.stages.size());
}

TEST(DelayModels, ElmoreUpperBoundsAweOnDistributedRcTrees) {
  for (const Design& d : {paper_tree_design(), fork_design()}) {
    AnalysisOptions awe_opt;
    AnalysisOptions elmore_opt;
    elmore_opt.delay_model = DelayModelKind::ElmoreBound;
    const TimingReport awe = d.analyze(awe_opt);
    const TimingReport elmore = d.analyze(elmore_opt);
    ASSERT_EQ(awe.stages.size(), elmore.stages.size());
    for (std::size_t s = 0; s < awe.stages.size(); ++s) {
      ASSERT_EQ(awe.stages[s].sinks.size(), elmore.stages[s].sinks.size());
      for (std::size_t k = 0; k < awe.stages[s].sinks.size(); ++k) {
        EXPECT_GE(elmore.stages[s].sinks[k].stage_delay,
                  awe.stages[s].sinks[k].stage_delay)
            << awe.stages[s].net << " sink "
            << awe.stages[s].sinks[k].gate;
      }
    }
    EXPECT_GE(elmore.critical_delay, awe.critical_delay);
  }
}

TEST(DelayModels, ElmoreModelMatchesFailureFallbackArithmetic) {
  // A first-wave stage sees options.input_slew under every model, so the
  // injected-failure fallback (under AWE) and the ElmoreBound model
  // evaluate the same inputs -- and must produce the same numbers.  Only
  // the bookkeeping differs: the fallback is tainted, the model is not.
  const Design d = fork_design();
  AnalysisOptions elmore_opt;
  elmore_opt.delay_model = DelayModelKind::ElmoreBound;
  const TimingReport as_model = d.analyze(elmore_opt);

  TimingReport as_fallback;
  {
    core::ScopedFaultInjection inject({{"timing.stage", "fork", -1}});
    as_fallback = d.analyze();
  }
  ASSERT_EQ(as_fallback.failed_stages, 1u);
  ASSERT_EQ(as_model.failed_stages, 0u);
  EXPECT_EQ(as_model.degraded_stages, 0u);
  ASSERT_EQ(as_model.stages.size(), 1u);
  ASSERT_EQ(as_fallback.stages.size(), 1u);
  EXPECT_FALSE(as_model.stages[0].degraded);
  EXPECT_TRUE(as_fallback.stages[0].degraded);
  ASSERT_EQ(as_model.stages[0].sinks.size(),
            as_fallback.stages[0].sinks.size());
  for (std::size_t k = 0; k < as_model.stages[0].sinks.size(); ++k) {
    EXPECT_EQ(as_model.stages[0].sinks[k].stage_delay,
              as_fallback.stages[0].sinks[k].stage_delay);
    EXPECT_EQ(as_model.stages[0].sinks[k].slew,
              as_fallback.stages[0].sinks[k].slew);
  }
}

TEST(DelayModels, TableLookupTracksSinglePoleClosedForm) {
  // A purely lumped stage is exactly one pole, so the table model's
  // interpolated answer must track the closed-form crossing to within
  // grid interpolation error.  Closed form (normalized x = t/tau,
  // u = T/tau):  x <= u: (x - (1 - e^-x))/u = 1/2;  x > u: see
  // delay_model.cpp.  Bisect it here independently.
  Design d;
  d.add_gate({"g1", 1e3, 0.0, 0.0});
  d.add_gate({"g2", 1e3, 0.0, 0.0});
  Net net;
  net.name = "lump";
  net.parasitics = {c("DRV", 100e-15)};
  net.sink_node["g2"] = "DRV";
  d.add_net("g1", net);
  d.set_primary_input("g1");

  AnalysisOptions opt;
  opt.delay_model = DelayModelKind::TableLookup;
  opt.input_slew = 0.13e-9;  // deliberately off any grid point
  const TimingReport report = d.analyze(opt);
  ASSERT_EQ(report.stages.size(), 1u);
  const double tau = 1e3 * 100e-15;
  const double u = opt.input_slew / tau;
  auto w = [u](double x) {
    if (x <= u) return (x - (1.0 - std::exp(-x))) / u;
    return 1.0 - ((1.0 - std::exp(-u)) / u) * std::exp(-(x - u));
  };
  auto crossing = [&](double f) {
    double lo = 0.0;
    double hi = u + 50.0;
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      (w(mid) < f ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double exact_delay = tau * crossing(0.5);
  const double exact_slew = tau * (crossing(0.8) - crossing(0.2));
  const double got_delay = report.stages[0].sinks[0].stage_delay;
  const double got_slew = report.stages[0].sinks[0].slew;
  EXPECT_NEAR(got_delay, exact_delay, 0.01 * exact_delay);
  EXPECT_NEAR(got_slew, exact_slew, 0.02 * exact_slew);
  // Step-like input (u far below the grid) degenerates to ln 2 * tau.
  AnalysisOptions step_opt = opt;
  step_opt.input_slew = 1e-18;
  const TimingReport step = d.analyze(step_opt);
  EXPECT_NEAR(step.stages[0].sinks[0].stage_delay, std::log(2.0) * tau,
              0.01 * tau);
}

// Golden slack regression for the paper-tree design under the default
// AWE model.  Regenerate deliberately with:
//   AWESIM_REGEN_GOLDEN=1 ./test_delay_models
//       --gtest_filter='*GoldenPaperTreeSlacks*'
TEST(DelayModels, GoldenPaperTreeSlacks) {
  const std::string path =
      std::string(AWESIM_GOLDEN_DIR) + "/fig19_slack.json";
  AnalysisOptions opt;
  opt.threads = 1;
  opt.required_time = 2.5e-9;
  const TimingReport report = paper_tree_design().analyze(opt);

  if (std::getenv("AWESIM_REGEN_GOLDEN") != nullptr) {
    obs::json::Value root = obs::json::Value::object();
    root.set("schema", "awesim-golden-slack");
    root.set("version", 1);
    root.set("circuit", "fig16 interconnect (Fig. 19 timing scenario)");
    root.set("required_time", opt.required_time);
    root.set("worst_slack", report.worst_slack);
    root.set("worst_slack_endpoint", report.worst_slack_endpoint);
    root.set("critical_delay", report.critical_delay);
    obs::json::Value slack = obs::json::Value::object();
    for (const auto& [gate, s] : report.gate_slack) slack.set(gate, s);
    root.set("gate_slack", std::move(slack));
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << root.dump(2) << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::json::Value golden = obs::json::parse(buffer.str());

  // rel 1e-9: admits benign FP noise (about 1e-13 relative) with margin,
  // catches any real numeric change; same policy as the golden
  // waveforms.
  auto expect_close = [](double got, double want, const char* what) {
    EXPECT_NEAR(got, want, 1e-9 * std::abs(want) + 1e-21) << what;
  };
  expect_close(report.worst_slack,
               golden.find("worst_slack")->as_number(), "worst_slack");
  expect_close(report.critical_delay,
               golden.find("critical_delay")->as_number(),
               "critical_delay");
  EXPECT_EQ(report.worst_slack_endpoint,
            golden.find("worst_slack_endpoint")->as_string());
  const obs::json::Value* slack = golden.find("gate_slack");
  ASSERT_NE(slack, nullptr);
  ASSERT_EQ(slack->items().size(), report.gate_slack.size());
  for (const auto& [gate, want] : slack->items()) {
    ASSERT_EQ(report.gate_slack.count(gate), 1u) << gate;
    expect_close(report.gate_slack.at(gate), want.as_number(),
                 gate.c_str());
  }
}

TEST(DelayModels, KindNamesAreStable) {
  EXPECT_STREQ(to_string(DelayModelKind::Awe), "awe");
  EXPECT_STREQ(to_string(DelayModelKind::ElmoreBound), "elmore");
  EXPECT_STREQ(to_string(DelayModelKind::TwoPole), "two_pole");
  EXPECT_STREQ(to_string(DelayModelKind::TableLookup), "table");
  for (DelayModelKind kind :
       {DelayModelKind::Awe, DelayModelKind::ElmoreBound,
        DelayModelKind::TwoPole, DelayModelKind::TableLookup}) {
    EXPECT_EQ(delay_model(kind).kind(), kind);
    EXPECT_STREQ(delay_model(kind).name(), to_string(kind));
  }
}

}  // namespace awesim::timing
