// The moment-matching solve in isolation: synthetic moment sequences with
// known poles/residues, repeated poles, degenerate sequences, scaling.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/pade.h"

namespace awesim::core {

namespace {

using la::Complex;

// Build the exact AWE moment sequence mu_{j0..j0+count-1} of a given term
// set (the inverse problem of match_moments).
std::vector<double> moments_of(const std::vector<PoleResidueTerm>& terms,
                               int j0, int count) {
  std::vector<double> mu;
  for (int i = 0; i < count; ++i) {
    mu.push_back(implied_moment(terms, j0 + i));
  }
  return mu;
}

void expect_terms_match(const std::vector<PoleResidueTerm>& got,
                        const std::vector<PoleResidueTerm>& want,
                        double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& w : want) {
    bool found = false;
    for (const auto& g : got) {
      if (std::abs(g.pole - w.pole) <= tol * std::abs(w.pole) &&
          g.power == w.power &&
          std::abs(g.residue - w.residue) <=
              tol * std::max(1.0, std::abs(w.residue))) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing term with pole (" << w.pole.real() << ","
                       << w.pole.imag() << ") power " << w.power;
  }
}

}  // namespace

TEST(Pade, RecoversSinglePole) {
  std::vector<PoleResidueTerm> truth{{Complex(-2.0, 0.0), Complex(3.0, 0.0), 1}};
  const auto mu = moments_of(truth, -1, 2);
  const auto result = match_moments(mu, -1, 1);
  ASSERT_EQ(result.order_used, 1);
  EXPECT_TRUE(result.stable);
  expect_terms_match(result.terms, truth, 1e-10);
}

TEST(Pade, RecoversTwoRealPoles) {
  std::vector<PoleResidueTerm> truth{
      {Complex(-1.0, 0.0), Complex(-5.0, 0.0), 1},
      {Complex(-10.0, 0.0), Complex(2.0, 0.0), 1}};
  const auto mu = moments_of(truth, -1, 4);
  const auto result = match_moments(mu, -1, 2);
  ASSERT_EQ(result.order_used, 2);
  expect_terms_match(result.terms, truth, 1e-8);
}

TEST(Pade, RecoversComplexPair) {
  std::vector<PoleResidueTerm> truth{
      {Complex(-1.0, 3.0), Complex(0.5, -0.25), 1},
      {Complex(-1.0, -3.0), Complex(0.5, 0.25), 1}};
  const auto mu = moments_of(truth, -1, 4);
  const auto result = match_moments(mu, -1, 2);
  ASSERT_EQ(result.order_used, 2);
  expect_terms_match(result.terms, truth, 1e-8);
}

TEST(Pade, RecoversWidelySpreadPoles) {
  // 5 decades of pole spread: frequency scaling keeps this solvable.
  std::vector<PoleResidueTerm> truth{
      {Complex(-1e3, 0.0), Complex(1.0, 0.0), 1},
      {Complex(-1e6, 0.0), Complex(-0.5, 0.0), 1},
      {Complex(-1e8, 0.0), Complex(0.25, 0.0), 1}};
  const auto mu = moments_of(truth, -1, 6);
  const auto result = match_moments(mu, -1, 3);
  ASSERT_EQ(result.order_used, 3);
  EXPECT_TRUE(result.stable);
  // The dominant pole must be recovered to high relative accuracy.
  double best = 1e300;
  for (const auto& t : result.terms) {
    best = std::min(best, std::abs(t.pole - Complex(-1e3, 0.0)));
  }
  EXPECT_LT(best, 1e-3 * 1e3);
}

TEST(Pade, RepeatedPoleConfluentResidues) {
  // (s-p)^-2 + (s-p)^-1 structure: k t e^{pt} + k2 e^{pt}.
  std::vector<PoleResidueTerm> truth{
      {Complex(-4.0, 0.0), Complex(2.0, 0.0), 1},
      {Complex(-4.0, 0.0), Complex(3.0, 0.0), 2}};
  const auto mu = moments_of(truth, -1, 4);
  const auto result = match_moments(mu, -1, 2);
  ASSERT_EQ(result.order_used, 2);
  ASSERT_EQ(result.terms.size(), 2u);
  // Both terms share the pole; powers 1 and 2 present.
  int power_mask = 0;
  for (const auto& t : result.terms) {
    EXPECT_NEAR(t.pole.real(), -4.0, 1e-3);
    power_mask |= (1 << t.power);
  }
  EXPECT_EQ(power_mask, 0b110);
  // Time-domain agreement.
  for (double t : {0.0, 0.1, 0.5, 1.0}) {
    EXPECT_NEAR(evaluate_terms(result.terms, t), evaluate_terms(truth, t),
                1e-6);
  }
}

TEST(Pade, DegenerateSequenceReducesOrder) {
  // A 1-pole sequence asked to produce 3 poles.
  std::vector<PoleResidueTerm> truth{{Complex(-1.0, 0.0), Complex(1.0, 0.0), 1}};
  const auto mu = moments_of(truth, -1, 6);
  const auto result = match_moments(mu, -1, 3);
  EXPECT_EQ(result.order_used, 1);
  expect_terms_match(result.terms, truth, 1e-9);
}

TEST(Pade, ZeroSequenceGivesEmptyResult) {
  const std::vector<double> mu(6, 0.0);
  const auto result = match_moments(mu, -1, 3);
  EXPECT_EQ(result.order_used, 0);
  EXPECT_TRUE(result.terms.empty());
}

TEST(Pade, ScalingOffFailsOnStiffSequence) {
  // Without frequency scaling, a stiff 4-pole sequence loses rank in
  // double precision (the Section 3.5 motivation).  The match must not
  // silently return garbage: it either reduces order or keeps a clean
  // moment residual.
  std::vector<PoleResidueTerm> truth{
      {Complex(-1e2, 0.0), Complex(1.0, 0.0), 1},
      {Complex(-1e4, 0.0), Complex(-0.6, 0.0), 1},
      {Complex(-1e6, 0.0), Complex(0.4, 0.0), 1},
      {Complex(-1e8, 0.0), Complex(-0.2, 0.0), 1}};
  const auto mu = moments_of(truth, -1, 8);
  MatchOptions off;
  off.frequency_scaling = false;
  const auto result = match_moments(mu, -1, 4, off);
  MatchOptions on;
  const auto scaled = match_moments(mu, -1, 4, on);
  // Scaled version recovers the full order; unscaled loses rank earlier.
  EXPECT_EQ(scaled.order_used, 4);
  EXPECT_LT(result.order_used, 4);
}

TEST(Pade, MomentWindowWithSlope) {
  // j0 = -2 window: matches derivative, initial value, and moments.
  std::vector<PoleResidueTerm> truth{
      {Complex(-1.0, 0.0), Complex(2.0, 0.0), 1},
      {Complex(-7.0, 0.0), Complex(-1.0, 0.0), 1}};
  const auto mu = moments_of(truth, -2, 4);
  const auto result = match_moments(mu, -2, 2);
  ASSERT_EQ(result.order_used, 2);
  expect_terms_match(result.terms, truth, 1e-8);
}

TEST(Pade, ShiftedPoleWindowStillInterpolatesLowMoments) {
  std::vector<PoleResidueTerm> truth{
      {Complex(-1.0, 0.0), Complex(-2.0, 0.0), 1},
      {Complex(-5.0, 0.0), Complex(1.0, 0.0), 1},
      {Complex(-20.0, 0.0), Complex(0.3, 0.0), 1}};
  // Give 2q+1 = 5 moments for a shifted q=2 match.
  const auto mu = moments_of(truth, -1, 5);
  MatchOptions opt;
  opt.pole_shift = 1;
  const auto result = match_moments(mu, -1, 2, opt);
  ASSERT_EQ(result.order_used, 2);
  EXPECT_EQ(result.pole_shift, 1);
  // The residue window (mu_{-1}, mu_0) must be interpolated exactly:
  EXPECT_NEAR(implied_moment(result.terms, -1), mu[0], 1e-9);
  EXPECT_NEAR(implied_moment(result.terms, 0), mu[1],
              1e-9 * std::abs(mu[1]));
}

TEST(Pade, EvaluateTermsHandlesRepeatedPolePolynomials) {
  // k t^2/2 e^{-t}: power 3 term.
  std::vector<PoleResidueTerm> terms{{Complex(-1.0, 0.0), Complex(4.0, 0.0), 3}};
  EXPECT_NEAR(evaluate_terms(terms, 2.0), 4.0 * 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(evaluate_terms(terms, 0.0), 0.0, 1e-15);
}

TEST(Pade, ImpliedMomentRoundTrip) {
  std::vector<PoleResidueTerm> terms{
      {Complex(-3.0, 1.0), Complex(1.0, 2.0), 1},
      {Complex(-3.0, -1.0), Complex(1.0, -2.0), 1}};
  // mu_{-1} = -(sum k) = -2; mu_0 = -(sum k/p).
  EXPECT_NEAR(implied_moment(terms, -1), -2.0, 1e-12);
  const Complex p(-3.0, 1.0), k(1.0, 2.0);
  const double expected = -(k / p + std::conj(k) / std::conj(p)).real();
  EXPECT_NEAR(implied_moment(terms, 0), expected, 1e-12);
}

TEST(Pade, ThrowsOnBadInput) {
  EXPECT_THROW(match_moments({1.0, 2.0}, -1, 0), std::invalid_argument);
  EXPECT_THROW(match_moments({1.0}, -1, 1), std::invalid_argument);
}

TEST(Pade, StabilityFlagReflectsPositivePole) {
  std::vector<PoleResidueTerm> truth{{Complex(2.0, 0.0), Complex(1.0, 0.0), 1}};
  const auto mu = moments_of(truth, -1, 2);
  const auto result = match_moments(mu, -1, 1);
  ASSERT_EQ(result.order_used, 1);
  EXPECT_FALSE(result.stable);
  EXPECT_NEAR(result.terms[0].pole.real(), 2.0, 1e-9);
}

}  // namespace awesim::core
