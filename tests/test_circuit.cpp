// Circuit model and stimulus descriptions.
#include <gtest/gtest.h>

#include "circuit/circuit.h"

namespace awesim::circuit {

TEST(Stimulus, DcIsFlat) {
  const auto s = Stimulus::dc(3.3);
  EXPECT_EQ(s.value(-1.0), 3.3);
  EXPECT_EQ(s.value(100.0), 3.3);
  EXPECT_EQ(s.slope_after(0.0), 0.0);
  EXPECT_FALSE(s.has_unbounded_ramp());
  EXPECT_EQ(s.final_value(), 3.3);
}

TEST(Stimulus, StepJumpsAtDelay) {
  const auto s = Stimulus::step(1.0, 5.0, 2.0);
  EXPECT_EQ(s.value(1.999), 1.0);
  EXPECT_EQ(s.value(2.0), 5.0);
  EXPECT_EQ(s.final_value(), 5.0);
  EXPECT_EQ(s.last_breakpoint(), 2.0);
}

TEST(Stimulus, RampStepIsPiecewiseLinear) {
  const auto s = Stimulus::ramp_step(0.0, 4.0, 2.0, 1.0);
  EXPECT_EQ(s.value(0.5), 0.0);
  EXPECT_NEAR(s.value(2.0), 2.0, 1e-12);  // halfway up
  EXPECT_NEAR(s.value(3.0), 4.0, 1e-12);
  EXPECT_NEAR(s.value(10.0), 4.0, 1e-12);
  EXPECT_EQ(s.slope_after(1.5), 2.0);
  EXPECT_EQ(s.slope_after(4.0), 0.0);
}

TEST(Stimulus, RampStepZeroRiseIsStep) {
  const auto s = Stimulus::ramp_step(0.0, 4.0, 0.0);
  EXPECT_EQ(s.value(0.0), 4.0);
  EXPECT_EQ(s.value(-0.1), 0.0);
}

TEST(Stimulus, PwlInterpolatesAndClamps) {
  const auto s = Stimulus::pwl({{0.0, 0.0}, {1.0, 2.0}, {2.0, -1.0}});
  EXPECT_NEAR(s.value(0.5), 1.0, 1e-12);
  EXPECT_NEAR(s.value(1.5), 0.5, 1e-12);
  EXPECT_NEAR(s.value(5.0), -1.0, 1e-12);
  EXPECT_EQ(s.value(-1.0), 0.0);
  EXPECT_FALSE(s.has_unbounded_ramp());
  EXPECT_NEAR(s.final_value(), -1.0, 1e-12);
}

TEST(Stimulus, PwlRejectsNonIncreasingTimes) {
  EXPECT_THROW(Stimulus::pwl({{1.0, 0.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(Stimulus::pwl({}), std::invalid_argument);
}

TEST(Circuit, NodeNamesAndAliases) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
  const auto a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);  // idempotent
  EXPECT_EQ(ckt.find_node("a"), a);
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_THROW(ckt.find_node("missing"), std::out_of_range);
  EXPECT_EQ(ckt.node_count(), 2u);
}

TEST(Circuit, FindElement) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 5.0);
  ASSERT_NE(ckt.find_element("R1"), nullptr);
  EXPECT_EQ(ckt.find_element("R1")->value, 5.0);
  EXPECT_EQ(ckt.find_element("R2"), nullptr);
}

TEST(Circuit, ValidateCatchesSelfLoop) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_resistor("R1", a, a, 1.0);
  EXPECT_THROW(ckt.validate(), std::invalid_argument);
}

TEST(Circuit, ValidateCatchesNonPositiveValues) {
  Circuit ckt;
  ckt.add_capacitor("C1", ckt.node("a"), kGround, 0.0);
  EXPECT_THROW(ckt.validate(), std::invalid_argument);
}

TEST(Circuit, ValidateCatchesControlledSourceTargets) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_resistor("Rc", a, kGround, 1.0);
  ckt.add_cccs("F1", a, kGround, "Rc", 2.0);  // control must be V or L
  EXPECT_THROW(ckt.validate(), std::invalid_argument);
}

TEST(Circuit, InitialConditions) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.set_initial_node_voltage(a, 2.5);
  EXPECT_EQ(ckt.initial_node_voltages().at(a), 2.5);
  EXPECT_THROW(ckt.set_initial_node_voltage(kGround, 1.0),
               std::invalid_argument);
}

TEST(Circuit, ElementIcStorage) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto& c = ckt.add_capacitor("C1", a, kGround, 1e-12, 1.8);
  EXPECT_TRUE(c.initial_condition.has_value());
  EXPECT_EQ(*c.initial_condition, 1.8);
  const auto& l = ckt.add_inductor("L1", a, kGround, 1e-9);
  EXPECT_FALSE(l.initial_condition.has_value());
}


TEST(Circuit, ValidateCatchesDanglingNode) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1.0);
  ckt.node("orphan");  // registered but never used
  EXPECT_THROW(ckt.validate(), std::invalid_argument);
}

}  // namespace awesim::circuit
