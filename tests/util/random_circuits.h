// Shared circuit/design generators for the test suites.
//
// Before this header existed every suite grew its own ad-hoc builders
// (test_session's fanout/chain designs, test_paths' random DAG reports);
// they live here now so the differential suites -- in particular the
// `numeric` tier in test_low_rank.cpp -- exercise the same seeded
// families the rest of the tests pin down.  Everything is deterministic
// in the seed: same seed, same Design, bit for bit, on every platform
// (std::mt19937 and the distributions below are fully specified).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "timing/analyzer.h"

namespace awesim::timing::testutil {

/// Element shorthands over net-local node names.
NetElement r(const std::string& a, const std::string& b, double v);
NetElement c(const std::string& a, double v);

/// Reconvergent fanout plus a design-output endpoint:
///   g1 -n1-> {g2, g3};  g2 -n2-> g4;  g3 -n3-> g4;  g4 -n4-> OUT.
Design fanout_design();

/// A straight chain g1 -n1-> g2 -n2-> ... with per-stage distinct
/// parasitics (distinct content keys).
Design chain_design(int gates = 4);

/// Uniform-name gate label ("g07") so lexicographic and numeric order
/// agree for up to 100 gates.
std::string gate_name(int i);

/// A random layered DAG rendered directly as a TimingReport (no AWE
/// engine anywhere): gate i may drive any higher-numbered gate, plus
/// (sometimes) an output port.  Arc delays are uniform in [1, 100] ps.
/// Gates without fan-in become graph sources automatically;
/// report.source_gates is left empty on purpose to cover that default.
TimingReport random_report(std::uint32_t seed, int n_gates,
                           double arc_probability);

/// Bitwise comparison of the timing payload the Session bit-identity
/// contract covers.  awe_stats (cost counters), phases, and
/// wall_seconds are deliberately outside the contract -- they describe
/// work performed, which is exactly what warm runs save.
void expect_same_payload(const TimingReport& a, const TimingReport& b,
                         bool compare_diagnostics = true);

/// A generated single-stage design plus the handles a mutation sequence
/// needs (Design keeps its net list private, so the generator records
/// what it built).
struct StageDesign {
  Design design;
  /// The single net's name.
  std::string net;
  /// Parasitic indices of the resistor elements, with their build-time
  /// nominal values (legal Session::set_value targets).
  std::vector<std::size_t> resistor_indices;
  std::vector<double> resistor_values;
};

/// Seeded one-stage designs for the numeric differential tier.  Each is
/// a single driver gate "drv" (a primary input) plus one net "net0";
/// R/C values are jittered around nominal so no two seeds share a
/// stage-content key.
///
///   * rc_line_design: a straight RC ladder DRV -> ... -> sink "snk"
///     (`sections` R/C section pairs).
///   * rc_tree_design: a random branching tree over `nodes` nodes;
///     every leaf is a sink.
///   * rc_mesh_design: the line plus `cross_links` random
///     cross-coupling resistors (non-tree topology, exercises the
///     general solver path).
StageDesign rc_line_design(std::uint32_t seed, std::size_t sections);
StageDesign rc_tree_design(std::uint32_t seed, std::size_t nodes);
StageDesign rc_mesh_design(std::uint32_t seed, std::size_t sections,
                           std::size_t cross_links);

/// One element-value edit, as Session::set_value takes it.
struct ValueMutation {
  std::string net;
  std::size_t element_index = 0;
  double value = 0.0;
};

/// A seeded sequence of resistor-value perturbations: each step picks a
/// random resistor and scales its *nominal* value by a factor uniform
/// in [1-rel_spread, 1+rel_spread].  Values stay positive, so every
/// step is a legal Sherman-Morrison rank-1 candidate.
std::vector<ValueMutation> random_perturbations(std::uint32_t seed,
                                                const StageDesign& stage,
                                                std::size_t count,
                                                double rel_spread = 0.3);

}  // namespace awesim::timing::testutil
