#include "util/random_circuits.h"

#include <gtest/gtest.h>

#include <random>
#include <utility>

namespace awesim::timing::testutil {

NetElement r(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Resistor, a, b, v};
}

NetElement c(const std::string& a, double v) {
  return {NetElement::Kind::Capacitor, a, "0", v};
}

Design fanout_design() {
  Design d;
  d.add_gate({"g1", 1.0e3, 4e-15, 5e-12});
  d.add_gate({"g2", 1.2e3, 5e-15, 7e-12});
  d.add_gate({"g3", 0.9e3, 6e-15, 6e-12});
  d.add_gate({"g4", 1.1e3, 4e-15, 8e-12});

  Net n1;
  n1.name = "n1";
  n1.parasitics = {r("DRV", "a", 150.0),  c("a", 40e-15),
                   r("a", "w2", 220.0),   c("w2", 25e-15),
                   r("a", "w3", 330.0),   c("w3", 35e-15)};
  n1.sink_node["g2"] = "w2";
  n1.sink_node["g3"] = "w3";
  d.add_net("g1", n1);

  Net n2;
  n2.name = "n2";
  n2.parasitics = {r("DRV", "b", 270.0), c("b", 60e-15)};
  n2.sink_node["g4"] = "b";
  d.add_net("g2", n2);

  Net n3;
  n3.name = "n3";
  n3.parasitics = {r("DRV", "bc", 410.0), c("bc", 45e-15)};
  n3.sink_node["g4"] = "bc";
  d.add_net("g3", n3);

  Net n4;
  n4.name = "n4";
  n4.parasitics = {r("DRV", "o", 190.0), c("o", 80e-15)};
  n4.sink_node["OUT"] = "o";  // no such gate: design output endpoint
  d.add_net("g4", n4);

  d.set_primary_input("g1");
  return d;
}

Design chain_design(int gates) {
  Design d;
  for (int i = 1; i <= gates; ++i) {
    d.add_gate({"g" + std::to_string(i), 1.0e3 + 10.0 * i, 4e-15,
                5e-12});
  }
  for (int i = 1; i < gates; ++i) {
    Net net;
    net.name = "n" + std::to_string(i);
    net.parasitics = {r("DRV", "w", 200.0 + 13.0 * i),
                      c("w", (20.0 + i) * 1e-15),
                      r("w", "w2", 250.0 + 7.0 * i), c("w2", 30e-15)};
    net.sink_node["g" + std::to_string(i + 1)] = "w2";
    d.add_net("g" + std::to_string(i), net);
  }
  d.set_primary_input("g1");
  return d;
}

std::string gate_name(int i) {
  return "g" + std::string(i < 10 ? "0" : "") + std::to_string(i);
}

TimingReport random_report(std::uint32_t seed, int n_gates,
                           double arc_probability) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> delay(1e-12, 100e-12);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TimingReport report;
  for (int i = 0; i < n_gates; ++i) report.gate_arrival[gate_name(i)] = 0.0;
  for (int i = 0; i < n_gates; ++i) {
    StageTiming st;
    st.driver_gate = gate_name(i);
    st.net = "n" + std::to_string(i);
    for (int j = i + 1; j < n_gates; ++j) {
      if (coin(rng) < arc_probability) {
        SinkTiming s;
        s.gate = gate_name(j);
        s.stage_delay = delay(rng);
        s.slew = 10e-12;
        st.sinks.push_back(s);
      }
    }
    if (coin(rng) < 0.3) {
      SinkTiming s;
      s.gate = "PO" + std::to_string(i);  // no such gate: a port
      s.stage_delay = delay(rng);
      st.sinks.push_back(s);
    }
    if (!st.sinks.empty()) report.stages.push_back(std::move(st));
  }
  return report;
}

void expect_same_payload(const TimingReport& a, const TimingReport& b,
                         bool compare_diagnostics) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    const StageTiming& x = a.stages[i];
    const StageTiming& y = b.stages[i];
    EXPECT_EQ(x.driver_gate, y.driver_gate);
    EXPECT_EQ(x.net, y.net);
    EXPECT_EQ(x.input_arrival, y.input_arrival);
    EXPECT_EQ(x.awe_order_used, y.awe_order_used);
    EXPECT_EQ(x.degraded, y.degraded);
    EXPECT_EQ(x.failed, y.failed);
    ASSERT_EQ(x.sinks.size(), y.sinks.size());
    for (std::size_t j = 0; j < x.sinks.size(); ++j) {
      EXPECT_EQ(x.sinks[j].gate, y.sinks[j].gate);
      EXPECT_EQ(x.sinks[j].stage_delay, y.sinks[j].stage_delay);
      EXPECT_EQ(x.sinks[j].slew, y.sinks[j].slew);
      EXPECT_EQ(x.sinks[j].arrival, y.sinks[j].arrival);
    }
    if (compare_diagnostics) {
      ASSERT_EQ(x.diagnostics.size(), y.diagnostics.size());
      for (std::size_t j = 0; j < x.diagnostics.size(); ++j) {
        EXPECT_EQ(x.diagnostics[j].code, y.diagnostics[j].code);
        EXPECT_EQ(x.diagnostics[j].severity, y.diagnostics[j].severity);
        EXPECT_EQ(x.diagnostics[j].message, y.diagnostics[j].message);
        EXPECT_EQ(x.diagnostics[j].element, y.diagnostics[j].element);
        EXPECT_EQ(x.diagnostics[j].node, y.diagnostics[j].node);
      }
    }
  }
  EXPECT_EQ(a.gate_arrival, b.gate_arrival);
  EXPECT_EQ(a.critical_delay, b.critical_delay);
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.degraded_stages, b.degraded_stages);
  EXPECT_EQ(a.failed_stages, b.failed_stages);
  if (compare_diagnostics) {
    EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size());
  }
}

namespace {

// Shared scaffolding for the one-stage generators: gates, the net
// bookkeeping, and the finish step that records resistor handles.
struct StageBuilder {
  Net net;
  std::vector<std::size_t> resistor_indices;
  std::vector<double> resistor_values;

  void add_r(const std::string& a, const std::string& b, double v) {
    resistor_indices.push_back(net.parasitics.size());
    resistor_values.push_back(v);
    net.parasitics.push_back(r(a, b, v));
  }
  void add_c(const std::string& node, double v) {
    net.parasitics.push_back(c(node, v));
  }

  StageDesign finish(double drive_resistance) {
    StageDesign out;
    Gate drv;
    drv.name = "drv";
    drv.drive_resistance = drive_resistance;
    out.design.add_gate(drv);
    for (const auto& [sink, node] : net.sink_node) {
      Gate g;
      g.name = sink;
      g.input_capacitance = 5e-15;
      out.design.add_gate(g);
    }
    out.net = net.name;
    out.resistor_indices = std::move(resistor_indices);
    out.resistor_values = std::move(resistor_values);
    out.design.add_net("drv", std::move(net));
    out.design.set_primary_input("drv");
    return out;
  }
};

}  // namespace

StageDesign rc_line_design(std::uint32_t seed, std::size_t sections) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> res(50.0, 500.0);
  std::uniform_real_distribution<double> cap(1e-15, 50e-15);
  StageBuilder b;
  b.net.name = "net0";
  std::string prev = "DRV";
  for (std::size_t i = 0; i < sections; ++i) {
    const std::string node = "n" + std::to_string(i);
    b.add_r(prev, node, res(rng));
    b.add_c(node, cap(rng));
    prev = node;
  }
  b.net.sink_node["snk"] = prev;
  return b.finish(res(rng) * 2.0);
}

StageDesign rc_tree_design(std::uint32_t seed, std::size_t nodes) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> res(50.0, 500.0);
  std::uniform_real_distribution<double> cap(1e-15, 50e-15);
  StageBuilder b;
  b.net.name = "net0";
  std::vector<bool> has_child(nodes, false);
  for (std::size_t i = 0; i < nodes; ++i) {
    std::string parent = "DRV";
    if (i > 0) {
      std::uniform_int_distribution<std::size_t> pick(0, i - 1);
      const std::size_t p = pick(rng);
      has_child[p] = true;
      parent = "n" + std::to_string(p);
    }
    b.add_r(parent, "n" + std::to_string(i), res(rng));
    b.add_c("n" + std::to_string(i), cap(rng));
  }
  std::size_t sink = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (!has_child[i]) {
      b.net.sink_node["s" + std::to_string(sink++)] =
          "n" + std::to_string(i);
    }
  }
  return b.finish(res(rng) * 2.0);
}

StageDesign rc_mesh_design(std::uint32_t seed, std::size_t sections,
                           std::size_t cross_links) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> res(50.0, 500.0);
  std::uniform_real_distribution<double> cap(1e-15, 50e-15);
  StageBuilder b;
  b.net.name = "net0";
  std::string prev = "DRV";
  for (std::size_t i = 0; i < sections; ++i) {
    const std::string node = "n" + std::to_string(i);
    b.add_r(prev, node, res(rng));
    b.add_c(node, cap(rng));
    prev = node;
  }
  // Cross-coupling resistors between distinct line nodes turn the
  // ladder into a general (non-tree) resistive mesh.
  std::uniform_int_distribution<std::size_t> pick(0, sections - 1);
  for (std::size_t k = 0; k < cross_links; ++k) {
    const std::size_t a = pick(rng);
    std::size_t bn = pick(rng);
    if (bn == a) bn = (bn + 1) % sections;
    b.add_r("n" + std::to_string(a), "n" + std::to_string(bn),
            res(rng) * 4.0);
  }
  b.net.sink_node["snk"] = prev;
  return b.finish(res(rng) * 2.0);
}

std::vector<ValueMutation> random_perturbations(std::uint32_t seed,
                                                const StageDesign& stage,
                                                std::size_t count,
                                                double rel_spread) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(
      0, stage.resistor_indices.size() - 1);
  std::uniform_real_distribution<double> scale(1.0 - rel_spread,
                                               1.0 + rel_spread);
  std::vector<ValueMutation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t which = pick(rng);
    ValueMutation m;
    m.net = stage.net;
    m.element_index = stage.resistor_indices[which];
    m.value = stage.resistor_values[which] * scale(rng);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace awesim::timing::testutil
