// Dense matrix/vector basics.
#include <gtest/gtest.h>

#include "la/matrix.h"

namespace la = awesim::la;

TEST(Matrix, ConstructionAndIndexing) {
  la::RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
  m(1, 2) = 4.5;
  EXPECT_EQ(m(1, 2), 4.5);
}

TEST(Matrix, InitializerList) {
  la::RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_THROW((la::RealMatrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const auto eye = la::RealMatrix::identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
}

TEST(Matrix, Arithmetic) {
  la::RealMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::RealMatrix b{{5.0, 6.0}, {7.0, 8.0}};
  const auto sum = a + b;
  EXPECT_EQ(sum(0, 0), 6.0);
  const auto diff = b - a;
  EXPECT_EQ(diff(1, 1), 4.0);
  const auto scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 0), 6.0);
  EXPECT_THROW(a + la::RealMatrix(3, 3), std::invalid_argument);
}

TEST(Matrix, Product) {
  la::RealMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::RealMatrix b{{0.0, 1.0}, {1.0, 0.0}};
  const auto p = a * b;
  EXPECT_EQ(p(0, 0), 2.0);
  EXPECT_EQ(p(0, 1), 1.0);
  EXPECT_EQ(p(1, 0), 4.0);
  EXPECT_EQ(p(1, 1), 3.0);
  EXPECT_THROW(a * la::RealMatrix(3, 2), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  la::RealMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a * la::RealVector{1.0, -1.0};
  EXPECT_EQ(y[0], -1.0);
  EXPECT_EQ(y[1], -1.0);
}

TEST(Matrix, Transpose) {
  la::RealMatrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  la::RealMatrix a{{1.0, -2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.norm_inf(), 7.0);
  EXPECT_NEAR(a.norm_fro(), std::sqrt(30.0), 1e-14);
}

TEST(Matrix, ComplexScalars) {
  using la::Complex;
  la::ComplexMatrix m(2, 2);
  m(0, 0) = Complex(1.0, 1.0);
  m(1, 1) = Complex(0.0, -2.0);
  const auto p = m * m;
  EXPECT_EQ(p(0, 0), Complex(0.0, 2.0));
  EXPECT_EQ(p(1, 1), Complex(-4.0, 0.0));
}

TEST(VectorOps, NormsAndArithmetic) {
  la::RealVector v{3.0, -4.0};
  EXPECT_NEAR(la::norm2(v), 5.0, 1e-15);
  EXPECT_EQ(la::norm_inf(v), 4.0);
  const auto s = la::add(v, la::RealVector{1.0, 1.0});
  EXPECT_EQ(s[0], 4.0);
  const auto d = la::subtract(v, la::RealVector{1.0, 1.0});
  EXPECT_EQ(d[1], -5.0);
  const auto sc = la::scale(2.0, v);
  EXPECT_EQ(sc[0], 6.0);
}
