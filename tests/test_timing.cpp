// Stage-based timing analyzer on top of AWE.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "timing/analyzer.h"

namespace awesim::timing {

namespace {

NetElement r(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Resistor, a, b, v};
}
NetElement c(const std::string& a, double v) {
  return {NetElement::Kind::Capacitor, a, "0", v};
}
NetElement l(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Inductor, a, b, v};
}

// One stage: driver g1 through a 2-section wire to sink g2.
Design two_gate_design(double wire_r = 500.0, double wire_c = 50e-15) {
  Design d;
  d.add_gate({"g1", 1e3, 4e-15, 0.0});
  d.add_gate({"g2", 1.5e3, 6e-15, 0.0});
  Net net;
  net.name = "n1";
  net.parasitics = {r("DRV", "w1", wire_r), c("w1", wire_c),
                    r("w1", "w2", wire_r), c("w2", wire_c)};
  net.sink_node["g2"] = "w2";
  d.add_net("g1", net);
  d.set_primary_input("g1");
  return d;
}

}  // namespace

TEST(Timing, SingleStageDelayIsPlausible) {
  Design d = two_gate_design();
  const auto report = d.analyze();
  ASSERT_EQ(report.stages.size(), 1u);
  ASSERT_EQ(report.stages[0].sinks.size(), 1u);
  const auto& sink = report.stages[0].sinks[0];
  EXPECT_EQ(sink.gate, "g2");
  // Elmore scale: Rdrv*(C_total) + wire contributions ~ 1e3 * 106fF plus
  // wire ~ hundreds of ps; 50% delay below that.
  EXPECT_GT(sink.stage_delay, 2e-11);
  EXPECT_LT(sink.stage_delay, 1e-9);
  EXPECT_GT(sink.slew, 0.0);
  EXPECT_EQ(report.gate_arrival.at("g2"), sink.arrival);
}

TEST(Timing, DelayGrowsWithLoad) {
  const auto d_small = two_gate_design(200.0, 20e-15).analyze();
  const auto d_large = two_gate_design(2000.0, 200e-15).analyze();
  EXPECT_GT(d_large.stages[0].sinks[0].stage_delay,
            d_small.stages[0].sinks[0].stage_delay * 2.0);
}

TEST(Timing, ChainAccumulatesArrivals) {
  Design d;
  d.add_gate({"g1", 1e3, 4e-15, 10e-12});
  d.add_gate({"g2", 1e3, 4e-15, 10e-12});
  d.add_gate({"g3", 1e3, 4e-15, 10e-12});
  for (int i = 1; i <= 2; ++i) {
    Net net;
    net.name = "n" + std::to_string(i);
    net.parasitics = {r("DRV", "w", 300.0), c("w", 30e-15)};
    net.sink_node["g" + std::to_string(i + 1)] = "w";
    d.add_net("g" + std::to_string(i), net);
  }
  d.set_primary_input("g1");
  const auto report = d.analyze();
  const double a2 = report.gate_arrival.at("g2");
  const double a3 = report.gate_arrival.at("g3");
  EXPECT_GT(a2, 0.0);
  // Stage 2 is identical to stage 1 (same load), so arrival roughly
  // doubles (slew differences keep it from being exact).
  EXPECT_GT(a3, 1.6 * a2);
  EXPECT_LT(a3, 2.6 * a2);
  // Critical path is the chain.
  ASSERT_GE(report.critical_path.size(), 3u);
  EXPECT_EQ(report.critical_path.front(), "g1");
  EXPECT_EQ(report.critical_path.back(), "g3");
}

TEST(Timing, FanoutPicksWorstArrival) {
  // g1 and g2 both feed g3; g2's net is much slower and must define g3's
  // arrival and the critical path.
  Design d;
  d.add_gate({"g1", 500.0, 4e-15, 0.0});
  d.add_gate({"g2", 500.0, 4e-15, 0.0});
  d.add_gate({"g3", 1e3, 5e-15, 0.0});
  Net fast;
  fast.name = "fast";
  fast.parasitics = {r("DRV", "w", 100.0), c("w", 10e-15)};
  fast.sink_node["g3"] = "w";
  d.add_net("g1", fast);
  Net slow;
  slow.name = "slow";
  slow.parasitics = {r("DRV", "w", 3e3), c("w", 300e-15)};
  slow.sink_node["g3"] = "w";
  d.add_net("g2", slow);
  d.set_primary_input("g1");
  d.set_primary_input("g2");
  const auto report = d.analyze();
  double slow_delay = 0.0;
  for (const auto& st : report.stages) {
    if (st.net == "slow") slow_delay = st.sinks[0].arrival;
  }
  EXPECT_EQ(report.gate_arrival.at("g3"), slow_delay);
  ASSERT_GE(report.critical_path.size(), 2u);
  EXPECT_EQ(report.critical_path.front(), "g2");
}

TEST(Timing, MultiSinkNetTimesEachSink) {
  Design d;
  d.add_gate({"g1", 1e3, 4e-15, 0.0});
  d.add_gate({"near", 1e3, 5e-15, 0.0});
  d.add_gate({"far", 1e3, 5e-15, 0.0});
  Net net;
  net.name = "fork";
  net.parasitics = {r("DRV", "a", 200.0), c("a", 20e-15),
                    r("a", "b", 1e3),    c("b", 60e-15)};
  net.sink_node["near"] = "a";
  net.sink_node["far"] = "b";
  d.add_net("g1", net);
  d.set_primary_input("g1");
  const auto report = d.analyze();
  ASSERT_EQ(report.stages.size(), 1u);
  double d_near = 0.0;
  double d_far = 0.0;
  for (const auto& s : report.stages[0].sinks) {
    if (s.gate == "near") d_near = s.stage_delay;
    if (s.gate == "far") d_far = s.stage_delay;
  }
  EXPECT_GT(d_far, d_near);
}

TEST(Timing, InductiveNetEscalatesOrder) {
  // A PCB-ish net with inductance: AWE must escalate beyond 2 poles.
  Design d;
  d.add_gate({"drv", 25.0, 0.0, 0.0});
  d.add_gate({"rx", 1e6, 2e-12, 0.0});
  Net net;
  net.name = "trace";
  net.parasitics = {l("DRV", "m1", 4e-9), r("m1", "t1", 0.5),
                    c("t1", 1.5e-12),     l("t1", "m2", 4e-9),
                    r("m2", "t2", 0.5),   c("t2", 1.5e-12)};
  net.sink_node["rx"] = "t2";
  d.add_net("drv", net);
  d.set_primary_input("drv");
  AnalysisOptions opt;
  opt.swing = 3.3;
  opt.input_slew = 0.05e-9;
  const auto report = d.analyze(opt);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_GE(report.stages[0].awe_order_used, 3);
  EXPECT_GT(report.stages[0].sinks[0].stage_delay, 0.0);
}

TEST(Timing, IntrinsicDelayAdds) {
  Design plain = two_gate_design();
  Design with_intrinsic;
  with_intrinsic.add_gate({"g1", 1e3, 4e-15, 50e-12});
  with_intrinsic.add_gate({"g2", 1.5e3, 6e-15, 0.0});
  Net net;
  net.name = "n1";
  net.parasitics = {r("DRV", "w1", 500.0), c("w1", 50e-15),
                    r("w1", "w2", 500.0), c("w2", 50e-15)};
  net.sink_node["g2"] = "w2";
  with_intrinsic.add_net("g1", net);
  with_intrinsic.set_primary_input("g1");
  const double d0 = plain.analyze().stages[0].sinks[0].stage_delay;
  const double d1 =
      with_intrinsic.analyze().stages[0].sinks[0].stage_delay;
  EXPECT_NEAR(d1 - d0, 50e-12, 1e-12);
}

TEST(Timing, StructuralErrors) {
  Design d;
  EXPECT_THROW(d.add_net("nosuch", Net{}), std::invalid_argument);
  d.add_gate({"g1", 1e3, 1e-15, 0.0});
  EXPECT_THROW(d.add_gate({"g1", 1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(d.set_primary_input("nosuch"), std::invalid_argument);
}

TEST(Timing, CycleDetected) {
  Design d;
  d.add_gate({"a", 1e3, 1e-15, 0.0});
  d.add_gate({"b", 1e3, 1e-15, 0.0});
  Net ab;
  ab.name = "ab";
  ab.parasitics = {r("DRV", "w", 100.0), c("w", 1e-15)};
  ab.sink_node["b"] = "w";
  d.add_net("a", ab);
  Net ba = ab;
  ba.name = "ba";
  ba.sink_node.clear();
  ba.sink_node["a"] = "w";
  d.add_net("b", ba);
  // Neither gate is a primary input with zero fan-in: cycle.  The
  // default pre-flight audit throws a typed record naming the loop.
  try {
    d.analyze();
    FAIL() << "cycle not detected";
  } catch (const core::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().code, core::DiagCode::CombinationalCycle);
    EXPECT_NE(e.diagnostic().message.find("a -> b -> a"),
              std::string::npos)
        << e.diagnostic().message;
  }
  // The escape hatch restores the legacy untyped throw.
  AnalysisOptions legacy;
  legacy.preflight_audit = false;
  EXPECT_THROW(d.analyze(legacy), std::invalid_argument);
}

namespace {

// A wide multi-wave design so every wavefront past the first holds
// several independent stages -- the shape that exercises the pool.
Design wide_multiwave_design(std::size_t chains) {
  Design d;
  d.add_gate({"root", 600.0, 4e-15, 0.0});
  d.set_primary_input("root");
  Net fan;
  fan.name = "fanout";
  fan.parasitics = {r("DRV", "h", 180.0), c("h", 25e-15)};
  for (std::size_t ch = 0; ch < chains; ++ch) {
    fan.sink_node["g" + std::to_string(ch) + "_0"] = "h";
  }
  for (std::size_t ch = 0; ch < chains; ++ch) {
    for (int s = 0; s < 3; ++s) {
      const std::string name =
          "g" + std::to_string(ch) + "_" + std::to_string(s);
      d.add_gate({name, 900.0 + 70.0 * static_cast<double>(ch), 5e-15,
                  4e-12});
      if (s > 0) {
        Net net;
        net.name = name + "_in";
        net.parasitics = {
            r("DRV", "w", 280.0 + 30.0 * static_cast<double>(s)),
            c("w", 35e-15)};
        net.sink_node[name] = "w";
        d.add_net("g" + std::to_string(ch) + "_" + std::to_string(s - 1),
                  net);
      }
    }
  }
  d.add_net("root", fan);
  return d;
}

}  // namespace

// Tracing + the parallel wavefront together: the mutexed span
// accumulators must be race-free under TSan, and the report plus the
// span *counts* must be bit-identical across 1/2/8 threads (the seconds
// fields are wall-clock and are exempt by contract).
TEST(Timing, TracedParallelAnalysisIsRaceFreeAndDeterministic) {
  const bool was_enabled = obs::tracing_enabled();
  obs::set_tracing(true);
  const Design d = wide_multiwave_design(8);

  std::vector<TimingReport> reports;
  for (int threads : {1, 2, 8}) {
    AnalysisOptions opt;
    opt.threads = threads;
    obs::reset_phases();
    reports.push_back(d.analyze(opt));
  }
  obs::set_tracing(was_enabled);
  obs::reset_phases();

  const TimingReport& ref = reports.front();
  for (std::size_t i = 1; i < reports.size(); ++i) {
    const TimingReport& rep = reports[i];
    EXPECT_EQ(ref.critical_delay, rep.critical_delay);
    EXPECT_EQ(ref.critical_path, rep.critical_path);
    EXPECT_EQ(ref.gate_arrival, rep.gate_arrival);
    EXPECT_EQ(ref.levels, rep.levels);
    EXPECT_EQ(ref.awe_stats.factorizations, rep.awe_stats.factorizations);
    EXPECT_EQ(ref.awe_stats.substitutions, rep.awe_stats.substitutions);
    EXPECT_EQ(ref.awe_stats.matches, rep.awe_stats.matches);
    EXPECT_EQ(ref.awe_stats.stages, rep.awe_stats.stages);
    ASSERT_EQ(ref.stages.size(), rep.stages.size());
    for (std::size_t s = 0; s < ref.stages.size(); ++s) {
      EXPECT_EQ(ref.stages[s].driver_gate, rep.stages[s].driver_gate);
      EXPECT_EQ(ref.stages[s].net, rep.stages[s].net);
      ASSERT_EQ(ref.stages[s].sinks.size(), rep.stages[s].sinks.size());
      for (std::size_t k = 0; k < ref.stages[s].sinks.size(); ++k) {
        EXPECT_EQ(ref.stages[s].sinks[k].arrival,
                  rep.stages[s].sinks[k].arrival);
        EXPECT_EQ(ref.stages[s].sinks[k].slew,
                  rep.stages[s].sinks[k].slew);
      }
    }
    // Phase breakdown: identical names and span counts per thread count.
    if (obs::tracing_compiled_in()) {
      ASSERT_EQ(ref.awe_stats.phases.size(), rep.awe_stats.phases.size());
      for (std::size_t p = 0; p < ref.awe_stats.phases.size(); ++p) {
        EXPECT_EQ(ref.awe_stats.phases[p].name,
                  rep.awe_stats.phases[p].name);
        EXPECT_EQ(ref.awe_stats.phases[p].stats.count,
                  rep.awe_stats.phases[p].stats.count);
      }
    }
  }
  if (obs::tracing_compiled_in()) {
    // The taxonomy's timing-layer phases must be present and counted
    // exactly: one timing.stage and one parallel.job per evaluated
    // stage.
    bool saw_stage = false;
    bool saw_job = false;
    for (const auto& p : ref.awe_stats.phases) {
      if (p.name == "timing.stage") {
        saw_stage = true;
        EXPECT_EQ(p.stats.count, ref.awe_stats.stages);
      }
      if (p.name == "parallel.job") {
        saw_job = true;
        EXPECT_EQ(p.stats.count, ref.awe_stats.stages);
      }
    }
    EXPECT_TRUE(saw_stage);
    EXPECT_TRUE(saw_job);
  }
}

}  // namespace awesim::timing
