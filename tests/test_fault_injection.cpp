// Fault-injection harness tests: every rung of the degradation ladder is
// forced to fire deterministically, and the timing analyzer's per-stage
// fault isolation is proved bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/engine.h"
#include "core/fault.h"
#include "la/lu.h"
#include "mna/system.h"
#include "timing/analyzer.h"

// Everything below the injector-API tests needs the probes compiled in;
// an AWESIM_FAULT_INJECTION=OFF build skips those tests instead of
// failing them.
#if AWESIM_FAULT_INJECTION
#define AWESIM_REQUIRE_INJECTION() (void)0
#else
#define AWESIM_REQUIRE_INJECTION() \
  GTEST_SKIP() << "built with AWESIM_FAULT_INJECTION=OFF"
#endif

namespace awesim {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;
using core::ApproxStatus;
using core::DiagCode;
using core::Engine;
using core::EngineOptions;
using core::FaultInjector;
using core::FaultRule;
using core::ScopedFaultInjection;

namespace {

Circuit single_rc(double r = 1e3, double c = 1e-9) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 5.0));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  return ckt;
}

Circuit rc_ladder(int sections, double r = 1e3, double c = 1e-12) {
  Circuit ckt;
  auto prev = ckt.node("in");
  ckt.add_vsource("V1", prev, kGround, Stimulus::step(0.0, 5.0));
  for (int i = 1; i <= sections; ++i) {
    const auto node = ckt.node("n" + std::to_string(i));
    ckt.add_resistor("R" + std::to_string(i), prev, node, r);
    ckt.add_capacitor("C" + std::to_string(i), node, kGround, c);
    prev = node;
  }
  return ckt;
}

bool has_code(const core::Diagnostics& diags, DiagCode code) {
  for (const auto& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

timing::Design chain_design(int gates) {
  timing::Design d;
  for (int i = 1; i <= gates; ++i) {
    d.add_gate({"g" + std::to_string(i), 1e3, 4e-15, 0.0});
  }
  for (int i = 1; i < gates; ++i) {
    timing::Net net;
    net.name = "n" + std::to_string(i);
    net.parasitics = {
        {timing::NetElement::Kind::Resistor, "DRV", "w", 300.0},
        {timing::NetElement::Kind::Capacitor, "w", "0", 30e-15}};
    net.sink_node["g" + std::to_string(i + 1)] = "w";
    d.add_net("g" + std::to_string(i), net);
  }
  d.set_primary_input("g1");
  return d;
}

}  // namespace

// ---------------------------------------------------------------------
// The injector itself.

TEST(FaultInjector, DisarmedProbesNeverFire) {
  FaultInjector::instance().disarm();
  EXPECT_FALSE(core::fault_at("la.lu", "3"));
  EXPECT_FALSE(core::fault_at("anything"));
  EXPECT_EQ(FaultInjector::instance().fired_total(), 0u);
}

TEST(FaultInjector, SpecParsingArmsSitesKeysAndLimits) {
  AWESIM_REQUIRE_INJECTION();
  FaultInjector& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.arm_spec(""));
  ASSERT_TRUE(fi.arm_spec("engine.unstable:2;timing.stage:net1@2"));
  EXPECT_TRUE(fi.enabled());
  EXPECT_TRUE(core::fault_at("engine.unstable", "2"));
  EXPECT_FALSE(core::fault_at("engine.unstable", "3"));
  // The limited rule fires exactly twice.
  EXPECT_TRUE(core::fault_at("timing.stage", "net1"));
  EXPECT_TRUE(core::fault_at("timing.stage", "net1"));
  EXPECT_FALSE(core::fault_at("timing.stage", "net1"));
  EXPECT_EQ(fi.fired("timing.stage"), 2u);
  fi.disarm();
  EXPECT_FALSE(core::fault_at("engine.unstable", "2"));
}

TEST(FaultInjector, WildcardKeyMatchesEverything) {
  AWESIM_REQUIRE_INJECTION();
  ScopedFaultInjection scoped({{"engine.unstable", "*", -1}});
  EXPECT_TRUE(core::fault_at("engine.unstable", "1"));
  EXPECT_TRUE(core::fault_at("engine.unstable", "7"));
  EXPECT_FALSE(core::fault_at("engine.shift", "1"));
}

// ---------------------------------------------------------------------
// Probes in the linear-algebra and MNA layers.

TEST(FaultInjection, LuSingularPivot) {
  AWESIM_REQUIRE_INJECTION();
  ScopedFaultInjection scoped({{"la.lu", "2", -1}});
  la::RealMatrix ident(2, 2);
  ident(0, 0) = 1.0;
  ident(1, 1) = 1.0;
  EXPECT_THROW(la::Lu<double>{ident}, la::SingularMatrixError);
  // Other dimensions are untouched.
  la::RealMatrix three(3, 3);
  three(0, 0) = three(1, 1) = three(2, 2) = 1.0;
  EXPECT_NO_THROW(la::Lu<double>{three});
}

TEST(FaultInjection, MnaFactorFailureCarriesDiagnostic) {
  AWESIM_REQUIRE_INJECTION();
  ScopedFaultInjection scoped({{"mna.factor", "*", -1}});
  Circuit ckt = single_rc();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  try {
    engine.approximate(ckt.find_node("out"), opt);
    FAIL() << "expected SingularSystemError";
  } catch (const mna::SingularSystemError& e) {
    const core::Diagnostic& d = e.diagnostic();
    EXPECT_EQ(d.severity, core::Severity::Fatal);
    // The forced pivot hits a circuit with no real floating nodes, so the
    // taxonomy reports the pivot itself.
    EXPECT_EQ(d.code, DiagCode::SingularPivot);
  }
}

// ---------------------------------------------------------------------
// The degradation ladder, rung by rung.

TEST(FaultInjection, WindowShiftRung) {
  AWESIM_REQUIRE_INJECTION();
  // Force the eq. 24 window unstable at every order; the Section 3.3
  // shifted window (not faulted) must rescue the match.
  ScopedFaultInjection scoped({{"engine.unstable", "*", -1}});
  Circuit ckt = rc_ladder(4);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  EXPECT_EQ(result.status, ApproxStatus::WindowShifted);
  EXPECT_TRUE(result.stable);
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::WindowShifted));
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::InjectedFault));
  EXPECT_GE(engine.stats().window_shifts, 1u);
}

TEST(FaultInjection, OrderStepDownRung) {
  AWESIM_REQUIRE_INJECTION();
  // Kill both windows at q=3 only: the ladder must land on a stable
  // q=2 model and say so.
  ScopedFaultInjection scoped(
      {{"engine.unstable", "3", -1}, {"engine.shift", "3", -1}});
  Circuit ckt = rc_ladder(4);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 3;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  EXPECT_EQ(result.status, ApproxStatus::OrderReduced);
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.order_used, 2);
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::UnstablePoles));
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::OrderReduced));
  EXPECT_GE(engine.stats().order_stepdowns, 1u);
  EXPECT_GE(engine.stats().degradations, 1u);
}

TEST(FaultInjection, ElmoreFallbackRung) {
  AWESIM_REQUIRE_INJECTION();
  // Kill both windows at every order: only the direct Elmore bound is
  // left.  On a single RC it is the *exact* answer, so the rung is easy
  // to verify analytically.
  ScopedFaultInjection scoped(
      {{"engine.unstable", "*", -1}, {"engine.shift", "*", -1}});
  Circuit ckt = single_rc(1e3, 1e-9);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  EXPECT_EQ(result.status, ApproxStatus::ElmoreFallback);
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.order_used, 1);
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::ElmoreFallback));
  const auto& atoms = result.approximation.atoms();
  ASSERT_EQ(atoms.size(), 2u);
  ASSERT_EQ(atoms[1].terms.size(), 1u);
  const double tau = 1e3 * 1e-9;
  EXPECT_NEAR(atoms[1].terms[0].pole.real(), -1.0 / tau, 1e-3 / tau);
  EXPECT_NEAR(result.approximation.final_value(), 5.0, 1e-9);
  EXPECT_GE(engine.stats().elmore_fallbacks, 1u);
  EXPECT_TRUE(std::isnan(result.error_estimate));
}

TEST(FaultInjection, FailedRungOnNaNMoments) {
  AWESIM_REQUIRE_INJECTION();
  // Poison the moment window itself: nothing on the ladder can match,
  // and the result degrades to the affine (DC) part, flagged Failed.
  ScopedFaultInjection scoped({{"engine.moments", "out", -1}});
  Circuit ckt = single_rc();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  EXPECT_EQ(result.status, ApproxStatus::Failed);
  EXPECT_EQ(result.order_used, 0);
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::NonFiniteValue));
  EXPECT_TRUE(has_code(result.diagnostics, DiagCode::InjectedFault));
  // The degraded answer is still finite everywhere (the DC part).
  EXPECT_TRUE(std::isfinite(result.approximation.value(1e-6)));
  EXPECT_GE(engine.stats().failures, 1u);
}

TEST(FaultInjection, NaNResidueIsCaughtAndDegraded) {
  AWESIM_REQUIRE_INJECTION();
  // A non-finite residue must never escape into a "stable" model; with
  // the shifted window also poisoned the ladder steps down.
  ScopedFaultInjection scoped(
      {{"engine.residue", "2", -1}, {"engine.shift", "2", -1}});
  Circuit ckt = rc_ladder(4);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  EXPECT_TRUE(result.stable);
  EXPECT_NE(result.status, ApproxStatus::Ok);
  for (const auto& atom : result.approximation.atoms()) {
    for (const auto& term : atom.terms) {
      EXPECT_TRUE(std::isfinite(term.residue.real()));
      EXPECT_TRUE(std::isfinite(term.pole.real()));
    }
  }
}

TEST(FaultInjection, HankelProbeForcesInternalOrderReduction) {
  AWESIM_REQUIRE_INJECTION();
  // Rejecting the q=3 Hankel solve inside match_moments makes the match
  // itself deliver a lower order -- the pre-ladder reduction path.
  ScopedFaultInjection scoped({{"pade.hankel", "3", -1}});
  Circuit ckt = rc_ladder(6);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 3;
  opt.estimate_error = false;
  const auto result = engine.approximate(ckt.find_node("n6"), opt);
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.order_used, 2);
}

TEST(FaultInjection, LadderDisabledReturnsRawInstability) {
  AWESIM_REQUIRE_INJECTION();
  // EngineOptions::degrade = false restores the legacy contract: the
  // unstable match comes back unmodified, flagged via Result::stable.
  ScopedFaultInjection scoped(
      {{"engine.unstable", "*", -1}, {"engine.shift", "*", -1}});
  Circuit ckt = single_rc();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  opt.degrade = false;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  EXPECT_FALSE(result.stable);
  EXPECT_EQ(result.status, ApproxStatus::Ok);
}

TEST(FaultInjection, LadderIsDeterministic) {
  AWESIM_REQUIRE_INJECTION();
  // Two identical runs under identical injection produce bit-identical
  // results -- the rules are pure functions of (site, key).
  ScopedFaultInjection scoped(
      {{"engine.unstable", "3", -1}, {"engine.shift", "3", -1}});
  Circuit ckt = rc_ladder(5);
  EngineOptions opt;
  opt.order = 3;
  Engine e1(ckt);
  Engine e2(ckt);
  const auto r1 = e1.approximate(ckt.find_node("n5"), opt);
  const auto r2 = e2.approximate(ckt.find_node("n5"), opt);
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(r1.order_used, r2.order_used);
  EXPECT_EQ(r1.diagnostics.size(), r2.diagnostics.size());
  for (double t : {1e-10, 1e-9, 5e-9}) {
    EXPECT_EQ(r1.approximation.value(t), r2.approximation.value(t));
  }
}

// ---------------------------------------------------------------------
// Timing-analyzer fault isolation.

TEST(FaultInjection, FailingStageDegradesToElmoreAndAnalysisContinues) {
  AWESIM_REQUIRE_INJECTION();
  ScopedFaultInjection scoped({{"timing.stage", "n1", -1}});
  timing::Design d = chain_design(4);
  const auto report = d.analyze();
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.failed_stages, 1u);
  EXPECT_TRUE(has_code(report.diagnostics, DiagCode::StageFailed));
  for (const auto& st : report.stages) {
    if (st.net == "n1") {
      EXPECT_TRUE(st.failed);
      EXPECT_TRUE(st.degraded);
    } else {
      EXPECT_FALSE(st.failed);
    }
    for (const auto& sink : st.sinks) {
      EXPECT_TRUE(std::isfinite(sink.arrival));
      EXPECT_GT(sink.stage_delay, 0.0);
    }
  }
  // Downstream arrivals kept accumulating through the degraded stage.
  EXPECT_GT(report.gate_arrival.at("g4"), report.gate_arrival.at("g3"));
  EXPECT_GT(report.gate_arrival.at("g3"), report.gate_arrival.at("g2"));
  EXPECT_GE(report.awe_stats.failures, 1u);
}

TEST(FaultInjection, PoolJobFaultIsIsolatedToItsStage) {
  AWESIM_REQUIRE_INJECTION();
  ScopedFaultInjection scoped({{"parallel.job", "n2", -1}});
  timing::Design d = chain_design(4);
  const auto report = d.analyze();
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.failed_stages, 1u);
  for (const auto& st : report.stages) {
    EXPECT_EQ(st.failed, st.net == "n2");
  }
}

TEST(FaultInjection, DegradedReportIsIdenticalAcrossThreadCounts) {
  AWESIM_REQUIRE_INJECTION();
  // The whole point of keying injection on (site, key): a faulted run
  // must stay bit-identical whether stages run serially or on a pool.
  // The design fans out so each wavefront holds several concurrent jobs.
  ScopedFaultInjection scoped(
      {{"timing.stage", "n2", -1}, {"engine.unstable", "*", -1}});
  timing::Design d;
  for (int i = 1; i <= 5; ++i) {
    d.add_gate({"g" + std::to_string(i), 1e3, 4e-15, 0.0});
  }
  for (int i = 1; i <= 3; ++i) {
    timing::Net net;
    net.name = "n" + std::to_string(i);
    net.parasitics = {
        {timing::NetElement::Kind::Resistor, "DRV", "w", 200.0 * i},
        {timing::NetElement::Kind::Capacitor, "w", "0", 20e-15 * i}};
    net.sink_node["g" + std::to_string(i + 1)] = "w";
    d.add_net("g1", net);
  }
  for (int i = 2; i <= 4; ++i) {
    timing::Net net;
    net.name = "m" + std::to_string(i);
    net.parasitics = {
        {timing::NetElement::Kind::Resistor, "DRV", "w", 300.0},
        {timing::NetElement::Kind::Capacitor, "w", "0", 25e-15}};
    net.sink_node["g5"] = "w";
    d.add_net("g" + std::to_string(i), net);
  }
  d.set_primary_input("g1");
  timing::AnalysisOptions aopt;
  aopt.threads = 1;
  const auto serial = d.analyze(aopt);
  for (int threads : {2, 4}) {
    aopt.threads = threads;
    const auto parallel = d.analyze(aopt);
    EXPECT_EQ(parallel.critical_delay, serial.critical_delay);
    EXPECT_EQ(parallel.failed_stages, serial.failed_stages);
    EXPECT_EQ(parallel.degraded_stages, serial.degraded_stages);
    EXPECT_EQ(parallel.diagnostics.size(), serial.diagnostics.size());
    ASSERT_EQ(parallel.stages.size(), serial.stages.size());
    for (std::size_t i = 0; i < serial.stages.size(); ++i) {
      EXPECT_EQ(parallel.stages[i].net, serial.stages[i].net);
      EXPECT_EQ(parallel.stages[i].failed, serial.stages[i].failed);
      ASSERT_EQ(parallel.stages[i].sinks.size(),
                serial.stages[i].sinks.size());
      for (std::size_t s = 0; s < serial.stages[i].sinks.size(); ++s) {
        EXPECT_EQ(parallel.stages[i].sinks[s].arrival,
                  serial.stages[i].sinks[s].arrival);
        EXPECT_EQ(parallel.stages[i].sinks[s].slew,
                  serial.stages[i].sinks[s].slew);
      }
    }
    for (const auto& [gate, arrival] : serial.gate_arrival) {
      EXPECT_EQ(parallel.gate_arrival.at(gate), arrival);
    }
  }
}

}  // namespace awesim
