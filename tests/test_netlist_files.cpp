// The shipped netlist files in netlists/: they must parse, match the
// programmatic paper circuits, and analyze end to end.  Also exercises the
// writer round-trip at the whole-circuit level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "netlist/parser.h"

#ifndef AWESIM_NETLIST_DIR
#define AWESIM_NETLIST_DIR "netlists"
#endif

namespace awesim {

namespace {

std::string netlist_path(const std::string& name) {
  return std::string(AWESIM_NETLIST_DIR) + "/" + name;
}

/// Parse a shipped file through the error-collecting API, asserting it
/// is clean (the throwing parse_file() shim is deprecated).
circuit::Circuit parse_file_ok(const std::string& path) {
  netlist::ParseResult result = netlist::parse_file_collect(path);
  EXPECT_TRUE(result.ok()) << core::to_string(result.diagnostics);
  return std::move(result.circuit.value());
}

circuit::Circuit parse_ok(const std::string& text) {
  netlist::ParseResult result = netlist::parse_collect(text);
  EXPECT_TRUE(result.ok()) << core::to_string(result.diagnostics);
  return std::move(result.circuit.value());
}

}  // namespace

TEST(NetlistFiles, Fig4MatchesProgrammaticCircuit) {
  const auto file_ckt = parse_file_ok(netlist_path("fig4_rc_tree.sp"));
  auto code_ckt = circuits::fig4_rc_tree();
  core::Engine from_file(file_ckt);
  core::Engine from_code(code_ckt);
  EXPECT_NEAR(from_file.elmore_delay(file_ckt.find_node("n4")),
              from_code.elmore_delay(code_ckt.find_node("n4")), 1e-12);
  core::EngineOptions opt;
  opt.order = 2;
  const auto a = from_file.approximate(file_ckt.find_node("n4"), opt);
  const auto b = from_code.approximate(code_ckt.find_node("n4"), opt);
  for (double t : {0.1e-3, 0.5e-3, 2e-3}) {
    EXPECT_NEAR(a.approximation.value(t), b.approximation.value(t), 1e-9);
  }
}

TEST(NetlistFiles, Fig25MatchesProgrammaticPoles) {
  const auto file_ckt =
      parse_file_ok(netlist_path("fig25_rlc_ladder.sp"));
  auto code_ckt = circuits::fig25_rlc_ladder();
  core::Engine from_file(file_ckt);
  core::Engine from_code(code_ckt);
  const auto pa = from_file.actual_poles();
  const auto pb = from_code.actual_poles();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(std::abs(pa[i] - pb[i]), 0.0, 1e-3 * std::abs(pb[i]))
        << "pole " << i;
  }
}

TEST(NetlistFiles, CoupledBusAnalyzesEndToEnd) {
  const auto ckt = parse_file_ok(netlist_path("coupled_bus.sp"));
  // Subcircuit expansion happened: the wire segments exist.
  ASSERT_NE(ckt.find_element("X1.Rw"), nullptr);
  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 3;
  // Victim far end: starts and ends quiet, bumps in between.
  const auto victim = engine.approximate(ckt.find_node("v2"), opt);
  EXPECT_TRUE(victim.stable);
  EXPECT_NEAR(victim.approximation.final_value(), 0.0, 1e-9);
  double peak = 0.0;
  for (int i = 0; i <= 2000; ++i) {
    peak = std::max(peak,
                    std::abs(victim.approximation.value(10e-9 * i / 2000.0)));
  }
  EXPECT_GT(peak, 0.01);  // visible coupled noise
  EXPECT_LT(peak, 2.5);   // but bounded well under the swing
}

TEST(NetlistFiles, WriterRoundTripsTheFig25File) {
  const auto original =
      parse_file_ok(netlist_path("fig25_rlc_ladder.sp"));
  const auto reparsed = parse_ok(netlist::write(original));
  core::Engine a(original);
  core::Engine b(reparsed);
  const auto pa = a.actual_poles();
  const auto pb = b.actual_poles();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(std::abs(pa[i] - pb[i]), 0.0, 1e-6 * std::abs(pb[i]));
  }
}

}  // namespace awesim
