// Tree/link analysis (Section IV): explicit solves for RC trees, minimal
// link systems for resistor loops, equivalence with the MNA moments.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/paper_circuits.h"
#include "core/moments.h"
#include "mna/system.h"
#include "rctree/rctree.h"
#include "treelink/treelink.h"

namespace awesim::treelink {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

namespace {

// MNA homogeneous moments at all nodes, for cross-checking.
std::vector<la::RealVector> mna_moments(const Circuit& ckt, int count) {
  mna::MnaSystem mna(ckt);
  // Step to final source values; equilibrium start + IC overrides.
  la::RealVector xh0(mna.dim(), 0.0);
  const auto xb = mna.solve(mna.rhs_at(1e30));
  const auto& x0 = mna.initial_state();
  for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = x0[i] - xb[i];
  core::MomentSequence seq(mna, xh0);
  std::vector<la::RealVector> out;
  const std::size_t nodes = ckt.node_count() - 1;
  for (int j = -1; j + 1 < count; ++j) {
    la::RealVector v(nodes);
    for (std::size_t n = 0; n < nodes; ++n) v[n] = seq.mu(j)[n];
    out.push_back(std::move(v));
  }
  return out;
}

void expect_moments_match(const Circuit& ckt, int count, double rel_tol) {
  TreeLinkSystem tl(ckt);
  const auto a = tl.moments(count);
  const auto b = mna_moments(ckt, count);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    double scale = 0.0;
    for (const double v : b[i]) scale = std::max(scale, std::abs(v));
    for (std::size_t n = 0; n < a[i].size(); ++n) {
      EXPECT_NEAR(a[i][n], b[i][n], rel_tol * std::max(scale, 1e-300))
          << "moment " << i << " node " << n;
    }
  }
}

}  // namespace

TEST(TreeLink, RcTreeIsFullyExplicit) {
  auto ckt = circuits::fig4_rc_tree();
  TreeLinkSystem tl(ckt);
  // No resistor loops: zero unknowns, every solve is a pure tree walk.
  EXPECT_EQ(tl.link_unknowns(), 0u);
  expect_moments_match(ckt, 6, 1e-9);
}

TEST(TreeLink, GroundedResistorNeedsExactlyOneUnknown) {
  // The paper's Fig. 9-11 claim: the grounded resistor forms one resistor
  // loop, so exactly one link current must be solved for.
  auto ckt = circuits::fig9_grounded_resistor();
  TreeLinkSystem tl(ckt);
  EXPECT_EQ(tl.link_unknowns(), 1u);
  expect_moments_match(ckt, 6, 1e-9);
}

TEST(TreeLink, Fig16StiffTreeMatchesMna) {
  auto ckt = circuits::fig16_mos_interconnect();
  TreeLinkSystem tl(ckt);
  EXPECT_EQ(tl.link_unknowns(), 0u);
  expect_moments_match(ckt, 8, 1e-9);
}

TEST(TreeLink, FloatingCapacitorCircuitStillSolvable) {
  // Fig. 22 has a floating coupling capacitor; caps are links (current
  // sources), so the tree/link formulation handles it with the victim's
  // leak resistor keeping the tree grounded.
  auto ckt = circuits::fig22_floating_cap();
  TreeLinkSystem tl(ckt);
  expect_moments_match(ckt, 6, 1e-9);
}

TEST(TreeLink, ResistorMeshMatchesMna) {
  // Several resistor loops: bridge-like mesh.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto c = ckt.node("c");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 2.0));
  ckt.add_resistor("R1", in, a, 100.0);
  ckt.add_resistor("R2", in, b, 150.0);
  ckt.add_resistor("R3", a, b, 80.0);
  ckt.add_resistor("R4", a, c, 120.0);
  ckt.add_resistor("R5", b, c, 90.0);
  ckt.add_resistor("R6", c, kGround, 200.0);
  ckt.add_capacitor("C1", a, kGround, 1e-12);
  ckt.add_capacitor("C2", b, kGround, 2e-12);
  ckt.add_capacitor("C3", c, kGround, 1.5e-12);
  TreeLinkSystem tl(ckt);
  EXPECT_EQ(tl.link_unknowns(), 3u);  // 6 resistors, 3 in tree
  expect_moments_match(ckt, 6, 1e-9);
}

TEST(TreeLink, ChargeSharingWithIcs) {
  // Nonequilibrium ICs flow through the x0 machinery identically to MNA.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto m = ckt.node("m");
  const auto o = ckt.node("o");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 5.0));
  ckt.add_resistor("R1", in, m, 1e3);
  ckt.add_resistor("R2", m, o, 2e3);
  ckt.add_capacitor("C1", m, kGround, 1e-9, 2.0);
  ckt.add_capacitor("C2", o, kGround, 1e-9);
  expect_moments_match(ckt, 5, 1e-9);
}

TEST(TreeLink, ElmoreFromTreeLinkMatchesTreeWalk) {
  // mu_0 / mu_{-1} must equal the rctree tree-walk Elmore delays.
  auto tree = rctree::random_tree(25, 77);
  auto ckt = rctree::to_circuit(tree, Stimulus::step(0.0, 1.0));
  TreeLinkSystem tl(ckt);
  const auto mus = tl.moments(2);
  const auto extracted = rctree::extract(ckt);
  ASSERT_TRUE(extracted.has_value());
  const auto elmore = rctree::elmore_delays(*extracted);
  for (std::size_t v = 1; v < extracted->size(); ++v) {
    const auto node = extracted->circuit_node[v];
    const std::size_t idx = static_cast<std::size_t>(node) - 1;
    ASSERT_GT(mus[0][idx], 0.0);
    EXPECT_NEAR(-mus[1][idx] / mus[0][idx], elmore[v],
                1e-9 * elmore[v] + 1e-20)
        << "tree node " << v;
  }
}

TEST(TreeLink, RejectsUnsupportedElements) {
  {
    auto ckt = circuits::fig25_rlc_ladder();  // inductors
    EXPECT_THROW(TreeLinkSystem{ckt}, std::invalid_argument);
  }
  {
    Circuit ckt;
    const auto a = ckt.node("a");
    ckt.add_isource("I1", kGround, a, Stimulus::dc(1.0));
    ckt.add_resistor("R1", a, kGround, 1.0);
    EXPECT_THROW(TreeLinkSystem{ckt}, std::invalid_argument);
  }
}

TEST(TreeLink, RejectsSourceLoop) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Stimulus::dc(1.0));
  ckt.add_vsource("V2", a, kGround, Stimulus::dc(1.0));
  ckt.add_resistor("R1", a, kGround, 1.0);
  EXPECT_THROW(TreeLinkSystem{ckt}, std::invalid_argument);
}

TEST(TreeLink, RejectsFloatingSubcircuit) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto fl = ckt.node("float");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_capacitor("C1", in, fl, 1e-12);
  ckt.add_capacitor("C2", fl, kGround, 1e-12);
  EXPECT_THROW(TreeLinkSystem{ckt}, std::invalid_argument);
}

TEST(TreeLink, DcSolveArgumentValidation) {
  auto ckt = circuits::fig4_rc_tree();
  TreeLinkSystem tl(ckt);
  EXPECT_THROW(tl.dc_solve({}, {5.0}), std::invalid_argument);
  EXPECT_THROW(tl.moments(0), std::invalid_argument);
}

}  // namespace awesim::treelink
