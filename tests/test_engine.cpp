// End-to-end AWE engine tests on analytically solvable circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"

namespace awesim {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;
using core::Engine;
using core::EngineOptions;

namespace {

// Single RC: V -- R -- out -- C -- gnd.  Step v0 -> v1.
Circuit single_rc(double r, double c, double v0, double v1) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(v0, v1));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  return ckt;
}

}  // namespace

TEST(Engine, SingleRcFirstOrderIsExact) {
  // One pole circuit: AWE q=1 must be *exact*: p = -1/RC, v = 5(1-e^-t/RC).
  Circuit ckt = single_rc(1e3, 1e-9, 0.0, 5.0);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(ckt.find_node("out"), opt);

  ASSERT_TRUE(result.stable);
  EXPECT_EQ(result.order_used, 1);
  const double tau = 1e3 * 1e-9;
  // Check the waveform against the analytic response at several times.
  for (double t : {0.0, 0.5 * tau, tau, 2.0 * tau, 5.0 * tau}) {
    const double exact = 5.0 * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(result.approximation.value(t), exact, 1e-9) << "t=" << t;
  }
  EXPECT_NEAR(result.approximation.final_value(), 5.0, 1e-9);
}

TEST(Engine, SingleRcPoleAndResidue) {
  Circuit ckt = single_rc(2e3, 3e-12, 0.0, 1.0);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  const auto& atoms = result.approximation.atoms();
  // Base pseudo-atom + the t=0 atom.
  ASSERT_EQ(atoms.size(), 2u);
  ASSERT_EQ(atoms[1].terms.size(), 1u);
  const double tau = 2e3 * 3e-12;
  EXPECT_NEAR(atoms[1].terms[0].pole.real(), -1.0 / tau, 1e-3 / tau);
  EXPECT_NEAR(atoms[1].terms[0].pole.imag(), 0.0, 1e-9 / tau);
  EXPECT_NEAR(atoms[1].terms[0].residue.real(), -1.0, 1e-9);
}

TEST(Engine, FallingStepWorks) {
  Circuit ckt = single_rc(1e3, 1e-9, 5.0, 0.0);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  const double tau = 1e-6;
  EXPECT_NEAR(result.approximation.value(0.0), 5.0, 1e-9);
  EXPECT_NEAR(result.approximation.value(tau), 5.0 * std::exp(-1.0), 1e-6);
  EXPECT_NEAR(result.approximation.final_value(), 0.0, 1e-9);
}

TEST(Engine, ElmoreDelayMatchesHandComputation) {
  // Fig. 4 tree designed so T_D(n4) = 0.6 ms (eq. 50 by hand).
  auto ckt = circuits::fig4_rc_tree();
  Engine engine(ckt);
  EXPECT_NEAR(engine.elmore_delay(ckt.find_node("n4")), 0.6e-3, 1e-9);
  // And at n2: R1*(C1+..+C4) + R2*C2 = 1k*300n + 1k*50n = 0.35 ms.
  EXPECT_NEAR(engine.elmore_delay(ckt.find_node("n2")), 0.35e-3, 1e-9);
}

TEST(Engine, FirstOrderPoleIsReciprocalElmoreOnRcTree) {
  // The paper's Section IV claim: q=1 AWE == Elmore methods.
  auto ckt = circuits::fig4_rc_tree();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  const auto& terms = result.approximation.atoms()[1].terms;
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_NEAR(terms[0].pole.real(), -1.0 / 0.6e-3, 1.0);
  EXPECT_NEAR(terms[0].residue.real(), -5.0, 1e-6);
}

TEST(Engine, SecondOrderMatchesFirstFourMoments) {
  auto ckt = circuits::fig4_rc_tree();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  ASSERT_TRUE(result.stable);
  EXPECT_EQ(result.order_used, 2);
  const auto& match = result.approximation.atoms()[1].match;
  EXPECT_LT(match.moment_residual, 1e-9);
}

TEST(Engine, FinalValueExactWithGroundedResistor) {
  // Fig. 9: steady state is a resistive divider: 5 * 4k/(3k+4k) at n4
  // (path R1+R3+R4 = 3k against R5 = 4k).
  auto ckt = circuits::fig9_grounded_resistor();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  EXPECT_NEAR(result.approximation.final_value(), 5.0 * 4.0 / 7.0, 1e-9);
}

TEST(Engine, ErrorEstimateDecreasesWithOrder) {
  auto ckt = circuits::fig16_mos_interconnect();
  Engine engine(ckt);
  double last = 1e9;
  for (int q = 1; q <= 3; ++q) {
    EngineOptions opt;
    opt.order = q;
    const auto result = engine.approximate(ckt.find_node("n7"), opt);
    if (q > 1) {
      EXPECT_LT(result.error_estimate, last) << "q=" << q;
    }
    last = result.error_estimate;
  }
  EXPECT_LT(last, 0.02);  // third order is plenty for this tree
}

TEST(Engine, AutoOrderEscalatesUntilTolerance) {
  auto ckt = circuits::fig25_rlc_ladder();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 1;
  opt.auto_order = true;
  opt.error_tolerance = 0.01;
  opt.max_order = 6;
  const auto result = engine.approximate(ckt.find_node("n3"), opt);
  EXPECT_TRUE(result.stable);
  // The underdamped ladder needs at least 4 poles (the paper's Fig. 26).
  EXPECT_GE(result.order_used, 4);
  EXPECT_LE(result.error_estimate, 0.01);
}

TEST(Engine, ActualPolesOfSingleRc) {
  Circuit ckt = single_rc(1e3, 1e-9, 0.0, 5.0);
  Engine engine(ckt);
  const auto poles = engine.actual_poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -1e6, 1.0);
}

TEST(Engine, ActualPolesOfRlcSeries) {
  // Series RLC: R=2, L=1, C=0.25 -> s^2 + 2s + 4 -> -1 +- sqrt(3) i.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, mid, 2.0);
  ckt.add_inductor("L1", mid, out, 1.0);
  ckt.add_capacitor("C1", out, kGround, 0.25);
  Engine engine(ckt);
  auto poles = engine.actual_poles();
  ASSERT_EQ(poles.size(), 2u);
  for (const auto& p : poles) {
    EXPECT_NEAR(p.real(), -1.0, 1e-8);
    EXPECT_NEAR(std::abs(p.imag()), std::sqrt(3.0), 1e-8);
  }
}

TEST(Engine, RlcSecondOrderIsExactOnTwoPoleCircuit) {
  // Series RLC has exactly 2 poles; AWE q=2 must nail them.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, mid, 2.0);
  ckt.add_inductor("L1", mid, out, 1.0);
  ckt.add_capacitor("C1", out, kGround, 0.25);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  const auto& terms = result.approximation.atoms()[1].terms;
  ASSERT_EQ(terms.size(), 2u);
  for (const auto& t : terms) {
    EXPECT_NEAR(t.pole.real(), -1.0, 1e-6);
    EXPECT_NEAR(std::abs(t.pole.imag()), std::sqrt(3.0), 1e-6);
  }
}

TEST(Engine, RequestingTooHighOrderDegradesGracefully) {
  // Single-pole circuit, q=3 requested: the Hankel matrix is rank 1, so
  // the match must come back at order 1 and still be exact.
  Circuit ckt = single_rc(1e3, 1e-9, 0.0, 5.0);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 3;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  EXPECT_EQ(result.order_used, 1);
  const double tau = 1e-6;
  EXPECT_NEAR(result.approximation.value(tau), 5.0 * (1.0 - std::exp(-1.0)),
              1e-6);
}

TEST(Engine, DcOnlyCircuitHasConstantResponse) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::dc(3.0));
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, kGround, 1e-9);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("out"), opt);
  EXPECT_NEAR(result.approximation.value(0.0), 3.0, 1e-12);
  EXPECT_NEAR(result.approximation.value(1.0), 3.0, 1e-12);
}

TEST(Engine, ChargeSharingBetweenCapacitors) {
  // Two caps joined by a resistor, no source: C1 at 4 V dumps into C2 at
  // 0 V.  Final value = Q/(C1+C2) = 4*1n/3n.  Needs the gmin fallback
  // because G alone is singular (no DC path to ground).
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_resistor("R1", a, b, 1e3);
  ckt.add_capacitor("C1", a, kGround, 1e-9, 4.0);
  ckt.add_capacitor("C2", b, kGround, 2e-9);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(b, opt);
  EXPECT_TRUE(result.used_gmin);
  // Equalization tau = R * (C1*C2)/(C1+C2) = 1e3 * 2/3 n = 0.667 us.
  const double expected_final = 4.0 / 3.0;
  EXPECT_NEAR(result.approximation.value(20e-6), expected_final, 1e-3);
  EXPECT_NEAR(result.approximation.value(0.0), 0.0, 1e-6);
}

TEST(Engine, ThrowsOnGroundProbe) {
  Circuit ckt = single_rc(1.0, 1.0, 0.0, 1.0);
  Engine engine(ckt);
  EngineOptions opt;
  EXPECT_THROW(engine.approximate(kGround, opt), std::invalid_argument);
}

TEST(Engine, ThrowsOnBadOrder) {
  Circuit ckt = single_rc(1.0, 1.0, 0.0, 1.0);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 0;
  EXPECT_THROW(engine.approximate(ckt.find_node("out"), opt),
               std::invalid_argument);
}


TEST(Engine, SettlingAreaEqualsMinusElmoreTimesSwing) {
  // For a step response, int (v - v_final) dt = -V * T_D exactly
  // (the Elmore delay is the first moment).
  auto ckt = circuits::fig4_rc_tree();
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  const double elmore = engine.elmore_delay(ckt.find_node("n4"));
  EXPECT_NEAR(result.approximation.settling_area(), -5.0 * elmore,
              1e-9 * 5.0 * elmore);
}

TEST(Engine, SettlingAreaWithRampInput) {
  // Finite rise time: the area deficit grows by half the rise time
  // (the centroid of the two-ramp input shifts by rise/2).
  circuits::Drive drive;
  drive.rise_time = 1e-3;
  auto ckt = circuits::fig4_rc_tree(drive);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(ckt.find_node("n4"), opt);
  const double elmore = 0.6e-3;
  EXPECT_NEAR(result.approximation.settling_area(),
              -5.0 * (elmore + 0.5e-3), 1e-6);
}

TEST(Engine, SettlingAreaIsChargeConservationExact) {
  // C1 (charged to 4 V) equalizes into C2 and then everything leaks out
  // through R_leak at node b.  Every coulomb of the initial charge
  // Q0 = 4V * 1nF exits through R_leak, so int v_b dt = R_leak * Q0
  // exactly -- and settling_area() is closed-form exact by m_0 matching.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_resistor("R1", a, b, 1e3);
  ckt.add_capacitor("C1", a, kGround, 1e-9, 4.0);
  ckt.add_capacitor("C2", b, kGround, 2e-9);
  ckt.add_resistor("Rleak", b, kGround, 1e6);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;  // two modes: equalization + leak
  const auto result = engine.approximate(b, opt);
  EXPECT_FALSE(result.used_gmin);
  const double expected = 1e6 * 4.0 * 1e-9;
  EXPECT_NEAR(result.approximation.settling_area(), expected,
              1e-6 * expected);
}

}  // namespace awesim
