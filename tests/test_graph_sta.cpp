// Differential tests: the explicit TimingGraph against the legacy
// levelized wavefront.  The graph re-propagates arrival times from arc
// delays -- it does not copy the analyzer's map -- so agreement here is
// a real second opinion, and the contract is *bitwise* equality: same
// arrivals at 1/2/8 threads, warm or cold, and slack == RAT - AT at
// every pin by construction.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/fault.h"
#include "timing/graph.h"
#include "timing/paths.h"
#include "timing/session.h"

namespace awesim::timing {

namespace {

NetElement r(const std::string& a, const std::string& b, double v) {
  return {NetElement::Kind::Resistor, a, b, v};
}
NetElement c(const std::string& a, double v) {
  return {NetElement::Kind::Capacitor, a, "0", v};
}

// Two parallel chains of different speed reconverging on one sink gate
// that drives a design-output port: multiple waves, real fanin max at
// "join", and a Port endpoint.
Design reconvergent_design() {
  Design d;
  d.add_gate({"src", 600.0, 4e-15, 0.0});
  d.set_primary_input("src");
  Net fan;
  fan.name = "fan";
  fan.parasitics = {r("DRV", "h", 150.0), c("h", 20e-15)};
  fan.sink_node["fast0"] = "h";
  fan.sink_node["slow0"] = "h";
  d.add_net("src", fan);
  const struct {
    const char* prefix;
    double wire_r;
    double wire_c;
  } chains[] = {{"fast", 200.0, 25e-15}, {"slow", 900.0, 90e-15}};
  for (const auto& ch : chains) {
    for (int s = 0; s < 2; ++s) {
      d.add_gate({ch.prefix + std::to_string(s), 800.0, 5e-15, 3e-12});
    }
    Net hop;
    hop.name = std::string(ch.prefix) + "_hop";
    hop.parasitics = {r("DRV", "w", ch.wire_r), c("w", ch.wire_c)};
    hop.sink_node[ch.prefix + std::to_string(1)] = "w";
    d.add_net(ch.prefix + std::to_string(0), hop);
    Net into_join;
    into_join.name = std::string(ch.prefix) + "_join";
    into_join.parasitics = {r("DRV", "w", ch.wire_r), c("w", ch.wire_c)};
    into_join.sink_node["join"] = "w";
    d.add_net(ch.prefix + std::to_string(1), into_join);
  }
  d.add_gate({"join", 1e3, 6e-15, 5e-12});
  Net out;
  out.name = "out";
  out.parasitics = {r("DRV", "w", 300.0), c("w", 40e-15)};
  out.sink_node["OUT"] = "w";  // no such gate: a design-output port
  d.add_net("join", out);
  return d;
}

}  // namespace

TEST(GraphSta, ArrivalsMatchLegacyWavefrontBitwiseAcrossThreads) {
  const Design d = reconvergent_design();
  std::vector<TimingReport> reports;
  for (int threads : {1, 2, 8}) {
    AnalysisOptions opt;
    opt.threads = threads;
    reports.push_back(d.analyze(opt));
  }
  for (const TimingReport& report : reports) {
    const TimingGraph graph = TimingGraph::build(report);
    // Re-propagated arrivals equal the wavefront's map exactly -- not
    // approximately: the graph performs the same `arrival + delay` sums
    // and its max over fanin selects among the same operands.
    for (const auto& [gate, at] : report.gate_arrival) {
      EXPECT_EQ(graph.arrival_at(gate), at) << gate;
    }
    // The port endpoint sees the critical delay.
    const std::size_t out = graph.find("OUT");
    ASSERT_NE(out, TimingGraph::npos);
    EXPECT_EQ(graph.nodes()[out].arrival, report.critical_delay);
    EXPECT_EQ(graph.max_arrival(), report.critical_delay);
  }
  // And the graphs of different thread counts are bitwise the same
  // graph: node-for-node, arc-for-arc.
  const TimingGraph ref = TimingGraph::build(reports.front());
  for (std::size_t i = 1; i < reports.size(); ++i) {
    const TimingGraph g = TimingGraph::build(reports[i]);
    ASSERT_EQ(ref.nodes().size(), g.nodes().size());
    ASSERT_EQ(ref.arcs().size(), g.arcs().size());
    for (std::size_t n = 0; n < ref.nodes().size(); ++n) {
      EXPECT_EQ(ref.nodes()[n].name, g.nodes()[n].name);
      EXPECT_EQ(ref.nodes()[n].arrival, g.nodes()[n].arrival);
      EXPECT_EQ(ref.nodes()[n].required, g.nodes()[n].required);
      EXPECT_EQ(ref.nodes()[n].slack, g.nodes()[n].slack);
      EXPECT_EQ(ref.nodes()[n].level, g.nodes()[n].level);
    }
    for (std::size_t a = 0; a < ref.arcs().size(); ++a) {
      EXPECT_EQ(ref.arcs()[a].from, g.arcs()[a].from);
      EXPECT_EQ(ref.arcs()[a].to, g.arcs()[a].to);
      EXPECT_EQ(ref.arcs()[a].delay, g.arcs()[a].delay);
      EXPECT_EQ(ref.arcs()[a].slack, g.arcs()[a].slack);
    }
  }
}

TEST(GraphSta, SlackIsRequiredMinusArrivalEverywhere) {
  const Design d = reconvergent_design();
  const TimingReport report = d.analyze();
  GraphOptions gopt;
  gopt.required_time = 2e-9;
  const TimingGraph graph = TimingGraph::build(report, gopt);
  for (const TimingNode& node : graph.nodes()) {
    if (std::isinf(node.required)) continue;  // untimed pin
    EXPECT_EQ(node.slack, node.required - node.arrival) << node.name;
  }
  // Endpoints carry the pinned requirement; the worst endpoint's slack
  // is the graph-wide minimum.
  for (const std::size_t id : graph.endpoints()) {
    EXPECT_EQ(graph.nodes()[id].required, 2e-9);
    EXPECT_GE(graph.nodes()[id].slack, graph.worst_slack());
  }
  // On a single-required-time graph the worst endpoint is the latest
  // arrival, so worst_slack = required - critical delay.
  EXPECT_EQ(graph.worst_slack(), 2e-9 - graph.max_arrival());
}

TEST(GraphSta, FloatingRequiredPinsWorstSlackToZero) {
  const Design d = reconvergent_design();
  const TimingReport report = d.analyze();
  const TimingGraph graph = TimingGraph::build(report);  // NaN: floats
  EXPECT_EQ(graph.worst_slack(), 0.0);
  const std::size_t worst = graph.find(graph.worst_endpoint());
  ASSERT_NE(worst, TimingGraph::npos);
  EXPECT_EQ(graph.nodes()[worst].arrival, graph.max_arrival());
  // Endpoint slacks are exact (required is pinned to max_arrival, so
  // the critical endpoint cancels to 0.0 bitwise).  Interior pins see
  // the backward pass's right-associated subtractions against the
  // forward pass's left-associated sums, so their slack may round one
  // ulp below zero -- allow that, and only that.
  for (const std::size_t id : graph.endpoints()) {
    EXPECT_GE(graph.nodes()[id].slack, 0.0) << graph.nodes()[id].name;
  }
  for (const TimingNode& node : graph.nodes()) {
    if (std::isinf(node.slack)) continue;
    EXPECT_GE(node.slack, -1e-20) << node.name;
  }
}

TEST(GraphSta, ReportSlackFieldsComeFromTheGraph) {
  const Design d = reconvergent_design();
  AnalysisOptions opt;
  opt.required_time = 2e-9;
  const TimingReport report = d.analyze(opt);
  GraphOptions gopt;
  gopt.required_time = 2e-9;
  const TimingGraph graph = TimingGraph::build(report, gopt);
  ASSERT_EQ(report.gate_slack.size(), report.gate_arrival.size());
  for (const auto& [gate, slack] : report.gate_slack) {
    EXPECT_EQ(slack, graph.slack_at(gate)) << gate;
  }
  EXPECT_EQ(report.worst_slack, graph.worst_slack());
  EXPECT_EQ(report.worst_slack_endpoint, graph.worst_endpoint());
}

TEST(GraphSta, WarmSessionGraphIsBitwiseColdGraph) {
  const Design d = reconvergent_design();
  AnalysisOptions opt;
  opt.required_time = 1.5e-9;
  Session session(d, opt);
  const TimingReport cold_report = session.analyze();
  const TimingGraph cold = TimingGraph::build(cold_report);
  (void)cold_report;
  const TimingGraph warm = session.graph();
  ASSERT_EQ(cold.nodes().size(), warm.nodes().size());
  for (std::size_t n = 0; n < cold.nodes().size(); ++n) {
    EXPECT_EQ(cold.nodes()[n].arrival, warm.nodes()[n].arrival);
  }
  // Slack queries through the Session agree with the standalone path.
  EXPECT_EQ(session.worst_slack(), d.analyze(opt).worst_slack);
  // And the K-worst-path query is served identically warm.
  PathQuery q;
  q.k = 4;
  const PathsResult warm_paths = session.worst_paths(q);
  const PathsResult cold_paths = k_worst_paths(session.graph(), q);
  ASSERT_EQ(warm_paths.paths.size(), cold_paths.paths.size());
  for (std::size_t i = 0; i < warm_paths.paths.size(); ++i) {
    EXPECT_EQ(warm_paths.paths[i].arrival, cold_paths.paths[i].arrival);
    EXPECT_EQ(warm_paths.paths[i].arcs, cold_paths.paths[i].arcs);
  }
}

TEST(GraphSta, SweepReportsSlackDeltasAndCriticalPathChanges) {
  AnalysisOptions opt;
  opt.threads = 1;
  opt.required_time = 2e-9;
  Session session(reconvergent_design(), opt);
  // Fatten the slow chain's wire: arrivals grow, slack deltas go
  // negative and shrink monotonically with the value.
  const SweepParam param{SweepParam::Kind::NetElementValue, "slow_join", 0};
  const SweepResult sweep = session.sweep(param, {1200.0, 2400.0});
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.baseline.worst_slack,
            session.analyze().worst_slack);  // design restored
  for (const SweepPoint& p : sweep.points) {
    EXPECT_EQ(p.worst_slack, p.report.worst_slack);
    EXPECT_EQ(p.slack_delta, p.worst_slack - sweep.baseline.worst_slack);
    EXPECT_LT(p.slack_delta, 0.0);
  }
  EXPECT_LT(sweep.points[1].slack_delta, sweep.points[0].slack_delta);
  // The slow chain already dominates: slowing it further does not move
  // the critical path.
  EXPECT_FALSE(sweep.points[0].critical_path_changed);

  // Fatten the *fast* chain until it dominates: the critical path moves.
  const SweepParam flip{SweepParam::Kind::NetElementValue, "fast_join", 0};
  const SweepResult flipped = session.sweep(flip, {200.0, 50e3});
  ASSERT_EQ(flipped.points.size(), 2u);
  EXPECT_FALSE(flipped.points[0].critical_path_changed);
  EXPECT_TRUE(flipped.points[1].critical_path_changed);
}

// Satellite fix under test: a stage that dies promotes its
// degraded/failed flags onto every arc it produced, and any path using
// such an arc carries Path::degraded / Path::failed.
TEST(GraphSta, FailedStageTaintsArcsAndPaths) {
  const Design d = reconvergent_design();
  TimingReport report;
  {
    core::ScopedFaultInjection inject({{"timing.stage", "slow_join", -1}});
    report = d.analyze();
  }
  ASSERT_EQ(report.failed_stages, 1u);

  const TimingGraph graph = TimingGraph::build(report);
  std::size_t tainted_arcs = 0;
  for (const TimingArc& arc : graph.arcs()) {
    if (arc.net == "slow_join") {
      EXPECT_TRUE(arc.degraded);
      EXPECT_TRUE(arc.failed);
      ++tainted_arcs;
    } else {
      EXPECT_FALSE(arc.failed) << arc.net;
    }
  }
  EXPECT_EQ(tainted_arcs, 1u);

  // Enumerate enough paths to see both chains: the path through the
  // injected net is tainted, the others are clean.
  PathQuery q;
  q.k = 8;
  const PathsResult paths = k_worst_paths(graph, q);
  bool saw_tainted = false;
  bool saw_clean = false;
  for (const Path& p : paths.paths) {
    bool uses_injected = false;
    for (const PathPoint& pt : p.points) {
      if (pt.net == "slow_join") uses_injected = true;
    }
    EXPECT_EQ(p.degraded, uses_injected);
    EXPECT_EQ(p.failed, uses_injected);
    saw_tainted |= uses_injected;
    saw_clean |= !uses_injected;
  }
  EXPECT_TRUE(saw_tainted);
  EXPECT_TRUE(saw_clean);
}

TEST(GraphSta, MalformedReportIsRejected) {
  TimingReport report;
  StageTiming st;
  st.driver_gate = "ghost";  // not in gate_arrival
  st.net = "n";
  SinkTiming s;
  s.gate = "OUT";
  s.stage_delay = 1e-12;
  st.sinks.push_back(s);
  report.stages.push_back(st);
  EXPECT_THROW(TimingGraph::build(report), std::invalid_argument);
}

}  // namespace awesim::timing
