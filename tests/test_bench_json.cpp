// The bench harness and its JSON schema: run a registered case
// in-process, serialize, re-parse the emitted text, and validate --
// exactly the self-check path `awesim_bench --json` exercises, plus
// negative cases the runner can't reach (tampered documents).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "cases.h"
#include "harness.h"
#include "obs/json.h"

using namespace awesim;
using obs::json::Value;
using obs::json::parse;

namespace {

const bench::BenchCase& find_case(const std::string& name) {
  bench::ensure_all_registered();
  for (const auto& c : bench::registry()) {
    if (c.name == name) return c;
  }
  throw std::runtime_error("registered case not found: " + name);
}

bench::RunOptions quick_two_reps() {
  bench::RunOptions opt;
  opt.quick = true;
  opt.repeats = 2;
  return opt;
}

}  // namespace

TEST(BenchRegistry, CoversTheAcceptanceFloor) {
  bench::ensure_all_registered();
  // The issue's floor: >= 6 benches, at least one with a transient-
  // simulation reference (so the JSON carries speedup_vs_sim).
  EXPECT_GE(bench::registry().size(), 6u);
  std::size_t with_reference = 0;
  std::size_t quick = 0;
  for (const auto& c : bench::registry()) {
    if (c.quick_tier) ++quick;
    const auto prepared = c.prepare();
    EXPECT_TRUE(static_cast<bool>(prepared.run)) << c.name;
    if (prepared.reference) ++with_reference;
  }
  EXPECT_GE(with_reference, 1u);
  EXPECT_GE(quick, 6u);
}

TEST(BenchRegistry, RegistrationIsIdempotentAndRejectsDuplicates) {
  bench::ensure_all_registered();
  const std::size_t count = bench::registry().size();
  bench::ensure_all_registered();
  EXPECT_EQ(bench::registry().size(), count);
  EXPECT_THROW(bench::register_bench([] {
                 bench::BenchCase c;
                 c.name = bench::registry().front().name;
                 c.prepare = [] { return bench::PreparedCase{}; };
                 return c;
               }()),
               std::invalid_argument);
}

TEST(BenchRun, OneCaseProducesTimedSamplesAndAccuracy) {
  const auto& c = find_case("fig15.secondorder_step");
  const auto r = bench::run_case(c, quick_two_reps());
  EXPECT_EQ(r.name, "fig15.secondorder_step");
  EXPECT_EQ(r.repeats, 2);
  ASSERT_EQ(r.wall_ms.size(), 2u);
  for (double s : r.wall_ms) EXPECT_GT(s, 0.0);
  ASSERT_EQ(r.sim_ms.size(), 2u);
  for (double s : r.sim_ms) EXPECT_GT(s, 0.0);
  // The q=2 match on the fig. 4 tree is visually exact (Fig. 15): the
  // measured L2 error must be far below a percent.
  EXPECT_TRUE(std::isfinite(r.accuracy));
  EXPECT_LT(r.accuracy, 1e-2);
  EXPECT_GT(bench::speedup_vs_sim(r), 1.0);
}

TEST(BenchJson, EmittedDocumentRoundTripsAndValidates) {
  const auto& c = find_case("fig15.secondorder_step");
  std::vector<bench::BenchResult> results;
  results.push_back(bench::run_case(c, quick_two_reps()));
  const Value doc = bench::to_json(results, quick_two_reps());

  // Validate the emitted *text*, not the in-memory tree: this covers
  // the writer (number formatting, NaN -> null) and the parser.
  const std::string text = doc.dump(2);
  const Value parsed = parse(text);
  const auto errors = bench::validate_schema(parsed);
  for (const auto& e : errors) ADD_FAILURE() << e;
  EXPECT_TRUE(errors.empty());

  ASSERT_NE(parsed.find("schema"), nullptr);
  EXPECT_EQ(parsed.find("schema")->as_string(), bench::kSchemaName);
  EXPECT_EQ(parsed.find("schema_version")->as_number(),
            bench::kSchemaVersion);
  EXPECT_EQ(parsed.find("tier")->as_string(), "quick");
  const Value* benches = parsed.find("benches");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->size(), 1u);
  const Value& b = benches->at(0);
  EXPECT_EQ(b.find("name")->as_string(), "fig15.secondorder_step");
  EXPECT_TRUE(std::isfinite(b.find("speedup_vs_sim")->as_number()));
  EXPECT_TRUE(std::isfinite(b.find("accuracy")->as_number()));
  ASSERT_NE(b.find("wall_ms"), nullptr);
  EXPECT_EQ(b.find("wall_ms")->find("samples")->size(), 2u);
}

TEST(BenchJson, CaseWithoutReferenceSerializesNulls) {
  const auto& c = find_case("timing.wavefront");
  std::vector<bench::BenchResult> results;
  results.push_back(bench::run_case(c, quick_two_reps()));
  const Value parsed =
      parse(bench::to_json(results, quick_two_reps()).dump());
  EXPECT_TRUE(bench::validate_schema(parsed).empty());
  const Value& b = parsed.find("benches")->at(0);
  EXPECT_TRUE(b.find("sim_ms")->is_null());
  EXPECT_TRUE(b.find("speedup_vs_sim")->is_null());
}

TEST(BenchJson, ValidatorRejectsTamperedDocuments) {
  const auto& c = find_case("fig15.secondorder_step");
  std::vector<bench::BenchResult> results;
  results.push_back(bench::run_case(c, quick_two_reps()));
  const bench::RunOptions opt = quick_two_reps();

  {
    Value doc = bench::to_json(results, opt);
    doc.set("schema_version", 999);
    EXPECT_FALSE(bench::validate_schema(doc).empty());
  }
  {
    Value doc = bench::to_json(results, opt);
    doc.set("benches", Value::array());
    EXPECT_FALSE(bench::validate_schema(doc).empty());
  }
  {
    Value doc = bench::to_json(results, opt);
    doc.set("tier", "warp-speed");
    EXPECT_FALSE(bench::validate_schema(doc).empty());
  }
  {
    // A NaN accuracy must serialize to null and remain schema-valid;
    // a *string* in a numeric slot must not.
    results.front().accuracy = std::nan("");
    Value doc = bench::to_json(results, opt);
    EXPECT_TRUE(bench::validate_schema(parse(doc.dump())).empty());
    Value tampered = parse(doc.dump());
    // Rebuild with a corrupted bench entry.
    Value bad_bench = tampered.find("benches")->at(0);
    bad_bench.set("accuracy", "fast");
    Value benches = Value::array();
    benches.push_back(std::move(bad_bench));
    tampered.set("benches", std::move(benches));
    EXPECT_FALSE(bench::validate_schema(tampered).empty());
  }
}

TEST(BenchJson, ParserRejectsMalformedText) {
  EXPECT_THROW(parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse("nan"), std::runtime_error);
  // Valid documents parse, including escapes and surrogate pairs.
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_EQ(parse("-1.5e3").as_number(), -1500.0);
}
