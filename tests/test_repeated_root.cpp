// End-to-end coverage of the confluent-Vandermonde repeated-root path
// (eq. 26-29 of the paper) from the engine: a critically damped series
// RLC has an exactly repeated natural frequency, so the eq. 25 root
// solve must cluster the double root and the residue solve must produce
// a t*exp(pt) term.  Until now only the distinct-root eq. 20 solve was
// exercised through the engine.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "core/engine.h"

namespace awesim {

namespace {

// Series RLC, critically damped: R = 2*sqrt(L/C), double pole at
// p = -R/(2L).  With L = 1 uH, C = 1 pF: R = 2 kOhm, p = -1e9 rad/s.
// Unit step at the input; the capacitor voltage is
//   v(t) = 1 - (1 + w t) e^{-w t},  w = 1e9.
constexpr double kOmega = 1e9;

circuit::Circuit critically_damped_rlc() {
  circuit::Circuit ckt;
  const auto vin = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("Vin", vin, circuit::kGround,
                  circuit::Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", vin, mid, 2e3);
  ckt.add_inductor("L1", mid, out, 1e-6);
  ckt.add_capacitor("C1", out, circuit::kGround, 1e-12);
  return ckt;
}

double exact_value(double t) {
  return 1.0 - (1.0 + kOmega * t) * std::exp(-kOmega * t);
}

}  // namespace

TEST(RepeatedRoot, CriticallyDampedRlcTakesConfluentPath) {
  auto ckt = critically_damped_rlc();
  core::Engine engine(ckt);
  core::EngineOptions options;
  options.order = 2;
  const auto r = engine.approximate(ckt.find_node("out"), options);

  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.order_used, 2);

  // One stimulus atom (plus the terms-free base pseudo-atom).
  ASSERT_EQ(r.approximation.atoms().size(), 2u);
  const auto& terms = r.approximation.atoms()[1].terms;
  ASSERT_EQ(terms.size(), 2u);

  // The double root must be clustered: same pole, powers 1 and 2.
  int max_power = 0;
  for (const auto& term : terms) {
    max_power = std::max(max_power, term.power);
    EXPECT_NEAR(term.pole.real(), -kOmega, 1e-3 * kOmega);
    EXPECT_NEAR(term.pole.imag(), 0.0, 1e-3 * kOmega);
  }
  EXPECT_EQ(max_power, 2);
  EXPECT_EQ(terms[0].pole, terms[1].pole);

  // The confluent residue solve must reproduce the closed form
  // 1 - (1 + wt) e^{-wt} over the whole transient.
  for (int i = 0; i <= 50; ++i) {
    const double t = 8e-9 * i / 50.0;
    EXPECT_NEAR(r.approximation.value(t), exact_value(t), 2e-6)
        << "t=" << t;
  }
  EXPECT_NEAR(r.approximation.final_value(), 1.0, 1e-9);
}

TEST(RepeatedRoot, ErrorEstimateSeesExactModel) {
  // A 2-pole circuit matched at q=2: the q=3 reference collapses to the
  // same model, so the eq. 39 estimate is (numerically) zero.
  auto ckt = critically_damped_rlc();
  core::Engine engine(ckt);
  core::EngineOptions options;
  options.order = 2;
  const auto r = engine.approximate(ckt.find_node("out"), options);
  if (!std::isnan(r.error_estimate)) {
    EXPECT_LT(r.error_estimate, 1e-6);
  }
}

TEST(RepeatedRoot, BatchPathMatchesSingle) {
  // The repeated-root match must behave identically through the batch
  // API (same confluent solve per output).
  auto ckt = critically_damped_rlc();
  const circuit::NodeId outs[] = {ckt.find_node("mid"),
                                  ckt.find_node("out")};
  core::EngineOptions options;
  options.order = 2;

  core::Engine batch_engine(ckt);
  const auto batch = batch_engine.approximate_all(outs, options);
  core::Engine ref_engine(ckt);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto ref = ref_engine.approximate(outs[i], options);
    ASSERT_EQ(batch.results[i].approximation.atoms().size(),
              ref.approximation.atoms().size());
    for (std::size_t a = 0; a < ref.approximation.atoms().size(); ++a) {
      const auto& ta = batch.results[i].approximation.atoms()[a].terms;
      const auto& tb = ref.approximation.atoms()[a].terms;
      ASSERT_EQ(ta.size(), tb.size());
      for (std::size_t k = 0; k < ta.size(); ++k) {
        EXPECT_EQ(ta[k].pole, tb[k].pole);
        EXPECT_EQ(ta[k].residue, tb[k].residue);
        EXPECT_EQ(ta[k].power, tb[k].power);
      }
    }
  }
}

}  // namespace awesim
