// TransferModel: stimulus-independent reduced-order macromodels.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "core/transfer.h"

namespace awesim::core {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

namespace {

Circuit single_rc(double r, double c) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  return ckt;
}

}  // namespace

TEST(TransferModel, SingleRcUnitStepExact) {
  Circuit ckt = single_rc(1e3, 1e-9);
  mna::MnaSystem mna(ckt);
  TransferModel model(mna, "V1", ckt.find_node("out"), 1);
  EXPECT_TRUE(model.stable());
  EXPECT_EQ(model.order_used(), 1);
  EXPECT_NEAR(model.dc_gain(), 1.0, 1e-12);
  const double tau = 1e-6;
  for (double t : {0.0, 0.3 * tau, tau, 4.0 * tau}) {
    EXPECT_NEAR(model.unit_step(t), 1.0 - std::exp(-t / tau), 1e-9);
  }
  EXPECT_EQ(model.unit_step(-1.0), 0.0);
}

TEST(TransferModel, UnitRampIsIntegralOfUnitStep) {
  Circuit ckt = single_rc(1e3, 1e-9);
  mna::MnaSystem mna(ckt);
  TransferModel model(mna, "V1", ckt.find_node("out"), 2);
  // Numerical integral of unit_step vs closed-form unit_ramp.
  const double t_end = 3e-6;
  const int n = 20000;
  double acc = 0.0;
  double prev = model.unit_step(0.0);
  for (int i = 1; i <= n; ++i) {
    const double t = t_end * i / n;
    const double cur = model.unit_step(t);
    acc += 0.5 * (prev + cur) * (t_end / n);
    prev = cur;
    if (i % 4000 == 0) {
      EXPECT_NEAR(model.unit_ramp(t), acc, 1e-4 * std::max(acc, 1e-12))
          << "t=" << t;
    }
  }
}

TEST(TransferModel, ResponseMatchesEngineForFiniteRise) {
  // The macromodel evaluated for a 1 ns-rise stimulus must agree with a
  // full engine analysis of the same circuit and stimulus.
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig16_mos_interconnect(drive);
  const auto out = ckt.find_node("n7");
  mna::MnaSystem mna(ckt);
  TransferModel model(mna, "Vin", out, 3);

  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 3;
  const auto full = engine.approximate(out, opt);

  const auto& stim = ckt.find_element("Vin")->stimulus;
  for (double t : {0.2e-9, 0.5e-9, 1.0e-9, 2e-9, 5e-9}) {
    EXPECT_NEAR(model.response(stim, t), full.approximation.value(t), 5e-3)
        << "t=" << t;
  }
}

TEST(TransferModel, ReuseAcrossRiseTimes) {
  // One reduction, many scenarios: responses for different rise times all
  // settle to the same final value and order by speed.
  auto ckt = circuits::fig4_rc_tree();
  mna::MnaSystem mna(ckt);
  TransferModel model(mna, "Vin", ckt.find_node("n4"), 2);
  const double t_obs = 1.0e-3;
  double prev = 1e300;
  for (double rise : {0.1e-3, 0.5e-3, 1.5e-3}) {
    const auto stim = Stimulus::ramp_step(0.0, 5.0, rise);
    const double v = model.response(stim, t_obs);
    EXPECT_LT(v, prev);  // slower input -> lower value at fixed time
    prev = v;
    EXPECT_NEAR(model.response(stim, 50e-3), 5.0, 1e-6);
  }
}

TEST(TransferModel, CurrentSourceInput) {
  // I source into an RC: transimpedance R at DC; tau = RC.
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_isource("I1", kGround, a, Stimulus::step(0.0, 1e-3));
  ckt.add_resistor("R1", a, kGround, 2e3);
  ckt.add_capacitor("C1", a, kGround, 1e-9);
  mna::MnaSystem mna(ckt);
  TransferModel model(mna, "I1", a, 1);
  EXPECT_NEAR(model.dc_gain(), 2e3, 1e-9);
  const double tau = 2e3 * 1e-9;
  EXPECT_NEAR(model.unit_step(tau), 2e3 * (1.0 - std::exp(-1.0)), 1e-6);
}

TEST(TransferModel, PwlTrainSuperposition) {
  // A two-pulse train through the macromodel vs the transient engine's
  // own analysis of the same stimulus.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  const auto stim = Stimulus::pwl(
      {{0.0, 0.0}, {1e-6, 1.0}, {2e-6, 1.0}, {3e-6, 0.0}, {5e-6, 0.8}});
  ckt.add_vsource("V1", in, kGround, stim);
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, kGround, 1e-9);
  mna::MnaSystem mna(ckt);
  TransferModel model(mna, "V1", out, 1);

  core::Engine engine(ckt);
  core::EngineOptions opt;
  opt.order = 1;
  const auto full = engine.approximate(out, opt);
  for (double t : {0.5e-6, 1.5e-6, 2.5e-6, 4e-6, 6e-6, 10e-6}) {
    EXPECT_NEAR(model.response(stim, t), full.approximation.value(t),
                1e-6)
        << "t=" << t;
  }
}

TEST(TransferModel, Errors) {
  Circuit ckt = single_rc(1.0, 1.0);
  mna::MnaSystem mna(ckt);
  EXPECT_THROW(TransferModel(mna, "nosuch", ckt.find_node("out"), 1),
               std::invalid_argument);
  EXPECT_THROW(TransferModel(mna, "R1", ckt.find_node("out"), 1),
               std::invalid_argument);
}

}  // namespace awesim::core
