// The Sherman-Morrison warm path, bottom to top -- the `numeric`
// differential tier (ctest -L numeric).
//
// Three layers of contract:
//
//   * la::LowRankSolver -- Woodbury-corrected solves agree with a full
//     refactorization of the updated matrix to ULP-scaled bounds; the
//     blocked multi-RHS substitutions (dense and sparse) are *bitwise*
//     identical to their one-vector forms; add_update() refuses on rank
//     cap, drift (condition) watchdog, and the armed `la.lowrank` fault
//     probe, leaving the solver untouched.
//
//   * timing::Session with SessionOptions::low_rank on -- N seeded
//     circuit families x M mutation sequences, every warm analyze
//     differentially compared against an exact-refactorization twin
//     (low_rank = false) within ULP-scaled tolerances, with the warm
//     path provably engaged (awe_stats.low_rank_points > 0).
//
//   * the escape hatch -- low_rank = false stays bit-identical to a
//     cold Design::analyze(), and a refused update (fault-injected
//     drift) falls back to full refactorization: still bit-exact, plus
//     a LowRankDrift diagnostic and low_rank_refactorizations > 0.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/fault.h"
#include "la/low_rank.h"
#include "la/lu.h"
#include "la/sparse.h"
#include "timing/session.h"
#include "util/random_circuits.h"

namespace awesim {

namespace {

using core::ScopedFaultInjection;
using la::LowRankOptions;
using la::LowRankSolver;
using la::Lu;
using la::Matrix;
using la::RankOneUpdate;
using la::RealVector;

// |a - b| within `ulps`-scaled distance of the exact value: absolute
// floor for results near zero, relative elsewhere.
void expect_close(double a, double b, double rel, double abs,
                  const std::string& what) {
  EXPECT_LE(std::fabs(a - b), rel * std::fabs(b) + abs) << what;
}

// A diagonally dominant random matrix: always invertible, well enough
// conditioned that Woodbury error stays near roundoff.
Matrix<double> random_dd_matrix(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> off(-1.0, 1.0);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = off(rng);
      row += std::fabs(a(i, j));
    }
    a(i, i) = row + 1.0;
  }
  return a;
}

RealVector random_vector(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  RealVector b(n);
  for (double& x : b) x = val(rng);
  return b;
}

// Sparse rank-1 update touching a few random coordinates.
RankOneUpdate random_update(std::mt19937& rng, std::size_t n) {
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::uniform_real_distribution<double> val(-0.5, 0.5);
  RankOneUpdate up;
  up.u = {{pick(rng), val(rng)}, {pick(rng), val(rng)}};
  up.v = {{pick(rng), 1.0}, {pick(rng), -1.0}};
  return up;
}

LowRankSolver make_solver(const Lu<double>& base, std::size_t n,
                          LowRankOptions options = {}) {
  return LowRankSolver(
      n, [&base](const RealVector& b) { return base.solve(b); },
      [&base](const std::vector<RealVector>& bs) {
        return base.solve_multi(bs);
      },
      options);
}

}  // namespace

// ---------------------------------------------------------------------
// la::LowRankSolver against direct refactorization.

TEST(LowRankSolver, WoodburyMatchesDirectRefactorization) {
  for (std::uint32_t seed : {11u, 22u, 33u, 44u}) {
    const std::size_t n = 24;
    Matrix<double> a0 = random_dd_matrix(seed, n);
    const Lu<double> base(a0);
    LowRankSolver lr = make_solver(base, n);

    std::mt19937 rng(seed ^ 0x9e3779b9u);
    Matrix<double> a = a0;
    for (int k = 0; k < 5; ++k) {
      const RankOneUpdate up = random_update(rng, n);
      ASSERT_TRUE(lr.add_update(up)) << "seed " << seed << " k " << k;
      for (const auto& [iu, vu] : up.u) {
        for (const auto& [iv, vv] : up.v) a(iu, iv) += vu * vv;
      }
      const Lu<double> direct(a);
      const RealVector b = random_vector(seed + 100 * k, n);
      const RealVector x_lr = lr.solve(b);
      const RealVector x_direct = direct.solve(b);
      for (std::size_t i = 0; i < n; ++i) {
        expect_close(x_lr[i], x_direct[i], 1e-10, 1e-12,
                     "seed " + std::to_string(seed) + " rank " +
                         std::to_string(k + 1) + " x[" +
                         std::to_string(i) + "]");
      }
    }
    EXPECT_EQ(lr.rank(), 5u);
  }
}

TEST(LowRankSolver, SolveMultiBitwiseEqualsSolve) {
  const std::size_t n = 17;
  Matrix<double> a0 = random_dd_matrix(5u, n);
  const Lu<double> base(a0);
  LowRankSolver lr = make_solver(base, n);
  std::mt19937 rng(7u);
  for (int k = 0; k < 3; ++k) ASSERT_TRUE(lr.add_update(random_update(rng, n)));

  std::vector<RealVector> bs;
  for (std::uint32_t s = 0; s < 13; ++s) bs.push_back(random_vector(s, n));
  const std::vector<RealVector> batched = lr.solve_multi(bs);
  ASSERT_EQ(batched.size(), bs.size());
  for (std::size_t j = 0; j < bs.size(); ++j) {
    EXPECT_EQ(batched[j], lr.solve(bs[j])) << "rhs " << j;
  }
}

TEST(LowRankSolver, ZeroUpdateIsRankZeroAndBitExact) {
  const std::size_t n = 9;
  Matrix<double> a0 = random_dd_matrix(3u, n);
  const Lu<double> base(a0);
  LowRankSolver lr = make_solver(base, n);
  // All-zero u (and an entirely empty update) change nothing.
  EXPECT_TRUE(lr.add_update({{{2, 0.0}}, {{4, 1.0}}}));
  EXPECT_TRUE(lr.add_update({}));
  EXPECT_EQ(lr.rank(), 0u);
  const RealVector b = random_vector(8u, n);
  EXPECT_EQ(lr.solve(b), base.solve(b));
}

TEST(LowRankSolver, RankCapRefusesAndLeavesSolverUntouched) {
  const std::size_t n = 12;
  Matrix<double> a0 = random_dd_matrix(9u, n);
  const Lu<double> base(a0);
  LowRankOptions options;
  options.max_rank = 2;
  LowRankSolver lr = make_solver(base, n, options);
  std::mt19937 rng(13u);
  ASSERT_TRUE(lr.add_update(random_update(rng, n)));
  ASSERT_TRUE(lr.add_update(random_update(rng, n)));
  const RealVector b = random_vector(21u, n);
  const RealVector before = lr.solve(b);
  EXPECT_FALSE(lr.add_update(random_update(rng, n)));
  EXPECT_EQ(lr.rank(), 2u);
  EXPECT_EQ(lr.solve(b), before);  // refusal rolled everything back
}

TEST(LowRankSolver, DriftWatchdogRefusesNearSingularCapMatrix) {
  const std::size_t n = 8;
  Matrix<double> a0 = random_dd_matrix(17u, n);
  const Lu<double> base(a0);
  LowRankSolver lr = make_solver(base, n);
  // u v^T with u = -A0 e0 makes (I + V^T Z) exactly singular: the
  // updated matrix zeroes column 0.
  RankOneUpdate killer;
  for (std::size_t i = 0; i < n; ++i) killer.u.push_back({i, -a0(i, 0)});
  killer.v = {{0, 1.0}};
  EXPECT_FALSE(lr.add_update(killer));
  EXPECT_EQ(lr.rank(), 0u);
}

TEST(LowRankSolver, FaultProbeForcesRefusal) {
  const std::size_t n = 10;
  Matrix<double> a0 = random_dd_matrix(29u, n);
  const Lu<double> base(a0);
  LowRankSolver lr = make_solver(base, n);
  std::mt19937 rng(31u);
  {
    ScopedFaultInjection scoped({{"la.lowrank", "*", -1}});
    EXPECT_FALSE(lr.add_update(random_update(rng, n)));
    EXPECT_EQ(lr.rank(), 0u);
  }
  EXPECT_TRUE(lr.add_update(random_update(rng, n)));
  EXPECT_EQ(lr.rank(), 1u);
}

// ---------------------------------------------------------------------
// Blocked multi-RHS substitutions: bitwise identity with the one-vector
// forms, across panel-boundary counts (kPanel = 8).

TEST(BlockedSubstitution, DenseSolveMultiBitwiseEqualsSolve) {
  for (std::size_t nrhs : {1u, 7u, 8u, 9u, 16u, 23u}) {
    const std::size_t n = 19;
    Matrix<double> a = random_dd_matrix(41u, n);
    const Lu<double> lu(a);
    std::vector<RealVector> bs;
    for (std::uint32_t s = 0; s < nrhs; ++s) {
      bs.push_back(random_vector(1000u + s, n));
    }
    const std::vector<RealVector> batched = lu.solve_multi(bs);
    ASSERT_EQ(batched.size(), nrhs);
    for (std::size_t j = 0; j < nrhs; ++j) {
      EXPECT_EQ(batched[j], lu.solve(bs[j])) << nrhs << " rhs, j=" << j;
    }
  }
}

TEST(BlockedSubstitution, SparseSolveMultiBitwiseEqualsSolve) {
  // An RC-ladder-shaped tridiagonal system, the shape SparseLu serves in
  // production.
  const std::size_t n = 40;
  std::vector<la::Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({i, i, 3.0 + 0.01 * static_cast<double>(i)});
    if (i + 1 < n) {
      trips.push_back({i, i + 1, -1.0});
      trips.push_back({i + 1, i, -1.0});
    }
  }
  const la::SparseMatrix a = la::SparseMatrix::from_triplets(n, n, trips);
  const la::SparseLu lu(a);
  for (std::size_t nrhs : {1u, 8u, 11u, 24u}) {
    std::vector<RealVector> bs;
    for (std::uint32_t s = 0; s < nrhs; ++s) {
      bs.push_back(random_vector(2000u + s, n));
    }
    const std::vector<RealVector> batched = lu.solve_multi(bs);
    ASSERT_EQ(batched.size(), nrhs);
    for (std::size_t j = 0; j < nrhs; ++j) {
      EXPECT_EQ(batched[j], lu.solve(bs[j])) << nrhs << " rhs, j=" << j;
    }
  }
}

// ---------------------------------------------------------------------
// The differential tier: Session warm path vs exact refactorization.

namespace {

using timing::AnalysisOptions;
using timing::Session;
using timing::SessionOptions;
using timing::TimingReport;
using timing::testutil::StageDesign;
using timing::testutil::ValueMutation;

SessionOptions warm_options() {
  SessionOptions so;
  so.low_rank = true;
  // The production gate keeps sub-64-element stages exact; the test
  // circuits are sized for speed, so drop the gate and exercise the
  // corrected solver everywhere.
  so.min_stage_elements = 0;
  return so;
}

SessionOptions exact_options() {
  SessionOptions so;
  so.low_rank = false;
  return so;
}

// Tolerance of the differential comparison.  The Woodbury correction on
// these well-conditioned stage matrices is accurate to ~1e-12 relative;
// 1e-8 headroom still catches any genuine defect (a wrong update is off
// by percent-level or worse).
constexpr double kRel = 1e-8;
constexpr double kAbs = 1e-15;  // seconds; delays here are ~1e-10 s

void expect_reports_close(const TimingReport& warm,
                          const TimingReport& exact,
                          const std::string& what) {
  ASSERT_EQ(warm.stages.size(), exact.stages.size()) << what;
  for (std::size_t i = 0; i < warm.stages.size(); ++i) {
    const auto& w = warm.stages[i];
    const auto& e = exact.stages[i];
    ASSERT_EQ(w.sinks.size(), e.sinks.size()) << what;
    for (std::size_t j = 0; j < w.sinks.size(); ++j) {
      expect_close(w.sinks[j].stage_delay, e.sinks[j].stage_delay, kRel,
                   kAbs, what + " stage_delay");
      expect_close(w.sinks[j].slew, e.sinks[j].slew, kRel, kAbs,
                   what + " slew");
      expect_close(w.sinks[j].arrival, e.sinks[j].arrival, kRel, kAbs,
                   what + " arrival");
    }
    EXPECT_EQ(w.degraded, e.degraded) << what;
    EXPECT_EQ(w.failed, e.failed) << what;
  }
  expect_close(warm.critical_delay, exact.critical_delay, kRel, kAbs,
               what + " critical_delay");
  EXPECT_EQ(warm.critical_path, exact.critical_path) << what;
}

StageDesign make_family(int family, std::uint32_t seed) {
  switch (family) {
    case 0: return timing::testutil::rc_line_design(seed, 30);
    case 1: return timing::testutil::rc_tree_design(seed, 30);
    default: return timing::testutil::rc_mesh_design(seed, 30, 4);
  }
}

}  // namespace

TEST(LowRankDifferential, MutationSequencesAgreeWithExactRefactorization) {
  for (int family = 0; family < 3; ++family) {
    for (std::uint32_t seed : {1u, 2u, 3u}) {
      const StageDesign stage = make_family(family, seed);
      Session warm(stage.design, AnalysisOptions{}, warm_options());
      Session exact(stage.design, AnalysisOptions{}, exact_options());
      (void)warm.analyze();
      (void)exact.analyze();

      std::uint64_t lr_points = 0;
      const std::vector<ValueMutation> steps =
          timing::testutil::random_perturbations(seed * 31u + 7u, stage, 6);
      for (std::size_t s = 0; s < steps.size(); ++s) {
        warm.set_value(steps[s].net, steps[s].element_index, steps[s].value);
        exact.set_value(steps[s].net, steps[s].element_index,
                        steps[s].value);
        const TimingReport w = warm.analyze();
        const TimingReport e = exact.analyze();
        lr_points += w.awe_stats.low_rank_points;
        expect_reports_close(
            w, e,
            "family " + std::to_string(family) + " seed " +
                std::to_string(seed) + " step " + std::to_string(s));
      }
      // The warm path must actually have engaged -- a differential suite
      // that silently compares exact against exact proves nothing.
      EXPECT_GT(lr_points, 0u) << "family " << family << " seed " << seed;
    }
  }
}

TEST(LowRankDifferential, DriveResistanceSweepAgreesAndEngages) {
  const StageDesign stage = timing::testutil::rc_line_design(77u, 40);
  Session warm(stage.design, AnalysisOptions{}, warm_options());
  Session exact(stage.design, AnalysisOptions{}, exact_options());
  const timing::SweepParam param{timing::SweepParam::Kind::DriveResistance,
                                 "drv", 0};
  const std::vector<double> values = {150.0, 300.0, 450.0, 600.0};
  const timing::SweepResult w = warm.sweep(param, values);
  const timing::SweepResult e = exact.sweep(param, values);
  ASSERT_EQ(w.points.size(), e.points.size());
  std::uint64_t lr_points = 0;
  for (std::size_t i = 0; i < w.points.size(); ++i) {
    expect_reports_close(w.points[i].report, e.points[i].report,
                         "sweep point " + std::to_string(i));
    lr_points += w.points[i].report.awe_stats.low_rank_points;
  }
  EXPECT_GT(lr_points, 0u);
}

TEST(LowRankDifferential, EscapeHatchStaysBitIdenticalToColdAnalyze) {
  for (std::uint32_t seed : {5u, 6u}) {
    const StageDesign stage = timing::testutil::rc_tree_design(seed, 30);
    Session exact(stage.design, AnalysisOptions{}, exact_options());
    (void)exact.analyze();
    const std::vector<ValueMutation> steps =
        timing::testutil::random_perturbations(seed + 900u, stage, 4);
    Session replay(stage.design, AnalysisOptions{}, exact_options());
    for (const ValueMutation& m : steps) {
      exact.set_value(m.net, m.element_index, m.value);
      replay.set_value(m.net, m.element_index, m.value);
    }
    const TimingReport warm_exact = exact.analyze();
    // Cold twin of the final design state.
    const TimingReport cold = replay.design().analyze(AnalysisOptions{});
    timing::testutil::expect_same_payload(warm_exact, cold);
    EXPECT_EQ(warm_exact.awe_stats.low_rank_points, 0u);
  }
}

TEST(LowRankDifferential, InjectedDriftFallsBackToExactRefactorization) {
  const StageDesign stage = timing::testutil::rc_line_design(55u, 30);
  Session warm(stage.design, AnalysisOptions{}, warm_options());
  (void)warm.analyze();
  warm.set_value(stage.net, stage.resistor_indices[2],
                 stage.resistor_values[2] * 1.5);

  TimingReport refused;
  {
    // Every Sherman-Morrison update refuses: the watchdog path.
    ScopedFaultInjection scoped({{"la.lowrank", "*", -1}});
    refused = warm.analyze();
  }
  EXPECT_EQ(refused.awe_stats.low_rank_points, 0u);
  EXPECT_GT(refused.awe_stats.low_rank_refactorizations, 0u);
  bool saw_drift_diag = false;
  for (const auto& st : refused.stages) {
    for (const auto& d : st.diagnostics) {
      if (d.code == core::DiagCode::LowRankDrift) saw_drift_diag = true;
    }
  }
  EXPECT_TRUE(saw_drift_diag);

  // The fallback is a full refactorization: bit-identical to a cold
  // analyze of the same design, diagnostics aside.
  const TimingReport cold = warm.design().analyze(AnalysisOptions{});
  timing::testutil::expect_same_payload(refused, cold,
                                        /*compare_diagnostics=*/false);
}

TEST(LowRankDifferential, CorruptedCacheEntryStillRecomputes) {
  // The low-rank result key space goes through the same checksum-guarded
  // lookup as exact entries: corrupting the serve path must recompute,
  // never serve stale -- with the warm path on.
  const StageDesign stage = timing::testutil::rc_line_design(91u, 30);
  Session warm(stage.design, AnalysisOptions{}, warm_options());
  (void)warm.analyze();
  warm.set_value(stage.net, stage.resistor_indices[0],
                 stage.resistor_values[0] * 1.2);
  const TimingReport first = warm.analyze();
  ASSERT_GT(first.awe_stats.low_rank_points, 0u);

  ScopedFaultInjection scoped({{"session.cache", "net0", -1}});
  const TimingReport recomputed = warm.analyze();
  bool saw_invalidation = false;
  for (const auto& st : recomputed.stages) {
    for (const auto& d : st.diagnostics) {
      if (d.code == core::DiagCode::CacheInvalidated) saw_invalidation = true;
    }
  }
  EXPECT_TRUE(saw_invalidation);
  expect_reports_close(recomputed, first, "recompute after corruption");
}

}  // namespace awesim
