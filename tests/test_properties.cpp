// Property-based suites over randomly generated RC trees (deterministic
// seeds): the structural invariants AWE promises, checked wholesale.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "core/moments.h"
#include "rctree/rctree.h"
#include "sim/transient.h"
#include "util/random_circuits.h"

namespace awesim {

using circuit::Stimulus;
using core::Engine;
using core::EngineOptions;

class RandomTreeProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  rctree::RcTree tree_ = rctree::random_tree(18, GetParam());
  circuit::Circuit ckt_ =
      rctree::to_circuit(tree_, Stimulus::step(0.0, 5.0));

  // Index of some deep node (largest Elmore delay) in the tree.
  std::size_t deep_node() const {
    const auto d = rctree::elmore_delays(tree_);
    return static_cast<std::size_t>(
        std::max_element(d.begin(), d.end()) - d.begin());
  }

  circuit::NodeId circuit_node(std::size_t tree_idx) const {
    return ckt_.find_node("n" + std::to_string(tree_idx));
  }
};

TEST_P(RandomTreeProperty, TreeWalkElmoreEqualsMnaMoment) {
  // The O(n) tree walk and the full MNA moment recursion must agree: the
  // paper's Section 4.1 equivalence.
  Engine engine(ckt_);
  const auto tree_elmore = rctree::elmore_delays(tree_);
  for (std::size_t v = 1; v < tree_.size(); ++v) {
    const double mna_elmore = engine.elmore_delay(circuit_node(v));
    EXPECT_NEAR(mna_elmore, tree_elmore[v],
                1e-9 * std::max(tree_elmore[v], 1e-15))
        << "node " << v;
  }
}

TEST_P(RandomTreeProperty, TreeWalkMomentsEqualMnaMoments) {
  // Higher moments too, orders 1..4, at every node.
  mna::MnaSystem mna(ckt_);
  const auto walk = rctree::transfer_moments(tree_, 5);
  // Build the step-response homogeneous vector: xh0 = -5 at all nodes.
  la::RealVector xh0(mna.dim(), 0.0);
  const auto ss = mna.solve(mna.rhs_at(1.0));
  for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = -ss[i];
  core::MomentSequence seq(mna, xh0);
  for (std::size_t v = 1; v < tree_.size(); ++v) {
    const auto out = mna.node_index(circuit_node(v));
    for (int j = 0; j <= 3; ++j) {
      // mu_j = 5 * m_{j+1} (source amplitude times transfer moment).
      const double expected = 5.0 * walk[static_cast<std::size_t>(j) + 1][v];
      const double got = seq.mu(j, out);
      EXPECT_NEAR(got, expected,
                  1e-9 * std::max(std::abs(expected), 1e-30))
          << "node " << v << " j " << j;
    }
  }
}

TEST_P(RandomTreeProperty, FirstOrderAwePoleIsReciprocalElmore) {
  Engine engine(ckt_);
  const std::size_t v = deep_node();
  EngineOptions opt;
  opt.order = 1;
  const auto result = engine.approximate(circuit_node(v), opt);
  const auto& terms = result.approximation.atoms()[1].terms;
  ASSERT_EQ(terms.size(), 1u);
  const double elmore = rctree::elmore_delays(tree_)[v];
  EXPECT_NEAR(terms[0].pole.real(), -1.0 / elmore, 1e-6 / elmore);
  EXPECT_NEAR(terms[0].pole.imag(), 0.0, 1e-9 / elmore);
  EXPECT_NEAR(terms[0].residue.real(), -5.0, 1e-6);
}

TEST_P(RandomTreeProperty, FinalValueIsExact) {
  // m_0 matching forces the exact final value (paper Section 3.3).
  Engine engine(ckt_);
  for (int q : {1, 2, 3}) {
    EngineOptions opt;
    opt.order = q;
    const auto result =
        engine.approximate(circuit_node(deep_node()), opt);
    EXPECT_NEAR(result.approximation.final_value(), 5.0, 1e-7)
        << "q=" << q;
  }
}

TEST_P(RandomTreeProperty, MatchedMomentsReproduced) {
  Engine engine(ckt_);
  for (int q : {1, 2, 3}) {
    EngineOptions opt;
    opt.order = q;
    const auto result =
        engine.approximate(circuit_node(deep_node()), opt);
    EXPECT_LT(result.approximation.atoms()[1].match.moment_residual, 1e-6)
        << "q=" << q;
  }
}

TEST_P(RandomTreeProperty, StableRealPolesOnRcTrees) {
  // RC circuits have real negative natural frequencies; the matched
  // models on these trees must come out stable.
  Engine engine(ckt_);
  for (int q : {1, 2, 3}) {
    EngineOptions opt;
    opt.order = q;
    const auto result =
        engine.approximate(circuit_node(deep_node()), opt);
    EXPECT_TRUE(result.stable) << "q=" << q;
    for (const auto& t : result.approximation.atoms()[1].terms) {
      EXPECT_LT(t.pole.real(), 0.0);
    }
  }
}

TEST_P(RandomTreeProperty, PoleCreepTowardActualDominant) {
  // Section 5.1: as q grows, the dominant approximate pole converges to
  // the true dominant pole (monotone improvement not guaranteed, but by
  // q=3 it must be within 1%).
  Engine engine(ckt_);
  const auto actual = engine.actual_poles();
  ASSERT_FALSE(actual.empty());
  const double dominant = actual.front().real();
  EngineOptions opt;
  opt.order = 3;
  const auto result = engine.approximate(circuit_node(deep_node()), opt);
  double best = 1e300;
  for (const auto& t : result.approximation.atoms()[1].terms) {
    best = std::min(best, std::abs(t.pole.real() - dominant));
  }
  EXPECT_LT(best, 0.01 * std::abs(dominant));
}

TEST_P(RandomTreeProperty, DelayBoundsBracketSimulatedDelay) {
  const std::size_t v = deep_node();
  const auto bounds = rctree::delay_bounds(tree_, v, 0.5);
  sim::TransientSimulator sim(ckt_);
  const double elmore = rctree::elmore_delays(tree_)[v];
  const auto wave =
      sim.run_adaptive({circuit_node(v)}, 10.0 * elmore);
  const auto d = wave.first_crossing(2.5);
  ASSERT_TRUE(d.has_value());
  EXPECT_LE(bounds.lower, *d * 1.0000001);
  EXPECT_GE(bounds.upper, *d * 0.9999999);
}

TEST_P(RandomTreeProperty, SecondOrderBeatsFirstOrderVsSimulator) {
  const std::size_t v = deep_node();
  const double elmore = rctree::elmore_delays(tree_)[v];
  sim::TransientSimulator sim(ckt_);
  const auto ref = sim.run_adaptive({circuit_node(v)}, 8.0 * elmore);
  Engine engine(ckt_);
  double err[3];
  for (int q : {1, 2}) {
    EngineOptions opt;
    opt.order = q;
    const auto result = engine.approximate(circuit_node(v), opt);
    const auto wave =
        result.approximation.sample(0.0, 8.0 * elmore, 1501);
    err[q] = wave.relative_error_vs(ref);
  }
  EXPECT_LT(err[2], err[1] * 1.05);  // allow ties on near-1-pole trees
  EXPECT_LT(err[2], 0.05);
}


// Large-circuit sanity: the sparse factorization path produces the same
// answers as the dense one (same Elmore, same AWE poles).
TEST(SparsePath, LargeRcLineMatchesDenseResults) {
  auto big = circuits::rc_line(300, 300e3, 300e-12);  // above threshold
  const auto out = big.find_node("n300");
  mna::Options dense_opt;
  dense_opt.sparse_threshold = 100000;  // force dense
  mna::Options sparse_opt;
  sparse_opt.sparse_threshold = 1;  // force sparse

  Engine e_dense(big, dense_opt);
  Engine e_sparse(big, sparse_opt);
  EXPECT_TRUE(e_sparse.system().uses_sparse());
  EXPECT_FALSE(e_dense.system().uses_sparse());
  EXPECT_NEAR(e_dense.elmore_delay(out), e_sparse.elmore_delay(out),
              1e-9 * e_dense.elmore_delay(out));

  EngineOptions opt;
  opt.order = 3;
  const auto rd = e_dense.approximate(out, opt);
  const auto rs = e_sparse.approximate(out, opt);
  ASSERT_EQ(rd.approximation.atoms()[1].terms.size(),
            rs.approximation.atoms()[1].terms.size());
  for (std::size_t i = 0; i < rd.approximation.atoms()[1].terms.size();
       ++i) {
    const auto& td = rd.approximation.atoms()[1].terms[i];
    const auto& ts = rs.approximation.atoms()[1].terms[i];
    EXPECT_NEAR(std::abs(td.pole - ts.pole), 0.0,
                1e-6 * std::abs(td.pole));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Seeded design-generator determinism: the shared test-utility circuit
// families (tests/util/random_circuits.*) must be reproducible in the
// seed, and analysis over them bit-identical at any thread count -- the
// numeric differential tier (test_low_rank.cpp) leans on both.
TEST(RandomCircuits, SeededGeneratorsAndAnalysisAreDeterministic) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    timing::testutil::StageDesign a = timing::testutil::rc_tree_design(seed, 24);
    timing::testutil::StageDesign b = timing::testutil::rc_tree_design(seed, 24);
    ASSERT_EQ(a.resistor_indices, b.resistor_indices);
    ASSERT_EQ(a.resistor_values, b.resistor_values);
    timing::AnalysisOptions opt;
    opt.threads = 1;
    const timing::TimingReport ra = a.design.analyze(opt);
    opt.threads = 4;
    const timing::TimingReport rb = b.design.analyze(opt);
    timing::testutil::expect_same_payload(ra, rb);
  }
}

}  // namespace awesim
