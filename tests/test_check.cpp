// The src/check static lint pipeline: the topology-lint corpus under
// netlists/bad/lint/ must be caught before any matrix is assembled, with
// exact file:line:column locations; clean paper circuits must lint clean
// and classify as expected; the engine and timing pre-flights must turn
// structural singularities into named, located diagnostics instead of
// bare singular-matrix errors.  Registered under the ctest label "lint".
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "check/lint.h"
#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "netlist/parser.h"
#include "obs/json.h"
#include "timing/analyzer.h"
#include "timing/session.h"

namespace awesim::check {

namespace {

std::string corpus_path(const std::string& name) {
  return std::string(AWESIM_NETLIST_DIR) + "/bad/lint/" + name;
}

std::string netlist_path(const std::string& name) {
  return std::string(AWESIM_NETLIST_DIR) + "/" + name;
}

const core::Diagnostic* find_code(const LintReport& report,
                                  core::DiagCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------
// Corpus: each file trips exactly its rule, at the exact source line.

TEST(LintCorpus, FloatingIslandIsAnErrorAtTheIslandSource) {
  const std::string path = corpus_path("floating_island.sp");
  const LintReport report = lint_file(path);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.errors, 1u);
  const auto* d = find_code(report, core::DiagCode::FloatingIsland);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Error);
  EXPECT_EQ(d->file, path);
  EXPECT_EQ(d->line, 5u);  // the V2 card
  EXPECT_EQ(d->column, 1u);
  EXPECT_NE(d->element.find("V2"), std::string::npos);
  EXPECT_NE(d->element.find("R2"), std::string::npos);
  EXPECT_NE(d->node.find("a"), std::string::npos);
  EXPECT_NE(d->node.find("b"), std::string::npos);
}

TEST(LintCorpus, InductorLoopNamesEveryLoopMember) {
  const std::string path = corpus_path("inductor_loop.sp");
  const LintReport report = lint_file(path);
  EXPECT_FALSE(report.ok());
  const auto* d = find_code(report, core::DiagCode::InductorLoop);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Error);
  EXPECT_EQ(d->file, path);
  EXPECT_EQ(d->line, 4u);  // the L2 card closes the loop
  EXPECT_EQ(d->column, 1u);
  EXPECT_NE(d->element.find("V1"), std::string::npos);
  EXPECT_NE(d->element.find("L1"), std::string::npos);
  EXPECT_NE(d->element.find("L2"), std::string::npos);
  EXPECT_NE(d->message.find("structurally singular"), std::string::npos);
}

TEST(LintCorpus, CapacitorCutsetPointsAtTheCurrentSource) {
  const std::string path = corpus_path("capacitor_cutset.sp");
  const LintReport report = lint_file(path);
  EXPECT_FALSE(report.ok());
  const auto* d = find_code(report, core::DiagCode::CapacitorCutset);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Error);
  EXPECT_EQ(d->file, path);
  EXPECT_EQ(d->line, 5u);  // the I1 card
  EXPECT_EQ(d->column, 1u);
  EXPECT_NE(d->element.find("I1"), std::string::npos);
  EXPECT_EQ(d->node, "x");
}

TEST(LintCorpus, DanglingControlReferenceIsAnError) {
  const std::string path = corpus_path("dangling_control.sp");
  const LintReport report = lint_file(path);
  EXPECT_FALSE(report.ok());
  const auto* d = find_code(report, core::DiagCode::DanglingControl);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Error);
  EXPECT_EQ(d->file, path);
  EXPECT_EQ(d->line, 5u);  // the F1 card
  EXPECT_EQ(d->column, 1u);
  EXPECT_EQ(d->element, "F1");
  EXPECT_NE(d->message.find("Vmissing"), std::string::npos);
}

TEST(LintCorpus, NegativeValueIsLocatedDespiteSkippedValidate) {
  // Circuit::validate() would throw (line-less) on this netlist; the
  // lint front end skips that gate so the rule pipeline can point at
  // the exact card instead.
  const std::string path = corpus_path("negative_value.sp");
  const LintReport report = lint_file(path);
  EXPECT_FALSE(report.ok());
  const auto* d = find_code(report, core::DiagCode::ValueOutOfRange);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Error);
  EXPECT_EQ(d->file, path);
  EXPECT_EQ(d->line, 3u);  // the R1 card
  EXPECT_EQ(d->column, 1u);
  EXPECT_EQ(d->element, "R1");
}

// ---------------------------------------------------------------------
// Positive path: the paper circuits lint clean and classify as expected.

TEST(LintClassify, PaperCircuitsClassifyByStructure) {
  EXPECT_EQ(lint(circuits::fig4_rc_tree()).topology, TopologyClass::RcTree);
  EXPECT_EQ(lint(circuits::fig9_grounded_resistor()).topology,
            TopologyClass::RcMesh);  // R5 closes a resistive loop via ground
  EXPECT_EQ(lint(circuits::fig16_mos_interconnect()).topology,
            TopologyClass::RcTree);
  EXPECT_EQ(lint(circuits::fig22_floating_cap()).topology,
            TopologyClass::RcMesh);  // floating coupling capacitor
  EXPECT_EQ(lint(circuits::fig25_rlc_ladder()).topology,
            TopologyClass::Rlc);
  EXPECT_EQ(lint(circuits::rc_line(50, 1e3, 1e-12)).topology,
            TopologyClass::RcTree);
  EXPECT_EQ(lint(circuit::Circuit()).topology, TopologyClass::Empty);
}

TEST(LintClassify, PaperCircuitsLintClean) {
  for (const auto& ckt :
       {circuits::fig4_rc_tree(), circuits::fig9_grounded_resistor(),
        circuits::fig16_mos_interconnect(), circuits::fig22_floating_cap(),
        circuits::fig25_rlc_ladder()}) {
    const LintReport report = lint(ckt);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.errors, 0u);
    EXPECT_EQ(report.warnings, 0u);
  }
}

TEST(LintClassify, NetlistFilesLintCleanWithTopologyNote) {
  const LintReport fig4 = lint_file(netlist_path("fig4_rc_tree.sp"));
  EXPECT_TRUE(fig4.ok());
  EXPECT_EQ(fig4.warnings, 0u);
  EXPECT_EQ(fig4.topology, TopologyClass::RcTree);
  const auto* note = find_code(fig4, core::DiagCode::TopologyNote);
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->severity, core::Severity::Info);
  EXPECT_NE(note->message.find("rc-tree"), std::string::npos);

  const LintReport fig25 = lint_file(netlist_path("fig25_rlc_ladder.sp"));
  EXPECT_TRUE(fig25.ok());
  EXPECT_EQ(fig25.topology, TopologyClass::Rlc);

  LintOptions quiet;
  quiet.classify_note = false;
  const LintReport silent =
      lint_file(netlist_path("fig4_rc_tree.sp"), quiet);
  EXPECT_EQ(find_code(silent, core::DiagCode::TopologyNote), nullptr);
}

// ---------------------------------------------------------------------
// Individual rules on programmatic circuits (no source locations).

TEST(LintRules, SuspiciousValueIsAWarningNotAnError) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 5));
  ckt.add_resistor("R1", in, out, 1e15);  // a petaohm: forgotten suffix?
  ckt.add_capacitor("C1", out, circuit::kGround, 1e-12);
  const LintReport report = lint(ckt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings, 1u);
  const auto* d = find_code(report, core::DiagCode::SuspiciousValue);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_EQ(d->element, "R1");
  EXPECT_EQ(d->line, 0u);  // programmatic circuits carry no locations
}

TEST(LintRules, DuplicateNamesAndSelfShortsAreErrors) {
  circuit::Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V1", a, circuit::kGround, circuit::Stimulus::step(0, 1));
  ckt.add_resistor("R1", a, circuit::kGround, 1e3);
  ckt.add_resistor("R1", a, a, 2e3);  // duplicate name AND self-short
  const LintReport report = lint(ckt);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.errors, 2u);
  ASSERT_NE(find_code(report, core::DiagCode::ValidationError), nullptr);
}

TEST(LintRules, GminRescuableFloatingNodeIsAWarning) {
  // A node reachable only through a capacitor: the classic gmin case.
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 5));
  ckt.add_capacitor("C1", in, mid, 1e-12);
  ckt.add_capacitor("C2", mid, circuit::kGround, 1e-12);
  const LintReport report = lint(ckt);
  EXPECT_TRUE(report.ok()) << core::to_string(report.diagnostics);
  const auto* d = find_code(report, core::DiagCode::FloatingNodes);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_EQ(d->node, "mid");
}

TEST(LintRules, SourcelessIslandIsAWarningAndUnusedNodeFlagged) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 1));
  ckt.add_resistor("R1", in, circuit::kGround, 1e3);
  const auto a = ckt.node("isl_a");
  const auto b = ckt.node("isl_b");
  ckt.add_resistor("R2", a, b, 1e3);  // sourceless island: gmin pins it
  ckt.node("unused");                 // registered, touched by nothing
  const LintReport report = lint(ckt);
  EXPECT_TRUE(report.ok()) << core::to_string(report.diagnostics);
  EXPECT_EQ(report.warnings, 2u);
  const auto* island = find_code(report, core::DiagCode::FloatingIsland);
  ASSERT_NE(island, nullptr);
  EXPECT_EQ(island->severity, core::Severity::Warning);
}

TEST(LintRules, ControlCycleIsAWarningNamingMembers) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto x = ckt.node("x");
  const auto y = ckt.node("y");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 1));
  ckt.add_resistor("R1", in, x, 1e3);
  ckt.add_resistor("R2", in, y, 1e3);
  ckt.add_resistor("R3", x, circuit::kGround, 1e3);
  ckt.add_resistor("R4", y, circuit::kGround, 1e3);
  // E1 drives x sensing y; E2 drives y sensing x: a dependency cycle.
  ckt.add_vcvs("E1", x, circuit::kGround, y, circuit::kGround, 0.5);
  ckt.add_vcvs("E2", y, circuit::kGround, x, circuit::kGround, 0.5);
  const LintReport report = lint(ckt);
  const auto* d = find_code(report, core::DiagCode::ControlCycle);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, core::Severity::Warning);
  EXPECT_NE(d->element.find("E1"), std::string::npos);
  EXPECT_NE(d->element.find("E2"), std::string::npos);
}

TEST(LintRules, VcvsSensingUntouchedNodeIsDangling) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto nowhere = ckt.node("nowhere");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 1));
  ckt.add_resistor("R1", in, circuit::kGround, 1e3);
  ckt.add_vcvs("E1", in, circuit::kGround, nowhere, circuit::kGround, 2.0);
  const LintReport report = lint(ckt);
  EXPECT_FALSE(report.ok());
  const auto* d = find_code(report, core::DiagCode::DanglingControl);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->element, "E1");
  EXPECT_EQ(d->node, "nowhere");
}

TEST(LintRules, ParseErrorsMergeAheadOfRuleDiagnostics) {
  const LintReport report =
      lint_text("V1 in 0 DC 1\nR1 in out\nC1 out 0 1p\n", "inline.sp");
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics.front().code, core::DiagCode::ParseError);
  EXPECT_EQ(report.diagnostics.front().line, 2u);
}

// ---------------------------------------------------------------------
// Engine pre-flight: structural problems become named diagnostics.

namespace {

circuit::Circuit inductor_loop_circuit() {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 5));
  ckt.add_inductor("L1", in, out, 1e-9);
  ckt.add_inductor("L2", out, circuit::kGround, 2e-9);
  ckt.add_resistor("R1", out, circuit::kGround, 1e3);
  ckt.add_capacitor("C1", out, circuit::kGround, 1e-12);
  return ckt;
}

}  // namespace

TEST(EnginePreflight, InductorLoopThrowsTheLintRecord) {
  // The circuit must outlive the engine (MnaSystem keeps a reference).
  const circuit::Circuit ckt = inductor_loop_circuit();
  core::Engine engine(ckt);
  core::EngineOptions options;
  try {
    engine.approximate(ckt.find_node("out"), options);
    FAIL() << "expected DiagnosticError";
  } catch (const core::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().code, core::DiagCode::InductorLoop);
    EXPECT_EQ(e.diagnostic().severity, core::Severity::Fatal);
    EXPECT_NE(e.diagnostic().element.find("L1"), std::string::npos);
  }
  EXPECT_EQ(engine.stats().lint_errors, 1u);
}

TEST(EnginePreflight, EscapeHatchSkipsTheLint) {
  const circuit::Circuit ckt = inductor_loop_circuit();
  core::Engine engine(ckt);
  core::EngineOptions options;
  options.preflight_lint = false;
  // Raw behavior: whatever the LU makes of the singular system -- but
  // never the lint record, and no lint tallies.
  try {
    engine.approximate(ckt.find_node("out"), options);
  } catch (const core::DiagnosticError& e) {
    EXPECT_NE(e.diagnostic().code, core::DiagCode::InductorLoop);
  } catch (const std::exception&) {
  }
  EXPECT_EQ(engine.stats().lint_errors, 0u);
}

TEST(EnginePreflight, LintRunsOnceAndCountsWarnings) {
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::step(0, 5));
  ckt.add_resistor("R1", in, out, 1e15);  // suspicious, not fatal
  ckt.add_capacitor("C1", out, circuit::kGround, 1e-12);
  core::Engine engine(ckt);
  core::EngineOptions options;
  engine.approximate(out, options);
  engine.approximate(out, options);  // memoized: no second lint
  EXPECT_EQ(engine.stats().lint_errors, 0u);
  EXPECT_EQ(engine.stats().lint_warnings, 1u);
}

// ---------------------------------------------------------------------
// Timing pre-flight: the Design::analyze bugfix and the Session cache.

namespace {

timing::Design inductor_loop_design() {
  timing::Design design;
  design.add_gate({"U1", 100.0, 5e-15, 0.0});
  design.add_gate({"U2", 100.0, 5e-15, 0.0});
  timing::Net net;
  net.name = "bad_net";
  // Two parallel inductors DRV -> x: a loop of voltage-defined branches.
  net.parasitics.push_back(
      {timing::NetElement::Kind::Inductor, "DRV", "x", 1e-9});
  net.parasitics.push_back(
      {timing::NetElement::Kind::Inductor, "DRV", "x", 2e-9});
  net.parasitics.push_back(
      {timing::NetElement::Kind::Capacitor, "x", "0", 1e-13});
  net.sink_node["U2"] = "x";
  design.add_net("U1", std::move(net));
  design.set_primary_input("U1");
  return design;
}

const core::Diagnostic* find_code(const core::Diagnostics& diags,
                                  core::DiagCode code) {
  for (const auto& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

}  // namespace

TEST(TimingPreflight, SingularStageReportsTheOffendingElements) {
  const timing::Design design = inductor_loop_design();
  timing::AnalysisOptions options;
  options.threads = 1;
  const timing::TimingReport report = design.analyze(options);
  EXPECT_EQ(report.failed_stages, 1u);
  ASSERT_EQ(report.stages.size(), 1u);
  const timing::StageTiming& stage = report.stages.front();
  EXPECT_TRUE(stage.failed);

  // The bugfix under test: the report names the loop elements instead
  // of answering with a bare singular-system error.
  const auto* loop = find_code(stage.diagnostics,
                               core::DiagCode::InductorLoop);
  ASSERT_NE(loop, nullptr);
  EXPECT_NE(loop->element.find("__p0"), std::string::npos);
  EXPECT_NE(loop->element.find("__p1"), std::string::npos);
  const auto* failed = find_code(stage.diagnostics,
                                 core::DiagCode::StageFailed);
  ASSERT_NE(failed, nullptr);
  EXPECT_NE(failed->message.find("pre-flight lint"), std::string::npos);
  EXPECT_NE(failed->message.find("__p"), std::string::npos);
  EXPECT_GE(report.awe_stats.lint_errors, 1u);

  // Downstream timing still finite: the Elmore bound kept the wavefront
  // moving.
  ASSERT_EQ(stage.sinks.size(), 1u);
  EXPECT_TRUE(std::isfinite(stage.sinks.front().arrival));
}

TEST(TimingPreflight, EscapeHatchRestoresTheRawPath) {
  const timing::Design design = inductor_loop_design();
  timing::AnalysisOptions options;
  options.threads = 1;
  options.preflight_lint = false;
  const timing::TimingReport report = design.analyze(options);
  EXPECT_EQ(report.failed_stages, 1u);  // the LU still fails, later
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(find_code(report.stages.front().diagnostics,
                      core::DiagCode::InductorLoop),
            nullptr);
  EXPECT_EQ(report.awe_stats.lint_errors, 0u);
}

TEST(TimingPreflight, SessionCachesLintReportsByContent) {
  timing::AnalysisOptions options;
  options.threads = 1;
  timing::Session session(inductor_loop_design(), options);
  const timing::TimingReport cold = session.analyze();
  EXPECT_EQ(cold.failed_stages, 1u);
  const auto after_cold = session.cache_stats();
  EXPECT_EQ(after_cold.lint_entries, 1u);
  EXPECT_GE(after_cold.lint_misses, 1u);
  EXPECT_EQ(after_cold.lint_hits, 0u);

  const timing::TimingReport warm = session.analyze();
  EXPECT_EQ(warm.failed_stages, 1u);
  const auto after_warm = session.cache_stats();
  EXPECT_GE(after_warm.lint_hits, 1u);
  // The warm report carries the same lint diagnostics as the cold one.
  ASSERT_EQ(warm.stages.size(), cold.stages.size());
  EXPECT_NE(find_code(warm.stages.front().diagnostics,
                      core::DiagCode::InductorLoop),
            nullptr);
}

// ---------------------------------------------------------------------
// The standalone CLI: --json output round-trips through the obs parser.

TEST(LintCli, JsonOutputRoundTripsThroughObsParser) {
  const std::string out_path =
      testing::TempDir() + "awesim_lint_roundtrip.json";
  const std::string cmd = std::string(AWESIM_LINT_BIN) + " --json=" +
                          out_path + " " +
                          corpus_path("floating_island.sp");
  const int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 1);  // errors found -> nonzero exit

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(buffer.str());

  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema_version"), nullptr);
  const obs::json::Value* files = doc.find("files");
  ASSERT_NE(files, nullptr);
  ASSERT_EQ(files->size(), 1u);
  const obs::json::Value& file = files->at(0);
  EXPECT_EQ(file.find("topology")->as_string(), "rc-mesh");
  EXPECT_FALSE(file.find("ok")->as_bool());
  EXPECT_EQ(file.find("errors")->as_number(), 1.0);
  const obs::json::Value* diags = file.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  bool found = false;
  for (std::size_t i = 0; i < diags->size(); ++i) {
    const obs::json::Value& d = diags->at(i);
    if (d.find("code")->as_string() != "floating-island") continue;
    found = true;
    EXPECT_EQ(d.find("severity")->as_string(), "error");
    EXPECT_EQ(d.find("line")->as_number(), 5.0);
    EXPECT_EQ(d.find("column")->as_number(), 1.0);
  }
  EXPECT_TRUE(found);
  std::remove(out_path.c_str());
}

TEST(LintCli, CleanFileExitsZero) {
  const std::string cmd = std::string(AWESIM_LINT_BIN) + " " +
                          netlist_path("fig4_rc_tree.sp") +
                          " > /dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 0);
}

}  // namespace awesim::check
