// Sparse matrix and sparse LU: construction, products, orderings, and
// factorization correctness against the dense solver.
#include <gtest/gtest.h>

#include <random>

#include "la/lu.h"
#include "la/sparse.h"

namespace la = awesim::la;

namespace {

// Random sparse diagonally-dominant-ish matrix as triplets.
std::vector<la::Triplet> random_triplets(std::size_t n, unsigned seed,
                                         double density = 0.15) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        t.push_back({i, j, 3.0 + val(rng)});
      } else if (coin(rng) < density) {
        t.push_back({i, j, val(rng)});
      }
    }
  }
  return t;
}

// Tridiagonal "RC line" pattern, the shape AWE actually sees.
std::vector<la::Triplet> line_triplets(std::size_t n) {
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0 + 0.01 * static_cast<double>(i)});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  return t;
}

}  // namespace

TEST(SparseMatrix, FromTripletsSumsDuplicates) {
  const auto m = la::SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, 5.0}, {0, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  const auto d = m.to_dense();
  EXPECT_EQ(d(0, 0), 3.0);
  EXPECT_EQ(d(1, 0), 5.0);
  EXPECT_EQ(d(0, 1), -1.0);
  EXPECT_EQ(d(1, 1), 0.0);
}

TEST(SparseMatrix, RejectsOutOfRange) {
  EXPECT_THROW(la::SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
}

TEST(SparseMatrix, ApplyMatchesDense) {
  const auto t = random_triplets(17, 5);
  const auto m = la::SparseMatrix::from_triplets(17, 17, t);
  const auto d = m.to_dense();
  la::RealVector x(17);
  for (std::size_t i = 0; i < 17; ++i) x[i] = std::sin(1.0 + i);
  const auto y1 = m.apply(x);
  const auto y2 = d * x;
  for (std::size_t i = 0; i < 17; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  const auto z1 = m.apply_transposed(x);
  const auto z2 = d.transpose() * x;
  for (std::size_t i = 0; i < 17; ++i) EXPECT_NEAR(z1[i], z2[i], 1e-12);
}

TEST(SparseLu, SolvesRandomSystems) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    const std::size_t n = 11 + 9 * seed;
    const auto t = random_triplets(n, seed);
    const auto m = la::SparseMatrix::from_triplets(n, n, t);
    la::RealVector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = std::cos(0.3 * i) - 0.2;
    const auto x_sparse = la::SparseLu(m).solve(b);
    const auto x_dense = la::solve(m.to_dense(), b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-9) << "seed " << seed;
    }
  }
}

TEST(SparseLu, NaturalOrderingAlsoCorrect) {
  const auto t = random_triplets(40, 3);
  const auto m = la::SparseMatrix::from_triplets(40, 40, t);
  la::RealVector b(40, 1.0);
  const auto x1 = la::SparseLu(m, la::Ordering::Natural).solve(b);
  const auto x2 = la::solve(m.to_dense(), b);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(SparseLu, PivotsOnZeroDiagonal) {
  // MNA voltage-source pattern: zero diagonal block, solvable only with
  // row pivoting.
  const auto m = la::SparseMatrix::from_triplets(
      3, 3,
      {{0, 0, 1.0}, {0, 2, 1.0}, {2, 0, 1.0}, {1, 1, 2.0}, {1, 2, -1.0},
       {2, 1, 0.0}});
  la::RealVector b{1.0, 2.0, 3.0};
  const auto x = la::SparseLu(m).solve(b);
  const auto y = m.apply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], b[i], 1e-10);
}

TEST(SparseLu, ThrowsOnSingular) {
  const auto m = la::SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}});  // second row empty
  EXPECT_THROW(la::SparseLu{m}, la::SingularMatrixError);
}

TEST(SparseLu, LineSystemLowFill) {
  // A tridiagonal system must factor with O(n) fill.
  const std::size_t n = 400;
  const auto m = la::SparseMatrix::from_triplets(n, n, line_triplets(n));
  la::SparseLu lu(m);
  EXPECT_LT(lu.factor_nnz(), 6 * n);
  la::RealVector b(n, 1.0);
  const auto x = lu.solve(b);
  const auto y = m.apply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], 1.0, 1e-9);
}

TEST(SparseLu, RcmReducesFillOnShuffledLine) {
  // Shuffle a line graph's labels: natural-order factorization fills in;
  // RCM recovers the banded structure.
  const std::size_t n = 200;
  std::mt19937 rng(11);
  std::vector<std::size_t> relabel(n);
  std::iota(relabel.begin(), relabel.end(), std::size_t{0});
  std::shuffle(relabel.begin(), relabel.end(), rng);
  std::vector<la::Triplet> t;
  for (const auto& trip : line_triplets(n)) {
    t.push_back({relabel[trip.row], relabel[trip.col], trip.value});
  }
  const auto m = la::SparseMatrix::from_triplets(n, n, t);
  la::SparseLu natural(m, la::Ordering::Natural);
  la::SparseLu rcm(m, la::Ordering::ReverseCuthillMcKee);
  EXPECT_LT(rcm.factor_nnz(), natural.factor_nnz());
  EXPECT_LT(rcm.factor_nnz(), 8 * n);
  // Both still correct.
  la::RealVector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = 0.1 * i;
  const auto x1 = natural.solve(b);
  const auto x2 = rcm.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(SparseLu, RejectsNonSquare) {
  const auto m = la::SparseMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(la::SparseLu{m}, std::invalid_argument);
}

TEST(SparseLu, RhsSizeMismatch) {
  const auto m =
      la::SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  la::SparseLu lu(m);
  EXPECT_THROW(lu.solve({1.0}), std::invalid_argument);
}

TEST(Rcm, OrdersPathGraphContiguously) {
  // On a path graph, RCM must produce a traversal where consecutive
  // positions are graph-adjacent (bandwidth 1).
  const std::size_t n = 50;
  const auto m = la::SparseMatrix::from_triplets(n, n, line_triplets(n));
  const auto q = la::reverse_cuthill_mckee(m);
  ASSERT_EQ(q.size(), n);
  for (std::size_t k = 1; k < n; ++k) {
    const auto diff = q[k] > q[k - 1] ? q[k] - q[k - 1] : q[k - 1] - q[k];
    EXPECT_EQ(diff, 1u) << "position " << k;
  }
}
