// Snapshot isolation under real concurrency -- the test the TSan CI leg
// exists for.  A writer thread mutates the SnapshotStore (publishing new
// generations) while K reader threads pin snapshots and query them; the
// invariants:
//
//   * two queries of one pinned snapshot are bit-identical, regardless
//     of how many generations the writer published in between;
//   * every reader of a given generation sees the same report as every
//     other reader of that generation (cross-thread bit-identity);
//   * a failed mutation publishes nothing;
//   * the shared stage cache survives cancellation mid-churn.
//
// Reports are compared through their JSON rendering: one string capturing
// every arrival, slack, and diagnostic -- a single differing bit anywhere
// fails the EXPECT_EQ.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/diagnostic.h"
#include "obs/json.h"
#include "serve/protocol.h"
#include "timing/snapshot.h"

namespace awesim {
namespace {

timing::AnalysisOptions serial_options() {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  return opt;
}

/// The report rendered as one string, minus the `stats` cost counters:
/// those reflect work actually performed (cache hits, factorizations)
/// and legitimately differ warm vs. cold.  Everything else -- arrivals,
/// slacks, paths, per-stage delays, diagnostics -- is the bit-identity
/// contract.
std::string report_fingerprint(const timing::Snapshot& snap) {
  const obs::json::Value full =
      serve::report_to_json(*snap.report(), /*include_stages=*/true);
  obs::json::Value stripped = obs::json::Value::object();
  for (const auto& [key, value] : full.items()) {
    if (key != "stats") stripped.set(key, value);
  }
  return stripped.dump();
}

TEST(ServeConcurrency, ReadersSeeBitIdenticalSnapshotsDuringWrites) {
  constexpr int kReaders = 4;
  constexpr int kWrites = 24;
  constexpr int kReadsPerReader = 48;

  timing::SnapshotStore store(serve::builtin_design("chain8"),
                              serial_options());

  // generation -> canonical fingerprint, filled in by whichever thread
  // sees that generation first; every later sighting must match.
  std::mutex canon_mutex;
  std::map<std::uint64_t, std::string> canon;
  std::atomic<int> mismatches{0};
  std::atomic<bool> writer_done{false};

  auto record = [&](std::uint64_t generation, const std::string& print) {
    std::lock_guard<std::mutex> lock(canon_mutex);
    auto [it, inserted] = canon.emplace(generation, print);
    if (!inserted && it->second != print) ++mismatches;
  };

  std::thread writer([&store, &writer_done] {
    for (int i = 0; i < kWrites; ++i) {
      store.mutate([i](timing::Session& s) {
        s.set_drive_resistance("g0", 500.0 + 25.0 * i);
      });
      std::this_thread::yield();
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &record] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::shared_ptr<const timing::Snapshot> snap =
            store.current();
        // Two queries of one pin must match each other exactly...
        const std::string first = report_fingerprint(*snap);
        const std::string second = report_fingerprint(*snap);
        EXPECT_EQ(first, second)
            << "a pinned snapshot changed under a reader";
        // ...and match every other thread's view of that generation.
        record(snap->generation(), first);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(mismatches.load(), 0)
      << "two readers of one generation saw different reports";
  EXPECT_GE(canon.size(), 2u)
      << "the readers never overlapped a write; raise kReadsPerReader";
}

TEST(ServeConcurrency, FailedMutationsPublishNothingUnderChurn) {
  timing::SnapshotStore store(serve::builtin_design("chain4"),
                              serial_options());
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&store, &failures, w] {
      for (int i = 0; i < 16; ++i) {
        if ((i + w) % 3 == 0) {
          try {
            store.mutate([](timing::Session& s) {
              s.set_drive_resistance("no_such_gate", 1.0);
            });
          } catch (const std::exception&) {
            ++failures;
          }
        } else {
          store.mutate([w, i](timing::Session& s) {
            s.set_drive_resistance("g1", 400.0 + 10.0 * (w * 16 + i));
          });
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_GT(failures.load(), 0);
  // Every failed mutate threw before publishing: the generation counter
  // advanced exactly once per successful mutation.
  const int successes = 3 * 16 - failures.load();
  EXPECT_EQ(store.current()->generation(),
            static_cast<std::uint64_t>(successes));
}

TEST(ServeConcurrency, CancellationDuringChurnLeavesCacheWarm) {
  timing::SnapshotStore store(serve::builtin_design("chain12"),
                              serial_options());
  std::atomic<bool> stop{false};
  std::thread writer([&store, &stop] {
    for (int i = 0; i < 12 && !stop.load(); ++i) {
      store.mutate([i](timing::Session& s) {
        s.set_drive_resistance("g2", 600.0 + 30.0 * i);
      });
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 3; ++t) {
    cancellers.emplace_back([&store] {
      for (int i = 0; i < 8; ++i) {
        core::CancelToken token;
        token.set_budget(1);  // guaranteed to trip on any cold analysis
        const std::shared_ptr<const timing::Snapshot> snap =
            store.current();
        try {
          snap->report(&token);
        } catch (const core::DiagnosticError& e) {
          EXPECT_EQ(e.diagnostic().code, core::DiagCode::BudgetExceeded);
        }
      }
    });
  }
  for (std::thread& t : cancellers) t.join();
  stop.store(true);
  writer.join();

  // After all that cancellation the final snapshot still answers, and
  // bit-identically to a cold store holding the same design.
  const std::shared_ptr<const timing::Snapshot> survivor = store.current();
  const std::string warm = report_fingerprint(*survivor);
  timing::SnapshotStore cold(survivor->design(), serial_options());
  EXPECT_EQ(warm, report_fingerprint(*cold.current()))
      << "cancellation corrupted the shared stage cache";
}

}  // namespace
}  // namespace awesim
