// Engine scenarios beyond the paper's figures: multiple sources, current
// sources, PWL trains, controlled-source networks, differential drives --
// each checked against the reference transient simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "core/engine.h"
#include "sim/transient.h"

namespace awesim {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;
using core::Engine;
using core::EngineOptions;

namespace {

double compare_to_sim(Circuit& ckt, circuit::NodeId out, int order,
                      double t_end) {
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = order;
  const auto result = engine.approximate(out, opt);
  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const auto ref = sim.run_adaptive({out}, t_end, aopt);
  return result.approximation.sample(0.0, t_end, 1501)
      .relative_error_vs(ref);
}

}  // namespace

TEST(Scenarios, TwoSourcesSwitchingAtDifferentTimes) {
  // Two drivers into a shared RC network, stepping 0 and 400 ns apart:
  // the atom superposition must track both events.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", a, kGround, Stimulus::step(0.0, 3.0));
  ckt.add_vsource("V2", b, kGround, Stimulus::step(0.0, 2.0, 400e-9));
  ckt.add_resistor("R1", a, mid, 1e3);
  ckt.add_resistor("R2", b, mid, 2e3);
  ckt.add_capacitor("C1", mid, kGround, 100e-12);
  // Final value: superposition divider = 3*(2k)/(3k) + 2*(1k)/(3k).
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(mid, opt);
  EXPECT_NEAR(result.approximation.final_value(),
              3.0 * 2.0 / 3.0 + 2.0 / 3.0, 1e-9);
  EXPECT_LT(compare_to_sim(ckt, mid, 2, 1.2e-6), 0.01);
}

TEST(Scenarios, OpposingRampsCancel) {
  // Equal and opposite ramps through symmetric resistors: the midpoint
  // must stay identically at zero.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", a, kGround, Stimulus::ramp_step(0.0, 2.0, 1e-6));
  ckt.add_vsource("V2", b, kGround, Stimulus::ramp_step(0.0, -2.0, 1e-6));
  ckt.add_resistor("R1", a, mid, 1e3);
  ckt.add_resistor("R2", b, mid, 1e3);
  ckt.add_capacitor("C1", mid, kGround, 1e-9);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(mid, opt);
  for (double t : {0.0, 0.5e-6, 1e-6, 3e-6}) {
    EXPECT_NEAR(result.approximation.value(t), 0.0, 1e-9) << t;
  }
}

TEST(Scenarios, CurrentSourcePulseIntoRcMesh) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_isource("I1", kGround, a,
                  Stimulus::pwl({{0.0, 0.0},
                                 {10e-9, 1e-3},
                                 {50e-9, 1e-3},
                                 {60e-9, 0.0}}));
  ckt.add_resistor("R1", a, b, 500.0);
  ckt.add_resistor("R2", b, kGround, 1.5e3);
  ckt.add_capacitor("C1", a, kGround, 5e-12);
  ckt.add_capacitor("C2", b, kGround, 20e-12);
  EXPECT_LT(compare_to_sim(ckt, b, 2, 200e-9), 0.02);
}

TEST(Scenarios, VcvsBufferedTwoStageNet) {
  // Stage 1 RC -> ideal buffer (VCVS) -> stage 2 RC: AWE handles the
  // controlled source and the exact cascade response is the product of
  // two first-order sections (a repeated-structure test).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto s1 = ckt.node("s1");
  const auto bo = ckt.node("bo");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", in, s1, 1e3);
  ckt.add_capacitor("C1", s1, kGround, 1e-9);
  ckt.add_vcvs("E1", bo, kGround, s1, kGround, 1.0);
  ckt.add_resistor("R2", bo, out, 2e3);
  ckt.add_capacitor("C2", out, kGround, 0.5e-9);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(out, opt);
  // Exact: two cascaded poles 1/tau1=1e6, 1/tau2=1e6 equal taus -> the
  // repeated-pole path: v = 1 - (1 + t/tau) e^{-t/tau}.
  const double tau = 1e-6;
  for (double t : {0.2e-6, 1e-6, 3e-6}) {
    const double exact = 1.0 - (1.0 + t / tau) * std::exp(-t / tau);
    EXPECT_NEAR(result.approximation.value(t), exact, 1e-5) << t;
  }
  // The match must have produced a repeated pole (power-2 term).
  bool has_power2 = false;
  for (const auto& term : result.approximation.atoms()[1].terms) {
    if (term.power == 2) has_power2 = true;
  }
  EXPECT_TRUE(has_power2);
}

TEST(Scenarios, CccsCurrentMirrorLoadDynamics) {
  // V1 drives R1; CCCS mirrors that current into an RC load.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Stimulus::step(0.0, 1.0));
  ckt.add_resistor("R1", a, kGround, 1e3);
  ckt.add_cccs("F1", kGround, b, "V1", 2.0);
  ckt.add_resistor("RL", b, kGround, 1e3);
  ckt.add_capacitor("CL", b, kGround, 1e-9);
  EXPECT_LT(compare_to_sim(ckt, b, 1, 6e-6), 1e-3);
}

TEST(Scenarios, InductorInitialCurrentRelaxation) {
  // Inductor with initial current into a parallel RC: second-order
  // transient with energy starting in the inductor.
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_inductor("L1", a, kGround, 1e-6, 10e-3);  // 10 mA initial
  ckt.add_resistor("R1", a, kGround, 100.0);
  ckt.add_capacitor("C1", a, kGround, 1e-9);
  EXPECT_LT(compare_to_sim(ckt, a, 2, 1e-6), 0.01);
}

TEST(Scenarios, MixedIcAndLateStep) {
  // Nonequilibrium IC plus a stimulus event later in time: the IC atom
  // and the delayed event atom must both be represented.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto m = ckt.node("m");
  const auto o = ckt.node("o");
  ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 5.0, 2e-6));
  ckt.add_resistor("R1", in, m, 1e3);
  ckt.add_resistor("R2", m, o, 1e3);
  ckt.add_capacitor("C1", m, kGround, 1e-9, 3.0);  // pre-charged
  ckt.add_capacitor("C2", o, kGround, 1e-9);
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 2;
  const auto result = engine.approximate(o, opt);
  // Before the step: pure IC relaxation toward 0 (source still at 0).
  EXPECT_GT(result.approximation.value(0.3e-6), 0.1);
  // Long after the step: settles at 5.
  EXPECT_NEAR(result.approximation.value(30e-6), 5.0, 1e-3);
  EXPECT_LT(compare_to_sim(ckt, o, 2, 10e-6), 0.02);
}

TEST(Scenarios, DifferentialFloatingCapBridge) {
  // Floating cap bridging two driven branches -- the structure RC-tree
  // methods cannot express at all.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto x = ckt.node("x");
  const auto y = ckt.node("y");
  ckt.add_vsource("V1", in, kGround, Stimulus::ramp_step(0.0, 1.0, 5e-9));
  ckt.add_resistor("R1", in, x, 1e3);
  ckt.add_resistor("R2", in, y, 3e3);
  ckt.add_capacitor("Cx", x, kGround, 1e-12);
  ckt.add_capacitor("Cy", y, kGround, 2e-12);
  ckt.add_capacitor("Cb", x, y, 5e-12);  // bridge
  EXPECT_LT(compare_to_sim(ckt, y, 3, 60e-9), 0.01);
}

TEST(Scenarios, DeepRcLineHighOrder) {
  // 60-section line: moments through dozens of poles; q=4 should deliver
  // an excellent waveform at the far end.
  Circuit ckt;
  auto prev = ckt.node("in");
  ckt.add_vsource("V1", prev, kGround, Stimulus::step(0.0, 1.0));
  for (int i = 1; i <= 60; ++i) {
    const auto n = ckt.node("n" + std::to_string(i));
    ckt.add_resistor("R" + std::to_string(i), prev, n, 100.0);
    ckt.add_capacitor("C" + std::to_string(i), n, kGround, 1e-12);
    prev = n;
  }
  EXPECT_LT(compare_to_sim(ckt, prev, 4, 100e-9), 0.01);
}

TEST(Scenarios, IllConditionedHighOrderStepsDownGracefully) {
  // Asking q=8 of a uniform 12-section ladder drives the eq. 24 Hankel
  // system far beyond its numerical rank: the far-node response is
  // dominated by a handful of modes and the high-order rows are rounding
  // noise.  The guarded pipeline must step the order down (recording the
  // conditioning estimate in a diagnostic) and still land on a stable
  // model that tracks the reference simulation -- never return spurious
  // poles manufactured from the ill-conditioned solve.
  Circuit ckt;
  auto prev = ckt.node("in");
  ckt.add_vsource("V1", prev, kGround, Stimulus::step(0.0, 1.0));
  for (int i = 1; i <= 12; ++i) {
    const auto n = ckt.node("n" + std::to_string(i));
    ckt.add_resistor("R" + std::to_string(i), prev, n, 1e3);
    ckt.add_capacitor("C" + std::to_string(i), n, kGround, 1e-12);
    prev = n;
  }
  Engine engine(ckt);
  EngineOptions opt;
  opt.order = 8;
  const auto result = engine.approximate(prev, opt);
  EXPECT_TRUE(result.stable);
  EXPECT_LT(result.order_used, 8);
  EXPECT_GE(result.order_used, 2);
  // The rejection of the higher orders left its conditioning fingerprint.
  bool saw_order_reduction = false;
  for (const auto& d : result.diagnostics) {
    if (d.code == core::DiagCode::OrderReduced) {
      saw_order_reduction = true;
      EXPECT_GT(d.condition_estimate, 1e10);
    }
  }
  EXPECT_TRUE(saw_order_reduction);
  // The degraded model still reproduces the waveform.
  sim::TransientSimulator sim(ckt);
  sim::AdaptiveOptions aopt;
  aopt.tolerance = 1e-7;
  const auto ref = sim.run_adaptive({prev}, 300e-9, aopt);
  EXPECT_LT(result.approximation.sample(0.0, 300e-9, 1501)
                .relative_error_vs(ref),
            0.01);
}

}  // namespace awesim
