// Eigenvalue solver: the foundation of the "actual poles" columns in the
// paper's Tables I/II and of the companion-matrix polynomial root finder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <random>

#include "la/eig.h"
#include "la/matrix.h"

namespace la = awesim::la;

namespace {

// Sort complex values for order-insensitive comparison.
void sort_eigs(la::ComplexVector& v) {
  std::sort(v.begin(), v.end(), [](const la::Complex& a, const la::Complex& b) {
    if (a.real() != b.real()) return a.real() < b.real();
    return a.imag() < b.imag();
  });
}

void expect_eigs_near(la::ComplexVector got, la::ComplexVector want,
                      double tol) {
  ASSERT_EQ(got.size(), want.size());
  sort_eigs(got);
  sort_eigs(want);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), tol) << "eig " << i;
    EXPECT_NEAR(got[i].imag(), want[i].imag(), tol) << "eig " << i;
  }
}

}  // namespace

TEST(Eig, DiagonalMatrix) {
  la::RealMatrix a{{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 7.5}};
  expect_eigs_near(la::eigenvalues(a), {{3.0, 0.0}, {-1.0, 0.0}, {7.5, 0.0}},
                   1e-10);
}

TEST(Eig, OneByOne) {
  la::RealMatrix a{{-4.2}};
  expect_eigs_near(la::eigenvalues(a), {{-4.2, 0.0}}, 1e-14);
}

TEST(Eig, RotationGivesConjugatePair) {
  // [[0,-1],[1,0]] has eigenvalues +-i.
  la::RealMatrix a{{0.0, -1.0}, {1.0, 0.0}};
  expect_eigs_near(la::eigenvalues(a), {{0.0, 1.0}, {0.0, -1.0}}, 1e-12);
}

TEST(Eig, UpperTriangular) {
  la::RealMatrix a{{1.0, 5.0, -2.0}, {0.0, 2.0, 9.0}, {0.0, 0.0, 3.0}};
  expect_eigs_near(la::eigenvalues(a), {{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}},
                   1e-9);
}

TEST(Eig, KnownNonsymmetric) {
  // [[4,1],[2,3]]: trace 7, det 10 -> eigenvalues 5 and 2.
  la::RealMatrix a{{4.0, 1.0}, {2.0, 3.0}};
  expect_eigs_near(la::eigenvalues(a), {{5.0, 0.0}, {2.0, 0.0}}, 1e-10);
}

TEST(Eig, DampedOscillatorCompanion) {
  // Characteristic polynomial s^2 + 2s + 5 -> s = -1 +- 2i.
  la::RealMatrix a{{0.0, -5.0}, {1.0, -2.0}};
  expect_eigs_near(la::eigenvalues(a), {{-1.0, 2.0}, {-1.0, -2.0}}, 1e-10);
}

TEST(Eig, TraceAndDeterminantInvariants) {
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial) % 9;
    la::RealMatrix a(n, n);
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
      trace += a(i, i);
    }
    const auto eig = la::eigenvalues(a);
    la::Complex sum{0.0, 0.0};
    for (const auto& e : eig) sum += e;
    EXPECT_NEAR(sum.real(), trace, 1e-8 * std::max(1.0, std::abs(trace)))
        << "trial " << trial;
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8) << "trial " << trial;
  }
}

TEST(Eig, SymmetricMatrixEigenvaluesAreReal) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 12;
  la::RealMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      a(i, j) = a(j, i) = dist(rng);
    }
  }
  for (const auto& e : la::eigenvalues(a)) {
    EXPECT_NEAR(e.imag(), 0.0, 1e-7);
  }
}

TEST(Eig, BadlyScaledMatrixStillAccurate) {
  // Similarity-scaled diagonal system: balancing must recover {1, 2, 3}.
  la::RealMatrix a{{1.0, 1e9, 0.0}, {0.0, 2.0, 1e-9}, {0.0, 0.0, 3.0}};
  expect_eigs_near(la::eigenvalues(a), {{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}},
                   1e-6);
}

TEST(Eig, StiffTimeConstantSpread) {
  // Diagonal with 6 decades of spread: every eigenvalue must be resolved
  // to good relative accuracy (the Table I stiffness scenario).
  la::RealMatrix a(5, 5);
  const double values[5] = {1e-13, 3e-12, 5e-11, 2e-10, 7e-9};
  for (std::size_t i = 0; i < 5; ++i) a(i, i) = values[i];
  a(0, 4) = 1e-12;  // small coupling off-diagonal
  auto eig = la::eigenvalues_by_magnitude(a);
  ASSERT_EQ(eig.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(eig[i].real(), values[i], 1e-3 * values[i]);
  }
}

TEST(Eig, ByMagnitudeIsSorted) {
  la::RealMatrix a{{0.0, -5.0}, {1.0, -2.0}};
  const auto eig = la::eigenvalues_by_magnitude(a);
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_LE(std::abs(eig[0]), std::abs(eig[1]));
}

TEST(Eig, ThrowsOnNonSquare) {
  la::RealMatrix a(2, 3);
  EXPECT_THROW(la::eigenvalues(a), std::invalid_argument);
}

TEST(Eig, ZeroMatrix) {
  la::RealMatrix a(3, 3);
  for (const auto& e : la::eigenvalues(a)) {
    EXPECT_EQ(e, la::Complex(0.0, 0.0));
  }
}
