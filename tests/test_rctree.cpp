// RC-tree baseline methods: extraction, tree-walk Elmore/moments,
// delay bounds, two-pole model, generators.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "circuits/paper_circuits.h"
#include "rctree/rctree.h"

namespace awesim::rctree {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

namespace {

std::size_t tree_index_of(const RcTree& tree, const Circuit& ckt,
                          const std::string& node_name) {
  const auto id = ckt.find_node(node_name);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree.circuit_node[i] == id) return i;
  }
  ADD_FAILURE() << "node " << node_name << " not in tree";
  return 0;
}

}  // namespace

TEST(RcTree, ExtractsFig4) {
  auto ckt = circuits::fig4_rc_tree();
  const auto tree = extract(ckt);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->size(), 5u);  // source node + 4 tree nodes
}

TEST(RcTree, ElmoreMatchesHandComputedFig4) {
  auto ckt = circuits::fig4_rc_tree();
  const auto tree = extract(ckt);
  ASSERT_TRUE(tree.has_value());
  const auto delays = elmore_delays(*tree);
  // Hand values from eq. 50 with R=1k, C1=C2=50n, C3=C4=100n.
  EXPECT_NEAR(delays[tree_index_of(*tree, ckt, "n1")], 0.3e-3, 1e-12);
  EXPECT_NEAR(delays[tree_index_of(*tree, ckt, "n2")], 0.35e-3, 1e-12);
  EXPECT_NEAR(delays[tree_index_of(*tree, ckt, "n3")], 0.5e-3, 1e-12);
  EXPECT_NEAR(delays[tree_index_of(*tree, ckt, "n4")], 0.6e-3, 1e-12);
}

TEST(RcTree, RejectsNonTrees) {
  {
    // Grounded resistor.
    auto ckt = circuits::fig9_grounded_resistor();
    EXPECT_FALSE(extract(ckt).has_value());
  }
  {
    // Floating capacitor.
    auto ckt = circuits::fig22_floating_cap();
    EXPECT_FALSE(extract(ckt).has_value());
  }
  {
    // Inductors.
    auto ckt = circuits::fig25_rlc_ladder();
    EXPECT_FALSE(extract(ckt).has_value());
  }
  {
    // Resistor loop.
    Circuit ckt;
    const auto in = ckt.node("in");
    const auto a = ckt.node("a");
    const auto b = ckt.node("b");
    ckt.add_vsource("V1", in, kGround, Stimulus::step(0.0, 1.0));
    ckt.add_resistor("R1", in, a, 1.0);
    ckt.add_resistor("R2", a, b, 1.0);
    ckt.add_resistor("R3", in, b, 1.0);  // loop
    ckt.add_capacitor("C1", b, kGround, 1.0);
    EXPECT_FALSE(extract(ckt).has_value());
  }
  {
    // Two sources.
    Circuit ckt;
    const auto a = ckt.node("a");
    const auto b = ckt.node("b");
    ckt.add_vsource("V1", a, kGround, Stimulus::step(0.0, 1.0));
    ckt.add_vsource("V2", b, kGround, Stimulus::step(0.0, 1.0));
    ckt.add_resistor("R1", a, b, 1.0);
    ckt.add_capacitor("C1", b, kGround, 1.0);
    EXPECT_FALSE(extract(ckt).has_value());
  }
}

TEST(RcTree, TransferMomentsStructure) {
  auto ckt = circuits::fig4_rc_tree();
  const auto tree = extract(ckt);
  ASSERT_TRUE(tree.has_value());
  const auto m = transfer_moments(*tree, 3);
  ASSERT_EQ(m.size(), 3u);
  // m0 = 1 at every node; m1 = -Elmore.
  for (std::size_t i = 0; i < tree->size(); ++i) {
    EXPECT_NEAR(m[0][i], 1.0, 1e-15);
  }
  const auto delays = elmore_delays(*tree);
  for (std::size_t i = 0; i < tree->size(); ++i) {
    EXPECT_NEAR(m[1][i], -delays[i], 1e-18);
  }
  // m2 is positive for RC trees (alternating moment signs).
  for (std::size_t i = 1; i < tree->size(); ++i) {
    EXPECT_GT(m[2][i], 0.0);
  }
}

TEST(RcTree, SinglePoleResponseShape) {
  EXPECT_NEAR(single_pole_response(0.0, 5.0, 1.0), 0.0, 1e-15);
  EXPECT_NEAR(single_pole_response(1.0, 5.0, 1.0), 5.0 * (1 - std::exp(-1.0)),
              1e-12);
  EXPECT_NEAR(single_pole_response(50.0, 5.0, 1.0), 5.0, 1e-9);
}

TEST(RcTree, DelayBoundsBracketTrueDelayOnChain) {
  // 5-section uniform chain: true 50% delay computed analytically-ish via
  // the two-pole model is unnecessary -- just check bound ordering and
  // that the Elmore delay sits between the bounds at 50%.
  RcTree tree;
  tree.parent = {-1, 0, 1, 2, 3, 4};
  tree.resistance = {0, 1, 1, 1, 1, 1};
  tree.capacitance = {0, 1, 1, 1, 1, 1};
  tree.circuit_node.assign(6, 0);
  const auto b = delay_bounds(tree, 5, 0.5);
  EXPECT_GT(b.upper, b.lower);
  EXPECT_GE(b.lower, 0.0);
  const double elmore = elmore_delays(tree)[5];
  EXPECT_LT(b.lower, elmore);
  EXPECT_GT(b.upper, elmore);
}

TEST(RcTree, BoundsTightenWithThreshold) {
  RcTree tree = random_tree(20, 99);
  const auto b50 = delay_bounds(tree, 10, 0.5);
  const auto b90 = delay_bounds(tree, 10, 0.9);
  // Higher threshold -> later upper bound.
  EXPECT_GT(b90.upper, b50.upper);
  EXPECT_THROW(delay_bounds(tree, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(delay_bounds(tree, 100, 0.5), std::out_of_range);
}

TEST(RcTree, TwoPoleModelMatchesMomentsAndImprovesOnSinglePole) {
  auto ckt = circuits::fig4_rc_tree();
  const auto tree = extract(ckt);
  ASSERT_TRUE(tree.has_value());
  const std::size_t n4 = tree_index_of(*tree, ckt, "n4");
  const auto model = two_pole_model(*tree, n4);
  ASSERT_FALSE(model.is_single_pole);
  EXPECT_LT(model.p1, 0.0);
  EXPECT_LT(model.p2, 0.0);
  // Unit step response: 0 at t=0, 1 at infinity.
  EXPECT_NEAR(model.unit_step_response(0.0), 0.0, 1e-9);
  EXPECT_NEAR(model.unit_step_response(1.0), 1.0, 1e-6);
  // Moment check: integral of (1 - v) = Elmore delay.
  // 1 - v = -k1 e^{p1 t} - k2 e^{p2 t}; integral = k1/p1 + k2/p2.
  const double integral = model.k1 / model.p1 + model.k2 / model.p2;
  EXPECT_NEAR(integral, elmore_delays(*tree)[n4], 1e-9);
}

TEST(RcTree, TwoPoleFallsBackOnSingleSection) {
  RcTree tree;
  tree.parent = {-1, 0};
  tree.resistance = {0, 2.0};
  tree.capacitance = {0, 0.5};
  tree.circuit_node = {0, 0};
  const auto model = two_pole_model(tree, 1);
  EXPECT_TRUE(model.is_single_pole);
  EXPECT_NEAR(model.p1, -1.0, 1e-12);
}

TEST(RcTree, ToCircuitRoundTrip) {
  RcTree tree = random_tree(15, 3);
  auto ckt = to_circuit(tree, Stimulus::step(0.0, 1.0));
  const auto back = extract(ckt);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), tree.size());
  const auto d1 = elmore_delays(tree);
  const auto d2 = elmore_delays(*back);
  // The BFS order may differ; compare sorted delay multisets.
  auto s1 = d1;
  auto s2 = d2;
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s1[i], s2[i], 1e-15 + 1e-9 * s1[i]);
  }
}

TEST(RcTree, RandomTreeDeterministicInSeed) {
  const RcTree a = random_tree(30, 7);
  const RcTree b = random_tree(30, 7);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.resistance, b.resistance);
  const RcTree c = random_tree(30, 8);
  EXPECT_NE(a.resistance, c.resistance);
}

}  // namespace awesim::rctree
