// Property tests for K-worst path enumeration, against brute force.
//
// TimingGraph::build needs only a finished TimingReport, so these tests
// synthesize reports directly -- seeded random DAGs with known arc
// delays, no AWE engine anywhere -- and check the enumerator against an
// exhaustive DFS:
//   * the K-worst list is exactly the first K of the brute-force list
//     sorted by (arrival desc, arc-sequence lex asc);
//   * it is duplicate-free and ordered;
//   * from/to/through filters match post-hoc filtering of brute force;
//   * K = 1 is the worst-slack endpoint's path;
//   * everything is deterministic run-to-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "timing/graph.h"
#include "timing/paths.h"
#include "util/random_circuits.h"

namespace awesim::timing {

namespace {

// The seeded DAG-report generator and gate labels come from the shared
// test utility (tests/util/random_circuits.*).
using testutil::gate_name;
using testutil::random_report;

struct BrutePath {
  double arrival = 0.0;
  std::vector<std::size_t> arcs;
};

void dfs(const TimingGraph& g, std::size_t node, double arrival,
         std::vector<std::size_t>& arcs, std::vector<BrutePath>& out) {
  const TimingNode& n = g.nodes()[node];
  if (n.is_endpoint) {
    out.push_back({arrival, arcs});
    return;
  }
  for (const std::size_t arc_id : n.fanout) {
    const TimingArc& arc = g.arcs()[arc_id];
    if (g.nodes()[arc.to].is_source) continue;  // pinned pin: no path
    arcs.push_back(arc_id);
    dfs(g, arc.to, arrival + arc.delay, arcs, out);
    arcs.pop_back();
  }
}

// Every source-to-endpoint path, sorted exactly as k_worst_paths emits:
// descending arrival, ties to the lexicographically smaller arc list.
std::vector<BrutePath> brute_force(const TimingGraph& g) {
  std::vector<BrutePath> out;
  std::vector<std::size_t> arcs;
  for (const std::size_t src : g.sources()) dfs(g, src, 0.0, arcs, out);
  std::sort(out.begin(), out.end(), [](const BrutePath& a,
                                       const BrutePath& b) {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return std::lexicographical_compare(a.arcs.begin(), a.arcs.end(),
                                        b.arcs.begin(), b.arcs.end());
  });
  return out;
}

// Owners visited by a path (source pin plus every arc target).
std::set<std::string> owners_of(const TimingGraph& g, const BrutePath& p,
                                std::size_t source_fallback) {
  std::set<std::string> owners;
  const std::size_t first =
      p.arcs.empty() ? source_fallback : g.arcs()[p.arcs.front()].from;
  owners.insert(g.nodes()[first].owner);
  for (const std::size_t arc_id : p.arcs) {
    owners.insert(g.nodes()[g.arcs()[arc_id].to].owner);
  }
  return owners;
}

}  // namespace

TEST(Paths, KWorstMatchesBruteForceOnRandomDags) {
  for (std::uint32_t seed : {1u, 7u, 23u, 101u, 4242u}) {
    const TimingReport report = random_report(seed, 14, 0.25);
    const TimingGraph graph = TimingGraph::build(report);
    const std::vector<BrutePath> all = brute_force(graph);
    ASSERT_FALSE(all.empty()) << "seed " << seed;

    PathQuery q;
    q.k = all.size();
    const PathsResult result = k_worst_paths(graph, q);
    EXPECT_FALSE(result.truncated);
    ASSERT_EQ(result.paths.size(), all.size()) << "seed " << seed;
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(result.paths[i].arrival, all[i].arrival)
          << "seed " << seed << " path " << i;
      EXPECT_EQ(result.paths[i].arcs, all[i].arcs)
          << "seed " << seed << " path " << i;
    }
    // Point arithmetic is consistent: last point's arrival is the path
    // arrival, and deltas sum to it.
    for (const Path& p : result.paths) {
      ASSERT_FALSE(p.points.empty());
      EXPECT_EQ(p.points.back().arrival, p.arrival);
      double sum = 0.0;
      for (const PathPoint& pt : p.points) sum += pt.delay;
      EXPECT_EQ(sum, p.arrival);
    }
  }
}

TEST(Paths, ResultsAreSortedAndDuplicateFree) {
  for (std::uint32_t seed : {3u, 9u, 77u}) {
    const TimingReport report = random_report(seed, 16, 0.3);
    const TimingGraph graph = TimingGraph::build(report);
    PathQuery q;
    q.k = 500;
    const PathsResult result = k_worst_paths(graph, q);
    std::set<std::vector<std::size_t>> seen;
    for (std::size_t i = 0; i < result.paths.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(result.paths[i - 1].arrival, result.paths[i].arrival);
        EXPECT_LE(result.paths[i - 1].slack, result.paths[i].slack);
      }
      EXPECT_TRUE(seen.insert(result.paths[i].arcs).second)
          << "duplicate path at " << i << " (seed " << seed << ")";
    }
  }
}

TEST(Paths, FiltersMatchBruteForcePostFiltering) {
  for (std::uint32_t seed : {5u, 31u, 99u}) {
    const TimingReport report = random_report(seed, 14, 0.3);
    const TimingGraph graph = TimingGraph::build(report);
    const std::vector<BrutePath> all = brute_force(graph);

    // Pick the most-visited interior owner as the through point, and the
    // first path's source/endpoint owners for from/to.
    ASSERT_FALSE(all.empty());
    const BrutePath& widest = *std::max_element(
        all.begin(), all.end(), [](const BrutePath& a, const BrutePath& b) {
          return a.arcs.size() < b.arcs.size();
        });
    ASSERT_GE(widest.arcs.size(), 2u) << "seed " << seed;
    const std::string through_owner =
        graph.nodes()[graph.arcs()[widest.arcs[widest.arcs.size() / 2]].to]
            .owner;
    const std::string from_owner =
        graph.nodes()[graph.arcs()[widest.arcs.front()].from].owner;
    const std::string to_owner =
        graph.nodes()[graph.arcs()[widest.arcs.back()].to].owner;

    auto expect_matches = [&](const PathQuery& q,
                              auto&& keep) {
      std::vector<BrutePath> want;
      for (const BrutePath& p : all) {
        if (keep(p)) want.push_back(p);
      }
      PathQuery query = q;
      query.k = all.size() + 1;
      const PathsResult got = k_worst_paths(graph, query);
      ASSERT_EQ(got.paths.size(), want.size()) << "seed " << seed;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.paths[i].arcs, want[i].arcs) << "seed " << seed;
      }
    };

    PathQuery through_q;
    through_q.through = {through_owner};
    expect_matches(through_q, [&](const BrutePath& p) {
      return owners_of(graph, p, 0).count(through_owner) > 0;
    });

    PathQuery from_q;
    from_q.from = from_owner;
    expect_matches(from_q, [&](const BrutePath& p) {
      if (p.arcs.empty()) return false;
      return graph.nodes()[graph.arcs()[p.arcs.front()].from].owner ==
             from_owner;
    });

    PathQuery to_q;
    to_q.to = to_owner;
    expect_matches(to_q, [&](const BrutePath& p) {
      const std::size_t last =
          p.arcs.empty() ? TimingGraph::npos : graph.arcs()[p.arcs.back()].to;
      return last != TimingGraph::npos &&
             graph.nodes()[last].owner == to_owner;
    });

    PathQuery both;
    both.from = from_owner;
    both.to = to_owner;
    both.through = {through_owner};
    expect_matches(both, [&](const BrutePath& p) {
      if (p.arcs.empty()) return false;
      return graph.nodes()[graph.arcs()[p.arcs.front()].from].owner ==
                 from_owner &&
             graph.nodes()[graph.arcs()[p.arcs.back()].to].owner ==
                 to_owner &&
             owners_of(graph, p, 0).count(through_owner) > 0;
    });
  }
}

TEST(Paths, KOneIsTheWorstSlackEndpointPath) {
  for (std::uint32_t seed : {2u, 44u, 1234u}) {
    const TimingReport report = random_report(seed, 12, 0.35);
    const TimingGraph graph = TimingGraph::build(report);
    PathQuery q;
    q.k = 1;
    const PathsResult result = k_worst_paths(graph, q);
    ASSERT_EQ(result.paths.size(), 1u);
    const Path& worst = result.paths.front();
    // Floating required time: the worst path's arrival is the graph's
    // critical delay and its slack is exactly 0.
    EXPECT_EQ(worst.arrival, graph.max_arrival());
    EXPECT_EQ(worst.slack, 0.0);
    // The endpoint it lands on holds the graph's minimum slack.
    const std::size_t end = graph.find(worst.points.back().pin);
    ASSERT_NE(end, TimingGraph::npos);
    EXPECT_EQ(graph.nodes()[end].slack, graph.worst_slack());
  }
}

TEST(Paths, DeterministicAcrossRepeatedRunsAndRebuilds) {
  const TimingReport report = random_report(8675309u, 15, 0.3);
  const TimingGraph g1 = TimingGraph::build(report);
  const TimingGraph g2 = TimingGraph::build(report);
  PathQuery q;
  q.k = 64;
  const PathsResult a = k_worst_paths(g1, q);
  const PathsResult b = k_worst_paths(g1, q);
  const PathsResult c = k_worst_paths(g2, q);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  ASSERT_EQ(a.paths.size(), c.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].arcs, b.paths[i].arcs);
    EXPECT_EQ(a.paths[i].arcs, c.paths[i].arcs);
    EXPECT_EQ(a.paths[i].arrival, b.paths[i].arrival);
    EXPECT_EQ(a.paths[i].arrival, c.paths[i].arrival);
  }
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.expansions, c.expansions);
}

TEST(Paths, ExpansionCapTruncates) {
  const TimingReport report = random_report(17u, 14, 0.4);
  const TimingGraph graph = TimingGraph::build(report);
  const std::size_t total = brute_force(graph).size();
  ASSERT_GT(total, 2u);
  PathQuery q;
  q.k = total;
  q.max_expansions = 2;
  const PathsResult result = k_worst_paths(graph, q);
  EXPECT_TRUE(result.truncated);
  EXPECT_LT(result.paths.size(), total);
  // The prefix that did come back is still the true worst prefix.
  const std::vector<BrutePath> all = brute_force(graph);
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    EXPECT_EQ(result.paths[i].arcs, all[i].arcs);
  }
}

TEST(Paths, QueryValidation) {
  const TimingReport report = random_report(5u, 8, 0.3);
  const TimingGraph graph = TimingGraph::build(report);
  PathQuery unknown_from;
  unknown_from.from = "nope";
  EXPECT_THROW(k_worst_paths(graph, unknown_from), std::invalid_argument);
  PathQuery unknown_through;
  unknown_through.through = {"ghost"};
  EXPECT_THROW(k_worst_paths(graph, unknown_through),
               std::invalid_argument);
  PathQuery too_many;
  too_many.through.assign(65, gate_name(0));
  EXPECT_THROW(k_worst_paths(graph, too_many), std::invalid_argument);
  PathQuery zero;
  zero.k = 0;
  EXPECT_TRUE(k_worst_paths(graph, zero).paths.empty());
}

}  // namespace awesim::timing
