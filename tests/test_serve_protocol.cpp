// The serve protocol layer (src/serve/protocol.h): request parsing, the
// malformed-request corpus (netlists/bad/json/), response shape, design
// construction, and the deadline/budget request lifecycle -- all through
// the same handle_line() path the daemon's workers run, so every
// assertion here is an assertion about live daemon behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/diagnostic.h"
#include "core/fault.h"
#include "obs/json.h"
#include "serve/protocol.h"
#include "timing/snapshot.h"
#include "util/random_circuits.h"

namespace awesim {
namespace {

namespace json = obs::json;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::filesystem::path corpus_dir() {
  return std::filesystem::path(AWESIM_NETLIST_DIR) / "bad" / "json";
}

timing::SnapshotStore make_store() {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  return timing::SnapshotStore(serve::builtin_design("chain4"), opt);
}

/// Every response line must parse as a JSON object with the schema's
/// mandatory fields.  Returns the parsed document for further checks.
json::Value require_response_shape(const std::string& line) {
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "a response is one line, embedded newlines would break framing";
  json::Value doc = json::parse(line);
  EXPECT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("id"), nullptr);
  const json::Value* ok = doc.find("ok");
  EXPECT_NE(ok, nullptr);
  EXPECT_TRUE(ok != nullptr && ok->is_bool());
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    EXPECT_NE(doc.find("generation"), nullptr);
    EXPECT_NE(doc.find("result"), nullptr);
  } else {
    const json::Value* error = doc.find("error");
    EXPECT_NE(error, nullptr);
    if (error != nullptr) {
      EXPECT_TRUE(error->is_object());
      const json::Value* code = error->find("code");
      EXPECT_NE(code, nullptr);
      EXPECT_TRUE(code != nullptr && code->is_string() &&
                  !code->as_string().empty());
      EXPECT_NE(error->find("severity"), nullptr);
      EXPECT_NE(error->find("message"), nullptr);
    }
  }
  return doc;
}

/// An analyze result minus its `stats` object: the cost counters (cache
/// hits, factorizations) reflect work actually performed and naturally
/// differ warm vs. cold; every timing value is the bit-identity contract.
std::string timing_fingerprint(const json::Value& response) {
  const json::Value* result = response.find("result");
  if (result == nullptr || !result->is_object()) return "";
  json::Value stripped = json::Value::object();
  for (const auto& [key, value] : result->items()) {
    if (key != "stats") stripped.set(key, value);
  }
  return stripped.dump();
}

std::string error_code_of(const json::Value& doc) {
  const json::Value* error = doc.find("error");
  if (error == nullptr) return "";
  const json::Value* code = error->find("code");
  return code != nullptr && code->is_string() ? code->as_string() : "";
}

// ---------------------------------------------------------------------------
// JSON-level corpus: obs::json::parse must reject each input with the
// documented typed ParseError -- never truncate, never coerce.

TEST(ServeCorpus, JsonTierRejectsWithTypedCodes) {
  using json::ParseErrorCode;
  const std::map<std::string, ParseErrorCode> expected = {
      {"bad_escape.json", ParseErrorCode::BadEscape},
      {"bad_literal.json", ParseErrorCode::BadLiteral},
      {"bad_number.json", ParseErrorCode::BadNumber},
      {"deep_nesting.json", ParseErrorCode::DepthExceeded},
      {"lone_surrogate.json", ParseErrorCode::BadEscape},
      {"trailing_data.json", ParseErrorCode::TrailingData},
      {"truncated_object.json", ParseErrorCode::UnexpectedEnd},
      {"unterminated_string.json", ParseErrorCode::UnterminatedString},
  };
  for (const auto& [file, code] : expected) {
    const std::string text = read_file(corpus_dir() / file);
    ASSERT_FALSE(text.empty()) << file;
    try {
      json::parse(text);
      FAIL() << file << ": expected ParseError, parse succeeded";
    } catch (const json::ParseError& e) {
      EXPECT_EQ(e.code(), code)
          << file << ": got " << json::to_string(e.code());
      EXPECT_LE(e.offset(), text.size()) << file;
    }
  }
}

// Request-level corpus: valid JSON the protocol layer must reject as
// invalid-request.

TEST(ServeCorpus, RequestTierRejectsAsInvalidRequest) {
  const char* files[] = {"missing_method.json", "non_string_method.json",
                         "not_object_request.json", "unknown_method.json"};
  timing::SnapshotStore store = make_store();
  for (const char* file : files) {
    const std::string text = read_file(corpus_dir() / file);
    const serve::HandleResult r = serve::handle_line(store, text);
    EXPECT_FALSE(r.ok) << file;
    EXPECT_FALSE(r.shutdown) << file;
    const json::Value doc = require_response_shape(r.line);
    EXPECT_EQ(error_code_of(doc), "invalid-request") << file;
  }
}

// The acceptance property: EVERY corpus input, fed as one request line,
// yields one well-formed JSON error response.  handle_line never throws
// and never emits a malformed line.

TEST(ServeCorpus, EveryInputYieldsWellFormedErrorResponse) {
  timing::SnapshotStore store = make_store();
  std::size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    const std::string text = read_file(entry.path());
    const serve::HandleResult r = serve::handle_line(store, text);
    EXPECT_FALSE(r.ok) << entry.path();
    const json::Value doc = require_response_shape(r.line);
    EXPECT_FALSE(error_code_of(doc).empty()) << entry.path();
  }
  EXPECT_GE(count, 12u) << "corpus shrank unexpectedly";
}

// ---------------------------------------------------------------------------
// parse_request

TEST(ServeParseRequest, ExtractsFields) {
  const serve::Request req = serve::parse_request(
      R"({"id": 7, "method": "analyze",
          "params": {"deadline_ms": 250, "stage_budget": 12}})");
  EXPECT_TRUE(req.id.is_number());
  EXPECT_EQ(req.id.as_number(), 7.0);
  EXPECT_EQ(req.method, "analyze");
  EXPECT_EQ(req.deadline_ms, 250.0);
  EXPECT_EQ(req.stage_budget, 12u);
}

TEST(ServeParseRequest, IdDefaultsToNullAndParamsToEmpty) {
  const serve::Request req = serve::parse_request(R"({"method": "ping"})");
  EXPECT_TRUE(req.id.is_null());
  EXPECT_TRUE(req.params.is_object());
  EXPECT_EQ(req.deadline_ms, 0.0);
  EXPECT_EQ(req.stage_budget, 0u);
}

TEST(ServeParseRequest, RejectsBadDeadlineAndBudgetTypes) {
  const char* bad[] = {
      R"({"method": "ping", "params": {"deadline_ms": "soon"}})",
      R"({"method": "ping", "params": {"deadline_ms": -5}})",
      R"({"method": "ping", "params": {"stage_budget": 1.5}})",
      R"({"method": "ping", "params": {"stage_budget": -2}})",
      R"({"method": "ping", "params": 3})",
  };
  for (const char* line : bad) {
    try {
      serve::parse_request(line);
      FAIL() << line;
    } catch (const core::DiagnosticError& e) {
      EXPECT_EQ(e.diagnostic().code, core::DiagCode::InvalidRequest)
          << line;
    }
  }
}

// ---------------------------------------------------------------------------
// dispatch / handle_line happy paths

TEST(ServeDispatch, PingAnalyzeStatsRoundTrip) {
  timing::SnapshotStore store = make_store();
  for (const char* line :
       {R"({"id": 1, "method": "ping"})", R"({"id": 2, "method": "analyze"})",
        R"({"id": 3, "method": "stats"})",
        R"({"id": 4, "method": "worst_paths", "params": {"k": 2}})"}) {
    const serve::HandleResult r = serve::handle_line(store, line);
    EXPECT_TRUE(r.ok) << line << " -> " << r.line;
    require_response_shape(r.line);
  }
}

TEST(ServeDispatch, AuditReturnsSchemaVersionedReport) {
  timing::SnapshotStore store = make_store();
  const serve::HandleResult r = serve::handle_line(
      store,
      R"({"id": 5, "method": "audit", "params": {"fanout_limit": 8}})");
  EXPECT_TRUE(r.ok) << r.line;
  const json::Value doc = require_response_shape(r.line);
  const json::Value* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  const json::Value* version = result->find("audit_schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->as_number(), 1.0);
  const json::Value* report = result->find("report");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(report->find("errors"), nullptr);
  EXPECT_EQ(report->find("errors")->as_number(), 0.0);  // chain4 is clean
  EXPECT_NE(report->find("diagnostics"), nullptr);
  EXPECT_NE(report->find("nets"), nullptr);
}

TEST(ServeDispatch, IdIsEchoedVerbatim) {
  timing::SnapshotStore store = make_store();
  const serve::HandleResult r = serve::handle_line(
      store, R"({"id": {"tag": "x", "n": 3}, "method": "ping"})");
  const json::Value doc = require_response_shape(r.line);
  const json::Value* id = doc.find("id");
  ASSERT_NE(id, nullptr);
  ASSERT_TRUE(id->is_object());
  ASSERT_NE(id->find("tag"), nullptr);
  EXPECT_EQ(id->find("tag")->as_string(), "x");
}

TEST(ServeDispatch, MutationPublishesNewGeneration) {
  timing::SnapshotStore store = make_store();
  const auto before = store.current()->generation();
  const serve::HandleResult r = serve::handle_line(
      store,
      R"({"id": 1, "method": "set_gate",
          "params": {"gate": "g0", "drive_resistance": 1234.0}})");
  EXPECT_TRUE(r.ok) << r.line;
  EXPECT_EQ(store.current()->generation(), before + 1);
}

TEST(ServeDispatch, FailedMutationPublishesNothing) {
  timing::SnapshotStore store = make_store();
  const auto before = store.current()->generation();
  const serve::HandleResult r = serve::handle_line(
      store,
      R"({"id": 1, "method": "set_value",
          "params": {"net": "no_such_net", "element_index": 0,
                     "value": 1.0}})");
  EXPECT_FALSE(r.ok);
  const json::Value doc = require_response_shape(r.line);
  EXPECT_EQ(error_code_of(doc), "invalid-request");
  EXPECT_EQ(store.current()->generation(), before)
      << "a failed mutation must roll back by never publishing";
}

TEST(ServeDispatch, ShutdownSetsFlagAndStillResponds) {
  timing::SnapshotStore store = make_store();
  const serve::HandleResult r =
      serve::handle_line(store, R"({"id": 9, "method": "shutdown"})");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.shutdown);
  require_response_shape(r.line);
}

// ---------------------------------------------------------------------------
// Deadlines and budgets as structured responses

TEST(ServeDeadline, ExhaustedBudgetIsTypedErrorAndCacheStaysValid) {
  timing::SnapshotStore store = make_store();
  // chain12 is 12 stages; a budget of 2 cannot cover a cold analysis.
  serve::HandleResult r = serve::handle_line(
      store, R"({"id": 1, "method": "load_design",
                 "params": {"builtin": "chain12"}})");
  ASSERT_TRUE(r.ok) << r.line;
  r = serve::handle_line(
      store,
      R"({"id": 2, "method": "analyze", "params": {"stage_budget": 2}})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(error_code_of(require_response_shape(r.line)),
            "budget-exceeded");
  // The cancelled analysis left only fully-evaluated stages behind: the
  // retry without a budget succeeds and is bit-identical to a cold run
  // on a fresh store of the same design.
  r = serve::handle_line(store, R"({"id": 3, "method": "analyze"})");
  EXPECT_TRUE(r.ok) << r.line;
  timing::AnalysisOptions opt;
  opt.threads = 1;
  timing::SnapshotStore cold(serve::builtin_design("chain12"), opt);
  const serve::HandleResult reference =
      serve::handle_line(cold, R"({"id": 3, "method": "analyze"})");
  ASSERT_TRUE(reference.ok);
  const json::Value warm_doc = json::parse(r.line);
  const json::Value cold_doc = json::parse(reference.line);
  const std::string warm_print = timing_fingerprint(warm_doc);
  ASSERT_FALSE(warm_print.empty());
  EXPECT_EQ(warm_print, timing_fingerprint(cold_doc))
      << "a cancelled analysis must not corrupt the stage cache";
}

TEST(ServeDeadline, DefaultDeadlineAppliesWhenRequestHasNone) {
  timing::SnapshotStore store = make_store();
  serve::HandleOptions opts;
  opts.default_deadline_ms = 1e-6;  // effectively already expired
  const serve::HandleResult r = serve::handle_line(
      store, R"({"id": 1, "method": "analyze"})", opts);
  // The snapshot may have nothing to analyze yet (cold), so the token
  // must trip; a memoized report would legitimately succeed, but this
  // store is fresh.
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(error_code_of(require_response_shape(r.line)),
            "deadline-exceeded");
}

// ---------------------------------------------------------------------------
// design_from_json / builtin_design

TEST(ServeDesign, BuiltinsAreAnalyzable) {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  for (const char* name : {"chain2", "chain8", "fanout2", "fanout6"}) {
    const timing::Design d = serve::builtin_design(name);
    const timing::TimingReport report = d.analyze(opt);
    EXPECT_GT(report.critical_delay, 0.0) << name;
  }
  // Determinism: the same name always builds the same design.
  const double a =
      serve::builtin_design("chain8").analyze(opt).critical_delay;
  const double b =
      serve::builtin_design("chain8").analyze(opt).critical_delay;
  EXPECT_EQ(a, b);
  for (const char* bad : {"chain1", "chain99999", "mesh4", "chain", ""}) {
    EXPECT_THROW(serve::builtin_design(bad), core::DiagnosticError) << bad;
  }
}

TEST(ServeDesign, FromJsonBuildsAnalyzableDesign) {
  const json::Value doc = json::parse(R"({
    "gates": [{"name": "drv", "drive_resistance": 150.0},
              {"name": "load", "input_capacitance": 10e-15}],
    "nets": [{"name": "n1", "driver": "drv",
              "sinks": {"load": "s"},
              "elements": [{"kind": "R", "a": "DRV", "b": "s",
                            "value": 100.0},
                           {"kind": "C", "a": "s", "b": "0",
                            "value": 20e-15}]}],
    "primary_inputs": ["drv"]})");
  const timing::Design d = serve::design_from_json(doc);
  timing::AnalysisOptions opt;
  opt.threads = 1;
  const timing::TimingReport report = d.analyze(opt);
  EXPECT_GT(report.critical_delay, 0.0);
}

// ---------------------------------------------------------------------------
// Sweep solver policy: the low_rank request parameter

// A store whose single net is large enough (80 parasitics) that the
// default SessionOptions low-rank gate (min_stage_elements = 64)
// engages the Sherman-Morrison warm path during sweeps.
timing::SnapshotStore make_big_store() {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  return timing::SnapshotStore(
      timing::testutil::rc_line_design(13u, 40).design, opt);
}

constexpr const char* kSweepOn =
    R"({"id": 1, "method": "sweep", "params": {
        "kind": "drive_resistance", "name": "drv",
        "values": [150.0, 300.0, 450.0]}})";
constexpr const char* kSweepOff =
    R"({"id": 1, "method": "sweep", "params": {
        "kind": "drive_resistance", "name": "drv",
        "values": [150.0, 300.0, 450.0], "low_rank": false}})";

// Same keys, same nesting, same value *types* -- numbers erased.  Two
// responses with equal skeletons have identical schemas.
json::Value type_skeleton(const json::Value& v) {
  if (v.is_object()) {
    json::Value out = json::Value::object();
    for (const auto& [key, value] : v.items()) {
      out.set(key, type_skeleton(value));
    }
    return out;
  }
  if (v.is_array()) {
    json::Value out = json::Value::array();
    for (std::size_t i = 0; i < v.size(); ++i) {
      out.push_back(type_skeleton(v.at(i)));
    }
    return out;
  }
  if (v.is_number()) return json::Value("<number>");
  if (v.is_bool()) return json::Value("<bool>");
  return v;
}

TEST(ServeSweep, LowRankOnOffIdenticalSchemaAndCloseNumbers) {
  timing::SnapshotStore store = make_big_store();
  const serve::HandleResult on = serve::handle_line(store, kSweepOn);
  const serve::HandleResult off = serve::handle_line(store, kSweepOff);
  ASSERT_TRUE(on.ok) << on.line;
  ASSERT_TRUE(off.ok) << off.line;
  const json::Value on_doc = require_response_shape(on.line);
  const json::Value off_doc = require_response_shape(off.line);
  EXPECT_EQ(type_skeleton(on_doc).dump(), type_skeleton(off_doc).dump());

  const json::Value* on_res = on_doc.find("result");
  const json::Value* off_res = off_doc.find("result");
  ASSERT_NE(on_res, nullptr);
  ASSERT_NE(off_res, nullptr);
  // The warm path really ran for the default request, and never for the
  // opted-out one.
  EXPECT_GT(on_res->find("low_rank_points")->as_number(), 0.0);
  EXPECT_EQ(off_res->find("low_rank_points")->as_number(), 0.0);
  // Numeric agreement within the documented low-rank tolerance.
  const json::Value* on_points = on_res->find("points");
  const json::Value* off_points = off_res->find("points");
  ASSERT_EQ(on_points->size(), off_points->size());
  for (std::size_t i = 0; i < on_points->size(); ++i) {
    const double a = on_points->at(i).find("worst_slack")->as_number();
    const double b = off_points->at(i).find("worst_slack")->as_number();
    EXPECT_LE(std::fabs(a - b), 1e-8 * std::fabs(b) + 1e-15) << i;
  }
}

TEST(ServeSweep, ArmedLowRankFaultFallsBackToExactAnswers) {
  timing::SnapshotStore store = make_big_store();
  serve::HandleResult armed;
  {
    // Every Sherman-Morrison update refuses: each sweep point silently
    // refactorizes in full, which is the exact path bit for bit.
    core::ScopedFaultInjection scoped({{"la.lowrank", "*", -1}});
    armed = serve::handle_line(store, kSweepOn);
  }
  ASSERT_TRUE(armed.ok) << armed.line;
  const json::Value armed_doc = require_response_shape(armed.line);
  const json::Value* armed_res = armed_doc.find("result");
  ASSERT_NE(armed_res, nullptr);
  EXPECT_EQ(armed_res->find("low_rank_points")->as_number(), 0.0);
  EXPECT_GT(armed_res->find("low_rank_refactorizations")->as_number(), 0.0);

  // An exact-path sweep on a fresh store answers with the same numbers,
  // bit for bit (the fallback IS the exact path).
  timing::SnapshotStore fresh = make_big_store();
  const serve::HandleResult exact = serve::handle_line(fresh, kSweepOff);
  ASSERT_TRUE(exact.ok) << exact.line;
  const json::Value exact_doc = json::parse(exact.line);
  const json::Value* exact_points = exact_doc.find("result")->find("points");
  const json::Value* armed_points = armed_res->find("points");
  ASSERT_EQ(armed_points->size(), exact_points->size());
  for (std::size_t i = 0; i < armed_points->size(); ++i) {
    EXPECT_EQ(armed_points->at(i).find("worst_slack")->as_number(),
              exact_points->at(i).find("worst_slack")->as_number())
        << i;
  }
}

TEST(ServeSweep, DeadlineMidSweepPublishesNothingAndCacheStaysWarm) {
  timing::SnapshotStore store = make_big_store();
  // Warm the baseline so the sweep fails mid-flight, not on point 1's
  // cold analysis.
  ASSERT_TRUE(
      serve::handle_line(store, R"({"id": 0, "method": "analyze"})").ok);
  const std::uint64_t generation_before = store.current()->generation();

  serve::HandleResult r = serve::handle_line(
      store,
      R"({"id": 1, "method": "sweep", "params": {
          "kind": "drive_resistance", "name": "drv",
          "values": [150.0, 300.0, 450.0], "stage_budget": 2}})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(error_code_of(require_response_shape(r.line)),
            "budget-exceeded");
  // A sweep mutates only its private scratch session: the cancelled run
  // published no generation and left the served design untouched.
  EXPECT_EQ(store.current()->generation(), generation_before);

  // The shared cache holds only fully evaluated stages: the retry
  // succeeds and answers exactly what a fresh store would.  The cost
  // counters (stages_reused / stages_recomputed) legitimately differ --
  // the warm cache is the whole point -- so compare the payload only.
  const auto sweep_payload = [](const std::string& line) {
    const json::Value doc = json::parse(line);
    const json::Value* result = doc.find("result");
    json::Value stripped = json::Value::object();
    for (const auto& [key, value] : result->items()) {
      if (key.find("stages_") != 0 && key.find("low_rank_") != 0) {
        stripped.set(key, value);
      }
    }
    return stripped.dump();
  };
  r = serve::handle_line(store, kSweepOff);
  ASSERT_TRUE(r.ok) << r.line;
  timing::SnapshotStore fresh = make_big_store();
  const serve::HandleResult reference = serve::handle_line(fresh, kSweepOff);
  ASSERT_TRUE(reference.ok);
  EXPECT_EQ(sweep_payload(r.line), sweep_payload(reference.line));
}

TEST(ServeDesign, FromJsonRejectsSchemaViolations) {
  const char* bad[] = {
      R"([1, 2])",
      R"({"gates": 3, "nets": [], "primary_inputs": []})",
      R"({"gates": [{"name": 7}], "nets": [], "primary_inputs": []})",
      R"({"gates": [{"name": "g"}], "nets": [{"name": "n",
          "driver": "g", "sinks": {}, "elements": [{"kind": "X",
          "a": "p", "b": "q", "value": 1.0}]}],
          "primary_inputs": ["g"]})",
  };
  for (const char* text : bad) {
    try {
      serve::design_from_json(json::parse(text));
      FAIL() << text;
    } catch (const core::DiagnosticError& e) {
      EXPECT_EQ(e.diagnostic().code, core::DiagCode::InvalidRequest)
          << text;
    }
  }
}

}  // namespace
}  // namespace awesim
