// The serve protocol layer (src/serve/protocol.h): request parsing, the
// malformed-request corpus (netlists/bad/json/), response shape, design
// construction, and the deadline/budget request lifecycle -- all through
// the same handle_line() path the daemon's workers run, so every
// assertion here is an assertion about live daemon behavior.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/diagnostic.h"
#include "obs/json.h"
#include "serve/protocol.h"
#include "timing/snapshot.h"

namespace awesim {
namespace {

namespace json = obs::json;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::filesystem::path corpus_dir() {
  return std::filesystem::path(AWESIM_NETLIST_DIR) / "bad" / "json";
}

timing::SnapshotStore make_store() {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  return timing::SnapshotStore(serve::builtin_design("chain4"), opt);
}

/// Every response line must parse as a JSON object with the schema's
/// mandatory fields.  Returns the parsed document for further checks.
json::Value require_response_shape(const std::string& line) {
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "a response is one line, embedded newlines would break framing";
  json::Value doc = json::parse(line);
  EXPECT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("id"), nullptr);
  const json::Value* ok = doc.find("ok");
  EXPECT_NE(ok, nullptr);
  EXPECT_TRUE(ok != nullptr && ok->is_bool());
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    EXPECT_NE(doc.find("generation"), nullptr);
    EXPECT_NE(doc.find("result"), nullptr);
  } else {
    const json::Value* error = doc.find("error");
    EXPECT_NE(error, nullptr);
    if (error != nullptr) {
      EXPECT_TRUE(error->is_object());
      const json::Value* code = error->find("code");
      EXPECT_NE(code, nullptr);
      EXPECT_TRUE(code != nullptr && code->is_string() &&
                  !code->as_string().empty());
      EXPECT_NE(error->find("severity"), nullptr);
      EXPECT_NE(error->find("message"), nullptr);
    }
  }
  return doc;
}

/// An analyze result minus its `stats` object: the cost counters (cache
/// hits, factorizations) reflect work actually performed and naturally
/// differ warm vs. cold; every timing value is the bit-identity contract.
std::string timing_fingerprint(const json::Value& response) {
  const json::Value* result = response.find("result");
  if (result == nullptr || !result->is_object()) return "";
  json::Value stripped = json::Value::object();
  for (const auto& [key, value] : result->items()) {
    if (key != "stats") stripped.set(key, value);
  }
  return stripped.dump();
}

std::string error_code_of(const json::Value& doc) {
  const json::Value* error = doc.find("error");
  if (error == nullptr) return "";
  const json::Value* code = error->find("code");
  return code != nullptr && code->is_string() ? code->as_string() : "";
}

// ---------------------------------------------------------------------------
// JSON-level corpus: obs::json::parse must reject each input with the
// documented typed ParseError -- never truncate, never coerce.

TEST(ServeCorpus, JsonTierRejectsWithTypedCodes) {
  using json::ParseErrorCode;
  const std::map<std::string, ParseErrorCode> expected = {
      {"bad_escape.json", ParseErrorCode::BadEscape},
      {"bad_literal.json", ParseErrorCode::BadLiteral},
      {"bad_number.json", ParseErrorCode::BadNumber},
      {"deep_nesting.json", ParseErrorCode::DepthExceeded},
      {"lone_surrogate.json", ParseErrorCode::BadEscape},
      {"trailing_data.json", ParseErrorCode::TrailingData},
      {"truncated_object.json", ParseErrorCode::UnexpectedEnd},
      {"unterminated_string.json", ParseErrorCode::UnterminatedString},
  };
  for (const auto& [file, code] : expected) {
    const std::string text = read_file(corpus_dir() / file);
    ASSERT_FALSE(text.empty()) << file;
    try {
      json::parse(text);
      FAIL() << file << ": expected ParseError, parse succeeded";
    } catch (const json::ParseError& e) {
      EXPECT_EQ(e.code(), code)
          << file << ": got " << json::to_string(e.code());
      EXPECT_LE(e.offset(), text.size()) << file;
    }
  }
}

// Request-level corpus: valid JSON the protocol layer must reject as
// invalid-request.

TEST(ServeCorpus, RequestTierRejectsAsInvalidRequest) {
  const char* files[] = {"missing_method.json", "non_string_method.json",
                         "not_object_request.json", "unknown_method.json"};
  timing::SnapshotStore store = make_store();
  for (const char* file : files) {
    const std::string text = read_file(corpus_dir() / file);
    const serve::HandleResult r = serve::handle_line(store, text);
    EXPECT_FALSE(r.ok) << file;
    EXPECT_FALSE(r.shutdown) << file;
    const json::Value doc = require_response_shape(r.line);
    EXPECT_EQ(error_code_of(doc), "invalid-request") << file;
  }
}

// The acceptance property: EVERY corpus input, fed as one request line,
// yields one well-formed JSON error response.  handle_line never throws
// and never emits a malformed line.

TEST(ServeCorpus, EveryInputYieldsWellFormedErrorResponse) {
  timing::SnapshotStore store = make_store();
  std::size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    const std::string text = read_file(entry.path());
    const serve::HandleResult r = serve::handle_line(store, text);
    EXPECT_FALSE(r.ok) << entry.path();
    const json::Value doc = require_response_shape(r.line);
    EXPECT_FALSE(error_code_of(doc).empty()) << entry.path();
  }
  EXPECT_GE(count, 12u) << "corpus shrank unexpectedly";
}

// ---------------------------------------------------------------------------
// parse_request

TEST(ServeParseRequest, ExtractsFields) {
  const serve::Request req = serve::parse_request(
      R"({"id": 7, "method": "analyze",
          "params": {"deadline_ms": 250, "stage_budget": 12}})");
  EXPECT_TRUE(req.id.is_number());
  EXPECT_EQ(req.id.as_number(), 7.0);
  EXPECT_EQ(req.method, "analyze");
  EXPECT_EQ(req.deadline_ms, 250.0);
  EXPECT_EQ(req.stage_budget, 12u);
}

TEST(ServeParseRequest, IdDefaultsToNullAndParamsToEmpty) {
  const serve::Request req = serve::parse_request(R"({"method": "ping"})");
  EXPECT_TRUE(req.id.is_null());
  EXPECT_TRUE(req.params.is_object());
  EXPECT_EQ(req.deadline_ms, 0.0);
  EXPECT_EQ(req.stage_budget, 0u);
}

TEST(ServeParseRequest, RejectsBadDeadlineAndBudgetTypes) {
  const char* bad[] = {
      R"({"method": "ping", "params": {"deadline_ms": "soon"}})",
      R"({"method": "ping", "params": {"deadline_ms": -5}})",
      R"({"method": "ping", "params": {"stage_budget": 1.5}})",
      R"({"method": "ping", "params": {"stage_budget": -2}})",
      R"({"method": "ping", "params": 3})",
  };
  for (const char* line : bad) {
    try {
      serve::parse_request(line);
      FAIL() << line;
    } catch (const core::DiagnosticError& e) {
      EXPECT_EQ(e.diagnostic().code, core::DiagCode::InvalidRequest)
          << line;
    }
  }
}

// ---------------------------------------------------------------------------
// dispatch / handle_line happy paths

TEST(ServeDispatch, PingAnalyzeStatsRoundTrip) {
  timing::SnapshotStore store = make_store();
  for (const char* line :
       {R"({"id": 1, "method": "ping"})", R"({"id": 2, "method": "analyze"})",
        R"({"id": 3, "method": "stats"})",
        R"({"id": 4, "method": "worst_paths", "params": {"k": 2}})"}) {
    const serve::HandleResult r = serve::handle_line(store, line);
    EXPECT_TRUE(r.ok) << line << " -> " << r.line;
    require_response_shape(r.line);
  }
}

TEST(ServeDispatch, IdIsEchoedVerbatim) {
  timing::SnapshotStore store = make_store();
  const serve::HandleResult r = serve::handle_line(
      store, R"({"id": {"tag": "x", "n": 3}, "method": "ping"})");
  const json::Value doc = require_response_shape(r.line);
  const json::Value* id = doc.find("id");
  ASSERT_NE(id, nullptr);
  ASSERT_TRUE(id->is_object());
  ASSERT_NE(id->find("tag"), nullptr);
  EXPECT_EQ(id->find("tag")->as_string(), "x");
}

TEST(ServeDispatch, MutationPublishesNewGeneration) {
  timing::SnapshotStore store = make_store();
  const auto before = store.current()->generation();
  const serve::HandleResult r = serve::handle_line(
      store,
      R"({"id": 1, "method": "set_gate",
          "params": {"gate": "g0", "drive_resistance": 1234.0}})");
  EXPECT_TRUE(r.ok) << r.line;
  EXPECT_EQ(store.current()->generation(), before + 1);
}

TEST(ServeDispatch, FailedMutationPublishesNothing) {
  timing::SnapshotStore store = make_store();
  const auto before = store.current()->generation();
  const serve::HandleResult r = serve::handle_line(
      store,
      R"({"id": 1, "method": "set_value",
          "params": {"net": "no_such_net", "element_index": 0,
                     "value": 1.0}})");
  EXPECT_FALSE(r.ok);
  const json::Value doc = require_response_shape(r.line);
  EXPECT_EQ(error_code_of(doc), "invalid-request");
  EXPECT_EQ(store.current()->generation(), before)
      << "a failed mutation must roll back by never publishing";
}

TEST(ServeDispatch, ShutdownSetsFlagAndStillResponds) {
  timing::SnapshotStore store = make_store();
  const serve::HandleResult r =
      serve::handle_line(store, R"({"id": 9, "method": "shutdown"})");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.shutdown);
  require_response_shape(r.line);
}

// ---------------------------------------------------------------------------
// Deadlines and budgets as structured responses

TEST(ServeDeadline, ExhaustedBudgetIsTypedErrorAndCacheStaysValid) {
  timing::SnapshotStore store = make_store();
  // chain12 is 12 stages; a budget of 2 cannot cover a cold analysis.
  serve::HandleResult r = serve::handle_line(
      store, R"({"id": 1, "method": "load_design",
                 "params": {"builtin": "chain12"}})");
  ASSERT_TRUE(r.ok) << r.line;
  r = serve::handle_line(
      store,
      R"({"id": 2, "method": "analyze", "params": {"stage_budget": 2}})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(error_code_of(require_response_shape(r.line)),
            "budget-exceeded");
  // The cancelled analysis left only fully-evaluated stages behind: the
  // retry without a budget succeeds and is bit-identical to a cold run
  // on a fresh store of the same design.
  r = serve::handle_line(store, R"({"id": 3, "method": "analyze"})");
  EXPECT_TRUE(r.ok) << r.line;
  timing::AnalysisOptions opt;
  opt.threads = 1;
  timing::SnapshotStore cold(serve::builtin_design("chain12"), opt);
  const serve::HandleResult reference =
      serve::handle_line(cold, R"({"id": 3, "method": "analyze"})");
  ASSERT_TRUE(reference.ok);
  const json::Value warm_doc = json::parse(r.line);
  const json::Value cold_doc = json::parse(reference.line);
  const std::string warm_print = timing_fingerprint(warm_doc);
  ASSERT_FALSE(warm_print.empty());
  EXPECT_EQ(warm_print, timing_fingerprint(cold_doc))
      << "a cancelled analysis must not corrupt the stage cache";
}

TEST(ServeDeadline, DefaultDeadlineAppliesWhenRequestHasNone) {
  timing::SnapshotStore store = make_store();
  serve::HandleOptions opts;
  opts.default_deadline_ms = 1e-6;  // effectively already expired
  const serve::HandleResult r = serve::handle_line(
      store, R"({"id": 1, "method": "analyze"})", opts);
  // The snapshot may have nothing to analyze yet (cold), so the token
  // must trip; a memoized report would legitimately succeed, but this
  // store is fresh.
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(error_code_of(require_response_shape(r.line)),
            "deadline-exceeded");
}

// ---------------------------------------------------------------------------
// design_from_json / builtin_design

TEST(ServeDesign, BuiltinsAreAnalyzable) {
  timing::AnalysisOptions opt;
  opt.threads = 1;
  for (const char* name : {"chain2", "chain8", "fanout2", "fanout6"}) {
    const timing::Design d = serve::builtin_design(name);
    const timing::TimingReport report = d.analyze(opt);
    EXPECT_GT(report.critical_delay, 0.0) << name;
  }
  // Determinism: the same name always builds the same design.
  const double a =
      serve::builtin_design("chain8").analyze(opt).critical_delay;
  const double b =
      serve::builtin_design("chain8").analyze(opt).critical_delay;
  EXPECT_EQ(a, b);
  for (const char* bad : {"chain1", "chain99999", "mesh4", "chain", ""}) {
    EXPECT_THROW(serve::builtin_design(bad), core::DiagnosticError) << bad;
  }
}

TEST(ServeDesign, FromJsonBuildsAnalyzableDesign) {
  const json::Value doc = json::parse(R"({
    "gates": [{"name": "drv", "drive_resistance": 150.0},
              {"name": "load", "input_capacitance": 10e-15}],
    "nets": [{"name": "n1", "driver": "drv",
              "sinks": {"load": "s"},
              "elements": [{"kind": "R", "a": "DRV", "b": "s",
                            "value": 100.0},
                           {"kind": "C", "a": "s", "b": "0",
                            "value": 20e-15}]}],
    "primary_inputs": ["drv"]})");
  const timing::Design d = serve::design_from_json(doc);
  timing::AnalysisOptions opt;
  opt.threads = 1;
  const timing::TimingReport report = d.analyze(opt);
  EXPECT_GT(report.critical_delay, 0.0);
}

TEST(ServeDesign, FromJsonRejectsSchemaViolations) {
  const char* bad[] = {
      R"([1, 2])",
      R"({"gates": 3, "nets": [], "primary_inputs": []})",
      R"({"gates": [{"name": 7}], "nets": [], "primary_inputs": []})",
      R"({"gates": [{"name": "g"}], "nets": [{"name": "n",
          "driver": "g", "sinks": {}, "elements": [{"kind": "X",
          "a": "p", "b": "q", "value": 1.0}]}],
          "primary_inputs": ["g"]})",
  };
  for (const char* text : bad) {
    try {
      serve::design_from_json(json::parse(text));
      FAIL() << text;
    } catch (const core::DiagnosticError& e) {
      EXPECT_EQ(e.diagnostic().code, core::DiagCode::InvalidRequest)
          << text;
    }
  }
}

}  // namespace
}  // namespace awesim
