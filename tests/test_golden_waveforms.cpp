// Golden-waveform regression suite: sampled responses of the paper's
// Fig. 14 (ramp superposition), Fig. 15 (second-order step), and
// Figs. 23/24 (floating coupling capacitor) circuits, checked against
// stored reference values.  The references were produced by this
// implementation and locked down so that refactors of the engine,
// moment, or solver layers cannot silently bend a waveform: anything
// beyond floating-point noise (re-associated sums, a different but
// equivalent solve order) trips the per-point tolerances below.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/paper_circuits.h"
#include "core/engine.h"

namespace awesim {

namespace {

// Per-point check: |v - golden| <= abs_tol + rel_tol * |golden|.
// rel_tol 1e-9 admits benign FP reordering (~1e-13 relative) with three
// orders of margin while still catching any real waveform change; the
// absolute floor handles the near-zero tail samples.
void expect_matches(const core::Approximation& a, double t0, double t1,
                    const double* golden, int n, double abs_tol,
                    double rel_tol = 1e-9) {
  for (int i = 0; i < n; ++i) {
    const double t = t0 + (t1 - t0) * i / (n - 1);
    const double v = a.value(t);
    const double tol = abs_tol + rel_tol * std::abs(golden[i]);
    EXPECT_NEAR(v, golden[i], tol)
        << "sample " << i << " at t=" << t;
  }
}

constexpr double kFig14RampQ1[21] = {
    0,
    0.1063501754184224,
    0.64867865792533563,
    1.460783276046365,
    2.4398208863910495,
    3.4158036844498154,
    4.0197256305770637,
    4.3934225007878496,
    4.6246599176442187,
    4.7677457907590926,
    4.8562849526446588,
    4.9110715155438802,
    4.9449725307600616,
    4.9659499159412048,
    4.978930373494812,
    4.9869624650470303,
    4.9919325899010065,
    4.9950080206158507,
    4.9969110460648505,
    4.9980886066068759,
    4.9988172615131266,
};

constexpr double kFig14RampQ1Slope[21] = {
    0,
    0.22772189147958866,
    0.80379462667920021,
    1.6095143917256369,
    2.5666268095191844,
    3.3958215236821867,
    3.9424603698486296,
    4.3028269074474679,
    4.5403951709027774,
    4.6970098226882273,
    4.8002565644757436,
    4.8683210116281099,
    4.9131918606830087,
    4.9427725475047266,
    4.9622733381354953,
    4.9751290516460394,
    4.9836040603261704,
    4.989191130391891,
    4.9928743539846323,
    4.9953024846281586,
    4.9969032070045163,
};

constexpr double kFig15StepQ2[21] = {
    0,
    0.99550782102789892,
    2.2401795255911829,
    3.133012871081629,
    3.7401918433326529,
    4.1502003786829711,
    4.4267978030438879,
    4.6133693390732509,
    4.7392139584914039,
    4.8240973678818451,
    4.8813520260819399,
    4.9199708298176255,
    4.9460195748273064,
    4.9635896974184215,
    4.9754409097402874,
    4.9834346634985298,
    4.9888265253107908,
    4.9924633866254799,
    4.9949164836600159,
    4.9965711205955907,
    4.9976871887127601,
};

constexpr double kFig23AggressorQ3[21] = {
    0,
    0.26811249440613327,
    1.3503937216122983,
    2.7153332249896276,
    3.598920217687732,
    4.1336916279387035,
    4.4589624079061867,
    4.6581504508689129,
    4.7811322604950064,
    4.857807074364719,
    4.9061579266788362,
    4.9370458258731764,
    4.9570643485981796,
    4.9702419002874576,
    4.9790587573837879,
    4.9850561951994594,
    4.9892024315634229,
    4.9921133254012782,
    4.9941861223387001,
    4.9956809901524988,
    4.99677108793807,
};

constexpr double kFig24VictimQ3[21] = {
    0,
    0.65356564504349235,
    0.17948494998529718,
    0.038358660249012494,
    0.0078498586381238258,
    0.0015921918603597905,
    0.00032233737230233145,
    6.5230623398690441e-05,
    1.3199430053283275e-05,
    2.6708585223144553e-06,
    5.4043677329658799e-07,
    1.0935497308414557e-07,
    2.2127487838130641e-08,
    4.4773974115243567e-09,
    9.0598130077183583e-10,
    1.8332126420501361e-10,
    3.7094058811873223e-11,
    7.506060731162187e-12,
    1.5189785144208414e-12,
    3.0727134203625093e-13,
    6.2222921735483481e-14,
};

}  // namespace

TEST(GoldenWaveforms, Fig14RampResponseFirstOrder) {
  circuits::Drive drive;
  drive.rise_time = 1e-3;
  auto ckt = circuits::fig4_rc_tree(drive);
  core::Engine engine(ckt);
  const auto out = ckt.find_node("n4");

  core::EngineOptions plain;
  plain.order = 1;
  const auto r = engine.approximate(out, plain);
  expect_matches(r.approximation, 0.0, 5e-3, kFig14RampQ1, 21, 1e-9);

  // The eq. 63 particular solution of the ramp atom is part of the lock.
  const auto& atom = r.approximation.atoms()[1];
  EXPECT_NEAR(atom.affine_slope, 5e3, 1e-6);
  EXPECT_NEAR(atom.affine_offset, -3.0, 1e-9);

  core::EngineOptions slope;
  slope.order = 1;
  slope.match_initial_slope = true;
  const auto rs = engine.approximate(out, slope);
  expect_matches(rs.approximation, 0.0, 5e-3, kFig14RampQ1Slope, 21,
                 1e-9);
}

TEST(GoldenWaveforms, Fig15SecondOrderStep) {
  auto ckt = circuits::fig4_rc_tree();
  core::Engine engine(ckt);
  core::EngineOptions o;
  o.order = 2;
  const auto r = engine.approximate(ckt.find_node("n4"), o);
  expect_matches(r.approximation, 0.0, 4e-3, kFig15StepQ2, 21, 1e-9);
  EXPECT_TRUE(r.stable);
  EXPECT_NEAR(r.approximation.final_value(), 5.0, 1e-9);
}

TEST(GoldenWaveforms, Fig23FloatingCapAggressor) {
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig22_floating_cap(drive);
  core::Engine engine(ckt);
  core::EngineOptions o;
  o.order = 3;
  const auto r = engine.approximate(ckt.find_node("n7"), o);
  expect_matches(r.approximation, 0.0, 10e-9, kFig23AggressorQ3, 21,
                 1e-9);
}

TEST(GoldenWaveforms, Fig24FloatingCapVictim) {
  circuits::Drive drive;
  drive.rise_time = 1e-9;
  auto ckt = circuits::fig22_floating_cap(drive);
  core::Engine engine(ckt);
  core::EngineOptions o;
  o.order = 3;
  const auto r = engine.approximate(ckt.find_node("n12"), o);
  // The victim bump peaks near 0.7 V and decays through 13 decades over
  // the window; the tail samples lean on the relative term.
  expect_matches(r.approximation, 0.0, 60e-9, kFig24VictimQ3, 21, 1e-12,
                 1e-8);
  // Fig. 24's headline: the transferred-charge area is exact.
  EXPECT_NEAR(r.approximation.settling_area(), 3e-9, 1e-17);
}

}  // namespace awesim
