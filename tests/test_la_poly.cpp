// Polynomial roots: the eq. 25 characteristic-polynomial solve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "la/poly.h"

namespace la = awesim::la;

namespace {

void expect_contains_root(const la::ComplexVector& roots, la::Complex want,
                          double tol) {
  for (const auto& r : roots) {
    if (std::abs(r - want) <= tol) return;
  }
  FAIL() << "no root near (" << want.real() << ", " << want.imag() << ")";
}

}  // namespace

TEST(Poly, EvaluatesHorner) {
  // 1 + 2x + 3x^2 at x = 2 -> 17.
  EXPECT_NEAR(la::polyval({1.0, 2.0, 3.0}, {2.0, 0.0}).real(), 17.0, 1e-14);
}

TEST(Poly, Derivative) {
  // d/dx (1 + 2x + 3x^2) = 2 + 6x.
  const auto d = la::polyder({1.0, 2.0, 3.0});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 2.0);
  EXPECT_EQ(d[1], 6.0);
}

TEST(Poly, LinearRoot) {
  const auto r = la::polyroots({-6.0, 2.0});  // 2x - 6
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].real(), 3.0, 1e-14);
}

TEST(Poly, QuadraticRealRoots) {
  const auto r = la::polyroots({6.0, -5.0, 1.0});  // (x-2)(x-3)
  ASSERT_EQ(r.size(), 2u);
  expect_contains_root(r, {2.0, 0.0}, 1e-12);
  expect_contains_root(r, {3.0, 0.0}, 1e-12);
}

TEST(Poly, QuadraticComplexRoots) {
  const auto r = la::polyroots({5.0, 2.0, 1.0});  // x^2+2x+5: -1 +- 2i
  ASSERT_EQ(r.size(), 2u);
  expect_contains_root(r, {-1.0, 2.0}, 1e-12);
  expect_contains_root(r, {-1.0, -2.0}, 1e-12);
}

TEST(Poly, QuadraticCancellationStable) {
  // x^2 - 1e8 x + 1: naive formula loses the small root.
  const auto r = la::polyroots({1.0, -1e8, 1.0});
  ASSERT_EQ(r.size(), 2u);
  expect_contains_root(r, {1e8, 0.0}, 1.0);
  expect_contains_root(r, {1e-8, 0.0}, 1e-15);
}

TEST(Poly, CubicKnownRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  const auto r = la::polyroots({-6.0, 11.0, -6.0, 1.0});
  ASSERT_EQ(r.size(), 3u);
  expect_contains_root(r, {1.0, 0.0}, 1e-9);
  expect_contains_root(r, {2.0, 0.0}, 1e-9);
  expect_contains_root(r, {3.0, 0.0}, 1e-9);
}

TEST(Poly, QuarticMixedRoots) {
  // (x+1)(x+4)(x^2 + 2x + 2): roots -1, -4, -1 +- i.
  const auto quad = la::poly_from_roots(
      {{-1.0, 0.0}, {-4.0, 0.0}, {-1.0, 1.0}, {-1.0, -1.0}});
  const auto r = la::polyroots(quad);
  ASSERT_EQ(r.size(), 4u);
  expect_contains_root(r, {-1.0, 0.0}, 1e-8);
  expect_contains_root(r, {-4.0, 0.0}, 1e-8);
  expect_contains_root(r, {-1.0, 1.0}, 1e-8);
  expect_contains_root(r, {-1.0, -1.0}, 1e-8);
}

TEST(Poly, RepeatedRoot) {
  // (x+2)^3 = x^3 + 6x^2 + 12x + 8.
  const auto r = la::polyroots({8.0, 12.0, 6.0, 1.0});
  ASSERT_EQ(r.size(), 3u);
  for (const auto& root : r) {
    EXPECT_NEAR(std::abs(root - la::Complex(-2.0, 0.0)), 0.0, 2e-4);
  }
}

TEST(Poly, ZeroRootsDeflatedExactly) {
  // x^2 (x - 5): roots 0, 0, 5.
  const auto r = la::polyroots({0.0, 0.0, -5.0, 1.0});
  ASSERT_EQ(r.size(), 3u);
  int zeros = 0;
  for (const auto& root : r) {
    if (root == la::Complex(0.0, 0.0)) ++zeros;
  }
  EXPECT_EQ(zeros, 2);
  expect_contains_root(r, {5.0, 0.0}, 1e-10);
}

TEST(Poly, LeadingZeroCoefficientsTrimmed) {
  // 2x - 6 padded with a numerically-zero quadratic term.
  const auto r = la::polyroots({-6.0, 2.0, 1e-18});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].real(), 3.0, 1e-12);
}

TEST(Poly, WidelySpreadRoots) {
  // Poles spread over 4 decades, like a stiff RC tree's reciprocal poles.
  const la::ComplexVector want{{-1.0, 0.0}, {-1e2, 0.0}, {-1e4, 0.0}};
  const auto coeffs = la::poly_from_roots(want);
  const auto r = la::polyroots(coeffs);
  ASSERT_EQ(r.size(), 3u);
  expect_contains_root(r, {-1.0, 0.0}, 1e-6);
  expect_contains_root(r, {-1e2, 0.0}, 1e-4);
  expect_contains_root(r, {-1e4, 0.0}, 1e-2);
}

TEST(Poly, ThrowsOnZeroPolynomial) {
  EXPECT_THROW(la::polyroots({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(la::polyroots({}), std::invalid_argument);
}

TEST(Poly, FromRootsRoundTrip) {
  const auto coeffs =
      la::poly_from_roots({{-2.0, 0.0}, {-3.0, 4.0}, {-3.0, -4.0}});
  // (x+2)(x^2+6x+25) = x^3 + 8x^2 + 37x + 50.
  ASSERT_EQ(coeffs.size(), 4u);
  EXPECT_NEAR(coeffs[0], 50.0, 1e-10);
  EXPECT_NEAR(coeffs[1], 37.0, 1e-10);
  EXPECT_NEAR(coeffs[2], 8.0, 1e-10);
  EXPECT_NEAR(coeffs[3], 1.0, 1e-12);
}
