// Hierarchical reduction (src/reduce): differential equivalence of
// reduced vs flat analysis on seeded RC fabrics, the refusal ladder
// (small nets, tolerance drill, injected faults), content-addressed
// reduction caching with repeated cells, invalidation-on-mutation, the
// cache corruption drill, and the MNA boundary-block stamp.
//
// Runs as its own ctest leg: ctest -L reduce.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/fault.h"
#include "mna/system.h"
#include "reduce/generate.h"
#include "reduce/hier.h"
#include "reduce/reduce.h"
#include "timing/session.h"
#include "timing/stage_cache.h"
#include "util/random_circuits.h"

namespace awesim::reduce {
namespace {

using core::DiagCode;
using core::FaultRule;
using core::ScopedFaultInjection;
using timing::Design;
using timing::Net;
using timing::TimingReport;
using timing::testutil::expect_same_payload;
using timing::testutil::rc_line_design;
using timing::testutil::rc_mesh_design;

bool has_code(const core::Diagnostics& diags, DiagCode code) {
  for (const core::Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

/// Tolerance-equal report comparison: same structure, every delay /
/// slew / arrival within `tol` seconds (the reduction contract; the
/// bit-identity contract only applies when nothing reduced).
void expect_close_reports(const TimingReport& flat, const TimingReport& red,
                          double tol) {
  ASSERT_EQ(flat.stages.size(), red.stages.size());
  for (std::size_t i = 0; i < flat.stages.size(); ++i) {
    const auto& fs = flat.stages[i];
    const auto& rs = red.stages[i];
    EXPECT_EQ(fs.driver_gate, rs.driver_gate);
    EXPECT_EQ(fs.net, rs.net);
    ASSERT_EQ(fs.sinks.size(), rs.sinks.size());
    EXPECT_NEAR(fs.input_arrival, rs.input_arrival, tol);
    for (std::size_t s = 0; s < fs.sinks.size(); ++s) {
      EXPECT_EQ(fs.sinks[s].gate, rs.sinks[s].gate);
      EXPECT_NEAR(fs.sinks[s].stage_delay, rs.sinks[s].stage_delay, tol)
          << fs.net << "/" << fs.sinks[s].gate;
      EXPECT_NEAR(fs.sinks[s].slew, rs.sinks[s].slew, tol);
      EXPECT_NEAR(fs.sinks[s].arrival, rs.sinks[s].arrival, tol);
    }
  }
  EXPECT_NEAR(flat.critical_delay, red.critical_delay, tol);
  EXPECT_EQ(flat.critical_path, red.critical_path);
}

double total_value(const Net& net, timing::NetElement::Kind kind) {
  double sum = 0.0;
  for (const auto& e : net.parasitics) {
    if (e.kind == kind) sum += e.value;
  }
  return sum;
}

double reduced_total(const Net& net, timing::NetElement::Kind kind) {
  double sum = total_value(net, kind);
  for (const auto& m : net.macros) {
    sum += kind == timing::NetElement::Kind::Resistor ? m.sum_resistance
                                                      : m.sum_capacitance;
  }
  return sum;
}

// ---------------------------------------------------------------------
// reduce_net: the collapse itself.

TEST(ReduceNet, CollapsesRcLine) {
  const auto stage = rc_line_design(11, 240);
  const Net& net = stage.design.net_at(0);
  const NetReduction r = reduce_net(net);
  ASSERT_TRUE(r.reduced);
  // 240 sections: n0..n238 interior, n239 is the sink hookup.
  EXPECT_EQ(r.interior_eliminated, 239u);
  ASSERT_EQ(r.net.macros.size(), 1u);
  EXPECT_GT(r.states, 0u);
  EXPECT_LT(r.states, 32u);  // depth 6 x a 2-port boundary, pre-deflation
  EXPECT_EQ(r.net.macros[0].states, r.states);
  EXPECT_EQ(r.net.macros[0].ports.size(), 2u);
  // Flat-kept elements plus the macro sums reproduce the flat totals
  // (the Elmore-fallback parity invariant).
  EXPECT_NEAR(reduced_total(r.net, timing::NetElement::Kind::Resistor),
              total_value(net, timing::NetElement::Kind::Resistor), 1e-9);
  EXPECT_NEAR(reduced_total(r.net, timing::NetElement::Kind::Capacitor),
              total_value(net, timing::NetElement::Kind::Capacitor), 1e-24);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(ReduceNet, SmallNetRefusedVerbatim) {
  const auto stage = rc_line_design(3, 6);
  const Net& net = stage.design.net_at(0);
  const NetReduction r = reduce_net(net);
  EXPECT_FALSE(r.reduced);
  EXPECT_EQ(r.interior_eliminated, 0u);
  EXPECT_TRUE(r.net.macros.empty());
  EXPECT_EQ(r.net.parasitics.size(), net.parasitics.size());
  EXPECT_TRUE(r.diagnostics.empty());  // silent: flat is simply right
}

TEST(ReduceNet, InductiveNetRefused) {
  auto stage = rc_line_design(5, 64);
  Net net = stage.design.net_at(0);
  net.parasitics.push_back(
      {timing::NetElement::Kind::Inductor, "n3", "n4", 1e-9});
  const NetReduction r = reduce_net(net);
  EXPECT_FALSE(r.reduced);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(ReduceNet, ContentKeyIsNameAgnostic) {
  const auto stage = rc_line_design(19, 80);
  const Net& net = stage.design.net_at(0);
  Net renamed = net;
  renamed.name = "totally_different";
  renamed.sink_node.clear();
  // Different sink *gate*, same hookup node: same boundary set.
  renamed.sink_node["other_gate"] = net.sink_node.at("snk");
  const ReduceOptions opt;
  EXPECT_EQ(reduction_content_key(net, opt),
            reduction_content_key(renamed, opt));

  Net perturbed = net;
  perturbed.parasitics[0].value *= 1.0 + 1e-12;
  EXPECT_NE(reduction_content_key(net, opt),
            reduction_content_key(perturbed, opt));

  ReduceOptions other = opt;
  other.moments = opt.moments - 2;
  EXPECT_NE(reduction_content_key(net, opt),
            reduction_content_key(net, other));
}

TEST(ReduceNet, ToleranceDrillRefusesWithTypedDiagnostic) {
  const auto stage = rc_line_design(29, 120);
  const Net& net = stage.design.net_at(0);
  ReduceOptions opt;
  opt.tolerance = -1.0;  // nothing satisfies a negative tolerance
  const NetReduction r = reduce_net(net, opt);
  EXPECT_FALSE(r.reduced);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_TRUE(has_code(r.diagnostics, DiagCode::ReductionToleranceExceeded));
  EXPECT_EQ(r.diagnostics[0].element, net.name);
  EXPECT_EQ(r.net.parasitics.size(), net.parasitics.size());
}

TEST(ReduceNet, CollapseFaultFallsBackFlat) {
  const auto stage = rc_line_design(31, 100);
  const Net& net = stage.design.net_at(0);
  {
    ScopedFaultInjection arm({FaultRule{"reduce.collapse", net.name, -1}});
    const NetReduction r = reduce_net(net);
    EXPECT_FALSE(r.reduced);
    ASSERT_FALSE(r.diagnostics.empty());
    EXPECT_TRUE(has_code(r.diagnostics, DiagCode::ReductionFallback));
  }
  // Disarmed, the same net reduces.
  EXPECT_TRUE(reduce_net(net).reduced);
}

TEST(ReduceNet, DeterministicBytes) {
  const auto stage = rc_mesh_design(41, 150, 8);
  const Net& net = stage.design.net_at(0);
  const NetReduction a = reduce_net(net);
  const NetReduction b = reduce_net(net);
  ASSERT_TRUE(a.reduced);
  ASSERT_TRUE(b.reduced);
  ASSERT_EQ(a.net.macros.size(), 1u);
  EXPECT_EQ(a.net.macros[0].ports, b.net.macros[0].ports);
  EXPECT_EQ(a.net.macros[0].states, b.net.macros[0].states);
  EXPECT_EQ(a.net.macros[0].g, b.net.macros[0].g);  // bitwise
  EXPECT_EQ(a.net.macros[0].c, b.net.macros[0].c);
}

// ---------------------------------------------------------------------
// Differential: reduced vs flat timing on the seeded fabrics.

TEST(ReduceDifferential, RcLine) {
  auto stage = rc_line_design(101, 300);
  const TimingReport flat = stage.design.analyze();
  HierSession hier(stage.design);
  const TimingReport red = hier.analyze();
  EXPECT_GE(hier.stats().nets_reduced, 1u);
  expect_close_reports(flat, red, 1e-9);
}

TEST(ReduceDifferential, RcMesh) {
  auto stage = rc_mesh_design(103, 300, 12);
  const TimingReport flat = stage.design.analyze();
  HierSession hier(stage.design);
  const TimingReport red = hier.analyze();
  EXPECT_GE(hier.stats().nets_reduced, 1u);
  expect_close_reports(flat, red, 1e-9);
}

TEST(ReduceDifferential, GeneratedTreeFabric) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Tree;
  spec.target_nodes = 2000;
  spec.cell_nodes = 400;
  spec.variants = 3;
  spec.seed = 7;
  const Design design = mega_design(spec);
  const TimingReport flat = design.analyze();
  HierSession hier(design);
  const TimingReport red = hier.analyze();
  EXPECT_EQ(hier.stats().nets_reduced, hier.stats().nets_total);
  expect_close_reports(flat, red, 1e-9);
}

TEST(ReduceDifferential, AllNetsRefusedIsBitIdentical) {
  // Tiny nets everywhere: every reduction silently refuses, the reduced
  // design IS the flat design, and the report is bitwise identical.
  const Design design = timing::testutil::chain_design(4);
  const TimingReport flat = design.analyze();
  HierSession hier(design);
  const TimingReport red = hier.analyze();
  EXPECT_EQ(hier.stats().nets_reduced, 0u);
  expect_same_payload(flat, red);
}

TEST(ReduceDifferential, ToleranceDrillSurfacesInReport) {
  auto stage = rc_line_design(107, 200);
  const TimingReport flat = stage.design.analyze();
  ReduceOptions opt;
  opt.tolerance = -1.0;
  HierSession hier(stage.design, {}, opt);
  const TimingReport red = hier.analyze();
  EXPECT_EQ(hier.stats().nets_reduced, 0u);
  EXPECT_TRUE(
      has_code(red.diagnostics, DiagCode::ReductionToleranceExceeded));
  // Payload equal apart from the appended reduction diagnostics.
  expect_same_payload(flat, red, /*compare_diagnostics=*/false);
}

TEST(ReduceDifferential, CollapseFaultSurfacesInReport) {
  auto stage = rc_line_design(109, 200);
  const TimingReport flat = stage.design.analyze();
  ScopedFaultInjection arm({FaultRule{"reduce.collapse", "net0", -1}});
  HierSession hier(stage.design);
  const TimingReport red = hier.analyze();
  EXPECT_EQ(hier.stats().nets_reduced, 0u);
  EXPECT_TRUE(has_code(red.diagnostics, DiagCode::ReductionFallback));
  expect_same_payload(flat, red, /*compare_diagnostics=*/false);
}

// ---------------------------------------------------------------------
// reduce_design: the whole-design walk.

TEST(ReduceDesign, CountsAndEquivalence) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Mesh;
  spec.target_nodes = 3000;
  spec.cell_nodes = 750;
  spec.variants = 2;
  spec.seed = 3;
  const Design design = mega_design(spec);
  const DesignReduction dr = reduce_design(design);
  EXPECT_EQ(dr.nets_total, 4u);
  EXPECT_EQ(dr.nets_reduced, 4u);
  EXPECT_GT(dr.interior_eliminated, 4u * 700u);
  EXPECT_GT(dr.states, 0u);
  expect_close_reports(design.analyze(), dr.design.analyze(), 1e-9);
}

TEST(ReduceDesign, RepeatedCellsHitTheStore) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Chain;
  spec.target_nodes = 4000;
  spec.cell_nodes = 500;
  spec.variants = 2;
  spec.seed = 5;
  const Design design = mega_design(spec);
  auto cache = std::make_shared<timing::detail::StageCache>();
  const DesignReduction first = reduce_design(design, {}, cache.get());
  EXPECT_EQ(first.nets_total, 8u);
  EXPECT_EQ(first.nets_reduced, 8u);
  // Two variants: two entries computed, six instances rehydrated.
  EXPECT_EQ(first.cache_hits, 6u);
  EXPECT_EQ(cache->reduction_entries(), 2u);
  EXPECT_EQ(cache->counters().reduction_misses, 2u);
  EXPECT_EQ(cache->counters().reduction_hits, 6u);
  // A second walk is fully served from the store.
  const DesignReduction second = reduce_design(design, {}, cache.get());
  EXPECT_EQ(second.cache_hits, 8u);
  EXPECT_EQ(cache->counters().reduction_hits, 14u);
  expect_same_payload(first.design.analyze(), second.design.analyze());
}

TEST(ReduceDesign, CacheCorruptionDrillRecovers) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Chain;
  spec.target_nodes = 2000;
  spec.cell_nodes = 500;
  spec.variants = 4;
  spec.seed = 9;
  const Design design = mega_design(spec);
  auto cache = std::make_shared<timing::detail::StageCache>();
  const DesignReduction first = reduce_design(design, {}, cache.get());
  EXPECT_EQ(first.nets_reduced, 4u);

  ScopedFaultInjection arm({FaultRule{"reduce.cache", "n1", -1}});
  const DesignReduction again = reduce_design(design, {}, cache.get());
  // n1's entry was dropped and recomputed; the others kept hitting.
  EXPECT_TRUE(has_code(again.diagnostics, DiagCode::CacheInvalidated));
  EXPECT_EQ(again.cache_hits, 3u);
  EXPECT_EQ(cache->counters().invalidations, 1u);
  // Recomputation is deterministic: the recovered design is the same.
  expect_same_payload(first.design.analyze(), again.design.analyze());
}

// ---------------------------------------------------------------------
// HierSession: caching, invalidation-on-mutation, mutation forwarding.

TEST(HierSession, RepeatedCellsReduceOnce) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Chain;
  spec.target_nodes = 4000;
  spec.cell_nodes = 500;
  spec.variants = 2;
  spec.seed = 5;
  HierSession hier(mega_design(spec));
  hier.analyze();
  const HierSession::Stats stats = hier.stats();
  EXPECT_EQ(stats.nets_total, 8u);
  EXPECT_EQ(stats.nets_reduced, 8u);
  EXPECT_EQ(stats.reductions_performed, 2u);
  EXPECT_EQ(stats.reduction_cache_hits, 6u);
  EXPECT_EQ(stats.rebuilds, 1u);
  const auto cs = hier.cache_stats();
  EXPECT_EQ(cs.reduction_entries, 2u);
  EXPECT_EQ(cs.reduction_misses, 2u);
  EXPECT_EQ(cs.reduction_hits, 6u);
  // Warm re-analysis: hints all valid, nothing re-reduces, no rebuild.
  hier.analyze();
  EXPECT_EQ(hier.stats().reductions_performed, 2u);
  EXPECT_EQ(hier.stats().rebuilds, 1u);
}

TEST(HierSession, MutationInvalidatesExactlyThatBlock) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Chain;
  spec.target_nodes = 2400;
  spec.cell_nodes = 300;
  spec.variants = 8;  // all eight cells distinct
  spec.seed = 13;
  const Design design = mega_design(spec);
  HierSession hier(design);
  timing::Session flat(design);
  expect_close_reports(flat.analyze(), hier.analyze(), 1e-9);
  ASSERT_EQ(hier.stats().reductions_performed, 8u);

  // Edit one resistor inside n3's collapsed interior (element 0 is the
  // DRV->m0 segment resistor by construction).
  hier.set_value("n3", 0, 4.25);
  flat.set_value("n3", 0, 4.25);
  expect_close_reports(flat.analyze(), hier.analyze(), 1e-9);
  // Exactly one block re-reduced, exactly one rebuild.
  EXPECT_EQ(hier.stats().reductions_performed, 9u);
  EXPECT_EQ(hier.stats().rebuilds, 2u);

  // Gate edits never touch a reduction and never force a rebuild.
  hier.set_drive_resistance("g000002", 220.0);
  flat.set_drive_resistance("g000002", 220.0);
  expect_close_reports(flat.analyze(), hier.analyze(), 1e-9);
  EXPECT_EQ(hier.stats().reductions_performed, 9u);
  EXPECT_EQ(hier.stats().rebuilds, 2u);

  hier.set_intrinsic_delay("g000004", 9e-12);
  flat.set_intrinsic_delay("g000004", 9e-12);
  expect_close_reports(flat.analyze(), hier.analyze(), 1e-9);
  EXPECT_EQ(hier.stats().reductions_performed, 9u);
}

TEST(HierSession, TopologyEditInsideCollapsedRegion) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Chain;
  spec.target_nodes = 1200;
  spec.cell_nodes = 300;
  spec.variants = 4;
  spec.seed = 17;
  const Design design = mega_design(spec);
  HierSession hier(design);
  timing::Session flat(design);
  expect_close_reports(flat.analyze(), hier.analyze(), 1e-9);
  // Grow the interior of n2: a new grounded cap deep inside the cell.
  const timing::NetElement extra{timing::NetElement::Kind::Capacitor, "m150",
                                 "0", 5e-15};
  hier.add_element("n2", extra);
  flat.add_element("n2", extra);
  expect_close_reports(flat.analyze(), hier.analyze(), 1e-9);
  EXPECT_EQ(hier.stats().reductions_performed, 5u);
  EXPECT_THROW(hier.set_value("nope", 0, 1.0), std::invalid_argument);
}

TEST(HierSession, ClearCacheRunsColdAgain) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Chain;
  spec.target_nodes = 1000;
  spec.cell_nodes = 250;
  spec.variants = 2;
  spec.seed = 23;
  HierSession hier(mega_design(spec));
  const TimingReport first = hier.analyze();
  hier.clear_cache();
  EXPECT_EQ(hier.cache_stats().reduction_entries, 0u);
  const TimingReport second = hier.analyze();
  EXPECT_EQ(hier.stats().reductions_performed, 4u);  // 2 cold runs x 2
  expect_same_payload(first, second);
}

// ---------------------------------------------------------------------
// The MNA boundary-block stamp (circuit::MacroElement).

TEST(MacroStamp, OnePortMacroMatchesResistor) {
  // Voltage divider with the lower leg as a 1-port macro.
  circuit::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", in, circuit::kGround, circuit::Stimulus::dc(10.0));
  ckt.add_resistor("R1", in, mid, 1e3);
  circuit::MacroElement macro;
  macro.name = "X1";
  macro.ports = {mid};
  macro.states = 0;
  macro.g = {1.0 / 3e3};
  macro.c = {0.0};
  ckt.add_macro(macro);
  mna::MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  EXPECT_NEAR(x[mna.node_index(mid)], 7.5, 1e-12);
}

TEST(MacroStamp, InternalStateRowSolves) {
  // a -R1- (x) -R2- gnd collapsed exactly: port {a}, one retained state
  // for the interior node x.  1 mA into a must see R1 + R2.
  const double g1 = 1.0 / 2e3;
  const double g2 = 1.0 / 3e3;
  circuit::Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_isource("I1", circuit::kGround, a, circuit::Stimulus::dc(1e-3));
  circuit::MacroElement macro;
  macro.name = "X1";
  macro.ports = {a};
  macro.states = 1;
  macro.g = {g1, -g1, -g1, g1 + g2};
  macro.c = {0.0, 0.0, 0.0, 0.0};
  ckt.add_macro(macro);
  mna::MnaSystem mna(ckt);
  const auto x = mna.solve(mna.rhs_initial());
  EXPECT_NEAR(x[mna.node_index(a)], 1e-3 * (2e3 + 3e3), 1e-9);
}

TEST(MacroStamp, AddMacroValidates) {
  circuit::Circuit ckt;
  const auto a = ckt.node("a");
  circuit::MacroElement macro;
  macro.ports = {a};
  macro.states = 0;
  macro.g = {1.0};
  macro.c = {0.0};
  EXPECT_THROW(ckt.add_macro(macro), std::invalid_argument);  // no name
  macro.name = "X1";
  macro.g = {1.0, 2.0};  // wrong block size
  EXPECT_THROW(ckt.add_macro(macro), std::invalid_argument);
  macro.g = {std::nan("")};
  EXPECT_THROW(ckt.add_macro(macro), std::invalid_argument);
  macro.g = {1.0};
  EXPECT_NO_THROW(ckt.add_macro(macro));
}

// ---------------------------------------------------------------------
// The generator itself.

TEST(MegaDesign, DeterministicAndRepetitive) {
  MegaSpec spec;
  spec.style = MegaSpec::Style::Mesh;
  spec.target_nodes = 2000;
  spec.cell_nodes = 500;
  spec.variants = 2;
  spec.seed = 31;
  EXPECT_EQ(mega_stages(spec), 4u);
  const Design a = mega_design(spec);
  const Design b = mega_design(spec);
  ASSERT_EQ(a.net_count(), 4u);
  ASSERT_EQ(b.net_count(), 4u);
  const ReduceOptions opt;
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    EXPECT_EQ(reduction_content_key(a.net_at(i), opt),
              reduction_content_key(b.net_at(i), opt));
  }
  // Instances 0 and 2 share a variant: identical reduction content.
  EXPECT_EQ(reduction_content_key(a.net_at(0), opt),
            reduction_content_key(a.net_at(2), opt));
  EXPECT_NE(reduction_content_key(a.net_at(0), opt),
            reduction_content_key(a.net_at(1), opt));
}

}  // namespace
}  // namespace awesim::reduce
