// timing::Session -- incremental what-if re-analysis.
//
// The contract under test: a warm Session::analyze() after any mutation
// is bit-identical (timing payload: delays, slews, arrivals, critical
// path, flags, diagnostics) to a cold Design::analyze() of the mutated
// design, at every thread count; reuse is visible only through the
// cache/stats counters; and a corrupted cache entry is dropped and
// recomputed -- never served stale.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault.h"
#include "timing/session.h"
#include "util/random_circuits.h"

namespace awesim::timing {

// Design generators and the payload comparator live in the shared test
// utility (tests/util/random_circuits.*), adopted here and by the
// numeric differential tier in test_low_rank.cpp.
using testutil::c;
using testutil::chain_design;
using testutil::expect_same_payload;
using testutil::fanout_design;

TEST(Session, ColdRunMatchesDesignAnalyze) {
  AnalysisOptions opt;
  opt.threads = 1;
  Session session(fanout_design(), opt);
  const TimingReport warm = session.analyze();
  const TimingReport cold = fanout_design().analyze(opt);
  expect_same_payload(warm, cold);
  // A first run computes everything.
  EXPECT_EQ(warm.awe_stats.stages_reused, 0u);
  EXPECT_EQ(warm.awe_stats.stages_recomputed, 4u);
}

TEST(Session, MutationBitIdenticalToColdAnalysisAtAnyThreadCount) {
  for (int threads : {1, 2, 8}) {
    AnalysisOptions opt;
    opt.threads = threads;
    Session session(fanout_design(), opt);
    (void)session.analyze();
    session.set_value("n2", 0, 777.0);  // resistor tweak on a mid stage
    const TimingReport warm = session.analyze();
    EXPECT_GT(warm.awe_stats.stages_reused, 0u)
        << "threads=" << threads;

    const Design mutated = session.design();
    const TimingReport cold = mutated.analyze(opt);
    expect_same_payload(warm, cold);
    EXPECT_EQ(cold.awe_stats.cache_hits, 0u);  // no cache on Design path
  }
}

TEST(Session, TopologyEditInvalidatesDownstreamOnly) {
  AnalysisOptions opt;
  opt.threads = 1;
  Session session(chain_design(4), opt);  // stages n1, n2, n3
  const TimingReport first = session.analyze();
  EXPECT_EQ(first.awe_stats.stages_recomputed, 3u);

  // Adding a capacitor to n2 changes n2's content (recompute), and the
  // slew it feeds g3 (so n3 recomputes too) -- but upstream n1 is
  // untouched and must be served from cache.
  session.add_element("n2", c("w", 15e-15));
  const TimingReport warm = session.analyze();
  EXPECT_EQ(warm.awe_stats.stages_reused, 1u);
  EXPECT_EQ(warm.awe_stats.stages_recomputed, 2u);
  expect_same_payload(warm, session.design().analyze(opt));

  // Removing the appended element (index 4) restores the original
  // content: all three stages hit again.
  session.remove_element("n2", 4);
  const TimingReport back = session.analyze();
  EXPECT_EQ(back.awe_stats.stages_reused, 3u);
  EXPECT_EQ(back.awe_stats.stages_recomputed, 0u);
  expect_same_payload(back, first, /*compare_diagnostics=*/true);
}

TEST(Session, IntrinsicDelayEditReusesLuAndDownstreamStages) {
  AnalysisOptions opt;
  opt.threads = 1;
  Session session(chain_design(4), opt);
  const TimingReport cold = session.analyze();
  const Session::CacheStats before = session.cache_stats();

  // Intrinsic delay shifts n2's delay (result key changes) but not the
  // stage circuit (content key unchanged: the LU is adopted) and not the
  // slew n2 feeds g3 (n3's result key unchanged: served with shifted
  // arrivals).  n1 is untouched.
  session.set_intrinsic_delay("g2", 9e-12);
  const TimingReport warm = session.analyze();
  EXPECT_EQ(warm.awe_stats.stages_reused, 2u);
  EXPECT_EQ(warm.awe_stats.stages_recomputed, 1u);
  // The one recomputed stage adopted the cached factorization of G and
  // skipped exactly that LU; the sigma-limit (G + sigma C) factors it
  // still performs are per-stage identical, so the cold run's three
  // stages each cost one factorization more than the warm stage.
  EXPECT_GT(cold.awe_stats.factorizations, 0u);
  EXPECT_EQ(cold.awe_stats.factorizations,
            3 * (warm.awe_stats.factorizations + 1));

  const Session::CacheStats after = session.cache_stats();
  // Three lookups hit: stage n1, stage n3, and n2's LU content key.
  EXPECT_EQ(after.hits - before.hits, 3u);

  expect_same_payload(warm, session.design().analyze(opt));
}

TEST(Session, CorruptedCacheEntryRecomputesNeverServesStale) {
  AnalysisOptions opt;
  opt.threads = 1;
  Session session(chain_design(4), opt);
  const TimingReport fresh = session.analyze();

  {
    core::ScopedFaultInjection arm({{"session.cache", "n2", -1}});
    const TimingReport warm = session.analyze();
    // The corrupt entry was dropped and n2 recomputed through the
    // ordinary guarded path -- the timing payload matches a fresh
    // analysis exactly (never stale) ...
    expect_same_payload(warm, fresh, /*compare_diagnostics=*/false);
    EXPECT_EQ(warm.awe_stats.stages_recomputed, 1u);
    EXPECT_EQ(warm.awe_stats.stages_reused, 2u);
    // ... and the event is visible: a CacheInvalidated warning naming
    // the net, plus the invalidation counter.
    bool saw_invalidation = false;
    for (const auto& d : warm.diagnostics) {
      if (d.code == core::DiagCode::CacheInvalidated &&
          d.element == "n2") {
        saw_invalidation = true;
      }
    }
    EXPECT_TRUE(saw_invalidation);
    EXPECT_EQ(session.cache_stats().invalidations, 1u);
  }

  // Disarmed: the recomputed entry serves again, no stale residue.
  const TimingReport after = session.analyze();
  expect_same_payload(after, fresh);
  EXPECT_EQ(after.awe_stats.stages_reused, 3u);
  EXPECT_EQ(session.cache_stats().invalidations, 1u);
}

TEST(Session, SweepRestoresParameterAndSecondSweepFullyReuses) {
  AnalysisOptions opt;
  opt.threads = 1;
  Session session(chain_design(4), opt);
  (void)session.analyze();

  const SweepParam param{SweepParam::Kind::NetElementValue, "n2", 0};
  const std::vector<double> values = {120.0, 240.0, 480.0};
  const SweepResult sweep1 = session.sweep(param, values);
  ASSERT_EQ(sweep1.points.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(sweep1.points[i].value, values[i]);
    EXPECT_EQ(sweep1.points[i].report.stages.size(), 3u);
  }
  // Each warm point is bit-identical to a cold analysis of that value.
  {
    Session cold_point(chain_design(4), opt);
    cold_point.set_value("n2", 0, 240.0);
    const Design d = cold_point.design();
    expect_same_payload(sweep1.points[1].report, d.analyze(opt));
  }
  // The sweep restored the original value: analyzing now reuses
  // everything the pre-sweep run cached.
  const TimingReport restored = session.analyze();
  EXPECT_EQ(restored.awe_stats.stages_reused, 3u);
  EXPECT_EQ(restored.awe_stats.stages_recomputed, 0u);

  // A second identical sweep is pure cache replay.
  const SweepResult sweep2 = session.sweep(param, values);
  EXPECT_EQ(sweep2.stages_recomputed, 0u);
  EXPECT_EQ(sweep2.stages_reused, sweep1.stages_reused +
                                      sweep1.stages_recomputed);
  for (std::size_t i = 0; i < values.size(); ++i) {
    expect_same_payload(sweep2.points[i].report, sweep1.points[i].report);
  }
}

TEST(Session, CacheCountersAreIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    AnalysisOptions opt;
    opt.threads = threads;
    Session session(fanout_design(), opt);
    (void)session.analyze();
    session.set_value("n1", 0, 175.0);
    (void)session.analyze();
    session.set_drive_resistance("g3", 1.4e3);
    const TimingReport last = session.analyze();
    return std::make_pair(session.cache_stats(), last);
  };
  const auto [stats1, report1] = run(1);
  const auto [stats8, report8] = run(8);
  EXPECT_EQ(stats1.hits, stats8.hits);
  EXPECT_EQ(stats1.misses, stats8.misses);
  EXPECT_EQ(stats1.invalidations, stats8.invalidations);
  EXPECT_EQ(stats1.evictions, stats8.evictions);
  EXPECT_EQ(stats1.stage_entries, stats8.stage_entries);
  EXPECT_EQ(stats1.factorization_entries, stats8.factorization_entries);
  EXPECT_EQ(report1.awe_stats.cache_hits, report8.awe_stats.cache_hits);
  EXPECT_EQ(report1.awe_stats.cache_misses,
            report8.awe_stats.cache_misses);
  expect_same_payload(report1, report8);
}

TEST(Session, FactorizationCacheEvictsFifoBeyondCapacity) {
  // 19 stages with 19 distinct circuits: more than the 16-entry LU cap.
  AnalysisOptions opt;
  opt.threads = 1;
  Session session(chain_design(20), opt);
  (void)session.analyze();
  const Session::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.stage_entries, 19u);
  EXPECT_EQ(stats.factorization_entries, 16u);
  EXPECT_EQ(stats.evictions, 3u);

  // Stage-result entries survived the LU evictions: a second run still
  // replays every stage.
  const TimingReport warm = session.analyze();
  EXPECT_EQ(warm.awe_stats.stages_reused, 19u);
  EXPECT_EQ(warm.awe_stats.stages_recomputed, 0u);
}

TEST(Session, MutatorValidation) {
  Session session(chain_design(3), {});
  EXPECT_THROW(session.set_value("nope", 0, 1.0), std::invalid_argument);
  EXPECT_THROW(session.set_value("n1", 99, 1.0), std::invalid_argument);
  EXPECT_THROW(session.remove_element("n1", 99), std::invalid_argument);
  EXPECT_THROW(session.set_drive_resistance("ghost", 1.0),
               std::invalid_argument);
  EXPECT_THROW(
      session.sweep({SweepParam::Kind::NetElementValue, "nope", 0}, {1.0}),
      std::invalid_argument);
}

}  // namespace awesim::timing
