// Waveform container and the delay/error metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "waveform/waveform.h"

namespace awesim::waveform {

TEST(Waveform, ConstructionValidation) {
  EXPECT_THROW(Waveform({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({1.0, 0.5}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Waveform, SampleCallable) {
  const auto w = Waveform::sample([](double t) { return 2.0 * t; }, 0.0,
                                  1.0, 11);
  EXPECT_EQ(w.size(), 11u);
  EXPECT_NEAR(w.values()[5], 1.0, 1e-15);
  EXPECT_THROW(Waveform::sample([](double) { return 0.0; }, 1.0, 0.0, 5),
               std::invalid_argument);
}

TEST(Waveform, LinearInterpolationAndClamping) {
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_NEAR(w.value_at(0.25), 2.5, 1e-12);
  EXPECT_NEAR(w.value_at(1.5), 5.0, 1e-12);
  EXPECT_EQ(w.value_at(-1.0), 0.0);
  EXPECT_EQ(w.value_at(9.0), 0.0);
}

TEST(Waveform, FirstCrossingRising) {
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 4.0, 8.0});
  const auto c = w.first_crossing(2.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, 0.5, 1e-12);
  EXPECT_FALSE(w.first_crossing(9.0).has_value());
}

TEST(Waveform, CrossingsOnNonmonotone) {
  // Up, down, up: three crossings of level 1.
  const Waveform w({0.0, 1.0, 2.0, 3.0}, {0.0, 2.0, 0.0, 2.0});
  const auto first = w.first_crossing(1.0);
  const auto last = w.last_crossing(1.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(last.has_value());
  EXPECT_NEAR(*first, 0.5, 1e-12);
  EXPECT_NEAR(*last, 2.5, 1e-12);
}

TEST(Waveform, Delay50OfExponential) {
  const double tau = 2.0;
  const auto w = Waveform::sample(
      [&](double t) { return 5.0 * (1.0 - std::exp(-t / tau)); }, 0.0,
      20.0, 4001);
  const auto d = w.delay_50();
  ASSERT_TRUE(d.has_value());
  // v(back) isn't exactly 5, but ln(2)*tau is accurate to ~1e-3 here.
  EXPECT_NEAR(*d, std::log(2.0) * tau, 5e-3);
}

TEST(Waveform, IntegralOfTriangle) {
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  EXPECT_NEAR(w.integral(), 1.0, 1e-15);
}

TEST(Waveform, MinMax) {
  const Waveform w({0.0, 1.0, 2.0}, {-3.0, 7.0, 2.0});
  EXPECT_EQ(w.max_value(), 7.0);
  EXPECT_EQ(w.min_value(), -3.0);
}

TEST(Waveform, L2DifferenceOfIdenticalIsZero) {
  const auto w = Waveform::sample([](double t) { return std::sin(t); }, 0.0,
                                  6.28, 501);
  EXPECT_NEAR(w.l2_difference_sq(w), 0.0, 1e-15);
}

TEST(Waveform, RelativeErrorAgainstReference) {
  // Reference: step response settling to 1; approximation off by a
  // decaying error.  Error must be scale-invariant.
  const auto ref = Waveform::sample(
      [](double t) { return 1.0 - std::exp(-t); }, 0.0, 20.0, 4001);
  const auto ok = Waveform::sample(
      [](double t) { return 1.0 - std::exp(-t) + 0.05 * std::exp(-2.0 * t); },
      0.0, 20.0, 4001);
  const double err = ok.relative_error_vs(ref);
  EXPECT_GT(err, 0.005);
  EXPECT_LT(err, 0.2);
  // Identical waveforms: zero.
  EXPECT_NEAR(ref.relative_error_vs(ref), 0.0, 1e-12);
}

TEST(Waveform, EmptyBehaviour) {
  Waveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_THROW(w.value_at(0.0), std::logic_error);
  EXPECT_FALSE(w.delay_50().has_value());
}

}  // namespace awesim::waveform
