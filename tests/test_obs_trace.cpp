// The scoped-span tracer: aggregation correctness, the runtime and
// compile-time gates, and the determinism contract -- tracing must not
// change a single bit of any engine or timing result.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "circuits/paper_circuits.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "timing/analyzer.h"

using namespace awesim;

namespace {

// Every test runs with a clean registry and restores the tracing state
// it found, so ctest ordering and --gtest_shuffle cannot couple tests.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::tracing_enabled();
    obs::reset_phases();
  }
  void TearDown() override {
    obs::set_tracing(was_enabled_);
    obs::reset_phases();
  }

 private:
  bool was_enabled_ = false;
};

const obs::PhaseStats* find_phase(const obs::PhaseBreakdown& breakdown,
                                  const std::string& name) {
  for (const auto& p : breakdown) {
    if (p.name == name) return &p.stats;
  }
  return nullptr;
}

void spin_briefly() {
  volatile double x = 1.0;
  for (int i = 0; i < 2000; ++i) x = x * 1.0000001;
}

bool same_result(const core::Result& a, const core::Result& b) {
  if (a.order_used != b.order_used || a.stable != b.stable ||
      a.status != b.status ||
      a.output_moments != b.output_moments) {
    return false;
  }
  for (int k = 0; k <= 100; ++k) {
    const double t = 5e-3 * k / 100.0;
    if (a.approximation.value(t) != b.approximation.value(t)) return false;
  }
  return true;
}

timing::Design two_path_design() {
  timing::Design d;
  d.add_gate({"drv", 900.0, 4e-15, 10e-12});
  d.add_gate({"mid", 1.1e3, 5e-15, 20e-12});
  d.add_gate({"end", 1.3e3, 6e-15, 25e-12});
  d.set_primary_input("drv");
  timing::Net n1;
  n1.name = "n1";
  n1.parasitics = {{timing::NetElement::Kind::Resistor, "DRV", "a", 200.0},
                   {timing::NetElement::Kind::Capacitor, "a", "0", 15e-15}};
  n1.sink_node["mid"] = "a";
  d.add_net("drv", n1);
  timing::Net n2;
  n2.name = "n2";
  n2.parasitics = {{timing::NetElement::Kind::Resistor, "DRV", "b", 350.0},
                   {timing::NetElement::Kind::Capacitor, "b", "0", 22e-15}};
  n2.sink_node["end"] = "b";
  d.add_net("mid", n2);
  return d;
}

}  // namespace

TEST_F(ObsTraceTest, SpansAggregateCountsAndTotals) {
  if (!obs::tracing_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  obs::set_tracing(true);
  for (int i = 0; i < 5; ++i) {
    AWESIM_TRACE_SPAN("test.unit");
    spin_briefly();
  }
  const auto breakdown = obs::snapshot();
  const auto* stats = find_phase(breakdown, "test.unit");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 5u);
  EXPECT_GT(stats->total_seconds, 0.0);
  EXPECT_GE(stats->max_seconds, stats->min_seconds);
  EXPECT_GE(stats->total_seconds,
            stats->min_seconds * static_cast<double>(stats->count));
  EXPECT_GE(stats->max_seconds * static_cast<double>(stats->count),
            stats->total_seconds);
}

TEST_F(ObsTraceTest, NestedSpansRecordIntoBothPhases) {
  if (!obs::tracing_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  obs::set_tracing(true);
  {
    AWESIM_TRACE_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) {
      AWESIM_TRACE_SPAN("test.inner");
      spin_briefly();
    }
  }
  const auto breakdown = obs::snapshot();
  const auto* outer = find_phase(breakdown, "test.outer");
  const auto* inner = find_phase(breakdown, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 3u);
  // The outer span encloses all inner spans.
  EXPECT_GE(outer->total_seconds, inner->total_seconds);
}

TEST_F(ObsTraceTest, RuntimeDisabledRecordsNothing) {
  obs::set_tracing(false);
  {
    AWESIM_TRACE_SPAN("test.disabled");
    spin_briefly();
  }
  const auto breakdown = obs::snapshot();
  EXPECT_EQ(find_phase(breakdown, "test.disabled"), nullptr);
}

TEST_F(ObsTraceTest, CompiledOutMacroIsANoOp) {
  if (obs::tracing_compiled_in()) {
    GTEST_SKIP() << "tracing compiled in";
  }
  // Even with the runtime gate forced on, the macro must expand to
  // nothing when compiled out.
  obs::set_tracing(true);
  {
    AWESIM_TRACE_SPAN("test.compiled_out");
    spin_briefly();
  }
  EXPECT_TRUE(obs::snapshot().empty());
}

TEST_F(ObsTraceTest, SinceSubtractsTheEarlierSnapshot) {
  if (!obs::tracing_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  obs::set_tracing(true);
  {
    AWESIM_TRACE_SPAN("test.window");
    spin_briefly();
  }
  const auto before = obs::snapshot();
  for (int i = 0; i < 4; ++i) {
    AWESIM_TRACE_SPAN("test.window");
    spin_briefly();
  }
  const auto delta = obs::since(before);
  const auto* stats = find_phase(delta, "test.window");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 4u);
  // A phase untouched inside the window is absent from the delta.
  EXPECT_EQ(delta.size(), 1u);
}

TEST_F(ObsTraceTest, ConcurrentSpansAggregateWithoutLoss) {
  if (!obs::tracing_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  obs::set_tracing(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        AWESIM_TRACE_SPAN("test.concurrent");
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto breakdown = obs::snapshot();
  const auto* stats = find_phase(breakdown, "test.concurrent");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
}

TEST_F(ObsTraceTest, EngineResultBitIdenticalTracingOnVsOff) {
  auto ckt = circuits::fig16_mos_interconnect({0.0, 5.0, 1e-9});
  core::EngineOptions opt;
  opt.order = 3;

  obs::set_tracing(false);
  core::Engine off_engine(ckt);
  const auto off = off_engine.approximate(ckt.find_node("n7"), opt);

  obs::set_tracing(true);
  core::Engine on_engine(ckt);
  const auto on = on_engine.approximate(ckt.find_node("n7"), opt);

  EXPECT_TRUE(same_result(off, on));
}

TEST_F(ObsTraceTest, TimingReportBitIdenticalTracingOnVsOff) {
  const auto design = two_path_design();
  timing::AnalysisOptions opt;

  obs::set_tracing(false);
  const auto off = design.analyze(opt);

  obs::set_tracing(true);
  const auto on = design.analyze(opt);

  EXPECT_EQ(off.critical_delay, on.critical_delay);
  EXPECT_EQ(off.critical_path, on.critical_path);
  EXPECT_EQ(off.gate_arrival, on.gate_arrival);
  EXPECT_EQ(off.awe_stats.factorizations, on.awe_stats.factorizations);
  EXPECT_EQ(off.awe_stats.substitutions, on.awe_stats.substitutions);
  EXPECT_EQ(off.awe_stats.matches, on.awe_stats.matches);
  ASSERT_EQ(off.stages.size(), on.stages.size());
  for (std::size_t i = 0; i < off.stages.size(); ++i) {
    ASSERT_EQ(off.stages[i].sinks.size(), on.stages[i].sinks.size());
    for (std::size_t s = 0; s < off.stages[i].sinks.size(); ++s) {
      EXPECT_EQ(off.stages[i].sinks[s].arrival,
                on.stages[i].sinks[s].arrival);
      EXPECT_EQ(off.stages[i].sinks[s].slew, on.stages[i].sinks[s].slew);
    }
  }
  // The traced run carries the phase breakdown; the untraced run's is
  // empty (when compiled in).
  if (obs::tracing_compiled_in()) {
    EXPECT_TRUE(off.awe_stats.phases.empty());
    EXPECT_FALSE(on.awe_stats.phases.empty());
  }
}
