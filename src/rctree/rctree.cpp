#include "rctree/rctree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <stdexcept>

namespace awesim::rctree {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;

std::optional<RcTree> extract(const circuit::Circuit& ckt) {
  const Element* source = nullptr;
  std::vector<const Element*> resistors;
  std::vector<const Element*> capacitors;
  for (const auto& e : ckt.elements()) {
    switch (e.kind) {
      case ElementKind::Resistor:
        resistors.push_back(&e);
        break;
      case ElementKind::Capacitor:
        capacitors.push_back(&e);
        break;
      case ElementKind::VoltageSource:
        if (source != nullptr) return std::nullopt;  // one source only
        source = &e;
        break;
      default:
        return std::nullopt;  // inductors, controlled sources, I sources
    }
  }
  if (source == nullptr || source->neg != kGround) return std::nullopt;
  const circuit::NodeId root = source->pos;
  if (root == kGround) return std::nullopt;

  // No resistor may touch ground, and every capacitor must be grounded.
  std::multimap<circuit::NodeId, const Element*> adjacency;
  for (const Element* r : resistors) {
    if (r->pos == kGround || r->neg == kGround) return std::nullopt;
    adjacency.emplace(r->pos, r);
    adjacency.emplace(r->neg, r);
  }
  for (const Element* c : capacitors) {
    if (c->pos != kGround && c->neg != kGround) return std::nullopt;
  }

  // BFS over the resistor graph from the root; a tree touches every
  // resistor exactly once and never revisits a node.
  RcTree tree;
  std::map<circuit::NodeId, std::size_t> tree_index;
  tree.parent.push_back(-1);
  tree.resistance.push_back(0.0);
  tree.capacitance.push_back(0.0);
  tree.circuit_node.push_back(root);
  tree_index.emplace(root, 0);

  std::vector<const Element*> parent_edge{nullptr};
  std::queue<circuit::NodeId> frontier;
  frontier.push(root);
  std::size_t resistors_used = 0;
  while (!frontier.empty()) {
    const circuit::NodeId at = frontier.front();
    frontier.pop();
    const std::size_t at_idx = tree_index.at(at);
    auto [lo, hi] = adjacency.equal_range(at);
    for (auto it = lo; it != hi; ++it) {
      const Element* r = it->second;
      if (r == parent_edge[at_idx]) continue;  // edge back to our parent
      const circuit::NodeId other = (r->pos == at) ? r->neg : r->pos;
      if (tree_index.count(other) > 0) {
        return std::nullopt;  // resistor loop (or parallel resistors)
      }
      tree.parent.push_back(static_cast<int>(at_idx));
      tree.resistance.push_back(r->value);
      tree.capacitance.push_back(0.0);
      tree.circuit_node.push_back(other);
      parent_edge.push_back(r);
      tree_index.emplace(other, tree.size() - 1);
      frontier.push(other);
      ++resistors_used;
    }
  }
  if (resistors_used != resistors.size()) {
    return std::nullopt;  // resistors not reachable from the root
  }

  for (const Element* c : capacitors) {
    const circuit::NodeId node = (c->pos == kGround) ? c->neg : c->pos;
    auto it = tree_index.find(node);
    if (it == tree_index.end()) return std::nullopt;  // cap off the tree
    tree.capacitance[it->second] += c->value;
  }
  return tree;
}

namespace {

// One order of the two-pass tree walk: given per-node weights w, return
// y_i = sum_k R(path(0,i) /\ path(0,k)) * w_k for every node i, in O(n).
la::RealVector tree_walk(const RcTree& tree, const la::RealVector& w) {
  const std::size_t n = tree.size();
  // Pass 1 (leaves to root, valid because children always have larger
  // indices than their parents by construction): subtree sums of w.
  la::RealVector subtree = w;
  for (std::size_t v = n; v-- > 1;) {
    subtree[static_cast<std::size_t>(tree.parent[v])] += subtree[v];
  }
  // Pass 2 (root to leaves): accumulate R * subtree along each path.
  la::RealVector y(n, 0.0);
  for (std::size_t v = 1; v < n; ++v) {
    y[v] = y[static_cast<std::size_t>(tree.parent[v])] +
           tree.resistance[v] * subtree[v];
  }
  return y;
}

}  // namespace

std::vector<double> elmore_delays(const RcTree& tree) {
  return tree_walk(tree, tree.capacitance);
}

std::vector<la::RealVector> transfer_moments(const RcTree& tree, int count) {
  if (count < 1) throw std::invalid_argument("transfer_moments: count >= 1");
  std::vector<la::RealVector> moments;
  moments.emplace_back(tree.size(), 1.0);  // m_0 = DC gain = 1 everywhere
  for (int j = 1; j < count; ++j) {
    la::RealVector w(tree.size());
    for (std::size_t k = 0; k < tree.size(); ++k) {
      w[k] = tree.capacitance[k] * moments.back()[k];
    }
    la::RealVector y = tree_walk(tree, w);
    for (auto& v : y) v = -v;
    moments.push_back(std::move(y));
  }
  return moments;
}

double single_pole_response(double t, double v_final, double elmore_delay) {
  if (t <= 0.0) return 0.0;
  return v_final * (1.0 - std::exp(-t / elmore_delay));
}

DelayBounds delay_bounds(const RcTree& tree, std::size_t node,
                         double fraction) {
  if (node >= tree.size()) {
    throw std::out_of_range("delay_bounds: node out of range");
  }
  if (!(fraction > 0.0 && fraction < 1.0)) {
    throw std::invalid_argument("delay_bounds: fraction in (0,1)");
  }
  const auto moments = transfer_moments(tree, 3);
  const double mean = -moments[1][node];          // T_D
  const double second = 2.0 * moments[2][node];   // int t^2 f dt
  const double variance = std::max(0.0, second - mean * mean);

  DelayBounds b;
  // Markov: 1 - v(t) <= T_D / t  =>  threshold reached by T_D/(1-x).
  b.upper = mean / (1.0 - fraction);
  // Cantelli on the left tail: v(t) <= var / (var + (T_D - t)^2), t <= T_D.
  b.lower = std::max(
      0.0, mean - std::sqrt(variance * (1.0 - fraction) / fraction));
  return b;
}

double TwoPoleModel::unit_step_response(double t) const {
  if (t < 0.0) return 0.0;
  double v = 1.0 + k1 * std::exp(p1 * t);
  if (!is_single_pole) v += k2 * std::exp(p2 * t);
  return v;
}

TwoPoleModel two_pole_model(const RcTree& tree, std::size_t node) {
  const auto moments = transfer_moments(tree, 4);
  // AWE moment sequence for a unit step (see core/moments.h):
  // mu_{-1} = 1, mu_j = m_{j+1}.
  const double mu_m1 = 1.0;
  const double mu_0 = moments[1][node];
  const double mu_1 = moments[2][node];
  const double mu_2 = moments[3][node];

  TwoPoleModel model;
  auto single_pole = [&]() {
    model.is_single_pole = true;
    model.p1 = 1.0 / mu_0;  // mu_0 = -T_D
    model.k1 = -1.0;
    model.k2 = 0.0;
    model.p2 = 0.0;
    return model;
  };
  // Hankel rows: mu_{-1} a0 + mu_0 a1 = -mu_1; mu_0 a0 + mu_1 a1 = -mu_2.
  const double det = mu_m1 * mu_1 - mu_0 * mu_0;
  if (det == 0.0) return single_pole();
  const double a0 = (-mu_1 * mu_1 + mu_0 * mu_2) / det;
  const double a1 = (-mu_m1 * mu_2 + mu_0 * mu_1) / det;
  // y^2 + a1 y + a0 = 0, y = 1/p.
  const double disc = a1 * a1 - 4.0 * a0;
  if (disc < 0.0) return single_pole();  // RC tree responses are real-poled
  const double sq = std::sqrt(disc);
  const double y1 = 0.5 * (-a1 + (a1 >= 0.0 ? -sq : sq));
  const double y2 = (y1 != 0.0) ? a0 / y1 : 0.0;
  if (y1 >= 0.0 || y2 >= 0.0 || y1 == y2) return single_pole();
  model.p1 = 1.0 / y1;
  model.p2 = 1.0 / y2;
  // Residues: k1 + k2 = -mu_{-1}; k1/p1 + k2/p2 = -mu_0.
  const double d = y1 - y2;
  model.k1 = (-mu_0 - (-mu_m1) * y2) / d;
  model.k2 = -mu_m1 - model.k1;
  return model;
}

circuit::Circuit to_circuit(const RcTree& tree,
                            const circuit::Stimulus& input) {
  circuit::Circuit ckt;
  std::vector<circuit::NodeId> ids(tree.size());
  for (std::size_t v = 0; v < tree.size(); ++v) {
    ids[v] = ckt.node("n" + std::to_string(v));
  }
  ckt.add_vsource("Vin", ids[0], kGround, input);
  for (std::size_t v = 1; v < tree.size(); ++v) {
    ckt.add_resistor("R" + std::to_string(v),
                     ids[static_cast<std::size_t>(tree.parent[v])], ids[v],
                     tree.resistance[v]);
    if (tree.capacitance[v] > 0.0) {
      ckt.add_capacitor("C" + std::to_string(v), ids[v], kGround,
                        tree.capacitance[v]);
    }
  }
  return ckt;
}

RcTree random_tree(std::size_t nodes, std::uint64_t seed, double r_min,
                   double r_max, double c_min, double c_max) {
  if (nodes == 0) throw std::invalid_argument("random_tree: nodes >= 1");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  auto log_uniform = [&](double lo, double hi) {
    return lo * std::pow(hi / lo, unit(rng));
  };
  RcTree tree;
  tree.parent.assign(1, -1);
  tree.resistance.assign(1, 0.0);
  tree.capacitance.assign(1, 0.0);
  tree.circuit_node.assign(1, 0);
  for (std::size_t v = 1; v <= nodes; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, v - 1);
    tree.parent.push_back(static_cast<int>(pick(rng)));
    tree.resistance.push_back(log_uniform(r_min, r_max));
    tree.capacitance.push_back(log_uniform(c_min, c_max));
    tree.circuit_node.push_back(0);
  }
  return tree;
}

}  // namespace awesim::rctree
