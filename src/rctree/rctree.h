// RC-tree methods: the baseline delay estimators of Section II of the
// paper, against which AWE is compared and to which a first-order AWE
// approximation reduces (Section IV).
//
// An RC tree (Penfield-Rubinstein sense) is an RC network with a capacitor
// from every node to ground, no floating capacitors, no resistor loops and
// no resistors to ground, driven by one ideal voltage source at its root.
// For such circuits every moment can be computed in O(n) per order by tree
// walks (the paper's Section 4.1), with no matrix factorization at all.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "circuit/circuit.h"
#include "la/matrix.h"

namespace awesim::rctree {

/// Normalized RC tree.  Tree node 0 is the source node (the ideal input);
/// every other node k has a resistor `resistance[k]` to `parent[k]` and a
/// capacitor `capacitance[k]` to ground.  Node 0's resistance/capacitance
/// entries are unused (zero).
struct RcTree {
  std::vector<int> parent;            // parent[0] == -1
  std::vector<double> resistance;     // ohms, to parent
  std::vector<double> capacitance;    // farads, to ground
  std::vector<circuit::NodeId> circuit_node;  // back-map into the Circuit

  std::size_t size() const { return parent.size(); }
};

/// Try to interpret a Circuit as an RC tree: exactly one voltage source
/// (root to ground), resistors forming a tree rooted there, all capacitors
/// grounded, no other elements.  Returns nullopt when the circuit does not
/// have that shape (floating caps, resistor loops, grounded resistors,
/// inductors, ... -- precisely the cases that need full AWE).
std::optional<RcTree> extract(const circuit::Circuit& ckt);

/// Elmore delays T_D for every tree node (eq. 50 of the paper): the first
/// moment of the impulse response, computed by the classic two-pass tree
/// walk in O(n).
std::vector<double> elmore_delays(const RcTree& tree);

/// Transfer-function moments per node: result[j][k] is the coefficient of
/// s^j in H_k(s), j = 0..count-1 (m_0 = 1, m_1 = -T_D, ...), each order
/// one O(n) tree walk.  These are the moments AWE matches, up to the
/// source amplitude (see core/moments.h).
std::vector<la::RealVector> transfer_moments(const RcTree& tree, int count);

/// The single-pole Penfield-Rubinstein waveform model (eq. 2):
/// v(t) = v_final * (1 - exp(-t / T_D)).
double single_pole_response(double t, double v_final, double elmore_delay);

/// Provable delay bounds for the monotone step response of an RC tree,
/// from the moment interpretation of the Elmore delay (the impulse
/// response is a probability density with mean T_D): a Markov-inequality
/// upper bound and a Cantelli-inequality lower bound using the density's
/// variance from the second tree moment.  These play the role of the
/// best/worst-case bounds of [7],[14] (not the exact published formulas,
/// which the paper only references).
struct DelayBounds {
  double lower = 0.0;  // response cannot reach the threshold before this
  double upper = 0.0;  // response must have reached the threshold by this
};

/// Bounds for reaching `fraction` (0 < fraction < 1) of the final value at
/// tree node `node`.
DelayBounds delay_bounds(const RcTree& tree, std::size_t node,
                         double fraction);

/// Two-pole waveform model fitted to the first four transfer moments
/// (m_0..m_3) at one node -- the Chu/Horowitz-style double time constant
/// model of Section 2.3.  Returns poles p1, p2 (1/s) and residues so that
/// the unit step response is 1 + k1*exp(p1 t) + k2*exp(p2 t).
/// Falls back to a single pole (k2 = 0) when the moments do not support
/// two distinct stable poles.
struct TwoPoleModel {
  double p1 = 0.0, p2 = 0.0;
  double k1 = 0.0, k2 = 0.0;
  bool is_single_pole = false;

  double unit_step_response(double t) const;
};

TwoPoleModel two_pole_model(const RcTree& tree, std::size_t node);

/// Convert a tree back into a Circuit driven by the given stimulus at the
/// root (node names: "n0" (root), "n1", ...).
circuit::Circuit to_circuit(const RcTree& tree,
                            const circuit::Stimulus& input);

/// Random RC tree with `nodes` tree nodes (excluding the source node),
/// element values log-uniform in [r_min, r_max] x [c_min, c_max];
/// deterministic in `seed`.  For property tests and scaling benches.
RcTree random_tree(std::size_t nodes, std::uint64_t seed,
                   double r_min = 10.0, double r_max = 1e4,
                   double c_min = 1e-15, double c_max = 1e-12);

}  // namespace awesim::rctree
