#include "reduce/reduce.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/partition.h"
#include "core/fault.h"
#include "la/lu.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "timing/stage_cache.h"

namespace awesim::reduce {

namespace {

bool is_ground(const std::string& name) {
  return name == "0" || name == "gnd" || name == "GND";
}

double dot(const la::RealVector& a, const la::RealVector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const la::RealVector& a) { return std::sqrt(dot(a, a)); }

void axpy(la::RealVector& y, const la::RealVector& x, double alpha) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

double max_abs(const la::Matrix<double>& m) {
  double best = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      best = std::max(best, std::abs(m(r, c)));
  return best;
}

/// The node table of one net: ground pinned at dense id 0, boundary
/// nodes (driver hookup + sink hookups, name-sorted) at 1..m, interior
/// nodes at m+1.. in first-appearance order.
struct NodeTable {
  // Hashed, not ordered: ids are assigned by insertion order (++next),
  // so nothing downstream depends on map iteration order -- only
  // .size() and point lookups are ever used.  On kilo-node nets the
  // ordered map's string comparisons dominated the whole eligibility
  // precheck.
  std::unordered_map<std::string, int> ids;
  std::size_t boundary = 0;  // m
  std::size_t interior = 0;  // n_i
  int next = 0;

  int intern(const std::string& name) {
    if (is_ground(name)) return 0;
    const auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const int id = ++next;
    ids.emplace(name, id);
    return id;
  }
  bool is_boundary(int id) const {
    return id >= 1 && id <= static_cast<int>(boundary);
  }
};

/// Sorted, deduplicated boundary node names: the driver hookup "DRV"
/// plus every sink hookup.  Ground never qualifies (the caller refuses
/// such nets before getting here).
std::set<std::string> boundary_names(const timing::Net& net) {
  std::set<std::string> names;
  names.insert("DRV");
  for (const auto& [gate, node] : net.sink_node) names.insert(node);
  return names;
}

core::Diagnostic make_diag(core::DiagCode code, const timing::Net& net,
                           std::string message) {
  core::Diagnostic d;
  d.code = code;
  d.severity = core::Severity::Warning;
  d.element = net.name;
  d.message = std::move(message);
  return d;
}

}  // namespace

const char* to_string(Eligibility eligibility) {
  switch (eligibility) {
    case Eligibility::Eligible: return "eligible";
    case Eligibility::HasMacros: return "has-macros";
    case Eligibility::TooManyPorts: return "too-many-ports";
    case Eligibility::SinkAtGround: return "sink-at-ground";
    case Eligibility::InteriorTooSmall: return "interior-too-small";
    case Eligibility::NonRc: return "non-rc";
  }
  return "unknown";
}

Eligibility net_eligibility(const timing::Net& net,
                            const ReduceOptions& options) {
  if (!net.macros.empty()) return Eligibility::HasMacros;
  const std::set<std::string> boundary = boundary_names(net);
  if (boundary.size() > options.max_ports) return Eligibility::TooManyPorts;
  for (const auto& [gate, node] : net.sink_node) {
    (void)gate;
    if (is_ground(node)) return Eligibility::SinkAtGround;
  }
  NodeTable table;
  table.ids.reserve(boundary.size() + net.parasitics.size());
  for (const std::string& name : boundary) table.intern(name);
  table.boundary = table.ids.size();
  // One pass: intern endpoints and build the classification edges
  // together (the interior-count gate just reads the edges back).
  std::vector<check::Edge> edges;
  edges.reserve(net.parasitics.size());
  for (const timing::NetElement& e : net.parasitics) {
    check::Edge edge;
    edge.a = table.intern(e.node_a);
    edge.b = table.intern(e.node_b);
    switch (e.kind) {
      case timing::NetElement::Kind::Resistor:
        edge.kind = check::Edge::Kind::Resistive;
        break;
      case timing::NetElement::Kind::Capacitor:
        edge.kind = check::Edge::Kind::Capacitive;
        break;
      case timing::NetElement::Kind::Inductor:
        edge.kind = check::Edge::Kind::Inductive;
        break;
    }
    edges.push_back(edge);
  }
  const std::size_t ni = table.ids.size() - table.boundary;
  if (ni < std::max<std::size_t>(options.min_interior, 1)) {
    return Eligibility::InteriorTooSmall;
  }
  const check::TopologyClass cls =
      check::classify_edges(table.ids.size() + 1, edges);
  if (cls != check::TopologyClass::RcTree &&
      cls != check::TopologyClass::RcMesh) {
    return Eligibility::NonRc;
  }
  return Eligibility::Eligible;
}

std::string reduction_content_key(const timing::Net& net,
                                  const ReduceOptions& options) {
  timing::detail::KeyBuilder kb;
  kb.reserve(64 + net.parasitics.size() * 32);
  kb.tag('P').integer(net.parasitics.size());
  for (const timing::NetElement& e : net.parasitics) {
    kb.integer(static_cast<std::uint64_t>(e.kind))
        .text(e.node_a)
        .text(e.node_b)
        .number(e.value);
  }
  const std::set<std::string> boundary = boundary_names(net);
  kb.tag('B').integer(boundary.size());
  for (const std::string& name : boundary) kb.text(name);
  kb.tag('O')
      .integer(options.min_interior)
      .integer(options.max_ports)
      .integer(static_cast<std::uint64_t>(options.moments))
      .number(options.tolerance)
      .tag(options.verify ? 'v' : '-');
  return kb.take();
}

NetReduction reduce_net(const timing::Net& net, const ReduceOptions& options) {
  NetReduction out;
  out.net = net;

  // --- Cheap structural gates (silent refusals: flat is simply right),
  // shared with HierSession's precheck and the design audit.
  if (net_eligibility(net, options) != Eligibility::Eligible) return out;

  const std::set<std::string> boundary = boundary_names(net);
  NodeTable table;
  table.ids.reserve(boundary.size() + net.parasitics.size());
  for (const std::string& name : boundary) table.intern(name);
  table.boundary = table.ids.size();
  for (const timing::NetElement& e : net.parasitics) {
    table.intern(e.node_a);
    table.intern(e.node_b);
  }
  const std::size_t m = table.boundary;
  const std::size_t ni = table.ids.size() - m;
  table.interior = ni;

  // --- The fault-injection drill: a typed, visible refusal.
  if (core::fault_at("reduce.collapse", net.name)) {
    out.diagnostics.push_back(make_diag(
        core::DiagCode::ReductionFallback, net,
        "injected fault at reduce.collapse; net analyzed flat"));
    return out;
  }

  // --- Interior solvability guard: every interior node's resistive
  // component must reach ground or a boundary node, or G_ii is
  // structurally singular (the lint pipeline reports the island; here
  // we just refuse the collapse).
  {
    check::UnionFind uf(table.ids.size() + 1);
    for (const timing::NetElement& e : net.parasitics) {
      if (e.kind != timing::NetElement::Kind::Resistor) continue;
      uf.unite(table.intern(e.node_a), table.intern(e.node_b));
    }
    std::set<int> anchored;
    anchored.insert(uf.find(0));
    for (std::size_t b = 1; b <= m; ++b) {
      anchored.insert(uf.find(static_cast<int>(b)));
    }
    for (std::size_t i = m + 1; i <= m + ni; ++i) {
      if (anchored.count(uf.find(static_cast<int>(i))) == 0) return out;
    }
  }

  // --- Split the element list: S (>= one interior endpoint) collapses
  // into the macro; boundary/ground-only elements stay flat, so the
  // stitched net is exact superposition with no double counting.
  std::vector<timing::NetElement> kept;
  la::Matrix<double> gbb(m, m), cbb(m, m);
  std::vector<la::Triplet> gib, cib, gii, cii;
  double sum_r = 0.0, sum_c = 0.0;
  const auto add_entry = [&](la::Matrix<double>& bb,
                             std::vector<la::Triplet>& ib,
                             std::vector<la::Triplet>& ii, int x, int y,
                             double v) {
    if (x == 0 || y == 0) return;  // ground row/col is eliminated
    const bool xb = table.is_boundary(x);
    const bool yb = table.is_boundary(y);
    const auto bi = [&](int id) { return static_cast<std::size_t>(id - 1); };
    const auto ii_idx = [&](int id) {
      return static_cast<std::size_t>(id) - m - 1;
    };
    if (xb && yb) {
      bb(bi(x), bi(y)) += v;
    } else if (!xb && !yb) {
      ii.push_back({ii_idx(x), ii_idx(y), v});
    } else if (!xb && yb) {
      ib.push_back({ii_idx(x), bi(y), v});
    }
    // Boundary-row/interior-col entries are dropped: the stamps are
    // symmetric, so G_bi is recovered as G_ib^T where needed.
  };
  for (const timing::NetElement& e : net.parasitics) {
    const int a = table.intern(e.node_a);
    const int b = table.intern(e.node_b);
    const bool touches_interior = (a > static_cast<int>(m) && a != 0) ||
                                  (b > static_cast<int>(m) && b != 0);
    if (!touches_interior) {
      kept.push_back(e);
      continue;
    }
    if (e.kind == timing::NetElement::Kind::Resistor) {
      if (!(e.value > 0.0) || !std::isfinite(e.value)) return out;
      const double g = 1.0 / e.value;
      sum_r += e.value;
      add_entry(gbb, gib, gii, a, a, g);
      add_entry(gbb, gib, gii, b, b, g);
      add_entry(gbb, gib, gii, a, b, -g);
      add_entry(gbb, gib, gii, b, a, -g);
    } else {  // Capacitor (inductors were classified out above)
      if (!(e.value >= 0.0) || !std::isfinite(e.value)) return out;
      sum_c += e.value;
      add_entry(cbb, cib, cii, a, a, e.value);
      add_entry(cbb, cib, cii, b, b, e.value);
      add_entry(cbb, cib, cii, a, b, -e.value);
      add_entry(cbb, cib, cii, b, a, -e.value);
    }
  }

  // --- Factor G_ii and build the block Krylov space.  The starting
  // block is G_ii^-1 [G_ib | C_ib]: the G_ib columns carry the resistive
  // boundary coupling (the classic grounded-cap case), the C_ib columns
  // cover coupling capacitors into the boundary so their moment
  // contributions are in the projection space too (they deflate to
  // nothing when no such caps exist).
  la::SparseLu* lu_ptr = nullptr;
  std::optional<la::SparseLu> lu;
  la::SparseMatrix gii_mat = la::SparseMatrix::from_triplets(ni, ni, gii);
  la::SparseMatrix cii_mat = la::SparseMatrix::from_triplets(ni, ni, cii);
  try {
    lu.emplace(gii_mat);
    lu_ptr = &*lu;
  } catch (const la::SingularMatrixError&) {
    return out;  // backstop behind the structural guard
  }

  std::vector<la::RealVector> w_cols(m, la::RealVector(ni, 0.0));
  for (const la::Triplet& t : gib) w_cols[t.col][t.row] += t.value;
  std::vector<la::RealVector> start = w_cols;
  {
    std::vector<la::RealVector> c_rhs(m, la::RealVector(ni, 0.0));
    for (const la::Triplet& t : cib) c_rhs[t.col][t.row] += t.value;
    for (auto& col : c_rhs) start.push_back(std::move(col));
  }
  const std::vector<la::RealVector> solved0 = lu_ptr->solve_multi(start);
  // W = G_ii^-1 G_ib, kept exact for the verification invariants.
  const std::vector<la::RealVector> w(solved0.begin(), solved0.begin() + m);

  const int depth = std::max(1, (options.moments + 1) / 2);
  std::vector<la::RealVector> basis;
  std::vector<la::RealVector> block = solved0;
  for (int d = 0; d < depth; ++d) {
    if (d > 0) {
      std::vector<la::RealVector> rhs;
      rhs.reserve(block.size());
      for (const la::RealVector& v : block) rhs.push_back(cii_mat.apply(v));
      block = lu_ptr->solve_multi(rhs);
    }
    std::vector<la::RealVector> accepted;
    for (la::RealVector v : block) {
      const double before = norm2(v);
      if (!(before > 0.0)) continue;
      // Modified Gram-Schmidt, twice (the classic re-orthogonalization
      // for numerical orthogonality), with relative deflation.
      for (int pass = 0; pass < 2; ++pass) {
        for (const la::RealVector& q : basis) axpy(v, q, -dot(q, v));
      }
      const double after = norm2(v);
      if (!(after > 1e-10 * before)) continue;  // deflated
      for (double& x : v) x /= after;
      basis.push_back(v);
      accepted.push_back(basis.back());
    }
    if (accepted.empty()) break;  // subspace exhausted: projection exact
    block = std::move(accepted);
  }
  const std::size_t k = basis.size();
  // A collapse must actually shrink the net; a full-rank basis means
  // the interior had no redundancy to exploit.
  if (k >= ni) return out;

  // --- Congruence projection into the dense (m+k)^2 macro block.
  const std::size_t dim = m + k;
  la::Matrix<double> ghat(dim, dim), chat(dim, dim);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      ghat(r, c) = gbb(r, c);
      chat(r, c) = cbb(r, c);
    }
  }
  for (std::size_t s = 0; s < k; ++s) {
    for (const la::Triplet& t : gib) {
      ghat(t.col, m + s) += t.value * basis[s][t.row];
    }
    for (const la::Triplet& t : cib) {
      chat(t.col, m + s) += t.value * basis[s][t.row];
    }
    for (std::size_t r = 0; r < m; ++r) {
      ghat(m + s, r) = ghat(r, m + s);
      chat(m + s, r) = chat(r, m + s);
    }
  }
  for (std::size_t s = 0; s < k; ++s) {
    const la::RealVector gu = gii_mat.apply(basis[s]);
    const la::RealVector cu = cii_mat.apply(basis[s]);
    for (std::size_t t = 0; t <= s; ++t) {
      const double gv = dot(basis[t], gu);
      const double cv = dot(basis[t], cu);
      ghat(m + t, m + s) = gv;
      ghat(m + s, m + t) = gv;
      chat(m + t, m + s) = cv;
      chat(m + s, m + t) = cv;
    }
  }

  // --- Verification gate: the reduced block must reproduce the exact
  // zeroth and first boundary admittance moments within tolerance.
  if (options.verify) {
    la::Matrix<double> y0(m, m), y1(m, m), cw(m, m);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < m; ++c) {
        y0(r, c) = gbb(r, c);
        y1(r, c) = cbb(r, c);
      }
    for (std::size_t b = 0; b < m; ++b) {
      for (const la::Triplet& t : gib) y0(t.col, b) -= t.value * w[b][t.row];
      for (const la::Triplet& t : cib) cw(t.col, b) += t.value * w[b][t.row];
    }
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) y1(r, c) -= cw(r, c) + cw(c, r);
    }
    for (std::size_t b = 0; b < m; ++b) {
      const la::RealVector cu = cii_mat.apply(w[b]);
      for (std::size_t a = 0; a < m; ++a) y1(a, b) += dot(w[a], cu);
    }

    la::Matrix<double> y0r(m, m), y1r(m, m);
    std::vector<la::RealVector> what(m, la::RealVector(k, 0.0));
    if (k > 0) {
      la::Matrix<double> gss(k, k);
      for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < k; ++c) gss(r, c) = ghat(m + r, m + c);
      std::vector<la::RealVector> gsb(m, la::RealVector(k, 0.0));
      for (std::size_t b = 0; b < m; ++b)
        for (std::size_t s = 0; s < k; ++s) gsb[b][s] = ghat(m + s, b);
      try {
        what = la::Lu<double>(std::move(gss)).solve_multi(gsb);
      } catch (const la::SingularMatrixError&) {
        out.diagnostics.push_back(make_diag(
            core::DiagCode::ReductionToleranceExceeded, net,
            "reduced conductance block is singular; net analyzed flat"));
        return out;
      }
    }
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) {
        double g0 = ghat(a, b), c1 = chat(a, b);
        for (std::size_t s = 0; s < k; ++s) {
          g0 -= ghat(a, m + s) * what[b][s];
          c1 -= chat(a, m + s) * what[b][s] + what[a][s] * chat(m + s, b);
          for (std::size_t t = 0; t < k; ++t) {
            c1 += what[a][s] * chat(m + s, m + t) * what[b][t];
          }
        }
        y0r(a, b) = g0;
        y1r(a, b) = c1;
      }
    }
    la::Matrix<double> d0(m, m), d1(m, m);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < m; ++c) {
        d0(r, c) = y0(r, c) - y0r(r, c);
        d1(r, c) = y1(r, c) - y1r(r, c);
      }
    const double tiny = 1e-30;
    const double rel0 = max_abs(d0) / std::max(max_abs(y0), tiny);
    const double rel1 = max_abs(d1) / std::max(max_abs(y1), tiny);
    const double rel = std::max(rel0, rel1);
    if (!(rel <= options.tolerance)) {
      out.diagnostics.push_back(make_diag(
          core::DiagCode::ReductionToleranceExceeded, net,
          "boundary moment mismatch " + std::to_string(rel) +
              " exceeds tolerance " + std::to_string(options.tolerance) +
              "; net analyzed flat"));
      return out;
    }
  }

  // --- Stitch: kept elements plus the macro replace the parasitics.
  timing::NetMacro macro;
  macro.ports.assign(boundary.begin(), boundary.end());
  macro.states = k;
  macro.g.resize(dim * dim);
  macro.c.resize(dim * dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      macro.g[r * dim + c] = ghat(r, c);
      macro.c[r * dim + c] = chat(r, c);
    }
  }
  macro.sum_resistance = sum_r;
  macro.sum_capacitance = sum_c;

  out.net.parasitics = std::move(kept);
  out.net.macros.push_back(std::move(macro));
  out.reduced = true;
  out.interior_eliminated = ni;
  out.states = k;
  return out;
}

namespace {

timing::detail::CachedReduction to_cached(const NetReduction& r) {
  timing::detail::CachedReduction cached;
  cached.reduced = r.reduced;
  cached.interior_eliminated = r.interior_eliminated;
  cached.diagnostics = r.diagnostics;
  if (r.reduced) {
    cached.parasitics = r.net.parasitics;
    cached.macros = r.net.macros;
  }
  return cached;
}

}  // namespace

DesignReduction reduce_design(const timing::Design& design,
                              const ReduceOptions& options,
                              timing::detail::StageCache* cache) {
  DesignReduction out;
  out.nets_total = design.net_count();
  for (const auto& [name, gate] : design.gates()) out.design.add_gate(gate);

  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const timing::Net& net = design.net_at(i);
    std::shared_ptr<const timing::detail::CachedReduction> cached;
    std::string key;
    if (cache != nullptr) {
      key = timing::detail::reduction_key(
          reduction_content_key(net, options));
      cached = cache->lookup_reduction(key, net.name, &out.diagnostics);
      if (cached != nullptr) ++out.cache_hits;
    }
    if (cached == nullptr) {
      const NetReduction r = reduce_net(net, options);
      auto fresh =
          std::make_shared<timing::detail::CachedReduction>(to_cached(r));
      if (cache != nullptr) cache->insert_reduction(key, *fresh);
      cached = std::move(fresh);
    }

    timing::Net stitched = net;
    if (cached->reduced) {
      stitched.parasitics = cached->parasitics;
      stitched.macros = cached->macros;
      ++out.nets_reduced;
      out.interior_eliminated += cached->interior_eliminated;
      for (const timing::NetMacro& mm : cached->macros) out.states += mm.states;
    }
    // Cached refusal records are name-agnostic; re-stamp them with the
    // instance actually being analyzed.
    for (core::Diagnostic d : cached->diagnostics) {
      d.element = net.name;
      out.diagnostics.push_back(std::move(d));
    }
    out.design.add_net(design.net_driver(i), std::move(stitched));
  }
  for (const std::string& pi : design.primary_inputs()) {
    out.design.set_primary_input(pi);
  }
  return out;
}

}  // namespace awesim::reduce
