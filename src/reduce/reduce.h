// Hierarchical net reduction: partition -- collapse -- stitch.
//
// The paper's pitch is that a q-pole AWE approximation makes one stage
// cheap; this subsystem makes a *million-node design* cheap by shrinking
// every stage before the engine ever sees it.  A net's interconnect is
// partitioned into boundary nodes (the driver hookup "DRV" plus every
// sink hookup) and interior nodes (everything else); the interior is
// collapsed into a moment-matched boundary macromodel (timing::NetMacro)
// by PRIMA-style congruence projection, and the reduced net -- kept
// boundary elements plus the macro block -- stitches back into an
// ordinary timing::Design that the engine, analyzer, graph, and serve
// layers analyze completely unmodified.
//
// The macromodel math: order the collapsed subnetwork's MNA blocks
// boundary-first,
//
//     G = [ G_bb  G_bi ]     C = [ C_bb  C_bi ]
//         [ G_ib  G_ii ]         [ C_ib  C_ii ]
//
// factor G_ii once, and build the block Krylov space
//
//     X = orth{ W, (G_ii^-1 C_ii) W, (G_ii^-1 C_ii)^2 W, ... },
//     W = G_ii^-1 G_ib,
//
// to depth ceil(moments/2).  The congruence projection
//
//     G^ = [ G_bb      G_bi X ]     C^ = [ C_bb      C_bi X ]
//          [ X^T G_ib  X^T G_ii X ]      [ X^T C_ib  X^T C_ii X ]
//
// preserves the first 2*depth boundary moments of the symmetric RC
// network (PRIMA's moment-matching theorem), so with the default
// moments = 12 every AWE order the engine can request (max order 6 needs
// 2q = 12 moments) sees boundary moments unchanged up to roundoff: the
// reduced stage's poles and residues match the flat stage within
// tolerance, never by construction bit-for-bit ("tolerance-equal, not
// bit-equal" -- the same contract as the low-rank warm path).
//
// Every reduction is *verified before it is trusted*: the exact
// first-order boundary admittances
//
//     Y0 = G_bb - G_bi G_ii^-1 G_ib          (DC / zeroth moment)
//     Y1 = C_bb - C_bi W - W^T C_ib + W^T C_ii W   (first moment)
//
// are recomputed from the reduced block and compared entrywise; relative
// mismatch beyond ReduceOptions::tolerance refuses the collapse with a
// ReductionToleranceExceeded diagnostic and the net analyzes flat.  A
// refusal is never an error -- flat analysis is always available and
// always correct; reduction is purely an accelerator.
//
// Refusal gates, in order: a net already carrying macros; interior
// smaller than min_interior (collapse would not pay); more boundary
// ports than max_ports (the dense macro block is (ports+states)^2);
// non-RC content (inductors, or anything classify_edges calls General);
// an armed "reduce.collapse" fault probe (the injection drill -- typed
// ReductionFallback diagnostic, flat fallback); an interior node with no
// resistive path to ground or a boundary node (G_ii structurally
// singular); a singular G_ii factorization; the verification gate above.
#pragma once

#include <cstddef>
#include <string>

#include "core/diagnostic.h"
#include "timing/analyzer.h"

namespace awesim::timing::detail {
class StageCache;
}

namespace awesim::reduce {

struct ReduceOptions {
  /// Nets with fewer interior nodes than this analyze flat -- below it
  /// the dense macro block costs as much as the nodes it replaces.
  std::size_t min_interior = 16;
  /// Refuse nets whose boundary (driver + sinks) exceeds this; the
  /// projected block is dense (ports+states)^2.
  std::size_t max_ports = 16;
  /// Boundary moments to preserve (Krylov depth = ceil(moments/2)).
  /// The default 12 covers 2q for the engine's maximum AWE order 6.
  int moments = 12;
  /// Relative mismatch allowed between the exact and reduced boundary
  /// admittance invariants (Y0, Y1) before the collapse is refused.
  /// Negative forces refusal deterministically (the test drill for the
  /// tolerance-exceeded path).
  double tolerance = 1e-6;
  /// Run the Y0/Y1 verification gate.  Off skips the exact Schur
  /// complements (cheaper, trusts the projection) -- benches only.
  bool verify = true;
};

/// Outcome of reducing one net.  `net` is the reduced net when
/// `reduced`, otherwise a verbatim copy of the input; diagnostics carry
/// the typed refusal records (ReductionFallback,
/// ReductionToleranceExceeded), empty for silent refusals (too small,
/// non-RC) where flat analysis is simply the right answer.
struct NetReduction {
  timing::Net net;
  bool reduced = false;
  /// Interior nodes eliminated (0 when refused).
  std::size_t interior_eliminated = 0;
  /// Reduced internal states retained in the macro (0 when refused).
  std::size_t states = 0;
  core::Diagnostics diagnostics;
};

/// Why a net will (or will not) reduce, decided from structure alone --
/// no factorization, no Krylov space.  Exactly the "cheap structural
/// gates" at the top of reduce_net, exposed so reduce::HierSession can
/// skip hopeless collapse attempts and the design audit can report
/// per-net reduction eligibility without doing the work.
enum class Eligibility {
  Eligible,          // passes every structural gate; collapse will be tried
  HasMacros,         // already carries a macromodel: reduced once already
  TooManyPorts,      // boundary (driver + sinks) exceeds max_ports
  SinkAtGround,      // a sink hookup names the ground node (lint's problem)
  InteriorTooSmall,  // fewer interior nodes than min_interior: no payoff
  NonRc,             // inductors or General topology: the moment theorem
                     // behind the congruence projection does not apply
};

const char* to_string(Eligibility eligibility);

/// Evaluate only the structural gates, in reduce_net's gate order.
/// Eligible means the collapse will be *attempted* -- the numeric gates
/// (interior solvability, singular G_ii, verification tolerance) can
/// still refuse it.
Eligibility net_eligibility(const timing::Net& net,
                            const ReduceOptions& options = {});

/// The exact bytes a net's reduction depends on: parasitics (kind,
/// nodes, value), the sorted boundary node-name set, and every
/// ReduceOptions field.  Deliberately name-agnostic (net name, sink
/// *gate* names, and gate parameters are absent), so two instances of
/// the same cell under different names share one reduction -- wrap with
/// timing::detail::reduction_key() to address a StageCache entry.
std::string reduction_content_key(const timing::Net& net,
                                  const ReduceOptions& options);

/// Reduce one net.  Never throws on circuit content: every failure mode
/// refuses into the flat fallback (see the gate list above).
NetReduction reduce_net(const timing::Net& net,
                        const ReduceOptions& options = {});

/// A whole-design reduction: every net reduced (or refused) into a new
/// Design with identical gates, drivers, sinks, and primary inputs.
struct DesignReduction {
  timing::Design design;
  std::size_t nets_total = 0;
  std::size_t nets_reduced = 0;
  /// Sum of interior nodes eliminated across all reduced nets.
  std::size_t interior_eliminated = 0;
  /// Sum of macro states retained across all reduced nets.
  std::size_t states = 0;
  /// Reductions served from the cache instead of recomputed.
  std::size_t cache_hits = 0;
  /// Refusal and cache-corruption diagnostics, element-stamped with the
  /// owning net's name, in net order.
  core::Diagnostics diagnostics;
};

/// Reduce every net of `design`.  With a cache, reductions are stored
/// content-addressed (timing::detail::reduction_key key space) so
/// repeated subcircuits -- buses, clock-tree cells, tiled meshes --
/// reduce once and every further instance rehydrates; refusals are
/// cached too (negative entries) so hopeless nets are not re-examined.
DesignReduction reduce_design(const timing::Design& design,
                              const ReduceOptions& options = {},
                              timing::detail::StageCache* cache = nullptr);

}  // namespace awesim::reduce
