#include "reduce/hier.h"

#include <stdexcept>
#include <utility>

#include "timing/stage_cache.h"

namespace awesim::reduce {

namespace {

timing::detail::CachedReduction to_cached(const NetReduction& r) {
  timing::detail::CachedReduction cached;
  cached.reduced = r.reduced;
  cached.interior_eliminated = r.interior_eliminated;
  cached.diagnostics = r.diagnostics;
  if (r.reduced) {
    cached.parasitics = r.net.parasitics;
    cached.macros = r.net.macros;
  }
  return cached;
}

}  // namespace

HierSession::HierSession(timing::Design design, timing::AnalysisOptions options,
                         ReduceOptions reduce_options,
                         std::shared_ptr<timing::detail::StageCache> cache)
    : cache_(cache != nullptr
                 ? std::move(cache)
                 : std::make_shared<timing::detail::StageCache>()),
      flat_(std::move(design), options, cache_),
      options_(options),
      reduce_options_(reduce_options),
      hints_(flat_.design().net_count()) {}

std::size_t HierSession::net_index(const std::string& net) const {
  const timing::Design& d = flat_.design();
  std::size_t found = d.net_count();
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    if (d.net_at(i).name == net) {
      if (found != d.net_count()) {
        throw std::invalid_argument("HierSession: net name '" + net +
                                    "' is ambiguous");
      }
      found = i;
    }
  }
  if (found == d.net_count()) {
    throw std::invalid_argument("HierSession: unknown net '" + net + "'");
  }
  return found;
}

bool HierSession::refresh_hints() {
  const timing::Design& d = flat_.design();
  if (hints_.size() < d.net_count()) hints_.resize(d.net_count());
  bool changed = false;
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    NetHint& hint = hints_[i];
    if (hint.valid) continue;
    const timing::Net& net = d.net_at(i);
    // Structural precheck: a net the gates refuse can never produce a
    // macromodel, so skip the store round-trip and the collapse attempt
    // entirely.  The hint pins to "flat" (nullptr artifact).
    if (net_eligibility(net, reduce_options_) != Eligibility::Eligible) {
      ++stats_.eligibility_skips;
      if (hint.cached != nullptr) changed = true;
      hint.cached.reset();
      hint.valid = true;
      continue;
    }
    const std::string key =
        timing::detail::reduction_key(reduction_content_key(net,
                                                            reduce_options_));
    std::shared_ptr<const timing::detail::CachedReduction> cached =
        cache_->lookup_reduction(key, net.name, &pending_diags_);
    if (cached != nullptr) {
      ++stats_.reduction_cache_hits;
    } else {
      const NetReduction r = reduce_net(net, reduce_options_);
      ++stats_.reductions_performed;
      auto fresh =
          std::make_shared<timing::detail::CachedReduction>(to_cached(r));
      cache_->insert_reduction(key, *fresh);
      cached = std::move(fresh);
    }
    // Same artifact pointer => same stitched net; a hint invalidated by
    // a mutation that left the content bytes identical re-hits the same
    // store entry and triggers no rebuild.
    if (hint.cached.get() != cached.get()) changed = true;
    hint.cached = std::move(cached);
    hint.valid = true;
  }
  return changed;
}

void HierSession::rebuild_inner() {
  const timing::Design& d = flat_.design();
  timing::Design reduced;
  for (const auto& [name, gate] : d.gates()) reduced.add_gate(gate);
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    timing::Net stitched = d.net_at(i);
    const NetHint& hint = hints_[i];
    if (hint.cached != nullptr && hint.cached->reduced) {
      stitched.parasitics = hint.cached->parasitics;
      stitched.macros = hint.cached->macros;
    }
    reduced.add_net(d.net_driver(i), std::move(stitched));
  }
  for (const std::string& pi : d.primary_inputs()) {
    reduced.set_primary_input(pi);
  }
  // The inner session shares the cache, so stage results and LU factors
  // of nets whose reduced content did not change keep hitting across
  // rebuilds.
  inner_.emplace(std::move(reduced), options_, timing::SessionOptions{},
                 cache_);
  ++stats_.rebuilds;
}

timing::TimingReport HierSession::analyze() {
  const bool changed = refresh_hints();
  if (!inner_.has_value() || changed) rebuild_inner();
  timing::TimingReport report = inner_->analyze();
  // Reduction-layer records ride at the end of the report's diagnostics:
  // cache-corruption recoveries first (recorded in refresh order), then
  // the per-net refusal records, in net order -- deterministic at every
  // thread count, like everything else in the report.
  for (core::Diagnostic& diag : pending_diags_) {
    report.diagnostics.push_back(std::move(diag));
  }
  pending_diags_.clear();
  const timing::Design& d = flat_.design();
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    const NetHint& hint = hints_[i];
    if (hint.cached == nullptr) continue;
    for (core::Diagnostic diag : hint.cached->diagnostics) {
      diag.element = d.net_at(i).name;
      report.diagnostics.push_back(std::move(diag));
    }
  }
  return report;
}

void HierSession::set_value(const std::string& net, std::size_t element_index,
                            double value) {
  const std::size_t idx = net_index(net);
  flat_.set_value(net, element_index, value);
  hints_[idx].valid = false;
}

void HierSession::add_element(const std::string& net,
                              timing::NetElement element) {
  const std::size_t idx = net_index(net);
  flat_.add_element(net, std::move(element));
  hints_[idx].valid = false;
}

void HierSession::remove_element(const std::string& net,
                                 std::size_t element_index) {
  const std::size_t idx = net_index(net);
  flat_.remove_element(net, element_index);
  hints_[idx].valid = false;
}

void HierSession::set_drive_resistance(const std::string& gate, double value) {
  // Gate parameters never enter a reduction key: forward to both views,
  // invalidate nothing, rebuild nothing.
  flat_.set_drive_resistance(gate, value);
  if (inner_.has_value()) inner_->set_drive_resistance(gate, value);
}

void HierSession::set_input_capacitance(const std::string& gate,
                                        double value) {
  flat_.set_input_capacitance(gate, value);
  if (inner_.has_value()) inner_->set_input_capacitance(gate, value);
}

void HierSession::set_intrinsic_delay(const std::string& gate, double value) {
  flat_.set_intrinsic_delay(gate, value);
  if (inner_.has_value()) inner_->set_intrinsic_delay(gate, value);
}

HierSession::Stats HierSession::stats() const {
  Stats s = stats_;
  s.nets_total = flat_.design().net_count();
  s.nets_reduced = 0;
  s.interior_eliminated = 0;
  s.macro_states = 0;
  for (const NetHint& hint : hints_) {
    if (!hint.valid || hint.cached == nullptr || !hint.cached->reduced) {
      continue;
    }
    ++s.nets_reduced;
    s.interior_eliminated += hint.cached->interior_eliminated;
    for (const timing::NetMacro& macro : hint.cached->macros) {
      s.macro_states += macro.states;
    }
  }
  return s;
}

timing::Session::CacheStats HierSession::cache_stats() const {
  return flat_.cache_stats();
}

void HierSession::clear_cache() {
  cache_->clear();
  for (NetHint& hint : hints_) {
    hint.valid = false;
    hint.cached.reset();
  }
  inner_.reset();
}

}  // namespace awesim::reduce
