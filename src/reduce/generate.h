// Deterministic mega-design generation for the hierarchical-reduction
// benches and tests: gate chains/trees whose nets are kilo-node RC cells
// drawn from a small pool of repeated variants.
//
// Two properties matter and both are guaranteed:
//   * determinism -- the same MegaSpec produces the bitwise-identical
//     Design on every platform (no std::uniform_* distributions, whose
//     output is implementation-defined; values come straight from
//     mt19937 words);
//   * repetition -- every net is one of `variants` cell contents with
//     identical net-local node names and element values, so the
//     content-addressed reduction store collapses each variant once and
//     the other (stages - variants) instances rehydrate from cache.
//     That is the real-design shape (buses, clock trees, tiled fabrics)
//     the 1M-node bench row measures.
#pragma once

#include <cstddef>
#include <cstdint>

#include "timing/analyzer.h"

namespace awesim::reduce {

struct MegaSpec {
  /// Interconnect shape of each cell (and of the gate graph: Tree uses
  /// two-sink cells driving a binary gate tree; Chain and Mesh drive a
  /// linear gate chain).
  enum class Style {
    Chain,  // RC line cells: the RcTree class, reduction's best case
    Tree,   // branching two-sink cells on a binary gate tree
    Mesh,   // RC line plus cross-link resistors and coupling caps
            // (resistive loops: the RcMesh class)
  };
  Style style = Style::Mesh;

  /// Total interior interconnect nodes to generate, split into
  /// ceil(target_nodes / cell_nodes) stages.
  std::size_t target_nodes = 1'000'000;
  /// Interior nodes per net.
  std::size_t cell_nodes = 1000;
  /// Distinct cell contents; instance i uses variant i % variants.
  std::size_t variants = 8;
  std::uint32_t seed = 1;
};

/// Number of stages (nets, and gates) the spec expands to.
std::size_t mega_stages(const MegaSpec& spec);

/// Build the design: uniform gates g000000.., nets n0.. of repeated
/// cells, one primary input, the last stage(s) ending at design outputs.
timing::Design mega_design(const MegaSpec& spec);

}  // namespace awesim::reduce
