#include "reduce/generate.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace awesim::reduce {

namespace {

using timing::NetElement;

std::string gate_name(std::size_t i) {
  std::string digits = std::to_string(i);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "g" + digits;
}

/// One cell's parasitics: `interior` net-local nodes m0..m(interior-1)
/// between the driver hookup "DRV" and the sink hookups "S0"/"S1".
/// Values come from raw mt19937 words (scaled, never through a
/// std::*_distribution) so the bytes are identical on every platform.
std::vector<NetElement> cell_elements(MegaSpec::Style style,
                                      std::size_t interior,
                                      std::uint32_t seed) {
  std::mt19937 rng(seed);
  const auto unit = [&rng] {
    return static_cast<double>(rng() >> 8) * (1.0 / 16777216.0);
  };
  std::vector<NetElement> out;
  out.reserve(2 * interior + interior / 16 + 4);
  const auto node = [](std::size_t j) { return "m" + std::to_string(j); };
  const auto add_r = [&](std::string a, std::string b) {
    out.push_back({NetElement::Kind::Resistor, std::move(a), std::move(b),
                   2.0 + 8.0 * unit()});
  };
  const auto add_c = [&](std::string a, std::string b) {
    out.push_back({NetElement::Kind::Capacitor, std::move(a), std::move(b),
                   (1.0 + 2.0 * unit()) * 1e-15});
  };

  interior = std::max<std::size_t>(interior, 4);
  if (style == MegaSpec::Style::Tree) {
    // Trunk from the driver, then two equal branches to the two sinks.
    const std::size_t trunk = interior / 2;
    const std::size_t branch = (interior - trunk) / 2;
    add_r("DRV", node(0));
    for (std::size_t j = 1; j < trunk; ++j) add_r(node(j - 1), node(j));
    std::size_t next = trunk;
    for (int b = 0; b < 2; ++b) {
      std::size_t prev = trunk - 1;
      const std::size_t len = (b == 0) ? branch : interior - trunk - branch;
      for (std::size_t j = 0; j < len; ++j, ++next) {
        add_r(node(prev), node(next));
        prev = next;
      }
      add_r(node(prev), b == 0 ? "S0" : "S1");
    }
  } else {
    add_r("DRV", node(0));
    for (std::size_t j = 1; j < interior; ++j) add_r(node(j - 1), node(j));
    add_r(node(interior - 1), "S0");
  }
  for (std::size_t j = 0; j < interior; ++j) add_c(node(j), "0");

  if (style == MegaSpec::Style::Mesh) {
    // Cross-link resistors close loops (the RcMesh class) and a sparse
    // sprinkling of node-to-node coupling caps keeps C_ii non-diagonal.
    for (std::size_t j = 29; j + 13 < interior; j += 29) {
      add_r(node(j), node(j + 13));
    }
    for (std::size_t j = 53; j + 7 < interior; j += 53) {
      add_c(node(j), node(j + 7));
    }
  }
  return out;
}

}  // namespace

std::size_t mega_stages(const MegaSpec& spec) {
  const std::size_t cell = std::max<std::size_t>(spec.cell_nodes, 4);
  return std::max<std::size_t>(1, (spec.target_nodes + cell - 1) / cell);
}

timing::Design mega_design(const MegaSpec& spec) {
  const std::size_t stages = mega_stages(spec);
  const std::size_t variants = std::max<std::size_t>(spec.variants, 1);
  timing::Design design;
  for (std::size_t i = 0; i < stages; ++i) {
    timing::Gate gate;
    gate.name = gate_name(i);
    gate.drive_resistance = 150.0;
    gate.input_capacitance = 4e-15;
    gate.intrinsic_delay = 5e-12;
    design.add_gate(gate);
  }
  for (std::size_t i = 0; i < stages; ++i) {
    timing::Net net;
    net.name = "n" + std::to_string(i);
    const std::uint32_t variant_seed =
        spec.seed + static_cast<std::uint32_t>(i % variants) * 1013904223u;
    net.parasitics = cell_elements(spec.style, spec.cell_nodes, variant_seed);
    if (spec.style == MegaSpec::Style::Tree) {
      const std::size_t c0 = 2 * i + 1;
      const std::size_t c1 = 2 * i + 2;
      net.sink_node[c0 < stages ? gate_name(c0)
                                : "out" + std::to_string(i) + "a"] = "S0";
      net.sink_node[c1 < stages ? gate_name(c1)
                                : "out" + std::to_string(i) + "b"] = "S1";
    } else {
      net.sink_node[i + 1 < stages ? gate_name(i + 1) : "out"] = "S0";
    }
    design.add_net(gate_name(i), std::move(net));
  }
  design.set_primary_input(gate_name(0));
  return design;
}

}  // namespace awesim::reduce
