// Hierarchical timing session: a timing::Session that analyzes the
// *reduced* view of a design while presenting the flat design's mutation
// surface.
//
// The stitch: HierSession keeps the flat design (the source of truth
// every mutator edits), a per-net reduction hint, and an inner
// timing::Session over the reduced design.  analyze() first refreshes
// any invalidated hints -- consulting the shared StageCache's
// content-addressed reduction store, so repeated cells reduce once
// process-wide and a re-reduction of unchanged content is a pointer
// lookup -- and rebuilds the inner session only when some net's
// reduction artifact actually changed.  The inner session shares the
// same StageCache, so stage results, LU factorizations, and lint
// reports survive a rebuild; only stages whose reduced content changed
// re-evaluate.
//
// Invalidation-on-mutation: editing a parasitic inside a collapsed
// region invalidates exactly that net's hint (content addressing does
// the rest -- the changed bytes miss, every other net's reduction
// pointer is untouched and the rebuild skips them).  Gate parameter
// edits (drive resistance, input cap, intrinsic delay) never enter the
// reduction key, so they forward straight to the inner session with no
// hint invalidated and no rebuild.
//
// Accuracy contract: tolerance-equal, not bit-equal.  A reduced
// analysis reproduces flat stage delays/slews within the macromodel's
// verified moment tolerance (<= ~1e-9 s absolute delay error on the
// bench RC fabrics); when every net refuses reduction the reduced
// design IS the flat design and reports are bit-identical.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reduce/reduce.h"
#include "timing/session.h"

namespace awesim::timing::detail {
struct CachedReduction;
}

namespace awesim::reduce {

class HierSession {
 public:
  explicit HierSession(timing::Design design,
                       timing::AnalysisOptions options = {},
                       ReduceOptions reduce_options = {},
                       std::shared_ptr<timing::detail::StageCache> cache =
                           nullptr);

  /// Refresh stale reductions, rebuild the inner session if any changed,
  /// analyze.  Reduction refusal/corruption diagnostics are appended to
  /// the report's diagnostics (element-stamped with the net name).
  timing::TimingReport analyze();

  /// Mutators, mirroring timing::Session (same validation, same
  /// exceptions).  Net edits invalidate exactly that net's reduction
  /// hint; gate edits touch no reduction at all.
  void set_value(const std::string& net, std::size_t element_index,
                 double value);
  void add_element(const std::string& net, timing::NetElement element);
  void remove_element(const std::string& net, std::size_t element_index);
  void set_drive_resistance(const std::string& gate, double value);
  void set_input_capacitance(const std::string& gate, double value);
  void set_intrinsic_delay(const std::string& gate, double value);

  /// The flat design (the mutation surface), not the reduced view.
  const timing::Design& design() const { return flat_.design(); }
  const ReduceOptions& reduce_options() const { return reduce_options_; }

  /// Cumulative reduction observability.
  struct Stats {
    std::size_t nets_total = 0;
    /// Nets currently analyzed through a macromodel.
    std::size_t nets_reduced = 0;
    /// Interior nodes eliminated across all currently reduced nets.
    std::size_t interior_eliminated = 0;
    /// Macro states retained across all currently reduced nets.
    std::size_t macro_states = 0;
    /// reduce_net executions performed by this session (lifetime).
    std::uint64_t reductions_performed = 0;
    /// Hint refreshes short-circuited by the structural eligibility
    /// precheck (net_eligibility != Eligible): no store lookup, no
    /// collapse attempt, no negative entry polluting the shared cache
    /// (lifetime).
    std::uint64_t eligibility_skips = 0;
    /// Hint refreshes served from the shared reduction store (lifetime).
    std::uint64_t reduction_cache_hits = 0;
    /// Inner-session rebuilds (lifetime; 1 after the first analyze).
    std::uint64_t rebuilds = 0;
  };
  Stats stats() const;

  timing::Session::CacheStats cache_stats() const;

  /// Drop every cached artifact and every reduction hint; the next
  /// analyze() runs fully cold (the bench's cold-rep reset).
  void clear_cache();

 private:
  struct NetHint {
    bool valid = false;
    std::shared_ptr<const timing::detail::CachedReduction> cached;
  };

  std::size_t net_index(const std::string& net) const;
  /// Refresh invalid hints; true when any net's reduction artifact
  /// changed (rebuild required).
  bool refresh_hints();
  void rebuild_inner();

  // The cache is declared (and so initialized) before the flat session,
  // which shares it.
  std::shared_ptr<timing::detail::StageCache> cache_;
  timing::Session flat_;  // owns the flat design + mutation validation
  timing::AnalysisOptions options_;
  ReduceOptions reduce_options_;
  std::vector<NetHint> hints_;
  std::optional<timing::Session> inner_;
  core::Diagnostics pending_diags_;
  Stats stats_;
};

}  // namespace awesim::reduce
