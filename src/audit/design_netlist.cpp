#include "audit/design_netlist.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "netlist/parser.h"

namespace awesim::audit {

namespace {

struct Token {
  std::string text;
  std::size_t column = 0;  // 1-based
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Whitespace-split one line; a token starting with '*' begins a
/// comment that eats the rest of the line.
std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '*') break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(
        {std::string(line.substr(start, i - start)), start + 1});
  }
  return tokens;
}

struct Parser {
  std::string filename;
  DesignParse out;

  // Declaration-ordered collections, assembled into a Design at the end.
  std::vector<timing::Gate> gates;
  std::map<std::string, std::size_t> gate_ids;
  struct PendingNet {
    std::string driver;
    timing::Net net;
    circuit::SourceLoc loc;
  };
  std::vector<PendingNet> nets;
  std::map<std::string, std::size_t> net_ids;
  std::vector<std::pair<std::string, circuit::SourceLoc>> primary_inputs;

  std::optional<PendingNet> open;  // the .net currently being filled

  circuit::SourceLoc loc(std::size_t line, std::size_t column) const {
    circuit::SourceLoc l;
    l.file = filename;
    l.line = line;
    l.column = column;
    return l;
  }

  void error(std::size_t line, std::size_t column, std::string message) {
    core::Diagnostic d;
    d.code = core::DiagCode::ParseError;
    d.severity = core::Severity::Error;
    d.message = std::move(message);
    d.file = filename;
    d.line = line;
    d.column = column;
    out.diagnostics.push_back(std::move(d));
  }

  bool parse_double(const Token& t, std::size_t line, double* value) {
    try {
      *value = netlist::parse_value(t.text);
      return true;
    } catch (const std::invalid_argument& e) {
      error(line, t.column, e.what());
      return false;
    }
  }

  void gate_card(const std::vector<Token>& tok, std::size_t line) {
    if (tok.size() < 2) {
      error(line, tok[0].column, ".gate needs a name");
      return;
    }
    timing::Gate gate;
    gate.name = tok[1].text;
    if (gate_ids.count(gate.name) != 0) {
      error(line, tok[1].column, "duplicate gate '" + gate.name + "'");
      return;
    }
    for (std::size_t i = 2; i < tok.size(); ++i) {
      const std::size_t eq = tok[i].text.find('=');
      if (eq == std::string::npos) {
        error(line, tok[i].column,
              ".gate parameter is not key=value: '" + tok[i].text + "'");
        continue;
      }
      const std::string key = lower(tok[i].text.substr(0, eq));
      Token value{tok[i].text.substr(eq + 1), tok[i].column + eq + 1};
      double v = 0.0;
      if (!parse_double(value, line, &v)) continue;
      if (key == "rdrive") {
        gate.drive_resistance = v;
      } else if (key == "cin") {
        gate.input_capacitance = v;
      } else if (key == "delay") {
        gate.intrinsic_delay = v;
      } else {
        error(line, tok[i].column, "unknown .gate parameter '" + key + "'");
      }
    }
    gate_ids.emplace(gate.name, gates.size());
    out.sources.gates.emplace(gate.name, loc(line, tok[1].column));
    gates.push_back(std::move(gate));
  }

  void net_card(const std::vector<Token>& tok, std::size_t line) {
    if (open.has_value()) {
      error(line, tok[0].column,
            ".net before .endnet of '" + open->net.name + "'");
      close_net();
    }
    if (tok.size() < 3) {
      error(line, tok[0].column, ".net needs DRIVER and NETNAME");
      return;
    }
    PendingNet pending;
    pending.driver = tok[1].text;
    pending.net.name = tok[2].text;
    pending.loc = loc(line, tok[2].column);
    if (net_ids.count(pending.net.name) != 0) {
      error(line, tok[2].column,
            "duplicate net '" + pending.net.name + "'");
      return;
    }
    open = std::move(pending);
  }

  void element_card(const std::vector<Token>& tok, std::size_t line) {
    if (!open.has_value()) {
      error(line, tok[0].column,
            "element card outside .net/.endnet: '" + tok[0].text + "'");
      return;
    }
    if (tok.size() != 4) {
      error(line, tok[0].column,
            "element card needs NAME NODE NODE VALUE");
      return;
    }
    timing::NetElement e;
    switch (std::tolower(static_cast<unsigned char>(tok[0].text[0]))) {
      case 'r': e.kind = timing::NetElement::Kind::Resistor; break;
      case 'c': e.kind = timing::NetElement::Kind::Capacitor; break;
      case 'l': e.kind = timing::NetElement::Kind::Inductor; break;
      default:
        error(line, tok[0].column,
              "unknown element card '" + tok[0].text +
                  "' (design nets take R/C/L only)");
        return;
    }
    e.node_a = tok[1].text;
    e.node_b = tok[2].text;
    if (!parse_double(tok[3], line, &e.value)) return;
    out.sources.net_elements.emplace(
        std::make_pair(open->net.name, open->net.parasitics.size()),
        loc(line, tok[0].column));
    open->net.parasitics.push_back(std::move(e));
  }

  void sink_card(const std::vector<Token>& tok, std::size_t line) {
    if (!open.has_value()) {
      error(line, tok[0].column, ".sink outside .net/.endnet");
      return;
    }
    if (tok.size() < 3) {
      error(line, tok[0].column, ".sink needs GATE and NODE");
      return;
    }
    open->net.sink_node[tok[1].text] = tok[2].text;
  }

  void close_net() {
    if (!open.has_value()) return;
    out.sources.nets.emplace(open->net.name, open->loc);
    net_ids.emplace(open->net.name, nets.size());
    nets.push_back(std::move(*open));
    open.reset();
  }

  void finish(std::size_t last_line) {
    if (open.has_value()) {
      error(last_line, 1, "missing .endnet for '" + open->net.name + "'");
      close_net();
    }
    for (const auto& [name, pi_loc] : primary_inputs) {
      if (gate_ids.count(name) == 0) {
        error(pi_loc.line, pi_loc.column,
              ".input names unknown gate '" + name + "'");
      }
    }
    for (const PendingNet& pending : nets) {
      if (gate_ids.count(pending.driver) == 0) {
        error(pending.loc.line, pending.loc.column,
              ".net driver '" + pending.driver + "' is not a gate");
      }
    }
    if (count_at_least(out.diagnostics, core::Severity::Error) > 0) return;
    timing::Design design;
    for (const timing::Gate& gate : gates) design.add_gate(gate);
    for (PendingNet& pending : nets) {
      design.add_net(pending.driver, std::move(pending.net));
    }
    for (const auto& [name, pi_loc] : primary_inputs) {
      (void)pi_loc;
      design.set_primary_input(name);
    }
    out.design = std::move(design);
  }
};

}  // namespace

const circuit::SourceLoc* DesignSourceMap::gate_loc(
    const std::string& gate) const {
  const auto it = gates.find(gate);
  return it == gates.end() ? nullptr : &it->second;
}

const circuit::SourceLoc* DesignSourceMap::net_loc(
    const std::string& net) const {
  const auto it = nets.find(net);
  return it == nets.end() ? nullptr : &it->second;
}

const circuit::SourceLoc* DesignSourceMap::element_loc(
    const std::string& net, std::size_t index) const {
  const auto it = net_elements.find(std::make_pair(net, index));
  return it == net_elements.end() ? nullptr : &it->second;
}

bool looks_like_design(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<Token> tok = tokenize(line);
    if (!tok.empty() && lower(tok[0].text) == ".gate") return true;
  }
  return false;
}

DesignParse parse_design(std::string_view text, std::string filename) {
  Parser p;
  p.filename = std::move(filename);
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<Token> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string head = lower(tok[0].text);
    if (head == ".gate") {
      p.gate_card(tok, line_no);
    } else if (head == ".input") {
      if (tok.size() < 2) {
        p.error(line_no, tok[0].column, ".input needs a gate name");
      } else {
        p.primary_inputs.emplace_back(tok[1].text,
                                      p.loc(line_no, tok[1].column));
      }
    } else if (head == ".net") {
      p.net_card(tok, line_no);
    } else if (head == ".sink") {
      p.sink_card(tok, line_no);
    } else if (head == ".endnet") {
      if (!p.open.has_value()) {
        p.error(line_no, tok[0].column, ".endnet without .net");
      } else {
        p.close_net();
      }
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      p.error(line_no, tok[0].column,
              "unknown directive '" + tok[0].text + "'");
    } else {
      p.element_card(tok, line_no);
    }
  }
  p.finish(line_no == 0 ? 1 : line_no);
  return p.out;
}

DesignParse parse_design_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    DesignParse out;
    core::Diagnostic d;
    d.code = core::DiagCode::ParseError;
    d.severity = core::Severity::Error;
    d.message = "cannot read '" + path + "'";
    d.file = path;
    out.diagnostics.push_back(std::move(d));
    return out;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_design(text.str(), path);
}

}  // namespace awesim::audit
