// Design-scope static audit: the pre-flight pass that runs before any
// matrix is assembled.
//
// Three rule tiers over one design (or one flat circuit):
//
//   1. Graph scope (timing/design_graph.h): combinational cycles with
//      full loop paths, undriven endpoints, dead logic, fanout
//      explosions, reconvergence hot spots -- pure connectivity, no
//      values.
//   2. Numeric conditioning (check/oracle.h): per-net Elmore
//      time-constant spread, moment-growth ratio, and the
//      nonequilibrium-IC rule, predicting AWE instability and
//      recommending a safe order window before the engine wastes a
//      factorization.
//   3. Repetition (the \x01R key discipline from src/reduce):
//      name-agnostic isomorphism hashing over nets reporting which
//      cell variants dedup in the reduction store, plus near-misses --
//      nets identical up to exactly one value -- as missed-sharing
//      opportunities.
//
// Every finding is a typed core::Diagnostic; when a DesignSourceMap is
// supplied (designs parsed from text) findings carry exact
// file:line:column provenance.  Severity contract: combinational
// cycles are Errors (analysis would throw); undriven endpoints, dead
// logic, fanout explosions, conditioning hazards, and near-duplicates
// are Warnings (analysis proceeds, results are suspect or wasteful);
// reconvergence and repetition records are Info.  Shipping designs
// must audit with zero Errors -- the false-positive sweep in
// tests/test_audit.cpp enforces it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "circuit/circuit.h"
#include "core/diagnostic.h"
#include "reduce/reduce.h"
#include "timing/analyzer.h"
#include "timing/design_graph.h"

namespace awesim::audit {

struct DesignSourceMap;

struct AuditOptions {
  timing::DesignGraphOptions graph;
  check::OracleOptions oracle;
  /// Options the eligibility precheck and isomorphism keys are
  /// evaluated under (the same defaults HierSession uses, so "will
  /// dedup" here means "will dedup there").
  reduce::ReduceOptions reduce;
  /// Tier switches, all on by default.
  bool graph_rules = true;
  bool conditioning = true;
  bool repetition = true;
};

/// Tier-2/3 structured results for one net, beyond the diagnostics.
struct NetAssessment {
  std::string net;
  std::string driver;
  reduce::Eligibility eligibility = reduce::Eligibility::Eligible;
  check::ConditioningEstimate estimate;
};

/// Nets whose reduction content keys collide: one reduction, N - 1
/// rehydrations in the store.
struct RepetitionGroup {
  /// First member in net order; the one that pays the collapse.
  std::string representative;
  std::vector<std::string> members;  // includes the representative
};

/// Two nets identical up to exactly one element value.
struct NearMiss {
  std::string net_a;
  std::string net_b;
  /// Index of the differing parasitic (same index in both nets).
  std::size_t element_index = 0;
  double value_a = 0.0;
  double value_b = 0.0;
};

struct AuditReport {
  core::Diagnostics diagnostics;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;

  timing::GraphFindings graph;
  std::vector<NetAssessment> nets;
  std::vector<RepetitionGroup> repeated;
  std::vector<NearMiss> near_misses;

  /// No Error-severity findings (the CI gate for shipping designs).
  bool ok() const { return errors == 0; }
};

/// Audit a gate-level design.  `sources` (may be null) supplies
/// file:line:column provenance for findings on parsed designs.
AuditReport audit_design(const timing::Design& design,
                         const AuditOptions& options = {},
                         const DesignSourceMap* sources = nullptr);

/// Audit a flat circuit: conditioning tier only (a circuit has no gate
/// graph and no net population to dedup).  `filename` stamps the
/// finding provenance when nonempty.
AuditReport audit_circuit(const circuit::Circuit& circuit,
                          const AuditOptions& options = {},
                          const std::string& filename = {});

}  // namespace awesim::audit
