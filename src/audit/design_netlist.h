// Gate-level design netlists for the audit tooling.
//
// The SPICE front end (src/netlist) parses one flat circuit; the audit
// layer reasons about whole *designs* -- gates, nets, primary inputs --
// so it needs a textual form for those too (the corpus under
// netlists/bad/audit/ is the reason this exists: every seeded defect
// asserts an exact file:line:column).  The format is the SPICE card
// discipline plus four directives:
//
//   .gate NAME [rdrive=VAL] [cin=VAL] [delay=VAL]
//   .input NAME                      * declare NAME a primary input
//   .net DRIVER NETNAME              * open a net driven by DRIVER
//   R1 DRV a 1k                      * net-local R/C/L cards ("DRV" is
//   C1 a 0 10f                      *  the driver hookup, "0" ground)
//   .sink GATE NODE                  * attach GATE's input at NODE
//   .endnet                          * close the net
//
// '*' comments and blank lines as in SPICE; values take the usual
// engineering suffixes (netlist::parse_value).  Directives are
// case-insensitive; names are not.  A file with no .gate card is not a
// design netlist -- the audit CLI falls back to the flat-circuit parser
// and runs the conditioning tier only.
//
// Every parsed gate, net, and net element remembers its source card, so
// design-scope diagnostics point at text the same way the lint rules
// point at element cards.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "circuit/circuit.h"
#include "core/diagnostic.h"
#include "timing/analyzer.h"

namespace awesim::audit {

/// Where each design entity was declared (1-based lines; absent entries
/// mean "not netlist-derived").
struct DesignSourceMap {
  std::map<std::string, circuit::SourceLoc> gates;
  std::map<std::string, circuit::SourceLoc> nets;
  /// (net name, parasitic index) -> the element card.
  std::map<std::pair<std::string, std::size_t>, circuit::SourceLoc>
      net_elements;

  const circuit::SourceLoc* gate_loc(const std::string& gate) const;
  const circuit::SourceLoc* net_loc(const std::string& net) const;
  const circuit::SourceLoc* element_loc(const std::string& net,
                                        std::size_t index) const;
};

/// Outcome of parsing one design netlist.  `design` is present iff no
/// Error-severity diagnostic was recorded; the diagnostics list every
/// problem found (all-errors discipline, same as the SPICE parser).
struct DesignParse {
  std::optional<timing::Design> design;
  DesignSourceMap sources;
  core::Diagnostics diagnostics;
};

/// True when the text contains a .gate card (i.e. this is a design
/// netlist, not a flat SPICE circuit).
bool looks_like_design(std::string_view text);

DesignParse parse_design(std::string_view text, std::string filename);

/// File variant; an unreadable file yields one Error diagnostic.
DesignParse parse_design_file(const std::string& path);

}  // namespace awesim::audit
