// awesim_audit: whole-design static analysis before any matrix is
// assembled.  Audits each file on the command line: design netlists
// (files with .gate cards; see design_netlist.h) get all three rule
// tiers -- graph-scope lint, the numeric conditioning oracle, and the
// repetition analysis -- while flat SPICE netlists get the conditioning
// tier over the parsed circuit.
//
//   awesim_audit [--json[=FILE]] [--fanout-limit=N] [--order=Q]
//                [--no-repetition] design.sp [more.sp ...]
//
// Exit status: 0 when every file audited clean (Info findings only),
// 1 when any file had Warning-severity findings, 2 when any file had
// Error-severity findings (or could not be read / parsed) or on usage
// errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/design_netlist.h"
#include "audit/report_json.h"
#include "netlist/parser.h"
#include "obs/json.h"

namespace {

using awesim::audit::AuditOptions;
using awesim::audit::AuditReport;

void print_human(const std::string& path, const AuditReport& report) {
  std::printf("%s: %zu error(s), %zu warning(s), %zu info(s)\n",
              path.c_str(), report.errors, report.warnings, report.infos);
  for (const auto& d : report.diagnostics) {
    std::printf("  %s\n", d.to_string().c_str());
  }
}

/// Parse errors fold into the report shape so JSON and exit-status
/// handling are uniform.  Files with .gate cards take the design
/// parser + full audit; everything else takes the flat SPICE parser +
/// conditioning tier.
AuditReport audit_file(const std::string& path, const AuditOptions& options) {
  AuditReport report;
  std::ifstream in(path);
  if (!in) {
    awesim::core::Diagnostic d;
    d.code = awesim::core::DiagCode::ParseError;
    d.severity = awesim::core::Severity::Error;
    d.message = "cannot read '" + path + "'";
    d.file = path;
    report.diagnostics.push_back(std::move(d));
    report.errors = 1;
    return report;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string content = text.str();
  if (awesim::audit::looks_like_design(content)) {
    const awesim::audit::DesignParse parsed =
        awesim::audit::parse_design(content, path);
    if (parsed.design.has_value()) {
      return awesim::audit::audit_design(*parsed.design, options,
                                         &parsed.sources);
    }
    report.diagnostics = parsed.diagnostics;
  } else {
    const awesim::netlist::ParseResult flat =
        awesim::netlist::parse_collect(content, path);
    if (flat.circuit.has_value()) {
      return awesim::audit::audit_circuit(*flat.circuit, options, path);
    }
    report.diagnostics = flat.diagnostics;
  }
  const std::size_t at_least_warning = awesim::core::count_at_least(
      report.diagnostics, awesim::core::Severity::Warning);
  report.errors = awesim::core::count_at_least(
      report.diagnostics, awesim::core::Severity::Error);
  report.warnings = at_least_warning - report.errors;
  return report;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json[=FILE]] [--fanout-limit=N] [--order=Q] "
               "[--no-repetition] design.sp [more.sp ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  AuditOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--fanout-limit=", 0) == 0) {
      options.graph.fanout_threshold = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + std::strlen("--fanout-limit="),
                       nullptr, 10));
    } else if (arg.rfind("--order=", 0) == 0) {
      options.oracle.target_order = static_cast<int>(
          std::strtol(arg.c_str() + std::strlen("--order="), nullptr, 10));
    } else if (arg == "--no-repetition") {
      options.repetition = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  using awesim::obs::json::Value;
  Value doc = Value::object();
  doc.set("schema_version", awesim::audit::kAuditSchemaVersion);
  doc.set("tool", "awesim_audit");
  Value json_files = Value::array();

  std::size_t total_errors = 0, total_warnings = 0;
  for (const auto& path : files) {
    const AuditReport report = audit_file(path, options);
    total_errors += report.errors;
    total_warnings += report.warnings;
    if (json) {
      json_files.push_back(awesim::audit::report_to_json(path, report));
    } else {
      print_human(path, report);
    }
  }

  if (json) {
    doc.set("files", std::move(json_files));
    const std::string text = doc.dump(2) + "\n";
    if (json_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::FILE* out = std::fopen(json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                     json_path.c_str());
        return 2;
      }
      std::fputs(text.c_str(), out);
      std::fclose(out);
    }
  }

  if (total_errors > 0) return 2;
  return total_warnings > 0 ? 1 : 0;
}
