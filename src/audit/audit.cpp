#include "audit/audit.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/design_netlist.h"
#include "timing/stage_cache.h"

namespace awesim::audit {

namespace {

/// Collects diagnostics with the shared severity tally and optional
/// source provenance.
struct Emitter {
  AuditReport* report;
  const DesignSourceMap* sources;

  void emit(core::DiagCode code, core::Severity severity,
            std::string message, std::string element,
            const circuit::SourceLoc* loc,
            double condition_estimate = -1.0) {
    core::Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.message = std::move(message);
    d.element = std::move(element);
    d.condition_estimate = condition_estimate;
    if (loc != nullptr && loc->known()) {
      d.file = loc->file;
      d.line = loc->line;
      d.column = loc->column;
    }
    switch (severity) {
      case core::Severity::Info: ++report->infos; break;
      case core::Severity::Warning: ++report->warnings; break;
      default: ++report->errors; break;
    }
    report->diagnostics.push_back(std::move(d));
  }

  const circuit::SourceLoc* gate_loc(const std::string& gate) const {
    return sources == nullptr ? nullptr : sources->gate_loc(gate);
  }
  const circuit::SourceLoc* net_loc(const std::string& net) const {
    return sources == nullptr ? nullptr : sources->net_loc(net);
  }
};

std::string join_path(const std::vector<std::string>& gates) {
  std::string path;
  for (const std::string& gate : gates) {
    if (!path.empty()) path += " -> ";
    path += gate;
  }
  if (!gates.empty()) path += " -> " + gates.front();
  return path;
}

void run_graph_tier(const timing::Design& design,
                    const AuditOptions& options, Emitter& em) {
  AuditReport& report = *em.report;
  report.graph = timing::audit_graph(design, options.graph);
  for (const timing::CyclePath& cycle : report.graph.cycles) {
    em.emit(core::DiagCode::CombinationalCycle, core::Severity::Error,
            "combinational cycle: " + join_path(cycle.gates),
            cycle.gates.empty() ? std::string() : cycle.gates.front(),
            cycle.gates.empty() ? nullptr : em.gate_loc(cycle.gates.front()));
  }
  for (const std::string& gate : report.graph.undriven) {
    em.emit(core::DiagCode::UndrivenEndpoint, core::Severity::Warning,
            "gate '" + gate +
                "' has no driving net and no primary-input declaration; "
                "its arrival is silently pinned to t = 0",
            gate, em.gate_loc(gate));
  }
  for (const std::string& gate : report.graph.unreachable) {
    em.emit(core::DiagCode::DeadLogic, core::Severity::Warning,
            "gate '" + gate + "' is unreachable from every source",
            gate, em.gate_loc(gate));
  }
  for (const std::string& net : report.graph.sinkless_nets) {
    em.emit(core::DiagCode::DeadLogic, core::Severity::Warning,
            "net '" + net + "' drives no sink; the driver output is unused",
            net, em.net_loc(net));
  }
  for (const timing::FanoutRecord& f : report.graph.fanout_explosions) {
    std::ostringstream msg;
    msg << "net '" << f.net << "' fans out to " << f.fanout
        << " sinks (threshold " << options.graph.fanout_threshold
        << "); the stage delay model and the physical net are both "
           "suspect";
    em.emit(core::DiagCode::FanoutExplosion, core::Severity::Warning,
            msg.str(), f.net, em.net_loc(f.net));
  }
  for (const timing::ReconvergenceRecord& r : report.graph.reconvergences) {
    std::ostringstream msg;
    msg << "gate '" << r.gate << "' sits behind >= " << r.paths
        << " source-to-pin paths at depth " << r.depth
        << "; path-based queries here are exponential";
    em.emit(core::DiagCode::ReconvergentFanout, core::Severity::Info,
            msg.str(), r.gate, em.gate_loc(r.gate));
  }
}

/// Oracle input for one stage: the driving gate's resistance as a
/// leading element from a virtual ideal-source node, the net's
/// parasitics verbatim, and each known sink pin's input capacitance as
/// a grounded cap at its hookup node.
check::OracleInput stage_oracle_input(const timing::Design& design,
                                      const std::string& driver,
                                      const timing::Net& net) {
  check::OracleInput input;
  input.source = "\x01src";  // never collides with a netlist node name
  input.elements.reserve(net.parasitics.size() + net.sink_node.size() + 1);
  const auto gate_it = design.gates().find(driver);
  input.elements.push_back({check::OracleElement::Kind::Resistor,
                            input.source, "DRV",
                            gate_it == design.gates().end()
                                ? 0.0
                                : gate_it->second.drive_resistance});
  for (const timing::NetElement& e : net.parasitics) {
    check::OracleElement::Kind kind = check::OracleElement::Kind::Resistor;
    switch (e.kind) {
      case timing::NetElement::Kind::Resistor:
        kind = check::OracleElement::Kind::Resistor;
        break;
      case timing::NetElement::Kind::Capacitor:
        kind = check::OracleElement::Kind::Capacitor;
        break;
      case timing::NetElement::Kind::Inductor:
        kind = check::OracleElement::Kind::Inductor;
        break;
    }
    input.elements.push_back({kind, e.node_a, e.node_b, e.value});
  }
  for (const auto& [sink, node] : net.sink_node) {
    const auto sink_it = design.gates().find(sink);
    if (sink_it == design.gates().end()) continue;  // design output
    input.elements.push_back({check::OracleElement::Kind::Capacitor, node,
                              "0", sink_it->second.input_capacitance});
  }
  return input;
}

void run_conditioning_tier(const timing::Design& design,
                           const AuditOptions& options,
                           const std::vector<std::string>& content_keys,
                           Emitter& em) {
  AuditReport& report = *em.report;
  report.nets.reserve(design.net_count());
  // Isomorphic nets in the same electrical context -- equal content key
  // (name-agnostic topology + values) AND equal driver resistance and
  // sink pin caps -- have identical estimates, so the oracle runs once
  // per distinct cell and every other instance copies the answer.  On
  // repeated-cell fabrics (the mega_design shape) this is what keeps
  // the whole pre-flight a rounding error next to the analysis.
  std::unordered_map<std::string, std::size_t> memo;  // key -> nets index
  memo.reserve(design.net_count());
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const timing::Net& net = design.net_at(i);
    NetAssessment assessment;
    assessment.net = net.name;
    assessment.driver = design.net_driver(i);
    timing::detail::KeyBuilder kb;
    kb.reserve(content_keys[i].size() + 16 * (net.sink_node.size() + 2));
    kb.text(content_keys[i]).tag('G');
    const auto gate_it = design.gates().find(assessment.driver);
    kb.number(gate_it == design.gates().end()
                  ? 0.0
                  : gate_it->second.drive_resistance);
    for (const auto& [sink, node] : net.sink_node) {
      (void)node;
      const auto sink_it = design.gates().find(sink);
      kb.number(sink_it == design.gates().end()
                    ? -1.0  // design output: no pin cap
                    : sink_it->second.input_capacitance);
    }
    const auto [memo_it, fresh] = memo.try_emplace(kb.take(), i);
    if (!fresh) {
      const NetAssessment& donor = report.nets[memo_it->second];
      assessment.eligibility = donor.eligibility;
      assessment.estimate = donor.estimate;
    } else {
      assessment.eligibility = reduce::net_eligibility(net, options.reduce);
      assessment.estimate = check::assess(
          stage_oracle_input(design, assessment.driver, net),
          options.oracle);
    }
    if (assessment.estimate.hazard) {
      em.emit(core::DiagCode::ConditioningHazard, core::Severity::Warning,
              "net '" + net.name + "': " + assessment.estimate.detail,
              net.name, em.net_loc(net.name),
              check::hankel_condition(assessment.estimate.spread,
                                      options.oracle.target_order));
    }
    report.nets.push_back(std::move(assessment));
  }
}

/// The value-less shape of a net: reduction_content_key bytes with
/// every element value skipped (and no options -- shape is a property
/// of the net alone).  Two nets with equal shape keys are isomorphic up
/// to their value vectors.
std::string shape_key(const timing::Net& net) {
  timing::detail::KeyBuilder kb;
  kb.reserve(32 + net.parasitics.size() * 24);
  kb.tag('S').integer(net.parasitics.size());
  for (const timing::NetElement& e : net.parasitics) {
    kb.integer(static_cast<std::uint64_t>(e.kind))
        .text(e.node_a)
        .text(e.node_b);
  }
  kb.tag('B').integer(net.sink_node.size() + 1).text("DRV");
  for (const auto& [gate, node] : net.sink_node) {
    (void)gate;
    kb.text(node);
  }
  return kb.take();
}

void run_repetition_tier(const timing::Design& design,
                         const std::vector<std::string>& content_keys,
                         Emitter& em) {
  AuditReport& report = *em.report;
  // Exact groups: the \x01R content key discipline from src/reduce --
  // name-agnostic, so instances of one cell under different names
  // collide on purpose.
  std::map<std::string, std::vector<std::size_t>> exact;
  std::map<std::string, std::vector<std::size_t>> shapes;
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const timing::Net& net = design.net_at(i);
    exact[content_keys[i]].push_back(i);
    shapes[shape_key(net)].push_back(i);
  }

  // Deterministic report order: groups by first-member net index.
  std::vector<const std::vector<std::size_t>*> groups;
  for (const auto& [key, members] : exact) {
    (void)key;
    if (members.size() >= 2) groups.push_back(&members);
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto* a, const auto* b) {
              return a->front() < b->front();
            });
  for (const auto* members : groups) {
    RepetitionGroup group;
    group.representative = design.net_at(members->front()).name;
    std::string listing;
    for (const std::size_t i : *members) {
      group.members.push_back(design.net_at(i).name);
      if (!listing.empty()) listing += ", ";
      listing += design.net_at(i).name;
    }
    std::ostringstream msg;
    msg << members->size() << " nets share one reduction-store entry ("
        << listing << "): 1 collapse, " << members->size() - 1
        << " rehydration(s)";
    em.emit(core::DiagCode::RepeatedStructure, core::Severity::Info,
            msg.str(), group.representative,
            em.net_loc(group.representative));
    report.repeated.push_back(std::move(group));
  }

  // Near-misses: same shape, value vectors differing in exactly one
  // entry, and not already exact duplicates.  Each shape group compares
  // against its first member only (O(n) in nets, deterministic).
  std::vector<const std::vector<std::size_t>*> shape_groups;
  for (const auto& [key, members] : shapes) {
    (void)key;
    if (members.size() >= 2) shape_groups.push_back(&members);
  }
  std::sort(shape_groups.begin(), shape_groups.end(),
            [](const auto* a, const auto* b) {
              return a->front() < b->front();
            });
  for (const auto* members : shape_groups) {
    const timing::Net& rep = design.net_at(members->front());
    for (std::size_t k = 1; k < members->size(); ++k) {
      const timing::Net& other = design.net_at((*members)[k]);
      std::size_t diffs = 0, diff_index = 0;
      for (std::size_t e = 0; e < rep.parasitics.size() && diffs < 2; ++e) {
        if (rep.parasitics[e].value != other.parasitics[e].value) {
          ++diffs;
          diff_index = e;
        }
      }
      if (diffs != 1) continue;
      NearMiss miss;
      miss.net_a = rep.name;
      miss.net_b = other.name;
      miss.element_index = diff_index;
      miss.value_a = rep.parasitics[diff_index].value;
      miss.value_b = other.parasitics[diff_index].value;
      std::ostringstream msg;
      msg << "nets '" << rep.name << "' and '" << other.name
          << "' are identical up to one value (element " << diff_index
          << ": " << miss.value_a << " vs " << miss.value_b
          << "); aligning them would dedup the reduction";
      const circuit::SourceLoc* loc =
          em.sources == nullptr
              ? nullptr
              : em.sources->element_loc(other.name, diff_index);
      if (loc == nullptr) loc = em.net_loc(other.name);
      em.emit(core::DiagCode::NearDuplicate, core::Severity::Warning,
              msg.str(), other.name, loc);
      report.near_misses.push_back(std::move(miss));
    }
  }
}

}  // namespace

AuditReport audit_design(const timing::Design& design,
                         const AuditOptions& options,
                         const DesignSourceMap* sources) {
  AuditReport report;
  Emitter em{&report, sources};
  if (options.graph_rules) run_graph_tier(design, options, em);
  // The name-agnostic content keys are shared infrastructure: the
  // conditioning tier dedups oracle calls across isomorphic nets, the
  // repetition tier groups by them -- serialize each net exactly once.
  std::vector<std::string> content_keys;
  if (options.conditioning || options.repetition) {
    content_keys.reserve(design.net_count());
    for (std::size_t i = 0; i < design.net_count(); ++i) {
      content_keys.push_back(
          reduce::reduction_content_key(design.net_at(i), options.reduce));
    }
  }
  if (options.conditioning) {
    run_conditioning_tier(design, options, content_keys, em);
  }
  if (options.repetition) run_repetition_tier(design, content_keys, em);
  return report;
}

AuditReport audit_circuit(const circuit::Circuit& circuit,
                          const AuditOptions& options,
                          const std::string& filename) {
  AuditReport report;
  Emitter em{&report, nullptr};
  if (!options.conditioning) return report;
  NetAssessment assessment;
  assessment.net = filename.empty() ? "circuit" : filename;
  assessment.estimate = check::assess_circuit(circuit, options.oracle);
  if (assessment.estimate.hazard) {
    core::Diagnostic d;
    d.code = core::DiagCode::ConditioningHazard;
    d.severity = core::Severity::Warning;
    d.message = assessment.estimate.detail;
    d.file = filename;
    d.condition_estimate = check::hankel_condition(
        assessment.estimate.spread, options.oracle.target_order);
    ++report.warnings;
    report.diagnostics.push_back(std::move(d));
  }
  report.nets.push_back(std::move(assessment));
  return report;
}

}  // namespace awesim::audit
