#include "audit/report_json.h"

#include <utility>

namespace awesim::audit {

using obs::json::Value;

Value diagnostic_to_json(const core::Diagnostic& d) {
  Value out = Value::object();
  out.set("code", core::to_string(d.code));
  out.set("severity", core::to_string(d.severity));
  out.set("message", d.message);
  if (!d.element.empty()) out.set("element", d.element);
  if (!d.node.empty()) out.set("node", d.node);
  if (d.line > 0) {
    if (!d.file.empty()) out.set("file", d.file);
    out.set("line", static_cast<unsigned long long>(d.line));
    out.set("column", static_cast<unsigned long long>(d.column));
  }
  if (d.condition_estimate >= 0.0) {
    out.set("condition_estimate", d.condition_estimate);
  }
  return out;
}

Value report_to_json(const std::string& subject, const AuditReport& report) {
  Value out = Value::object();
  out.set("subject", subject);
  out.set("errors", static_cast<unsigned long long>(report.errors));
  out.set("warnings", static_cast<unsigned long long>(report.warnings));
  out.set("infos", static_cast<unsigned long long>(report.infos));
  out.set("ok", report.ok());

  Value diags = Value::array();
  for (const core::Diagnostic& d : report.diagnostics) {
    diags.push_back(diagnostic_to_json(d));
  }
  out.set("diagnostics", std::move(diags));

  Value nets = Value::array();
  for (const NetAssessment& a : report.nets) {
    Value net = Value::object();
    net.set("net", a.net);
    if (!a.driver.empty()) net.set("driver", a.driver);
    net.set("eligibility", reduce::to_string(a.eligibility));
    net.set("rc_tree", a.estimate.rc_tree);
    net.set("tau_count",
            static_cast<unsigned long long>(a.estimate.tau_count));
    net.set("spread", a.estimate.spread);
    net.set("elmore_delay", a.estimate.elmore_delay);
    net.set("moment_ratio", a.estimate.moment_ratio);
    net.set("nonequilibrium_ic", a.estimate.nonequilibrium_ic);
    net.set("min_safe_order", a.estimate.min_safe_order);
    net.set("max_safe_order", a.estimate.max_safe_order);
    net.set("hazard", a.estimate.hazard);
    nets.push_back(std::move(net));
  }
  out.set("nets", std::move(nets));

  Value repeated = Value::array();
  for (const RepetitionGroup& group : report.repeated) {
    Value g = Value::object();
    g.set("representative", group.representative);
    Value members = Value::array();
    for (const std::string& m : group.members) members.push_back(m);
    g.set("members", std::move(members));
    repeated.push_back(std::move(g));
  }
  out.set("repeated", std::move(repeated));

  Value misses = Value::array();
  for (const NearMiss& miss : report.near_misses) {
    Value m = Value::object();
    m.set("net_a", miss.net_a);
    m.set("net_b", miss.net_b);
    m.set("element_index",
          static_cast<unsigned long long>(miss.element_index));
    m.set("value_a", miss.value_a);
    m.set("value_b", miss.value_b);
    misses.push_back(std::move(m));
  }
  out.set("near_misses", std::move(misses));
  return out;
}

}  // namespace awesim::audit
