// JSON rendering of an AuditReport, shared by the awesim_audit CLI and
// the serve-layer `audit` verb so both speak the same schema.  Written
// with the obs::json writer; the matching reader round-trips it (the
// test suite parses the CLI output back and checks the fields).
#pragma once

#include <string>

#include "audit/audit.h"
#include "obs/json.h"

namespace awesim::audit {

/// Bump on any field change; consumers key on it.
inline constexpr int kAuditSchemaVersion = 1;

obs::json::Value diagnostic_to_json(const core::Diagnostic& diagnostic);

/// One file/design worth of findings: counts, diagnostics, per-net
/// assessments, repetition groups, near-misses.  `subject` names what
/// was audited (a file path, or the serve snapshot tag).
obs::json::Value report_to_json(const std::string& subject,
                                const AuditReport& report);

}  // namespace awesim::audit
