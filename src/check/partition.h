// Element-graph partitioning primitives shared by the lint rule pipeline
// and the hierarchical reduction subsystem (src/reduce).
//
// Lint grew these first: the connectivity and cutset rules need disjoint
// sets over node ids, and the structure rule needs the RC-tree / RC-mesh
// / RLC classification.  Hierarchical reduction asks the same questions
// of the same graphs -- which nodes form an island, is this subcircuit an
// RC tree the macromodel construction applies to -- so the machinery
// lives here instead of being copied.  Everything is pure graph analysis
// (union-find with path halving), O(edges * alpha), allocation-light.
#pragma once

#include <cstddef>
#include <vector>

namespace awesim::check {

/// Structural class of a circuit, coarsest first.  RcTree is the
/// Penfield-Rubinstein precondition: only R/C/independent-V elements,
/// every capacitor grounded, and the resistor+source edges form a tree
/// (no resistive loops, ground included) -- exactly the shape where the
/// first-order AWE model IS the Elmore bound (paper eq. 50).
enum class TopologyClass {
  Empty,   // no elements at all
  RcTree,  // R/C/V only, caps grounded, resistive spanning tree
  RcMesh,  // R/C/V only, but resistive loops or floating capacitors
  Rlc,     // contains inductors (underdamped responses possible)
  General, // controlled sources / current sources present
};

const char* to_string(TopologyClass topology);

/// Disjoint-set forest over dense integer ids, with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }

  int find(int a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }

  /// False when a and b were already connected (a union would close a
  /// loop in the edge set being inserted).
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// One edge of an element graph, as partitioning and classification see
/// it: endpoints by dense node id (0 = ground) plus the electrical role
/// of the element.  Resistive covers everything that ties its endpoint
/// voltages together at DC (resistors, voltage-defined sources);
/// Other covers current sources and controlled sources.
struct Edge {
  enum class Kind { Resistive, Capacitive, Inductive, Other };
  int a = 0;
  int b = 0;
  Kind kind = Kind::Resistive;
};

/// Structure classification over an edge list -- the rule-5 logic of the
/// lint pipeline, shared with src/reduce's reducibility gate.  RcTree
/// requires every capacitive edge grounded and the resistive edges to
/// form a forest (no loops, ground included); any inductive edge makes
/// the class Rlc, any Other edge General.  An empty list is Empty.
TopologyClass classify_edges(std::size_t node_count,
                             const std::vector<Edge>& edges);

}  // namespace awesim::check
