// Static numeric-conditioning oracle: predict AWE instability before
// any matrix is assembled.
//
// The paper's own experiments show where raw moment matching breaks:
// the Fig. 16 stiff tree spreads its time constants over four decades,
// so the eq. 24 Hankel system is ill-conditioned long before the
// arithmetic runs out of digits, and the Figs. 20/21 nonequilibrium-IC
// runs show the q = 1 member of the degradation ladder (the Elmore
// bound, which assumes a relaxed network) answering with ~150% error
// while q = 2 is already at 0.65%.  Both failure modes are visible
// *statically*: the first from the Elmore time-constant spread of the
// RC tree, the second from the mere presence of nonzero initial
// conditions.  This oracle computes those signals in O(elements) and
// recommends a safe order window [min_safe_order, max_safe_order] --
// the audit layer turns a violated window into a ConditioningHazard
// diagnostic, and reduce::HierSession consults the same estimate when
// deciding whether a collapsed net's macromodel can be trusted at high
// order.
//
// The conditioning model: for an RC tree driven at one node, the
// moment sequence seen at any sink is m_k ~ sum_i a_i tau_i^k, so the
// k-th Hankel row scales like tau_max^k while the smallest singular
// value tracks tau_min^k; the order-q Hankel condition number grows
// like
//
//     kappa(q) ~ (tau_max / tau_min)^(2(q-1))
//
// (q = 1 needs only m0/m1 and is always well posed).  With ~15.9
// significant digits in an IEEE double and a budget of `digits`
// allowed to cancel, the largest trustworthy order is
//
//     q_safe = 1 + floor(digits / (2 log10(spread))).
//
// The moment-growth cross-check: |m1 m3| / m2^2 == 1 exactly for a
// single-pole response and grows with pole spread, so a large ratio
// from the first three (statically computed, O(n) per moment) tree
// moments corroborates a large tau spread without any factorization.
//
// The oracle never blocks analysis -- the engine's degradation ladder
// remains the runtime safety net.  It exists so a production flow can
// downgrade the request (lower order, ElmoreBound DelayModel) *before*
// wasting the factorization, and so the audit report can point at the
// exact nets that will degrade.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace awesim::check {

struct OracleOptions {
  /// The AWE order the engine will be asked for; the hazard flag
  /// compares the safe window against this.
  int target_order = 3;
  /// Decimal digits allowed to cancel inside the Hankel solve before
  /// the pole set stops being trustworthy (IEEE double carries ~15.9;
  /// the default leaves ~2 digits of answer).
  double digits = 14.0;
};

/// What the oracle concluded about one net / circuit.  All fields are
/// defined (at their stated defaults) even when `rc_tree` is false --
/// non-tree content gets the coarse lumped estimate only.
struct ConditioningEstimate {
  /// The resistive spanning structure from the source is a tree, so
  /// the taus below are exact Elmore time constants.
  bool rc_tree = false;
  /// Capacitive nodes with a nonzero time constant.
  std::size_t tau_count = 0;
  double tau_min = 0.0;
  double tau_max = 0.0;
  /// tau_max / tau_min (1 when fewer than two distinct taus).
  double spread = 1.0;
  /// Elmore delay bound at the worst (largest-|m1|) node, seconds.
  double elmore_delay = 0.0;
  /// |m1 m3| / m2^2 at the worst node: 1 for a single pole, grows with
  /// pole spread.  1 when moments were not computable (non-tree).
  double moment_ratio = 1.0;
  /// Nonzero initial conditions present (the Figs. 20/21 regime).
  bool nonequilibrium_ic = false;
  /// Largest order whose Hankel system stays within the digit budget.
  int max_safe_order = 6;
  /// Smallest order that can represent the response: 2 when
  /// nonequilibrium ICs ride on >= 2 time constants (the q = 1 Elmore
  /// member of the ladder assumes a relaxed network and answers the
  /// Fig. 20 case with ~150% error), else 1.
  int min_safe_order = 1;
  /// target_order falls outside [min_safe_order, max_safe_order].
  bool hazard = false;
  /// One human sentence summarizing the verdict.
  std::string detail;
};

/// kappa(q) ~ spread^(2(q-1)), clamped to avoid overflow.
double hankel_condition(double spread, int order);

/// Generic RC(L) content over string node names ("0"/"gnd"/"GND" is
/// ground), driven at one node.  The timing-layer audit builds one of
/// these per net (driver resistance as a leading element, sink pin
/// capacitances as grounded caps).
struct OracleElement {
  enum class Kind { Resistor, Capacitor, Inductor } kind =
      Kind::Resistor;
  std::string node_a;
  std::string node_b;
  double value = 0.0;
};

struct OracleInput {
  std::vector<OracleElement> elements;
  /// Node the (ideal) source drives.  A series drive resistance should
  /// be an ordinary Resistor element from this node.
  std::string source;
  /// Nonzero initial conditions anywhere in the content.
  bool nonequilibrium_ic = false;
};

ConditioningEstimate assess(const OracleInput& input,
                            const OracleOptions& options = {});

/// Assess a flat circuit: the source is the positive node of the first
/// independent source; element initial conditions and .ic node voltages
/// set `nonequilibrium_ic`; controlled sources are ignored (their
/// conditioning is not tau-driven).  Returns a default (no-hazard)
/// estimate when the circuit has no source to anchor the tree walk.
ConditioningEstimate assess_circuit(const circuit::Circuit& circuit,
                                    const OracleOptions& options = {});

}  // namespace awesim::check
