// awesim_lint: standalone netlist lint driver over the src/check rule
// pipeline.  Lints each netlist given on the command line and prints the
// findings, either human-readable (default) or as a schema'd JSON
// document (--json[=path]) written with the same obs::json writer the
// bench harness uses, so downstream tooling can parse it with the
// matching reader.
//
//   awesim_lint [--json[=FILE]] [--no-note] netlist.sp [more.sp ...]
//
// Exit status: 0 when every file linted without Error-severity findings,
// 1 when any file had errors (or could not be read), 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/lint.h"
#include "obs/json.h"

namespace {

constexpr int kSchemaVersion = 1;

awesim::obs::json::Value diagnostic_to_json(
    const awesim::core::Diagnostic& d) {
  using awesim::obs::json::Value;
  Value out = Value::object();
  out.set("code", awesim::core::to_string(d.code));
  out.set("severity", awesim::core::to_string(d.severity));
  out.set("message", d.message);
  if (!d.element.empty()) out.set("element", d.element);
  if (!d.node.empty()) out.set("node", d.node);
  if (d.line > 0) {
    if (!d.file.empty()) out.set("file", d.file);
    out.set("line", static_cast<unsigned long long>(d.line));
    out.set("column", static_cast<unsigned long long>(d.column));
  }
  return out;
}

awesim::obs::json::Value report_to_json(
    const std::string& path, const awesim::check::LintReport& report) {
  using awesim::obs::json::Value;
  Value out = Value::object();
  out.set("file", path);
  out.set("topology", awesim::check::to_string(report.topology));
  out.set("errors", static_cast<unsigned long long>(report.errors));
  out.set("warnings", static_cast<unsigned long long>(report.warnings));
  out.set("ok", report.ok());
  Value diags = Value::array();
  for (const auto& d : report.diagnostics) {
    diags.push_back(diagnostic_to_json(d));
  }
  out.set("diagnostics", std::move(diags));
  return out;
}

void print_human(const std::string& path,
                 const awesim::check::LintReport& report) {
  std::printf("%s: %s, %zu error(s), %zu warning(s)\n", path.c_str(),
              awesim::check::to_string(report.topology), report.errors,
              report.warnings);
  for (const auto& d : report.diagnostics) {
    std::printf("  %s\n", d.to_string().c_str());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json[=FILE]] [--no-note] netlist.sp "
               "[more.sp ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  awesim::check::LintOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--no-note") {
      options.classify_note = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  using awesim::obs::json::Value;
  Value doc = Value::object();
  doc.set("schema_version", kSchemaVersion);
  doc.set("tool", "awesim_lint");
  Value json_files = Value::array();

  std::size_t total_errors = 0;
  for (const auto& path : files) {
    const awesim::check::LintReport report =
        awesim::check::lint_file(path, options);
    total_errors += report.errors;
    if (json) {
      json_files.push_back(report_to_json(path, report));
    } else {
      print_human(path, report);
    }
  }

  if (json) {
    doc.set("files", std::move(json_files));
    const std::string text = doc.dump(2) + "\n";
    if (json_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::FILE* out = std::fopen(json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                     json_path.c_str());
        return 2;
      }
      std::fputs(text.c_str(), out);
      std::fclose(out);
    }
  }

  return total_errors > 0 ? 1 : 0;
}
