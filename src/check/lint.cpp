#include "check/lint.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "check/partition.h"
#include "netlist/parser.h"
#include "obs/trace.h"

namespace awesim::check {

namespace {

using circuit::Circuit;
using circuit::Element;
using circuit::ElementKind;
using circuit::NodeId;

// Branch taxonomy the loop/cutset rules reason over.  A voltage-defined
// branch contributes a KVL row to the MNA system (its current is an
// unknown); a loop of only such branches makes those rows linearly
// dependent.  A conductive branch ties its endpoint voltages together at
// DC; nodes reachable from ground only through non-conductive branches
// have no DC voltage reference.  Current-defined branches inject current
// without constraining voltage.
bool voltage_defined(ElementKind kind) {
  return kind == ElementKind::VoltageSource ||
         kind == ElementKind::Inductor || kind == ElementKind::Vcvs ||
         kind == ElementKind::Ccvs;
}

bool conductive(ElementKind kind) {
  return kind == ElementKind::Resistor || voltage_defined(kind);
}

const char* kind_name(ElementKind kind) {
  switch (kind) {
    case ElementKind::Resistor: return "resistor";
    case ElementKind::Capacitor: return "capacitor";
    case ElementKind::Inductor: return "inductor";
    case ElementKind::VoltageSource: return "voltage source";
    case ElementKind::CurrentSource: return "current source";
    case ElementKind::Vcvs: return "VCVS";
    case ElementKind::Vccs: return "VCCS";
    case ElementKind::Cccs: return "CCCS";
    case ElementKind::Ccvs: return "CCVS";
  }
  return "element";
}

std::string format_value(double v) {
  std::ostringstream out;
  out.precision(6);
  out << v;
  return out.str();
}

/// Join up to `cap` names with commas, appending ", ..." beyond it.
std::string join_names(const std::vector<std::string>& names,
                       std::size_t cap = 8) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i >= cap) {
      out += ", ...";
      break;
    }
    if (i > 0) out += ",";
    out += names[i];
  }
  return out;
}

/// Unite every port of every macro: a boundary-block macromodel ties
/// its ports together through the (resistive) interior it collapsed, so
/// the connectivity/cutset rules must treat it as one conductive blob.
void unite_macro_ports(const Circuit& ckt, UnionFind& uf,
                       std::vector<char>* used) {
  for (const auto& m : ckt.macros()) {
    for (std::size_t i = 0; i < m.ports.size(); ++i) {
      const auto id = static_cast<std::size_t>(m.ports[i]);
      if (used != nullptr) (*used)[id] = 1;
      if (i > 0) uf.unite(m.ports[0], m.ports[i]);
    }
  }
}

struct Linter {
  const Circuit& ckt;
  const LintOptions& opt;
  LintReport report;

  void emit(core::DiagCode code, core::Severity severity,
            std::string message, std::string element = {},
            std::string node = {},
            const circuit::SourceLoc* loc = nullptr) {
    core::Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.message = std::move(message);
    d.element = std::move(element);
    d.node = std::move(node);
    if (loc != nullptr) {
      d.file = loc->file;
      d.line = loc->line;
      d.column = loc->column;
    }
    if (severity >= core::Severity::Error) {
      ++report.errors;
    } else if (severity == core::Severity::Warning) {
      ++report.warnings;
    }
    report.diagnostics.push_back(std::move(d));
  }

  // Rule 1: element values.  Re-checks what Circuit::validate throws on
  // (duplicates, self-shorts, non-positive passives) so netlists parsed
  // with the validate gate skipped still surface every problem -- but as
  // located diagnostics, all of them, instead of one thrown string.
  void check_values() {
    std::unordered_set<std::string_view> seen;
    seen.reserve(ckt.elements().size());
    for (const auto& e : ckt.elements()) {
      if (e.name.empty()) {
        emit(core::DiagCode::ValidationError, core::Severity::Error,
             "element with an empty name", {}, {}, &e.loc);
      } else if (!seen.insert(e.name).second) {
        emit(core::DiagCode::ValidationError, core::Severity::Error,
             "duplicate element name", e.name, {}, &e.loc);
      }
      if (e.pos == e.neg) {
        emit(core::DiagCode::ValidationError, core::Severity::Error,
             std::string(kind_name(e.kind)) + " shorts node '" +
                 ckt.node_name(e.pos) + "' to itself",
             e.name, ckt.node_name(e.pos), &e.loc);
      }
      switch (e.kind) {
        case ElementKind::Resistor:
          check_passive_value(e, "ohm", opt.resistor_min_ohms,
                              opt.resistor_max_ohms);
          break;
        case ElementKind::Capacitor:
          check_passive_value(e, "farad", opt.capacitor_min_farads,
                              opt.capacitor_max_farads);
          break;
        case ElementKind::Inductor:
          check_passive_value(e, "henry", opt.inductor_min_henries,
                              opt.inductor_max_henries);
          break;
        case ElementKind::Vcvs:
        case ElementKind::Vccs:
        case ElementKind::Cccs:
        case ElementKind::Ccvs:
          if (!std::isfinite(e.value)) {
            emit(core::DiagCode::ValueOutOfRange, core::Severity::Error,
                 std::string(kind_name(e.kind)) + " gain " +
                     format_value(e.value) + " is not finite",
                 e.name, {}, &e.loc);
          }
          break;
        case ElementKind::VoltageSource:
        case ElementKind::CurrentSource:
          break;
      }
    }
    for (const auto& m : ckt.macros()) {
      if (m.name.empty()) {
        emit(core::DiagCode::ValidationError, core::Severity::Error,
             "macro with an empty name");
      } else if (!seen.insert(m.name).second) {
        emit(core::DiagCode::ValidationError, core::Severity::Error,
             "duplicate element name", m.name);
      }
      const std::size_t dim = m.dim();
      if (m.g.size() != dim * dim || m.c.size() != dim * dim) {
        emit(core::DiagCode::ValidationError, core::Severity::Error,
             "macro stamp size disagrees with ports+states", m.name);
        continue;
      }
      for (const double v : m.g) {
        if (!std::isfinite(v)) {
          emit(core::DiagCode::ValueOutOfRange, core::Severity::Error,
               "macro G stamp entry " + format_value(v) + " is not finite",
               m.name);
          break;
        }
      }
      for (const double v : m.c) {
        if (!std::isfinite(v)) {
          emit(core::DiagCode::ValueOutOfRange, core::Severity::Error,
               "macro C stamp entry " + format_value(v) + " is not finite",
               m.name);
          break;
        }
      }
    }
  }

  void check_passive_value(const Element& e, const char* unit, double lo,
                           double hi) {
    if (!std::isfinite(e.value) || e.value <= 0.0) {
      emit(core::DiagCode::ValueOutOfRange, core::Severity::Error,
           std::string(kind_name(e.kind)) + " value " +
               format_value(e.value) + " " + unit +
               " must be positive and finite",
           e.name, {}, &e.loc);
      return;
    }
    if (e.value < lo || e.value > hi) {
      emit(core::DiagCode::SuspiciousValue, core::Severity::Warning,
           std::string(kind_name(e.kind)) + " value " +
               format_value(e.value) + " " + unit +
               " is far outside the plausible range [" + format_value(lo) +
               ", " + format_value(hi) + "] -- misplaced suffix?",
           e.name, {}, &e.loc);
    }
  }

  // Rule 2: controlled-source dependencies.
  void check_dependencies() {
    const bool any_controlled = std::any_of(
        ckt.elements().begin(), ckt.elements().end(), [](const Element& e) {
          return e.kind == ElementKind::Vcvs || e.kind == ElementKind::Vccs ||
                 e.kind == ElementKind::Cccs || e.kind == ElementKind::Ccvs;
        });
    if (!any_controlled) return;  // the common case pays one scan only

    std::vector<char> touched(ckt.node_count(), 0);
    touched[circuit::kGround] = 1;
    for (const auto& e : ckt.elements()) {
      touched[static_cast<std::size_t>(e.pos)] = 1;
      touched[static_cast<std::size_t>(e.neg)] = 1;
    }

    for (const auto& e : ckt.elements()) {
      if (e.kind == ElementKind::Cccs || e.kind == ElementKind::Ccvs) {
        const Element* ctrl = ckt.find_element(e.ctrl_source);
        if (ctrl == nullptr) {
          emit(core::DiagCode::DanglingControl, core::Severity::Error,
               std::string(kind_name(e.kind)) +
                   " references unknown control element '" + e.ctrl_source +
                   "'",
               e.name, {}, &e.loc);
        } else if (ctrl->kind != ElementKind::VoltageSource &&
                   ctrl->kind != ElementKind::Inductor) {
          emit(core::DiagCode::DanglingControl, core::Severity::Error,
               std::string(kind_name(e.kind)) + " control element '" +
                   e.ctrl_source +
                   "' carries no branch current (must be a voltage "
                   "source or inductor)",
               e.name, {}, &e.loc);
        }
      }
      if (e.kind == ElementKind::Vcvs || e.kind == ElementKind::Vccs) {
        for (const NodeId ctrl : {e.ctrl_pos, e.ctrl_neg}) {
          if (ctrl != circuit::kGround &&
              !touched[static_cast<std::size_t>(ctrl)]) {
            emit(core::DiagCode::DanglingControl, core::Severity::Error,
                 std::string(kind_name(e.kind)) + " senses node '" +
                     ckt.node_name(ctrl) +
                     "' which no element connects to",
                 e.name, ckt.node_name(ctrl), &e.loc);
          }
        }
      }
    }

    check_control_cycles();
  }

  // Controlled-source dependency cycles via node sensing: S depends on T
  // when S senses a node that T's output terminals touch.  A cycle is
  // not necessarily singular (feedback can be perfectly well-posed), so
  // this is a Warning naming the members.
  void check_control_cycles() {
    const auto& elements = ckt.elements();
    std::vector<std::size_t> ctrl_idx;
    std::map<NodeId, std::vector<std::size_t>> driven_nodes;
    for (std::size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      switch (e.kind) {
        case ElementKind::Vcvs:
        case ElementKind::Vccs:
        case ElementKind::Cccs:
        case ElementKind::Ccvs:
          ctrl_idx.push_back(i);
          if (e.pos != circuit::kGround) driven_nodes[e.pos].push_back(i);
          if (e.neg != circuit::kGround) driven_nodes[e.neg].push_back(i);
          break;
        default:
          break;
      }
    }
    if (ctrl_idx.empty()) return;

    std::map<std::size_t, std::vector<std::size_t>> deps;
    for (const std::size_t i : ctrl_idx) {
      const Element& e = elements[i];
      if (e.kind != ElementKind::Vcvs && e.kind != ElementKind::Vccs) {
        continue;  // branch-sensing sources sense V/L elements only
      }
      for (const NodeId sensed : {e.ctrl_pos, e.ctrl_neg}) {
        const auto it = driven_nodes.find(sensed);
        if (it == driven_nodes.end()) continue;
        for (const std::size_t j : it->second) {
          if (j != i) deps[i].push_back(j);
        }
      }
    }

    // Iterative DFS with a gray/black coloring; the first back edge met
    // from each root reports the cycle on the current stack.  Cycles are
    // deduplicated by member set so overlapping traversals do not spam.
    std::map<std::size_t, int> color;  // 0 white, 1 gray, 2 black
    std::set<std::vector<std::size_t>> reported;
    for (const std::size_t root : ctrl_idx) {
      if (color[root] != 0) continue;
      std::vector<std::size_t> stack{root};
      std::vector<std::size_t> path;
      while (!stack.empty()) {
        const std::size_t cur = stack.back();
        if (color[cur] == 0) {
          color[cur] = 1;
          path.push_back(cur);
          for (const std::size_t next : deps[cur]) {
            if (color[next] == 1) {
              // Cycle: the path suffix from `next` to `cur`.
              const auto begin =
                  std::find(path.begin(), path.end(), next);
              std::vector<std::size_t> members(begin, path.end());
              std::vector<std::size_t> sorted = members;
              std::sort(sorted.begin(), sorted.end());
              if (reported.insert(sorted).second) {
                std::vector<std::string> names;
                names.reserve(members.size());
                for (const std::size_t m : members) {
                  names.push_back(elements[m].name);
                }
                emit(core::DiagCode::ControlCycle,
                     core::Severity::Warning,
                     "controlled sources form a dependency cycle; check "
                     "the feedback gain product",
                     join_names(names), {}, &elements[members.front()].loc);
              }
            } else if (color[next] == 0) {
              stack.push_back(next);
            }
          }
        } else {
          if (color[cur] == 1) {
            color[cur] = 2;
            path.pop_back();
          }
          stack.pop_back();
        }
      }
    }
  }

  // Rule 3: connectivity.  `island` is set for every node reported as
  // part of a fully disconnected island, so the cutset rule does not
  // re-report them at lower severity.
  void check_connectivity(std::vector<char>& island) {
    const std::size_t n = ckt.node_count();
    UnionFind uf(n);
    std::vector<char> used(n, 0);
    used[circuit::kGround] = 1;
    for (const auto& e : ckt.elements()) {
      uf.unite(e.pos, e.neg);
      used[static_cast<std::size_t>(e.pos)] = 1;
      used[static_cast<std::size_t>(e.neg)] = 1;
    }
    unite_macro_ports(ckt, uf, &used);

    for (std::size_t id = 1; id < n; ++id) {
      if (!used[id]) {
        emit(core::DiagCode::FloatingIsland, core::Severity::Warning,
             "node is registered but connected to no element", {},
             ckt.node_name(static_cast<NodeId>(id)));
      }
    }

    for (const auto& group : groups_without_ground(uf, used)) {
      std::vector<std::string> node_names;
      node_names.reserve(group.size());
      std::set<NodeId> members(group.begin(), group.end());
      for (const NodeId id : group) node_names.push_back(ckt.node_name(id));

      std::vector<std::string> element_names;
      const circuit::SourceLoc* loc = nullptr;
      bool has_source = false;
      for (const auto& e : ckt.elements()) {
        if (members.count(e.pos) == 0 && members.count(e.neg) == 0) {
          continue;
        }
        element_names.push_back(e.name);
        if (loc == nullptr) loc = &e.loc;
        if (e.kind == ElementKind::VoltageSource ||
            e.kind == ElementKind::CurrentSource) {
          has_source = true;
        }
      }
      std::ostringstream msg;
      msg << "island of " << group.size()
          << " node(s) has no element path to ground";
      if (has_source) {
        msg << "; the independent source(s) driving it have no return "
               "path and its voltages are undefined";
      } else {
        msg << "; its voltages are pinned to 0 V by the gmin leak only";
      }
      emit(core::DiagCode::FloatingIsland,
           has_source ? core::Severity::Error : core::Severity::Warning,
           msg.str(), join_names(element_names), join_names(node_names),
           loc);
      for (const NodeId id : group) {
        island[static_cast<std::size_t>(id)] = 1;
      }
    }
  }

  // Rule 4a: loops of only voltage-defined branches.  Inserting the
  // branches into a spanning forest, the edge that closes a cycle proves
  // the loop; a BFS through the forest recovers the member elements so
  // the diagnostic can name the whole loop.
  void check_voltage_loops() {
    const std::size_t n = ckt.node_count();
    const auto& elements = ckt.elements();
    UnionFind uf(n);
    std::vector<std::vector<std::pair<NodeId, std::size_t>>> adj(n);
    for (std::size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      if (!voltage_defined(e.kind) || e.pos == e.neg) continue;
      if (uf.unite(e.pos, e.neg)) {
        adj[static_cast<std::size_t>(e.pos)].emplace_back(e.neg, i);
        adj[static_cast<std::size_t>(e.neg)].emplace_back(e.pos, i);
        continue;
      }
      std::vector<std::string> names{e.name};
      std::set<std::string> kinds{kind_name(e.kind)};
      for (const std::size_t m : forest_path(adj, e.pos, e.neg)) {
        names.push_back(elements[m].name);
        kinds.insert(kind_name(elements[m].kind));
      }
      std::ostringstream msg;
      msg << "loop of " << names.size()
          << " voltage-defined branches (";
      bool first = true;
      for (const auto& k : kinds) {
        if (!first) msg << "/";
        msg << k;
        first = false;
      }
      msg << "); their KVL rows are linearly dependent and the MNA "
             "matrix is structurally singular";
      emit(core::DiagCode::InductorLoop, core::Severity::Error, msg.str(),
           join_names(names), {}, &e.loc);
    }
  }

  // Rule 4b: node groups reachable from ground only through
  // current-defined branches (capacitors, current sources, F/G outputs).
  void check_current_cutsets(const std::vector<char>& island) {
    const std::size_t n = ckt.node_count();
    UnionFind uf(n);
    std::vector<char> used(n, 0);
    used[circuit::kGround] = 1;
    for (const auto& e : ckt.elements()) {
      used[static_cast<std::size_t>(e.pos)] = 1;
      used[static_cast<std::size_t>(e.neg)] = 1;
      if (conductive(e.kind)) uf.unite(e.pos, e.neg);
    }
    unite_macro_ports(ckt, uf, &used);

    for (const auto& group : groups_without_ground(uf, used)) {
      if (island[static_cast<std::size_t>(group.front())]) {
        continue;  // already reported as a fully disconnected island
      }
      std::set<NodeId> members(group.begin(), group.end());
      std::vector<std::string> node_names;
      node_names.reserve(group.size());
      for (const NodeId id : group) node_names.push_back(ckt.node_name(id));

      std::vector<std::string> boundary;  // current-defined, touching
      std::vector<std::string> sources;   // independent I among them
      const circuit::SourceLoc* source_loc = nullptr;
      const circuit::SourceLoc* any_loc = nullptr;
      for (const auto& e : ckt.elements()) {
        if (conductive(e.kind)) continue;
        if (members.count(e.pos) == 0 && members.count(e.neg) == 0) {
          continue;
        }
        boundary.push_back(e.name);
        if (any_loc == nullptr) any_loc = &e.loc;
        if (e.kind == ElementKind::CurrentSource) {
          sources.push_back(e.name);
          if (source_loc == nullptr) source_loc = &e.loc;
        }
      }
      if (!sources.empty()) {
        std::ostringstream msg;
        msg << "current source" << (sources.size() > 1 ? "s " : " ")
            << join_names(sources) << " reach"
            << (sources.size() > 1 ? "" : "es") << " node(s) "
            << join_names(node_names)
            << " only through capacitors; no DC path carries the source "
               "current and the operating point is ill-defined";
        emit(core::DiagCode::CapacitorCutset, core::Severity::Error,
             msg.str(), join_names(boundary), join_names(node_names),
             source_loc);
      } else {
        emit(core::DiagCode::FloatingNodes, core::Severity::Warning,
             "node(s) reachable from ground only through capacitors; the "
             "DC operating point exists only via the gmin leak",
             join_names(boundary), join_names(node_names), any_loc);
      }
    }
  }

  // Rule 5: structure classification, via the shared edge classifier
  // (check/partition.h) that src/reduce's reducibility gate also uses.
  TopologyClass classify() const {
    std::vector<Edge> edges;
    edges.reserve(ckt.elements().size());
    for (const auto& e : ckt.elements()) {
      Edge edge;
      edge.a = e.pos;
      edge.b = e.neg;
      switch (e.kind) {
        case ElementKind::Resistor:
        case ElementKind::VoltageSource:
          edge.kind = Edge::Kind::Resistive;
          break;
        case ElementKind::Capacitor:
          edge.kind = Edge::Kind::Capacitive;
          break;
        case ElementKind::Inductor:
          edge.kind = Edge::Kind::Inductive;
          break;
        default:
          edge.kind = Edge::Kind::Other;
          break;
      }
      edges.push_back(edge);
    }
    // A macro is a resistive star over its ports; the reduced interior
    // carries coupled state dynamics no tree bound describes, so a
    // circuit with macros is never better than RcMesh.
    for (const auto& m : ckt.macros()) {
      for (std::size_t i = 1; i < m.ports.size(); ++i) {
        edges.push_back({m.ports[0], m.ports[i], Edge::Kind::Resistive});
      }
    }
    TopologyClass cls = classify_edges(ckt.node_count(), edges);
    if (!ckt.macros().empty()) {
      if (cls == TopologyClass::Empty || cls == TopologyClass::RcTree) {
        cls = TopologyClass::RcMesh;
      }
    }
    return cls;
  }

  /// Connected components over `uf` that do not contain ground,
  /// restricted to nodes marked used, each sorted ascending, the list
  /// ordered by smallest member id (deterministic emit order).
  std::vector<std::vector<NodeId>> groups_without_ground(
      UnionFind& uf, const std::vector<char>& used) {
    std::map<int, std::vector<NodeId>> by_root;
    const int ground_root = uf.find(circuit::kGround);
    for (std::size_t id = 1; id < ckt.node_count(); ++id) {
      if (!used[id]) continue;
      const int root = uf.find(static_cast<int>(id));
      if (root == ground_root) continue;
      by_root[root].push_back(static_cast<NodeId>(id));
    }
    std::vector<std::vector<NodeId>> groups;
    groups.reserve(by_root.size());
    for (auto& [root, members] : by_root) {
      groups.push_back(std::move(members));
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) {
                return a.front() < b.front();
              });
    return groups;
  }

  /// Element indices along the unique forest path from `from` to `to`.
  std::vector<std::size_t> forest_path(
      const std::vector<std::vector<std::pair<NodeId, std::size_t>>>& adj,
      NodeId from, NodeId to) const {
    const std::size_t n = adj.size();
    std::vector<int> prev_node(n, -1);
    std::vector<std::size_t> prev_edge(n, 0);
    std::deque<NodeId> queue{from};
    std::vector<char> seen(n, 0);
    seen[static_cast<std::size_t>(from)] = 1;
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      if (cur == to) break;
      for (const auto& [next, edge] :
           adj[static_cast<std::size_t>(cur)]) {
        if (seen[static_cast<std::size_t>(next)]) continue;
        seen[static_cast<std::size_t>(next)] = 1;
        prev_node[static_cast<std::size_t>(next)] = cur;
        prev_edge[static_cast<std::size_t>(next)] = edge;
        queue.push_back(next);
      }
    }
    std::vector<std::size_t> path;
    for (NodeId cur = to; cur != from && prev_node[static_cast<std::size_t>(
                                             cur)] >= 0;) {
      path.push_back(prev_edge[static_cast<std::size_t>(cur)]);
      cur = static_cast<NodeId>(prev_node[static_cast<std::size_t>(cur)]);
    }
    return path;
  }
};

}  // namespace

LintReport lint(const circuit::Circuit& ckt, const LintOptions& options) {
  AWESIM_TRACE_SPAN("check.lint");
  Linter linter{ckt, options, {}};
  linter.check_values();
  linter.check_dependencies();
  std::vector<char> island(ckt.node_count(), 0);
  linter.check_connectivity(island);
  linter.check_voltage_loops();
  linter.check_current_cutsets(island);
  linter.report.topology = linter.classify();
  if (options.classify_note) {
    std::string msg = std::string("structure: ") +
                      to_string(linter.report.topology);
    if (linter.report.topology == TopologyClass::RcTree) {
      msg += " -- first-order AWE reduces exactly to the Elmore "
             "(Penfield-Rubinstein) bound";
    }
    linter.emit(core::DiagCode::TopologyNote, core::Severity::Info,
                std::move(msg));
  }
  return std::move(linter.report);
}

LintReport lint_text(std::string_view text, const std::string& filename,
                     const LintOptions& options) {
  netlist::ParseResult parsed =
      netlist::parse_collect(text, filename, /*validate=*/false);
  LintReport report;
  report.diagnostics = std::move(parsed.diagnostics);
  for (const auto& d : report.diagnostics) {
    if (d.severity >= core::Severity::Error) {
      ++report.errors;
    } else if (d.severity == core::Severity::Warning) {
      ++report.warnings;
    }
  }
  if (parsed.circuit) {
    LintReport rules = lint(*parsed.circuit, options);
    report.topology = rules.topology;
    report.errors += rules.errors;
    report.warnings += rules.warnings;
    report.diagnostics.insert(report.diagnostics.end(),
                              rules.diagnostics.begin(),
                              rules.diagnostics.end());
  }
  return report;
}

LintReport lint_file(const std::string& path, const LintOptions& options) {
  netlist::ParseResult parsed =
      netlist::parse_file_collect(path, /*validate=*/false);
  LintReport report;
  report.diagnostics = std::move(parsed.diagnostics);
  for (const auto& d : report.diagnostics) {
    if (d.severity >= core::Severity::Error) {
      ++report.errors;
    } else if (d.severity == core::Severity::Warning) {
      ++report.warnings;
    }
  }
  if (parsed.circuit) {
    LintReport rules = lint(*parsed.circuit, options);
    report.topology = rules.topology;
    report.errors += rules.errors;
    report.warnings += rules.warnings;
    report.diagnostics.insert(report.diagnostics.end(),
                              rules.diagnostics.begin(),
                              rules.diagnostics.end());
  }
  return report;
}

}  // namespace awesim::check
