// Pre-flight static electrical-rule checking ("lint") for circuits.
//
// AWE assumes a lumped, linear circuit whose MNA matrix is nonsingular
// and whose response has well-defined moments (PAPER.md Sections 2-3).
// Every violated assumption -- floating islands, voltage-source/inductor
// loops, current-source/capacitor cutsets, nonphysical element values,
// broken controlled-source references -- is otherwise discovered deep
// inside the LU factorization or the Pade step, where the only artifacts
// left are matrix indices.  This library checks the *circuit graph*
// before any matrix is assembled, so problems surface as typed
// core::Diagnostics carrying element names, node names, and (for
// netlist-derived circuits) exact file:line:column source locations.
//
// The rule pipeline, in deterministic emit order:
//   1. values       negative/zero/NaN/Inf R, C, L (Error); gains that are
//                   non-finite (Error); unit-scale outliers (Warning);
//                   duplicate element names and self-shorts (Error).
//   2. dependency   CCCS/CCVS referencing a missing or non-V/L control
//                   element (Error); VCVS/VCCS sensing a node no element
//                   touches (Error); controlled-source dependency cycles
//                   (Warning).
//   3. connectivity union-find over all element edges: node groups with
//                   no path to ground at all (FloatingIsland -- Error if
//                   the island contains an independent source, Warning
//                   otherwise); registered-but-unused nodes (Warning).
//   4. topology     spanning-forest loop/cutset analysis: loops made of
//                   only voltage-defined branches (V/L/E/H -- Error: the
//                   MNA matrix is structurally singular) and groups
//                   reachable from ground only through current-defined
//                   branches (I/C/F/G): an Error when an independent
//                   current source feeds them, the classic gmin-rescued
//                   FloatingNodes Warning otherwise.
//   5. structure    RC-tree / RC-mesh / RLC / general classification
//                   (TopologyClass below), the structural precondition
//                   under which first-order AWE reduces exactly to the
//                   Elmore/Penfield-Rubinstein bound (PAPER.md Section 5).
//
// The checker is pure graph analysis -- union-find plus one BFS per
// reported loop -- so it is O(elements * alpha) and cheap enough to run
// as a cached pre-flight in front of every timing stage (see
// timing/analyzer.cpp and EngineOptions::preflight_lint).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "check/partition.h"
#include "circuit/circuit.h"
#include "core/diagnostic.h"

namespace awesim::check {

struct LintOptions {
  /// Unit-scale plausibility windows (inclusive).  Values outside emit
  /// SuspiciousValue warnings -- wide enough that any physical on-chip,
  /// package, or board value passes; a femto-ohm resistor or a
  /// kilofarad capacitor is almost always a forgotten suffix.
  double resistor_min_ohms = 1e-6;
  double resistor_max_ohms = 1e12;
  double capacitor_min_farads = 1e-21;
  double capacitor_max_farads = 1e-2;
  double inductor_min_henries = 1e-15;
  double inductor_max_henries = 1e2;

  /// Emit the Info-severity TopologyNote record describing the
  /// structure classification (the classification itself always runs).
  bool classify_note = true;
};

/// Everything one lint pass found.  `diagnostics` is in deterministic
/// rule-pipeline order; errors/warnings are severity tallies over it.
struct LintReport {
  core::Diagnostics diagnostics;
  TopologyClass topology = TopologyClass::Empty;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  /// True when analysis can proceed (no Error-severity findings).
  bool ok() const { return errors == 0; }
};

/// Run the full rule pipeline over an assembled circuit.  Never throws;
/// a structurally hopeless circuit simply yields Error diagnostics.
/// Traced under the obs phase "check.lint".
LintReport lint(const circuit::Circuit& ckt,
                const LintOptions& options = {});

/// Lint netlist text: parse (collecting every parse error, with the
/// final validate gate skipped so electrically unsound circuits still
/// reach the rule pipeline), then lint the built circuit.  Parse
/// diagnostics come first in the report, rule diagnostics after.
LintReport lint_text(std::string_view text,
                     const std::string& filename = "",
                     const LintOptions& options = {});

/// File variant of lint_text.  An unreadable file yields a single
/// Error-severity ParseError diagnostic.
LintReport lint_file(const std::string& path,
                     const LintOptions& options = {});

}  // namespace awesim::check
