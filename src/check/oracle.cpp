#include "check/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace awesim::check {

namespace {

bool is_ground(const std::string& name) {
  return name == "0" || name == "gnd" || name == "GND";
}

int clamp_order(int q) { return std::max(1, std::min(6, q)); }

std::string describe(const ConditioningEstimate& est, int target_order) {
  std::ostringstream out;
  if (!est.rc_tree) {
    out << "non-tree/RLC content; coarse lumped estimate only";
  } else {
    out << "tau spread " << est.spread << " over " << est.tau_count
        << " time constants";
  }
  out << "; safe order window [" << est.min_safe_order << ", "
      << est.max_safe_order << "]";
  if (est.hazard) {
    out << "; requested order " << target_order << " is outside it";
    if (target_order > est.max_safe_order) {
      out << " (Hankel condition ~"
          << hankel_condition(est.spread, target_order)
          << "; lower the order or downgrade the delay model)";
    } else {
      out << " (nonequilibrium initial conditions make the q=1 Elmore "
             "member unreliable; request order >= "
          << est.min_safe_order << ")";
    }
  }
  return out.str();
}

}  // namespace

double hankel_condition(double spread, int order) {
  if (spread <= 1.0 || order <= 1) return 1.0;
  const double digits = 2.0 * (order - 1) * std::log10(spread);
  if (digits > 300.0) return 1e300;
  return std::pow(10.0, digits);
}

ConditioningEstimate assess(const OracleInput& input,
                            const OracleOptions& options) {
  ConditioningEstimate est;
  est.nonequilibrium_ic = input.nonequilibrium_ic;

  // Node table: ground pinned at 0, others in first-appearance order.
  // Hashed with string_view keys into the caller's element strings (the
  // input outlives this call), and interned in ONE pass that caches the
  // dense ids per element -- on kilo-node nets the repeated ordered-map
  // probes were the whole cost of the audit's conditioning tier.
  std::unordered_map<std::string_view, int> ids;
  ids.reserve(input.elements.size() + 1);
  const auto intern = [&](const std::string& name) {
    if (is_ground(name)) return 0;
    const auto [it, inserted] =
        ids.try_emplace(std::string_view(name),
                        static_cast<int>(ids.size()) + 1);
    return it->second;
  };

  bool has_inductor = false;
  double sum_r = 0.0, sum_c = 0.0;
  std::vector<std::pair<int, int>> ends;
  ends.reserve(input.elements.size());
  for (const OracleElement& e : input.elements) {
    ends.emplace_back(intern(e.node_a), intern(e.node_b));
    switch (e.kind) {
      case OracleElement::Kind::Resistor: sum_r += e.value; break;
      case OracleElement::Kind::Capacitor: sum_c += e.value; break;
      case OracleElement::Kind::Inductor: has_inductor = true; break;
    }
  }
  const int source_id =
      input.source.empty() || is_ground(input.source) ? -1
                                                      : intern(input.source);
  const std::size_t n = ids.size() + 1;

  // Per-node grounded capacitance (coupling caps count on both plates:
  // the Elmore walk treats them as grounded, a deliberate overestimate).
  std::vector<double> cap(n, 0.0);
  // Resistive adjacency; edges touching ground are never traversed
  // (ground is a potential sink, not a tree branch).
  std::vector<std::vector<std::pair<int, double>>> adj(n);
  for (std::size_t i = 0; i < input.elements.size(); ++i) {
    const OracleElement& e = input.elements[i];
    const auto [a, b] = ends[i];
    if (e.kind == OracleElement::Kind::Capacitor) {
      if (a != 0) cap[static_cast<std::size_t>(a)] += e.value;
      if (b != 0) cap[static_cast<std::size_t>(b)] += e.value;
    } else if (e.kind == OracleElement::Kind::Resistor) {
      if (a != 0 && b != 0 && e.value > 0.0 && std::isfinite(e.value)) {
        adj[static_cast<std::size_t>(a)].push_back({b, e.value});
        adj[static_cast<std::size_t>(b)].push_back({a, e.value});
      }
    }
  }

  const int source = source_id;

  bool tree = source > 0 && !has_inductor;
  std::vector<int> parent(n, -1);
  std::vector<double> edge_r(n, 0.0), r_path(n, 0.0);
  std::vector<int> order;  // BFS order, source first
  if (tree) {
    std::vector<char> seen(n, 0);
    seen[static_cast<std::size_t>(source)] = 1;
    order.push_back(source);
    for (std::size_t head = 0; head < order.size() && tree; ++head) {
      const int u = order[head];
      for (const auto& [v, r] : adj[static_cast<std::size_t>(u)]) {
        if (v == parent[static_cast<std::size_t>(u)]) continue;
        if (seen[static_cast<std::size_t>(v)]) {
          tree = false;  // resistive loop: a mesh, taus are not exact
          break;
        }
        seen[static_cast<std::size_t>(v)] = 1;
        parent[static_cast<std::size_t>(v)] = u;
        edge_r[static_cast<std::size_t>(v)] = r;
        r_path[static_cast<std::size_t>(v)] =
            r_path[static_cast<std::size_t>(u)] + r;
        order.push_back(v);
      }
    }
  }

  if (tree) {
    est.rc_tree = true;
    // Exact Elmore time constants: tau_i = R(source->i) * C_i.
    for (const int u : order) {
      const double tau = r_path[static_cast<std::size_t>(u)] *
                         cap[static_cast<std::size_t>(u)];
      if (tau > 0.0) {
        ++est.tau_count;
        est.tau_min = est.tau_min == 0.0 ? tau : std::min(est.tau_min, tau);
        est.tau_max = std::max(est.tau_max, tau);
      }
    }
    if (est.tau_count >= 2 && est.tau_min > 0.0) {
      est.spread = est.tau_max / est.tau_min;
    }

    // First three tree moments, O(n) each: cap currents I_j = C_j *
    // m_{k-1}(j) accumulate into subtree sums S_i (children before
    // parents in reverse BFS order), and m_k(i) = m_k(parent) -
    // R_edge(i) * S_i with m_k(source) = 0 (ideal source).
    std::vector<double> m_prev(n, 1.0), m_cur(n, 0.0), subtree(n, 0.0);
    std::vector<double> m1(n, 0.0), m2(n, 0.0), m3(n, 0.0);
    for (int k = 1; k <= 3; ++k) {
      std::fill(subtree.begin(), subtree.end(), 0.0);
      for (std::size_t i = order.size(); i-- > 0;) {
        const int u = order[i];
        subtree[static_cast<std::size_t>(u)] +=
            cap[static_cast<std::size_t>(u)] *
            m_prev[static_cast<std::size_t>(u)];
        const int p = parent[static_cast<std::size_t>(u)];
        if (p >= 0) {
          subtree[static_cast<std::size_t>(p)] +=
              subtree[static_cast<std::size_t>(u)];
        }
      }
      for (const int u : order) {
        const int p = parent[static_cast<std::size_t>(u)];
        m_cur[static_cast<std::size_t>(u)] =
            (p >= 0 ? m_cur[static_cast<std::size_t>(p)] : 0.0) -
            edge_r[static_cast<std::size_t>(u)] *
                subtree[static_cast<std::size_t>(u)];
      }
      for (const int u : order) {
        const auto ui = static_cast<std::size_t>(u);
        (k == 1 ? m1[ui] : k == 2 ? m2[ui] : m3[ui]) = m_cur[ui];
      }
      m_prev = m_cur;
    }
    std::size_t worst = static_cast<std::size_t>(source);
    for (const int u : order) {
      if (std::abs(m1[static_cast<std::size_t>(u)]) > std::abs(m1[worst])) {
        worst = static_cast<std::size_t>(u);
      }
    }
    est.elmore_delay = std::abs(m1[worst]);
    if (m2[worst] != 0.0) {
      est.moment_ratio = std::abs(m1[worst] * m3[worst]) /
                         (m2[worst] * m2[worst]);
    }
  } else {
    // Coarse lumped estimate: one time constant, no spread signal.
    est.rc_tree = false;
    est.elmore_delay = sum_r * sum_c;
    for (std::size_t i = 1; i < n; ++i) {
      if (cap[i] > 0.0) ++est.tau_count;
    }
  }

  est.max_safe_order =
      est.spread <= 1.0
          ? 6
          : clamp_order(1 + static_cast<int>(std::floor(
                                options.digits /
                                (2.0 * std::log10(est.spread)))));
  est.min_safe_order =
      est.nonequilibrium_ic && est.tau_count >= 2 ? 2 : 1;
  est.hazard = options.target_order > est.max_safe_order ||
               options.target_order < est.min_safe_order;
  est.detail = describe(est, options.target_order);
  return est;
}

ConditioningEstimate assess_circuit(const circuit::Circuit& circuit,
                                    const OracleOptions& options) {
  OracleInput input;
  for (const circuit::Element& e : circuit.elements()) {
    OracleElement oe;
    switch (e.kind) {
      case circuit::ElementKind::Resistor:
        oe.kind = OracleElement::Kind::Resistor;
        break;
      case circuit::ElementKind::Capacitor:
        oe.kind = OracleElement::Kind::Capacitor;
        break;
      case circuit::ElementKind::Inductor:
        oe.kind = OracleElement::Kind::Inductor;
        break;
      case circuit::ElementKind::VoltageSource:
      case circuit::ElementKind::CurrentSource:
        if (input.source.empty()) {
          const circuit::NodeId anchor =
              e.pos != circuit::kGround ? e.pos : e.neg;
          if (anchor != circuit::kGround) {
            input.source = circuit.node_name(anchor);
          }
        }
        continue;
      default:
        continue;  // controlled sources: conditioning is not tau-driven
    }
    oe.node_a = circuit.node_name(e.pos);
    oe.node_b = circuit.node_name(e.neg);
    oe.value = e.value;
    if (e.initial_condition.has_value() && *e.initial_condition != 0.0) {
      input.nonequilibrium_ic = true;
    }
    input.elements.push_back(std::move(oe));
  }
  for (const auto& [node, volts] : circuit.initial_node_voltages()) {
    (void)node;
    if (volts != 0.0) input.nonequilibrium_ic = true;
  }
  if (input.source.empty()) {
    ConditioningEstimate est;
    est.detail = "no independent source; nothing to assess";
    return est;
  }
  return assess(input, options);
}

}  // namespace awesim::check
