#include "check/partition.h"

namespace awesim::check {

const char* to_string(TopologyClass topology) {
  switch (topology) {
    case TopologyClass::Empty: return "empty";
    case TopologyClass::RcTree: return "rc-tree";
    case TopologyClass::RcMesh: return "rc-mesh";
    case TopologyClass::Rlc: return "rlc";
    case TopologyClass::General: return "general";
  }
  return "unknown";
}

TopologyClass classify_edges(std::size_t node_count,
                             const std::vector<Edge>& edges) {
  if (edges.empty()) return TopologyClass::Empty;
  UnionFind uf(node_count);
  bool has_other = false;
  bool has_inductive = false;
  bool caps_grounded = true;
  bool resistive_loop = false;
  for (const Edge& e : edges) {
    switch (e.kind) {
      case Edge::Kind::Resistive:
        if (e.a != e.b && !uf.unite(e.a, e.b)) resistive_loop = true;
        break;
      case Edge::Kind::Capacitive:
        if (e.a != 0 && e.b != 0) caps_grounded = false;
        break;
      case Edge::Kind::Inductive:
        has_inductive = true;
        break;
      case Edge::Kind::Other:
        has_other = true;
        break;
    }
  }
  if (has_other) return TopologyClass::General;
  if (has_inductive) return TopologyClass::Rlc;
  return (caps_grounded && !resistive_loop) ? TopologyClass::RcTree
                                            : TopologyClass::RcMesh;
}

}  // namespace awesim::check
