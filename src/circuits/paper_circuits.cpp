#include "circuits/paper_circuits.h"

namespace awesim::circuits {

using circuit::Circuit;
using circuit::kGround;
using circuit::Stimulus;

namespace {

Stimulus make_input(const Drive& drive) {
  return drive.rise_time > 0.0
             ? Stimulus::ramp_step(drive.v0, drive.v1, drive.rise_time)
             : Stimulus::step(drive.v0, drive.v1);
}

}  // namespace

circuit::Circuit fig4_rc_tree(const Drive& drive) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto n1 = ckt.node("n1");
  const auto n2 = ckt.node("n2");
  const auto n3 = ckt.node("n3");
  const auto n4 = ckt.node("n4");
  ckt.add_vsource("Vin", in, kGround, make_input(drive));
  ckt.add_resistor("R1", in, n1, 1e3);
  ckt.add_resistor("R2", n1, n2, 1e3);
  ckt.add_resistor("R3", n1, n3, 1e3);
  ckt.add_resistor("R4", n3, n4, 1e3);
  ckt.add_capacitor("C1", n1, kGround, 50e-9);
  ckt.add_capacitor("C2", n2, kGround, 50e-9);
  ckt.add_capacitor("C3", n3, kGround, 100e-9);
  ckt.add_capacitor("C4", n4, kGround, 100e-9);
  return ckt;
}

circuit::Circuit fig9_grounded_resistor(const Drive& drive) {
  Circuit ckt = fig4_rc_tree(drive);
  ckt.add_resistor("R5", ckt.find_node("n4"), kGround, 4e3);
  return ckt;
}

circuit::Circuit fig16_mos_interconnect(const Drive& drive,
                                        double c6_initial_voltage) {
  // Main trunk in -> n1 .. n7 (output), with two side branches (n3 -> n8
  // -> n9 and n5 -> n10) for tree shape.  Values span ~3.5 decades of RC
  // product: the stiffness Table I demonstrates (dominant pole ~ -1.8e9,
  // fastest ~ -1e13).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto n1 = ckt.node("n1");
  const auto n2 = ckt.node("n2");
  const auto n3 = ckt.node("n3");
  const auto n4 = ckt.node("n4");
  const auto n5 = ckt.node("n5");
  const auto n6 = ckt.node("n6");
  const auto n7 = ckt.node("n7");
  const auto n8 = ckt.node("n8");
  const auto n9 = ckt.node("n9");
  const auto n10 = ckt.node("n10");
  ckt.add_vsource("Vin", in, kGround, make_input(drive));
  ckt.add_resistor("R1", in, n1, 150.0);
  ckt.add_resistor("R2", n1, n2, 300.0);
  ckt.add_resistor("R3", n2, n3, 200.0);
  ckt.add_resistor("R4", n3, n4, 400.0);
  ckt.add_resistor("R5", n4, n5, 150.0);
  ckt.add_resistor("R6", n5, n6, 500.0);
  ckt.add_resistor("R7", n6, n7, 300.0);
  ckt.add_resistor("R8", n3, n8, 50.0);
  ckt.add_resistor("R9", n8, n9, 1.5e3);
  ckt.add_resistor("R10", n5, n10, 2.5e3);
  ckt.add_capacitor("C1", n1, kGround, 60e-15);
  ckt.add_capacitor("C2", n2, kGround, 120e-15);
  ckt.add_capacitor("C3", n3, kGround, 30e-15);
  ckt.add_capacitor("C4", n4, kGround, 250e-15);
  ckt.add_capacitor("C5", n5, kGround, 50e-15);
  ckt.add_capacitor("C6", n6, kGround, 180e-15,
                    c6_initial_voltage != 0.0
                        ? std::optional<double>(c6_initial_voltage)
                        : std::nullopt);
  ckt.add_capacitor("C7", n7, kGround, 120e-15);
  ckt.add_capacitor("C8", n8, kGround, 5e-15);
  ckt.add_capacitor("C9", n9, kGround, 25e-15);
  ckt.add_capacitor("C10", n10, kGround, 90e-15);
  return ckt;
}

circuit::Circuit fig22_floating_cap(const Drive& drive,
                                    double c6_initial_voltage) {
  Circuit ckt = fig16_mos_interconnect(drive, c6_initial_voltage);
  const auto n7 = ckt.find_node("n7");
  const auto n12 = ckt.node("n12");
  // Coupling capacitor from the output into the victim branch; the victim
  // holds C12 against a resistive leak to ground.
  ckt.add_capacitor("C11", n7, n12, 60e-15);
  ckt.add_capacitor("C12", n12, kGround, 120e-15);
  ckt.add_resistor("R12", n12, kGround, 10e3);
  return ckt;
}

circuit::Circuit fig25_rlc_ladder(const Drive& drive) {
  // Tapered 3-section ladder (decreasing L and C, small per-section wire
  // resistance): gives three under-damped complex pole pairs with the
  // paper's spread (ratios ~2.5-3.5x between pairs) and its order-by-order
  // error behaviour: q=1 useless, q=2 catches the first overshoot, q=4
  // plot-coincident (Fig. 26).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  ckt.add_vsource("Vin", in, kGround, make_input(drive));
  ckt.add_resistor("R1", in, a, 30.0);
  const double inductance[3] = {10e-9, 4e-9, 1.6e-9};
  const double capacitance[3] = {2e-12, 0.8e-12, 0.32e-12};
  const double wire_r[3] = {6.0, 4.0, 2.0};
  auto prev = a;
  for (int k = 0; k < 3; ++k) {
    const auto bk = ckt.node("b" + std::to_string(k + 1));
    const auto nk = ckt.node("n" + std::to_string(k + 1));
    ckt.add_inductor("L" + std::to_string(k + 1), prev, bk, inductance[k]);
    ckt.add_resistor("Rw" + std::to_string(k + 1), bk, nk, wire_r[k]);
    ckt.add_capacitor("C" + std::to_string(k + 1), nk, kGround,
                      capacitance[k]);
    prev = nk;
  }
  return ckt;
}

circuit::Circuit rc_line(std::size_t sections, double r_total,
                         double c_total, const Drive& drive) {
  if (sections == 0) {
    throw std::invalid_argument("rc_line: sections >= 1");
  }
  Circuit ckt;
  const double r = r_total / static_cast<double>(sections);
  const double c = c_total / static_cast<double>(sections);
  auto prev = ckt.node("in");
  ckt.add_vsource("Vin", prev, kGround, make_input(drive));
  for (std::size_t i = 1; i <= sections; ++i) {
    const auto next = ckt.node("n" + std::to_string(i));
    ckt.add_resistor("R" + std::to_string(i), prev, next, r);
    ckt.add_capacitor("C" + std::to_string(i), next, kGround, c);
    prev = next;
  }
  return ckt;
}

}  // namespace awesim::circuits
