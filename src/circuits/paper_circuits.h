// The example circuits of the paper's Sections IV and V, used by the test
// suite and by every benchmark that regenerates a table or figure.
//
// The scanned paper does not give legible element values, so the values
// here were chosen to reproduce every *reported characteristic* (see
// DESIGN.md, "Substitutions"):
//
//   * fig4:  4-node RC tree with the eq. 50 Elmore topology; values give
//     T_D(n4) = 0.6 ms, so the first-order pole is -1/0.6ms = -1667 s^-1
//     (the paper's -1.667 per-ms pole, eq. 64) and the 1 ms-rise ramp
//     particular solution is v_p(t) = 5e3 t - 3.5 (eq. 63).
//   * fig9:  fig4 plus a grounded resistor at the output (the paper's
//     R5 = 4x the tree resistance scale), giving a steady state below the
//     5 V input (Section 4.2, Fig. 12).
//   * fig16: 10-capacitor stiff RC tree with widely varying time
//     constants: dominant pole near -1.8e9 rad/s, fastest poles beyond
//     1e13 (Table I's spread), output at C7, optional nonzero IC on C6.
//   * fig22: fig16 plus a floating coupling capacitor from the output to
//     a victim branch (C11 -> C12), Section 5.3.
//   * fig25: series-R, 3-section LC ladder with three underdamped complex
//     pole pairs in the 1e9..2e10 rad/s range (Table II).
#pragma once

#include "circuit/circuit.h"

namespace awesim::circuits {

/// Stimulus applied at the input of each circuit.
struct Drive {
  double v0 = 0.0;
  double v1 = 5.0;
  /// 0 = ideal step; > 0 = finite rise time (two-ramp superposition).
  double rise_time = 0.0;
};

/// Fig. 4 RC tree.  Nodes: "n1".."n4"; output of interest "n4" (at C4).
/// R1..R4 = 1 kOhm; C1 = C2 = 50 nF, C3 = C4 = 100 nF; Elmore(n4) = 0.6 ms.
circuit::Circuit fig4_rc_tree(const Drive& drive = {});

/// Fig. 9: fig4 with R5 = 4 kOhm from "n4" to ground.
circuit::Circuit fig9_grounded_resistor(const Drive& drive = {});

/// Fig. 16 stiff RC tree; output "n7".  Set c6_initial_voltage nonzero for
/// the Section 5.2 nonequilibrium-IC experiment (Figs. 20/21, Table I
/// right half).
circuit::Circuit fig16_mos_interconnect(const Drive& drive = {},
                                        double c6_initial_voltage = 0.0);

/// Fig. 22: fig16 plus floating C11 from "n7" to victim "n12"
/// (C12 to ground, R12 leak to ground).
circuit::Circuit fig22_floating_cap(const Drive& drive = {},
                                    double c6_initial_voltage = 0.0);

/// Fig. 25 underdamped RLC ladder; output "n3".  Three complex pole pairs
/// near (-1.7e9 +- 5.2e9j), (-5.8e8 +- 1.9e10j), (-6.2e8 +- 5.3e10j).
circuit::Circuit fig25_rlc_ladder(const Drive& drive = {});

/// A uniform N-section RC transmission-line model (for the Section I
/// "1000x faster than SPICE" speed claim and scaling ablations):
/// R_total and C_total are split evenly over the sections; output at the
/// far end, node "n<sections>".
circuit::Circuit rc_line(std::size_t sections, double r_total,
                         double c_total, const Drive& drive = {});

}  // namespace awesim::circuits
