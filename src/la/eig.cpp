#include "la/eig.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace awesim::la {

namespace {

// Balance a matrix in place: similarity-scale rows/columns by powers of 2
// so row and column norms are comparable.  Greatly improves the accuracy of
// the subsequent QR iteration for badly scaled circuit matrices (element
// values in a netlist span 1e-15 F to 1e3 Ohm).
void balance(RealMatrix& a) {
  const std::size_t n = a.rows();
  constexpr double kRadix = 2.0;
  constexpr double kRadixSq = kRadix * kRadix;
  bool done = false;
  while (!done) {
    done = true;
    for (std::size_t i = 0; i < n; ++i) {
      double r = 0.0;
      double c = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        c += std::abs(a(j, i));
        r += std::abs(a(i, j));
      }
      if (c == 0.0 || r == 0.0) continue;
      double g = r / kRadix;
      double f = 1.0;
      const double s = c + r;
      while (c < g) {
        f *= kRadix;
        c *= kRadixSq;
      }
      g = r * kRadix;
      while (c > g) {
        f /= kRadix;
        c /= kRadixSq;
      }
      if ((c + r) / f < 0.95 * s) {
        done = false;
        const double inv_f = 1.0 / f;
        for (std::size_t j = 0; j < n; ++j) a(i, j) *= inv_f;
        for (std::size_t j = 0; j < n; ++j) a(j, i) *= f;
      }
    }
  }
}

// Reduce to upper Hessenberg form by stabilized elementary similarity
// transformations (Gaussian elimination with pivoting); eigenvalues are
// preserved.
void hessenberg(RealMatrix& a) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  for (std::size_t m = 1; m + 1 < n; ++m) {
    // Find pivot in column m-1, rows m..n-1.
    double best = 0.0;
    std::size_t pivot = m;
    for (std::size_t i = m; i < n; ++i) {
      const double mag = std::abs(a(i, m - 1));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (pivot != m) {
      for (std::size_t j = m - 1; j < n; ++j) std::swap(a(pivot, j), a(m, j));
      for (std::size_t j = 0; j < n; ++j) std::swap(a(j, pivot), a(j, m));
    }
    const double x = a(m, m - 1);
    if (x == 0.0) continue;
    for (std::size_t i = m + 1; i < n; ++i) {
      double y = a(i, m - 1);
      if (y == 0.0) continue;
      y /= x;
      a(i, m - 1) = y;
      for (std::size_t j = m; j < n; ++j) a(i, j) -= y * a(m, j);
      for (std::size_t j = 0; j < n; ++j) a(j, m) += y * a(j, i);
    }
  }
  // Zero out the below-subdiagonal entries (they hold multipliers).
  for (std::size_t i = 2; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) a(i, j) = 0.0;
  }
}

// Francis double-shift QR iteration on an upper Hessenberg matrix;
// returns all eigenvalues.  This is the classical hqr algorithm.
ComplexVector hqr(RealMatrix& a) {
  const std::size_t size_n = a.rows();
  ComplexVector eig;
  eig.reserve(size_n);

  double anorm = 0.0;
  for (std::size_t i = 0; i < size_n; ++i) {
    for (std::size_t j = (i == 0 ? 0 : i - 1); j < size_n; ++j) {
      anorm += std::abs(a(i, j));
    }
  }
  if (anorm == 0.0) {
    eig.assign(size_n, Complex{0.0, 0.0});
    return eig;
  }

  int nn = static_cast<int>(size_n) - 1;
  double t = 0.0;
  while (nn >= 0) {
    int its = 0;
    int l = 0;
    do {
      // Look for a single small subdiagonal element.
      for (l = nn; l >= 1; --l) {
        const double s = std::abs(a(l - 1, l - 1)) + std::abs(a(l, l));
        const double scale_s = (s == 0.0) ? anorm : s;
        if (std::abs(a(l, l - 1)) <= 1e-15 * scale_s) {
          a(l, l - 1) = 0.0;
          break;
        }
      }
      double x = a(nn, nn);
      if (l == nn) {
        // One real root found.
        eig.emplace_back(x + t, 0.0);
        --nn;
      } else {
        double y = a(nn - 1, nn - 1);
        double w = a(nn, nn - 1) * a(nn - 1, nn);
        if (l == nn - 1) {
          // Two roots found (real pair or complex conjugates).
          double p = 0.5 * (y - x);
          double q = p * p + w;
          double z = std::sqrt(std::abs(q));
          x += t;
          if (q >= 0.0) {
            z = p + (p >= 0.0 ? z : -z);
            eig.emplace_back(x + z, 0.0);
            eig.emplace_back(z != 0.0 ? x - w / z : x + z, 0.0);
          } else {
            eig.emplace_back(x + p, z);
            eig.emplace_back(x + p, -z);
          }
          nn -= 2;
        } else {
          // No roots yet: QR step.
          if (its == 30 * static_cast<int>(size_n)) {
            throw std::runtime_error("eigenvalues: QR iteration stalled");
          }
          double p = 0.0, q = 0.0, z = 0.0, r = 0.0, s = 0.0;
          if (its == 10 || its == 20) {
            // Exceptional shift.
            t += x;
            for (int i = 0; i <= nn; ++i) a(i, i) -= x;
            s = std::abs(a(nn, nn - 1)) + std::abs(a(nn - 1, nn - 2));
            x = y = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++its;
          int m = 0;
          for (m = nn - 2; m >= l; --m) {
            z = a(m, m);
            r = x - z;
            s = y - z;
            p = (r * s - w) / a(m + 1, m) + a(m, m + 1);
            q = a(m + 1, m + 1) - z - r - s;
            r = a(m + 2, m + 1);
            s = std::abs(p) + std::abs(q) + std::abs(r);
            p /= s;
            q /= s;
            r /= s;
            if (m == l) break;
            const double u =
                std::abs(a(m, m - 1)) * (std::abs(q) + std::abs(r));
            const double v =
                std::abs(p) * (std::abs(a(m - 1, m - 1)) + std::abs(z) +
                               std::abs(a(m + 1, m + 1)));
            if (u <= 1e-15 * v) break;
          }
          for (int i = m + 2; i <= nn; ++i) {
            a(i, i - 2) = 0.0;
            if (i != m + 2) a(i, i - 3) = 0.0;
          }
          for (int k = m; k <= nn - 1; ++k) {
            if (k != m) {
              p = a(k, k - 1);
              q = a(k + 1, k - 1);
              r = (k != nn - 1) ? a(k + 2, k - 1) : 0.0;
              x = std::abs(p) + std::abs(q) + std::abs(r);
              if (x != 0.0) {
                p /= x;
                q /= x;
                r /= x;
              }
            }
            s = std::sqrt(p * p + q * q + r * r);
            if (p < 0.0) s = -s;
            if (s == 0.0) continue;
            if (k == m) {
              if (l != m) a(k, k - 1) = -a(k, k - 1);
            } else {
              a(k, k - 1) = -s * x;
            }
            p += s;
            x = p / s;
            y = q / s;
            z = r / s;
            q /= p;
            r /= p;
            // Row modification.
            for (int j = k; j <= nn; ++j) {
              p = a(k, j) + q * a(k + 1, j);
              if (k != nn - 1) {
                p += r * a(k + 2, j);
                a(k + 2, j) -= p * z;
              }
              a(k + 1, j) -= p * y;
              a(k, j) -= p * x;
            }
            const int mmin = (nn < k + 3) ? nn : k + 3;
            // Column modification.
            for (int i = l; i <= mmin; ++i) {
              p = x * a(i, k) + y * a(i, k + 1);
              if (k != nn - 1) {
                p += z * a(i, k + 2);
                a(i, k + 2) -= p * r;
              }
              a(i, k + 1) -= p * q;
              a(i, k) -= p;
            }
          }
        }
      }
    } while (l < nn - 1 && nn >= 0);
  }
  return eig;
}

}  // namespace

ComplexVector eigenvalues(const RealMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigenvalues: matrix must be square");
  }
  if (a.rows() == 0) return {};
  if (a.rows() == 1) return {Complex{a(0, 0), 0.0}};
  RealMatrix work = a;
  balance(work);
  hessenberg(work);
  return hqr(work);
}

ComplexVector eigenvalues_by_magnitude(const RealMatrix& a) {
  ComplexVector eig = eigenvalues(a);
  std::sort(eig.begin(), eig.end(), [](const Complex& x, const Complex& y) {
    const double ax = std::abs(x);
    const double ay = std::abs(y);
    if (ax != ay) return ax < ay;
    return x.imag() < y.imag();
  });
  return eig;
}

}  // namespace awesim::la
