// Dense matrix / vector types used throughout AWEsim.
//
// The circuits AWE targets are small-to-medium (interconnect stages of tens
// to a few thousands of nodes), and moment generation needs exactly one LU
// factorization followed by repeated substitutions, so a straightforward
// dense row-major matrix is the right substrate: simple, cache-friendly at
// these sizes, and trivially correct.
#pragma once

#include <cassert>
#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace awesim::la {

using Complex = std::complex<double>;

/// Dense, row-major matrix over scalar T (double or std::complex<double>).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// Build from nested initializer lists: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_) {
        throw std::invalid_argument("Matrix: ragged initializer list");
      }
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (row-major storage); valid for cols() elements.
  T* row(std::size_t r) { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix& operator+=(const Matrix& rhs) {
    check_same_shape(rhs);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& rhs) {
    check_same_shape(rhs);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  /// Matrix product; O(n^3) triple loop, adequate at AWE problem sizes.
  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) {
      throw std::invalid_argument("Matrix product: dimension mismatch");
    }
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        const T* brow = b.row(k);
        T* crow = c.row(i);
        for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
      }
    }
    return c;
  }

  /// Matrix-vector product.
  friend std::vector<T> operator*(const Matrix& a, const std::vector<T>& x) {
    if (a.cols() != x.size()) {
      throw std::invalid_argument("Matrix-vector product: dimension mismatch");
    }
    std::vector<T> y(a.rows(), T{});
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const T* arow = a.row(i);
      T acc{};
      for (std::size_t j = 0; j < a.cols(); ++j) acc += arow[j] * x[j];
      y[i] = acc;
    }
    return y;
  }

  Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// Maximum absolute row sum (induced infinity norm).
  double norm_inf() const {
    double best = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < cols_; ++j) s += std::abs((*this)(i, j));
      best = std::max(best, s);
    }
    return best;
  }

  /// Frobenius norm.
  double norm_fro() const {
    double s = 0.0;
    for (const auto& v : data_) s += std::norm(Complex(v));
    return std::sqrt(s);
  }

  bool operator==(const Matrix& rhs) const {
    return rows_ == rhs.rows_ && cols_ == rhs.cols_ && data_ == rhs.data_;
  }

 private:
  void check_same_shape(const Matrix& rhs) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
      throw std::invalid_argument("Matrix: shape mismatch");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<Complex>;
using RealVector = std::vector<double>;
using ComplexVector = std::vector<Complex>;

/// Euclidean norm of a vector.
template <typename T>
double norm2(const std::vector<T>& v) {
  double s = 0.0;
  for (const auto& x : v) s += std::norm(Complex(x));
  return std::sqrt(s);
}

/// Infinity norm of a vector.
template <typename T>
double norm_inf(const std::vector<T>& v) {
  double best = 0.0;
  for (const auto& x : v) best = std::max(best, std::abs(x));
  return best;
}

/// a - b, elementwise.
template <typename T>
std::vector<T> subtract(const std::vector<T>& a, const std::vector<T>& b) {
  assert(a.size() == b.size());
  std::vector<T> r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

/// a + b, elementwise.
template <typename T>
std::vector<T> add(const std::vector<T>& a, const std::vector<T>& b) {
  assert(a.size() == b.size());
  std::vector<T> r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

/// s * v, elementwise.
template <typename T, typename S>
std::vector<T> scale(S s, std::vector<T> v) {
  for (auto& x : v) x *= s;
  return v;
}

}  // namespace awesim::la
