// Eigenvalues of real, nonsymmetric matrices.
//
// Used for two jobs in AWEsim:
//   1. the *actual* circuit poles (Tables I and II of the paper): the
//      nonzero eigenvalues mu of the moment-generating matrix M = G^{-1}C
//      give the natural frequencies p = -1/mu;
//   2. roots of the AWE characteristic polynomial (eq. 25), via its
//      companion matrix.
//
// The implementation is the classical dense pipeline: diagonal balancing,
// reduction to upper Hessenberg form by stabilized elementary similarity
// transformations, then the Francis double-shift QR iteration for the
// eigenvalues (real or complex-conjugate pairs).
#pragma once

#include <vector>

#include "la/matrix.h"

namespace awesim::la {

/// All eigenvalues of a real square matrix, in no particular order.
/// Complex eigenvalues appear as conjugate pairs.
/// Throws std::runtime_error if the QR iteration fails to converge
/// (pathological inputs only) and std::invalid_argument for non-square
/// input.
ComplexVector eigenvalues(const RealMatrix& a);

/// Eigenvalues sorted by ascending magnitude (handy for "dominant pole
/// first" displays once mapped through p = -1/mu).
ComplexVector eigenvalues_by_magnitude(const RealMatrix& a);

}  // namespace awesim::la
