// Real-coefficient polynomial utilities.
//
// AWE needs the roots of the characteristic polynomial (eq. 25)
//   a0 + a1*x + ... + a_{q-1}*x^{q-1} + x^q = 0,
// whose roots are the *reciprocals* of the approximating poles.  Orders are
// small (q <= ~8 in practice), so we use the companion-matrix eigenvalue
// route, followed by a few Newton polish steps on each root for full
// accuracy.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace awesim::la {

/// Value of the polynomial sum_k coeffs[k] * x^k at complex x (Horner).
Complex polyval(const RealVector& coeffs, Complex x);

/// Derivative coefficients of sum_k coeffs[k] * x^k.
RealVector polyder(const RealVector& coeffs);

/// All complex roots of sum_k coeffs[k] * x^k.
/// Leading zero coefficients are trimmed; exact zero roots from trailing
/// zero coefficients are deflated analytically.  Throws
/// std::invalid_argument for the zero polynomial or an empty coefficient
/// vector.
ComplexVector polyroots(const RealVector& coeffs);

/// Monic polynomial with the given roots; conjugate pairs must both be
/// present so that the product has (numerically) real coefficients.
/// Returns coefficients c with c.back() == 1.
RealVector poly_from_roots(const ComplexVector& roots);

}  // namespace awesim::la
