#include "la/lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/fault.h"

namespace awesim::la {

namespace {

// A pivot smaller than this times the largest element of its column is
// treated as numerically zero.
constexpr double kPivotTolerance = 1e-300;

}  // namespace

template <typename T>
Lu<T>::Lu(Matrix<T> a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("Lu: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  if (core::fault_at("la.lu", std::to_string(n))) {
    throw SingularMatrixError(0);
  }
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag <= kPivotTolerance) {
      throw SingularMatrixError(k);
    }
    if (pivot_row != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(pivot_row, j));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      perm_sign_ = -perm_sign_;
    }
    const T pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T mult = lu_(i, k) / pivot;
      lu_(i, k) = mult;
      if (mult == T{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= mult * lu_(k, j);
      }
    }
  }
}

template <typename T>
std::vector<T> Lu<T>::solve(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("Lu::solve: rhs size mismatch");
  }
  // Apply permutation, then forward substitution with unit-lower L.
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

template <typename T>
std::vector<std::vector<T>> Lu<T>::solve_multi(
    const std::vector<std::vector<T>>& bs) const {
  const std::size_t n = size();
  constexpr std::size_t kPanel = 8;
  // Panel scratch, column-major (column r at panel + r*n), reused across
  // panels and calls so the hot path never touches the allocator.
  static thread_local std::vector<T> arena;
  if (arena.size() < n * kPanel) arena.resize(n * kPanel);
  T* const panel = arena.data();

  std::vector<std::vector<T>> xs(bs.size());
  for (std::size_t b0 = 0; b0 < bs.size(); b0 += kPanel) {
    const std::size_t width = std::min(kPanel, bs.size() - b0);
    for (std::size_t r = 0; r < width; ++r) {
      const std::vector<T>& b = bs[b0 + r];
      if (b.size() != n) {
        throw std::invalid_argument("Lu::solve_multi: rhs size mismatch");
      }
      T* const col = panel + r * n;
      for (std::size_t i = 0; i < n; ++i) col[i] = b[perm_[i]];
    }
    // Forward with unit-lower L: each factor row is read once and
    // applied to every right-hand side in the panel.  The per-RHS
    // operation sequence matches solve() exactly.
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const T lij = lu_(i, j);
        for (std::size_t r = 0; r < width; ++r) {
          panel[r * n + i] -= lij * panel[r * n + j];
        }
      }
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      for (std::size_t j = ii + 1; j < n; ++j) {
        const T uij = lu_(ii, j);
        for (std::size_t r = 0; r < width; ++r) {
          panel[r * n + ii] -= uij * panel[r * n + j];
        }
      }
      const T diag = lu_(ii, ii);
      for (std::size_t r = 0; r < width; ++r) {
        panel[r * n + ii] = panel[r * n + ii] / diag;
      }
    }
    for (std::size_t r = 0; r < width; ++r) {
      xs[b0 + r].assign(panel + r * n, panel + (r + 1) * n);
    }
  }
  return xs;
}

template <typename T>
std::vector<T> Lu<T>::solve_transposed(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("Lu::solve_transposed: rhs size mismatch");
  }
  // A^T = U^T L^T P, so solve U^T y = b, L^T z = y, then x = P^T z.
  std::vector<T> y(b);
  for (std::size_t i = 0; i < n; ++i) {
    T acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
    y[i] = acc / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * y[j];
    y[ii] = acc;
  }
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
  return x;
}

template <typename T>
T Lu<T>::determinant() const {
  T det = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

template <typename T>
double Lu<T>::pivot_growth() const {
  double lo = std::abs(lu_(0, 0));
  double hi = lo;
  for (std::size_t i = 1; i < size(); ++i) {
    const double p = std::abs(lu_(i, i));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
}

template <typename T>
double Lu<T>::condition_estimate(double a_norm_inf) const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  // Power iteration on A^{-T} A^{-1} to estimate ||A^{-1}||_inf-ish growth;
  // a handful of sweeps is enough for an order-of-magnitude answer, which
  // is all the moment-matrix diagnostics need.
  std::vector<T> v(n, T{1.0 / static_cast<double>(n)});
  double est = 0.0;
  for (int sweep = 0; sweep < 4; ++sweep) {
    std::vector<T> w = solve(v);
    est = norm_inf(w);
    const double nrm = norm2(w);
    if (nrm == 0.0) break;
    for (auto& x : w) x /= nrm;
    v = solve_transposed(w);
    const double nv = norm2(v);
    if (nv == 0.0) break;
    for (auto& x : v) x /= nv;
  }
  return est * a_norm_inf;
}

template <typename T>
Matrix<T> inverse(const Matrix<T>& a) {
  Lu<T> lu(a);
  const std::size_t n = a.rows();
  Matrix<T> inv(n, n);
  std::vector<T> e(n, T{});
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = T{1};
    const std::vector<T> col = lu.solve(e);
    e[j] = T{};
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

template class Lu<double>;
template class Lu<Complex>;
template Matrix<double> inverse(const Matrix<double>&);
template Matrix<Complex> inverse(const Matrix<Complex>&);

}  // namespace awesim::la
