// LU factorization with partial pivoting, over double or complex<double>.
//
// AWE's computational core is one factorization of the MNA conductance
// matrix followed by 2q-1 forward/back substitutions (Section 3.2 of the
// paper: "once the H-matrix is LU-factored the major task in computing even
// higher moments is repeated forward- and back-substitution").  The
// factorization object is therefore kept around and re-applied.
#pragma once

#include <optional>
#include <stdexcept>
#include <vector>

#include "la/matrix.h"

namespace awesim::la {

/// Thrown when a factorization meets an exactly (or numerically) singular
/// pivot.  For circuit matrices this usually means a floating node or an
/// ill-posed topology (e.g. a loop of ideal voltage sources).
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot_index)
      : std::runtime_error("LU: singular pivot at index " +
                           std::to_string(pivot_index)),
        pivot_index_(pivot_index) {}

  /// Elimination step at which the zero pivot appeared.
  std::size_t pivot_index() const { return pivot_index_; }

 private:
  std::size_t pivot_index_;
};

/// LU factorization P*A = L*U with partial (row) pivoting.
template <typename T>
class Lu {
 public:
  /// Factor a square matrix.  Throws SingularMatrixError on a zero pivot,
  /// std::invalid_argument if the matrix is not square.
  explicit Lu(Matrix<T> a);

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.  b.size() must equal size().
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Batched solve with cache-blocked panels: the factor's rows are
  /// streamed once per panel of up to 8 right-hand sides instead of once
  /// per vector.  Per-RHS results are bitwise identical to solve() --
  /// the arithmetic order within each right-hand side is unchanged, only
  /// the traversal of the factor is shared.
  std::vector<std::vector<T>> solve_multi(
      const std::vector<std::vector<T>>& bs) const;

  /// Solve A^T x = b (useful for adjoint/sensitivity analyses).
  std::vector<T> solve_transposed(const std::vector<T>& b) const;

  /// Determinant of A (product of pivots, sign-corrected for permutations).
  T determinant() const;

  /// Lower bound estimate of the infinity-norm condition number, via a
  /// few rounds of the Hager/Higham-style power method on A^{-1}.
  double condition_estimate(double a_norm_inf) const;

  /// Ratio |largest pivot| / |smallest pivot|; a cheap conditioning proxy
  /// used by the AWE moment-matrix diagnostics.
  double pivot_growth() const;

 private:
  Matrix<T> lu_;               // combined L (unit diagonal) and U factors
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

using RealLu = Lu<double>;
using ComplexLu = Lu<Complex>;

/// Convenience one-shot solve of A x = b.
template <typename T>
std::vector<T> solve(const Matrix<T>& a, const std::vector<T>& b) {
  return Lu<T>(a).solve(b);
}

/// Dense inverse (used only in tests and small analyses).
template <typename T>
Matrix<T> inverse(const Matrix<T>& a);

extern template class Lu<double>;
extern template class Lu<Complex>;
extern template Matrix<double> inverse(const Matrix<double>&);
extern template Matrix<Complex> inverse(const Matrix<Complex>&);

}  // namespace awesim::la
