// Sparse matrix support for EDA-scale circuits.
//
// Interconnect MNA matrices are extremely sparse (a handful of entries per
// row), so beyond a few hundred nodes the dense LU path wastes both memory
// and time.  This module provides:
//
//   * SparseMatrix -- compressed-sparse-column storage built from
//     (row, col, value) triplets (duplicates summed, the natural output of
//     element stamping);
//   * SparseLu -- left-looking (Gilbert-Peierls) sparse LU with partial
//     pivoting and an optional reverse-Cuthill-McKee fill-reducing
//     pre-ordering, exactly the shape of solver AWE needs: factor G once,
//     then many forward/back substitutions for the moments.
#pragma once

#include <cstddef>
#include <vector>

#include "la/lu.h"  // SingularMatrixError
#include "la/matrix.h"

namespace awesim::la {

struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-column real matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build from triplets; duplicate (row, col) entries are summed.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    const std::vector<Triplet>& triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A x.
  RealVector apply(const RealVector& x) const;

  /// y = A^T x.
  RealVector apply_transposed(const RealVector& x) const;

  /// Dense copy (tests and small analyses only).
  RealMatrix to_dense() const;

  /// Column access for factorization: [col_start(j), col_start(j+1)) index
  /// into row_index()/values().
  const std::vector<std::size_t>& col_start() const { return col_start_; }
  const std::vector<std::size_t>& row_index() const { return row_index_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> col_start_;  // size cols+1
  std::vector<std::size_t> row_index_;  // size nnz
  std::vector<double> values_;          // size nnz
};

/// Fill-reducing orderings for SparseLu.
enum class Ordering {
  Natural,
  /// Reverse Cuthill-McKee on the symmetrized pattern; excellent for the
  /// chain/tree-like graphs of interconnect circuits.
  ReverseCuthillMcKee,
};

/// Sparse LU factorization P A Q = L U with partial (threshold = 1.0,
/// i.e. full partial) row pivoting; Q is the fill-reducing column
/// pre-ordering.  Left-looking Gilbert-Peierls algorithm: each column is a
/// sparse triangular solve whose nonzero pattern comes from a depth-first
/// reachability pass.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a,
                    Ordering ordering = Ordering::ReverseCuthillMcKee);

  std::size_t size() const { return n_; }

  /// Solve A x = b.
  RealVector solve(const RealVector& b) const;

  /// Batched solve with cache-blocked panels: the L/U column structure
  /// is streamed once per panel of up to 8 right-hand sides.  Per-RHS
  /// results are bitwise identical to solve() -- identical arithmetic
  /// order and the same zero-skip short-circuits per vector.
  std::vector<RealVector> solve_multi(const std::vector<RealVector>& bs) const;

  /// Fill-in diagnostics: nonzeros in L + U.
  std::size_t factor_nnz() const {
    return l_values_.size() + u_values_.size();
  }

 private:
  std::size_t n_ = 0;
  // L (unit diagonal implicit) and U in CSC, ordered by elimination.
  std::vector<std::size_t> l_start_, l_index_;
  std::vector<double> l_values_;
  std::vector<std::size_t> u_start_, u_index_;
  std::vector<double> u_values_;
  std::vector<std::size_t> row_perm_;  // pinv: original row -> pivot position
  std::vector<std::size_t> col_perm_;  // q: elimination order -> original col
};

/// Compute a reverse Cuthill-McKee ordering of the symmetrized pattern of
/// A (returns q with q[k] = original index at elimination position k).
std::vector<std::size_t> reverse_cuthill_mckee(const SparseMatrix& a);

}  // namespace awesim::la
