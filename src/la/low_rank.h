// Sherman-Morrison-Woodbury corrections on top of a frozen base solve.
//
// A LowRankSolver owns no factorization of its own.  It wraps a base
// solve x = A0^-1 b (typically a cached LU shared by many consumers) and
// accumulates rank-1 updates A = A0 + sum_j u_j v_j^T.  Solves go through
// the Woodbury identity
//
//     x = A^-1 b = x0 - Z (I + V^T Z)^-1 V^T x0,     x0 = A0^-1 b,
//
// where Z = A0^-1 U is computed column-by-column as updates arrive and
// the k-by-k capacitance matrix I + V^T Z is refactored (dense LU) on
// every accepted update -- k stays tiny (max_rank defaults to 8), so the
// refactorization is O(k^3) with k <= 8, never O(n^3).
//
// add_update() is allowed to REFUSE.  It returns false -- leaving the
// solver exactly as it was -- when accepting the update would make the
// correction numerically untrustworthy:
//
//   * the accumulated rank would exceed LowRankOptions::max_rank;
//   * the updated capacitance matrix is singular or its condition
//     estimate exceeds LowRankOptions::condition_threshold (the drift
//     watchdog: near-cancelling or wildly scaled updates inflate
//     kappa(I + V^T Z) long before the corrected solve goes visibly
//     wrong, so the threshold converts silent drift into an explicit
//     full-refactorization request);
//   * the fault-injection probe `la.lowrank` fires (tests use this to
//     prove callers really do fall back to a fresh factorization).
//
// A refusal is not an error: the caller factorizes A from scratch, which
// is always correct, and typically re-seeds a new LowRankSolver from the
// fresh factorization.  Updates with no effect on A (all-zero u or v)
// are accepted as rank-0 and consume no rank budget.
#ifndef AWESIM_LA_LOW_RANK_H
#define AWESIM_LA_LOW_RANK_H

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "la/lu.h"
#include "la/matrix.h"

namespace awesim::la {

/// One rank-1 term u v^T in sparse (index, value) form.  Indices are
/// 0-based rows/columns of the base matrix; duplicates accumulate.
struct RankOneUpdate {
  std::vector<std::pair<std::size_t, double>> u;
  std::vector<std::pair<std::size_t, double>> v;
};

struct LowRankOptions {
  /// Accumulated rank beyond which add_update() refuses and the caller
  /// must refactorize in full.
  std::size_t max_rank = 8;
  /// Condition-estimate ceiling for the k-by-k capacitance matrix
  /// I + V^T Z -- the drift watchdog.
  double condition_threshold = 1e8;
};

class LowRankSolver {
 public:
  using BaseSolve = std::function<RealVector(const RealVector&)>;
  using BaseSolveMulti =
      std::function<std::vector<RealVector>(const std::vector<RealVector>&)>;

  /// `base` must solve A0 x = b for the frozen base matrix; `base_multi`
  /// is the batched form (may simply loop over `base`).  Both must stay
  /// valid for the lifetime of this solver.
  LowRankSolver(std::size_t dim, BaseSolve base, BaseSolveMulti base_multi,
                LowRankOptions options = {});

  /// Accepts the update (returns true) or refuses it (returns false)
  /// leaving the solver untouched.  See the header comment for the
  /// refusal conditions.
  bool add_update(const RankOneUpdate& update);

  /// Woodbury-corrected solve of (A0 + U V^T) x = b.
  RealVector solve(const RealVector& b) const;

  /// Batched corrected solve; per-RHS results are bitwise identical to
  /// calling solve() on each vector alone.
  std::vector<RealVector> solve_multi(const std::vector<RealVector>& bs) const;

  /// Accumulated correction rank (rank-0 updates do not count).
  std::size_t rank() const { return z_.size(); }
  std::size_t size() const { return dim_; }

 private:
  /// Applies the -Z (I + V^T Z)^-1 V^T x0 correction to x in place.
  void correct(RealVector& x) const;

  std::size_t dim_;
  BaseSolve base_;
  BaseSolveMulti base_multi_;
  LowRankOptions options_;
  /// Columns of Z = A0^-1 U, dense, one per accepted rank-1 update.
  std::vector<RealVector> z_;
  /// Sparse v rows of the accepted updates, same order as z_.
  std::vector<std::vector<std::pair<std::size_t, double>>> v_;
  /// Dense LU of the k-by-k capacitance matrix I + V^T Z; rebuilt on
  /// every accepted update, shared so copies of the solver stay cheap.
  std::shared_ptr<const Lu<double>> cap_;
};

}  // namespace awesim::la

#endif  // AWESIM_LA_LOW_RANK_H
