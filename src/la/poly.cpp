#include "la/poly.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/eig.h"

namespace awesim::la {

Complex polyval(const RealVector& coeffs, Complex x) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

RealVector polyder(const RealVector& coeffs) {
  if (coeffs.size() <= 1) return {0.0};
  RealVector d(coeffs.size() - 1);
  for (std::size_t k = 1; k < coeffs.size(); ++k) {
    d[k - 1] = static_cast<double>(k) * coeffs[k];
  }
  return d;
}

namespace {

// A couple of Newton iterations per root; the companion-matrix values are
// already close, this just removes the O(eps*cond) fuzz.
Complex polish_root(const RealVector& coeffs, const RealVector& deriv,
                    Complex x) {
  double best_f = std::abs(polyval(coeffs, x));
  for (int it = 0; it < 8; ++it) {
    const Complex df = polyval(deriv, x);
    if (std::abs(df) == 0.0) break;
    const Complex step = polyval(coeffs, x) / df;
    // Near a multiple root both f and f' drown in rounding noise and the
    // quotient can be wild; accept a step only if it is modest and it
    // actually reduces |f|.
    if (std::abs(step) > 0.1 * (1.0 + std::abs(x))) break;
    const Complex candidate = x - step;
    const double f_candidate = std::abs(polyval(coeffs, candidate));
    if (f_candidate > best_f) break;
    x = candidate;
    best_f = f_candidate;
    if (std::abs(step) <= 1e-15 * std::abs(x)) break;
  }
  return x;
}

}  // namespace

ComplexVector polyroots(const RealVector& coeffs_in) {
  RealVector coeffs = coeffs_in;
  // Trim (numerically) zero leading coefficients.
  double maxc = 0.0;
  for (double c : coeffs) maxc = std::max(maxc, std::abs(c));
  if (coeffs.empty() || maxc == 0.0) {
    throw std::invalid_argument("polyroots: zero polynomial");
  }
  while (coeffs.size() > 1 && std::abs(coeffs.back()) <= 1e-14 * maxc) {
    coeffs.pop_back();
  }
  // Deflate exact zero roots (trailing zero constant coefficients).
  ComplexVector roots;
  std::size_t first_nonzero = 0;
  while (first_nonzero < coeffs.size() && coeffs[first_nonzero] == 0.0) {
    ++first_nonzero;
  }
  for (std::size_t i = 0; i < first_nonzero; ++i) roots.emplace_back(0.0, 0.0);
  coeffs.erase(coeffs.begin(),
               coeffs.begin() + static_cast<std::ptrdiff_t>(first_nonzero));

  const std::size_t degree = coeffs.size() - 1;
  if (degree == 0) return roots;
  if (degree == 1) {
    roots.emplace_back(-coeffs[0] / coeffs[1], 0.0);
    return roots;
  }
  if (degree == 2) {
    // Numerically stable quadratic formula.
    const double a = coeffs[2];
    const double b = coeffs[1];
    const double c = coeffs[0];
    const double disc = b * b - 4.0 * a * c;
    if (disc >= 0.0) {
      const double sq = std::sqrt(disc);
      const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
      const Complex r1{q / a, 0.0};
      const Complex r2{q != 0.0 ? c / q : 0.0, 0.0};
      roots.push_back(r1);
      roots.push_back(r2);
    } else {
      const double re = -b / (2.0 * a);
      const double im = std::sqrt(-disc) / (2.0 * a);
      roots.emplace_back(re, im);
      roots.emplace_back(re, -im);
    }
    return roots;
  }

  // Companion matrix of the monic polynomial.
  RealMatrix comp(degree, degree);
  const double lead = coeffs[degree];
  for (std::size_t i = 0; i + 1 < degree; ++i) comp(i + 1, i) = 1.0;
  for (std::size_t i = 0; i < degree; ++i) {
    comp(i, degree - 1) = -coeffs[i] / lead;
  }
  ComplexVector eig = eigenvalues(comp);

  const RealVector deriv = polyder(coeffs);
  for (Complex& r : eig) {
    r = polish_root(coeffs, deriv, r);
    // Snap nearly-real roots of the real polynomial onto the real axis.
    if (std::abs(r.imag()) <= 1e-9 * std::max(1.0, std::abs(r.real()))) {
      const Complex real_r{r.real(), 0.0};
      if (std::abs(polyval(coeffs, real_r)) <=
          4.0 * std::abs(polyval(coeffs, r)) + 1e-300) {
        r = real_r;
      }
    }
    roots.push_back(r);
  }
  return roots;
}

RealVector poly_from_roots(const ComplexVector& roots) {
  // Ascending coefficients; repeatedly multiply by (x - r).
  ComplexVector c{Complex{1.0, 0.0}};
  for (const Complex& r : roots) {
    c.emplace_back(0.0, 0.0);
    for (std::size_t i = c.size() - 1; i >= 1; --i) {
      c[i] = c[i - 1] - r * c[i];
    }
    c[0] = -r * c[0];
  }
  // Imaginary parts cancel for conjugate-closed root sets.
  RealVector out(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) out[i] = c[i].real();
  return out;
}

}  // namespace awesim::la
