#include "la/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace awesim::la {

SparseMatrix SparseMatrix::from_triplets(
    std::size_t rows, std::size_t cols,
    const std::vector<Triplet>& triplets) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  // Count entries per column, prefix-sum, scatter, then compress
  // duplicates within each column.
  std::vector<std::size_t> count(cols, 0);
  for (const auto& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::invalid_argument("SparseMatrix: triplet out of range");
    }
    ++count[t.col];
  }
  m.col_start_.assign(cols + 1, 0);
  for (std::size_t j = 0; j < cols; ++j) {
    m.col_start_[j + 1] = m.col_start_[j] + count[j];
  }
  m.row_index_.resize(triplets.size());
  m.values_.resize(triplets.size());
  std::vector<std::size_t> next(m.col_start_.begin(),
                                m.col_start_.end() - 1);
  for (const auto& t : triplets) {
    const std::size_t k = next[t.col]++;
    m.row_index_[k] = t.row;
    m.values_[k] = t.value;
  }
  // Sort each column by row and sum duplicates.
  std::vector<std::size_t> new_start(cols + 1, 0);
  std::vector<std::size_t> out_index;
  std::vector<double> out_values;
  out_index.reserve(triplets.size());
  out_values.reserve(triplets.size());
  std::vector<std::pair<std::size_t, double>> column;
  for (std::size_t j = 0; j < cols; ++j) {
    column.clear();
    for (std::size_t k = m.col_start_[j]; k < m.col_start_[j + 1]; ++k) {
      column.emplace_back(m.row_index_[k], m.values_[k]);
    }
    std::sort(column.begin(), column.end());
    for (std::size_t k = 0; k < column.size(); ++k) {
      if (!out_index.empty() &&
          out_index.size() > new_start[j] &&
          out_index.back() == column[k].first) {
        out_values.back() += column[k].second;
      } else {
        out_index.push_back(column[k].first);
        out_values.push_back(column[k].second);
      }
    }
    new_start[j + 1] = out_index.size();
  }
  m.col_start_ = std::move(new_start);
  m.row_index_ = std::move(out_index);
  m.values_ = std::move(out_values);
  return m;
}

RealVector SparseMatrix::apply(const RealVector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("SparseMatrix::apply: size mismatch");
  }
  RealVector y(rows_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      y[row_index_[k]] += values_[k] * xj;
    }
  }
  return y;
}

RealVector SparseMatrix::apply_transposed(const RealVector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "SparseMatrix::apply_transposed: size mismatch");
  }
  RealVector y(cols_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    double acc = 0.0;
    for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      acc += values_[k] * x[row_index_[k]];
    }
    y[j] = acc;
  }
  return y;
}

RealMatrix SparseMatrix::to_dense() const {
  RealMatrix d(rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      d(row_index_[k], j) += values_[k];
    }
  }
  return d;
}

std::vector<std::size_t> reverse_cuthill_mckee(const SparseMatrix& a) {
  const std::size_t n = a.cols();
  // Symmetrized adjacency (pattern of A + A^T, diagonal ignored).
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = a.col_start()[j]; k < a.col_start()[j + 1]; ++k) {
      const std::size_t i = a.row_index()[k];
      if (i == j || i >= n) continue;
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  // Process every connected component, starting each BFS from a
  // minimum-degree vertex (a good pseudo-peripheral approximation here).
  std::vector<std::size_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), std::size_t{0});
  std::sort(by_degree.begin(), by_degree.end(),
            [&](std::size_t x, std::size_t y) {
              return adj[x].size() < adj[y].size();
            });
  for (const std::size_t start : by_degree) {
    if (visited[start]) continue;
    std::queue<std::size_t> frontier;
    frontier.push(start);
    visited[start] = true;
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      // Enqueue unvisited neighbours in increasing-degree order.
      std::vector<std::size_t> next;
      for (const std::size_t w : adj[v]) {
        if (!visited[w]) {
          visited[w] = true;
          next.push_back(w);
        }
      }
      std::sort(next.begin(), next.end(),
                [&](std::size_t x, std::size_t y) {
                  return adj[x].size() < adj[y].size();
                });
      for (const std::size_t w : next) frontier.push(w);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

SparseLu::SparseLu(const SparseMatrix& a, Ordering ordering) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("SparseLu: matrix must be square");
  }
  n_ = a.rows();
  col_perm_ = (ordering == Ordering::ReverseCuthillMcKee)
                  ? reverse_cuthill_mckee(a)
                  : [&] {
                      std::vector<std::size_t> q(n_);
                      std::iota(q.begin(), q.end(), std::size_t{0});
                      return q;
                    }();

  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  row_perm_.assign(n_, kUnassigned);  // original row -> pivot position

  l_start_.assign(n_ + 1, 0);
  u_start_.assign(n_ + 1, 0);

  // Workspaces for the per-column sparse triangular solve.
  RealVector x(n_, 0.0);
  std::vector<std::size_t> pattern;   // post-ordered nonzero rows
  std::vector<int> mark(n_, -1);      // visit stamps
  std::vector<std::size_t> stack;
  std::vector<std::size_t> cursor(n_, 0);  // per-node edge cursor

  for (std::size_t col = 0; col < n_; ++col) {
    const std::size_t j = col_perm_[col];

    // --- Symbolic: nonzero pattern of x = L \ A(:, j) by depth-first
    // search from the rows of A(:, j) through the directed graph of the
    // already-computed L columns.  Post-order emits dependents before
    // their dependencies; the numeric pass walks it in reverse.
    pattern.clear();
    const int stamp = static_cast<int>(col);
    for (std::size_t k = a.col_start()[j]; k < a.col_start()[j + 1]; ++k) {
      const std::size_t root = a.row_index()[k];
      if (mark[root] == stamp) continue;
      stack.assign(1, root);
      mark[root] = stamp;
      cursor[root] = 0;
      while (!stack.empty()) {
        const std::size_t v = stack.back();
        const std::size_t pos = row_perm_[v];
        bool descended = false;
        if (pos != kUnassigned) {
          // Resume scanning v's outgoing edges (the rows L(:, pos)
          // updates) from the stored cursor.
          for (std::size_t p = l_start_[pos] + cursor[v];
               p < l_start_[pos + 1]; ++p) {
            const std::size_t w = l_index_[p];
            cursor[v] = p + 1 - l_start_[pos];
            if (mark[w] != stamp) {
              mark[w] = stamp;
              cursor[w] = 0;
              stack.push_back(w);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          stack.pop_back();
          pattern.push_back(v);
        }
      }
    }

    // --- Numeric: scatter A(:, j), then eliminate in topological order.
    for (std::size_t k = a.col_start()[j]; k < a.col_start()[j + 1]; ++k) {
      x[a.row_index()[k]] += a.values()[k];
    }
    // Process in reverse of the collected order so that dependencies
    // (deeper eliminated columns) are applied before dependents.
    for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
      const std::size_t v = *it;
      const std::size_t pos = row_perm_[v];
      if (pos == kUnassigned) continue;
      const double xv = x[v];
      if (xv == 0.0) continue;
      for (std::size_t p = l_start_[pos]; p < l_start_[pos + 1]; ++p) {
        x[l_index_[p]] -= l_values_[p] * xv;
      }
    }

    // --- Pivot: largest magnitude among not-yet-eliminated rows.
    std::size_t pivot_row = kUnassigned;
    double pivot_mag = 0.0;
    for (const std::size_t v : pattern) {
      if (row_perm_[v] != kUnassigned) continue;
      const double mag = std::abs(x[v]);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = v;
      }
    }
    if (pivot_row == kUnassigned || pivot_mag <= 1e-300) {
      throw SingularMatrixError(col);
    }
    const double pivot = x[pivot_row];
    row_perm_[pivot_row] = col;

    // --- Store U(:, col) (eliminated rows) and L(:, col) (the rest,
    // scaled by the pivot).  Clear the workspace as we go.
    for (const std::size_t v : pattern) {
      const double xv = x[v];
      x[v] = 0.0;
      if (xv == 0.0) continue;
      const std::size_t pos = row_perm_[v];
      if (v == pivot_row) continue;  // handled below
      if (pos != kUnassigned && pos < col) {
        u_index_.push_back(pos);
        u_values_.push_back(xv);
      } else {
        l_index_.push_back(v);
        l_values_.push_back(xv / pivot);
      }
    }
    // Diagonal of U last in the column (so back-substitution can read it
    // directly at the column end).
    u_index_.push_back(col);
    u_values_.push_back(pivot);
    x[pivot_row] = 0.0;
    l_start_[col + 1] = l_values_.size();
    u_start_[col + 1] = u_values_.size();
  }
}

RealVector SparseLu::solve(const RealVector& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("SparseLu::solve: rhs size mismatch");
  }
  // Forward: y in pivot order; L is unit lower (by construction the
  // stored l entries are original-row indexed).
  // Forward solve in pivot order with eager (right-looking) updates on a
  // working copy of b indexed by original rows.
  RealVector y(n_, 0.0);
  RealVector work(b);
  std::vector<std::size_t> pos_to_row(n_);
  for (std::size_t r = 0; r < n_; ++r) pos_to_row[row_perm_[r]] = r;

  for (std::size_t c = 0; c < n_; ++c) {
    const double yc = work[pos_to_row[c]];
    y[c] = yc;
    if (yc == 0.0) continue;
    for (std::size_t p = l_start_[c]; p < l_start_[c + 1]; ++p) {
      work[l_index_[p]] -= l_values_[p] * yc;
    }
  }

  // Backward: U z = y, U stored by columns with the diagonal last.
  RealVector z(n_, 0.0);
  for (std::size_t cc = n_; cc-- > 0;) {
    const std::size_t begin = u_start_[cc];
    const std::size_t end = u_start_[cc + 1];
    const double diag = u_values_[end - 1];
    const double zc = y[cc] / diag;
    z[cc] = zc;
    if (zc == 0.0) continue;
    for (std::size_t p = begin; p + 1 < end; ++p) {
      y[u_index_[p]] -= u_values_[p] * zc;
    }
  }

  // Un-permute columns: x[col_perm_[c]] = z[c].
  RealVector x(n_, 0.0);
  for (std::size_t c = 0; c < n_; ++c) x[col_perm_[c]] = z[c];
  return x;
}

std::vector<RealVector> SparseLu::solve_multi(
    const std::vector<RealVector>& bs) const {
  constexpr std::size_t kPanel = 8;
  // Panel scratch (the arena): `work` holds the eagerly updated copies
  // of b during the forward pass and is reused as z storage during the
  // backward pass; `ys` holds the forward results.  Column r of a panel
  // lives at offset r*n_.  thread_local so repeated batched solves on
  // the hot path never touch the allocator.
  static thread_local std::vector<double> arena;
  static thread_local std::vector<std::size_t> pos_to_row;
  if (arena.size() < 2 * kPanel * n_) arena.resize(2 * kPanel * n_);
  double* const work = arena.data();
  double* const ys = arena.data() + kPanel * n_;
  pos_to_row.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) pos_to_row[row_perm_[r]] = r;

  std::vector<RealVector> xs(bs.size());
  for (std::size_t b0 = 0; b0 < bs.size(); b0 += kPanel) {
    const std::size_t width = std::min(kPanel, bs.size() - b0);
    for (std::size_t r = 0; r < width; ++r) {
      const RealVector& b = bs[b0 + r];
      if (b.size() != n_) {
        throw std::invalid_argument("SparseLu::solve_multi: rhs size mismatch");
      }
      std::copy(b.begin(), b.end(), work + r * n_);
      std::fill(ys + r * n_, ys + (r + 1) * n_, 0.0);
    }
    // Forward in pivot order; each L column's indices/values stay hot
    // across the panel.  Per-RHS ops (including the zero skip) match
    // solve() exactly.
    for (std::size_t c = 0; c < n_; ++c) {
      const std::size_t prow = pos_to_row[c];
      const std::size_t begin = l_start_[c];
      const std::size_t end = l_start_[c + 1];
      for (std::size_t r = 0; r < width; ++r) {
        double* const wr = work + r * n_;
        const double yc = wr[prow];
        ys[r * n_ + c] = yc;
        if (yc == 0.0) continue;
        for (std::size_t p = begin; p < end; ++p) {
          wr[l_index_[p]] -= l_values_[p] * yc;
        }
      }
    }
    // Backward: U z = y, diagonal stored last per column.  `work` is
    // reused as the z panel.
    for (std::size_t cc = n_; cc-- > 0;) {
      const std::size_t begin = u_start_[cc];
      const std::size_t end = u_start_[cc + 1];
      const double diag = u_values_[end - 1];
      for (std::size_t r = 0; r < width; ++r) {
        double* const yr = ys + r * n_;
        const double zc = yr[cc] / diag;
        work[r * n_ + cc] = zc;
        if (zc == 0.0) continue;
        for (std::size_t p = begin; p + 1 < end; ++p) {
          yr[u_index_[p]] -= u_values_[p] * zc;
        }
      }
    }
    for (std::size_t r = 0; r < width; ++r) {
      RealVector& x = xs[b0 + r];
      x.assign(n_, 0.0);
      for (std::size_t c = 0; c < n_; ++c) {
        x[col_perm_[c]] = work[r * n_ + c];
      }
    }
  }
  return xs;
}

}  // namespace awesim::la
