#include "la/low_rank.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/fault.h"

namespace awesim::la {

LowRankSolver::LowRankSolver(std::size_t dim, BaseSolve base,
                             BaseSolveMulti base_multi, LowRankOptions options)
    : dim_(dim),
      base_(std::move(base)),
      base_multi_(std::move(base_multi)),
      options_(options) {
  if (dim_ == 0) {
    throw std::invalid_argument("LowRankSolver: zero-dimensional base");
  }
  if (!base_ || !base_multi_) {
    throw std::invalid_argument("LowRankSolver: null base solve");
  }
}

bool LowRankSolver::add_update(const RankOneUpdate& update) {
  if (core::fault_at("la.lowrank", std::to_string(dim_))) return false;
  bool u_zero = true;
  bool v_zero = true;
  for (const auto& [idx, val] : update.u) {
    if (idx >= dim_) return false;
    if (val != 0.0) u_zero = false;
  }
  for (const auto& [idx, val] : update.v) {
    if (idx >= dim_) return false;
    if (val != 0.0) v_zero = false;
  }
  // A vanishing u or v leaves A unchanged: rank-0, accepted for free.
  if (u_zero || v_zero) return true;
  if (z_.size() >= options_.max_rank) return false;

  // New column z = A0^-1 u.
  RealVector u_dense(dim_, 0.0);
  for (const auto& [idx, val] : update.u) u_dense[idx] += val;
  RealVector z = base_(u_dense);
  for (const double x : z) {
    if (!std::isfinite(x)) return false;
  }

  // Tentatively extend and rebuild the capacitance matrix
  // C = I + V^T Z, C[a][b] = delta(a,b) + sum_i v_a[i] * z_b[i].
  z_.push_back(std::move(z));
  v_.push_back(update.v);
  const std::size_t k = z_.size();
  RealMatrix cap(k, k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      double acc = a == b ? 1.0 : 0.0;
      for (const auto& [idx, val] : v_[a]) acc += val * z_[b][idx];
      cap(a, b) = acc;
    }
  }
  double cap_norm = 0.0;
  for (std::size_t a = 0; a < k; ++a) {
    double row = 0.0;
    for (std::size_t b = 0; b < k; ++b) row += std::abs(cap(a, b));
    cap_norm = std::max(cap_norm, row);
  }
  std::shared_ptr<const Lu<double>> cap_lu;
  try {
    cap_lu = std::make_shared<const Lu<double>>(cap);
  } catch (const SingularMatrixError&) {
    z_.pop_back();
    v_.pop_back();
    return false;
  }
  // Drift watchdog: a blowing-up condition estimate of I + V^T Z means
  // the accumulated corrections are near-cancelling and the Woodbury
  // solve is losing digits -- refuse so the caller refactorizes.
  const double cond = cap_lu->condition_estimate(cap_norm);
  if (!std::isfinite(cond) || cond > options_.condition_threshold) {
    z_.pop_back();
    v_.pop_back();
    return false;
  }
  cap_ = std::move(cap_lu);
  return true;
}

void LowRankSolver::correct(RealVector& x) const {
  const std::size_t k = z_.size();
  RealVector w(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double acc = 0.0;
    for (const auto& [idx, val] : v_[j]) acc += val * x[idx];
    w[j] = acc;
  }
  const RealVector y = cap_->solve(w);
  for (std::size_t j = 0; j < k; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    const RealVector& zj = z_[j];
    for (std::size_t i = 0; i < dim_; ++i) x[i] -= zj[i] * yj;
  }
}

RealVector LowRankSolver::solve(const RealVector& b) const {
  RealVector x = base_(b);
  if (!z_.empty()) correct(x);
  return x;
}

std::vector<RealVector> LowRankSolver::solve_multi(
    const std::vector<RealVector>& bs) const {
  std::vector<RealVector> xs = base_multi_(bs);
  if (!z_.empty()) {
    for (RealVector& x : xs) correct(x);
  }
  return xs;
}

}  // namespace awesim::la
