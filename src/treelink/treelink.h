// Tree/link analysis -- the formulation the paper actually uses for the
// moment computations (Section IV, eqs. 51-62).
//
// For the "moments circuit" (capacitors replaced by known current
// sources), pick a spanning tree that prefers voltage sources and
// resistors; every capacitor-turned-current-source and every surplus
// resistor becomes a link.  Then:
//
//   * if all links are current sources (an RC tree, or any circuit whose
//     resistors + sources form a tree), the DC solution is *explicit*:
//     tree branch currents are subtree sums of the injected currents and
//     node voltages are path sums of branch drops -- a generalized tree
//     walk, O(n) per moment with no factorization at all (eq. 52-56);
//   * otherwise (resistor loops / grounded resistors, Fig. 9-11) only the
//     resistor-link currents are unknown: a dense system of that tiny
//     size (often 1) is factored once and each moment still costs O(n)
//     plus one small back-substitution (eq. 61-62).
//
// Supported elements: R, C, independent V sources (the scope the paper's
// Section IV develops; inductors and controlled sources use the MNA
// path).  Verified against the MNA moment recursion in the test suite.
#pragma once

#include <optional>
#include <vector>

#include "circuit/circuit.h"
#include "la/lu.h"
#include "la/matrix.h"

namespace awesim::treelink {

class TreeLinkSystem {
 public:
  /// Build from a circuit containing only R, C, and V-source elements.
  /// Throws std::invalid_argument for anything else, for circuits whose
  /// voltage sources alone form a loop, or for nodes unreachable from
  /// ground through tree branches.
  explicit TreeLinkSystem(const circuit::Circuit& ckt);

  /// Number of unknown link currents: 0 means every DC solve is explicit
  /// (the paper's RC-tree case); small positive values arise from
  /// resistor loops / grounded resistors.
  std::size_t link_unknowns() const { return resistor_links_.size(); }

  std::size_t node_count() const { return node_voltage_size_; }

  /// One DC solve of the moments circuit: capacitor k (in circuit
  /// element order) carries a known current `cap_currents[k]` flowing
  /// from its pos to its neg terminal; voltage source k holds
  /// `source_values[k]`.  Returns node voltages (index = NodeId - 1,
  /// ground excluded), like the MNA node block.
  la::RealVector dc_solve(const la::RealVector& cap_currents,
                          const la::RealVector& source_values) const;

  /// Number of capacitors / voltage sources, defining the argument
  /// ordering of dc_solve.
  std::size_t capacitor_count() const { return capacitors_.size(); }
  std::size_t source_count() const { return source_count_; }

  /// AWE moment vectors of the homogeneous response for the circuit's own
  /// stimulus (step sources; ICs honored): result[i] is mu_{i-1}
  /// (i.e. result[0] = mu_{-1} = -x_h0, result[1] = mu_0, ...), each a
  /// node-voltage vector.  `count` total vectors.
  std::vector<la::RealVector> moments(int count) const;

 private:
  struct Branch {
    enum class Kind { Source, Resistor } kind;
    circuit::NodeId pos;
    circuit::NodeId neg;
    double value = 0.0;      // resistance for resistors
    std::size_t index = 0;   // source order for sources
  };
  struct CapRef {
    circuit::NodeId pos;
    circuit::NodeId neg;
    double farads = 0.0;
  };

  // Explicit solve machinery: injections -> node voltages, O(n).
  la::RealVector solve_with_injections(
      const la::RealVector& node_injections,
      const la::RealVector& source_values,
      const la::RealVector& link_currents) const;

  std::size_t node_voltage_size_ = 0;
  std::size_t source_count_ = 0;
  std::vector<Branch> tree_branches_;     // parent edge per node
  std::vector<int> parent_;               // node (1-based compact) -> parent
  std::vector<std::size_t> order_;        // nodes in BFS order from ground
  std::vector<CapRef> capacitors_;
  std::vector<Branch> resistor_links_;    // surplus resistors
  la::RealVector x0_;                     // initial node voltages (ICs)
  la::RealVector source_initial_;
  la::RealVector source_final_;
  mutable std::optional<la::Lu<double>> link_lu_;  // factored link system
};

}  // namespace awesim::treelink
