#include "treelink/treelink.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace awesim::treelink {

using circuit::ElementKind;
using circuit::kGround;

namespace {

// Union-find for spanning-tree selection.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

TreeLinkSystem::TreeLinkSystem(const circuit::Circuit& ckt) {
  ckt.validate();
  const std::size_t num_nodes = ckt.node_count();
  node_voltage_size_ = num_nodes - 1;

  // Collect branches; sources have tree priority.
  std::vector<Branch> sources;
  std::vector<Branch> resistors;
  for (const auto& e : ckt.elements()) {
    switch (e.kind) {
      case ElementKind::VoltageSource:
        sources.push_back({Branch::Kind::Source, e.pos, e.neg, 0.0,
                           source_count_++});
        if (e.stimulus.has_unbounded_ramp()) {
          throw std::invalid_argument(
              "TreeLinkSystem: unbounded ramp stimuli unsupported");
        }
        source_initial_.push_back(e.stimulus.initial_value());
        source_final_.push_back(e.stimulus.final_value());
        break;
      case ElementKind::Resistor:
        resistors.push_back(
            {Branch::Kind::Resistor, e.pos, e.neg, e.value, 0});
        break;
      case ElementKind::Capacitor:
        capacitors_.push_back({e.pos, e.neg, e.value});
        break;
      default:
        throw std::invalid_argument(
            "TreeLinkSystem: only R, C and V sources supported (use the "
            "MNA path for " +
            e.name + ")");
    }
  }

  // Spanning tree: sources first (a rejected source = source loop).
  DisjointSets sets(num_nodes);
  std::vector<Branch> tree_edges;
  for (const auto& s : sources) {
    if (!sets.unite(static_cast<std::size_t>(s.pos),
                    static_cast<std::size_t>(s.neg))) {
      throw std::invalid_argument(
          "TreeLinkSystem: loop of ideal voltage sources");
    }
    tree_edges.push_back(s);
  }
  for (const auto& r : resistors) {
    if (sets.unite(static_cast<std::size_t>(r.pos),
                   static_cast<std::size_t>(r.neg))) {
      tree_edges.push_back(r);
    } else {
      resistor_links_.push_back(r);
    }
  }

  // Root the tree at ground: BFS.
  std::vector<std::vector<std::pair<std::size_t, const Branch*>>> adj(
      num_nodes);
  for (const auto& b : tree_edges) {
    adj[static_cast<std::size_t>(b.pos)].emplace_back(
        static_cast<std::size_t>(b.neg), &b);
    adj[static_cast<std::size_t>(b.neg)].emplace_back(
        static_cast<std::size_t>(b.pos), &b);
  }
  parent_.assign(num_nodes, -2);  // -2 = unvisited
  tree_branches_.assign(num_nodes,
                        {Branch::Kind::Resistor, 0, 0, 0.0, 0});
  order_.clear();
  std::queue<std::size_t> frontier;
  frontier.push(0);
  parent_[0] = -1;
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    order_.push_back(v);
    for (const auto& [w, branch] : adj[v]) {
      if (parent_[w] != -2) continue;
      parent_[w] = static_cast<int>(v);
      tree_branches_[w] = *branch;
      frontier.push(w);
    }
  }
  if (order_.size() != num_nodes) {
    throw std::invalid_argument(
        "TreeLinkSystem: some nodes have no resistive/source path to "
        "ground (floating subcircuit); use the MNA path");
  }

  // Initial node voltages: equilibrium at initial source values, then
  // explicit IC overrides (matches MnaSystem::initial_state()).
  x0_ = dc_solve(la::RealVector(capacitors_.size(), 0.0), source_initial_);
  for (const auto& [node, volts] : ckt.initial_node_voltages()) {
    x0_[static_cast<std::size_t>(node) - 1] = volts;
  }
  for (const auto& e : ckt.elements()) {
    if (e.kind == ElementKind::Capacitor && e.initial_condition) {
      const double vneg =
          e.neg == kGround ? 0.0
                           : x0_[static_cast<std::size_t>(e.neg) - 1];
      if (e.pos != kGround) {
        x0_[static_cast<std::size_t>(e.pos) - 1] =
            vneg + *e.initial_condition;
      }
    }
  }
}

la::RealVector TreeLinkSystem::solve_with_injections(
    const la::RealVector& node_injections,
    const la::RealVector& source_values,
    const la::RealVector& link_currents) const {
  const std::size_t num_nodes = node_voltage_size_ + 1;
  // Total injections including resistor-link currents.
  la::RealVector inj(node_injections);
  for (std::size_t l = 0; l < resistor_links_.size(); ++l) {
    const auto& link = resistor_links_[l];
    const double i = link_currents.empty() ? 0.0 : link_currents[l];
    if (link.pos != kGround) {
      inj[static_cast<std::size_t>(link.pos) - 1] -= i;
    }
    if (link.neg != kGround) {
      inj[static_cast<std::size_t>(link.neg) - 1] += i;
    }
  }

  // Subtree injection sums, leaves to root.
  la::RealVector subtree(num_nodes, 0.0);
  for (std::size_t i = 1; i < num_nodes; ++i) {
    subtree[order_[i]] = inj[order_[i] - 1];
  }
  for (std::size_t i = num_nodes; i-- > 1;) {
    const std::size_t v = order_[i];
    subtree[static_cast<std::size_t>(parent_[v])] += subtree[v];
  }

  // Node voltages, root to leaves.
  la::RealVector v(num_nodes, 0.0);
  for (std::size_t i = 1; i < num_nodes; ++i) {
    const std::size_t c = order_[i];
    const std::size_t p = static_cast<std::size_t>(parent_[c]);
    const Branch& br = tree_branches_[c];
    if (br.kind == Branch::Kind::Source) {
      const double vs = source_values[br.index];
      // v(pos) - v(neg) = vs.
      v[c] = (static_cast<std::size_t>(br.pos) == c) ? v[p] + vs
                                                     : v[p] - vs;
    } else {
      // Current flowing parent -> child is -subtree(child); the voltage
      // rises by R * subtree(child) going from parent to child.
      v[c] = v[p] + br.value * subtree[c];
    }
  }
  la::RealVector out(node_voltage_size_);
  for (std::size_t n = 1; n < num_nodes; ++n) out[n - 1] = v[n];
  return out;
}

la::RealVector TreeLinkSystem::dc_solve(
    const la::RealVector& cap_currents,
    const la::RealVector& source_values) const {
  if (cap_currents.size() != capacitors_.size() ||
      source_values.size() != source_count_) {
    throw std::invalid_argument("TreeLinkSystem::dc_solve: size mismatch");
  }
  // Capacitor current I flows pos -> neg through the source it became.
  la::RealVector inj(node_voltage_size_, 0.0);
  for (std::size_t k = 0; k < capacitors_.size(); ++k) {
    const auto& cap = capacitors_[k];
    const double i = cap_currents[k];
    if (cap.pos != kGround) {
      inj[static_cast<std::size_t>(cap.pos) - 1] -= i;
    }
    if (cap.neg != kGround) {
      inj[static_cast<std::size_t>(cap.neg) - 1] += i;
    }
  }

  const la::RealVector base =
      solve_with_injections(inj, source_values, {});
  if (resistor_links_.empty()) return base;

  // Lazily build and factor the link system (Z - diag(R)) i = -A.
  const std::size_t q = resistor_links_.size();
  auto link_drop = [&](const la::RealVector& volts, const Branch& link) {
    const double va = link.pos == kGround
                          ? 0.0
                          : volts[static_cast<std::size_t>(link.pos) - 1];
    const double vb = link.neg == kGround
                          ? 0.0
                          : volts[static_cast<std::size_t>(link.neg) - 1];
    return va - vb;
  };
  if (!link_lu_) {
    la::RealMatrix m(q, q);
    la::RealVector zero_inj(node_voltage_size_, 0.0);
    la::RealVector zero_src(source_count_, 0.0);
    for (std::size_t col = 0; col < q; ++col) {
      la::RealVector unit(q, 0.0);
      unit[col] = 1.0;
      const auto volts = solve_with_injections(zero_inj, zero_src, unit);
      for (std::size_t row = 0; row < q; ++row) {
        m(row, col) = link_drop(volts, resistor_links_[row]);
      }
      m(col, col) -= resistor_links_[col].value;
    }
    link_lu_.emplace(std::move(m));
  }
  la::RealVector rhs(q);
  for (std::size_t row = 0; row < q; ++row) {
    rhs[row] = -link_drop(base, resistor_links_[row]);
  }
  const la::RealVector i_links = link_lu_->solve(rhs);
  return solve_with_injections(inj, source_values, i_links);
}

std::vector<la::RealVector> TreeLinkSystem::moments(int count) const {
  if (count < 1) {
    throw std::invalid_argument("TreeLinkSystem::moments: count >= 1");
  }
  const la::RealVector zero_src(source_count_, 0.0);

  // Particular (final) solution and homogeneous initial vector.
  const la::RealVector xb =
      dc_solve(la::RealVector(capacitors_.size(), 0.0), source_final_);
  la::RealVector xh0(node_voltage_size_);
  for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = x0_[i] - xb[i];

  auto cap_currents_from = [&](const la::RealVector& volts) {
    la::RealVector i(capacitors_.size());
    for (std::size_t k = 0; k < capacitors_.size(); ++k) {
      const auto& cap = capacitors_[k];
      const double vp = cap.pos == kGround
                            ? 0.0
                            : volts[static_cast<std::size_t>(cap.pos) - 1];
      const double vn = cap.neg == kGround
                            ? 0.0
                            : volts[static_cast<std::size_t>(cap.neg) - 1];
      // Injection +C (vp - vn) into pos corresponds to source current
      // -C (vp - vn) flowing pos -> neg (see the MNA rhs convention).
      i[k] = -cap.farads * (vp - vn);
    }
    return i;
  };

  std::vector<la::RealVector> result;
  la::RealVector mu_m1(xh0);
  for (auto& v : mu_m1) v = -v;
  result.push_back(std::move(mu_m1));

  la::RealVector prev = xh0;
  for (int j = 0; j + 1 < count; ++j) {
    la::RealVector next = dc_solve(cap_currents_from(prev), zero_src);
    if (j > 0) {
      for (auto& v : next) v = -v;
    }
    result.push_back(next);
    prev = next;
  }
  return result;
}

}  // namespace awesim::treelink
