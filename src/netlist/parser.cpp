#include "netlist/parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace awesim::netlist {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// One netlist card, tokenized with per-token source columns so every
// diagnostic can point at the offending token.  Parentheses and commas
// act as separators; the leading keyword (STEP/PWL/DC) interprets the
// numbers.  For cards continued over several lines the columns index the
// joined card text.
struct Card {
  std::size_t line = 0;        // 1-based source line of the card start
  std::size_t col_offset = 0;  // leading chars stripped from that line
  std::vector<std::string> tokens;
  std::vector<std::size_t> cols;  // 1-based column per token

  std::size_t column(std::size_t i) const {
    if (i < cols.size()) return cols[i];
    if (cols.empty()) return col_offset + 1;
    return cols.back() + tokens.back().size();  // just past the card
  }
  std::string token(std::size_t i) const {
    return i < tokens.size() ? tokens[i] : std::string();
  }
  ParseError error(std::size_t i, const std::string& message) const {
    return ParseError(line, column(i), token(i), message);
  }
};

Card make_card(std::size_t lineno, std::size_t col_offset,
               std::string_view text) {
  Card card;
  card.line = lineno;
  card.col_offset = col_offset;
  std::string cur;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : ' ';
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
        c == ')' || c == ',') {
      if (!cur.empty()) {
        card.tokens.push_back(cur);
        card.cols.push_back(col_offset + start + 1);
        cur.clear();
      }
    } else {
      if (cur.empty()) start = i;
      cur.push_back(c);
    }
  }
  return card;
}

bool is_number(std::string_view token) {
  if (token.empty()) return false;
  const char c = token.front();
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
         c == '+' || c == '.';
}

}  // namespace

double parse_value(std::string_view token) {
  if (token.empty()) {
    throw std::invalid_argument("parse_value: empty token");
  }
  std::size_t pos = 0;
  double base = 0.0;
  const std::string str(token);
  try {
    base = std::stod(str, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_value: not a number: '" + str + "'");
  }
  std::string suffix = to_lower(str.substr(pos));
  // SPICE ignores trailing unit letters after the scale suffix ("pF").
  double scale = 1.0;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
  } else if (!suffix.empty()) {
    switch (suffix.front()) {
      case 'f': scale = 1e-15; break;
      case 'p': scale = 1e-12; break;
      case 'n': scale = 1e-9; break;
      case 'u': scale = 1e-6; break;
      case 'm': scale = 1e-3; break;
      case 'k': scale = 1e3; break;
      case 'g': scale = 1e9; break;
      case 't': scale = 1e12; break;
      default:
        throw std::invalid_argument("parse_value: bad suffix in '" + str +
                                    "'");
    }
  }
  return base * scale;
}

namespace {

// Parse the stimulus part of a V/I card starting at card.tokens[start].
circuit::Stimulus parse_stimulus(const Card& card, std::size_t start) {
  const auto& tokens = card.tokens;
  if (start >= tokens.size()) {
    throw card.error(start, "missing source value");
  }
  const std::string kind = to_lower(tokens[start]);
  auto num = [&](std::size_t i) -> double {
    if (i >= tokens.size()) {
      throw card.error(i, "missing numeric argument");
    }
    try {
      return parse_value(tokens[i]);
    } catch (const std::invalid_argument& e) {
      throw card.error(i, e.what());
    }
  };
  if (kind == "dc") {
    return circuit::Stimulus::dc(num(start + 1));
  }
  if (kind == "step") {
    const double v0 = num(start + 1);
    const double v1 = num(start + 2);
    const double delay =
        start + 3 < tokens.size() ? num(start + 3) : 0.0;
    const double rise = start + 4 < tokens.size() ? num(start + 4) : 0.0;
    return rise > 0.0
               ? circuit::Stimulus::ramp_step(v0, v1, rise, delay)
               : circuit::Stimulus::step(v0, v1, delay);
  }
  if (kind == "pwl") {
    std::vector<std::pair<double, double>> points;
    for (std::size_t i = start + 1; i + 1 < tokens.size(); i += 2) {
      points.emplace_back(num(i), num(i + 1));
    }
    if (points.empty()) throw card.error(start, "PWL needs points");
    try {
      return circuit::Stimulus::pwl(points);
    } catch (const std::invalid_argument& e) {
      throw card.error(start, e.what());
    }
  }
  if (is_number(kind)) {
    // Bare value: DC.
    return circuit::Stimulus::dc(num(start));
  }
  throw card.error(start, "unknown stimulus '" + tokens[start] + "'");
}

// IC=value suffix on C/L cards.
std::optional<double> parse_ic(const Card& card, std::size_t start) {
  for (std::size_t i = start; i < card.tokens.size(); ++i) {
    const std::string lower = to_lower(card.tokens[i]);
    if (lower.rfind("ic=", 0) == 0) {
      try {
        return parse_value(lower.substr(3));
      } catch (const std::invalid_argument& e) {
        throw card.error(i, e.what());
      }
    }
  }
  return std::nullopt;
}

// A .subckt definition: ordered port names plus the cards inside.
struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<Card> cards;
};

// Card-processing context: node/element name mapping for (possibly
// nested) subcircuit expansion.
struct ExpandContext {
  circuit::Circuit* ckt;
  const std::map<std::string, SubcktDef>* subckts;
  std::string prefix;                                  // "X1." etc.
  const std::map<std::string, std::string>* port_map;  // local -> global
  const std::string* file = nullptr;  // netlist filename for SourceLocs
  int depth = 0;
};

bool is_ground(std::string_view name) {
  return name == "0" || name == "gnd" || name == "GND";
}

// Translate a node name through the expansion context.
std::string map_node(const ExpandContext& ctx, const std::string& name) {
  if (is_ground(name)) return "0";
  if (ctx.port_map != nullptr) {
    const auto it = ctx.port_map->find(to_lower(name));
    if (it != ctx.port_map->end()) return it->second;
  }
  return ctx.prefix + name;
}

void process_card(const Card& card, const ExpandContext& ctx);

// Expand one subcircuit instance card: Xname node1..nodeK subcktName.
void expand_instance(const Card& card, const ExpandContext& ctx) {
  const auto& tokens = card.tokens;
  if (tokens.size() < 3) {
    throw card.error(0, "subcircuit instance needs nodes and a name");
  }
  if (ctx.depth > 40) {
    throw card.error(0, "subcircuit nesting too deep (recursive?)");
  }
  const std::string def_name = to_lower(tokens.back());
  const auto it = ctx.subckts->find(def_name);
  if (it == ctx.subckts->end()) {
    throw card.error(tokens.size() - 1,
                     "unknown subcircuit '" + tokens.back() + "'");
  }
  const SubcktDef& def = it->second;
  const std::size_t given = tokens.size() - 2;
  if (given != def.ports.size()) {
    throw card.error(tokens.size() - 1,
                     "subcircuit '" + tokens.back() + "' expects " +
                         std::to_string(def.ports.size()) + " nodes, got " +
                         std::to_string(given));
  }
  std::map<std::string, std::string> port_map;
  for (std::size_t p = 0; p < def.ports.size(); ++p) {
    port_map[to_lower(def.ports[p])] = map_node(ctx, tokens[1 + p]);
  }
  ExpandContext inner;
  inner.ckt = ctx.ckt;
  inner.subckts = ctx.subckts;
  inner.prefix = ctx.prefix + tokens[0] + ".";
  inner.port_map = &port_map;
  inner.file = ctx.file;
  inner.depth = ctx.depth + 1;
  for (const Card& inner_card : def.cards) {
    if (!inner_card.tokens.empty()) process_card(inner_card, inner);
  }
}

void process_card(const Card& card, const ExpandContext& ctx) {
  circuit::Circuit& ckt = *ctx.ckt;
  const auto& tokens = card.tokens;
  const std::string head = to_lower(tokens[0]);

  if (head[0] == '.') {
    if (head == ".end" || head == ".ends") return;
    if (head == ".ic") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string item = to_lower(tokens[i]);
        const std::size_t eq = item.find('=');
        if (eq != std::string::npos && item.rfind("v", 0) == 0) {
          const std::string node = item.substr(1, eq - 1);
          const double value = parse_value(item.substr(eq + 1));
          ckt.set_initial_node_voltage(ckt.node(map_node(ctx, node)),
                                       value);
        } else if (item == "v" && i + 2 < tokens.size()) {
          // "v ( node ) = value" fully split by the tokenizer.
          ++i;
          const std::string node = tokens[i];
          ++i;
          std::string val = tokens[i];
          if (!val.empty() && val.front() == '=') val.erase(0, 1);
          ckt.set_initial_node_voltage(ckt.node(map_node(ctx, node)),
                                       parse_value(val));
        } else {
          throw card.error(i, "bad .ic item '" + tokens[i] + "'");
        }
      }
      return;
    }
    throw card.error(0, "unknown directive '" + tokens[0] + "'");
  }

  auto need = [&](std::size_t count) {
    if (tokens.size() < count) {
      throw card.error(tokens.size(),
                       "too few fields on '" + tokens[0] + "'");
    }
  };
  auto value_of = [&](std::size_t i) -> double {
    try {
      return parse_value(tokens[i]);
    } catch (const std::invalid_argument& e) {
      throw card.error(i, e.what());
    }
  };
  auto node_of = [&](std::size_t i) {
    return ckt.node(map_node(ctx, tokens[i]));
  };
  // Every element remembers the card that created it, so the src/check
  // lint rules can report file:line:column for topological problems that
  // only surface after the whole circuit is assembled.
  auto locate = [&](circuit::Element& el) {
    if (ctx.file != nullptr) el.loc.file = *ctx.file;
    el.loc.line = card.line;
    el.loc.column = card.column(0);
  };
  const std::string name = ctx.prefix + tokens[0];

  switch (head[0]) {
    case 'r': {
      need(4);
      locate(ckt.add_resistor(name, node_of(1), node_of(2), value_of(3)));
      break;
    }
    case 'c': {
      need(4);
      locate(ckt.add_capacitor(name, node_of(1), node_of(2), value_of(3),
                               parse_ic(card, 4)));
      break;
    }
    case 'l': {
      need(4);
      locate(ckt.add_inductor(name, node_of(1), node_of(2), value_of(3),
                              parse_ic(card, 4)));
      break;
    }
    case 'v': {
      need(4);
      locate(ckt.add_vsource(name, node_of(1), node_of(2),
                             parse_stimulus(card, 3)));
      break;
    }
    case 'i': {
      need(4);
      locate(ckt.add_isource(name, node_of(1), node_of(2),
                             parse_stimulus(card, 3)));
      break;
    }
    case 'e': {
      need(6);
      locate(ckt.add_vcvs(name, node_of(1), node_of(2), node_of(3),
                          node_of(4), value_of(5)));
      break;
    }
    case 'g': {
      need(6);
      locate(ckt.add_vccs(name, node_of(1), node_of(2), node_of(3),
                          node_of(4), value_of(5)));
      break;
    }
    case 'f': {
      need(5);
      locate(ckt.add_cccs(name, node_of(1), node_of(2),
                          ctx.prefix + tokens[3], value_of(4)));
      break;
    }
    case 'h': {
      need(5);
      locate(ckt.add_ccvs(name, node_of(1), node_of(2),
                          ctx.prefix + tokens[3], value_of(4)));
      break;
    }
    case 'x': {
      expand_instance(card, ctx);
      break;
    }
    default:
      throw card.error(0, "unknown element '" + tokens[0] + "'");
  }
}

}  // namespace

ParseResult parse_collect(std::string_view text,
                          const std::string& filename, bool validate) {
  ParseResult result;

  auto record_parse = [&](const ParseError& e) {
    core::Diagnostic d;
    d.code = core::DiagCode::ParseError;
    d.severity = core::Severity::Error;
    d.message = e.message();
    d.element = e.token();
    d.file = filename;
    d.line = e.line();
    d.column = e.column();
    result.diagnostics.push_back(std::move(d));
  };
  auto record_validation = [&](std::size_t line, const std::string& msg) {
    core::Diagnostic d;
    d.code = core::DiagCode::ValidationError;
    d.severity = core::Severity::Error;
    d.message = msg;
    d.file = filename;
    d.line = line;
    result.diagnostics.push_back(std::move(d));
  };

  // Join continuation lines; a stray '+' is recorded and skipped so the
  // rest of the file still gets checked.
  std::vector<Card> cards;
  {
    std::istringstream in{std::string(text)};
    std::string raw;
    std::size_t lineno = 0;
    std::vector<std::pair<std::size_t, std::size_t>> starts;  // line, col
    std::vector<std::string> texts;
    while (std::getline(in, raw)) {
      ++lineno;
      // Strip comments.
      const std::size_t semi = raw.find(';');
      if (semi != std::string::npos) raw.erase(semi);
      const std::size_t first = raw.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      std::string trimmed = raw.substr(first);
      while (!trimmed.empty() &&
             (trimmed.back() == '\r' || trimmed.back() == ' ' ||
              trimmed.back() == '\t')) {
        trimmed.pop_back();
      }
      if (trimmed.empty()) continue;
      if (trimmed.front() == '*') continue;
      if (trimmed.front() == '+') {
        if (texts.empty()) {
          record_parse(ParseError(lineno, first + 1, "+",
                                  "continuation with no previous card"));
          continue;
        }
        texts.back() += " " + trimmed.substr(1);
      } else {
        starts.emplace_back(lineno, first);
        texts.push_back(std::move(trimmed));
      }
    }
    cards.reserve(texts.size());
    for (std::size_t i = 0; i < texts.size(); ++i) {
      cards.push_back(make_card(starts[i].first, starts[i].second,
                                texts[i]));
    }
  }

  // Extract .subckt ... .ends blocks (top level only).  A malformed
  // block is recorded and skipped as a unit.
  std::map<std::string, SubcktDef> subckts;
  std::vector<Card> top;
  for (std::size_t i = 0; i < cards.size(); ++i) {
    const Card& card = cards[i];
    if (card.tokens.empty()) continue;
    if (to_lower(card.tokens[0]) != ".subckt") {
      top.push_back(card);
      continue;
    }
    const bool has_header = card.tokens.size() >= 3;
    if (!has_header) {
      record_parse(
          card.error(card.tokens.size(),
                     ".subckt needs a name and at least one port"));
    }
    SubcktDef def;
    for (std::size_t p = 2; p < card.tokens.size(); ++p) {
      def.ports.push_back(card.tokens[p]);
    }
    std::size_t j = i + 1;
    bool closed = false;
    for (; j < cards.size(); ++j) {
      const Card& inner = cards[j];
      if (inner.tokens.empty()) continue;
      const std::string inner_head = to_lower(inner.tokens[0]);
      if (inner_head == ".subckt") {
        record_parse(
            inner.error(0, "nested .subckt definitions are not supported"));
        // Treat it as closing the outer block so both get surfaced once.
        break;
      }
      if (inner_head == ".ends") {
        closed = true;
        break;
      }
      def.cards.push_back(inner);
    }
    if (!closed && j >= cards.size()) {
      record_parse(card.error(0, "unterminated .subckt block"));
    }
    if (has_header) {
      const std::string def_name = to_lower(card.tokens[1]);
      if (!subckts.emplace(def_name, std::move(def)).second) {
        record_parse(card.error(
            1, "duplicate .subckt '" + card.tokens[1] + "'"));
      }
    }
    i = j;  // skip past .ends (or the offending nested .subckt)
  }

  // Process the top-level cards, recovering per card: a bad card is
  // recorded and skipped, the next one still runs against the same
  // circuit so independent errors all surface in one pass.
  circuit::Circuit ckt;
  ExpandContext ctx;
  ctx.ckt = &ckt;
  ctx.subckts = &subckts;
  ctx.port_map = nullptr;
  ctx.file = &filename;
  for (const Card& card : top) {
    if (card.tokens.empty()) continue;
    try {
      process_card(card, ctx);
    } catch (const ParseError& e) {
      record_parse(e);
    } catch (const std::exception& e) {
      // Structural problems from the circuit builder (duplicate element
      // names, bad control references, non-finite values).
      record_validation(card.line, e.what());
    }
  }
  if (count_at_least(result.diagnostics, core::Severity::Error) == 0) {
    if (validate) {
      try {
        ckt.validate();
        result.circuit = std::move(ckt);
      } catch (const std::exception& e) {
        record_validation(0, e.what());
      }
    } else {
      result.circuit = std::move(ckt);
    }
  }
  return result;
}

namespace {

// Shared body of the two deprecated throwing shims, so neither needs to
// call the other's deprecated name (keeps this TU warning-clean).
circuit::Circuit first_error_or_circuit(ParseResult result) {
  if (!result.circuit) {
    for (const auto& d : result.diagnostics) {
      if (d.severity < core::Severity::Error) continue;
      // Preserve the historical exception types: malformed text throws
      // ParseError, structurally invalid circuits std::invalid_argument.
      if (d.code == core::DiagCode::ValidationError) {
        throw std::invalid_argument(d.message);
      }
      throw ParseError(d.line, d.column, d.element, d.message);
    }
    throw ParseError(0, "netlist rejected with no diagnostic");
  }
  return std::move(*result.circuit);
}

}  // namespace

circuit::Circuit parse(std::string_view text) {
  return first_error_or_circuit(parse_collect(text));
}

circuit::Circuit parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("netlist: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return first_error_or_circuit(parse_collect(buf.str()));
}

ParseResult parse_file_collect(const std::string& path, bool validate) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    core::Diagnostic d;
    d.code = core::DiagCode::ParseError;
    d.severity = core::Severity::Error;
    d.message = "cannot open '" + path + "'";
    d.file = path;
    result.diagnostics.push_back(std::move(d));
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_collect(buf.str(), path, validate);
}

namespace {

std::string format_stimulus(const circuit::Stimulus& s) {
  std::ostringstream out;
  out.precision(12);
  if (s.segments().empty()) {
    out << "DC " << s.initial_value();
    return out.str();
  }
  // Emit as PWL reproducing the breakpoint structure.
  out << "PWL(";
  // Reconstruct sample points: before first breakpoint, at each
  // breakpoint, and one point per linear piece end.
  double t_prev = s.segments().front().time;
  out << t_prev << " " << s.value(t_prev) << " ";
  for (std::size_t i = 0; i + 1 < s.segments().size(); ++i) {
    const double t = s.segments()[i + 1].time;
    out << t << " " << s.value(t) << " ";
  }
  const double t_last = s.last_breakpoint();
  out << t_last + 1.0 << " " << s.value(t_last + 1.0) << ")";
  return out.str();
}

}  // namespace

std::string write(const circuit::Circuit& ckt) {
  std::ostringstream out;
  out.precision(12);
  out << "* written by awesim\n";
  for (const auto& e : ckt.elements()) {
    using circuit::ElementKind;
    const std::string np = ckt.node_name(e.pos);
    const std::string nn = ckt.node_name(e.neg);
    switch (e.kind) {
      case ElementKind::Resistor:
        out << e.name << " " << np << " " << nn << " " << e.value << "\n";
        break;
      case ElementKind::Capacitor:
      case ElementKind::Inductor:
        out << e.name << " " << np << " " << nn << " " << e.value;
        if (e.initial_condition) out << " IC=" << *e.initial_condition;
        out << "\n";
        break;
      case ElementKind::VoltageSource:
      case ElementKind::CurrentSource:
        out << e.name << " " << np << " " << nn << " "
            << format_stimulus(e.stimulus) << "\n";
        break;
      case ElementKind::Vcvs:
      case ElementKind::Vccs:
        out << e.name << " " << np << " " << nn << " "
            << ckt.node_name(e.ctrl_pos) << " " << ckt.node_name(e.ctrl_neg)
            << " " << e.value << "\n";
        break;
      case ElementKind::Cccs:
      case ElementKind::Ccvs:
        out << e.name << " " << np << " " << nn << " " << e.ctrl_source
            << " " << e.value << "\n";
        break;
    }
  }
  for (const auto& [node, volts] : ckt.initial_node_voltages()) {
    out << ".ic v(" << ckt.node_name(node) << ")=" << volts << "\n";
  }
  out << ".end\n";
  return out.str();
}

}  // namespace awesim::netlist
