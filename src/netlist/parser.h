// SPICE-like netlist parsing, so the examples/benches can describe the
// paper's circuits the way a designer would, and so extracted interconnect
// can be loaded from files.
//
// Supported cards (case-insensitive; '*' and ';' comments; '+' line
// continuation; engineering suffixes f p n u m k meg g t):
//
//   Rname n+ n- value
//   Cname n+ n- value [IC=v]
//   Lname n+ n- value [IC=i]
//   Vname n+ n- DC value
//   Vname n+ n- STEP(v0 v1 [delay [rise]])
//   Vname n+ n- PWL(t1 v1 t2 v2 ...)
//   Iname n+ n- DC value | STEP(...) | PWL(...)
//   Ename n+ n- nc+ nc- gain          (VCVS)
//   Gname n+ n- nc+ nc- gm            (VCCS)
//   Fname n+ n- Vctrl gain            (CCCS)
//   Hname n+ n- Vctrl rm              (CCVS)
//   .ic V(node)=value ...
//   .end (optional)
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/circuit.h"
#include "core/diagnostic.h"

namespace awesim::netlist {

/// Parse failure with 1-based line (and, when known, column) context plus
/// the offending token.  what() reads
///   "netlist line L: message"            (no column known), or
///   "netlist line L:C: message (near 'token')".
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : ParseError(line, 0, "", message) {}

  ParseError(std::size_t line, std::size_t column, std::string token,
             const std::string& message)
      : std::runtime_error(format(line, column, token, message)),
        line_(line),
        column_(column),
        token_(std::move(token)),
        message_(message) {}

  std::size_t line() const { return line_; }
  /// 1-based column of the offending token; 0 when unknown.  For cards
  /// continued over several source lines the column indexes the joined
  /// card text.
  std::size_t column() const { return column_; }
  const std::string& token() const { return token_; }
  /// The bare message, without the location prefix.
  const std::string& message() const { return message_; }

 private:
  static std::string format(std::size_t line, std::size_t column,
                            const std::string& token,
                            const std::string& message) {
    std::string out = "netlist line " + std::to_string(line);
    if (column > 0) out += ":" + std::to_string(column);
    out += ": " + message;
    if (!token.empty()) out += " (near '" + token + "')";
    return out;
  }

  std::size_t line_;
  std::size_t column_;
  std::string token_;
  std::string message_;
};

/// Result of an error-collecting parse.  `circuit` is set only when no
/// Error-severity diagnostic was recorded; `diagnostics` holds every
/// problem found, in source order -- the parser recovers card by card so
/// one bad line does not hide the rest of the file's errors.
struct ParseResult {
  std::optional<circuit::Circuit> circuit;
  core::Diagnostics diagnostics;

  bool ok() const { return circuit.has_value(); }
};

/// Parse a netlist from text.  Throws ParseError on the FIRST problem
/// found (compat shim kept for out-of-tree callers; in-tree code uses
/// the error-collecting API).
[[deprecated(
    "use parse_collect(): it reports every error with file/line/column "
    "diagnostics instead of throwing on the first")]]
circuit::Circuit parse(std::string_view text);

/// Parse a netlist file.  Throws ParseError / std::runtime_error on the
/// first problem (compat shim; see parse()).
[[deprecated(
    "use parse_file_collect(): it reports every error with "
    "file/line/column diagnostics instead of throwing on the first")]]
circuit::Circuit parse_file(const std::string& path);

/// Parse, collecting ALL errors instead of throwing on the first.  Every
/// diagnostic carries file (if given), 1-based line and column, and the
/// offending token in its `element` field.  Every built element carries
/// its card's SourceLoc, so downstream checks (src/check) can point at
/// the offending netlist line.
///
/// `validate` controls the final Circuit::validate() gate.  The default
/// keeps the historical contract (a structurally invalid circuit yields
/// a ValidationError diagnostic and no circuit); the lint front end
/// passes false so it can run its own located rule pipeline over
/// circuits that parse but are electrically unsound.
ParseResult parse_collect(std::string_view text,
                          const std::string& filename = "",
                          bool validate = true);

/// File variant of parse_collect; an unreadable file yields a single
/// ParseError-coded diagnostic rather than throwing.
ParseResult parse_file_collect(const std::string& path,
                               bool validate = true);

/// Parse one engineering-notation value ("2.2k", "10p", "1meg", "4.7").
/// Throws std::invalid_argument on malformed input.
double parse_value(std::string_view token);

/// Serialize a circuit back to netlist text (round-trip tested).
std::string write(const circuit::Circuit& ckt);

}  // namespace awesim::netlist
