// SPICE-like netlist parsing, so the examples/benches can describe the
// paper's circuits the way a designer would, and so extracted interconnect
// can be loaded from files.
//
// Supported cards (case-insensitive; '*' and ';' comments; '+' line
// continuation; engineering suffixes f p n u m k meg g t):
//
//   Rname n+ n- value
//   Cname n+ n- value [IC=v]
//   Lname n+ n- value [IC=i]
//   Vname n+ n- DC value
//   Vname n+ n- STEP(v0 v1 [delay [rise]])
//   Vname n+ n- PWL(t1 v1 t2 v2 ...)
//   Iname n+ n- DC value | STEP(...) | PWL(...)
//   Ename n+ n- nc+ nc- gain          (VCVS)
//   Gname n+ n- nc+ nc- gm            (VCCS)
//   Fname n+ n- Vctrl gain            (CCCS)
//   Hname n+ n- Vctrl rm              (CCVS)
//   .ic V(node)=value ...
//   .end (optional)
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "circuit/circuit.h"

namespace awesim::netlist {

/// Parse failure with 1-based line number context.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parse a netlist from text.  Throws ParseError.
circuit::Circuit parse(std::string_view text);

/// Parse a netlist file.  Throws ParseError / std::runtime_error.
circuit::Circuit parse_file(const std::string& path);

/// Parse one engineering-notation value ("2.2k", "10p", "1meg", "4.7").
/// Throws std::invalid_argument on malformed input.
double parse_value(std::string_view token);

/// Serialize a circuit back to netlist text (round-trip tested).
std::string write(const circuit::Circuit& ckt);

}  // namespace awesim::netlist
