#include "core/moments.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/eig.h"
#include "la/lu.h"

namespace awesim::core {

namespace {

// Sigma for the s->infinity limits, as a multiple of the dominant natural
// frequency.  Richardson extrapolation squares the relative truncation
// error, so 1e6 here yields ~1e-12.
constexpr double kSigmaFactor = 1e6;

// Relative deviation beyond which the sigma-limit initial value replaces
// the nominal x_h0 entry (i.e. the response genuinely jumps at t=0+).
constexpr double kJumpTolerance = 1e-6;

}  // namespace

MomentSequence::MomentSequence(const mna::MnaSystem& mna,
                               la::RealVector x_h0)
    : mna_(&mna), x_h0_(std::move(x_h0)) {
  if (x_h0_.size() != mna.dim()) {
    throw std::invalid_argument("MomentSequence: x_h0 dimension mismatch");
  }
  mu_minus1_ = x_h0_;
  for (auto& v : mu_minus1_) v = -v;
}

const la::RealVector& MomentSequence::mu(int j) {
  if (j == -1) return mu_minus1_;
  if (j == -2) {
    if (!have_minus2_) {
      mu_minus2_ = sigma_limit(1);
      for (auto& v : mu_minus2_) v = -v;  // mu_{-2} = -x_h'(0+)
      have_minus2_ = true;
    }
    return mu_minus2_;
  }
  if (j < -2) {
    throw std::invalid_argument("MomentSequence: j >= -2 required");
  }
  while (positive_.size() <= static_cast<std::size_t>(j)) {
    const la::RealVector& prev =
        positive_.empty() ? x_h0_ : positive_.back();
    la::RealVector next = mna_->solve(mna_->apply_C(prev));
    if (!positive_.empty()) {
      for (auto& v : next) v = -v;
    }
    positive_.push_back(std::move(next));
  }
  return positive_[static_cast<std::size_t>(j)];
}

void MomentSequence::ensure(int j_max) {
  if (j_max >= 0) mu(j_max);
}

void MomentSequence::ensure_all(
    const std::vector<MomentSequence*>& sequences, int j_max) {
  if (j_max < 0 || sequences.empty()) return;
  const mna::MnaSystem* mna = sequences.front()->mna_;
  for (const auto* s : sequences) {
    if (s->mna_ != mna) {
      throw std::invalid_argument(
          "MomentSequence::ensure_all: sequences span different systems");
    }
  }
  const std::size_t want = static_cast<std::size_t>(j_max) + 1;
  for (;;) {
    // One lock-step round: every sequence still short of j_max
    // contributes the RHS of its next moment.
    std::vector<MomentSequence*> pending;
    std::vector<la::RealVector> rhs;
    for (auto* s : sequences) {
      if (s->positive_.size() >= want) continue;
      const la::RealVector& prev =
          s->positive_.empty() ? s->x_h0_ : s->positive_.back();
      pending.push_back(s);
      rhs.push_back(mna->apply_C(prev));
    }
    if (pending.empty()) break;
    std::vector<la::RealVector> solved = mna->solve_multi(rhs);
    for (std::size_t k = 0; k < pending.size(); ++k) {
      la::RealVector next = std::move(solved[k]);
      if (!pending[k]->positive_.empty()) {
        for (auto& v : next) v = -v;
      }
      pending[k]->positive_.push_back(std::move(next));
    }
  }
}

la::RealVector MomentSequence::sigma_limit(int derivative_order) {
  // Evaluate f(sigma) = sigma (G + sigma C)^{-1} C x_h0 -> x_h(0+), and
  // g(sigma) = sigma (f(sigma) - x_h(0+)) -> x_h'(0+), with one Richardson
  // step each to cancel the leading O(1/sigma) truncation term.
  //
  // The limit needs sigma >> |fastest pole|, which is not known a priori
  // for stiff circuits (and the dominant-pole moment ratio badly
  // underestimates it).  So walk sigma upward by factors of 100 until two
  // successive Richardson estimates agree.
  const std::size_t n = mna_->dim();
  // Starting scale: the dominant pole magnitude from the moment ratio.
  const double n0 = la::norm2(mu(0));
  const double n1 = la::norm2(mu(1));
  const double gamma = (n0 > 0.0 && n1 > 0.0) ? n0 / n1 : 1.0;

  auto f_of = [&](double sigma) {
    la::RealVector rhs = mna_->apply_C(x_h0_);
    for (auto& v : rhs) v *= sigma;
    return mna_->shifted(sigma).solve(rhs);
  };
  auto richardson_at = [&](double sigma) {
    const la::RealVector f1 = f_of(sigma);
    const la::RealVector f2 = f_of(2.0 * sigma);
    la::RealVector x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = 2.0 * f2[i] - f1[i];
    return x;
  };

  double sigma0 = kSigmaFactor * gamma;
  la::RealVector x0plus = richardson_at(sigma0);
  for (int iter = 0; iter < 8; ++iter) {
    const double next_sigma = sigma0 * 100.0;
    const la::RealVector next = richardson_at(next_sigma);
    const double scale = std::max(la::norm2(next), la::norm2(x0plus));
    const double diff = la::norm2(la::subtract(next, x0plus));
    sigma0 = next_sigma;
    x0plus = next;
    if (scale == 0.0 || diff <= 1e-9 * scale) break;
  }
  if (derivative_order == 0) return x0plus;

  // g(sigma) = sigma (f(sigma) - x0plus) -> x_h'(0+).  Here sigma must be
  // large enough for truncation but not so large that the subtraction
  // cancels to rounding noise, so run a separate walk and keep the
  // estimate at which successive iterates agree best.
  auto slope_at = [&](double sigma) {
    const la::RealVector fa = f_of(sigma);
    const la::RealVector fb = f_of(2.0 * sigma);
    la::RealVector s(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ga = sigma * (fa[i] - x0plus[i]);
      const double gb = 2.0 * sigma * (fb[i] - x0plus[i]);
      s[i] = 2.0 * gb - ga;
    }
    return s;
  };
  double sigma_s = kSigmaFactor * gamma;
  la::RealVector slope = slope_at(sigma_s);
  la::RealVector best = slope;
  double best_diff = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 6; ++iter) {
    sigma_s *= 100.0;
    const la::RealVector next = slope_at(sigma_s);
    const double scale = std::max(la::norm2(next), la::norm2(slope));
    const double diff =
        scale > 0.0 ? la::norm2(la::subtract(next, slope)) / scale : 0.0;
    if (diff < best_diff) {
      best_diff = diff;
      best = next;
    }
    slope = next;
    if (diff <= 1e-7) break;
  }
  return best;
}

const la::RealVector& MomentSequence::consistent_initial_value() {
  if (!have_consistent_) {
    consistent_x0_ = sigma_limit(0);
    have_consistent_ = true;
  }
  return consistent_x0_;
}

bool MomentSequence::has_jump(std::size_t index) {
  const double nominal = x_h0_[index];
  const double actual = consistent_initial_value()[index];
  const double scale =
      std::max({std::abs(nominal), std::abs(actual), 1e-300});
  return std::abs(nominal - actual) > kJumpTolerance * scale;
}

double MomentSequence::gamma_estimate(std::size_t index) {
  // First pair of consecutive moments that are both clearly nonzero.
  double scale = 0.0;
  for (int j = -1; j <= 2; ++j) scale = std::max(scale, std::abs(mu(j, index)));
  if (scale == 0.0) return 1.0;
  for (int j = -1; j <= 4; ++j) {
    const double a = std::abs(mu(j, index));
    const double b = std::abs(mu(j + 1, index));
    if (a > 1e-12 * scale && b > 0.0) {
      const double g = a / b;
      if (std::isfinite(g) && g > 0.0) return g;
    }
  }
  return 1.0;
}

la::ComplexVector actual_poles(const mna::MnaSystem& mna,
                               double drop_tolerance) {
  const std::size_t n = mna.dim();
  // W = G^{-1} C, built column by column with the shared LU.
  la::RealMatrix w(n, n);
  la::RealVector col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = mna.C()(i, j);
    const la::RealVector wj = mna.solve(col);
    for (std::size_t i = 0; i < n; ++i) w(i, j) = wj[i];
  }
  const la::ComplexVector lambda = la::eigenvalues(w);
  double max_mag = 0.0;
  for (const auto& l : lambda) max_mag = std::max(max_mag, std::abs(l));
  la::ComplexVector poles;
  for (const auto& l : lambda) {
    if (std::abs(l) > drop_tolerance * max_mag) {
      poles.push_back(-1.0 / l);
    }
  }
  std::sort(poles.begin(), poles.end(),
            [](const la::Complex& a, const la::Complex& b) {
              const double ma = std::abs(a);
              const double mb = std::abs(b);
              if (ma != mb) return ma < mb;
              return a.imag() < b.imag();
            });
  return poles;
}

}  // namespace awesim::core
