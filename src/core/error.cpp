#include "core/error.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace awesim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double factorial(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) f *= static_cast<double>(i);
  return f;
}

// int_0^inf t^(a+b) e^{(p+q)t} dt * 1/(a! b!) for one term pair.
// Returns nullopt-like divergence through the bool flag.
bool pair_integral(const PoleResidueTerm& x, const PoleResidueTerm& y,
                   la::Complex* out) {
  const la::Complex s = x.pole + y.pole;
  if (s.real() >= 0.0) return false;
  const int a = x.power - 1;
  const int b = y.power - 1;
  const double coeff = factorial(a + b) / (factorial(a) * factorial(b));
  *out = x.residue * y.residue * coeff / std::pow(-s, a + b + 1);
  return true;
}

// Group conjugate-pair terms into real-valued sub-functions, so the
// Cauchy-bound pairing (eq. 46) always compares real functions.
struct RealGroup {
  std::vector<PoleResidueTerm> terms;  // 1 (real pole) or 2 (conj pair)
  la::Complex key;                     // representative pole
  la::Complex residue_sum() const {
    la::Complex k{0.0, 0.0};
    for (const auto& t : terms) k += t.residue;
    return k;
  }
};

std::vector<RealGroup> group_conjugates(
    const std::vector<PoleResidueTerm>& terms) {
  std::vector<RealGroup> groups;
  std::vector<bool> used(terms.size(), false);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (used[i]) continue;
    RealGroup g;
    g.terms.push_back(terms[i]);
    g.key = terms[i].pole;
    used[i] = true;
    if (std::abs(terms[i].pole.imag()) >
        1e-12 * std::abs(terms[i].pole)) {
      // Find the conjugate partner.
      for (std::size_t j = i + 1; j < terms.size(); ++j) {
        if (used[j]) continue;
        if (std::abs(terms[j].pole - std::conj(terms[i].pole)) <=
            1e-9 * std::abs(terms[i].pole)) {
          g.terms.push_back(terms[j]);
          used[j] = true;
          break;
        }
      }
      g.key = la::Complex(terms[i].pole.real(),
                          std::abs(terms[i].pole.imag()));
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace

double inner_product(const std::vector<PoleResidueTerm>& f,
                     const std::vector<PoleResidueTerm>& g) {
  la::Complex acc{0.0, 0.0};
  for (const auto& x : f) {
    for (const auto& y : g) {
      la::Complex v;
      if (!pair_integral(x, y, &v)) return kInf;
      acc += v;
    }
  }
  return acc.real();
}

double l2_distance(const std::vector<PoleResidueTerm>& f,
                   const std::vector<PoleResidueTerm>& g) {
  std::vector<PoleResidueTerm> diff = f;
  for (PoleResidueTerm t : g) {
    t.residue = -t.residue;
    diff.push_back(t);
  }
  const double sq = inner_product(diff, diff);
  if (!std::isfinite(sq)) return kInf;
  return std::sqrt(std::max(0.0, sq));
}

double exact_relative_error(const std::vector<PoleResidueTerm>& ref,
                            const std::vector<PoleResidueTerm>& approx) {
  const double den_sq = inner_product(ref, ref);
  if (!std::isfinite(den_sq)) return kInf;
  const double num = l2_distance(ref, approx);
  if (!std::isfinite(num)) return kInf;
  if (den_sq <= 0.0) return num > 0.0 ? kInf : 0.0;
  return num / std::sqrt(den_sq);
}

double cauchy_relative_error(const std::vector<PoleResidueTerm>& ref,
                             const std::vector<PoleResidueTerm>& approx) {
  const bool all_simple =
      std::all_of(ref.begin(), ref.end(),
                  [](const PoleResidueTerm& t) { return t.power == 1; }) &&
      std::all_of(approx.begin(), approx.end(),
                  [](const PoleResidueTerm& t) { return t.power == 1; });
  if (!all_simple) return exact_relative_error(ref, approx);

  const double den_sq = inner_product(ref, ref);
  if (!std::isfinite(den_sq)) return kInf;

  auto rgroups = group_conjugates(ref);
  auto agroups = group_conjugates(approx);
  if (rgroups.empty()) {
    return approx.empty() ? 0.0 : kInf;
  }

  // Pair each approximation group with its nearest reference group
  // (greedy over ascending pole distance), per the paper's "poles and
  // residues which lie closest to one another" rule.
  struct Pairing {
    double dist;
    std::size_t r, a;
  };
  std::vector<Pairing> candidates;
  for (std::size_t r = 0; r < rgroups.size(); ++r) {
    for (std::size_t a = 0; a < agroups.size(); ++a) {
      candidates.push_back(
          {std::abs(rgroups[r].key - agroups[a].key), r, a});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Pairing& x, const Pairing& y) {
              return x.dist < y.dist;
            });
  std::vector<int> ref_to_approx(rgroups.size(), -1);
  std::vector<int> approx_primary(agroups.size(), -1);
  for (const auto& cand : candidates) {
    if (approx_primary[cand.a] >= 0 || ref_to_approx[cand.r] >= 0) continue;
    approx_primary[cand.a] = static_cast<int>(cand.r);
    ref_to_approx[cand.r] = static_cast<int>(cand.a);
  }
  // Leftover reference groups attach to the nearest approximation group;
  // that group's residue is split (eq. 42/43): its primary partner keeps
  // the primary's reference residue, the final extra takes the remainder.
  std::vector<std::vector<std::size_t>> extras(agroups.size());
  for (std::size_t r = 0; r < rgroups.size(); ++r) {
    if (ref_to_approx[r] >= 0) continue;
    double best = kInf;
    std::size_t best_a = 0;
    for (std::size_t a = 0; a < agroups.size(); ++a) {
      const double d = std::abs(rgroups[r].key - agroups[a].key);
      if (d < best) {
        best = d;
        best_a = a;
      }
    }
    if (agroups.empty()) break;
    extras[best_a].push_back(r);
  }

  double sum_e = 0.0;
  auto with_residue_scale = [](const RealGroup& g, la::Complex factor) {
    std::vector<PoleResidueTerm> t = g.terms;
    for (auto& term : t) term.residue *= factor;
    return t;
  };
  for (std::size_t a = 0; a < agroups.size(); ++a) {
    if (approx_primary[a] < 0) {
      // Approximation group with no reference partner: its whole energy
      // counts as error.
      const double sq = inner_product(agroups[a].terms, agroups[a].terms);
      if (!std::isfinite(sq)) return kInf;
      sum_e += sq;
      continue;
    }
    const RealGroup& primary =
        rgroups[static_cast<std::size_t>(approx_primary[a])];
    if (extras[a].empty()) {
      const double d = l2_distance(primary.terms, agroups[a].terms);
      if (!std::isfinite(d)) return kInf;
      sum_e += d * d;
      continue;
    }
    // Split: primary comparison uses the primary reference residue on the
    // approximating pole; extras consume the remainder.
    const la::Complex k_hat = agroups[a].residue_sum();
    const la::Complex k_primary = primary.residue_sum();
    la::Complex assigned = k_primary;
    const la::Complex scale_primary =
        k_hat != la::Complex{0.0, 0.0} ? k_primary / k_hat
                                       : la::Complex{0.0, 0.0};
    {
      const double d = l2_distance(
          primary.terms, with_residue_scale(agroups[a], scale_primary));
      if (!std::isfinite(d)) return kInf;
      sum_e += d * d;
    }
    for (std::size_t idx = 0; idx < extras[a].size(); ++idx) {
      const RealGroup& extra = rgroups[extras[a][idx]];
      la::Complex share{0.0, 0.0};
      if (idx + 1 == extras[a].size()) {
        share = k_hat - assigned;  // remainder
      }
      assigned += share;
      const la::Complex scale =
          k_hat != la::Complex{0.0, 0.0} ? share / k_hat
                                         : la::Complex{0.0, 0.0};
      const double d =
          l2_distance(extra.terms, with_residue_scale(agroups[a], scale));
      if (!std::isfinite(d)) return kInf;
      sum_e += d * d;
    }
  }

  const double factor = static_cast<double>(rgroups.size());
  const double num_sq = factor * sum_e;
  if (den_sq <= 0.0) return num_sq > 0.0 ? kInf : 0.0;
  return std::sqrt(num_sq / den_sq);
}

}  // namespace awesim::core
