// Stimulus-independent reduced-order transfer models (macromodels).
//
// Engine::approximate() analyzes one concrete stimulus.  A TransferModel
// instead reduces the path from one independent source to one output node
// once -- q poles, q residues, and the DC gain, from the moments of the
// unit step response -- and can then synthesize the response to *any*
// piecewise-linear stimulus of that source in closed form, by the paper's
// Section 4.3 superposition: each breakpoint contributes a scaled/shifted
// copy of the unit step response (value jumps) and of its running
// integral, the unit ramp response (slope changes).
//
// This is the "interconnect macromodel" usage of AWE: characterize a net
// once, then evaluate many switching scenarios (different rise times,
// arrival offsets) at negligible cost.
#pragma once

#include <string>

#include "circuit/circuit.h"
#include "core/pade.h"
#include "mna/system.h"

namespace awesim::core {

class TransferModel {
 public:
  /// Reduce the path from independent source `source_name` (voltage or
  /// current source) to node `output` at order q.  Other sources are set
  /// to zero (superposition); initial conditions do not apply (zero-state
  /// model).  Throws std::invalid_argument for unknown source/output.
  TransferModel(const mna::MnaSystem& mna, const std::string& source_name,
                circuit::NodeId output, int q,
                const MatchOptions& options = {});

  /// Steady-state gain from the source to the output.
  double dc_gain() const { return dc_gain_; }

  /// Poles/residues of the unit step response transient (the response is
  /// dc_gain + sum residues*exp(pole t)).
  const std::vector<PoleResidueTerm>& terms() const { return terms_; }

  int order_used() const { return order_used_; }
  bool stable() const { return stable_; }

  /// Response to a unit step applied at t = 0 (0 for t < 0).
  double unit_step(double t) const;

  /// Response to a unit ramp (slope 1) starting at t = 0: the running
  /// integral of unit_step, in closed form.
  double unit_ramp(double t) const;

  /// Zero-state response to an arbitrary stimulus of the modeled source,
  /// assembled by breakpoint superposition.
  double response(const circuit::Stimulus& stimulus, double t) const;

 private:
  double dc_gain_ = 0.0;
  std::vector<PoleResidueTerm> terms_;
  int order_used_ = 0;
  bool stable_ = true;
};

}  // namespace awesim::core
