#include "core/fault.h"

#include <cstdlib>

namespace awesim::core {

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("AWESIM_FAULTS")) {
    arm_spec(env);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::vector<FaultRule> rules) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(rules);
  remaining_.clear();
  for (const auto& r : rules_) {
    remaining_.push_back(r.fire_limit < 0 ? -1 : r.fire_limit);
  }
  site_fired_.clear();
  enabled_.store(!rules_.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  remaining_.clear();
  site_fired_.clear();
  enabled_.store(false, std::memory_order_release);
}

bool FaultInjector::should_fire(std::string_view site,
                                std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.site != site) continue;
    if (r.key != "*" && r.key != key) continue;
    if (remaining_[i] == 0) continue;
    if (remaining_[i] > 0) --remaining_[i];
    bool found = false;
    for (auto& [s, n] : site_fired_) {
      if (s == site) {
        ++n;
        found = true;
        break;
      }
    }
    if (!found) site_fired_.emplace_back(std::string(site), 1);
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [s, n] : site_fired_) {
    if (s == site) return n;
  }
  return 0;
}

std::uint64_t FaultInjector::fired_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [s, n] : site_fired_) total += n;
  return total;
}

bool FaultInjector::arm_spec(std::string_view spec) {
  std::vector<FaultRule> rules;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    FaultRule rule;
    const std::size_t at = item.rfind('@');
    if (at != std::string_view::npos) {
      rule.fire_limit =
          std::atoi(std::string(item.substr(at + 1)).c_str());
      item = item.substr(0, at);
    }
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      rule.site = std::string(item);
    } else {
      rule.site = std::string(item.substr(0, colon));
      rule.key = std::string(item.substr(colon + 1));
      // push_back rather than = "*": GCC 12's -Wrestrict misfires on
      // string::operator=(const char*) here at -O2 (GCC PR 105651).
      if (rule.key.empty()) rule.key.push_back('*');
    }
    if (!rule.site.empty()) rules.push_back(std::move(rule));
  }
  if (rules.empty()) return false;
  arm(std::move(rules));
  return true;
}

}  // namespace awesim::core
