// Moment generation for AWE (Section 3.2 of the paper).
//
// For the homogeneous (transient) part of the response the Laplace-domain
// solution is  X_h(s) = (G + sC)^{-1} C x_h0,  with x_h0 = x(0-) - x_p(0)
// the deviation of the initial state from the particular solution.  Its
// Maclaurin coefficients ("circuit moments") follow from one LU
// factorization of G and repeated forward/back substitution:
//
//     M_0 = G^{-1} C x_h0,      M_{j+1} = -G^{-1} C M_j .
//
// AWE matches the uniform moment sequence
//
//     mu_{-1} = -x_h0   (initial transient value, with sign so that the
//                        Hankel recurrence below is uniform in j),
//     mu_j    = M_j     (j >= 0),
//
// which satisfies  sum_l k_l p_l^{-(j+1)} = -mu_j  for an exact q-pole
// response -- the uniform restatement of the paper's eq. (16) that makes
// eq. (24) a plain Hankel system.  Optionally mu_{-2} = -x_h'(0+) extends
// the window downward to pin the initial slope (Section 4.3's m_{-2}
// matching for ramp inputs).
#pragma once

#include <map>
#include <vector>

#include "la/matrix.h"
#include "mna/system.h"

namespace awesim::core {

/// Lazily extended moment sequence of one homogeneous problem (one "atom"
/// of the stimulus decomposition).
class MomentSequence {
 public:
  /// x_h0 is the full MNA-space homogeneous initial vector.
  MomentSequence(const mna::MnaSystem& mna, la::RealVector x_h0);

  /// Moment vector mu_j, j >= -2.  Vectors are cached; each new positive
  /// order costs one forward/back substitution with the shared LU of G.
  /// j = -2 triggers the sigma-limit slope computation (see below).
  const la::RealVector& mu(int j);

  /// Scalar moment at one unknown index.
  double mu(int j, std::size_t index) { return mu(j)[index]; }

  /// Pre-compute every positive moment up to and including mu_{j_max}
  /// (no-op for j_max < 0).
  void ensure(int j_max);

  /// Advance several sequences that share one MnaSystem in lock step:
  /// at each moment order the pending right-hand sides of all sequences
  /// are solved as one multi-RHS block against the single cached LU of
  /// G.  Values are bitwise identical to growing each sequence lazily;
  /// this is the batch engine's "build the full-state moment vectors
  /// once" path.  Throws std::invalid_argument if the sequences do not
  /// all reference the same system.
  static void ensure_all(const std::vector<MomentSequence*>& sequences,
                         int j_max);

  /// The consistent transient initial value x_h(0+), equal to x_h0 except
  /// when the stimulus forces an instantaneous (capacitive) jump.
  /// Computed once by Richardson-extrapolated evaluation of
  /// sigma*(G + sigma*C)^{-1} C x_h0 at large sigma.
  const la::RealVector& consistent_initial_value();

  /// True if x_h(0+) differs materially from x_h0 at any unknown (the
  /// circuit jumps at t=0, e.g. a capacitive divider driven by a step).
  bool has_jump(std::size_t index);

  /// Estimate of the dominant natural frequency magnitude at one output,
  /// |mu_j / mu_{j+1}| for the first usable pair -- the paper's frequency
  /// scale factor gamma (eq. 47).
  double gamma_estimate(std::size_t index);

  const la::RealVector& x_h0() const { return x_h0_; }

 private:
  la::RealVector sigma_limit(int derivative_order);

  const mna::MnaSystem* mna_;
  la::RealVector x_h0_;
  std::vector<la::RealVector> positive_;  // M_0, M_1, ...
  la::RealVector mu_minus1_;
  bool have_minus2_ = false;
  la::RealVector mu_minus2_;
  bool have_consistent_ = false;
  la::RealVector consistent_x0_;
};

/// The actual natural frequencies of the circuit: p = -1/lambda for the
/// nonzero eigenvalues lambda of W = G^{-1} C.  Used for the paper's
/// Tables I and II ("actual poles") and for pole-creep tests.  O(n^3);
/// intended for analysis, not for the timing path.
la::ComplexVector actual_poles(const mna::MnaSystem& mna,
                               double drop_tolerance = 1e-9);

}  // namespace awesim::core
