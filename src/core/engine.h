// The AWE engine: the public entry point of the library.
//
// Given a linear circuit with arbitrary initial conditions and
// step/ramp/PWL stimuli, produce a q-pole approximation of any node
// voltage, exactly as Sections III-V of the paper describe:
//
//   * the stimulus is decomposed into step+ramp "atoms" (Section 4.3's
//     superposition of ramps, generalized to arbitrary PWL inputs);
//   * each atom's particular (affine) solution is found by DC analysis,
//     the homogeneous remainder's moments are generated with one shared
//     LU factorization, and a q-pole model is matched to them;
//   * the accuracy of order q is estimated against order q+1 (eq. 39),
//     and in auto-order mode q is escalated until the estimate passes the
//     tolerance or poles stop being stable (Sections 3.3/3.4).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/diagnostic.h"
#include "core/moments.h"
#include "core/pade.h"
#include "core/stats.h"
#include "mna/system.h"
#include "waveform/waveform.h"

namespace awesim::core {

struct EngineOptions {
  /// Approximation order q (number of poles per atom).
  int order = 2;

  /// If true, start at `order` and escalate until the error estimate is
  /// below `error_tolerance` (or `max_order` is reached).  Instability of
  /// any atom also forces escalation, per Section 3.3.
  bool auto_order = false;
  double error_tolerance = 0.02;
  int max_order = 8;

  /// eq. 47 frequency scaling (ablatable).
  bool frequency_scaling = true;

  /// Additionally match mu_{-2} (the t=0+ slope), Section 4.3.  Uses one
  /// moment window position lower; removes the initial-slope glitch of
  /// ramp responses at the cost of one high-order moment.
  bool match_initial_slope = false;

  /// Replace mu_{-1} with the sigma-limit consistent initial value when
  /// the response jumps at t=0+ (capacitively coupled outputs).
  bool jump_consistent = true;

  /// Use the paper's Cauchy-inequality error bound instead of the exact
  /// closed-form eq. 39 evaluation.
  bool cauchy_error_bound = false;

  /// When the eq. 24 window yields an unstable model (positive pole,
  /// Section 3.3), retry with the pole window shifted to pure moments
  /// before resorting to order escalation.  See MatchOptions::pole_shift.
  bool allow_window_shift = true;

  /// Compute the q-vs-(q+1) error estimate.  Disable to measure the bare
  /// approximation cost (the Fig. 19 / speedup benches); implies
  /// Result::error_estimate is NaN and auto_order is unavailable.
  bool estimate_error = true;

  /// Run the src/check static lint pipeline over the circuit before the
  /// first approximation this engine performs (memoized: one lint per
  /// Engine, whatever the number of approximate calls).  Error-severity
  /// findings -- voltage-source/inductor loops, current sources cut off
  /// by capacitors, islands driven by sources, nonphysical values --
  /// would otherwise surface as a SingularPivot deep inside the LU with
  /// nothing but matrix indices; with the pre-flight they throw
  /// DiagnosticError carrying the first lint record (element names,
  /// node names, netlist file:line:column).  Warnings never block; they
  /// are tallied into Stats::lint_warnings only.
  ///
  /// This is the documented escape hatch: set false when the caller has
  /// already linted the circuit (the timing analyzer pre-flights each
  /// stage itself and passes false here), or when deliberately feeding
  /// pathological circuits to study raw behavior (the Fig. 20/21
  /// instability benches).
  bool preflight_lint = true;

  /// Opt-in advisory companion to preflight_lint: run the src/check
  /// conditioning oracle (Elmore tau spread, moment-growth ratio,
  /// nonequilibrium-IC rule) over the circuit before the first
  /// approximation and, when the requested order falls outside the
  /// predicted safe window, append a Warning-severity
  /// ConditioningHazard record to every Result's diagnostics and bump
  /// Stats::conditioning_hazards.  Never blocks and never changes the
  /// numbers -- the degradation ladder still decides what to answer;
  /// this only explains *in advance* why the ladder is about to fire
  /// (the Fig. 20/21 raw-instability pattern).  Off by default because
  /// the whole-design audit (src/audit) and the timing analyzer already
  /// assess per-net conditioning; enable for direct Engine use.
  bool preflight_audit = false;

  /// Walk the degradation ladder instead of returning an unstable model:
  /// when the eq. 24 window and the Section 3.3 shifted window both fail
  /// (and auto-order escalation, if enabled, is exhausted), step the
  /// order down q-1, ..., 1 and finally fall back to the flagged Elmore
  /// bound.  Result::status records how far down the ladder the answer
  /// came from.  Disable to study raw instability (the Fig. 20/21
  /// benches).
  bool degrade = true;

  MatchOptions match;
};

/// How far down the degradation ladder a Result had to go.  Ordered by
/// increasing severity; a multi-atom result reports its worst rung.
enum class ApproxStatus {
  Ok = 0,          // matched at the requested (or auto-escalated) order
  WindowShifted,   // Section 3.3 shifted pole window engaged
  OrderReduced,    // stepped down below the requested order for stability
  ElmoreFallback,  // answered with the flagged single-pole Elmore bound
  Failed,          // no transient model at all; affine (DC) part only
};

const char* to_string(ApproxStatus status);

/// The q-pole response model of one stimulus atom starting at
/// `start_time`: for t >= start_time (local time T = t - start_time),
///   v(T) = affine_offset + affine_slope*T + sum terms(T).
struct AtomApproximation {
  double start_time = 0.0;
  double affine_offset = 0.0;
  double affine_slope = 0.0;
  std::vector<PoleResidueTerm> terms;
  MatchResult match;  // diagnostics of the moment match
};

/// A complete waveform approximation: the superposition of all atoms.
class Approximation {
 public:
  double value(double t) const;

  /// Final value (t -> inf); requires all atoms stable and no residual
  /// ramp.  Matches the exact DC answer by construction (m_0 matching).
  double final_value() const;

  bool stable() const;

  /// First crossing of `level` in [t0, t1], located by dense scan plus
  /// bisection; nullopt if never crossed.  Handles nonmonotone waveforms.
  std::optional<double> first_crossing(double level, double t0,
                                       double t1) const;

  /// Sample into a Waveform for plotting/comparison.
  waveform::Waveform sample(double t0, double t1, std::size_t count) const;

  const std::vector<AtomApproximation>& atoms() const { return atoms_; }
  std::vector<AtomApproximation>& atoms() { return atoms_; }

  /// A time scale for plotting: slowest |1/Re(pole)| over all atoms
  /// (0 if there are no terms).
  double dominant_time_constant() const;

  /// Exact closed-form integral  int_0^inf (v(t) - final_value()) dt.
  /// The homogeneous parts integrate to their matched mu_0 moments; the
  /// transient part of the affine superposition (nonzero only between
  /// stimulus breakpoints) integrates exactly as a piecewise-linear
  /// function.  For a unit step response this is minus the Elmore delay;
  /// for a victim noise bump (final value 0) it is the transferred
  /// charge's voltage-time area, exact by construction (Fig. 24).
  /// Requires a finite final value (no unbounded ramp) and stable atoms.
  double settling_area() const;

 private:
  std::vector<AtomApproximation> atoms_;
  friend class Engine;
};

struct Result {
  Approximation approximation;

  /// Largest order actually used across atoms.
  int order_used = 0;
  bool stable = true;

  /// Relative error estimate of order q vs order q+1 (eq. 39), maximized
  /// over atoms; NaN if not computable (unstable q+1 model).
  double error_estimate = 0.0;

  /// Moment sequence mu_{-1}..mu_{2q} of the first atom at the output
  /// (for tables and for the Elmore value mu_0).
  std::vector<double> output_moments;

  /// True if the gmin floating-node fallback engaged.
  bool used_gmin = false;

  /// Worst degradation-ladder rung over all atoms of this output.
  ApproxStatus status = ApproxStatus::Ok;

  /// Structured record of every fallback that fired for this output
  /// (window shifts, order step-downs, Elmore/gmin fallbacks, injected
  /// faults), in the order they were met.
  core::Diagnostics diagnostics;
};

/// The result of one approximate_all call: per-output approximations in
/// request order plus the shared cost diagnostics of the whole batch.
struct BatchResult {
  std::vector<Result> results;

  /// Engine-phase counters for this batch only (the circuit-level work
  /// -- LU factorization, particular solutions, moment vectors -- is
  /// done once and shared by every output).
  Stats stats;
};

class Engine {
 public:
  explicit Engine(const circuit::Circuit& ckt, mna::Options mna = {});

  /// Approximate the voltage at `output` (a non-ground node).
  Result approximate(circuit::NodeId output, const EngineOptions& options);

  /// Approximate several outputs of the same circuit at once.  The atom
  /// problems and full-state moment vectors are output-independent, so
  /// they are built exactly once (one LU factorization, one multi-RHS
  /// moment recursion); per output only the cheap Hankel/root/
  /// Vandermonde match runs.  Results are bitwise identical to calling
  /// approximate() per output, in request order.
  BatchResult approximate_all(std::span<const circuit::NodeId> outputs,
                              const EngineOptions& options);

  /// Cumulative cost counters over the life of this engine.
  const Stats& stats() const { return stats_; }

  /// The circuit's exact natural frequencies (dense eigenvalue solve;
  /// for Tables I/II style comparisons, not for the timing path).
  la::ComplexVector actual_poles() const;

  /// Elmore delay at a node: -mu_0 of the unit-step transient normalized
  /// by the step amplitude.  Defined for any circuit with a DC path; for
  /// RC trees equals the classic tree-walk value (eq. 50).
  double elmore_delay(circuit::NodeId output);

  const mna::MnaSystem& system() const { return mna_; }

 private:
  struct AtomProblem {
    double start_time = 0.0;
    la::RealVector particular_offset;  // x_b
    la::RealVector particular_slope;   // x_a
    MomentSequence moments;
  };

  struct LadderOutcome {
    MatchResult match;
    ApproxStatus status = ApproxStatus::Ok;
  };

  std::vector<AtomProblem>& atom_problems();
  const la::RealVector& equilibrium();
  void preflight(const EngineOptions& options);
  Result approximate_at(std::size_t out, const EngineOptions& options);
  MatchResult attempt_order(const std::vector<double>& mu, int j0, int qq,
                            const EngineOptions& options,
                            core::Diagnostics* diags);
  LadderOutcome match_with_ladder(const std::vector<double>& mu, int j0,
                                  int q, const EngineOptions& options,
                                  bool allow_degrade,
                                  const std::string& node_name,
                                  core::Diagnostics* diags);
  void sync_mna_stats();

  mna::MnaSystem mna_;
  std::vector<AtomProblem> atoms_;
  bool atoms_built_ = false;
  bool lint_done_ = false;
  bool audit_done_ = false;
  std::optional<Diagnostic> audit_diag_;
  std::optional<la::RealVector> x_eq_;
  Stats stats_;
};

}  // namespace awesim::core
