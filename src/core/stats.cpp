#include "core/stats.h"

#include <cstdio>

namespace awesim::core {

Stats& Stats::operator+=(const Stats& other) {
  factorizations += other.factorizations;
  substitutions += other.substitutions;
  matches += other.matches;
  outputs += other.outputs;
  stages += other.stages;
  seconds_setup += other.seconds_setup;
  seconds_moments += other.seconds_moments;
  seconds_match += other.seconds_match;
  return *this;
}

Stats& Stats::operator-=(const Stats& other) {
  factorizations -= other.factorizations;
  substitutions -= other.substitutions;
  matches -= other.matches;
  outputs -= other.outputs;
  stages -= other.stages;
  seconds_setup -= other.seconds_setup;
  seconds_moments -= other.seconds_moments;
  seconds_match -= other.seconds_match;
  return *this;
}

Stats operator+(Stats a, const Stats& b) { return a += b; }
Stats operator-(Stats a, const Stats& b) { return a -= b; }

std::string Stats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%llu LU, %llu subst, %llu matches, %llu outputs, "
                "%llu stages | setup %.3g ms, moments %.3g ms, "
                "match %.3g ms",
                static_cast<unsigned long long>(factorizations),
                static_cast<unsigned long long>(substitutions),
                static_cast<unsigned long long>(matches),
                static_cast<unsigned long long>(outputs),
                static_cast<unsigned long long>(stages),
                seconds_setup * 1e3, seconds_moments * 1e3,
                seconds_match * 1e3);
  return buf;
}

}  // namespace awesim::core
