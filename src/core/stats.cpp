#include "core/stats.h"

#include <cstdio>

namespace awesim::core {

Stats& Stats::operator+=(const Stats& other) {
  factorizations += other.factorizations;
  substitutions += other.substitutions;
  matches += other.matches;
  outputs += other.outputs;
  stages += other.stages;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  stages_reused += other.stages_reused;
  stages_recomputed += other.stages_recomputed;
  cache_evictions += other.cache_evictions;
  low_rank_points += other.low_rank_points;
  low_rank_refactorizations += other.low_rank_refactorizations;
  lint_errors += other.lint_errors;
  lint_warnings += other.lint_warnings;
  conditioning_hazards += other.conditioning_hazards;
  window_shifts += other.window_shifts;
  order_stepdowns += other.order_stepdowns;
  elmore_fallbacks += other.elmore_fallbacks;
  degradations += other.degradations;
  failures += other.failures;
  seconds_setup += other.seconds_setup;
  seconds_moments += other.seconds_moments;
  seconds_match += other.seconds_match;
  obs::merge_into(phases, other.phases);
  return *this;
}

Stats& Stats::operator-=(const Stats& other) {
  factorizations -= other.factorizations;
  substitutions -= other.substitutions;
  matches -= other.matches;
  outputs -= other.outputs;
  stages -= other.stages;
  cache_hits -= other.cache_hits;
  cache_misses -= other.cache_misses;
  stages_reused -= other.stages_reused;
  stages_recomputed -= other.stages_recomputed;
  cache_evictions -= other.cache_evictions;
  low_rank_points -= other.low_rank_points;
  low_rank_refactorizations -= other.low_rank_refactorizations;
  lint_errors -= other.lint_errors;
  lint_warnings -= other.lint_warnings;
  conditioning_hazards -= other.conditioning_hazards;
  window_shifts -= other.window_shifts;
  order_stepdowns -= other.order_stepdowns;
  elmore_fallbacks -= other.elmore_fallbacks;
  degradations -= other.degradations;
  failures -= other.failures;
  seconds_setup -= other.seconds_setup;
  seconds_moments -= other.seconds_moments;
  seconds_match -= other.seconds_match;
  obs::subtract_into(phases, other.phases);
  return *this;
}

Stats operator+(Stats a, const Stats& b) { return a += b; }
Stats operator-(Stats a, const Stats& b) { return a -= b; }

std::string Stats::summary() const {
  char buf[512];
  int n = std::snprintf(
      buf, sizeof buf,
      "%llu LU, %llu subst, %llu matches, %llu outputs, "
      "%llu stages | setup %.3g ms, moments %.3g ms, "
      "match %.3g ms",
      static_cast<unsigned long long>(factorizations),
      static_cast<unsigned long long>(substitutions),
      static_cast<unsigned long long>(matches),
      static_cast<unsigned long long>(outputs),
      static_cast<unsigned long long>(stages), seconds_setup * 1e3,
      seconds_moments * 1e3, seconds_match * 1e3);
  if (degradations + failures > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof buf) {
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                       " | %llu degraded (%llu shift, %llu stepdown, "
                       "%llu elmore), %llu failed",
                       static_cast<unsigned long long>(degradations),
                       static_cast<unsigned long long>(window_shifts),
                       static_cast<unsigned long long>(order_stepdowns),
                       static_cast<unsigned long long>(elmore_fallbacks),
                       static_cast<unsigned long long>(failures));
  }
  if (lint_errors + lint_warnings > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof buf) {
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                       " | lint %llu error, %llu warning",
                       static_cast<unsigned long long>(lint_errors),
                       static_cast<unsigned long long>(lint_warnings));
  }
  if (cache_hits + cache_misses > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof buf) {
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                       " | cache %llu hit, %llu miss "
                       "(%llu stages reused, %llu recomputed)",
                       static_cast<unsigned long long>(cache_hits),
                       static_cast<unsigned long long>(cache_misses),
                       static_cast<unsigned long long>(stages_reused),
                       static_cast<unsigned long long>(stages_recomputed));
  }
  if (cache_evictions > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof buf) {
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                       " | %llu evicted",
                       static_cast<unsigned long long>(cache_evictions));
  }
  if (low_rank_points + low_rank_refactorizations > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof buf) {
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                  " | low-rank %llu point, %llu refactor",
                  static_cast<unsigned long long>(low_rank_points),
                  static_cast<unsigned long long>(low_rank_refactorizations));
  }
  return buf;
}

}  // namespace awesim::core
