// The AWE moment-matching solve (Sections 3.1 and 3.5 of the paper):
// from 2q matched quantities (initial value + 2q-1 moments, or with the
// optional slope term, slope + initial value + 2q-2 moments) to q poles
// and q residues.
//
//  1. frequency-scale the moments by gamma (eq. 47) so the Hankel system
//     stays well conditioned for stiff circuits;
//  2. solve the q x q Hankel system (eq. 24) for the characteristic
//     polynomial coefficients a_0..a_{q-1};
//  3. root  a_0 + a_1 y + ... + y^q  (eq. 25, y = 1/p) for the reciprocal
//     poles;
//  4. solve the (confluent, if poles repeat) Vandermonde system (eq. 20 /
//     eq. 29) for the residues.
//
// If the Hankel matrix is numerically singular the sequence carries fewer
// than q independent modes; the order is reduced and the solve retried, so
// asking for q = 4 on a 2-pole circuit cleanly yields the exact 2-pole
// answer.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace awesim::core {

/// One term of an exponential approximation:
///   residue * t^(power-1) * exp(pole * t) / (power-1)!
/// power > 1 only for repeated poles.
struct PoleResidueTerm {
  la::Complex pole;
  la::Complex residue;
  int power = 1;
};

/// Value of a term sum at time t (imaginary parts cancel for
/// conjugate-closed sets; the real part is returned).
double evaluate_terms(const std::vector<PoleResidueTerm>& terms, double t);

struct MatchOptions {
  /// Apply the eq. 47 frequency scaling.  Disabled only by the ablation
  /// bench; stiff circuits need it (see bench_ablation_freq_scaling).
  bool frequency_scaling = true;

  /// Start of the *pole* (Hankel) window relative to the residue window:
  /// 0 reproduces eq. 24 exactly (initial value participates in the pole
  /// solve); 1 takes the poles from pure moments mu_{j0+1}.. while the
  /// residues stay anchored at mu_{j0} (initial and final value still
  /// exact).  The shifted window often stays stable on nonmonotone
  /// initial-condition responses where the eq. 24 window turns up a
  /// positive pole (Section 3.3); the engine uses it as a fallback.
  /// Requires one extra moment (2q + pole_shift entries).
  int pole_shift = 0;

  /// Relative pole distance under which roots are clustered into one
  /// repeated pole (confluent residue solve).
  double repeated_pole_tolerance = 1e-7;

  /// Moments smaller than this times the largest matched moment are
  /// treated as zero when deciding the response is identically zero.
  double zero_tolerance = 1e-14;
};

struct MatchResult {
  std::vector<PoleResidueTerm> terms;

  int order_requested = 0;
  /// Order actually delivered; smaller when the moment sequence has lower
  /// numerical rank than requested.
  int order_used = 0;

  /// All poles strictly in the open left half plane.
  bool stable = true;

  /// gamma used for scaling (1 when scaling disabled).
  double gamma = 1.0;

  /// The pole-window shift this result was produced with (see
  /// MatchOptions::pole_shift).
  int pole_shift = 0;

  /// max |reconstructed moment - input moment| / max |input moment|
  /// over the matched window -- a direct self-check of the match.
  double moment_residual = 0.0;

  /// Pivot spread |max|/|min| of the accepted order's Hankel LU -- the
  /// cheap conditioning proxy of the eq. 24 system; negative if the
  /// accepted order never reached the Hankel solve (zero transient).
  double hankel_pivot_growth = -1.0;

  /// Largest pivot spread among *rejected* higher orders (the condition
  /// estimate that triggered order step-down); negative if no order was
  /// rejected for conditioning.
  double rejected_pivot_growth = -1.0;
};

/// Match a q-pole model to the moment window mu[j0 .. j0+2q-1].
///
/// `moments` holds the scalar sequence; `moments[i]` is mu_{j0+i} and at
/// least 2q entries must be present.  j0 = -1 for the standard AWE match
/// (initial value + moments), j0 = -2 when the initial slope is matched
/// too.  Returns a result with empty `terms` if the transient is
/// (numerically) identically zero.
MatchResult match_moments(const std::vector<double>& moments, int j0, int q,
                          const MatchOptions& options = {});

/// Reconstruct moment mu_j implied by a term set (for self-checks and
/// property tests): mu_j = -sum_terms residue * binom(j+power-1, power-1)
/// * pole^-(power+j) ... specialized to the uniform convention used by
/// match_moments.
double implied_moment(const std::vector<PoleResidueTerm>& terms, int j);

}  // namespace awesim::core
