#include "core/transfer.h"

#include <cmath>
#include <stdexcept>

#include "core/moments.h"

namespace awesim::core {

TransferModel::TransferModel(const mna::MnaSystem& mna,
                             const std::string& source_name,
                             circuit::NodeId output, int q,
                             const MatchOptions& options) {
  // Unit excitation vector of the chosen source.
  la::RealVector b_unit(mna.dim(), 0.0);
  const circuit::Element* src = mna.circuit().find_element(source_name);
  if (src == nullptr) {
    throw std::invalid_argument("TransferModel: unknown source '" +
                                source_name + "'");
  }
  if (src->kind == circuit::ElementKind::VoltageSource) {
    b_unit[*mna.branch_index(source_name)] = 1.0;
  } else if (src->kind == circuit::ElementKind::CurrentSource) {
    // SPICE convention: positive current flows pos -> neg through the
    // source, i.e. it is extracted from pos and injected at neg.
    if (src->pos != circuit::kGround) {
      b_unit[mna.node_index(src->pos)] -= 1.0;
    }
    if (src->neg != circuit::kGround) {
      b_unit[mna.node_index(src->neg)] += 1.0;
    }
  } else {
    throw std::invalid_argument("TransferModel: '" + source_name +
                                "' is not an independent source");
  }
  const std::size_t out = mna.node_index(output);

  // Unit step response: particular x_b = G^{-1} b_unit, homogeneous
  // initial vector x_h0 = -x_b (zero state).
  const la::RealVector xb = mna.solve(b_unit);
  dc_gain_ = xb[out];
  la::RealVector xh0(mna.dim());
  for (std::size_t i = 0; i < xh0.size(); ++i) xh0[i] = -xb[i];

  MomentSequence seq(mna, xh0);
  std::vector<double> mu;
  for (int j = -1; j < 2 * q; ++j) mu.push_back(seq.mu(j, out));
  MatchOptions mopt = options;
  MatchResult match = match_moments(mu, -1, q, mopt);
  if (!match.stable) {
    // Shifted-window fallback, as in the engine (Section 3.3).
    mopt.pole_shift = 1;
    MatchResult shifted = match_moments(mu, -1, q, mopt);
    if (shifted.stable) match = shifted;
  }
  terms_ = match.terms;
  order_used_ = match.order_used;
  stable_ = match.stable;
}

double TransferModel::unit_step(double t) const {
  if (t < 0.0) return 0.0;
  return dc_gain_ + evaluate_terms(terms_, t);
}

double TransferModel::unit_ramp(double t) const {
  if (t <= 0.0) return 0.0;
  // integral of dc_gain -> dc_gain * t;
  // integral of k t^{m-1} e^{pt}/(m-1)!: handled for simple poles in
  // closed form; repeated poles integrate by recurrence
  //   I_m(t) = (t^{m-1} e^{pt}/(m-1)! - I_{m-1}(t)... ) / p
  // with I_1 = (e^{pt} - 1)/p.
  double value = dc_gain_ * t;
  for (const auto& term : terms_) {
    // Closed-form integral of t^{m-1} e^{pt}/(m-1)! from 0 to t:
    // I_m = (f_m(t) - sum...) computed iteratively:
    // int t^{k} e^{pt} dt = t^k e^{pt}/p - (k/p) int t^{k-1} e^{pt} dt.
    const la::Complex p = term.pole;
    const int m = term.power;
    // Compute J_k = int_0^t t^k e^{pt} dt for k = 0..m-1.
    la::Complex j_prev = (std::exp(p * t) - 1.0) / p;  // k = 0
    la::Complex j_k = j_prev;
    double t_pow = 1.0;
    for (int k = 1; k < m; ++k) {
      t_pow *= t;
      j_k = (t_pow * std::exp(p * t) - static_cast<double>(k) * j_prev) / p;
      j_prev = j_k;
    }
    double factorial = 1.0;
    for (int i = 2; i < m; ++i) factorial *= i;
    value += (term.residue * j_k).real() / factorial;
  }
  return value;
}

double TransferModel::response(const circuit::Stimulus& stimulus,
                               double t) const {
  // The stimulus value is initial_value + sum of breakpoint pieces; the
  // constant pre-existing level contributes its DC response (the source
  // has been at that level forever).
  double v = stimulus.initial_value() * dc_gain_;
  for (const auto& seg : stimulus.segments()) {
    if (t < seg.time) break;
    const double local = t - seg.time;
    if (seg.value_jump != 0.0) v += seg.value_jump * unit_step(local);
    if (seg.slope_change != 0.0) v += seg.slope_change * unit_ramp(local);
  }
  return v;
}

}  // namespace awesim::core
