// Cooperative cancellation for long-running analyses.
//
// A timing service cannot afford a query that never comes back: a
// pathological sweep, an adversarial path filter, or a client that set a
// 10 ms deadline on a 10 s design must all turn into a *structured
// error*, never a killed process or a corrupted cache.  CancelToken is
// the mechanism: the request layer arms a wall-clock deadline and/or a
// work budget, threads a pointer through AnalysisOptions / PathQuery,
// and the pipeline's long loops consult it at natural checkpoints --
// the timing wavefront at stage granularity, the K-worst path search at
// expansion granularity.
//
// Contract:
//   * A token that never trips is invisible: the analysis performs the
//     exact same arithmetic and produces bit-identical results, with or
//     without a token attached (checks are reads; charges touch only
//     the token's own counters).
//   * A tripped check throws core::DiagnosticError carrying a
//     DeadlineExceeded / BudgetExceeded record.  Callers that own a
//     cache are safe by construction: cached artifacts are only
//     published for fully evaluated stages, so an abandoned analysis
//     leaves the cache valid and warm for the retry.
//   * Thread safety: all state is atomic.  One token may be consulted
//     concurrently by every worker of the evaluating pool and
//     cancelled asynchronously (client disconnect) from another thread.
//
// The deadline check costs one steady_clock read; the budget charge one
// relaxed fetch_add.  Both are noise next to a stage evaluation or a
// path expansion.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/diagnostic.h"

namespace awesim::core {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arm a wall-clock deadline `seconds` from now (<= 0 disarms).
  void set_deadline_after(double seconds);

  /// Arm a work budget: the cumulative units charged via charge() before
  /// BudgetExceeded trips.  0 disarms.  Units are whatever the consulted
  /// loop charges -- the timing analyzer charges one per stage
  /// evaluation, the path search one per candidate expansion.
  void set_budget(std::uint64_t units);

  /// Asynchronous cancellation (client hung up, server shutting down).
  /// The next check() anywhere throws DeadlineExceeded.
  void cancel();

  /// True when cancelled or past the deadline (budget state is only
  /// observable through charge()).  Never throws.
  bool expired() const;

  /// Throw DeadlineExceeded (as DiagnosticError) when cancelled or past
  /// the deadline.  `where` names the checkpoint for the diagnostic
  /// ("timing.wave", "paths.expand", ...).
  void check(const char* where) const;

  /// charge() = check() plus `units` of budget consumption; throws
  /// BudgetExceeded once cumulative charges pass the armed budget.  The
  /// charge that crosses the line is the one that throws, so a budget of
  /// N admits exactly N units.
  void charge(const char* where, std::uint64_t units = 1);

  /// Units charged so far (observability for tests and stats).
  std::uint64_t charged() const {
    return charged_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<Clock::rep> deadline_ticks_{0};
  std::atomic<std::uint64_t> budget_{0};  // 0 = disarmed
  std::atomic<std::uint64_t> charged_{0};
};

}  // namespace awesim::core
