// Lightweight cost counters for the AWE pipeline.
//
// The paper's Fig. 19 argument is entirely about *where the work goes*:
// one LU factorization amortized over 2q-1 forward/back substitutions,
// then a tiny q x q match per observation point.  Stats makes that
// observable: the engine counts factorizations, substitutions, and
// moment matches and times each phase, and the timing analyzer sums the
// per-stage stats in a fixed order so parallel runs report identical
// numbers.  Counters are plain integers -- a Stats instance (like the
// Engine that fills it) belongs to one thread; aggregate across threads
// by merging per-thread instances with operator+=.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace awesim::core {

struct Stats {
  /// LU factorizations of (G + aC), all shifts included.
  std::uint64_t factorizations = 0;

  /// Forward/back substitutions with the cached factorization of G
  /// (moment recursion, particular solutions, equilibrium solves).
  std::uint64_t substitutions = 0;

  /// Hankel/root/Vandermonde moment matches (match_moments calls).
  std::uint64_t matches = 0;

  /// Output nodes approximated (one per Result produced).
  std::uint64_t outputs = 0;

  /// Timing stages evaluated (filled by timing::Design::analyze).
  std::uint64_t stages = 0;

  /// Incremental-session cache counters (see timing::Session and
  /// DESIGN.md "Incremental re-analysis").  `cache_hits`/`cache_misses`
  /// count individual cache lookups (stage results AND shared LU
  /// factorizations); `stages_reused`/`stages_recomputed` count whole
  /// stages served from the cache vs evaluated fresh.  All four stay 0
  /// for a plain Design::analyze (no cache attached) and are pure
  /// functions of the cache state, hence bit-identical across thread
  /// counts (lookups run in the serial pre-pass of each wavefront).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t stages_reused = 0;
  std::uint64_t stages_recomputed = 0;
  /// Cache entries FIFO-evicted at the capacity limits *during this
  /// analysis* (stage records, LU factorizations, and lint reports
  /// combined).  Zero on an unbounded-fit workload; nonzero means the
  /// working set outruns StageCache::Limits and warm speedups are
  /// partially lost -- previously invisible outside Session::
  /// cache_stats(), now in every report and bench snapshot.
  std::uint64_t cache_evictions = 0;

  /// Low-rank warm-path counters (see timing::SessionOptions::low_rank
  /// and DESIGN.md "Low-rank warm-path refactorization").
  /// `low_rank_points` counts stages evaluated through a
  /// Sherman-Morrison-corrected donor factorization instead of a fresh
  /// LU; `low_rank_refactorizations` counts stages where the corrected
  /// solver refused (rank cap, drift watchdog, fault probe) and a full
  /// refactorization was performed instead.  Both stay 0 with the
  /// low-rank path disabled or never eligible.
  std::uint64_t low_rank_points = 0;
  std::uint64_t low_rank_refactorizations = 0;

  /// Pre-flight lint findings (src/check rule pipeline) tallied by the
  /// layer that ran the lint: Engine when EngineOptions::preflight_lint
  /// is on, the timing analyzer for its per-stage pre-flight.  Cached
  /// lint reports (timing::Session) re-count on every analyze, so the
  /// tallies are a property of the analyzed design, not of cache state.
  std::uint64_t lint_errors = 0;
  std::uint64_t lint_warnings = 0;

  /// Circuits whose pre-flight conditioning-oracle pass predicted the
  /// requested order lies outside the safe window (see
  /// EngineOptions::preflight_audit).  At most 1 per Engine; design-level
  /// runs sum over stages.
  std::uint64_t conditioning_hazards = 0;

  /// Degradation-ladder counters (see EngineOptions::degrade and
  /// DESIGN.md "Failure taxonomy").  Rung counters are per atom-match;
  /// degradations/failures are per output (worst rung of the Result).
  std::uint64_t window_shifts = 0;     // Section 3.3 shifted window engaged
  std::uint64_t order_stepdowns = 0;   // order stepped below the request
  std::uint64_t elmore_fallbacks = 0;  // flagged single-pole Elmore bound
  std::uint64_t degradations = 0;      // outputs answered below full quality
  std::uint64_t failures = 0;          // outputs with no transient model

  /// Wall time per phase, in seconds.
  double seconds_setup = 0.0;    // atom building: LU + particular solutions
  double seconds_moments = 0.0;  // moment recursion and gathering
  double seconds_match = 0.0;    // per-output pole/residue matching

  /// Fine-grained span-tracer breakdown (obs/trace.h taxonomy:
  /// mna.factor, engine.moments, pade.hankel, pade.roots,
  /// engine.residues, timing.stage, parallel.job).  Empty unless tracing
  /// is compiled in AND runtime-enabled; filled by the layers that own a
  /// measurement window (timing::Design::analyze, the bench harness).
  /// Span counts are deterministic across thread counts; the seconds
  /// fields are wall-clock measurements.
  obs::PhaseBreakdown phases;

  Stats& operator+=(const Stats& other);
  Stats& operator-=(const Stats& other);

  /// One-line human-readable rendering, for benches and reports.
  std::string summary() const;
};

Stats operator+(Stats a, const Stats& b);
Stats operator-(Stats a, const Stats& b);

/// Adds the elapsed wall time to a Stats seconds field on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& target)
      : target_(target), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    target_ += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& target_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace awesim::core
