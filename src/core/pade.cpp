#include "core/pade.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/fault.h"
#include "la/lu.h"
#include "la/poly.h"
#include "obs/trace.h"

namespace awesim::core {

namespace {

// Generalized binomial coefficient C(n, m) for integer n (possibly
// negative), m >= 0: product form n(n-1)...(n-m+1)/m!.
double gbinom(int n, int m) {
  double num = 1.0;
  double den = 1.0;
  for (int i = 0; i < m; ++i) {
    num *= static_cast<double>(n - i);
    den *= static_cast<double>(i + 1);
  }
  return num / den;
}

// Coefficient multiplying the residue of a (pole, power) term in moment
// mu_j:  (-1)^power * C(power+j-1, power-1) * pole^-(power+j).
la::Complex moment_coefficient(la::Complex pole, int power, int j) {
  const double sign = (power % 2 == 0) ? 1.0 : -1.0;
  const double binom = gbinom(power + j - 1, power - 1);
  return sign * binom * std::pow(pole, -(power + j));
}

struct PoleCluster {
  la::Complex pole;  // cluster representative (mean)
  int multiplicity = 1;
};

std::vector<PoleCluster> cluster_poles(const la::ComplexVector& poles,
                                       double rel_tol) {
  std::vector<PoleCluster> clusters;
  for (const la::Complex& p : poles) {
    bool merged = false;
    for (auto& c : clusters) {
      const double scale = std::max(std::abs(c.pole), std::abs(p));
      if (std::abs(c.pole - p) <= rel_tol * scale) {
        // Running mean keeps the representative centered.
        c.pole = (c.pole * static_cast<double>(c.multiplicity) + p) /
                 static_cast<double>(c.multiplicity + 1);
        ++c.multiplicity;
        merged = true;
        break;
      }
    }
    if (!merged) clusters.push_back({p, 1});
  }
  return clusters;
}

// Attempt the full match at exactly order q; returns false when the
// numerics say the sequence does not support q independent stable-ish
// modes (singular Hankel, pole at infinity, singular residue system).
bool try_match(const std::vector<double>& mu, int j0, int q,
               const MatchOptions& options, double gamma,
               MatchResult* out) {
  const int shift = options.pole_shift;
  const int count = 2 * q + shift;
  // Scaled moments mu'_j = mu_j * gamma^(j+1), j = j0 .. j0+count-1.
  std::vector<double> scaled(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int j = j0 + i;
    scaled[static_cast<std::size_t>(i)] =
        mu[static_cast<std::size_t>(i)] * std::pow(gamma, j + 1);
  }

  // Hankel system (eq. 24): rows r = 0..q-1,
  //   sum_c mu'_{j0+shift+r+c} a_c = -mu'_{j0+shift+r+q}.
  la::RealVector a;
  {
    AWESIM_TRACE_SPAN("pade.hankel");
    la::RealMatrix hankel(static_cast<std::size_t>(q),
                          static_cast<std::size_t>(q));
    la::RealVector rhs(static_cast<std::size_t>(q));
    for (int r = 0; r < q; ++r) {
      for (int c = 0; c < q; ++c) {
        hankel(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            scaled[static_cast<std::size_t>(shift + r + c)];
      }
      rhs[static_cast<std::size_t>(r)] =
          -scaled[static_cast<std::size_t>(shift + r + q)];
    }
    try {
      la::Lu<double> lu(hankel);
      // A pivot spread beyond ~1e13 means the (scaled) moment sequence
      // has numerical rank < q: the circuit response carries fewer than q
      // resolvable modes.  Reduce the order rather than manufacture
      // spurious poles from rounding noise.
      out->hankel_pivot_growth = lu.pivot_growth();
      if (out->hankel_pivot_growth > 1e13) return false;
      a = lu.solve(rhs);
    } catch (const la::SingularMatrixError&) {
      out->hankel_pivot_growth = std::numeric_limits<double>::infinity();
      return false;
    }
  }

  // Characteristic polynomial (eq. 25) in y = 1/p':
  //   a_0 + a_1 y + ... + a_{q-1} y^{q-1} + y^q = 0.
  la::RealVector coeffs(a);
  coeffs.push_back(1.0);
  la::ComplexVector roots;
  {
    AWESIM_TRACE_SPAN("pade.roots");
    try {
      roots = la::polyroots(coeffs);
    } catch (const std::exception&) {
      return false;
    }
  }
  double max_root = 0.0;
  for (const auto& y : roots) max_root = std::max(max_root, std::abs(y));
  la::ComplexVector scaled_poles;
  for (const auto& y : roots) {
    if (std::abs(y) <= 1e-10 * std::max(max_root, 1.0)) {
      return false;  // pole at infinity: order too high for this response
    }
    scaled_poles.push_back(1.0 / y);
  }

  // Residues: (confluent) Vandermonde solve on the same scaled window
  // (eq. 20 for distinct poles, the eq. 26-29 pattern when repeated).
  const auto clusters =
      cluster_poles(scaled_poles, options.repeated_pole_tolerance);
  la::ComplexVector residues;
  {
    AWESIM_TRACE_SPAN("engine.residues");
    la::ComplexMatrix vand(static_cast<std::size_t>(q),
                           static_cast<std::size_t>(q));
    la::ComplexVector vrhs(static_cast<std::size_t>(q));
    for (int r = 0; r < q; ++r) {
      const int j = j0 + r;
      std::size_t col = 0;
      for (const auto& c : clusters) {
        for (int l = 1; l <= c.multiplicity; ++l, ++col) {
          vand(static_cast<std::size_t>(r), col) =
              moment_coefficient(c.pole, l, j);
        }
      }
      vrhs[static_cast<std::size_t>(r)] =
          la::Complex(scaled[static_cast<std::size_t>(r)], 0.0);
    }
    try {
      residues = la::solve(vand, vrhs);
    } catch (const la::SingularMatrixError&) {
      return false;
    }
  }

  // Prune terms whose (scaled-domain) residue is negligible: they are
  // numerical artifacts of a nearly rank-deficient match and contribute
  // nothing to the waveform.
  double residue_scale = 0.0;
  for (const auto& k : residues) {
    residue_scale = std::max(residue_scale, std::abs(k));
  }

  // Unscale: p = gamma * p', k = k' * gamma^(power-1).
  out->terms.clear();
  std::size_t col = 0;
  for (const auto& c : clusters) {
    for (int l = 1; l <= c.multiplicity; ++l, ++col) {
      if (std::abs(residues[col]) < 1e-12 * residue_scale) continue;
      PoleResidueTerm term;
      term.pole = gamma * c.pole;
      term.power = l;
      term.residue = residues[col] * std::pow(gamma, l - 1);
      out->terms.push_back(term);
    }
  }
  out->order_used = static_cast<int>(out->terms.size());
  out->gamma = gamma;
  out->stable = std::all_of(
      out->terms.begin(), out->terms.end(),
      [](const PoleResidueTerm& t) { return t.pole.real() < 0.0; });

  // Self-check: the model must reproduce every *interpolated* moment.
  // With shift == 0 that is the whole 2q window; with a shifted pole
  // window only the q residue conditions are exact interpolation (the
  // upper moments are matched through the recurrence, approximately).
  const int checked = (shift == 0) ? count : q;
  double max_mu = 0.0;
  for (int i = 0; i < checked; ++i) {
    max_mu = std::max(max_mu, std::abs(mu[static_cast<std::size_t>(i)]));
  }
  double residual = 0.0;
  for (int i = 0; i < checked; ++i) {
    const int j = j0 + i;
    const double back = implied_moment(out->terms, j);
    residual = std::max(
        residual, std::abs(back - mu[static_cast<std::size_t>(i)]));
  }
  out->moment_residual = max_mu > 0.0 ? residual / max_mu : 0.0;
  // A grossly failed reconstruction means the numerics broke down (e.g. a
  // nearly singular Hankel that did not trip the pivot test).
  return out->moment_residual < 1e-3;
}

}  // namespace

double evaluate_terms(const std::vector<PoleResidueTerm>& terms, double t) {
  double value = 0.0;
  for (const auto& term : terms) {
    const double re_exp = term.pole.real() * t;
    if (re_exp > 700.0) {
      // Unstable-pole overflow guard; diagnostics only.
      return std::numeric_limits<double>::infinity();
    }
    la::Complex factor = std::exp(term.pole * t);
    double poly = 1.0;
    for (int i = 1; i < term.power; ++i) {
      poly *= t / static_cast<double>(i);
    }
    value += (term.residue * factor).real() * poly;
  }
  return value;
}

double implied_moment(const std::vector<PoleResidueTerm>& terms, int j) {
  la::Complex acc{0.0, 0.0};
  for (const auto& term : terms) {
    acc += term.residue * moment_coefficient(term.pole, term.power, j);
  }
  return acc.real();
}

MatchResult match_moments(const std::vector<double>& mu, int j0, int q,
                          const MatchOptions& options) {
  if (q < 1) throw std::invalid_argument("match_moments: q >= 1");
  const std::size_t needed =
      static_cast<std::size_t>(2 * q + options.pole_shift);
  if (mu.size() < needed) {
    throw std::invalid_argument(
        "match_moments: need 2q + pole_shift moments");
  }

  MatchResult result;
  result.order_requested = q;

  // Non-finite moments (upstream numerical breakdown or an injected
  // fault): no window is matchable.  Flagged via stable=false so callers
  // can tell this apart from a clean zero transient.
  for (std::size_t i = 0; i < needed; ++i) {
    if (!std::isfinite(mu[i])) {
      result.order_used = 0;
      result.stable = false;
      result.moment_residual = std::numeric_limits<double>::infinity();
      return result;
    }
  }

  // Identically-zero transient: nothing to match.
  double max_mu = 0.0;
  for (std::size_t i = 0; i < needed; ++i) {
    max_mu = std::max(max_mu, std::abs(mu[i]));
  }
  if (max_mu == 0.0 ||
      std::all_of(mu.begin(),
                  mu.begin() + static_cast<std::ptrdiff_t>(needed),
                  [&](double v) {
                    return std::abs(v) <= options.zero_tolerance * max_mu;
                  })) {
    result.order_used = 0;
    return result;
  }

  // Frequency scale (eq. 47).  The paper uses m_{-1}/m_0; we walk from the
  // highest matched moments down instead, because the high-order ratio
  // converges to the dominant pole magnitude and, unlike the low-order
  // entries, the high moments are never rounding-noise relative to the
  // rest of the sequence (e.g. a victim node has mu_{-1} ~ 0 exactly).
  double gamma = 1.0;
  if (options.frequency_scaling) {
    for (std::size_t i = needed - 1; i >= 1; --i) {
      if (std::abs(mu[i]) > 1e-13 * max_mu &&
          std::abs(mu[i - 1]) > 1e-13 * max_mu) {
        const double g = std::abs(mu[i - 1] / mu[i]);
        if (std::isfinite(g) && g > 0.0) {
          gamma = g;
          break;
        }
      }
    }
  }

  result.pole_shift = options.pole_shift;
  double rejected_growth = -1.0;
  for (int qq = q; qq >= 1; --qq) {
    result.hankel_pivot_growth = -1.0;
    const bool injected_singular =
        fault_at("pade.hankel", std::to_string(qq));
    if (!injected_singular && try_match(mu, j0, qq, options, gamma,
                                        &result)) {
      result.rejected_pivot_growth = rejected_growth;
      return result;
    }
    // This order was rejected (rank/conditioning/self-check); remember
    // the conditioning estimate that killed it for the diagnostics.
    rejected_growth = std::max(rejected_growth, result.hankel_pivot_growth);
  }
  // Even a single pole failed: report the degenerate empty result.
  result.order_used = 0;
  result.terms.clear();
  result.rejected_pivot_growth = rejected_growth;
  return result;
}

}  // namespace awesim::core
