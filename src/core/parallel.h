// A fixed-size thread pool for wavefront-parallel evaluation.
//
// The timing analyzer levelizes its stage DAG and evaluates each level's
// stages concurrently; every stage builds thread-local MnaSystem/Engine
// objects and writes into its own result slot, so the only shared state
// is the pool's work queue.  Determinism is the caller's contract: jobs
// communicate exclusively through pre-sized slot arrays and all
// reductions happen serially after parallel_for returns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace awesim::core {

class ThreadPool {
 public:
  /// A pool that evaluates with `threads` concurrent threads in total:
  /// the calling thread participates, so `threads - 1` workers are
  /// spawned.  threads == 0 selects one per hardware core; threads == 1
  /// spawns nothing and parallel_for runs inline (the serial walk).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total evaluating threads (workers + caller).
  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(0), ..., fn(count-1) across the pool and block until all
  /// complete.  Indices are claimed dynamically; callers needing
  /// deterministic output must write results into per-index slots.  If
  /// jobs throw, the exception of the lowest-index failing job is
  /// rethrown after every job has finished.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a >= 1 floor.
  static std::size_t hardware_threads();

 private:
  void work(std::unique_lock<std::mutex>& lock);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

}  // namespace awesim::core
