#include "core/parallel.h"

#include <algorithm>

namespace awesim::core {

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work(std::unique_lock<std::mutex>& lock) {
  // Claim-and-run loop; entered with the lock held.
  const auto* fn = fn_;
  while (next_ < count_) {
    const std::size_t i = next_++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error) errors_.emplace_back(i, error);
    if (--remaining_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_ready_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    work(lock);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  next_ = 0;
  count_ = count;
  remaining_ = count;
  errors_.clear();
  ++generation_;
  work_ready_.notify_all();
  work(lock);  // the calling thread participates
  batch_done_.wait(lock, [&] { return remaining_ == 0; });
  fn_ = nullptr;
  count_ = 0;
  if (!errors_.empty()) {
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace awesim::core
