#include "core/cancel.h"

#include <string>

namespace awesim::core {

void CancelToken::set_deadline_after(double seconds) {
  if (seconds <= 0.0) {
    has_deadline_.store(false, std::memory_order_release);
    return;
  }
  const auto ticks =
      (Clock::now() + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(seconds)))
          .time_since_epoch()
          .count();
  deadline_ticks_.store(ticks, std::memory_order_release);
  has_deadline_.store(true, std::memory_order_release);
}

void CancelToken::set_budget(std::uint64_t units) {
  budget_.store(units, std::memory_order_release);
}

void CancelToken::cancel() {
  cancelled_.store(true, std::memory_order_release);
}

bool CancelToken::expired() const {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  if (!has_deadline_.load(std::memory_order_acquire)) return false;
  return Clock::now().time_since_epoch().count() >=
         deadline_ticks_.load(std::memory_order_acquire);
}

void CancelToken::check(const char* where) const {
  if (!expired()) return;
  Diagnostic diag;
  diag.code = DiagCode::DeadlineExceeded;
  diag.severity = Severity::Error;
  diag.message = std::string("request cancelled at ") + where +
                 (cancelled_.load(std::memory_order_acquire)
                      ? " (cancelled by caller)"
                      : " (deadline exceeded)");
  throw DiagnosticError(std::move(diag));
}

void CancelToken::charge(const char* where, std::uint64_t units) {
  check(where);
  const std::uint64_t budget = budget_.load(std::memory_order_acquire);
  const std::uint64_t total =
      charged_.fetch_add(units, std::memory_order_relaxed) + units;
  if (budget != 0 && total > budget) {
    Diagnostic diag;
    diag.code = DiagCode::BudgetExceeded;
    diag.severity = Severity::Error;
    diag.message = std::string("work budget exhausted at ") + where +
                   " (" + std::to_string(total) + " units charged, " +
                   std::to_string(budget) + " allowed)";
    throw DiagnosticError(std::move(diag));
  }
}

}  // namespace awesim::core
