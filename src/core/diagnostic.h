// Typed diagnostics for the guarded approximation pipeline.
//
// AWE is numerically fragile by construction: moment matching can turn up
// right-half-plane poles (Section 3.3 of the paper), the Hankel system of
// eq. 24 goes ill-conditioned as the order grows, and real netlists arrive
// with floating nodes and malformed cards.  Production timing flows must
// never abort a whole report over one bad net -- they degrade to a coarser
// bound and flag the result.  Every layer of the pipeline therefore
// *accumulates* Diagnostic records (what went wrong, where, how it was
// handled) instead of throwing bare std::runtime_error strings; the few
// genuinely unrecoverable failures throw DiagnosticError, which still
// carries the structured record.
//
// This header lives in the bottom-most library (awesim_diag) so that la,
// mna, netlist, core, and timing can all share one taxonomy.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace awesim::core {

/// What went wrong (or which fallback engaged).  Codes are stable API:
/// the README troubleshooting table maps each to causes and remedies.
enum class DiagCode {
  // Linear algebra / MNA formulation.
  SingularPivot,    // LU met an exactly singular pivot
  IllConditioned,   // condition/pivot-growth estimate beyond threshold
  FloatingNodes,    // nodes with no conductive path to ground
  GminFallback,     // singular G resolved by the gmin-to-ground retry
  // Moment matching / degradation ladder.
  UnstablePoles,    // eq. 24 window produced right-half-plane poles
  WindowShifted,    // Section 3.3 shifted pole window engaged
  OrderReduced,     // order stepped down (rank/conditioning/stability)
  ElmoreFallback,   // degraded to the q=1 Elmore (Penfield-Rubinstein) bound
  NonFiniteValue,   // NaN/Inf met in moments, residues, or results
  // Netlist front end.
  ParseError,       // malformed card, token, or directive
  ValidationError,  // structurally invalid circuit (dup names, bad values)
  // Static circuit lint (src/check, pre-flight electrical rule checks).
  FloatingIsland,   // nodes with no element path to ground at all
  InductorLoop,     // loop of only voltage-defined branches (V/L/E/H)
  CapacitorCutset,  // I-source cut off from ground by capacitors only
  ValueOutOfRange,  // negative/zero/NaN/Inf R, C, or L value
  SuspiciousValue,  // element value wildly outside its usual unit scale
  DanglingControl,  // controlled source senses an otherwise-unused node
  ControlCycle,     // controlled sources forming a dependency cycle
  TopologyNote,     // Info: structural classification (RC tree/mesh/RLC)
  // Timing analysis.
  StageDegraded,    // a stage answered with a degraded (flagged) estimate
  StageFailed,      // a stage could not be approximated; bound substituted
  CacheInvalidated, // a session cache entry failed verification; recomputed
  LowRankDrift,     // low-rank warm path refused; full refactorization ran
  // Hierarchical reduction (src/reduce).
  ReductionFallback,          // a net could not be reduced; analyzed flat
  ReductionToleranceExceeded, // macromodel failed moment verification; flat
  // Design-scope static audit (src/audit, graph/conditioning/repetition).
  CombinationalCycle, // gate loop; levelization impossible (full loop path)
  UndrivenEndpoint,   // gate input pin reachable from no primary input
  DeadLogic,          // gate driving no sink, no PO role: result unused
  FanoutExplosion,    // net fanout beyond the configured threshold
  ReconvergentFanout, // deep reconvergence; path-count blowup warning
  ConditioningHazard, // static oracle predicts AWE instability at high order
  RepeatedStructure,  // Info: nets sharing one reduction-store entry
  NearDuplicate,      // nets identical up to one value; missed sharing
  // Request lifecycle (timing-as-a-service; see src/serve and
  // core/cancel.h).  These describe the *request*, never the design:
  // a deadline-exceeded analysis left no partial results behind.
  DeadlineExceeded, // cooperative cancellation: wall-clock deadline hit
  BudgetExceeded,   // cooperative cancellation: work budget exhausted
  InvalidRequest,   // malformed/unknown service request or parameters
  ServerOverloaded, // admission queue full / in-flight limit; retry later
  InternalError,    // unexpected failure surfaced as a structured response
  // Test harness.
  InjectedFault,    // a FaultInjector rule fired here
};

enum class Severity {
  Info,     // a fallback engaged; the answer is still a matched model
  Warning,  // the answer is a coarser bound (Elmore / analytic)
  Error,    // this item failed; the surrounding analysis continued
  Fatal,    // nothing could be produced; thrown as DiagnosticError
};

const char* to_string(DiagCode code);
const char* to_string(Severity severity);

/// One structured diagnostic record.  Fields that do not apply stay at
/// their defaults (empty strings, zero line, negative condition).
struct Diagnostic {
  DiagCode code = DiagCode::SingularPivot;
  Severity severity = Severity::Info;

  /// Human-readable description of this specific occurrence.
  std::string message;

  /// Offending circuit element or net name, when known.
  std::string element;

  /// Offending node name(s), comma-separated, when known.
  std::string node;

  /// Source location for netlist-derived diagnostics (1-based; 0 = n/a).
  std::string file;
  std::size_t line = 0;
  std::size_t column = 0;

  /// Condition-number / pivot-growth estimate that triggered the
  /// diagnostic; negative when not applicable.
  double condition_estimate = -1.0;

  /// "severity code: message [element ...] [node(s) ...] [file:line:col]".
  std::string to_string() const;
};

using Diagnostics = std::vector<Diagnostic>;

/// Render a whole list, one record per line.
std::string to_string(const Diagnostics& diags);

/// Count records at or above a severity.
std::size_t count_at_least(const Diagnostics& diags, Severity severity);

/// An unrecoverable failure that still carries its structured record.
/// Thrown only when a layer has nothing at all to answer with; callers
/// higher up (the timing analyzer) catch it and substitute a bound.
class DiagnosticError : public std::runtime_error {
 public:
  explicit DiagnosticError(Diagnostic diag)
      : std::runtime_error(diag.to_string()), diag_(std::move(diag)) {}

  const Diagnostic& diagnostic() const { return diag_; }

 private:
  Diagnostic diag_;
};

}  // namespace awesim::core
