#include "core/diagnostic.h"

#include <sstream>

namespace awesim::core {

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::SingularPivot: return "singular-pivot";
    case DiagCode::IllConditioned: return "ill-conditioned";
    case DiagCode::FloatingNodes: return "floating-nodes";
    case DiagCode::GminFallback: return "gmin-fallback";
    case DiagCode::UnstablePoles: return "unstable-poles";
    case DiagCode::WindowShifted: return "window-shifted";
    case DiagCode::OrderReduced: return "order-reduced";
    case DiagCode::ElmoreFallback: return "elmore-fallback";
    case DiagCode::NonFiniteValue: return "non-finite-value";
    case DiagCode::ParseError: return "parse-error";
    case DiagCode::ValidationError: return "validation-error";
    case DiagCode::FloatingIsland: return "floating-island";
    case DiagCode::InductorLoop: return "inductor-loop";
    case DiagCode::CapacitorCutset: return "capacitor-cutset";
    case DiagCode::ValueOutOfRange: return "value-out-of-range";
    case DiagCode::SuspiciousValue: return "suspicious-value";
    case DiagCode::DanglingControl: return "dangling-control";
    case DiagCode::ControlCycle: return "control-cycle";
    case DiagCode::TopologyNote: return "topology-note";
    case DiagCode::StageDegraded: return "stage-degraded";
    case DiagCode::StageFailed: return "stage-failed";
    case DiagCode::CacheInvalidated: return "cache-invalidated";
    case DiagCode::LowRankDrift: return "low-rank-drift";
    case DiagCode::ReductionFallback: return "reduction-fallback";
    case DiagCode::ReductionToleranceExceeded:
      return "reduction-tolerance-exceeded";
    case DiagCode::CombinationalCycle: return "combinational-cycle";
    case DiagCode::UndrivenEndpoint: return "undriven-endpoint";
    case DiagCode::DeadLogic: return "dead-logic";
    case DiagCode::FanoutExplosion: return "fanout-explosion";
    case DiagCode::ReconvergentFanout: return "reconvergent-fanout";
    case DiagCode::ConditioningHazard: return "conditioning-hazard";
    case DiagCode::RepeatedStructure: return "repeated-structure";
    case DiagCode::NearDuplicate: return "near-duplicate";
    case DiagCode::DeadlineExceeded: return "deadline-exceeded";
    case DiagCode::BudgetExceeded: return "budget-exceeded";
    case DiagCode::InvalidRequest: return "invalid-request";
    case DiagCode::ServerOverloaded: return "server-overloaded";
    case DiagCode::InternalError: return "internal-error";
    case DiagCode::InjectedFault: return "injected-fault";
  }
  return "unknown";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream out;
  out << core::to_string(severity) << " " << core::to_string(code) << ": "
      << message;
  if (!element.empty()) out << " [element " << element << "]";
  if (!node.empty()) out << " [node(s) " << node << "]";
  if (line > 0) {
    out << " [" << (file.empty() ? "netlist" : file) << ":" << line;
    if (column > 0) out << ":" << column;
    out << "]";
  }
  if (condition_estimate >= 0.0) {
    out << " [cond~" << condition_estimate << "]";
  }
  return out.str();
}

std::string to_string(const Diagnostics& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

std::size_t count_at_least(const Diagnostics& diags, Severity severity) {
  std::size_t n = 0;
  for (const auto& d : diags) {
    if (d.severity >= severity) ++n;
  }
  return n;
}

}  // namespace awesim::core
