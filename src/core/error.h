// The AWE accuracy estimate (Section 3.4 of the paper): compare the
// q-th-order approximation against the (q+1)-th-order one, which stands in
// for the unavailable exact response, via the normalized L2 distance of
// eq. (39).
//
// Everything involved is a finite sum of (possibly complex) exponentials,
// so the integrals are available in closed form:
//
//   int_0^inf t^a e^{pt} * t^b e^{qt} dt = (a+b)! / (-(p+q))^{a+b+1},
//
// valid when Re(p+q) < 0.  Two estimators are provided:
//   * exact_relative_error -- evaluates eq. (39)'s quadratic form exactly
//     (O((2q+1)^2) closed-form integrals; cheap on modern hardware);
//   * cauchy_relative_error -- the paper's Cauchy-inequality upper bound
//     (eq. 40-46) with nearest-pole pairing and the q+1 -> q term-splitting
//     rule, kept for fidelity and as an ablation subject.
#pragma once

#include <vector>

#include "core/pade.h"

namespace awesim::core {

/// Closed-form  int_0^inf f(t) g(t) dt  for two exponential-sum term sets
/// (each term: residue * t^(power-1) e^(pole t) / (power-1)!).
/// Returns +inf if any pairwise pole sum has nonnegative real part (the
/// integral diverges -- unstable approximations).
double inner_product(const std::vector<PoleResidueTerm>& f,
                     const std::vector<PoleResidueTerm>& g);

/// sqrt(int (f - g)^2 dt); +inf when divergent.
double l2_distance(const std::vector<PoleResidueTerm>& f,
                   const std::vector<PoleResidueTerm>& g);

/// The paper's normalized error (eq. 39): ||ref - approx|| / ||ref||,
/// with `ref` conventionally the (q+1)-order model.  Returns +inf when
/// either set is unstable, 0 when ref is identically zero and approx too.
double exact_relative_error(const std::vector<PoleResidueTerm>& ref,
                            const std::vector<PoleResidueTerm>& approx);

/// The Cauchy-inequality upper bound of eq. (40)-(46): terms of ref and
/// approx are paired by pole proximity, the unmatched ref term is handled
/// by splitting (eq. 42/43), and the individual integrals E_i (eq. 45)
/// are summed and inflated by (q+1).  An upper bound on the exact value;
/// see bench_ablation_order_sweep for how tight it runs in practice.
/// Only simple (power == 1) terms are supported -- repeated poles fall
/// back to the exact estimator.
double cauchy_relative_error(const std::vector<PoleResidueTerm>& ref,
                             const std::vector<PoleResidueTerm>& approx);

}  // namespace awesim::core
