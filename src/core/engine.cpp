#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/lint.h"
#include "check/oracle.h"
#include "core/error.h"
#include "core/fault.h"
#include "obs/trace.h"

namespace awesim::core {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool finite_terms(const std::vector<PoleResidueTerm>& terms) {
  for (const auto& t : terms) {
    if (!std::isfinite(t.pole.real()) || !std::isfinite(t.pole.imag()) ||
        !std::isfinite(t.residue.real()) ||
        !std::isfinite(t.residue.imag())) {
      return false;
    }
  }
  return true;
}

// A match the pipeline can hand out: stable, finite, and not an empty
// term set standing in for a transient that is actually there (total
// Hankel rank collapse leaves order_used == 0 with nonzero moments).
bool usable_match(const MatchResult& m, bool has_transient) {
  if (!m.stable) return false;
  if (!finite_terms(m.terms)) return false;
  if (m.terms.empty() && has_transient) return false;
  return true;
}

}  // namespace

const char* to_string(ApproxStatus status) {
  switch (status) {
    case ApproxStatus::Ok: return "ok";
    case ApproxStatus::WindowShifted: return "window-shifted";
    case ApproxStatus::OrderReduced: return "order-reduced";
    case ApproxStatus::ElmoreFallback: return "elmore-fallback";
    case ApproxStatus::Failed: return "failed";
  }
  return "unknown";
}

double Approximation::value(double t) const {
  double v = 0.0;
  for (const auto& atom : atoms_) {
    if (t < atom.start_time) continue;
    const double local = t - atom.start_time;
    v += atom.affine_offset + atom.affine_slope * local;
    v += evaluate_terms(atom.terms, local);
  }
  return v;
}

double Approximation::final_value() const {
  double offset = 0.0;
  double slope = 0.0;
  for (const auto& atom : atoms_) {
    offset += atom.affine_offset - atom.affine_slope * atom.start_time;
    slope += atom.affine_slope;
  }
  if (slope != 0.0) return kNan;  // unbounded ramp
  return offset;
}

bool Approximation::stable() const {
  for (const auto& atom : atoms_) {
    for (const auto& term : atom.terms) {
      if (term.pole.real() >= 0.0) return false;
    }
  }
  return true;
}

double Approximation::dominant_time_constant() const {
  double tau = 0.0;
  for (const auto& atom : atoms_) {
    for (const auto& term : atom.terms) {
      const double re = std::abs(term.pole.real());
      if (re > 0.0) tau = std::max(tau, 1.0 / re);
    }
  }
  return tau;
}

double Approximation::settling_area() const {
  const double v_final = final_value();
  if (std::isnan(v_final)) return std::numeric_limits<double>::quiet_NaN();

  // Homogeneous contributions: each atom's term set integrates to its
  // matched mu_0 in closed form.
  double area = 0.0;
  for (const auto& atom : atoms_) {
    area += implied_moment(atom.terms, 0);
  }

  // Affine transient: a(t) - v_final is piecewise linear between atom
  // start times and identically zero after the last one (slopes and
  // offsets cancel when the final value is finite).  The midpoint rule
  // integrates each linear piece exactly, jumps at the knots included.
  std::vector<double> knots{0.0};
  for (const auto& atom : atoms_) knots.push_back(atom.start_time);
  std::sort(knots.begin(), knots.end());
  auto affine_minus_final = [&](double t) {
    double v = -v_final;
    for (const auto& atom : atoms_) {
      if (t < atom.start_time) continue;
      v += atom.affine_offset + atom.affine_slope * (t - atom.start_time);
    }
    return v;
  };
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const double a = knots[i - 1];
    const double b = knots[i];
    if (b <= a) continue;
    area += affine_minus_final(0.5 * (a + b)) * (b - a);
  }
  return area;
}

std::optional<double> Approximation::first_crossing(double level, double t0,
                                                    double t1) const {
  constexpr std::size_t kScanPoints = 4096;
  if (!(t1 > t0)) return std::nullopt;
  double prev_t = t0;
  double prev_v = value(t0) - level;
  if (prev_v == 0.0) return t0;
  for (std::size_t i = 1; i <= kScanPoints; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) /
                 static_cast<double>(kScanPoints);
    const double v = value(t) - level;
    if ((prev_v < 0.0 && v >= 0.0) || (prev_v > 0.0 && v <= 0.0)) {
      // Bisection refinement on the bracket.
      double lo = prev_t;
      double hi = t;
      double flo = prev_v;
      for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double fm = value(mid) - level;
        if ((flo < 0.0) == (fm < 0.0)) {
          lo = mid;
          flo = fm;
        } else {
          hi = mid;
        }
      }
      return 0.5 * (lo + hi);
    }
    prev_t = t;
    prev_v = v;
  }
  return std::nullopt;
}

waveform::Waveform Approximation::sample(double t0, double t1,
                                         std::size_t count) const {
  return waveform::Waveform::sample([this](double t) { return value(t); },
                                    t0, t1, count);
}

Engine::Engine(const circuit::Circuit& ckt, mna::Options mna)
    : mna_(ckt, mna) {}

const la::RealVector& Engine::equilibrium() {
  // Equilibrium at the initial source values: the operating point the
  // stimulus perturbs.  One substitution, shared by every output (timed
  // by the callers' setup timers).
  if (!x_eq_) x_eq_ = mna_.solve(mna_.rhs_initial());
  return *x_eq_;
}

std::vector<Engine::AtomProblem>& Engine::atom_problems() {
  if (atoms_built_) return atoms_;
  ScopedTimer timer(stats_.seconds_setup);
  const std::size_t n = mna_.dim();

  const la::RealVector& x_eq = equilibrium();
  const la::RealVector& x0 = mna_.initial_state();

  // Atom at t=0 carries the initial-condition deviation plus any stimulus
  // event at exactly t=0 (the paper's combined IC + step analysis).
  la::RealVector xh0_first(n);
  for (std::size_t i = 0; i < n; ++i) xh0_first[i] = x0[i] - x_eq[i];
  la::RealVector xb_first(n, 0.0);
  la::RealVector xa_first(n, 0.0);
  bool have_first = la::norm_inf(xh0_first) > 0.0;

  for (const auto& ev : mna_.events()) {
    // Particular solution of this segment's input:
    //   G x_a = db1;  G x_b = db0 - C x_a.
    const la::RealVector xa = mna_.solve(ev.slope_change);
    la::RealVector rhs = ev.value_jump;
    const la::RealVector cxa = mna_.apply_C(xa);
    for (std::size_t i = 0; i < n; ++i) rhs[i] -= cxa[i];
    const la::RealVector xb = mna_.solve(rhs);

    if (ev.time <= 0.0) {
      // Fold into the t=0 atom.
      for (std::size_t i = 0; i < n; ++i) {
        xh0_first[i] -= xb[i];
        xb_first[i] += xb[i];
        xa_first[i] += xa[i];
      }
      have_first = true;
    } else {
      AtomProblem atom{ev.time, xb, xa,
                       MomentSequence(mna_, [&] {
                         la::RealVector xh(n);
                         for (std::size_t i = 0; i < n; ++i) xh[i] = -xb[i];
                         return xh;
                       }())};
      atoms_.push_back(std::move(atom));
    }
  }
  if (have_first) {
    atoms_.insert(atoms_.begin(),
                  AtomProblem{0.0, xb_first, xa_first,
                              MomentSequence(mna_, xh0_first)});
  }

  // The static operating point enters as a terms-free pseudo-atom handled
  // in approximate() (affine offset only); we keep x_eq implicitly by
  // storing it in every Result via the base offset.
  atoms_built_ = true;
  return atoms_;
}

// One lint pass per engine, on the first approximation that asks for it.
// Errors abort before any matrix work with the structured lint record;
// warnings only feed the Stats tallies.
void Engine::preflight(const EngineOptions& options) {
  // Advisory conditioning oracle (opt-in, memoized like the lint): one
  // assessment per engine, never blocks, only annotates Results.
  if (options.preflight_audit && !audit_done_) {
    audit_done_ = true;
    check::OracleOptions oracle_options;
    oracle_options.target_order = options.order;
    const check::ConditioningEstimate estimate =
        check::assess_circuit(mna_.circuit(), oracle_options);
    if (estimate.hazard) {
      ++stats_.conditioning_hazards;
      Diagnostic diag;
      diag.code = DiagCode::ConditioningHazard;
      diag.severity = Severity::Warning;
      diag.message = estimate.detail;
      diag.condition_estimate =
          check::hankel_condition(estimate.spread, options.order);
      audit_diag_ = std::move(diag);
    }
  }
  if (!options.preflight_lint || lint_done_) return;
  lint_done_ = true;
  check::LintOptions lint_options;
  lint_options.classify_note = false;
  const check::LintReport report = check::lint(mna_.circuit(), lint_options);
  stats_.lint_errors += report.errors;
  stats_.lint_warnings += report.warnings;
  if (report.ok()) return;
  for (const auto& d : report.diagnostics) {
    if (d.severity >= Severity::Error) {
      Diagnostic fatal = d;
      fatal.severity = Severity::Fatal;
      throw DiagnosticError(std::move(fatal));
    }
  }
}

Result Engine::approximate(circuit::NodeId output,
                           const EngineOptions& options) {
  if (options.order < 1) {
    throw std::invalid_argument("Engine: order >= 1 required");
  }
  preflight(options);
  const std::size_t out = mna_.node_index(output);
  Result result = approximate_at(out, options);
  if (audit_diag_) result.diagnostics.push_back(*audit_diag_);
  sync_mna_stats();
  return result;
}

BatchResult Engine::approximate_all(
    std::span<const circuit::NodeId> outputs,
    const EngineOptions& options) {
  if (options.order < 1) {
    throw std::invalid_argument("Engine: order >= 1 required");
  }
  preflight(options);
  std::vector<std::size_t> indices;
  indices.reserve(outputs.size());
  for (const auto output : outputs) {
    indices.push_back(mna_.node_index(output));
  }

  sync_mna_stats();
  const Stats before = stats_;

  // Build the output-independent work up front: the atom problems (one
  // LU of G, particular solutions) and the full-state moment vectors the
  // initial order needs, advanced across all atoms as one multi-RHS
  // block.  Auto-order escalation beyond this window extends lazily.
  auto& atoms = atom_problems();
  {
    AWESIM_TRACE_SPAN("engine.moments");
    ScopedTimer timer(stats_.seconds_moments);
    const int j0 = options.match_initial_slope ? -2 : -1;
    const int mu_count =
        options.estimate_error ? 2 * (options.order + 1) + 1
                               : 2 * options.order + 1;
    std::vector<MomentSequence*> sequences;
    sequences.reserve(atoms.size());
    for (auto& atom : atoms) sequences.push_back(&atom.moments);
    MomentSequence::ensure_all(sequences, j0 + mu_count - 1);
  }

  BatchResult batch;
  batch.results.reserve(indices.size());
  for (const std::size_t out : indices) {
    batch.results.push_back(approximate_at(out, options));
    if (audit_diag_) batch.results.back().diagnostics.push_back(*audit_diag_);
  }
  sync_mna_stats();
  batch.stats = stats_ - before;
  return batch;
}

void Engine::sync_mna_stats() {
  // The MNA counters are cumulative; mirror them into the engine stats.
  const mna::SolveStats& s = mna_.solve_stats();
  stats_.factorizations = s.factorizations;
  stats_.substitutions = s.substitutions;
}

MatchResult Engine::attempt_order(const std::vector<double>& mu, int j0,
                                  int qq, const EngineOptions& options,
                                  core::Diagnostics* diags) {
  ScopedTimer timer(stats_.seconds_match);
  MatchOptions local = options.match;
  local.frequency_scaling = options.frequency_scaling;
  local.pole_shift = 0;
  std::vector<double> window(mu.begin(), mu.begin() + 2 * qq);
  ++stats_.matches;
  MatchResult m = match_moments(window, j0, qq, local);
  if (fault_at("engine.unstable", std::to_string(qq))) {
    m.stable = false;
    if (diags) {
      Diagnostic d;
      d.code = DiagCode::InjectedFault;
      d.message = "forced eq. 24 match unstable at q=" +
                  std::to_string(qq);
      diags->push_back(std::move(d));
    }
  }
  if (!m.terms.empty() &&
      fault_at("engine.residue", std::to_string(qq))) {
    m.terms.front().residue = la::Complex(kNan, 0.0);
    if (diags) {
      Diagnostic d;
      d.code = DiagCode::InjectedFault;
      d.message = "injected NaN residue at q=" + std::to_string(qq);
      diags->push_back(std::move(d));
    }
  }
  if (!finite_terms(m.terms)) m.stable = false;
  if (!m.stable && options.allow_window_shift) {
    // Section 3.3 fallback: retry with the pole window shifted to pure
    // moments before giving up on this order.
    local.pole_shift = 1;
    std::vector<double> wider(mu.begin(), mu.begin() + 2 * qq + 1);
    ++stats_.matches;
    MatchResult shifted = match_moments(wider, j0, qq, local);
    if (fault_at("engine.shift", std::to_string(qq))) {
      shifted.stable = false;
      if (diags) {
        Diagnostic d;
        d.code = DiagCode::InjectedFault;
        d.message = "forced shifted-window match unstable at q=" +
                    std::to_string(qq);
        diags->push_back(std::move(d));
      }
    }
    if (shifted.stable && finite_terms(shifted.terms)) return shifted;
  }
  return m;
}

Engine::LadderOutcome Engine::match_with_ladder(
    const std::vector<double>& mu, int j0, int q,
    const EngineOptions& options, bool allow_degrade,
    const std::string& node_name, core::Diagnostics* diags) {
  LadderOutcome out;

  bool moments_finite = true;
  double max_mu = 0.0;
  for (const double v : mu) {
    if (!std::isfinite(v)) moments_finite = false;
    max_mu = std::max(max_mu, std::abs(v));
  }
  // NaN moments count as "transient present": something is there, we just
  // cannot see it.
  const bool has_transient = max_mu > 0.0 || !moments_finite;

  auto note = [&](DiagCode code, Severity severity, std::string message,
                  double condition = -1.0) {
    if (!diags) return;
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.message = std::move(message);
    d.node = node_name;
    d.condition_estimate = condition;
    diags->push_back(std::move(d));
  };

  if (moments_finite) {
    // Rung 1+2: the eq. 24 window, with the Section 3.3 shifted-window
    // retry built into attempt_order.
    out.match = attempt_order(mu, j0, q, options, diags);
    if (usable_match(out.match, has_transient)) {
      if (out.match.pole_shift == 1) {
        out.status = ApproxStatus::WindowShifted;
        note(DiagCode::WindowShifted, Severity::Info,
             "eq. 24 window unstable at q=" + std::to_string(q) +
                 "; Section 3.3 shifted window engaged");
      } else if (out.match.order_used > 0 &&
                 out.match.order_used < out.match.order_requested) {
        // The Hankel solve itself reduced the order (rank/conditioning):
        // a clean exact reduction, recorded but not a degradation.
        note(DiagCode::OrderReduced, Severity::Info,
             "Hankel conditioning reduced order from " +
                 std::to_string(out.match.order_requested) + " to " +
                 std::to_string(out.match.order_used),
             out.match.rejected_pivot_growth);
      }
      return out;
    }
    if (!allow_degrade) return out;  // caller escalates or wants raw output

    note(DiagCode::UnstablePoles, Severity::Warning,
         "no stable model at q=" + std::to_string(q) +
             " (eq. 24 and shifted windows); walking the ladder down");

    // Rung 3: step the order down q-1, ..., 1.  q=1 through the match is
    // the exact Elmore (Penfield-Rubinstein) reduction.
    for (int qq = q - 1; qq >= 1; --qq) {
      MatchResult lower = attempt_order(mu, j0, qq, options, diags);
      if (usable_match(lower, has_transient)) {
        out.match = std::move(lower);
        out.status = ApproxStatus::OrderReduced;
        note(DiagCode::OrderReduced, Severity::Warning,
             "order stepped down from " + std::to_string(q) + " to " +
                 std::to_string(qq) + " for a stable model",
             out.match.rejected_pivot_growth);
        return out;
      }
    }
  } else {
    note(DiagCode::NonFiniteValue, Severity::Error,
         "non-finite moments; no window is matchable");
    if (!allow_degrade) {
      out.match.stable = false;
      return out;
    }
  }

  // Rung 4: the flagged Elmore bound, built directly from mu_{-1} and
  // mu_0 without a Hankel solve (so it survives injected or genuine
  // match failures at every order).
  const std::size_t i_m1 = static_cast<std::size_t>(-1 - j0);
  const std::size_t i_0 = static_cast<std::size_t>(-j0);
  const double mu_m1 = mu[i_m1];
  const double mu_0 = mu[i_0];
  if (has_transient && std::isfinite(mu_m1) && std::isfinite(mu_0) &&
      mu_m1 != 0.0 && mu_0 != 0.0) {
    const double pole = mu_m1 / mu_0;
    if (std::isfinite(pole) && pole < 0.0) {
      out.match = MatchResult{};
      out.match.order_requested = q;
      out.match.order_used = 1;
      out.match.stable = true;
      out.match.terms = {{la::Complex(pole, 0.0),
                          la::Complex(-mu_m1, 0.0), 1}};
      out.status = ApproxStatus::ElmoreFallback;
      note(DiagCode::ElmoreFallback, Severity::Warning,
           "degraded to the single-pole Elmore bound (tau=" +
               std::to_string(-1.0 / pole) + "s)");
      return out;
    }
  }

  // Rung 5: nothing left -- answer with the affine (DC) part alone and
  // flag the output as failed.
  out.match = MatchResult{};
  out.match.order_requested = q;
  out.match.order_used = 0;
  out.match.stable = true;  // an empty term set is trivially stable
  out.status = ApproxStatus::Failed;
  note(DiagCode::NonFiniteValue, Severity::Error,
       "no transient model obtainable; answering with the DC/affine part "
       "only");
  return out;
}

Result Engine::approximate_at(std::size_t out,
                              const EngineOptions& options) {
  auto& atoms = atom_problems();
  const la::RealVector& x_eq = equilibrium();

  const int j0 = options.match_initial_slope ? -2 : -1;
  const std::string node_name =
      out + 1 < mna_.circuit().node_count()
          ? mna_.circuit().node_name(static_cast<circuit::NodeId>(out) + 1)
          : "#" + std::to_string(out);

  int q = options.order;
  Result result;
  while (true) {
    // Degradation only engages once order escalation (if available) is
    // exhausted; earlier auto-order passes keep the paper's "instability
    // forces escalation" rule intact.
    const bool last_chance = !options.auto_order ||
                             !options.estimate_error ||
                             q >= options.max_order;
    const bool allow_degrade = options.degrade && last_chance;

    result = Result{};
    result.used_gmin = mna_.used_gmin();
    for (const auto& d : mna_.diagnostics()) {
      result.diagnostics.push_back(d);
    }

    // Base pseudo-atom: the pre-stimulus operating point.
    AtomApproximation base;
    base.start_time = 0.0;
    base.affine_offset = x_eq[out];
    result.approximation.atoms().push_back(base);

    double worst_error = 0.0;
    bool all_stable = true;
    bool first_atom = true;
    for (auto& problem : atoms) {
      // Gather mu_{j0} .. mu_{j0 + 2(q+1)}: enough for the q-match, the
      // (q+1)-order error reference, and the shifted-window fallback.
      // Without error estimation only the q-match moments are needed.
      const int mu_count =
          options.estimate_error ? 2 * (q + 1) + 1 : 2 * q + 1;
      std::vector<double> mu;
      {
        AWESIM_TRACE_SPAN("engine.moments");
        ScopedTimer timer(stats_.seconds_moments);
        for (int j = j0; j < j0 + mu_count; ++j) {
          double v = problem.moments.mu(j, out);
          if (j == -1 && options.jump_consistent &&
              problem.moments.has_jump(out)) {
            v = -problem.moments.consistent_initial_value()[out];
          }
          mu.push_back(v);
        }
      }
      if (fault_at("engine.moments", node_name)) {
        for (double& v : mu) v = kNan;
        Diagnostic d;
        d.code = DiagCode::InjectedFault;
        d.message = "replaced moment window with NaN";
        d.node = node_name;
        result.diagnostics.push_back(std::move(d));
      }

      LadderOutcome ladder =
          match_with_ladder(mu, j0, q, options, allow_degrade, node_name,
                            &result.diagnostics);
      MatchResult& match = ladder.match;

      AtomApproximation atom;
      atom.start_time = problem.start_time;
      atom.affine_offset = problem.particular_offset[out];
      atom.affine_slope = problem.particular_slope[out];
      atom.terms = match.terms;
      atom.match = match;
      result.approximation.atoms().push_back(std::move(atom));

      result.order_used = std::max(result.order_used, match.order_used);
      if (!match.stable) all_stable = false;
      if (ladder.status > result.status) result.status = ladder.status;
      switch (ladder.status) {
        case ApproxStatus::WindowShifted: ++stats_.window_shifts; break;
        case ApproxStatus::OrderReduced: ++stats_.order_stepdowns; break;
        case ApproxStatus::ElmoreFallback: ++stats_.elmore_fallbacks; break;
        default: break;
      }

      if (options.estimate_error &&
          ladder.status <= ApproxStatus::OrderReduced &&
          !match.terms.empty()) {
        const MatchResult ref =
            attempt_order(mu, j0, q + 1, options, nullptr);
        const double err =
            options.cauchy_error_bound
                ? cauchy_relative_error(ref.terms, match.terms)
                : exact_relative_error(ref.terms, match.terms);
        if (std::isnan(err)) {
          worst_error = kNan;
        } else if (!std::isnan(worst_error)) {
          worst_error = std::max(worst_error, err);
        }
      } else if (options.estimate_error &&
                 ladder.status >= ApproxStatus::ElmoreFallback) {
        // Degraded bounds carry no q-vs-(q+1) accuracy statement.
        worst_error = kNan;
      }
      if (first_atom) {
        result.output_moments.assign(mu.begin(), mu.end());
        first_atom = false;
      }
    }
    result.stable = all_stable;
    result.error_estimate =
        options.estimate_error ? worst_error : kNan;

    if (!options.auto_order || !options.estimate_error) break;
    const bool good = all_stable && !std::isnan(worst_error) &&
                      worst_error <= options.error_tolerance;
    if (good || q >= options.max_order) break;
    ++q;
  }
  if (result.status == ApproxStatus::OrderReduced ||
      result.status == ApproxStatus::ElmoreFallback) {
    ++stats_.degradations;
  } else if (result.status == ApproxStatus::Failed) {
    ++stats_.failures;
  }
  ++stats_.outputs;
  return result;
}

la::ComplexVector Engine::actual_poles() const {
  return core::actual_poles(mna_);
}

double Engine::elmore_delay(circuit::NodeId output) {
  const std::size_t out = mna_.node_index(output);
  auto& atoms = atom_problems();
  if (atoms.empty()) return 0.0;
  auto& m = atoms.front().moments;
  const double mu_m1 = m.mu(-1, out);
  const double mu_0 = m.mu(0, out);
  if (mu_m1 == 0.0) return kNan;
  return -mu_0 / mu_m1;
}

}  // namespace awesim::core
