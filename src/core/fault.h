// Deterministic fault injection for the guarded AWE pipeline.
//
// Robustness code is only trustworthy if every fallback rung can be made
// to fire on demand: a singular pivot in the MNA factorization, an
// unstable eq. 24 match, a NaN residue, a thread-pool job that dies.
// FaultInjector is a process-wide registry of (site, key) rules consulted
// by narrow `fault_at()` probes compiled into the pipeline's failure
// points.  Sites are stable string names (see below); keys select one
// specific victim (a net name, an order) or "*" for any.
//
// Probe sites wired into the pipeline:
//   la.lu            key = matrix dimension     force a singular pivot
//   la.lowrank       key = matrix dimension     refuse the Sherman-Morrison
//                                               update (the caller must fall
//                                               back to full refactorization)
//   mna.factor       key = "*"                  singular G factorization
//   engine.moments   key = output node name     replace moments with NaN
//   engine.unstable  key = order q              flag the eq. 24 match unstable
//   engine.shift     key = order q              flag the shifted match unstable
//   engine.residue   key = order q              inject a NaN residue
//   pade.hankel      key = order q              reject the Hankel solve
//   timing.stage     key = net name             throw inside stage evaluation
//   parallel.job     key = net name             throw inside the pool job
//   session.cache    key = net name             treat the stage-cache entry
//                                               as corrupt (checksum fails;
//                                               the entry is dropped and the
//                                               stage recomputed)
//
// Injection is config/env-driven: tests arm rules programmatically
// (ScopedFaultInjection), operators can set AWESIM_FAULTS, e.g.
//   AWESIM_FAULTS="timing.stage:net3;engine.unstable:*"
// and a rule may carry a firing limit: "engine.unstable:3@2" fires twice.
//
// When the CMake option AWESIM_FAULT_INJECTION is OFF the probes compile
// to a constant `false` and the production binary carries no injection
// code at all.  When ON but disarmed (the default at runtime), a probe
// costs one relaxed atomic load.
//
// Determinism contract: rules without firing limits are pure functions of
// (site, key), so a run with N worker threads fires exactly the same
// faults as a serial run.  Firing limits are counted under a mutex and
// are deterministic only for single-threaded use.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef AWESIM_FAULT_INJECTION
#define AWESIM_FAULT_INJECTION 1
#endif

namespace awesim::core {

struct FaultRule {
  std::string site;
  std::string key = "*";  // "*" matches any key at the site
  /// Maximum number of firings; negative = unlimited.
  int fire_limit = -1;
};

class FaultInjector {
 public:
  /// The process-wide injector.  On first use, rules are loaded from the
  /// AWESIM_FAULTS environment variable if it is set.
  static FaultInjector& instance();

  /// Install `rules` and enable injection (replaces any previous set).
  void arm(std::vector<FaultRule> rules);

  /// Disable injection and clear all rules and counters.
  void disarm();

  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// True if an armed rule matches; records the firing.  Called through
  /// fault_at(); not meant for direct use outside tests.
  bool should_fire(std::string_view site, std::string_view key);

  /// Number of firings recorded at a site (all keys).
  std::uint64_t fired(std::string_view site) const;

  /// Total firings since arm().
  std::uint64_t fired_total() const;

  /// Parse and arm rules from an AWESIM_FAULTS-style spec:
  /// "site:key;site:key@limit".  Returns false (and arms nothing) on an
  /// empty/absent spec.
  bool arm_spec(std::string_view spec);

 private:
  FaultInjector();

  mutable std::mutex mutex_;
  std::vector<FaultRule> rules_;
  std::vector<std::int64_t> remaining_;  // per-rule firings left (<0 = inf)
  std::vector<std::pair<std::string, std::uint64_t>> site_fired_;
  std::atomic<bool> enabled_{false};
};

/// Arms the injector with `rules` for the lifetime of the object, then
/// disarms.  The standard way tests drive the degradation ladder.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(std::vector<FaultRule> rules) {
    FaultInjector::instance().arm(std::move(rules));
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// The probe compiled into pipeline failure points.
inline bool fault_at(std::string_view site, std::string_view key = "*") {
#if AWESIM_FAULT_INJECTION
  FaultInjector& fi = FaultInjector::instance();
  if (!fi.enabled()) return false;
  return fi.should_fire(site, key);
#else
  (void)site;
  (void)key;
  return false;
#endif
}

}  // namespace awesim::core
