// Wire protocol for `awesim_serve` -- newline-delimited JSON requests
// over a byte stream (Unix-domain socket, TCP loopback, or stdio).
//
// This layer is deliberately socket-free: it turns one request *line*
// into one response *line* against a timing::SnapshotStore, so the
// daemon (src/serve/server.h), the stdio mode of the binary, the
// protocol tests, and the throughput benches all share one code path.
// Every failure mode -- malformed JSON, schema violations, unknown
// methods, bad parameters, tripped deadlines and budgets, injected
// faults -- becomes a structured error response; handle_line() never
// throws and never returns anything but a complete JSON object.
//
// Schema v1 (kProtocolVersion):
//
//   request  := {"id": any, "method": string, "params": object?}
//     params may carry, for any method:
//       "deadline_ms":  number  wall-clock budget for this request
//       "stage_budget": number  max stage evaluations / path expansions
//   response := {"id": <echoed>, "ok": true,
//                "generation": N, "result": object}
//             | {"id": <echoed>, "ok": false,
//                "error": {"code": string, "severity": string,
//                          "message": string, "diagnostics": [...]},
//                "retry_after_ms": number?}   // ServerOverloaded only
//
// Methods: ping, analyze, set_value, set_gate, sweep, lint, audit,
// worst_paths, stats, load_design, shutdown.  DESIGN.md section 13
// documents each method's parameters and result shape.
//
// Fault probes (core/fault.h): serve.parse (key "*") fires before the
// request parse; serve.dispatch (key = method) fires before execution.
// Both yield well-formed injected-fault error responses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "check/lint.h"
#include "core/diagnostic.h"
#include "obs/json.h"
#include "timing/session.h"
#include "timing/snapshot.h"

namespace awesim::core {
class CancelToken;
}

namespace awesim::serve {

inline constexpr int kProtocolVersion = 1;

/// One parsed request.  `id` is echoed verbatim into the response (any
/// JSON value; null when the field was absent).
struct Request {
  obs::json::Value id;
  std::string method;
  obs::json::Value params = obs::json::Value::object();
  /// Wall-clock deadline for this request, in milliseconds (0 = none).
  double deadline_ms = 0.0;
  /// Work budget: stage evaluations + path expansions (0 = none).
  std::uint64_t stage_budget = 0;
};

/// Parse one request line.  Throws obs::json::ParseError on malformed
/// JSON and core::DiagnosticError (InvalidRequest) on schema violations
/// (non-object document, missing/non-string method, non-object params,
/// bad deadline/budget types).
Request parse_request(std::string_view line);

/// Structured JSON rendering of one diagnostic record / a whole list.
obs::json::Value diagnostic_to_json(const core::Diagnostic& diag);
obs::json::Value diagnostics_to_json(const core::Diagnostics& diags);

/// Response builders.  `retry_after_ms` < 0 omits the field; it is the
/// shed-response hint ("come back once the queue drained").
obs::json::Value ok_response(const obs::json::Value& id,
                             std::uint64_t generation,
                             obs::json::Value result);
obs::json::Value error_response(const obs::json::Value& id,
                                const core::Diagnostic& diag,
                                double retry_after_ms = -1.0);

/// Convenience diagnostics for the request lifecycle.
core::Diagnostic invalid_request(std::string message);
core::Diagnostic server_overloaded(std::string message);

/// Result renderers (all shapes documented in DESIGN.md section 13).
obs::json::Value report_to_json(const timing::TimingReport& report,
                                bool include_stages);
obs::json::Value paths_to_json(const timing::PathsResult& result);
obs::json::Value sweep_to_json(const timing::SweepResult& result);
obs::json::Value lint_to_json(const check::LintReport& report);
obs::json::Value cache_stats_to_json(const timing::Session::CacheStats& s);

/// Build a timing::Design from its JSON description:
///   {"gates": [{"name", "drive_resistance"?, "input_capacitance"?,
///               "intrinsic_delay"?}, ...],
///    "nets":  [{"driver", "name", "sinks": {gate: node, ...},
///               "elements": [{"kind": "R"|"C"|"L", "a", "b",
///                             "value"}, ...]}, ...],
///    "primary_inputs": [gate, ...]}
/// Throws core::DiagnosticError (InvalidRequest) naming the offending
/// field on any schema violation.
timing::Design design_from_json(const obs::json::Value& v);

/// Deterministic built-in designs, for the daemon default, tests, and
/// benches: "chainN" (N-stage inverter chain, one RC net per stage) and
/// "fanoutN" (one root driving N sinks through a shared net, then a
/// reconvergent second level).  Throws core::DiagnosticError
/// (InvalidRequest) for an unknown name or absurd N.
timing::Design builtin_design(const std::string& name);

/// Execute one parsed request against the store.  Returns the result
/// object and sets `generation_out` to the generation that answered
/// (reads: the pinned snapshot's; mutations: the newly published one).
/// Throws core::DiagnosticError / std::invalid_argument on failures --
/// handle_line() is the layer that renders those into responses.
/// `server_stats`, when non-null, is merged into the `stats` result
/// under "server" (the daemon injects its queue/shed counters here).
obs::json::Value dispatch(timing::SnapshotStore& store, const Request& req,
                          core::CancelToken* cancel,
                          std::uint64_t* generation_out,
                          const std::function<obs::json::Value()>*
                              server_stats = nullptr);

/// Knobs the daemon threads through to the per-line handler.
struct HandleOptions {
  /// Merged into `stats` results under "server" when set.
  std::function<obs::json::Value()> server_stats;
  /// Applied when a request carries no deadline_ms of its own (the
  /// daemon's safety net against a stuck analysis; 0 = none).
  double default_deadline_ms = 0.0;
};

/// One request line -> one response line, never throwing.  `shutdown`
/// is set true when the request was a well-formed shutdown method (the
/// caller stops its loop; the response still goes out first).  `ok`
/// mirrors the response's "ok" field, for the daemon's counters.
struct HandleResult {
  std::string line;
  bool ok = false;
  bool shutdown = false;
};
HandleResult handle_line(timing::SnapshotStore& store, std::string_view line,
                         const HandleOptions& options = {});

}  // namespace awesim::serve
