// awesim_serve: the timing-as-a-service daemon.  Loads a design, then
// answers newline-delimited JSON requests (see serve/protocol.h and
// DESIGN.md section 13) over a Unix-domain socket, a loopback TCP
// socket, or stdin/stdout.
//
//   awesim_serve --unix /tmp/awesim.sock [options]
//   awesim_serve --tcp 7777 [options]         # 0 picks an ephemeral port
//   awesim_serve --stdio [options]            # one-process mode: NDJSON
//                                             # on stdin, responses on
//                                             # stdout (CI / scripting)
//
// Options:
//   --design NAME          builtin design: chainN or fanoutN (default
//                          chain8)
//   --workers N            dispatcher threads (default 2)
//   --max-queue N          admission queue capacity (default 64)
//   --max-clients N        concurrent connections (default 32)
//   --max-inflight N       per-client pipelining cap (default 8)
//   --idle-timeout S       disconnect silent clients after S seconds
//   --default-deadline-ms M  deadline applied to requests without one
//   --threads N            analyzer threads per request (default 0=auto)
//
// Socket modes print one "listening ..." line to stdout once bound (so
// scripts can synchronize), then serve until a shutdown request.  Exit
// status: 0 on clean shutdown, 1 on startup failure, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/protocol.h"
#include "serve/server.h"
#include "timing/snapshot.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT | --stdio)\n"
               "          [--design chainN|fanoutN] [--workers N]\n"
               "          [--max-queue N] [--max-clients N]\n"
               "          [--max-inflight N] [--idle-timeout SECONDS]\n"
               "          [--default-deadline-ms MS] [--threads N]\n",
               argv0);
  return 2;
}

/// NDJSON on stdin -> responses on stdout; serves until shutdown or EOF.
int run_stdio(awesim::timing::Design design,
              const awesim::timing::AnalysisOptions& analysis,
              double default_deadline_ms) {
  awesim::timing::SnapshotStore store(std::move(design), analysis);
  awesim::serve::HandleOptions hopts;
  hopts.default_deadline_ms = default_deadline_ms;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const awesim::serve::HandleResult result =
        awesim::serve::handle_line(store, line, hopts);
    std::fputs(result.line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
    if (result.shutdown) return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  awesim::serve::ServeOptions options;
  awesim::timing::AnalysisOptions analysis;
  std::string design_name = "chain8";
  bool stdio = false;
  bool have_listener = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--stdio") {
      stdio = true;
      have_listener = true;
    } else if (arg == "--unix") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.unix_path = v;
      have_listener = true;
    } else if (arg == "--tcp") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.tcp_port = std::atoi(v);
      have_listener = true;
    } else if (arg == "--design") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      design_name = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.workers = std::atoi(v);
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.max_queue = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-clients") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.max_clients = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.max_inflight_per_client =
          static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--idle-timeout") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.idle_timeout_s = std::atof(v);
    } else if (arg == "--default-deadline-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.default_deadline_ms = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      analysis.threads = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (!have_listener) return usage(argv[0]);

  awesim::timing::Design design;
  try {
    design = awesim::serve::builtin_design(design_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "awesim_serve: %s\n", e.what());
    return 2;
  }

  if (stdio) {
    return run_stdio(std::move(design), analysis,
                     options.default_deadline_ms);
  }

  try {
    awesim::serve::Server server(std::move(design), analysis, options);
    server.start();
    if (!options.unix_path.empty()) {
      std::printf("awesim_serve listening on unix:%s\n",
                  options.unix_path.c_str());
    } else {
      std::printf("awesim_serve listening on 127.0.0.1:%d\n",
                  server.tcp_port());
    }
    std::fflush(stdout);
    server.wait();
    server.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "awesim_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
