#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/fault.h"

namespace awesim::serve {

namespace json = obs::json;

namespace {

void set_recv_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // A peer that stops draining its socket must not pin a worker in
  // send() forever either.
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Server::Server(timing::Design design, timing::AnalysisOptions analysis,
               ServeOptions options)
    : store_(std::move(design), analysis), options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
  if (options_.max_clients < 1) options_.max_clients = 1;
  if (options_.max_inflight_per_client < 1) {
    options_.max_inflight_per_client = 1;
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);

  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      running_.store(false);
      throw std::runtime_error(std::string("serve: socket: ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw std::runtime_error("serve: unix socket path too long: " +
                               options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    (void)::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw std::runtime_error("serve: bind " + options_.unix_path + ": " +
                               std::strerror(err));
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      running_.store(false);
      throw std::runtime_error(std::string("serve: socket: ") +
                               std::strerror(errno));
    }
    const int one = 1;
    (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw std::runtime_error("serve: bind 127.0.0.1:" +
                               std::to_string(options_.tcp_port) + ": " +
                               std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  } else {
    running_.store(false);
    throw std::runtime_error("serve: no listener (set unix_path or "
                             "tcp_port)");
  }

  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(err));
  }

  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] {
    return shutdown_requested_.load() || stopping_.load();
  });
}

void Server::stop() {
  if (!running_.load()) return;
  if (stopping_.exchange(true)) {
    // Another stop() is already tearing down; just wait for it via the
    // joins below being idempotent is not safe -- bail.
    return;
  }
  wait_cv_.notify_all();

  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_path.empty()) {
    (void)::unlink(options_.unix_path.c_str());
  }

  // Wake every reader blocked in recv(); they observe stopping_ and
  // exit.  The fds are closed by the readers' own epilogue.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done.load()) (void)::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& conn : connections_) {
      if (conn->reader.joinable()) conn->reader.join();
    }
    connections_.clear();
  }

  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  running_.store(false);
}

ServeCounters Server::counters() const {
  ServeCounters c;
  c.accepted = counters_.accepted.load();
  c.refused = counters_.refused.load();
  c.requests = counters_.requests.load();
  c.responses_ok = counters_.responses_ok.load();
  c.responses_error = counters_.responses_error.load();
  c.shed_queue = counters_.shed_queue.load();
  c.shed_inflight = counters_.shed_inflight.load();
  c.oversize = counters_.oversize.load();
  c.idle_closed = counters_.idle_closed.load();
  c.accept_faults = counters_.accept_faults.load();
  c.write_failures = counters_.write_failures.load();
  return c;
}

json::Value Server::stats_json() const {
  const ServeCounters c = counters();
  json::Value v = json::Value::object();
  v.set("accepted", json::Value(static_cast<unsigned long long>(c.accepted)));
  v.set("refused", json::Value(static_cast<unsigned long long>(c.refused)));
  v.set("requests", json::Value(static_cast<unsigned long long>(c.requests)));
  v.set("responses_ok", json::Value(static_cast<unsigned long long>(c.responses_ok)));
  v.set("responses_error", json::Value(static_cast<unsigned long long>(c.responses_error)));
  v.set("shed_queue", json::Value(static_cast<unsigned long long>(c.shed_queue)));
  v.set("shed_inflight", json::Value(static_cast<unsigned long long>(c.shed_inflight)));
  v.set("oversize", json::Value(static_cast<unsigned long long>(c.oversize)));
  v.set("idle_closed", json::Value(static_cast<unsigned long long>(c.idle_closed)));
  v.set("accept_faults", json::Value(static_cast<unsigned long long>(c.accept_faults)));
  v.set("write_failures", json::Value(static_cast<unsigned long long>(c.write_failures)));
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = queue_.size();
  }
  v.set("queue_depth", static_cast<unsigned long long>(depth));
  std::size_t open = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done.load()) ++open;
    }
  }
  v.set("open_clients", static_cast<unsigned long long>(open));
  return v;
}

bool Server::write_line(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(conn.fd, framed.data() + off,
                             framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      counters_.write_failures.fetch_add(1);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void Server::refuse_connection(int fd, const char* why) {
  const std::string line =
      error_response(json::Value(), server_overloaded(why),
                     options_.retry_after_ms)
          .dump() +
      "\n";
  (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
  ::close(fd);
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load() && (*it)->inflight.load() == 0) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (stopping_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    if (core::fault_at("serve.accept")) {
      // The probe models accept-path failures (fd exhaustion, a dying
      // TLS handshake in a richer deployment): the client still gets a
      // structured response, the daemon keeps serving everyone else.
      counters_.accept_faults.fetch_add(1);
      refuse_connection(fd, "injected fault at serve.accept");
      continue;
    }

    set_recv_timeout(fd, options_.idle_timeout_s);

    std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_locked();
    std::size_t open = 0;
    for (const auto& conn : connections_) {
      if (!conn->done.load()) ++open;
    }
    if (open >= options_.max_clients) {
      counters_.refused.fetch_add(1);
      refuse_connection(fd, "client limit reached; retry later");
      continue;
    }
    counters_.accepted.fetch_add(1);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->client = next_client_++;
    connections_.push_back(conn);
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  bool close_now = false;
  while (!stopping_.load() && !close_now) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // peer hung up
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Idle/stuck client: nothing arrived within idle_timeout_s.
        counters_.idle_closed.fetch_add(1);
        break;
      }
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_request_bytes &&
        buffer.find('\n') == std::string::npos) {
      counters_.oversize.fetch_add(1);
      write_line(*conn,
                 error_response(json::Value(),
                                invalid_request(
                                    "request line exceeds size limit"))
                     .dump());
      break;
    }
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_request_bytes) {
        counters_.oversize.fetch_add(1);
        write_line(*conn,
                   error_response(json::Value(),
                                  invalid_request(
                                      "request line exceeds size limit"))
                       .dump());
        close_now = true;
        break;
      }

      // Admission control, cheapest checks first.
      if (conn->inflight.load() >= options_.max_inflight_per_client) {
        counters_.shed_inflight.fetch_add(1);
        write_line(*conn,
                   error_response(json::Value(),
                                  server_overloaded(
                                      "client in-flight limit reached"),
                                  options_.retry_after_ms)
                       .dump());
        continue;
      }
      bool queued = false;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.size() < options_.max_queue) {
          conn->inflight.fetch_add(1);
          counters_.requests.fetch_add(1);
          queue_.push_back(Task{conn, std::move(line)});
          queued = true;
        }
      }
      if (queued) {
        queue_cv_.notify_one();
      } else {
        counters_.shed_queue.fetch_add(1);
        write_line(*conn,
                   error_response(json::Value(),
                                  server_overloaded(
                                      "admission queue full"),
                                  options_.retry_after_ms)
                       .dump());
      }
    }
    buffer.erase(0, start);
  }
  // Wait for this connection's in-flight requests so workers never
  // write to a closed fd slot... the fd stays open until they drain.
  while (conn->inflight.load() != 0 && !stopping_.load()) {
    std::this_thread::yield();
  }
  ::close(conn->fd);
  conn->done.store(true);
}

void Server::worker_loop() {
  HandleOptions hopts;
  hopts.server_stats = [this] { return stats_json(); };
  hopts.default_deadline_ms = options_.default_deadline_ms;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !queue_.empty();
      });
      if (stopping_.load()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const HandleResult result = handle_line(store_, task.line, hopts);
    if (result.ok) {
      counters_.responses_ok.fetch_add(1);
    } else {
      counters_.responses_error.fetch_add(1);
    }
    write_line(*task.conn, result.line);
    task.conn->inflight.fetch_sub(1);
    if (result.shutdown) {
      shutdown_requested_.store(true);
      wait_cv_.notify_all();
    }
  }
}

}  // namespace awesim::serve
