#include "serve/protocol.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "audit/report_json.h"
#include "core/cancel.h"
#include "core/fault.h"

namespace awesim::serve {

namespace json = obs::json;

namespace {

core::DiagnosticError bad_request(std::string message) {
  return core::DiagnosticError(invalid_request(std::move(message)));
}

/// std::uint64_t is `unsigned long` on LP64, which is ambiguous across
/// the Value constructors; route counters through one explicit widening.
json::Value u64(std::uint64_t n) {
  return json::Value(static_cast<unsigned long long>(n));
}

/// params["key"] as a string; throws InvalidRequest when absent or
/// mistyped.
const std::string& require_string(const json::Value& params,
                                  const char* key) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_string()) {
    throw bad_request(std::string("missing or non-string parameter '") +
                      key + "'");
  }
  return v->as_string();
}

double require_number(const json::Value& params, const char* key) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_number()) {
    throw bad_request(std::string("missing or non-number parameter '") +
                      key + "'");
  }
  return v->as_number();
}

double number_or(const json::Value& params, const char* key,
                 double fallback) {
  const json::Value* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw bad_request(std::string("non-number parameter '") + key + "'");
  }
  return v->as_number();
}

bool bool_or(const json::Value& params, const char* key, bool fallback) {
  const json::Value* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    throw bad_request(std::string("non-boolean parameter '") + key + "'");
  }
  return v->as_bool();
}

/// A number that must be a non-negative integer (indices, counts).
std::uint64_t require_index(const json::Value& params, const char* key) {
  const double n = require_number(params, key);
  if (!(n >= 0.0) || n != std::floor(n) || n > 9.007199254740992e15) {
    throw bad_request(std::string("parameter '") + key +
                      "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

std::uint64_t index_or(const json::Value& params, const char* key,
                       std::uint64_t fallback) {
  if (params.find(key) == nullptr) return fallback;
  return require_index(params, key);
}

json::Value stats_to_json(const core::Stats& s) {
  json::Value v = json::Value::object();
  v.set("factorizations", u64(s.factorizations));
  v.set("substitutions", u64(s.substitutions));
  v.set("matches", u64(s.matches));
  v.set("stages", u64(s.stages));
  v.set("cache_hits", u64(s.cache_hits));
  v.set("cache_misses", u64(s.cache_misses));
  v.set("stages_reused", u64(s.stages_reused));
  v.set("stages_recomputed", u64(s.stages_recomputed));
  v.set("cache_evictions", u64(s.cache_evictions));
  v.set("low_rank_points", u64(s.low_rank_points));
  v.set("low_rank_refactorizations", u64(s.low_rank_refactorizations));
  v.set("lint_errors", u64(s.lint_errors));
  v.set("lint_warnings", u64(s.lint_warnings));
  return v;
}

timing::SweepParam sweep_param_from(const json::Value& params) {
  timing::SweepParam p;
  const std::string& kind = require_string(params, "kind");
  if (kind == "net_element") {
    p.kind = timing::SweepParam::Kind::NetElementValue;
    p.element_index =
        static_cast<std::size_t>(index_or(params, "element_index", 0));
  } else if (kind == "drive_resistance") {
    p.kind = timing::SweepParam::Kind::DriveResistance;
  } else if (kind == "input_capacitance") {
    p.kind = timing::SweepParam::Kind::InputCapacitance;
  } else if (kind == "intrinsic_delay") {
    p.kind = timing::SweepParam::Kind::IntrinsicDelay;
  } else {
    throw bad_request("unknown sweep kind '" + kind +
                      "' (want net_element, drive_resistance, "
                      "input_capacitance, or intrinsic_delay)");
  }
  p.name = require_string(params, "name");
  return p;
}

std::vector<double> require_number_array(const json::Value& params,
                                         const char* key) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_array()) {
    throw bad_request(std::string("missing or non-array parameter '") +
                      key + "'");
  }
  std::vector<double> out;
  out.reserve(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    if (!v->at(i).is_number()) {
      throw bad_request(std::string("parameter '") + key +
                        "' must hold only numbers");
    }
    out.push_back(v->at(i).as_number());
  }
  return out;
}

}  // namespace

Request parse_request(std::string_view line) {
  const json::Value doc = json::parse(line);
  if (!doc.is_object()) {
    throw bad_request("request must be a JSON object");
  }
  Request req;
  if (const json::Value* id = doc.find("id")) req.id = *id;
  const json::Value* method = doc.find("method");
  if (method == nullptr) {
    throw bad_request("request has no 'method'");
  }
  if (!method->is_string()) {
    throw bad_request("'method' must be a string");
  }
  req.method = method->as_string();
  if (const json::Value* params = doc.find("params")) {
    if (!params->is_object()) {
      throw bad_request("'params' must be an object");
    }
    req.params = *params;
  }
  const double deadline = number_or(req.params, "deadline_ms", 0.0);
  if (!(deadline >= 0.0) || !std::isfinite(deadline)) {
    throw bad_request("'deadline_ms' must be a finite number >= 0");
  }
  req.deadline_ms = deadline;
  req.stage_budget = index_or(req.params, "stage_budget", 0);
  return req;
}

json::Value diagnostic_to_json(const core::Diagnostic& diag) {
  json::Value v = json::Value::object();
  v.set("code", core::to_string(diag.code));
  v.set("severity", core::to_string(diag.severity));
  v.set("message", diag.message);
  if (!diag.element.empty()) v.set("element", diag.element);
  if (!diag.node.empty()) v.set("node", diag.node);
  if (diag.line > 0) {
    if (!diag.file.empty()) v.set("file", diag.file);
    v.set("line", static_cast<unsigned long long>(diag.line));
    if (diag.column > 0) {
      v.set("column", static_cast<unsigned long long>(diag.column));
    }
  }
  if (diag.condition_estimate >= 0.0) {
    v.set("condition_estimate", diag.condition_estimate);
  }
  return v;
}

json::Value diagnostics_to_json(const core::Diagnostics& diags) {
  json::Value v = json::Value::array();
  for (const core::Diagnostic& d : diags) v.push_back(diagnostic_to_json(d));
  return v;
}

json::Value ok_response(const json::Value& id, std::uint64_t generation,
                        json::Value result) {
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("ok", true);
  v.set("generation", static_cast<unsigned long long>(generation));
  v.set("result", std::move(result));
  return v;
}

json::Value error_response(const json::Value& id,
                           const core::Diagnostic& diag,
                           double retry_after_ms) {
  json::Value err = json::Value::object();
  err.set("code", core::to_string(diag.code));
  err.set("severity", core::to_string(diag.severity));
  err.set("message", diag.message);
  json::Value diags = json::Value::array();
  diags.push_back(diagnostic_to_json(diag));
  err.set("diagnostics", std::move(diags));
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("ok", false);
  v.set("error", std::move(err));
  if (retry_after_ms >= 0.0) v.set("retry_after_ms", retry_after_ms);
  return v;
}

core::Diagnostic invalid_request(std::string message) {
  core::Diagnostic d;
  d.code = core::DiagCode::InvalidRequest;
  d.severity = core::Severity::Error;
  d.message = std::move(message);
  return d;
}

core::Diagnostic server_overloaded(std::string message) {
  core::Diagnostic d;
  d.code = core::DiagCode::ServerOverloaded;
  d.severity = core::Severity::Error;
  d.message = std::move(message);
  return d;
}

json::Value report_to_json(const timing::TimingReport& report,
                           bool include_stages) {
  json::Value v = json::Value::object();
  v.set("worst_slack", report.worst_slack);
  v.set("worst_slack_endpoint", report.worst_slack_endpoint);
  v.set("critical_delay", report.critical_delay);
  json::Value path = json::Value::array();
  for (const std::string& g : report.critical_path) path.push_back(g);
  v.set("critical_path", std::move(path));
  v.set("levels", static_cast<unsigned long long>(report.levels));
  v.set("stage_count",
        static_cast<unsigned long long>(report.stages.size()));
  v.set("degraded_stages",
        static_cast<unsigned long long>(report.degraded_stages));
  v.set("failed_stages",
        static_cast<unsigned long long>(report.failed_stages));
  v.set("diagnostics", diagnostics_to_json(report.diagnostics));
  v.set("stats", stats_to_json(report.awe_stats));
  if (include_stages) {
    json::Value stages = json::Value::array();
    for (const timing::StageTiming& st : report.stages) {
      json::Value s = json::Value::object();
      s.set("driver", st.driver_gate);
      s.set("net", st.net);
      s.set("input_arrival", st.input_arrival);
      s.set("awe_order_used", st.awe_order_used);
      s.set("degraded", st.degraded);
      s.set("failed", st.failed);
      json::Value sinks = json::Value::array();
      for (const timing::SinkTiming& sk : st.sinks) {
        json::Value o = json::Value::object();
        o.set("gate", sk.gate);
        o.set("stage_delay", sk.stage_delay);
        o.set("slew", sk.slew);
        o.set("arrival", sk.arrival);
        sinks.push_back(std::move(o));
      }
      s.set("sinks", std::move(sinks));
      stages.push_back(std::move(s));
    }
    v.set("stages", std::move(stages));
    json::Value arrivals = json::Value::object();
    for (const auto& [gate, t] : report.gate_arrival) arrivals.set(gate, t);
    v.set("gate_arrival", std::move(arrivals));
    json::Value slacks = json::Value::object();
    for (const auto& [gate, s] : report.gate_slack) slacks.set(gate, s);
    v.set("gate_slack", std::move(slacks));
  }
  return v;
}

json::Value paths_to_json(const timing::PathsResult& result) {
  json::Value v = json::Value::object();
  json::Value paths = json::Value::array();
  for (const timing::Path& p : result.paths) {
    json::Value o = json::Value::object();
    o.set("source", p.source);
    o.set("endpoint", p.endpoint);
    o.set("arrival", p.arrival);
    o.set("slack", p.slack);
    o.set("degraded", p.degraded);
    o.set("failed", p.failed);
    json::Value points = json::Value::array();
    for (const timing::PathPoint& pt : p.points) {
      json::Value q = json::Value::object();
      q.set("pin", pt.pin);
      q.set("arrival", pt.arrival);
      q.set("delay", pt.delay);
      if (!pt.net.empty()) q.set("net", pt.net);
      points.push_back(std::move(q));
    }
    o.set("points", std::move(points));
    paths.push_back(std::move(o));
  }
  v.set("paths", std::move(paths));
  v.set("truncated", result.truncated);
  v.set("expansions", static_cast<unsigned long long>(result.expansions));
  return v;
}

json::Value sweep_to_json(const timing::SweepResult& result) {
  json::Value v = json::Value::object();
  v.set("baseline_worst_slack", result.baseline.worst_slack);
  v.set("baseline_critical_delay", result.baseline.critical_delay);
  json::Value points = json::Value::array();
  for (const timing::SweepPoint& p : result.points) {
    json::Value o = json::Value::object();
    o.set("value", p.value);
    o.set("worst_slack", p.worst_slack);
    o.set("slack_delta", p.slack_delta);
    o.set("critical_path_changed", p.critical_path_changed);
    points.push_back(std::move(o));
  }
  v.set("points", std::move(points));
  v.set("stages_reused",
        static_cast<unsigned long long>(result.stages_reused));
  v.set("stages_recomputed",
        static_cast<unsigned long long>(result.stages_recomputed));
  // Solver-path observability summed over all points: how many stage
  // evaluations went through the Sherman-Morrison warm path, and how
  // many refused updates forced a full refactorization.  Both are 0
  // with low_rank=false, so the schema is identical either way.
  unsigned long long lr_points = 0;
  unsigned long long lr_refactorizations = 0;
  for (const timing::SweepPoint& p : result.points) {
    lr_points += p.report.awe_stats.low_rank_points;
    lr_refactorizations += p.report.awe_stats.low_rank_refactorizations;
  }
  v.set("low_rank_points", lr_points);
  v.set("low_rank_refactorizations", lr_refactorizations);
  return v;
}

json::Value lint_to_json(const check::LintReport& report) {
  json::Value v = json::Value::object();
  v.set("ok", report.ok());
  v.set("topology", check::to_string(report.topology));
  v.set("errors", static_cast<unsigned long long>(report.errors));
  v.set("warnings", static_cast<unsigned long long>(report.warnings));
  v.set("diagnostics", diagnostics_to_json(report.diagnostics));
  return v;
}

json::Value cache_stats_to_json(const timing::Session::CacheStats& s) {
  json::Value v = json::Value::object();
  v.set("stage_entries", static_cast<unsigned long long>(s.stage_entries));
  v.set("factorization_entries",
        static_cast<unsigned long long>(s.factorization_entries));
  v.set("lint_entries", static_cast<unsigned long long>(s.lint_entries));
  v.set("hits", u64(s.hits));
  v.set("misses", u64(s.misses));
  v.set("invalidations", u64(s.invalidations));
  v.set("evictions", u64(s.evictions));
  v.set("lint_hits", u64(s.lint_hits));
  v.set("lint_misses", u64(s.lint_misses));
  v.set("reduction_entries",
        static_cast<unsigned long long>(s.reduction_entries));
  v.set("reduction_hits", u64(s.reduction_hits));
  v.set("reduction_misses", u64(s.reduction_misses));
  return v;
}

timing::Design design_from_json(const json::Value& v) {
  if (!v.is_object()) throw bad_request("'design' must be an object");
  const json::Value* gates = v.find("gates");
  if (gates == nullptr || !gates->is_array() || gates->size() == 0) {
    throw bad_request("design needs a non-empty 'gates' array");
  }
  timing::Design design;
  for (std::size_t i = 0; i < gates->size(); ++i) {
    const json::Value& g = gates->at(i);
    if (!g.is_object()) throw bad_request("each gate must be an object");
    timing::Gate gate;
    gate.name = require_string(g, "name");
    timing::Gate defaults;
    gate.drive_resistance =
        number_or(g, "drive_resistance", defaults.drive_resistance);
    gate.input_capacitance =
        number_or(g, "input_capacitance", defaults.input_capacitance);
    gate.intrinsic_delay =
        number_or(g, "intrinsic_delay", defaults.intrinsic_delay);
    design.add_gate(std::move(gate));
  }
  if (const json::Value* nets = v.find("nets")) {
    if (!nets->is_array()) throw bad_request("'nets' must be an array");
    for (std::size_t i = 0; i < nets->size(); ++i) {
      const json::Value& n = nets->at(i);
      if (!n.is_object()) throw bad_request("each net must be an object");
      timing::Net net;
      net.name = require_string(n, "name");
      const std::string driver = require_string(n, "driver");
      if (const json::Value* sinks = n.find("sinks")) {
        if (!sinks->is_object()) {
          throw bad_request("net '" + net.name +
                            "': 'sinks' must be an object of gate -> node");
        }
        for (const auto& [gate, node] : sinks->items()) {
          if (!node.is_string()) {
            throw bad_request("net '" + net.name +
                              "': sink node names must be strings");
          }
          net.sink_node[gate] = node.as_string();
        }
      }
      const json::Value* elements = n.find("elements");
      if (elements == nullptr || !elements->is_array()) {
        throw bad_request("net '" + net.name +
                          "' needs an 'elements' array");
      }
      for (std::size_t e = 0; e < elements->size(); ++e) {
        const json::Value& el = elements->at(e);
        if (!el.is_object()) {
          throw bad_request("net '" + net.name +
                            "': each element must be an object");
        }
        timing::NetElement elem;
        const std::string& kind = require_string(el, "kind");
        if (kind == "R") {
          elem.kind = timing::NetElement::Kind::Resistor;
        } else if (kind == "C") {
          elem.kind = timing::NetElement::Kind::Capacitor;
        } else if (kind == "L") {
          elem.kind = timing::NetElement::Kind::Inductor;
        } else {
          throw bad_request("net '" + net.name + "': element kind '" +
                            kind + "' must be R, C, or L");
        }
        elem.node_a = require_string(el, "a");
        elem.node_b = require_string(el, "b");
        elem.value = require_number(el, "value");
        net.parasitics.push_back(std::move(elem));
      }
      design.add_net(driver, std::move(net));
    }
  }
  if (const json::Value* pis = v.find("primary_inputs")) {
    if (!pis->is_array()) {
      throw bad_request("'primary_inputs' must be an array of gate names");
    }
    for (std::size_t i = 0; i < pis->size(); ++i) {
      if (!pis->at(i).is_string()) {
        throw bad_request("'primary_inputs' must hold only strings");
      }
      design.set_primary_input(pis->at(i).as_string());
    }
  }
  return design;
}

namespace {

/// "chain12" -> ("chain", 12).  Throws on anything else.
std::size_t parse_builtin_size(const std::string& name,
                               std::string_view prefix,
                               std::size_t min_n) {
  std::size_t n = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      throw bad_request("unknown builtin design '" + name + "'");
    }
    n = n * 10 + static_cast<std::size_t>(c - '0');
    if (n > 4096) {
      throw bad_request("builtin design '" + name + "' is too large");
    }
  }
  if (n < min_n) {
    throw bad_request("builtin design '" + name + "' is too small");
  }
  return n;
}

timing::Net rc_net(std::string name, const std::string& sink_gate,
                   double r_ohms, double c_farads) {
  timing::Net net;
  net.name = std::move(name);
  net.parasitics.push_back(
      {timing::NetElement::Kind::Resistor, "DRV", "s", r_ohms});
  net.parasitics.push_back(
      {timing::NetElement::Kind::Capacitor, "s", "0", c_farads});
  net.sink_node[sink_gate] = "s";
  return net;
}

timing::Design chain_design(std::size_t n) {
  timing::Design d;
  for (std::size_t i = 0; i < n; ++i) {
    timing::Gate g;
    g.name = "g" + std::to_string(i);
    g.drive_resistance = 800.0 + 50.0 * static_cast<double>(i % 7);
    g.intrinsic_delay = 10e-12;
    d.add_gate(std::move(g));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    d.add_net("g" + std::to_string(i),
              rc_net("n" + std::to_string(i), "g" + std::to_string(i + 1),
                     400.0 + 25.0 * static_cast<double>(i % 5), 20e-15));
  }
  d.add_net("g" + std::to_string(n - 1),
            rc_net("nout", "out", 250.0, 15e-15));
  d.set_primary_input("g0");
  return d;
}

timing::Design fanout_design(std::size_t n) {
  timing::Design d;
  timing::Gate root;
  root.name = "root";
  root.drive_resistance = 600.0;
  d.add_gate(std::move(root));
  timing::Gate join;
  join.name = "join";
  join.drive_resistance = 900.0;
  join.intrinsic_delay = 15e-12;
  d.add_gate(std::move(join));
  timing::Net fan;
  fan.name = "fan";
  fan.parasitics.push_back(
      {timing::NetElement::Kind::Resistor, "DRV", "t", 200.0});
  for (std::size_t i = 0; i < n; ++i) {
    const std::string leaf = "f" + std::to_string(i);
    const std::string node = "s" + std::to_string(i);
    timing::Gate g;
    g.name = leaf;
    g.drive_resistance = 700.0 + 60.0 * static_cast<double>(i % 4);
    d.add_gate(std::move(g));
    fan.parasitics.push_back(
        {timing::NetElement::Kind::Resistor, "t", node,
         120.0 + 30.0 * static_cast<double>(i)});
    fan.parasitics.push_back(
        {timing::NetElement::Kind::Capacitor, node, "0", 6e-15});
    fan.sink_node[leaf] = node;
  }
  d.add_net("root", std::move(fan));
  for (std::size_t i = 0; i < n; ++i) {
    const std::string leaf = "f" + std::to_string(i);
    d.add_net(leaf, rc_net("m" + std::to_string(i), "join",
                           300.0 + 20.0 * static_cast<double>(i % 3),
                           10e-15));
  }
  d.add_net("join", rc_net("nout", "out", 150.0, 8e-15));
  d.set_primary_input("root");
  return d;
}

}  // namespace

timing::Design builtin_design(const std::string& name) {
  if (name.rfind("chain", 0) == 0) {
    return chain_design(parse_builtin_size(name, "chain", 2));
  }
  if (name.rfind("fanout", 0) == 0) {
    return fanout_design(parse_builtin_size(name, "fanout", 1));
  }
  throw bad_request("unknown builtin design '" + name +
                    "' (want chainN or fanoutN)");
}

json::Value dispatch(timing::SnapshotStore& store, const Request& req,
                     core::CancelToken* cancel,
                     std::uint64_t* generation_out,
                     const std::function<json::Value()>* server_stats) {
  const auto set_generation = [&](std::uint64_t g) {
    if (generation_out != nullptr) *generation_out = g;
  };

  if (req.method == "ping") {
    set_generation(store.current()->generation());
    json::Value r = json::Value::object();
    r.set("pong", true);
    r.set("protocol", kProtocolVersion);
    return r;
  }
  if (req.method == "analyze") {
    const bool full = bool_or(req.params, "full", false);
    const std::shared_ptr<const timing::Snapshot> snap = store.current();
    set_generation(snap->generation());
    return report_to_json(*snap->report(cancel), full);
  }
  if (req.method == "set_value") {
    const std::string& net = require_string(req.params, "net");
    const std::size_t index = static_cast<std::size_t>(
        require_index(req.params, "element_index"));
    const double value = require_number(req.params, "value");
    const std::uint64_t gen = store.mutate(
        [&](timing::Session& s) { s.set_value(net, index, value); });
    set_generation(gen);
    json::Value r = json::Value::object();
    r.set("applied", true);
    return r;
  }
  if (req.method == "set_gate") {
    const std::string& gate = require_string(req.params, "gate");
    const json::Value* rd = req.params.find("drive_resistance");
    const json::Value* ci = req.params.find("input_capacitance");
    const json::Value* di = req.params.find("intrinsic_delay");
    if (rd == nullptr && ci == nullptr && di == nullptr) {
      throw bad_request(
          "set_gate needs at least one of drive_resistance, "
          "input_capacitance, intrinsic_delay");
    }
    const std::uint64_t gen = store.mutate([&](timing::Session& s) {
      if (rd != nullptr) {
        s.set_drive_resistance(gate,
                               require_number(req.params,
                                              "drive_resistance"));
      }
      if (ci != nullptr) {
        s.set_input_capacitance(gate,
                                require_number(req.params,
                                               "input_capacitance"));
      }
      if (di != nullptr) {
        s.set_intrinsic_delay(gate,
                              require_number(req.params,
                                             "intrinsic_delay"));
      }
    });
    set_generation(gen);
    json::Value r = json::Value::object();
    r.set("applied", true);
    return r;
  }
  if (req.method == "sweep") {
    const timing::SweepParam param = sweep_param_from(req.params);
    const std::vector<double> values =
        require_number_array(req.params, "values");
    // Optional solver policy: low_rank=false forces exact
    // refactorization at every point (bit-identical to a cold analyze);
    // the default keeps the Sherman-Morrison warm path on.
    timing::SessionOptions session_options;
    session_options.low_rank = bool_or(req.params, "low_rank",
                                       session_options.low_rank);
    const std::shared_ptr<const timing::Snapshot> snap = store.current();
    set_generation(snap->generation());
    return sweep_to_json(snap->sweep(param, values, session_options, cancel));
  }
  if (req.method == "lint") {
    const std::string& netlist = require_string(req.params, "netlist");
    set_generation(store.current()->generation());
    return lint_to_json(check::lint_text(netlist, "<request>"));
  }
  if (req.method == "audit") {
    // Design-scope static audit of the *current snapshot* (graph rules,
    // conditioning oracle, repetition analysis) -- no mutation, safe to
    // run concurrently with what-if clients.
    audit::AuditOptions audit_options;
    audit_options.graph.fanout_threshold = static_cast<std::size_t>(
        index_or(req.params, "fanout_limit",
                 audit_options.graph.fanout_threshold));
    audit_options.oracle.target_order = static_cast<int>(index_or(
        req.params, "order",
        static_cast<std::size_t>(audit_options.oracle.target_order)));
    audit_options.repetition = bool_or(req.params, "repetition", true);
    const std::shared_ptr<const timing::Snapshot> snap = store.current();
    set_generation(snap->generation());
    json::Value r = json::Value::object();
    r.set("audit_schema_version", audit::kAuditSchemaVersion);
    r.set("report",
          audit::report_to_json(
              "generation-" + std::to_string(snap->generation()),
              audit::audit_design(snap->design(), audit_options)));
    return r;
  }
  if (req.method == "worst_paths") {
    timing::PathQuery query;
    query.k = static_cast<std::size_t>(index_or(req.params, "k", 1));
    if (const json::Value* from = req.params.find("from")) {
      if (!from->is_string()) throw bad_request("'from' must be a string");
      query.from = from->as_string();
    }
    if (const json::Value* to = req.params.find("to")) {
      if (!to->is_string()) throw bad_request("'to' must be a string");
      query.to = to->as_string();
    }
    if (const json::Value* through = req.params.find("through")) {
      if (!through->is_array()) {
        throw bad_request("'through' must be an array of names");
      }
      for (std::size_t i = 0; i < through->size(); ++i) {
        if (!through->at(i).is_string()) {
          throw bad_request("'through' must hold only strings");
        }
        query.through.push_back(through->at(i).as_string());
      }
    }
    query.max_expansions = static_cast<std::size_t>(
        index_or(req.params, "max_expansions", query.max_expansions));
    const std::shared_ptr<const timing::Snapshot> snap = store.current();
    set_generation(snap->generation());
    return paths_to_json(snap->worst_paths(query, cancel));
  }
  if (req.method == "stats") {
    const std::shared_ptr<const timing::Snapshot> snap = store.current();
    set_generation(snap->generation());
    json::Value r = json::Value::object();
    r.set("cache", cache_stats_to_json(store.cache_stats()));
    if (server_stats != nullptr && *server_stats) {
      r.set("server", (*server_stats)());
    }
    return r;
  }
  if (req.method == "load_design") {
    timing::Design design;
    if (const json::Value* builtin = req.params.find("builtin")) {
      if (!builtin->is_string()) {
        throw bad_request("'builtin' must be a string");
      }
      design = builtin_design(builtin->as_string());
    } else if (const json::Value* dj = req.params.find("design")) {
      design = design_from_json(*dj);
    } else {
      throw bad_request("load_design needs 'builtin' or 'design'");
    }
    const std::uint64_t gen = store.reset(std::move(design));
    set_generation(gen);
    json::Value r = json::Value::object();
    r.set("loaded", true);
    return r;
  }
  throw bad_request("unknown method '" + req.method + "'");
}

HandleResult handle_line(timing::SnapshotStore& store, std::string_view line,
                         const HandleOptions& options) {
  HandleResult out;
  json::Value id;  // null until the request parses far enough to know it
  try {
    if (core::fault_at("serve.parse")) {
      core::Diagnostic d;
      d.code = core::DiagCode::InjectedFault;
      d.severity = core::Severity::Error;
      d.message = "injected fault at serve.parse";
      throw core::DiagnosticError(std::move(d));
    }
    Request req = parse_request(line);
    id = req.id;
    if (req.method == "shutdown") {
      out.shutdown = true;
      out.ok = true;
      json::Value r = json::Value::object();
      r.set("stopping", true);
      out.line = ok_response(id, store.current()->generation(),
                             std::move(r))
                     .dump();
      return out;
    }
    if (core::fault_at("serve.dispatch", req.method)) {
      core::Diagnostic d;
      d.code = core::DiagCode::InjectedFault;
      d.severity = core::Severity::Error;
      d.message = "injected fault at serve.dispatch";
      d.element = req.method;
      throw core::DiagnosticError(std::move(d));
    }
    const double deadline_ms = req.deadline_ms > 0.0
                                   ? req.deadline_ms
                                   : options.default_deadline_ms;
    core::CancelToken token;
    core::CancelToken* cancel = nullptr;
    if (deadline_ms > 0.0 || req.stage_budget > 0) {
      if (deadline_ms > 0.0) token.set_deadline_after(deadline_ms * 1e-3);
      if (req.stage_budget > 0) token.set_budget(req.stage_budget);
      cancel = &token;
    }
    std::uint64_t generation = store.current()->generation();
    json::Value result = dispatch(store, req, cancel, &generation,
                                  options.server_stats ? &options.server_stats
                                                       : nullptr);
    out.ok = true;
    out.line = ok_response(id, generation, std::move(result)).dump();
    return out;
  } catch (const json::ParseError& e) {
    core::Diagnostic d = invalid_request(e.what());
    d.code = core::DiagCode::InvalidRequest;
    out.line = error_response(id, d).dump();
    return out;
  } catch (const core::DiagnosticError& e) {
    const core::Diagnostic& d = e.diagnostic();
    const double retry =
        d.code == core::DiagCode::ServerOverloaded ? 50.0 : -1.0;
    out.line = error_response(id, d, retry).dump();
    return out;
  } catch (const std::invalid_argument& e) {
    out.line = error_response(id, invalid_request(e.what())).dump();
    return out;
  } catch (const std::exception& e) {
    core::Diagnostic d;
    d.code = core::DiagCode::InternalError;
    d.severity = core::Severity::Error;
    d.message = e.what();
    out.line = error_response(id, d).dump();
    return out;
  }
}

}  // namespace awesim::serve
