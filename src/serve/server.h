// The `awesim_serve` daemon core: a fault-tolerant, multiplexing
// timing-as-a-service front end over timing::SnapshotStore.
//
// Threading model (all counts bounded, nothing unbounded anywhere):
//
//   accept thread ──> per-connection reader threads (<= max_clients)
//                         │  split bytes into NDJSON lines
//                         ▼
//                  bounded admission queue (<= max_queue)
//                         │
//                         ▼
//                  worker threads (ServeOptions::workers)
//                     parse -> cancel token -> dispatch -> respond
//                     (serve/protocol.h handle_line: never throws)
//
// Robustness pillars, mapped to code:
//   * snapshot isolation  -- workers read through SnapshotStore pins;
//     mutating methods go through SnapshotStore::mutate (copy, edit,
//     publish-or-nothing).  A reader mid-request keeps its generation.
//   * deadlines/budgets   -- per-request deadline_ms / stage_budget
//     become a CancelToken; a tripped token is a structured
//     deadline-exceeded / budget-exceeded response, never a killed
//     worker.  default_deadline_ms is the daemon-side safety net.
//   * overload shedding   -- a full admission queue or a client over its
//     in-flight limit gets an immediate server-overloaded response with
//     a retry_after_ms hint; the daemon never queues unboundedly.  A
//     connection beyond max_clients is refused with the same structured
//     response.  Idle clients are disconnected after idle_timeout_s
//     (SO_RCVTIMEO), so stuck sockets cannot pin reader threads.
//   * fault surfacing     -- serve.accept / serve.parse / serve.dispatch
//     probes (core/fault.h) plus every engine/timing/cache probe
//     downstream surface as well-formed JSON error responses while the
//     daemon keeps serving (tests/test_serve_daemon.cpp fault matrix).
//
// The listener is either a Unix-domain socket (unix_path) or a loopback
// TCP socket (tcp_port; 0 picks an ephemeral port, for tests).  One
// response line per request line, in completion order -- clients that
// pipeline requests match responses by id.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"
#include "timing/analyzer.h"
#include "timing/snapshot.h"

namespace awesim::serve {

struct ServeOptions {
  /// Unix-domain socket path; when non-empty it wins over tcp_port.  A
  /// stale file at the path is unlinked before bind.
  std::string unix_path;
  /// Loopback TCP port (127.0.0.1); 0 binds an ephemeral port, -1
  /// disables TCP.  Ignored when unix_path is set.
  int tcp_port = -1;

  /// Dispatcher worker threads.
  int workers = 2;
  /// Admission queue capacity; requests beyond it are shed.
  std::size_t max_queue = 64;
  /// Concurrent client connections; further connects are refused with a
  /// structured server-overloaded response.
  std::size_t max_clients = 32;
  /// Per-client in-flight request limit (pipelining cap).
  std::size_t max_inflight_per_client = 8;
  /// Longest accepted request line, bytes; longer closes the client.
  std::size_t max_request_bytes = 1 << 20;
  /// Reader receive timeout: a client sending nothing for this long is
  /// disconnected (stuck/idle client defense).  <= 0 disables.
  double idle_timeout_s = 30.0;
  /// Applied to requests that carry no deadline_ms (0 = none).
  double default_deadline_ms = 0.0;
  /// Hint returned with shed responses.
  double retry_after_ms = 50.0;
};

/// Monotonic daemon counters (a snapshot; the live ones are atomic).
struct ServeCounters {
  std::uint64_t accepted = 0;        // connections admitted
  std::uint64_t refused = 0;         // connections over max_clients
  std::uint64_t requests = 0;        // lines admitted to the queue
  std::uint64_t responses_ok = 0;    // ok:true responses written
  std::uint64_t responses_error = 0; // ok:false responses written
  std::uint64_t shed_queue = 0;      // shed: admission queue full
  std::uint64_t shed_inflight = 0;   // shed: client over in-flight cap
  std::uint64_t oversize = 0;        // lines over max_request_bytes
  std::uint64_t idle_closed = 0;     // connections reaped by idle timeout
  std::uint64_t accept_faults = 0;   // serve.accept probe firings
  std::uint64_t write_failures = 0;  // response writes that failed
};

class Server {
 public:
  Server(timing::Design design, timing::AnalysisOptions analysis,
         ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spin up the accept/worker threads.  Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Block until a client's shutdown request (or stop()).
  void wait();

  /// Graceful stop: refuse new connections, wake every reader, drop the
  /// queued remainder, join all threads.  Idempotent.
  void stop();

  /// Actual bound TCP port (ephemeral binds resolve here); -1 for Unix
  /// listeners.
  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  timing::SnapshotStore& store() { return store_; }
  ServeCounters counters() const;

  /// The "server" object of `stats` responses: counters plus live
  /// queue depth and open-client count.
  obs::json::Value stats_json() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t client = 0;
    std::thread reader;
    std::mutex write_mutex;
    std::atomic<std::size_t> inflight{0};
    std::atomic<bool> done{false};
  };

  struct Task {
    std::shared_ptr<Connection> conn;
    std::string line;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  void reap_finished_locked();
  bool write_line(Connection& conn, const std::string& line);
  void refuse_connection(int fd, const char* why);

  timing::SnapshotStore store_;
  ServeOptions options_;

  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::uint64_t next_client_ = 0;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;

  struct AtomicCounters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> responses_ok{0};
    std::atomic<std::uint64_t> responses_error{0};
    std::atomic<std::uint64_t> shed_queue{0};
    std::atomic<std::uint64_t> shed_inflight{0};
    std::atomic<std::uint64_t> oversize{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> accept_faults{0};
    std::atomic<std::uint64_t> write_failures{0};
  };
  AtomicCounters counters_;
};

}  // namespace awesim::serve
