// The explicit timing graph: the "other half" of a static timing engine.
//
// The levelized wavefront in timing/analyzer.cpp answers the *forward*
// question -- when does every pin switch -- but a real STA engine also
// answers the backward one (how late could it have switched: required
// arrival time) and their difference (slack), and it can enumerate the
// paths behind those numbers.  TimingGraph is the explicit pin-level DAG
// those queries run on:
//
//   nodes: one GateInput and one GateOutput pin per gate, plus one Port
//          node per design-output sink name;
//   arcs:  a Gate arc  <g>:in -> <g>:out   (delay 0 -- the stage model
//          folds the driver's intrinsic delay into its net delays, and
//          the graph preserves that arithmetic exactly), and
//          a Net arc   <drv>:out -> <sink>:in  per stage sink, carrying
//          that sink's stage delay, slew, and the stage's
//          degraded/failed flags (a degraded stage taints every path
//          through it -- see paths.h).
//
// The graph is built from a finished TimingReport, then *re-propagates*
// arrival times from the arc delays -- it does not copy the wavefront's
// arrival map.  That makes equality with the legacy analyzer a real
// differential check, which tests/test_graph_sta.cpp performs bitwise:
// max() over a fixed operand set is order-independent at the bit level,
// and every sum is the same `arrival(from) + delay` the wavefront
// computed, so the graph's arrival at each gate input equals
// TimingReport::gate_arrival exactly, at every thread count.
//
// Backward pass: endpoints (nodes with no outgoing arc -- ports and the
// output pins of sink-less gates) get required = required_time, or the
// latest endpoint arrival when required_time is NaN (floating mode:
// worst slack 0, slacks rank criticality).  Interior nodes take
// required = min over outgoing arcs of (required(to) - delay); slack is
// required - arrival per node and required(to) - delay - arrival(from)
// per arc.  Everything is deterministic: nodes sort by name, arcs
// follow report-stage order.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "timing/analyzer.h"

namespace awesim::timing {

enum class PinKind { GateInput, GateOutput, Port };
enum class ArcKind { Gate, Net };

struct TimingNode {
  /// Pin name: "<gate>:in", "<gate>:out", or "<port>" for design outputs.
  std::string name;
  /// The gate (or port) this pin belongs to -- the name path queries use.
  std::string owner;
  PinKind kind = PinKind::GateInput;

  double arrival = 0.0;
  double required = std::numeric_limits<double>::infinity();
  double slack = std::numeric_limits<double>::infinity();

  /// Longest-path depth from a source (levelization of the pin DAG).
  std::size_t level = 0;

  /// Arc indices into TimingGraph::arcs().
  std::vector<std::size_t> fanin;
  std::vector<std::size_t> fanout;

  bool is_source = false;    // pinned to arrival 0
  bool is_endpoint = false;  // no fanout: slack is measured here
};

struct TimingArc {
  std::size_t from = 0;
  std::size_t to = 0;
  ArcKind kind = ArcKind::Gate;
  /// Net name for Net arcs; empty for Gate arcs.
  std::string net;
  double delay = 0.0;
  double slew = 0.0;  // slew at `to` (Net arcs only)
  double slack = std::numeric_limits<double>::infinity();
  /// Promoted from the owning StageTiming: a stage answered below full
  /// quality (or from the failure fallback) taints this arc, and
  /// paths.h taints every path using it.
  bool degraded = false;
  bool failed = false;
};

struct GraphOptions {
  /// Required arrival time at every endpoint; NaN floats it to the
  /// latest endpoint arrival (worst slack exactly 0).
  double required_time = std::numeric_limits<double>::quiet_NaN();
};

class TimingGraph {
 public:
  /// Build the pin DAG from a finished report and run both propagation
  /// passes.  Throws std::invalid_argument if the report's stages name a
  /// driver absent from gate_arrival (a malformed report).
  static TimingGraph build(const TimingReport& report,
                           const GraphOptions& options = {});

  const std::vector<TimingNode>& nodes() const { return nodes_; }
  const std::vector<TimingArc>& arcs() const { return arcs_; }

  /// Node index by pin name; npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const std::string& pin_name) const;

  /// Arrival / slack at a gate's input pin (the values the legacy
  /// analyzer reports per gate).  Throws std::invalid_argument for an
  /// unknown gate.
  double arrival_at(const std::string& gate) const;
  double slack_at(const std::string& gate) const;

  /// Minimum slack over all endpoints and the endpoint node holding it
  /// (ties break toward the lexicographically smallest pin name).
  double worst_slack() const { return worst_slack_; }
  const std::string& worst_endpoint() const { return worst_endpoint_; }

  /// The latest endpoint arrival -- the graph's critical delay.
  double max_arrival() const { return max_arrival_; }

  /// Endpoint node indices, in node order (name-sorted).
  const std::vector<std::size_t>& endpoints() const { return endpoints_; }
  /// Source node indices (arrival pinned to 0), in node order.
  const std::vector<std::size_t>& sources() const { return sources_; }

  /// Nodes in topological (level, then index) order -- the order both
  /// propagation passes walk; exposed for the path enumerator.
  const std::vector<std::size_t>& topological_order() const {
    return topo_;
  }

 private:
  std::size_t intern_node(const std::string& name, const std::string& owner,
                          PinKind kind);
  void propagate_arrivals();
  void propagate_required(const GraphOptions& options);

  std::vector<TimingNode> nodes_;
  std::vector<TimingArc> arcs_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::size_t> sources_;
  std::vector<std::size_t> endpoints_;
  std::vector<std::size_t> topo_;
  double worst_slack_ = 0.0;
  double max_arrival_ = 0.0;
  std::string worst_endpoint_;
};

}  // namespace awesim::timing
