#include "timing/stage_cache.h"

#include <cstring>
#include <utility>

#include "core/fault.h"
#include "obs/trace.h"

namespace awesim::timing::detail {

KeyBuilder& KeyBuilder::integer(std::uint64_t v) {
  // One bulk append instead of 8 push_backs: key serialization is the
  // dominant cost of a warm cache lookup on kilo-element nets.  The
  // byte order stays explicitly little-endian so keys are identical to
  // what the per-byte loop produced.
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  bytes_.append(buf, sizeof buf);
  return *this;
}

KeyBuilder& KeyBuilder::number(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return integer(bits);
}

KeyBuilder& KeyBuilder::text(std::string_view s) {
  integer(s.size());
  bytes_.append(s.data(), s.size());
  return *this;
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t stage_checksum(const StageTiming& timing) {
  KeyBuilder kb;
  kb.tag('T')
      .text(timing.driver_gate)
      .text(timing.net)
      .number(timing.input_arrival)
      .integer(static_cast<std::uint64_t>(timing.awe_order_used))
      .tag(timing.degraded ? 'd' : '-')
      .tag(timing.failed ? 'f' : '-');
  kb.tag('s').integer(timing.sinks.size());
  for (const auto& s : timing.sinks) {
    kb.text(s.gate).number(s.stage_delay).number(s.slew).number(s.arrival);
  }
  kb.tag('g').integer(timing.diagnostics.size());
  for (const auto& d : timing.diagnostics) {
    kb.integer(static_cast<std::uint64_t>(d.code))
        .integer(static_cast<std::uint64_t>(d.severity))
        .text(d.message)
        .text(d.element)
        .text(d.node);
  }
  return fnv1a(kb.bytes());
}

namespace {

void append_content_key(KeyBuilder& kb, const Gate& driver, const Net& net,
                        const std::map<std::string, Gate>& gates) {
  // ~40 bytes per parasitic (tag + two length-prefixed node names +
  // value) plus sink records and the fixed sections.
  kb.reserve(kb.bytes().size() + 48 * net.parasitics.size() +
             64 * net.sink_node.size() + 128);
  kb.tag('A').number(driver.drive_resistance);
  kb.tag('P').integer(net.parasitics.size());
  for (const auto& e : net.parasitics) {
    char kind = '?';
    switch (e.kind) {
      case NetElement::Kind::Resistor: kind = 'R'; break;
      case NetElement::Kind::Capacitor: kind = 'C'; break;
      case NetElement::Kind::Inductor: kind = 'L'; break;
    }
    kb.tag(kind).text(e.node_a).text(e.node_b).number(e.value);
  }
  // Boundary-block macromodels of reduced nets: every stamp entry is
  // content (two macros differing in one double are different circuits).
  kb.tag('M').integer(net.macros.size());
  for (const auto& m : net.macros) {
    kb.integer(m.ports.size()).integer(m.states);
    for (const auto& port : m.ports) kb.text(port);
    for (const double v : m.g) kb.number(v);
    for (const double v : m.c) kb.number(v);
    kb.number(m.sum_resistance).number(m.sum_capacitance);
  }
  // net.sink_node is a std::map: sinks serialize name-sorted, matching
  // the order build_stage walks them.  A sink's input cap enters the key
  // as the value actually stamped (0 when no capacitor is added).
  kb.tag('S').integer(net.sink_node.size());
  for (const auto& [sink, node] : net.sink_node) {
    const auto it = gates.find(sink);
    const double cin =
        (it != gates.end() && it->second.input_capacitance > 0.0)
            ? it->second.input_capacitance
            : 0.0;
    kb.text(sink).text(node).number(cin);
  }
}

}  // namespace

std::string stage_content_key(const Gate& driver, const Net& net,
                              const std::map<std::string, Gate>& gates) {
  KeyBuilder kb;
  append_content_key(kb, driver, net, gates);
  return kb.take();
}

std::string stage_result_key(const Gate& driver, const Net& net,
                             const std::map<std::string, Gate>& gates,
                             const AnalysisOptions& options, double in_slew) {
  KeyBuilder kb;
  append_content_key(kb, driver, net, gates);
  kb.tag('B')
      .text(driver.name)
      .text(net.name)
      .number(driver.intrinsic_delay)
      .number(options.swing)
      .number(options.delay_threshold_fraction)
      .number(options.slew_low_fraction)
      .number(options.slew_high_fraction)
      .integer(static_cast<std::uint64_t>(options.order))
      .number(in_slew)
      // The pre-flight toggle changes what a lint-rejected stage answers
      // with (raw evaluation vs the Elmore fallback), so a result cached
      // under one setting must not serve the other.
      .tag(options.preflight_lint ? 'l' : '-')
      // Different delay models give different numbers for the same
      // stage; one Session serves interleaved queries under several
      // models, so the kind must split the key space.
      .integer(static_cast<std::uint64_t>(options.delay_model));
  return kb.take();
}

std::string low_rank_result_key(
    const std::string& result_key, const std::string& donor_key,
    const std::vector<std::pair<std::string, double>>& deltas) {
  KeyBuilder kb;
  kb.reserve(result_key.size() + donor_key.size() + 32 * deltas.size() + 32);
  // Exact result keys always open with the content section's 'A' tag;
  // opening with '\x01' makes the two key spaces disjoint byte one.
  kb.tag('\x01').tag('L');
  kb.text(result_key);
  kb.text(donor_key);
  kb.integer(deltas.size());
  for (const auto& [element, base] : deltas) {
    kb.text(element).number(base);
  }
  return kb.take();
}

std::uint64_t reduction_checksum(const CachedReduction& reduction) {
  KeyBuilder kb;
  kb.tag('R')
      .tag(reduction.reduced ? 'r' : '-')
      .integer(reduction.interior_eliminated);
  kb.tag('P').integer(reduction.parasitics.size());
  for (const auto& e : reduction.parasitics) {
    kb.integer(static_cast<std::uint64_t>(e.kind))
        .text(e.node_a)
        .text(e.node_b)
        .number(e.value);
  }
  kb.tag('M').integer(reduction.macros.size());
  for (const auto& m : reduction.macros) {
    kb.integer(m.ports.size()).integer(m.states);
    for (const auto& port : m.ports) kb.text(port);
    for (const double v : m.g) kb.number(v);
    for (const double v : m.c) kb.number(v);
    kb.number(m.sum_resistance).number(m.sum_capacitance);
  }
  kb.tag('g').integer(reduction.diagnostics.size());
  for (const auto& d : reduction.diagnostics) {
    kb.integer(static_cast<std::uint64_t>(d.code))
        .integer(static_cast<std::uint64_t>(d.severity))
        .text(d.message)
        .text(d.element)
        .text(d.node);
  }
  return fnv1a(kb.bytes());
}

std::string reduction_key(std::string_view content) {
  KeyBuilder kb;
  kb.reserve(content.size() + 16);
  kb.tag('\x01').tag('R');
  kb.text(content);
  return kb.take();
}

std::optional<StageTiming> StageCache::lookup_stage(
    const std::string& key, const std::string& net_name,
    core::Diagnostics* diags) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stages_.find(key);
  if (it == stages_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  const bool corrupt = core::fault_at("session.cache", net_name) ||
                       stage_checksum(it->second.timing) !=
                           it->second.checksum;
  if (corrupt) {
    AWESIM_TRACE_SPAN("session.invalidate");
    stages_.erase(it);
    ++counters_.invalidations;
    ++counters_.misses;
    if (diags != nullptr) {
      core::Diagnostic d;
      d.code = core::DiagCode::CacheInvalidated;
      d.severity = core::Severity::Warning;
      d.message =
          "session stage-cache entry failed verification; dropped and "
          "recomputed";
      d.element = net_name;
      diags->push_back(std::move(d));
    }
    return std::nullopt;
  }
  AWESIM_TRACE_SPAN("session.reuse");
  ++counters_.hits;
  return it->second.timing;
}

void StageCache::insert_stage(const std::string& key, StageTiming relative) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stages_.count(key) > 0) return;
  StageEntry entry;
  entry.checksum = stage_checksum(relative);
  entry.timing = std::move(relative);
  entry.sequence = next_sequence_++;
  stage_order_.emplace_back(entry.sequence, key);
  stages_.emplace(key, std::move(entry));
  evict_stages_locked();
}

std::shared_ptr<const CachedFactorization> StageCache::lookup_factorization(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = factors_.find(key);
  if (it == factors_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  return it->second.factor;
}

void StageCache::insert_factorization(const std::string& key,
                                      CachedFactorization factor) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (factors_.count(key) > 0) return;
  FactorEntry entry;
  entry.factor =
      std::make_shared<const CachedFactorization>(std::move(factor));
  entry.sequence = next_sequence_++;
  factor_order_.emplace_back(entry.sequence, key);
  factors_.emplace(key, std::move(entry));
  evict_factors_locked();
}

std::shared_ptr<const check::LintReport> StageCache::lookup_lint(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = lints_.find(key);
  if (it == lints_.end()) {
    ++counters_.lint_misses;
    return nullptr;
  }
  ++counters_.lint_hits;
  return it->second.report;
}

void StageCache::insert_lint(const std::string& key,
                             std::shared_ptr<const check::LintReport> report) {
  if (report == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (lints_.count(key) > 0) return;
  LintEntry entry;
  entry.report = std::move(report);
  entry.sequence = next_sequence_++;
  lint_order_.emplace_back(entry.sequence, key);
  lints_.emplace(key, std::move(entry));
  evict_lints_locked();
}

std::shared_ptr<const CachedReduction> StageCache::lookup_reduction(
    const std::string& key, const std::string& net_name,
    core::Diagnostics* diags) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = reductions_.find(key);
  if (it == reductions_.end()) {
    ++counters_.reduction_misses;
    return nullptr;
  }
  const bool corrupt = core::fault_at("reduce.cache", net_name) ||
                       reduction_checksum(*it->second.reduction) !=
                           it->second.checksum;
  if (corrupt) {
    AWESIM_TRACE_SPAN("session.invalidate");
    reductions_.erase(it);
    ++counters_.invalidations;
    ++counters_.reduction_misses;
    if (diags != nullptr) {
      core::Diagnostic d;
      d.code = core::DiagCode::CacheInvalidated;
      d.severity = core::Severity::Warning;
      d.message =
          "cached net reduction failed verification; dropped and "
          "re-reduced";
      d.element = net_name;
      diags->push_back(std::move(d));
    }
    return nullptr;
  }
  ++counters_.reduction_hits;
  return it->second.reduction;
}

void StageCache::insert_reduction(const std::string& key,
                                  CachedReduction reduction) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (reductions_.count(key) > 0) return;
  ReductionEntry entry;
  entry.checksum = reduction_checksum(reduction);
  entry.reduction =
      std::make_shared<const CachedReduction>(std::move(reduction));
  entry.sequence = next_sequence_++;
  reduction_order_.emplace_back(entry.sequence, key);
  reductions_.emplace(key, std::move(entry));
  evict_reductions_locked();
}

void StageCache::evict_stages_locked() {
  while (stages_.size() > limits_.max_stage_entries &&
         !stage_order_.empty()) {
    const auto [seq, key] = stage_order_.front();
    stage_order_.pop_front();
    const auto it = stages_.find(key);
    if (it == stages_.end() || it->second.sequence != seq) continue;
    AWESIM_TRACE_SPAN("session.invalidate");
    stages_.erase(it);
    ++counters_.evictions;
  }
}

void StageCache::evict_factors_locked() {
  while (factors_.size() > limits_.max_factorizations &&
         !factor_order_.empty()) {
    const auto [seq, key] = factor_order_.front();
    factor_order_.pop_front();
    const auto it = factors_.find(key);
    if (it == factors_.end() || it->second.sequence != seq) continue;
    AWESIM_TRACE_SPAN("session.invalidate");
    factors_.erase(it);
    ++counters_.evictions;
  }
}

void StageCache::evict_lints_locked() {
  while (lints_.size() > limits_.max_lint_entries && !lint_order_.empty()) {
    const auto [seq, key] = lint_order_.front();
    lint_order_.pop_front();
    const auto it = lints_.find(key);
    if (it == lints_.end() || it->second.sequence != seq) continue;
    lints_.erase(it);
    ++counters_.evictions;
  }
}

void StageCache::evict_reductions_locked() {
  while (reductions_.size() > limits_.max_reduction_entries &&
         !reduction_order_.empty()) {
    const auto [seq, key] = reduction_order_.front();
    reduction_order_.pop_front();
    const auto it = reductions_.find(key);
    if (it == reductions_.end() || it->second.sequence != seq) continue;
    reductions_.erase(it);
    ++counters_.evictions;
  }
}

StageCache::Counters StageCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::size_t StageCache::stage_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_.size();
}

std::size_t StageCache::factorization_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factors_.size();
}

std::size_t StageCache::lint_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lints_.size();
}

std::size_t StageCache::reduction_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reductions_.size();
}

void StageCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
  factors_.clear();
  lints_.clear();
  reductions_.clear();
  stage_order_.clear();
  factor_order_.clear();
  lint_order_.clear();
  reduction_order_.clear();
  counters_ = {};
  next_sequence_ = 0;
}

}  // namespace awesim::timing::detail
