#include "timing/session.h"

#include <stdexcept>
#include <utility>

#include "timing/stage_cache.h"

namespace awesim::timing {

Session::Session(Design design, AnalysisOptions options)
    : Session(std::move(design), options, nullptr) {}

Session::Session(Design design, AnalysisOptions options,
                 std::shared_ptr<detail::StageCache> cache)
    : design_(std::move(design)),
      options_(options),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<detail::StageCache>()) {}

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

TimingReport Session::analyze() {
  return detail::analyze_design(design_, options_, cache_.get());
}

TimingReport Session::analyze(const AnalysisOptions& options) {
  options_ = options;
  return analyze();
}

Net& Session::net_ref(const std::string& net) {
  Net* found = nullptr;
  for (auto& ni : design_.nets_) {
    if (ni.net.name == net) {
      if (found != nullptr) {
        throw std::invalid_argument("Session: net name '" + net +
                                    "' is ambiguous");
      }
      found = &ni.net;
    }
  }
  if (found == nullptr) {
    throw std::invalid_argument("Session: unknown net '" + net + "'");
  }
  return *found;
}

Gate& Session::gate_ref(const std::string& gate) {
  const auto it = design_.gates_.find(gate);
  if (it == design_.gates_.end()) {
    throw std::invalid_argument("Session: unknown gate '" + gate + "'");
  }
  return it->second;
}

void Session::set_value(const std::string& net, std::size_t element_index,
                        double value) {
  Net& n = net_ref(net);
  if (element_index >= n.parasitics.size()) {
    throw std::invalid_argument(
        "Session: element index " + std::to_string(element_index) +
        " out of range for net '" + net + "'");
  }
  n.parasitics[element_index].value = value;
}

void Session::add_element(const std::string& net, NetElement element) {
  net_ref(net).parasitics.push_back(std::move(element));
}

void Session::remove_element(const std::string& net,
                             std::size_t element_index) {
  Net& n = net_ref(net);
  if (element_index >= n.parasitics.size()) {
    throw std::invalid_argument(
        "Session: element index " + std::to_string(element_index) +
        " out of range for net '" + net + "'");
  }
  n.parasitics.erase(n.parasitics.begin() +
                     static_cast<std::ptrdiff_t>(element_index));
}

void Session::set_drive_resistance(const std::string& gate, double value) {
  gate_ref(gate).drive_resistance = value;
}

void Session::set_input_capacitance(const std::string& gate, double value) {
  gate_ref(gate).input_capacitance = value;
}

void Session::set_intrinsic_delay(const std::string& gate, double value) {
  gate_ref(gate).intrinsic_delay = value;
}

double Session::current_value(const SweepParam& param) {
  switch (param.kind) {
    case SweepParam::Kind::NetElementValue: {
      Net& n = net_ref(param.name);
      if (param.element_index >= n.parasitics.size()) {
        throw std::invalid_argument(
            "Session: element index " + std::to_string(param.element_index) +
            " out of range for net '" + param.name + "'");
      }
      return n.parasitics[param.element_index].value;
    }
    case SweepParam::Kind::DriveResistance:
      return gate_ref(param.name).drive_resistance;
    case SweepParam::Kind::InputCapacitance:
      return gate_ref(param.name).input_capacitance;
    case SweepParam::Kind::IntrinsicDelay:
      return gate_ref(param.name).intrinsic_delay;
  }
  throw std::invalid_argument("Session: unknown sweep parameter kind");
}

void Session::apply_value(const SweepParam& param, double value) {
  switch (param.kind) {
    case SweepParam::Kind::NetElementValue:
      set_value(param.name, param.element_index, value);
      return;
    case SweepParam::Kind::DriveResistance:
      set_drive_resistance(param.name, value);
      return;
    case SweepParam::Kind::InputCapacitance:
      set_input_capacitance(param.name, value);
      return;
    case SweepParam::Kind::IntrinsicDelay:
      set_intrinsic_delay(param.name, value);
      return;
  }
  throw std::invalid_argument("Session: unknown sweep parameter kind");
}

SweepResult Session::sweep(const SweepParam& param,
                           const std::vector<double>& values) {
  // Reads (and validates) the parameter up front so the sweep can put
  // the design back exactly as it found it, even on a throwing point.
  const double original = current_value(param);
  SweepResult result;
  // The baseline is the design as it stands -- warm when the session
  // analyzed before, and every point's slack delta / critical-path
  // change is measured against it.
  result.baseline = analyze();
  result.points.reserve(values.size());
  try {
    for (const double v : values) {
      apply_value(param, v);
      SweepPoint point;
      point.value = v;
      point.report = analyze();
      point.worst_slack = point.report.worst_slack;
      point.slack_delta =
          point.report.worst_slack - result.baseline.worst_slack;
      point.critical_path_changed =
          point.report.critical_path != result.baseline.critical_path;
      result.stages_reused += point.report.awe_stats.stages_reused;
      result.stages_recomputed += point.report.awe_stats.stages_recomputed;
      result.points.push_back(std::move(point));
    }
  } catch (...) {
    apply_value(param, original);
    throw;
  }
  apply_value(param, original);
  return result;
}

TimingGraph Session::graph() {
  GraphOptions gopt;
  gopt.required_time = options_.required_time;
  return TimingGraph::build(analyze(), gopt);
}

TimingGraph Session::graph(double required_time) {
  GraphOptions gopt;
  gopt.required_time = required_time;
  return TimingGraph::build(analyze(), gopt);
}

PathsResult Session::worst_paths(const PathQuery& query) {
  return k_worst_paths(graph(), query);
}

double Session::worst_slack() { return analyze().worst_slack; }

Session::CacheStats Session::cache_stats() const {
  const detail::StageCache::Counters c = cache_->counters();
  CacheStats stats;
  stats.stage_entries = cache_->stage_entries();
  stats.factorization_entries = cache_->factorization_entries();
  stats.lint_entries = cache_->lint_entries();
  stats.hits = c.hits;
  stats.misses = c.misses;
  stats.invalidations = c.invalidations;
  stats.evictions = c.evictions;
  stats.lint_hits = c.lint_hits;
  stats.lint_misses = c.lint_misses;
  return stats;
}

void Session::clear_cache() { cache_->clear(); }

}  // namespace awesim::timing
