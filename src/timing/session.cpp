#include "timing/session.h"

#include <stdexcept>
#include <utility>

#include "timing/stage_cache.h"

namespace awesim::timing {

Session::Session(Design design, AnalysisOptions options)
    : Session(std::move(design), options, SessionOptions(), nullptr) {}

Session::Session(Design design, AnalysisOptions options,
                 std::shared_ptr<detail::StageCache> cache)
    : Session(std::move(design), options, SessionOptions(),
              std::move(cache)) {}

Session::Session(Design design, AnalysisOptions options,
                 SessionOptions session_options,
                 std::shared_ptr<detail::StageCache> cache)
    : design_(std::move(design)),
      options_(options),
      session_options_(session_options),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<detail::StageCache>()),
      stage_hints_(design_.nets_.size()) {}

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

TimingReport Session::analyze() {
  detail::SessionHints hints;
  hints.low_rank = session_options_.low_rank;
  hints.low_rank_options = session_options_.low_rank_options;
  hints.min_stage_elements = session_options_.min_stage_elements;
  hints.stages = &stage_hints_;
  return detail::analyze_design(design_, options_, cache_.get(), &hints);
}

TimingReport Session::analyze(const AnalysisOptions& options) {
  // Memoized key bytes encode the old options; the delta journals only
  // describe circuit content and stay valid across the rebind.
  invalidate_all_keys();
  options_ = options;
  return analyze();
}

Net& Session::net_ref(const std::string& net) {
  return design_.nets_[net_index(net)].net;
}

std::size_t Session::net_index(const std::string& net) {
  std::size_t found = design_.nets_.size();
  for (std::size_t i = 0; i < design_.nets_.size(); ++i) {
    if (design_.nets_[i].net.name == net) {
      if (found != design_.nets_.size()) {
        throw std::invalid_argument("Session: net name '" + net +
                                    "' is ambiguous");
      }
      found = i;
    }
  }
  if (found == design_.nets_.size()) {
    throw std::invalid_argument("Session: unknown net '" + net + "'");
  }
  return found;
}

Gate& Session::gate_ref(const std::string& gate) {
  const auto it = design_.gates_.find(gate);
  if (it == design_.gates_.end()) {
    throw std::invalid_argument("Session: unknown gate '" + gate + "'");
  }
  return it->second;
}

detail::StageHint& Session::hint_at(std::size_t net_idx) {
  if (stage_hints_.size() < design_.nets_.size()) {
    stage_hints_.resize(design_.nets_.size());
  }
  return stage_hints_[net_idx];
}

void Session::invalidate_keys(std::size_t net_idx) {
  hint_at(net_idx).keys_valid = false;
}

void Session::journal_delta(std::size_t net_idx, const std::string& element,
                            double donor_value) {
  detail::StageHint& hint = hint_at(net_idx);
  // No donor factorization on record -- nothing to express a delta
  // against; the next exact evaluation establishes one.
  if (!hint.donor_valid) return;
  for (const auto& [name, value] : hint.deltas) {
    // First touch wins: the journal keeps the element's value at donor
    // time, and later edits only change where the delta lands.
    if (name == element) return;
  }
  hint.deltas.emplace_back(element, donor_value);
}

void Session::reset_journal(std::size_t net_idx) {
  detail::StageHint& hint = hint_at(net_idx);
  hint.donor_valid = false;
  hint.donor_key.clear();
  hint.deltas.clear();
}

void Session::invalidate_all_keys() {
  for (detail::StageHint& hint : stage_hints_) {
    hint.keys_valid = false;
  }
}

void Session::set_value(const std::string& net, std::size_t element_index,
                        double value) {
  const std::size_t idx = net_index(net);
  Net& n = design_.nets_[idx].net;
  if (element_index >= n.parasitics.size()) {
    throw std::invalid_argument(
        "Session: element index " + std::to_string(element_index) +
        " out of range for net '" + net + "'");
  }
  // "__p<i>" is the element name build_stage assigns to the net's i-th
  // parasitic -- the handle MnaSystem::apply_delta resolves.
  journal_delta(idx, "__p" + std::to_string(element_index),
                n.parasitics[element_index].value);
  invalidate_keys(idx);
  n.parasitics[element_index].value = value;
}

void Session::add_element(const std::string& net, NetElement element) {
  const std::size_t idx = net_index(net);
  // A new element shifts "__p<i>" names and changes the matrix topology;
  // that is not a value delta, so the donor is gone.
  reset_journal(idx);
  invalidate_keys(idx);
  design_.nets_[idx].net.parasitics.push_back(std::move(element));
}

void Session::remove_element(const std::string& net,
                             std::size_t element_index) {
  const std::size_t idx = net_index(net);
  Net& n = design_.nets_[idx].net;
  if (element_index >= n.parasitics.size()) {
    throw std::invalid_argument(
        "Session: element index " + std::to_string(element_index) +
        " out of range for net '" + net + "'");
  }
  reset_journal(idx);
  invalidate_keys(idx);
  n.parasitics.erase(n.parasitics.begin() +
                     static_cast<std::ptrdiff_t>(element_index));
}

void Session::set_drive_resistance(const std::string& gate, double value) {
  Gate& g = gate_ref(gate);
  for (std::size_t i = 0; i < design_.nets_.size(); ++i) {
    if (design_.nets_[i].driver == gate) {
      journal_delta(i, "__Rdrv", g.drive_resistance);
      invalidate_keys(i);
    }
  }
  g.drive_resistance = value;
}

void Session::set_input_capacitance(const std::string& gate, double value) {
  Gate& g = gate_ref(gate);
  for (std::size_t i = 0; i < design_.nets_.size(); ++i) {
    if (design_.nets_[i].net.sink_node.count(gate) > 0) {
      // Input caps only touch the C matrix, so the delta is rank zero
      // and the donor G solver stays exact; when the cap appears or
      // disappears entirely (0 <-> nonzero), apply_delta fails to
      // resolve the element and the stage refactorizes -- still exact.
      journal_delta(i, "__cin_" + gate, g.input_capacitance);
      invalidate_keys(i);
    }
  }
  g.input_capacitance = value;
}

void Session::set_intrinsic_delay(const std::string& gate, double value) {
  for (std::size_t i = 0; i < design_.nets_.size(); ++i) {
    // Intrinsic delay enters the result key but not the stage circuit,
    // so the content key (and any donor) is untouched: no journal entry.
    if (design_.nets_[i].driver == gate) invalidate_keys(i);
  }
  gate_ref(gate).intrinsic_delay = value;
}

double Session::current_value(const SweepParam& param) {
  switch (param.kind) {
    case SweepParam::Kind::NetElementValue: {
      Net& n = net_ref(param.name);
      if (param.element_index >= n.parasitics.size()) {
        throw std::invalid_argument(
            "Session: element index " + std::to_string(param.element_index) +
            " out of range for net '" + param.name + "'");
      }
      return n.parasitics[param.element_index].value;
    }
    case SweepParam::Kind::DriveResistance:
      return gate_ref(param.name).drive_resistance;
    case SweepParam::Kind::InputCapacitance:
      return gate_ref(param.name).input_capacitance;
    case SweepParam::Kind::IntrinsicDelay:
      return gate_ref(param.name).intrinsic_delay;
  }
  throw std::invalid_argument("Session: unknown sweep parameter kind");
}

void Session::apply_value(const SweepParam& param, double value) {
  switch (param.kind) {
    case SweepParam::Kind::NetElementValue:
      set_value(param.name, param.element_index, value);
      return;
    case SweepParam::Kind::DriveResistance:
      set_drive_resistance(param.name, value);
      return;
    case SweepParam::Kind::InputCapacitance:
      set_input_capacitance(param.name, value);
      return;
    case SweepParam::Kind::IntrinsicDelay:
      set_intrinsic_delay(param.name, value);
      return;
  }
  throw std::invalid_argument("Session: unknown sweep parameter kind");
}

SweepResult Session::sweep(const SweepParam& param,
                           const std::vector<double>& values) {
  // Reads (and validates) the parameter up front so the sweep can put
  // the design back exactly as it found it, even on a throwing point.
  const double original = current_value(param);
  SweepResult result;
  // The baseline is the design as it stands -- warm when the session
  // analyzed before, and every point's slack delta / critical-path
  // change is measured against it.
  result.baseline = analyze();
  result.points.reserve(values.size());
  try {
    for (const double v : values) {
      apply_value(param, v);
      SweepPoint point;
      point.value = v;
      point.report = analyze();
      point.worst_slack = point.report.worst_slack;
      point.slack_delta =
          point.report.worst_slack - result.baseline.worst_slack;
      point.critical_path_changed =
          point.report.critical_path != result.baseline.critical_path;
      result.stages_reused += point.report.awe_stats.stages_reused;
      result.stages_recomputed += point.report.awe_stats.stages_recomputed;
      result.points.push_back(std::move(point));
    }
  } catch (...) {
    apply_value(param, original);
    throw;
  }
  apply_value(param, original);
  return result;
}

TimingGraph Session::graph() {
  GraphOptions gopt;
  gopt.required_time = options_.required_time;
  return TimingGraph::build(analyze(), gopt);
}

TimingGraph Session::graph(double required_time) {
  GraphOptions gopt;
  gopt.required_time = required_time;
  return TimingGraph::build(analyze(), gopt);
}

PathsResult Session::worst_paths(const PathQuery& query) {
  return k_worst_paths(graph(), query);
}

double Session::worst_slack() { return analyze().worst_slack; }

Session::CacheStats Session::cache_stats() const {
  const detail::StageCache::Counters c = cache_->counters();
  CacheStats stats;
  stats.stage_entries = cache_->stage_entries();
  stats.factorization_entries = cache_->factorization_entries();
  stats.lint_entries = cache_->lint_entries();
  stats.hits = c.hits;
  stats.misses = c.misses;
  stats.invalidations = c.invalidations;
  stats.evictions = c.evictions;
  stats.lint_hits = c.lint_hits;
  stats.lint_misses = c.lint_misses;
  stats.reduction_entries = cache_->reduction_entries();
  stats.reduction_hits = c.reduction_hits;
  stats.reduction_misses = c.reduction_misses;
  return stats;
}

void Session::clear_cache() { cache_->clear(); }

}  // namespace awesim::timing
