// Incremental what-if re-analysis: a persistent timing session.
//
// A Session owns a Design plus a content-addressed StageCache and serves
// the workload a production timing system actually sees -- thousands of
// nearly identical analyses (driver sizing, R/C tweaks, ECO loops), not
// one cold run.  Mutations edit the design in place; re-analysis
// recomputes only the stages whose content actually changed plus the
// downstream stages whose input slew changed, and serves everything else
// from cache.  There is no explicit dirty-marking: cache keys are the
// exact bytes of everything a stage depends on, so a mutation misses by
// construction and an untouched stage keeps hitting (see
// timing/stage_cache.h for the key scheme and the corruption defense).
//
// Contract: for the timing payload -- stage delays/slews/arrivals, the
// gate_arrival map, critical path and delay, degraded/failed flags, and
// diagnostics -- a warm Session::analyze() is bit-identical to a cold
// Design::analyze() of the mutated design, at every thread count.  The
// awe_stats cost counters, phase breakdown, and wall_seconds describe
// the work actually performed, so warm runs report fewer factorizations
// and nonzero cache_hits / stages_reused -- that asymmetry is the whole
// point, and it is how the sweep benches measure the speedup.
//
// Typical use:
//   timing::Session session(design);
//   auto cold = session.analyze();
//   session.set_value("net3", 2, 150.0);          // tweak one resistor
//   auto warm = session.analyze();                // touched stages only
//   auto sweep = session.sweep(
//       {timing::SweepParam::Kind::DriveResistance, "drv"},
//       {50.0, 100.0, 200.0, 400.0});
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "timing/analyzer.h"
#include "timing/graph.h"
#include "timing/paths.h"

namespace awesim::timing {

/// Session-level policy knobs that must NOT enter analysis cache keys
/// (they change how answers are computed, with documented tolerances --
/// never what design is analyzed).
struct SessionOptions {
  /// The Sherman-Morrison warm path: stages whose pending mutations are
  /// pure value deltas re-solve through a rank-corrected view of the
  /// cached donor LU instead of refactorizing.  Warm results become
  /// tolerance-equal (|delta delay| <= ~1e-9 s on the bench circuits;
  /// see DESIGN.md "Low-rank warm-path refactorization") instead of
  /// bit-equal to a cold analyze.  `false` restores the PR-4 contract:
  /// every warm report bit-identical to cold, at full refactorization
  /// cost per changed stage.
  bool low_rank = true;
  /// Rank cap and drift (condition) threshold of the corrected solver.
  la::LowRankOptions low_rank_options;
  /// Stages with fewer parasitic elements than this always refactorize
  /// exactly -- below it a fresh LU is as cheap as the correction, so
  /// small designs keep bit-identity even with low_rank on.
  std::size_t min_stage_elements = 64;
};

/// What a sweep varies.  `name` selects a net (NetElementValue) or a
/// gate (the other kinds); `element_index` picks the parasitic within
/// the net's parasitics vector.
struct SweepParam {
  enum class Kind {
    NetElementValue,   // net parasitic R/C/L value
    DriveResistance,   // gate switching resistance
    InputCapacitance,  // gate input pin capacitance
    IntrinsicDelay,    // gate intrinsic delay
  };
  Kind kind = Kind::NetElementValue;
  std::string name;
  std::size_t element_index = 0;
};

struct SweepPoint {
  double value = 0.0;
  TimingReport report;
  /// Worst endpoint slack at this point (copy of report.worst_slack).
  double worst_slack = 0.0;
  /// worst_slack minus the pre-sweep baseline's worst_slack: the what-if
  /// answer ("this edit buys/costs that much margin").
  double slack_delta = 0.0;
  /// The critical path visits a different gate sequence than the
  /// baseline's -- the edit moved the dominant path, not just its delay.
  bool critical_path_changed = false;
};

struct SweepResult {
  /// One full report per swept value, in request order.
  std::vector<SweepPoint> points;
  /// The pre-sweep analysis at the original parameter value -- the
  /// reference every point's slack_delta / critical_path_changed is
  /// measured against.  Warm when the session analyzed before.
  TimingReport baseline;
  /// Stage-level reuse totals summed over all points (also available
  /// per point in report.awe_stats).  The baseline analysis is not a
  /// point and is not counted here.
  std::uint64_t stages_reused = 0;
  std::uint64_t stages_recomputed = 0;
};

class Session {
 public:
  /// Takes its own copy of the design; the session mutates that copy.
  explicit Session(Design design, AnalysisOptions options = {});

  /// Shares a StageCache with other sessions instead of owning one --
  /// the generation-stamped snapshot store (timing/snapshot.h) builds a
  /// private Session per snapshot/request over one process-wide cache,
  /// so every reader and every new generation stays warm.  Safe because
  /// cache keys are content-addressed (two sessions can never alias
  /// different circuits under one key) and every StageCache operation is
  /// internally locked; with *concurrent* analyses the hit/miss/eviction
  /// counters become schedule-dependent, but the timing payload is
  /// bit-identical regardless of who warmed which entry.  A nullptr
  /// cache is replaced with a fresh private one.
  Session(Design design, AnalysisOptions options,
          std::shared_ptr<detail::StageCache> cache);

  /// Full-control constructor: analysis options, session policy, and an
  /// optionally shared cache.
  Session(Design design, AnalysisOptions options,
          SessionOptions session_options,
          std::shared_ptr<detail::StageCache> cache = nullptr);
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Analyze the current state of the design, reusing cached stages.
  TimingReport analyze();

  /// Rebind the session's analysis options, then analyze.  Option
  /// changes that enter the cache key (thresholds, order, swing, input
  /// slew) miss naturally; `threads` is not part of any key and may be
  /// changed freely without losing reuse.
  TimingReport analyze(const AnalysisOptions& options);

  /// Mutators.  Each requires the named net/gate to exist (and the net
  /// name to be unambiguous -- a design may connect several nets under
  /// one name); throws std::invalid_argument otherwise.  No explicit
  /// invalidation happens here: the next analyze() misses on exactly
  /// the stages whose content these edits changed.
  void set_value(const std::string& net, std::size_t element_index,
                 double value);
  void add_element(const std::string& net, NetElement element);
  void remove_element(const std::string& net, std::size_t element_index);
  void set_drive_resistance(const std::string& gate, double value);
  void set_input_capacitance(const std::string& gate, double value);
  void set_intrinsic_delay(const std::string& gate, double value);

  /// Sweep one parameter over `values`: apply, analyze, restore the
  /// original value afterwards.  Warm by construction -- every point
  /// reuses all stages the previous points already computed.  Each point
  /// carries its slack delta against the pre-sweep baseline and whether
  /// the critical path moved (the what-if questions a sweep answers).
  SweepResult sweep(const SweepParam& param,
                    const std::vector<double>& values);

  /// Analyze the current design state (warm, through the stage cache)
  /// and build the pin-level timing graph on the result.  The graph
  /// honors options().required_time; the overload pins a different
  /// endpoint requirement for this query only.
  TimingGraph graph();
  TimingGraph graph(double required_time);

  /// Analyze (warm) and enumerate the K worst paths of the current
  /// design state.  See timing/paths.h for query semantics; throws what
  /// k_worst_paths() throws on bad filter names.
  PathsResult worst_paths(const PathQuery& query = {});

  /// Analyze (warm) and return the worst endpoint slack.
  double worst_slack();

  const Design& design() const { return design_; }
  const AnalysisOptions& options() const { return options_; }
  const SessionOptions& session_options() const { return session_options_; }

  /// Cumulative cache observability, for tests and tooling.
  struct CacheStats {
    std::size_t stage_entries = 0;
    std::size_t factorization_entries = 0;
    std::size_t lint_entries = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t evictions = 0;
    /// Pre-flight lint lookups (content-keyed, counted apart from
    /// hits/misses; see StageCache::Counters).
    std::uint64_t lint_hits = 0;
    std::uint64_t lint_misses = 0;
    /// Net-reduction artifacts (src/reduce; populated only when a
    /// reduce::HierSession shares this session's cache).
    std::size_t reduction_entries = 0;
    std::uint64_t reduction_hits = 0;
    std::uint64_t reduction_misses = 0;
  };
  CacheStats cache_stats() const;

  /// Drop every cached artifact; the next analyze() runs cold.
  void clear_cache();

 private:
  double current_value(const SweepParam& param);
  void apply_value(const SweepParam& param, double value);
  Net& net_ref(const std::string& net);
  Gate& gate_ref(const std::string& gate);

  /// Index of the (unique) net with this name in the design's net list;
  /// same validation as net_ref.
  std::size_t net_index(const std::string& net);
  /// Per-net warm-path scratch, sized to the net list on demand.
  detail::StageHint& hint_at(std::size_t net_idx);
  /// Key-memo invalidation (keeps the delta journal).
  void invalidate_keys(std::size_t net_idx);
  /// Record a value delta for the low-rank journal: the first mutation
  /// of an element since the last rebase keeps its donor-time value.
  void journal_delta(std::size_t net_idx, const std::string& element,
                     double donor_value);
  /// A mutation not expressible as a value delta: forget the donor.
  void reset_journal(std::size_t net_idx);
  /// Drop every memoized key (options rebind); journals survive -- they
  /// describe circuit content, not options.
  void invalidate_all_keys();

  Design design_;
  AnalysisOptions options_;
  SessionOptions session_options_;
  std::shared_ptr<detail::StageCache> cache_;
  std::vector<detail::StageHint> stage_hints_;
};

}  // namespace awesim::timing
