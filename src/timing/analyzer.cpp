#include "timing/analyzer.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <stdexcept>

namespace awesim::timing {

void Design::add_gate(Gate gate) {
  if (gate.name.empty()) {
    throw std::invalid_argument("Design: gate with empty name");
  }
  if (!gates_.emplace(gate.name, gate).second) {
    throw std::invalid_argument("Design: duplicate gate '" + gate.name +
                                "'");
  }
}

void Design::add_net(std::string driver, Net net) {
  if (gates_.count(driver) == 0) {
    throw std::invalid_argument("Design: unknown driver gate '" + driver +
                                "'");
  }
  nets_.push_back({std::move(driver), std::move(net)});
}

void Design::set_primary_input(const std::string& gate) {
  if (gates_.count(gate) == 0) {
    throw std::invalid_argument("Design: unknown gate '" + gate + "'");
  }
  primary_inputs_.push_back(gate);
}

namespace {

// Build the stage circuit for one net: ramp source -> driver resistance ->
// parasitics -> sink input capacitances.  Returns the circuit and the
// circuit nodes of the driver point and each sink point.
struct StageCircuit {
  circuit::Circuit ckt;
  circuit::NodeId driver_node;
  std::map<std::string, circuit::NodeId> sink_nodes;
};

StageCircuit build_stage(const Gate& driver, const Net& net,
                         const std::map<std::string, Gate>& gates,
                         double swing, double slew) {
  StageCircuit sc;
  auto& ckt = sc.ckt;
  const auto vin = ckt.node("__in");
  ckt.add_vsource("Vdrv", vin, circuit::kGround,
                  slew > 0.0
                      ? circuit::Stimulus::ramp_step(0.0, swing, slew)
                      : circuit::Stimulus::step(0.0, swing));
  const auto drv = ckt.node("DRV");
  ckt.add_resistor("__Rdrv", vin, drv, driver.drive_resistance);
  sc.driver_node = drv;

  std::size_t counter = 0;
  for (const auto& e : net.parasitics) {
    const auto a = ckt.node(e.node_a);
    const auto b = ckt.node(e.node_b);
    const std::string name = "__p" + std::to_string(counter++);
    switch (e.kind) {
      case NetElement::Kind::Resistor:
        ckt.add_resistor(name, a, b, e.value);
        break;
      case NetElement::Kind::Capacitor:
        ckt.add_capacitor(name, a, b, e.value);
        break;
      case NetElement::Kind::Inductor:
        ckt.add_inductor(name, a, b, e.value);
        break;
    }
  }
  for (const auto& [sink, node_name] : net.sink_node) {
    const auto node = ckt.node(node_name);
    sc.sink_nodes[sink] = node;
    const auto it = gates.find(sink);
    if (it != gates.end() && it->second.input_capacitance > 0.0) {
      ckt.add_capacitor("__cin_" + sink, node, circuit::kGround,
                        it->second.input_capacitance);
    }
  }
  return sc;
}

}  // namespace

TimingReport Design::analyze(const AnalysisOptions& options) const {
  // Topological order over gates: a net's sinks depend on its driver.
  std::map<std::string, std::vector<const NetInstance*>> driven_by;
  std::map<std::string, int> fanin_count;
  for (const auto& [name, gate] : gates_) fanin_count[name] = 0;
  for (const auto& ni : nets_) {
    driven_by[ni.driver].push_back(&ni);
    for (const auto& [sink, node] : ni.net.sink_node) {
      if (gates_.count(sink) > 0) ++fanin_count[sink];
    }
  }

  std::map<std::string, double> arrival;
  std::map<std::string, double> slew;
  std::map<std::string, std::string> predecessor;
  std::queue<std::string> ready;
  for (const auto& pi : primary_inputs_) {
    arrival[pi] = 0.0;
    slew[pi] = options.input_slew;
    ready.push(pi);
  }
  // Gates with no fan-in that are not declared primary inputs also start
  // at t = 0 (conservative default).
  for (const auto& [name, count] : fanin_count) {
    if (count == 0 && arrival.count(name) == 0) {
      arrival[name] = 0.0;
      slew[name] = options.input_slew;
      ready.push(name);
    }
  }

  TimingReport report;
  std::set<std::string> processed;
  while (!ready.empty()) {
    const std::string gate_name = ready.front();
    ready.pop();
    if (!processed.insert(gate_name).second) continue;
    const Gate& driver = gates_.at(gate_name);
    const double t_in = arrival.at(gate_name);
    const double in_slew = slew.at(gate_name);

    auto it = driven_by.find(gate_name);
    if (it == driven_by.end()) continue;  // endpoint gate
    for (const NetInstance* ni : it->second) {
      StageTiming st;
      st.driver_gate = gate_name;
      st.net = ni->net.name;
      st.input_arrival = t_in;

      StageCircuit sc = build_stage(driver, ni->net, gates_,
                                    options.swing, in_slew);
      core::Engine engine(sc.ckt);
      core::EngineOptions eopt;
      eopt.order = options.order;
      eopt.auto_order = true;
      eopt.error_tolerance = 0.01;
      eopt.max_order = std::max(options.order + 2, 6);

      for (const auto& [sink, node] : sc.sink_nodes) {
        const auto result = engine.approximate(node, eopt);
        st.awe_order_used =
            std::max(st.awe_order_used, result.order_used);
        // Horizon: generous multiple of the slowest time constant plus
        // the input slew.
        const double tau = result.approximation.dominant_time_constant();
        const double horizon = 12.0 * tau + 3.0 * in_slew + 1e-15;
        const double v_th = options.swing * options.delay_threshold_fraction;
        const double v_lo = options.swing * options.slew_low_fraction;
        const double v_hi = options.swing * options.slew_high_fraction;
        const auto t_th =
            result.approximation.first_crossing(v_th, 0.0, horizon);
        const auto t_lo =
            result.approximation.first_crossing(v_lo, 0.0, horizon);
        const auto t_hi =
            result.approximation.first_crossing(v_hi, 0.0, horizon);
        SinkTiming sink_t;
        sink_t.gate = sink;
        sink_t.stage_delay =
            driver.intrinsic_delay + t_th.value_or(horizon);
        sink_t.slew = (t_hi && t_lo) ? *t_hi - *t_lo : horizon;
        sink_t.arrival = t_in + sink_t.stage_delay;
        st.sinks.push_back(sink_t);

        if (gates_.count(sink) > 0) {
          const bool improves = arrival.count(sink) == 0 ||
                                sink_t.arrival > arrival[sink];
          if (improves) {
            arrival[sink] = sink_t.arrival;
            slew[sink] = sink_t.slew;
            predecessor[sink] = gate_name;
          }
          if (--fanin_count[sink] == 0) ready.push(sink);
        } else {
          // Design output endpoint.
          if (sink_t.arrival > report.critical_delay) {
            report.critical_delay = sink_t.arrival;
            // Reconstruct the path below once all arrivals are final.
            report.critical_path.clear();
            report.critical_path.push_back(sink);
            std::string back = gate_name;
            while (true) {
              report.critical_path.push_back(back);
              const auto pit = predecessor.find(back);
              if (pit == predecessor.end()) break;
              back = pit->second;
            }
            std::reverse(report.critical_path.begin(),
                         report.critical_path.end());
          }
        }
      }
      report.stages.push_back(std::move(st));
    }
  }

  if (processed.size() < gates_.size()) {
    // Some gate never became ready: combinational cycle (or a sink whose
    // fan-in never resolves).
    throw std::invalid_argument(
        "Design: combinational cycle or unreachable gates detected");
  }
  report.gate_arrival = arrival;
  // If no design-output endpoint was seen, the critical path ends at the
  // latest-arriving gate input.
  if (report.critical_path.empty() && !arrival.empty()) {
    const auto worst = std::max_element(
        arrival.begin(), arrival.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    report.critical_delay = worst->second;
    std::string back = worst->first;
    while (true) {
      report.critical_path.push_back(back);
      const auto pit = predecessor.find(back);
      if (pit == predecessor.end()) break;
      back = pit->second;
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  }
  return report;
}

}  // namespace awesim::timing
