#include "timing/analyzer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

#include "check/lint.h"
#include "core/cancel.h"
#include "core/fault.h"
#include "core/parallel.h"
#include "obs/trace.h"
#include "timing/delay_model.h"
#include "timing/design_graph.h"
#include "timing/graph.h"
#include "timing/stage_cache.h"

namespace awesim::timing {

void Design::add_gate(Gate gate) {
  if (gate.name.empty()) {
    throw std::invalid_argument("Design: gate with empty name");
  }
  if (!gates_.emplace(gate.name, gate).second) {
    throw std::invalid_argument("Design: duplicate gate '" + gate.name +
                                "'");
  }
}

void Design::add_net(std::string driver, Net net) {
  if (gates_.count(driver) == 0) {
    throw std::invalid_argument("Design: unknown driver gate '" + driver +
                                "'");
  }
  nets_.push_back({std::move(driver), std::move(net)});
}

void Design::set_primary_input(const std::string& gate) {
  if (gates_.count(gate) == 0) {
    throw std::invalid_argument("Design: unknown gate '" + gate + "'");
  }
  primary_inputs_.push_back(gate);
}

namespace {

// One stage evaluated in isolation through the pluggable delay-model
// seam (timing/delay_model.h): everything model-side is thread-local,
// so stages of one wavefront can run concurrently.  The analyzer keeps
// only the cross-cutting concerns here -- the trace span and the
// deterministic fault probe -- and the selected model does the physics.
// When a Session cache is attached, engine-backed models also hand back
// the circuit's G factorization so the serial post-pass can publish it
// for content-identical re-analyses.
StageEvaluation evaluate_stage(
    const Gate& driver, const Net& net,
    const std::map<std::string, Gate>& gates,
    const AnalysisOptions& options, double t_in, double in_slew,
    const detail::CachedFactorization* adopt, bool capture_factorization,
    std::shared_ptr<const check::LintReport> lint_pre,
    const LowRankPlan* low_rank) {
  AWESIM_TRACE_SPAN("timing.stage");
  if (core::fault_at("timing.stage", net.name)) {
    throw core::DiagnosticError(
        {core::DiagCode::InjectedFault, core::Severity::Error,
         "injected stage evaluation fault", net.name});
  }
  StageProblem problem;
  problem.driver = &driver;
  problem.net = &net;
  problem.gates = &gates;
  problem.options = &options;
  problem.input_arrival = t_in;
  problem.input_slew = in_slew;
  problem.adopt = adopt;
  problem.capture_factorization = capture_factorization;
  problem.lint_pre = std::move(lint_pre);
  problem.low_rank = low_rank;
  return delay_model(options.delay_model).evaluate(problem);
}

}  // namespace

TimingReport Design::analyze(const AnalysisOptions& options) const {
  return detail::analyze_design(*this, options, nullptr);
}

namespace detail {

TimingReport analyze_design(const Design& design,
                            const AnalysisOptions& options,
                            StageCache* cache,
                            SessionHints* hints) {
  const auto t_start = std::chrono::steady_clock::now();
  if (options.cancel != nullptr) options.cancel->check("timing.analyze");
  // Eviction window: StageCache counters are cumulative over the cache's
  // lifetime; the report carries only the evictions this analysis caused.
  const std::uint64_t evictions_before =
      cache != nullptr ? cache->counters().evictions : 0;
  // Phase breakdown window: everything this analysis records, process-wide.
  // Concurrent analyses would fold into each other's windows; the span
  // *counts* stay a pure function of the work this call performed only
  // when analyses do not overlap (the documented usage).
  const obs::PhaseBreakdown phases_before = obs::snapshot();

  const auto& gates = design.gates_;
  const auto& nets = design.nets_;

  // Stage dependency bookkeeping: a net's sinks depend on its driver.
  std::map<std::string, std::vector<const Design::NetInstance*>> driven_by;
  std::map<std::string, int> fanin_count;
  for (const auto& [name, gate] : gates) fanin_count[name] = 0;
  for (const auto& ni : nets) {
    driven_by[ni.driver].push_back(&ni);
    for (const auto& [sink, node] : ni.net.sink_node) {
      if (gates.count(sink) > 0) ++fanin_count[sink];
    }
  }

  std::map<std::string, double> arrival;
  std::map<std::string, double> slew;
  std::map<std::string, std::string> predecessor;

  // Kahn levelization into wavefronts.  Wave 0 holds the sources:
  // declared primary inputs (whose stage inputs are pinned to t = 0 even
  // if something drives them) and gates with no fan-in (conservative
  // t = 0 default).  Every other gate lands one wave past its last
  // driver, so when a wave is evaluated all of its drivers' arrivals and
  // slews are final.  Waves are name-sorted for deterministic reduction.
  std::map<std::string, int> remaining = fanin_count;
  for (const auto& pi : design.primary_inputs_) remaining[pi] = 0;
  std::vector<std::vector<std::string>> waves;
  std::size_t leveled = 0;
  {
    std::vector<std::string> frontier;
    for (const auto& [name, count] : remaining) {
      if (count == 0) frontier.push_back(name);
    }
    while (!frontier.empty()) {
      leveled += frontier.size();
      std::set<std::string> next;
      for (const auto& gate_name : frontier) {
        const auto it = driven_by.find(gate_name);
        if (it == driven_by.end()) continue;
        for (const Design::NetInstance* ni : it->second) {
          for (const auto& [sink, node] : ni->net.sink_node) {
            if (gates.count(sink) > 0 && --remaining[sink] == 0) {
              next.insert(sink);
            }
          }
        }
      }
      waves.push_back(std::move(frontier));
      frontier.assign(next.begin(), next.end());
    }
  }
  if (leveled < gates.size()) {
    // Some gate never became ready: combinational cycle (or a sink whose
    // fan-in never resolves).  The pre-flight audit names the loop.
    if (options.preflight_audit) {
      const GraphFindings findings = audit_graph(design);
      core::Diagnostic diag;
      diag.code = core::DiagCode::CombinationalCycle;
      diag.severity = core::Severity::Fatal;
      if (!findings.cycles.empty()) {
        const CyclePath& cycle = findings.cycles.front();
        std::string path;
        for (const std::string& gate : cycle.gates) {
          if (!path.empty()) path += " -> ";
          path += gate;
        }
        path += " -> " + cycle.gates.front();
        diag.element = cycle.gates.front();
        diag.message = "combinational cycle: " + path +
                       (findings.cycles.size() > 1
                            ? " (+" +
                                  std::to_string(findings.cycles.size() - 1) +
                                  " more loop(s))"
                            : "");
      } else {
        diag.message =
            "unreachable gates detected (fan-in never resolves): " +
            std::to_string(gates.size() - leveled) + " gate(s) unleveled";
      }
      throw core::DiagnosticError(std::move(diag));
    }
    throw std::invalid_argument(
        "Design: combinational cycle or unreachable gates detected");
  }

  // Wave-0 gates switch at t = 0 with the primary-input slew.
  if (!waves.empty()) {
    for (const auto& name : waves.front()) {
      arrival[name] = 0.0;
      slew[name] = options.input_slew;
    }
  }

  TimingReport report;
  report.levels = waves.size();
  // Wave 0 is the graph's source set: these pins are pinned to t = 0
  // even if something feeds them (declared primary inputs).  Name-sorted
  // already -- the frontier came out of a sorted map.
  if (!waves.empty()) report.source_gates = waves.front();

  // Engine-backed models (AWE, two-pole) want the LU/lint content-cache
  // plumbing; arithmetic models (Elmore bound, table) never factor a
  // matrix, so that plumbing -- and its hit/miss accounting -- is
  // skipped for them.
  const bool engine_model = delay_model(options.delay_model).uses_engine();

  struct StageJob {
    const Design::NetInstance* net = nullptr;
    const Gate* driver = nullptr;
    double t_in = 0.0;
    double in_slew = 0.0;
  };
  struct Endpoint {
    double arrival = 0.0;
    std::string sink;
    std::string driver;
  };
  std::optional<Endpoint> best_endpoint;

  core::ThreadPool pool(
      static_cast<std::size_t>(std::max(0, options.threads)));

  for (const auto& wave : waves) {
    if (options.cancel != nullptr) options.cancel->check("timing.wave");
    // Gather this wavefront's stages; all inputs are final.
    std::vector<StageJob> jobs;
    for (const auto& gate_name : wave) {
      const auto it = driven_by.find(gate_name);
      if (it == driven_by.end()) continue;  // endpoint gate
      for (const Design::NetInstance* ni : it->second) {
        jobs.push_back({ni, &gates.at(gate_name), arrival.at(gate_name),
                        slew.at(gate_name)});
      }
    }
    if (jobs.empty()) continue;

    std::vector<StageEvaluation> outcomes(jobs.size());
    std::vector<char> served(jobs.size(), 0);
    std::vector<std::string> result_keys;
    std::vector<std::string> content_keys;
    std::vector<const std::string*> rkey;
    std::vector<const std::string*> ckey;
    std::vector<StageHint*> hint_of;
    std::vector<std::string> lr_keys;
    std::vector<std::unique_ptr<LowRankPlan>> plans;
    std::vector<std::shared_ptr<const CachedFactorization>> adopt;
    std::vector<std::shared_ptr<const check::LintReport>> lint_pre;
    std::vector<core::Diagnostics> invalidation_diags;

    if (cache != nullptr) {
      // Serial cache pre-pass, in job order: every lookup (stage result
      // keys, then LU content keys for the misses) happens here, before
      // any parallel work, so hit/miss counters, invalidations, and the
      // served set are pure functions of the job sequence -- identical
      // for every thread count.  Low-rank plan decisions are lookups
      // too, so they also live here.
      result_keys.resize(jobs.size());
      content_keys.resize(jobs.size());
      rkey.resize(jobs.size(), nullptr);
      ckey.resize(jobs.size(), nullptr);
      hint_of.resize(jobs.size(), nullptr);
      lr_keys.resize(jobs.size());
      plans.resize(jobs.size());
      adopt.resize(jobs.size());
      lint_pre.resize(jobs.size());
      invalidation_diags.resize(jobs.size());
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const StageJob& job = jobs[i];
        // Key memo: a Session hands per-net StageHint slots holding the
        // serialized key bytes of the previous analyze.  Serializing a
        // kilo-element net's key dominates a fully warm lookup, so an
        // unchanged net reuses the bytes; the lookups below still run
        // unconditionally (checksums, counters, fault probes included).
        StageHint* hint = nullptr;
        if (hints != nullptr && hints->stages != nullptr) {
          const auto net_idx =
              static_cast<std::size_t>(job.net - nets.data());
          if (net_idx < hints->stages->size()) {
            hint = &(*hints->stages)[net_idx];
          }
        }
        hint_of[i] = hint;
        if (hint != nullptr) {
          std::uint64_t slew_bits = 0;
          std::memcpy(&slew_bits, &job.in_slew, sizeof slew_bits);
          if (!hint->keys_valid || hint->in_slew_bits != slew_bits) {
            hint->result_key = stage_result_key(*job.driver, job.net->net,
                                                gates, options, job.in_slew);
            hint->content_key =
                stage_content_key(*job.driver, job.net->net, gates);
            hint->in_slew_bits = slew_bits;
            hint->keys_valid = true;
          }
          rkey[i] = &hint->result_key;
          ckey[i] = &hint->content_key;
        } else {
          result_keys[i] = stage_result_key(*job.driver, job.net->net,
                                            gates, options, job.in_slew);
          rkey[i] = &result_keys[i];
        }
        auto hit = cache->lookup_stage(*rkey[i], job.net->net.name,
                                       &invalidation_diags[i]);
        if (hit) {
          // Rehydrate the stage-relative record against this job's
          // input arrival.  Cold evaluation computes arrival as
          // t_in + stage_delay with the same two operands, so the
          // replayed values are bitwise identical.
          StageEvaluation o;
          o.timing = std::move(*hit);
          o.timing.input_arrival = job.t_in;
          for (auto& s : o.timing.sinks) {
            s.arrival = job.t_in + s.stage_delay;
          }
          o.stats.stages = 1;
          o.stats.stages_reused = 1;
          o.stats.cache_hits = 1;
          outcomes[i] = std::move(o);
          served[i] = 1;
        } else if (engine_model) {
          if (ckey[i] == nullptr) {
            content_keys[i] = stage_content_key(*job.driver, job.net->net,
                                                gates);
            ckey[i] = &content_keys[i];
          }
          adopt[i] = cache->lookup_factorization(*ckey[i]);
          if (options.preflight_lint) {
            lint_pre[i] = cache->lookup_lint(*ckey[i]);
          }
          // The low-rank warm path: no exact result and no exact
          // factorization, but the net's journal carries pure value
          // deltas against a donor content key whose factorization is
          // still cached.  Eligibility (size gate, journal state) and
          // the donor lookup are all serial-pre-pass decisions.
          if (!adopt[i] && hint != nullptr && hints->low_rank &&
              hint->donor_valid && !hint->deltas.empty() &&
              job.net->net.parasitics.size() >= hints->min_stage_elements &&
              hint->donor_key != *ckey[i]) {
            auto donor = cache->lookup_factorization(hint->donor_key);
            if (donor) {
              lr_keys[i] = low_rank_result_key(*rkey[i], hint->donor_key,
                                               hint->deltas);
              auto lr_hit = cache->lookup_stage(
                  lr_keys[i], job.net->net.name, &invalidation_diags[i]);
              if (lr_hit) {
                StageEvaluation o;
                o.timing = std::move(*lr_hit);
                o.timing.input_arrival = job.t_in;
                for (auto& s : o.timing.sinks) {
                  s.arrival = job.t_in + s.stage_delay;
                }
                o.stats.stages = 1;
                o.stats.stages_reused = 1;
                o.stats.cache_hits = 1;
                o.stats.cache_misses = 1;  // the exact-key lookup above
                outcomes[i] = std::move(o);
                served[i] = 1;
              } else {
                auto plan = std::make_unique<LowRankPlan>();
                plan->donor = std::move(donor);
                plan->deltas = hint->deltas;
                plan->options = hints->low_rank_options;
                plans[i] = std::move(plan);
              }
            }
          }
        }
      }
    }

    // Budget accounting happens serially, before any parallel work:
    // one unit per stage this wave will actually evaluate (cache-served
    // stages are free), so a BudgetExceeded trip is a deterministic
    // function of the work sequence and fires before the wave starts.
    if (options.cancel != nullptr) {
      std::uint64_t evals = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!served[i]) ++evals;
      }
      if (evals > 0) options.cancel->charge("timing.stage", evals);
    }

    // Evaluate the misses concurrently into per-stage slots.  Each job
    // is its own fault domain: anything thrown (singular MNA, injected
    // fault) is caught here, the stage degrades to the analytic Elmore
    // bound, and the rest of the wavefront proceeds untouched.  The
    // injection and the fallback are pure functions of the stage itself,
    // so the report stays bit-identical across thread counts.  The
    // deadline check sits *outside* the fault domain: a cancelled stage
    // must abort the analysis with its DeadlineExceeded record, not
    // degrade to an Elmore bound that looks like an answer.
    pool.parallel_for(jobs.size(), [&](std::size_t i) {
      if (served[i]) return;
      if (options.cancel != nullptr) options.cancel->check("timing.stage");
      AWESIM_TRACE_SPAN("parallel.job");
      const StageJob& job = jobs[i];
      try {
        if (core::fault_at("parallel.job", job.net->net.name)) {
          throw core::DiagnosticError(
              {core::DiagCode::InjectedFault, core::Severity::Error,
               "injected thread-pool job fault", job.net->net.name});
        }
        outcomes[i] = evaluate_stage(
            *job.driver, job.net->net, gates, options, job.t_in,
            job.in_slew, cache != nullptr ? adopt[i].get() : nullptr,
            cache != nullptr,
            cache != nullptr ? lint_pre[i] : nullptr,
            cache != nullptr ? plans[i].get() : nullptr);
      } catch (const std::exception& e) {
        outcomes[i] = detail::elmore_fallback_stage(
            *job.driver, job.net->net, gates, job.t_in, job.in_slew,
            e.what());
      }
    });

    // ... then reduce serially in job order, so arrivals, predecessor
    // choices, stats sums, and cache insertions are identical for every
    // thread count.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      StageEvaluation& outcome = outcomes[i];
      if (cache != nullptr && !served[i]) {
        outcome.stats.stages_recomputed += 1;
        outcome.stats.cache_misses += 1;  // the stage-result lookup
        if (engine_model) {
          if (adopt[i]) {
            outcome.stats.cache_hits += 1;  // the LU content-key lookup
          } else {
            outcome.stats.cache_misses += 1;
          }
        }
        if (outcome.lint) {
          // A lint report is a pure function of the circuit content, so
          // it is cached even for stages that lint-failed: warm re-runs
          // of a broken stage skip straight to the Elmore fallback.
          cache->insert_lint(*ckey[i], outcome.lint);
        }
        if (!outcome.timing.failed) {
          // Store the pure evaluation result in stage-relative form
          // (before any invalidation diagnostics of *this* run are
          // attached -- those describe a cache event, not the stage).
          // Failed stages are never cached: the Elmore bound is a
          // per-run fallback, recomputed deterministically.  A stage
          // answered through the low-rank warm path is cached under its
          // solver-kind key: tolerance-equal results never alias the
          // exact key space.
          StageTiming relative = outcome.timing;
          relative.input_arrival = 0.0;
          for (auto& s : relative.sinks) s.arrival = s.stage_delay;
          cache->insert_stage(
              outcome.low_rank_used ? lr_keys[i] : *rkey[i],
              std::move(relative));
          if (!outcome.low_rank_used && !adopt[i] && outcome.solver) {
            cache->insert_factorization(
                *ckey[i],
                {outcome.solver, outcome.used_gmin,
                 outcome.factor_diags});
          }
        }
        // Journal rebase: after an exact evaluation, the factorization
        // cached under the current content key (freshly captured or
        // adopted) becomes the net's donor and pending value deltas are
        // retired.  Low-rank evaluations never rebase -- their solver is
        // a corrected view of the old donor, not a new factorization.
        if (engine_model && hint_of[i] != nullptr && !outcome.low_rank_used &&
            (adopt[i] || outcome.solver)) {
          StageHint* hint = hint_of[i];
          hint->donor_valid = true;
          hint->donor_key = *ckey[i];
          hint->deltas.clear();
        }
        if (!invalidation_diags[i].empty()) {
          outcome.timing.diagnostics.insert(
              outcome.timing.diagnostics.begin(),
              invalidation_diags[i].begin(), invalidation_diags[i].end());
        }
      }
      outcome.solver.reset();
      outcome.lint.reset();

      report.awe_stats += outcome.stats;
      StageTiming& st = outcome.timing;
      if (st.failed) {
        ++report.failed_stages;
      } else if (st.degraded) {
        ++report.degraded_stages;
      }
      for (const auto& d : st.diagnostics) {
        report.diagnostics.push_back(d);
      }
      for (const auto& sink_t : st.sinks) {
        if (gates.count(sink_t.gate) > 0) {
          const bool improves = arrival.count(sink_t.gate) == 0 ||
                                sink_t.arrival > arrival[sink_t.gate];
          if (improves) {
            arrival[sink_t.gate] = sink_t.arrival;
            slew[sink_t.gate] = sink_t.slew;
            predecessor[sink_t.gate] = st.driver_gate;
          }
        } else if (!best_endpoint ||
                   sink_t.arrival > best_endpoint->arrival) {
          // Design output endpoint.
          best_endpoint = Endpoint{sink_t.arrival, sink_t.gate,
                                   st.driver_gate};
        }
      }
      report.stages.push_back(std::move(st));
    }
  }

  report.gate_arrival = arrival;
  auto trace_path = [&](const std::string& from) {
    std::string back = from;
    while (true) {
      report.critical_path.push_back(back);
      const auto pit = predecessor.find(back);
      if (pit == predecessor.end()) break;
      back = pit->second;
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  };
  if (best_endpoint) {
    report.critical_delay = best_endpoint->arrival;
    report.critical_path.push_back(best_endpoint->sink);
    trace_path(best_endpoint->driver);
  } else if (!arrival.empty()) {
    // No design-output endpoint: the critical path ends at the
    // latest-arriving gate input.
    const auto worst = std::max_element(
        arrival.begin(), arrival.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    report.critical_delay = worst->second;
    trace_path(worst->first);
  }
  // Backward pass: build the pin-level graph from the finished report
  // and fold its slack view into the report.  The graph re-propagates
  // arrivals from arc delays (it does not copy the map above), so this
  // doubles as a built-in self-check; tests make it a bitwise one.
  {
    GraphOptions gopt;
    gopt.required_time = options.required_time;
    const TimingGraph graph = TimingGraph::build(report, gopt);
    for (const auto& [gate, t] : report.gate_arrival) {
      report.gate_slack[gate] = graph.slack_at(gate);
    }
    report.worst_slack = graph.worst_slack();
    report.worst_slack_endpoint = graph.worst_endpoint();
  }

  if (cache != nullptr) {
    report.awe_stats.cache_evictions =
        cache->counters().evictions - evictions_before;
  }
  report.awe_stats.phases = obs::since(phases_before);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return report;
}

}  // namespace detail

}  // namespace awesim::timing
