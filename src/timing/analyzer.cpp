#include "timing/analyzer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>

#include "check/lint.h"
#include "core/fault.h"
#include "core/parallel.h"
#include "obs/trace.h"
#include "timing/stage_cache.h"

namespace awesim::timing {

void Design::add_gate(Gate gate) {
  if (gate.name.empty()) {
    throw std::invalid_argument("Design: gate with empty name");
  }
  if (!gates_.emplace(gate.name, gate).second) {
    throw std::invalid_argument("Design: duplicate gate '" + gate.name +
                                "'");
  }
}

void Design::add_net(std::string driver, Net net) {
  if (gates_.count(driver) == 0) {
    throw std::invalid_argument("Design: unknown driver gate '" + driver +
                                "'");
  }
  nets_.push_back({std::move(driver), std::move(net)});
}

void Design::set_primary_input(const std::string& gate) {
  if (gates_.count(gate) == 0) {
    throw std::invalid_argument("Design: unknown gate '" + gate + "'");
  }
  primary_inputs_.push_back(gate);
}

namespace {

// Build the stage circuit for one net: ramp source -> driver resistance ->
// parasitics -> sink input capacitances.  Returns the circuit and the
// circuit nodes of the driver point and each sink point.
struct StageCircuit {
  circuit::Circuit ckt;
  circuit::NodeId driver_node;
  std::map<std::string, circuit::NodeId> sink_nodes;
};

StageCircuit build_stage(const Gate& driver, const Net& net,
                         const std::map<std::string, Gate>& gates,
                         double swing, double slew) {
  StageCircuit sc;
  auto& ckt = sc.ckt;
  const auto vin = ckt.node("__in");
  ckt.add_vsource("Vdrv", vin, circuit::kGround,
                  slew > 0.0
                      ? circuit::Stimulus::ramp_step(0.0, swing, slew)
                      : circuit::Stimulus::step(0.0, swing));
  const auto drv = ckt.node("DRV");
  ckt.add_resistor("__Rdrv", vin, drv, driver.drive_resistance);
  sc.driver_node = drv;

  std::size_t counter = 0;
  for (const auto& e : net.parasitics) {
    const auto a = ckt.node(e.node_a);
    const auto b = ckt.node(e.node_b);
    const std::string name = "__p" + std::to_string(counter++);
    switch (e.kind) {
      case NetElement::Kind::Resistor:
        ckt.add_resistor(name, a, b, e.value);
        break;
      case NetElement::Kind::Capacitor:
        ckt.add_capacitor(name, a, b, e.value);
        break;
      case NetElement::Kind::Inductor:
        ckt.add_inductor(name, a, b, e.value);
        break;
    }
  }
  for (const auto& [sink, node_name] : net.sink_node) {
    const auto node = ckt.node(node_name);
    sc.sink_nodes[sink] = node;
    const auto it = gates.find(sink);
    if (it != gates.end() && it->second.input_capacitance > 0.0) {
      ckt.add_capacitor("__cin_" + sink, node, circuit::kGround,
                        it->second.input_capacitance);
    }
  }
  return sc;
}

// One stage evaluated in isolation: everything here is thread-local
// (the stage circuit, MNA system, and engine are built fresh), so
// stages of one wavefront can run concurrently.  When a Session cache
// is attached, the outcome also carries the circuit's G factorization
// handle so the serial post-pass can publish it for content-identical
// re-analyses.
struct StageOutcome {
  StageTiming timing;
  core::Stats stats;
  std::shared_ptr<const mna::Solver> solver;  // set when capturing
  bool used_gmin = false;
  core::Diagnostics factor_diags;
  /// Freshly computed pre-flight lint report, published (like the
  /// solver) for the serial post-pass to cache under the content key.
  std::shared_ptr<const check::LintReport> lint;
};

// Last-resort stage estimate when the AWE evaluation itself is dead
// (singular MNA, injected fault, anything thrown): the lumped Elmore
// bound tau = (Rdrv + sum R) * (sum C), pessimistic by construction,
// computed straight from the net description without any linear solve.
// Keeps the wavefront moving: downstream stages see finite, reproducible
// arrivals and the report carries a StageFailed diagnostic.
StageOutcome elmore_bound_stage(const Gate& driver, const Net& net,
                                const std::map<std::string, Gate>& gates,
                                const AnalysisOptions& /*options*/,
                                double t_in, double in_slew,
                                const std::string& reason) {
  StageOutcome outcome;
  StageTiming& st = outcome.timing;
  st.driver_gate = driver.name;
  st.net = net.name;
  st.input_arrival = t_in;
  st.degraded = true;
  st.failed = true;

  double r_total = driver.drive_resistance;
  double c_total = 0.0;
  for (const auto& e : net.parasitics) {
    if (e.kind == NetElement::Kind::Resistor &&
        std::isfinite(e.value)) {
      r_total += std::abs(e.value);
    } else if (e.kind == NetElement::Kind::Capacitor &&
               std::isfinite(e.value)) {
      c_total += std::abs(e.value);
    }
  }
  for (const auto& [sink, node_name] : net.sink_node) {
    const auto it = gates.find(sink);
    if (it != gates.end() && it->second.input_capacitance > 0.0) {
      c_total += it->second.input_capacitance;
    }
  }
  const double tau = r_total * c_total;
  // Single-pole response: 50% crossing at ln 2 * tau, 20-80% rise over
  // ln 4 * tau; half the input slew stands in for the ramp delay.
  const double delay =
      driver.intrinsic_delay + std::log(2.0) * tau + 0.5 * in_slew;
  const double out_slew = std::max(std::log(4.0) * tau, in_slew);
  for (const auto& [sink, node_name] : net.sink_node) {
    SinkTiming sink_t;
    sink_t.gate = sink;
    sink_t.stage_delay = delay;
    sink_t.slew = out_slew;
    sink_t.arrival = t_in + delay;
    st.sinks.push_back(std::move(sink_t));
  }

  core::Diagnostic d;
  d.code = core::DiagCode::StageFailed;
  d.severity = core::Severity::Error;
  d.message = "stage evaluation failed (" + reason +
              "); substituted the lumped Elmore bound tau=" +
              std::to_string(tau) + "s";
  d.element = net.name;
  d.node = driver.name;
  st.diagnostics.push_back(std::move(d));

  outcome.stats.stages = 1;
  outcome.stats.failures = 1;
  return outcome;
}

StageOutcome evaluate_stage(const Gate& driver, const Net& net,
                            const std::map<std::string, Gate>& gates,
                            const AnalysisOptions& options, double t_in,
                            double in_slew,
                            const detail::CachedFactorization* adopt,
                            bool capture_factorization,
                            std::shared_ptr<const check::LintReport> lint_pre) {
  AWESIM_TRACE_SPAN("timing.stage");
  StageOutcome outcome;
  StageTiming& st = outcome.timing;
  st.driver_gate = driver.name;
  st.net = net.name;
  st.input_arrival = t_in;

  if (core::fault_at("timing.stage", net.name)) {
    throw core::DiagnosticError(
        {core::DiagCode::InjectedFault, core::Severity::Error,
         "injected stage evaluation fault", net.name});
  }

  StageCircuit sc = build_stage(driver, net, gates, options.swing,
                                in_slew);

  // Pre-flight lint: the stage circuit is checked structurally before
  // any matrix is assembled.  Errors short-circuit to the Elmore bound
  // with the lint records naming the offending elements -- previously
  // the same stage died inside the LU and the report said only
  // "singular system".  Warnings never change the timing numbers.
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::shared_ptr<const check::LintReport> lint;
  if (options.preflight_lint) {
    if (lint_pre != nullptr) {
      lint = std::move(lint_pre);
    } else {
      check::LintOptions lint_options;
      lint_options.classify_note = false;
      lint = std::make_shared<const check::LintReport>(
          check::lint(sc.ckt, lint_options));
      if (capture_factorization) outcome.lint = lint;
    }
    lint_errors = lint->errors;
    lint_warnings = lint->warnings;
    if (!lint->ok()) {
      const core::Diagnostic* first_error = nullptr;
      core::Diagnostics lint_records;
      for (const auto& d : lint->diagnostics) {
        if (d.severity >= core::Severity::Error) {
          if (first_error == nullptr) first_error = &d;
          lint_records.push_back(d);
        }
      }
      StageOutcome fallback = elmore_bound_stage(
          driver, net, gates, options, t_in, in_slew,
          "pre-flight lint: " + first_error->to_string());
      fallback.timing.diagnostics.insert(
          fallback.timing.diagnostics.begin(), lint_records.begin(),
          lint_records.end());
      fallback.stats.lint_errors = lint_errors;
      fallback.stats.lint_warnings = lint_warnings;
      fallback.lint = std::move(outcome.lint);
      return fallback;
    }
  }

  core::Engine engine(sc.ckt);
  if (adopt != nullptr) {
    // A content-identical circuit already factored G in this session:
    // share the LU and replay its factor-time observables (gmin flag,
    // diagnostics) so every Result is bitwise what a fresh factorization
    // would have produced; only the LU work is skipped.
    engine.system().adopt_g_solver(adopt->solver, adopt->used_gmin,
                                   adopt->diagnostics);
  }
  core::EngineOptions eopt;
  eopt.order = options.order;
  eopt.auto_order = true;
  eopt.error_tolerance = 0.01;
  eopt.max_order = std::max(options.order + 2, 6);
  // The analyzer owns the stage pre-flight (above, cached under a
  // Session); never double-lint inside the engine.
  eopt.preflight_lint = false;

  // Sink order: sc.sink_nodes is a std::map, so sinks come out sorted
  // by name -- part of the determinism contract.
  std::vector<std::string> sink_names;
  std::vector<circuit::NodeId> sink_nodes;
  sink_names.reserve(sc.sink_nodes.size());
  sink_nodes.reserve(sc.sink_nodes.size());
  for (const auto& [sink, node] : sc.sink_nodes) {
    sink_names.push_back(sink);
    sink_nodes.push_back(node);
  }

  // One batch solve for the whole net: the LU factorization and moment
  // vectors are shared; each sink costs only its moment match.
  const core::BatchResult batch = engine.approximate_all(sink_nodes, eopt);
  for (std::size_t i = 0; i < sink_names.size(); ++i) {
    const core::Result& result = batch.results[i];
    st.awe_order_used = std::max(st.awe_order_used, result.order_used);
    if (result.status >= core::ApproxStatus::OrderReduced) {
      // The engine walked its degradation ladder for this sink: the
      // timing numbers below come from a below-requested-quality model.
      st.degraded = true;
      core::Diagnostic d;
      d.code = core::DiagCode::StageDegraded;
      d.severity = core::Severity::Warning;
      d.message = std::string("sink answered from ladder rung '") +
                  core::to_string(result.status) + "'";
      d.element = net.name;
      d.node = sink_names[i];
      st.diagnostics.push_back(std::move(d));
    }
    for (const auto& rd : result.diagnostics) {
      if (rd.severity >= core::Severity::Warning) {
        st.diagnostics.push_back(rd);
      }
    }
    // Horizon: generous multiple of the slowest time constant plus the
    // input slew.
    const double tau = result.approximation.dominant_time_constant();
    const double horizon = 12.0 * tau + 3.0 * in_slew + 1e-15;
    const double v_th = options.swing * options.delay_threshold_fraction;
    const double v_lo = options.swing * options.slew_low_fraction;
    const double v_hi = options.swing * options.slew_high_fraction;
    const auto t_th =
        result.approximation.first_crossing(v_th, 0.0, horizon);
    const auto t_lo =
        result.approximation.first_crossing(v_lo, 0.0, horizon);
    const auto t_hi =
        result.approximation.first_crossing(v_hi, 0.0, horizon);
    SinkTiming sink_t;
    sink_t.gate = sink_names[i];
    sink_t.stage_delay = driver.intrinsic_delay + t_th.value_or(horizon);
    sink_t.slew = (t_hi && t_lo) ? *t_hi - *t_lo : horizon;
    sink_t.arrival = t_in + sink_t.stage_delay;
    st.sinks.push_back(std::move(sink_t));
  }
  const std::shared_ptr<const check::LintReport> fresh_lint =
      std::move(outcome.lint);
  outcome.stats = batch.stats;
  outcome.stats.stages = 1;
  outcome.stats.lint_errors += lint_errors;
  outcome.stats.lint_warnings += lint_warnings;
  outcome.lint = fresh_lint;
  if (capture_factorization && adopt == nullptr) {
    // Publish this circuit's G factorization (and its factor-time
    // observables) for the post-pass to cache under the content key.
    outcome.solver = engine.system().shared_g_solver();
    outcome.used_gmin = engine.system().used_gmin();
    outcome.factor_diags = engine.system().diagnostics();
  }
  return outcome;
}

}  // namespace

TimingReport Design::analyze(const AnalysisOptions& options) const {
  return detail::analyze_design(*this, options, nullptr);
}

namespace detail {

TimingReport analyze_design(const Design& design,
                            const AnalysisOptions& options,
                            StageCache* cache) {
  const auto t_start = std::chrono::steady_clock::now();
  // Phase breakdown window: everything this analysis records, process-wide.
  // Concurrent analyses would fold into each other's windows; the span
  // *counts* stay a pure function of the work this call performed only
  // when analyses do not overlap (the documented usage).
  const obs::PhaseBreakdown phases_before = obs::snapshot();

  const auto& gates = design.gates_;
  const auto& nets = design.nets_;

  // Stage dependency bookkeeping: a net's sinks depend on its driver.
  std::map<std::string, std::vector<const Design::NetInstance*>> driven_by;
  std::map<std::string, int> fanin_count;
  for (const auto& [name, gate] : gates) fanin_count[name] = 0;
  for (const auto& ni : nets) {
    driven_by[ni.driver].push_back(&ni);
    for (const auto& [sink, node] : ni.net.sink_node) {
      if (gates.count(sink) > 0) ++fanin_count[sink];
    }
  }

  std::map<std::string, double> arrival;
  std::map<std::string, double> slew;
  std::map<std::string, std::string> predecessor;

  // Kahn levelization into wavefronts.  Wave 0 holds the sources:
  // declared primary inputs (whose stage inputs are pinned to t = 0 even
  // if something drives them) and gates with no fan-in (conservative
  // t = 0 default).  Every other gate lands one wave past its last
  // driver, so when a wave is evaluated all of its drivers' arrivals and
  // slews are final.  Waves are name-sorted for deterministic reduction.
  std::map<std::string, int> remaining = fanin_count;
  for (const auto& pi : design.primary_inputs_) remaining[pi] = 0;
  std::vector<std::vector<std::string>> waves;
  std::size_t leveled = 0;
  {
    std::vector<std::string> frontier;
    for (const auto& [name, count] : remaining) {
      if (count == 0) frontier.push_back(name);
    }
    while (!frontier.empty()) {
      leveled += frontier.size();
      std::set<std::string> next;
      for (const auto& gate_name : frontier) {
        const auto it = driven_by.find(gate_name);
        if (it == driven_by.end()) continue;
        for (const Design::NetInstance* ni : it->second) {
          for (const auto& [sink, node] : ni->net.sink_node) {
            if (gates.count(sink) > 0 && --remaining[sink] == 0) {
              next.insert(sink);
            }
          }
        }
      }
      waves.push_back(std::move(frontier));
      frontier.assign(next.begin(), next.end());
    }
  }
  if (leveled < gates.size()) {
    // Some gate never became ready: combinational cycle (or a sink whose
    // fan-in never resolves).
    throw std::invalid_argument(
        "Design: combinational cycle or unreachable gates detected");
  }

  // Wave-0 gates switch at t = 0 with the primary-input slew.
  if (!waves.empty()) {
    for (const auto& name : waves.front()) {
      arrival[name] = 0.0;
      slew[name] = options.input_slew;
    }
  }

  TimingReport report;
  report.levels = waves.size();

  struct StageJob {
    const Design::NetInstance* net = nullptr;
    const Gate* driver = nullptr;
    double t_in = 0.0;
    double in_slew = 0.0;
  };
  struct Endpoint {
    double arrival = 0.0;
    std::string sink;
    std::string driver;
  };
  std::optional<Endpoint> best_endpoint;

  core::ThreadPool pool(
      static_cast<std::size_t>(std::max(0, options.threads)));

  for (const auto& wave : waves) {
    // Gather this wavefront's stages; all inputs are final.
    std::vector<StageJob> jobs;
    for (const auto& gate_name : wave) {
      const auto it = driven_by.find(gate_name);
      if (it == driven_by.end()) continue;  // endpoint gate
      for (const Design::NetInstance* ni : it->second) {
        jobs.push_back({ni, &gates.at(gate_name), arrival.at(gate_name),
                        slew.at(gate_name)});
      }
    }
    if (jobs.empty()) continue;

    std::vector<StageOutcome> outcomes(jobs.size());
    std::vector<char> served(jobs.size(), 0);
    std::vector<std::string> result_keys;
    std::vector<std::string> content_keys;
    std::vector<std::shared_ptr<const CachedFactorization>> adopt;
    std::vector<std::shared_ptr<const check::LintReport>> lint_pre;
    std::vector<core::Diagnostics> invalidation_diags;

    if (cache != nullptr) {
      // Serial cache pre-pass, in job order: every lookup (stage result
      // keys, then LU content keys for the misses) happens here, before
      // any parallel work, so hit/miss counters, invalidations, and the
      // served set are pure functions of the job sequence -- identical
      // for every thread count.
      result_keys.resize(jobs.size());
      content_keys.resize(jobs.size());
      adopt.resize(jobs.size());
      lint_pre.resize(jobs.size());
      invalidation_diags.resize(jobs.size());
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const StageJob& job = jobs[i];
        result_keys[i] = stage_result_key(*job.driver, job.net->net,
                                          gates, options, job.in_slew);
        auto hit = cache->lookup_stage(result_keys[i], job.net->net.name,
                                       &invalidation_diags[i]);
        if (hit) {
          // Rehydrate the stage-relative record against this job's
          // input arrival.  Cold evaluation computes arrival as
          // t_in + stage_delay with the same two operands, so the
          // replayed values are bitwise identical.
          StageOutcome o;
          o.timing = std::move(*hit);
          o.timing.input_arrival = job.t_in;
          for (auto& s : o.timing.sinks) {
            s.arrival = job.t_in + s.stage_delay;
          }
          o.stats.stages = 1;
          o.stats.stages_reused = 1;
          o.stats.cache_hits = 1;
          outcomes[i] = std::move(o);
          served[i] = 1;
        } else {
          content_keys[i] = stage_content_key(*job.driver, job.net->net,
                                              gates);
          adopt[i] = cache->lookup_factorization(content_keys[i]);
          if (options.preflight_lint) {
            lint_pre[i] = cache->lookup_lint(content_keys[i]);
          }
        }
      }
    }

    // Evaluate the misses concurrently into per-stage slots.  Each job
    // is its own fault domain: anything thrown (singular MNA, injected
    // fault) is caught here, the stage degrades to the analytic Elmore
    // bound, and the rest of the wavefront proceeds untouched.  The
    // injection and the fallback are pure functions of the stage itself,
    // so the report stays bit-identical across thread counts.
    pool.parallel_for(jobs.size(), [&](std::size_t i) {
      if (served[i]) return;
      AWESIM_TRACE_SPAN("parallel.job");
      const StageJob& job = jobs[i];
      try {
        if (core::fault_at("parallel.job", job.net->net.name)) {
          throw core::DiagnosticError(
              {core::DiagCode::InjectedFault, core::Severity::Error,
               "injected thread-pool job fault", job.net->net.name});
        }
        outcomes[i] = evaluate_stage(
            *job.driver, job.net->net, gates, options, job.t_in,
            job.in_slew, cache != nullptr ? adopt[i].get() : nullptr,
            cache != nullptr,
            cache != nullptr ? lint_pre[i] : nullptr);
      } catch (const std::exception& e) {
        outcomes[i] =
            elmore_bound_stage(*job.driver, job.net->net, gates, options,
                               job.t_in, job.in_slew, e.what());
      }
    });

    // ... then reduce serially in job order, so arrivals, predecessor
    // choices, stats sums, and cache insertions are identical for every
    // thread count.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      StageOutcome& outcome = outcomes[i];
      if (cache != nullptr && !served[i]) {
        outcome.stats.stages_recomputed += 1;
        outcome.stats.cache_misses += 1;  // the stage-result lookup
        if (adopt[i]) {
          outcome.stats.cache_hits += 1;  // the LU content-key lookup
        } else {
          outcome.stats.cache_misses += 1;
        }
        if (outcome.lint) {
          // A lint report is a pure function of the circuit content, so
          // it is cached even for stages that lint-failed: warm re-runs
          // of a broken stage skip straight to the Elmore fallback.
          cache->insert_lint(content_keys[i], outcome.lint);
        }
        if (!outcome.timing.failed) {
          // Store the pure evaluation result in stage-relative form
          // (before any invalidation diagnostics of *this* run are
          // attached -- those describe a cache event, not the stage).
          // Failed stages are never cached: the Elmore bound is a
          // per-run fallback, recomputed deterministically.
          StageTiming relative = outcome.timing;
          relative.input_arrival = 0.0;
          for (auto& s : relative.sinks) s.arrival = s.stage_delay;
          cache->insert_stage(result_keys[i], std::move(relative));
          if (!adopt[i] && outcome.solver) {
            cache->insert_factorization(
                content_keys[i],
                {outcome.solver, outcome.used_gmin,
                 outcome.factor_diags});
          }
        }
        if (!invalidation_diags[i].empty()) {
          outcome.timing.diagnostics.insert(
              outcome.timing.diagnostics.begin(),
              invalidation_diags[i].begin(), invalidation_diags[i].end());
        }
      }
      outcome.solver.reset();
      outcome.lint.reset();

      report.awe_stats += outcome.stats;
      StageTiming& st = outcome.timing;
      if (st.failed) {
        ++report.failed_stages;
      } else if (st.degraded) {
        ++report.degraded_stages;
      }
      for (const auto& d : st.diagnostics) {
        report.diagnostics.push_back(d);
      }
      for (const auto& sink_t : st.sinks) {
        if (gates.count(sink_t.gate) > 0) {
          const bool improves = arrival.count(sink_t.gate) == 0 ||
                                sink_t.arrival > arrival[sink_t.gate];
          if (improves) {
            arrival[sink_t.gate] = sink_t.arrival;
            slew[sink_t.gate] = sink_t.slew;
            predecessor[sink_t.gate] = st.driver_gate;
          }
        } else if (!best_endpoint ||
                   sink_t.arrival > best_endpoint->arrival) {
          // Design output endpoint.
          best_endpoint = Endpoint{sink_t.arrival, sink_t.gate,
                                   st.driver_gate};
        }
      }
      report.stages.push_back(std::move(st));
    }
  }

  report.gate_arrival = arrival;
  auto trace_path = [&](const std::string& from) {
    std::string back = from;
    while (true) {
      report.critical_path.push_back(back);
      const auto pit = predecessor.find(back);
      if (pit == predecessor.end()) break;
      back = pit->second;
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  };
  if (best_endpoint) {
    report.critical_delay = best_endpoint->arrival;
    report.critical_path.push_back(best_endpoint->sink);
    trace_path(best_endpoint->driver);
  } else if (!arrival.empty()) {
    // No design-output endpoint: the critical path ends at the
    // latest-arriving gate input.
    const auto worst = std::max_element(
        arrival.begin(), arrival.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    report.critical_delay = worst->second;
    trace_path(worst->first);
  }
  report.awe_stats.phases = obs::since(phases_before);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return report;
}

}  // namespace detail

}  // namespace awesim::timing
